file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_defenses.dir/bench_ablation_defenses.cpp.o"
  "CMakeFiles/bench_ablation_defenses.dir/bench_ablation_defenses.cpp.o.d"
  "bench_ablation_defenses"
  "bench_ablation_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
