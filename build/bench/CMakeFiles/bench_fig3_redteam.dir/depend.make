# Empty dependencies file for bench_fig3_redteam.
# This may be replaced when dependencies are built.
