file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_redteam.dir/bench_fig3_redteam.cpp.o"
  "CMakeFiles/bench_fig3_redteam.dir/bench_fig3_redteam.cpp.o.d"
  "bench_fig3_redteam"
  "bench_fig3_redteam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_redteam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
