# Empty dependencies file for bench_latency_tuning.
# This may be replaced when dependencies are built.
