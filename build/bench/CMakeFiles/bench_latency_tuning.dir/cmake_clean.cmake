file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_tuning.dir/bench_latency_tuning.cpp.o"
  "CMakeFiles/bench_latency_tuning.dir/bench_latency_tuning.cpp.o.d"
  "bench_latency_tuning"
  "bench_latency_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
