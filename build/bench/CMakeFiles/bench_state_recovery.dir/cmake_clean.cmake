file(REMOVE_RECURSE
  "CMakeFiles/bench_state_recovery.dir/bench_state_recovery.cpp.o"
  "CMakeFiles/bench_state_recovery.dir/bench_state_recovery.cpp.o.d"
  "bench_state_recovery"
  "bench_state_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
