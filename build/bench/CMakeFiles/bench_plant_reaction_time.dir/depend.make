# Empty dependencies file for bench_plant_reaction_time.
# This may be replaced when dependencies are built.
