file(REMOVE_RECURSE
  "CMakeFiles/bench_plant_reaction_time.dir/bench_plant_reaction_time.cpp.o"
  "CMakeFiles/bench_plant_reaction_time.dir/bench_plant_reaction_time.cpp.o.d"
  "bench_plant_reaction_time"
  "bench_plant_reaction_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plant_reaction_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
