# Empty dependencies file for bench_plant_soak.
# This may be replaced when dependencies are built.
