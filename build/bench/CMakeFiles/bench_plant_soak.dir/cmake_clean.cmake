file(REMOVE_RECURSE
  "CMakeFiles/bench_plant_soak.dir/bench_plant_soak.cpp.o"
  "CMakeFiles/bench_plant_soak.dir/bench_plant_soak.cpp.o.d"
  "bench_plant_soak"
  "bench_plant_soak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plant_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
