file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_commercial_attacks.dir/bench_fig1_commercial_attacks.cpp.o"
  "CMakeFiles/bench_fig1_commercial_attacks.dir/bench_fig1_commercial_attacks.cpp.o.d"
  "bench_fig1_commercial_attacks"
  "bench_fig1_commercial_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_commercial_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
