# Empty compiler generated dependencies file for bench_fig1_commercial_attacks.
# This may be replaced when dependencies are built.
