file(REMOVE_RECURSE
  "CMakeFiles/bench_mana_ids.dir/bench_mana_ids.cpp.o"
  "CMakeFiles/bench_mana_ids.dir/bench_mana_ids.cpp.o.d"
  "bench_mana_ids"
  "bench_mana_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mana_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
