# Empty dependencies file for bench_mana_ids.
# This may be replaced when dependencies are built.
