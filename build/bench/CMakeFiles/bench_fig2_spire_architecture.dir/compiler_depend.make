# Empty compiler generated dependencies file for bench_fig2_spire_architecture.
# This may be replaced when dependencies are built.
