file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_excursion.dir/bench_fig3_excursion.cpp.o"
  "CMakeFiles/bench_fig3_excursion.dir/bench_fig3_excursion.cpp.o.d"
  "bench_fig3_excursion"
  "bench_fig3_excursion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_excursion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
