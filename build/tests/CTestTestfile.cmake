# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/modbus_test[1]_include.cmake")
include("/root/repo/build/tests/dnp3_test[1]_include.cmake")
include("/root/repo/build/tests/plc_test[1]_include.cmake")
include("/root/repo/build/tests/spines_test[1]_include.cmake")
include("/root/repo/build/tests/prime_test[1]_include.cmake")
include("/root/repo/build/tests/prime_fault_test[1]_include.cmake")
include("/root/repo/build/tests/prime_byzantine_test[1]_include.cmake")
include("/root/repo/build/tests/prime_chaos_test[1]_include.cmake")
include("/root/repo/build/tests/spines_topology_test[1]_include.cmake")
include("/root/repo/build/tests/scada_test[1]_include.cmake")
include("/root/repo/build/tests/historian_test[1]_include.cmake")
include("/root/repo/build/tests/mana_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
