file(REMOVE_RECURSE
  "CMakeFiles/prime_byzantine_test.dir/prime_byzantine_test.cpp.o"
  "CMakeFiles/prime_byzantine_test.dir/prime_byzantine_test.cpp.o.d"
  "prime_byzantine_test"
  "prime_byzantine_test.pdb"
  "prime_byzantine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prime_byzantine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
