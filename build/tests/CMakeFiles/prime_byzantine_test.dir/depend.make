# Empty dependencies file for prime_byzantine_test.
# This may be replaced when dependencies are built.
