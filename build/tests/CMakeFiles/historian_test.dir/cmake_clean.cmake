file(REMOVE_RECURSE
  "CMakeFiles/historian_test.dir/historian_test.cpp.o"
  "CMakeFiles/historian_test.dir/historian_test.cpp.o.d"
  "historian_test"
  "historian_test.pdb"
  "historian_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/historian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
