# Empty dependencies file for historian_test.
# This may be replaced when dependencies are built.
