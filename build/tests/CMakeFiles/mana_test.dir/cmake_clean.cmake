file(REMOVE_RECURSE
  "CMakeFiles/mana_test.dir/mana_test.cpp.o"
  "CMakeFiles/mana_test.dir/mana_test.cpp.o.d"
  "mana_test"
  "mana_test.pdb"
  "mana_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mana_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
