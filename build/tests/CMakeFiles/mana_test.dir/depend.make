# Empty dependencies file for mana_test.
# This may be replaced when dependencies are built.
