file(REMOVE_RECURSE
  "CMakeFiles/spines_topology_test.dir/spines_topology_test.cpp.o"
  "CMakeFiles/spines_topology_test.dir/spines_topology_test.cpp.o.d"
  "spines_topology_test"
  "spines_topology_test.pdb"
  "spines_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spines_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
