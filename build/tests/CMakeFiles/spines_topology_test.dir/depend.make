# Empty dependencies file for spines_topology_test.
# This may be replaced when dependencies are built.
