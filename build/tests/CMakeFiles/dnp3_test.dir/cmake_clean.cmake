file(REMOVE_RECURSE
  "CMakeFiles/dnp3_test.dir/dnp3_test.cpp.o"
  "CMakeFiles/dnp3_test.dir/dnp3_test.cpp.o.d"
  "dnp3_test"
  "dnp3_test.pdb"
  "dnp3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnp3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
