# Empty compiler generated dependencies file for dnp3_test.
# This may be replaced when dependencies are built.
