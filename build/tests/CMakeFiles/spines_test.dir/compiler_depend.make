# Empty compiler generated dependencies file for spines_test.
# This may be replaced when dependencies are built.
