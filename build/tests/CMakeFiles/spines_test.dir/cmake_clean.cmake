file(REMOVE_RECURSE
  "CMakeFiles/spines_test.dir/spines_test.cpp.o"
  "CMakeFiles/spines_test.dir/spines_test.cpp.o.d"
  "spines_test"
  "spines_test.pdb"
  "spines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
