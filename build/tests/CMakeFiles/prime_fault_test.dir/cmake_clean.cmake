file(REMOVE_RECURSE
  "CMakeFiles/prime_fault_test.dir/prime_fault_test.cpp.o"
  "CMakeFiles/prime_fault_test.dir/prime_fault_test.cpp.o.d"
  "prime_fault_test"
  "prime_fault_test.pdb"
  "prime_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prime_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
