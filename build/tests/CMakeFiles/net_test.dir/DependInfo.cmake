
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/net_test.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/net_test.dir/net_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spire_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spire_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/spire_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spire_net.dir/DependInfo.cmake"
  "/root/repo/build/src/modbus/CMakeFiles/spire_modbus.dir/DependInfo.cmake"
  "/root/repo/build/src/plc/CMakeFiles/spire_plc.dir/DependInfo.cmake"
  "/root/repo/build/src/spines/CMakeFiles/spire_spines.dir/DependInfo.cmake"
  "/root/repo/build/src/prime/CMakeFiles/spire_prime.dir/DependInfo.cmake"
  "/root/repo/build/src/scada/CMakeFiles/spire_scada.dir/DependInfo.cmake"
  "/root/repo/build/src/mana/CMakeFiles/spire_mana.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/spire_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/dnp3/CMakeFiles/spire_dnp3.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
