# Empty compiler generated dependencies file for plc_test.
# This may be replaced when dependencies are built.
