file(REMOVE_RECURSE
  "CMakeFiles/prime_chaos_test.dir/prime_chaos_test.cpp.o"
  "CMakeFiles/prime_chaos_test.dir/prime_chaos_test.cpp.o.d"
  "prime_chaos_test"
  "prime_chaos_test.pdb"
  "prime_chaos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prime_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
