# Empty compiler generated dependencies file for prime_chaos_test.
# This may be replaced when dependencies are built.
