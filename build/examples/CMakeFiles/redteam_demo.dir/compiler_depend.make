# Empty compiler generated dependencies file for redteam_demo.
# This may be replaced when dependencies are built.
