file(REMOVE_RECURSE
  "CMakeFiles/redteam_demo.dir/redteam_demo.cpp.o"
  "CMakeFiles/redteam_demo.dir/redteam_demo.cpp.o.d"
  "redteam_demo"
  "redteam_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redteam_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
