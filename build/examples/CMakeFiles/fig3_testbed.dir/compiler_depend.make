# Empty compiler generated dependencies file for fig3_testbed.
# This may be replaced when dependencies are built.
