file(REMOVE_RECURSE
  "CMakeFiles/fig3_testbed.dir/fig3_testbed.cpp.o"
  "CMakeFiles/fig3_testbed.dir/fig3_testbed.cpp.o.d"
  "fig3_testbed"
  "fig3_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
