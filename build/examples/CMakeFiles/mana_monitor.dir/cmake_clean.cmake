file(REMOVE_RECURSE
  "CMakeFiles/mana_monitor.dir/mana_monitor.cpp.o"
  "CMakeFiles/mana_monitor.dir/mana_monitor.cpp.o.d"
  "mana_monitor"
  "mana_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mana_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
