# Empty compiler generated dependencies file for mana_monitor.
# This may be replaced when dependencies are built.
