# Empty compiler generated dependencies file for plant_deployment.
# This may be replaced when dependencies are built.
