file(REMOVE_RECURSE
  "CMakeFiles/plant_deployment.dir/plant_deployment.cpp.o"
  "CMakeFiles/plant_deployment.dir/plant_deployment.cpp.o.d"
  "plant_deployment"
  "plant_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plant_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
