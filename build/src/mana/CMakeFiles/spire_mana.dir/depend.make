# Empty dependencies file for spire_mana.
# This may be replaced when dependencies are built.
