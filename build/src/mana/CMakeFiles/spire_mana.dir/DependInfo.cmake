
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mana/features.cpp" "src/mana/CMakeFiles/spire_mana.dir/features.cpp.o" "gcc" "src/mana/CMakeFiles/spire_mana.dir/features.cpp.o.d"
  "/root/repo/src/mana/kmeans.cpp" "src/mana/CMakeFiles/spire_mana.dir/kmeans.cpp.o" "gcc" "src/mana/CMakeFiles/spire_mana.dir/kmeans.cpp.o.d"
  "/root/repo/src/mana/mana.cpp" "src/mana/CMakeFiles/spire_mana.dir/mana.cpp.o" "gcc" "src/mana/CMakeFiles/spire_mana.dir/mana.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spire_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spire_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spire_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
