file(REMOVE_RECURSE
  "CMakeFiles/spire_mana.dir/features.cpp.o"
  "CMakeFiles/spire_mana.dir/features.cpp.o.d"
  "CMakeFiles/spire_mana.dir/kmeans.cpp.o"
  "CMakeFiles/spire_mana.dir/kmeans.cpp.o.d"
  "CMakeFiles/spire_mana.dir/mana.cpp.o"
  "CMakeFiles/spire_mana.dir/mana.cpp.o.d"
  "libspire_mana.a"
  "libspire_mana.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spire_mana.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
