file(REMOVE_RECURSE
  "libspire_mana.a"
)
