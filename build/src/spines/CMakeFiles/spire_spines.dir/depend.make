# Empty dependencies file for spire_spines.
# This may be replaced when dependencies are built.
