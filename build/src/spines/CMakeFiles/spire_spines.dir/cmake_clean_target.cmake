file(REMOVE_RECURSE
  "libspire_spines.a"
)
