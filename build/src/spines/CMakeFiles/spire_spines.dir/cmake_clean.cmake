file(REMOVE_RECURSE
  "CMakeFiles/spire_spines.dir/daemon.cpp.o"
  "CMakeFiles/spire_spines.dir/daemon.cpp.o.d"
  "CMakeFiles/spire_spines.dir/message.cpp.o"
  "CMakeFiles/spire_spines.dir/message.cpp.o.d"
  "CMakeFiles/spire_spines.dir/overlay.cpp.o"
  "CMakeFiles/spire_spines.dir/overlay.cpp.o.d"
  "libspire_spines.a"
  "libspire_spines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spire_spines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
