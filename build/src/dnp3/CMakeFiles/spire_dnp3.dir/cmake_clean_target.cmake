file(REMOVE_RECURSE
  "libspire_dnp3.a"
)
