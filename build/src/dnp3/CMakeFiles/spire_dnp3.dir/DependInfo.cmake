
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnp3/app.cpp" "src/dnp3/CMakeFiles/spire_dnp3.dir/app.cpp.o" "gcc" "src/dnp3/CMakeFiles/spire_dnp3.dir/app.cpp.o.d"
  "/root/repo/src/dnp3/crc.cpp" "src/dnp3/CMakeFiles/spire_dnp3.dir/crc.cpp.o" "gcc" "src/dnp3/CMakeFiles/spire_dnp3.dir/crc.cpp.o.d"
  "/root/repo/src/dnp3/endpoint.cpp" "src/dnp3/CMakeFiles/spire_dnp3.dir/endpoint.cpp.o" "gcc" "src/dnp3/CMakeFiles/spire_dnp3.dir/endpoint.cpp.o.d"
  "/root/repo/src/dnp3/framing.cpp" "src/dnp3/CMakeFiles/spire_dnp3.dir/framing.cpp.o" "gcc" "src/dnp3/CMakeFiles/spire_dnp3.dir/framing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spire_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spire_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
