# Empty dependencies file for spire_dnp3.
# This may be replaced when dependencies are built.
