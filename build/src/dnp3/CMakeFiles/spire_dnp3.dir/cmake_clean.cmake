file(REMOVE_RECURSE
  "CMakeFiles/spire_dnp3.dir/app.cpp.o"
  "CMakeFiles/spire_dnp3.dir/app.cpp.o.d"
  "CMakeFiles/spire_dnp3.dir/crc.cpp.o"
  "CMakeFiles/spire_dnp3.dir/crc.cpp.o.d"
  "CMakeFiles/spire_dnp3.dir/endpoint.cpp.o"
  "CMakeFiles/spire_dnp3.dir/endpoint.cpp.o.d"
  "CMakeFiles/spire_dnp3.dir/framing.cpp.o"
  "CMakeFiles/spire_dnp3.dir/framing.cpp.o.d"
  "libspire_dnp3.a"
  "libspire_dnp3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spire_dnp3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
