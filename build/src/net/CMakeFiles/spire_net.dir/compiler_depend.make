# Empty compiler generated dependencies file for spire_net.
# This may be replaced when dependencies are built.
