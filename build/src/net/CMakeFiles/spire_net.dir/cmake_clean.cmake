file(REMOVE_RECURSE
  "CMakeFiles/spire_net.dir/address.cpp.o"
  "CMakeFiles/spire_net.dir/address.cpp.o.d"
  "CMakeFiles/spire_net.dir/frame.cpp.o"
  "CMakeFiles/spire_net.dir/frame.cpp.o.d"
  "CMakeFiles/spire_net.dir/host.cpp.o"
  "CMakeFiles/spire_net.dir/host.cpp.o.d"
  "CMakeFiles/spire_net.dir/network.cpp.o"
  "CMakeFiles/spire_net.dir/network.cpp.o.d"
  "CMakeFiles/spire_net.dir/switch.cpp.o"
  "CMakeFiles/spire_net.dir/switch.cpp.o.d"
  "libspire_net.a"
  "libspire_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spire_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
