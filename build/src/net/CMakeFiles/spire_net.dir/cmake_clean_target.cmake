file(REMOVE_RECURSE
  "libspire_net.a"
)
