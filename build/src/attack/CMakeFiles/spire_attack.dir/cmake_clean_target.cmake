file(REMOVE_RECURSE
  "libspire_attack.a"
)
