file(REMOVE_RECURSE
  "CMakeFiles/spire_attack.dir/attacker.cpp.o"
  "CMakeFiles/spire_attack.dir/attacker.cpp.o.d"
  "libspire_attack.a"
  "libspire_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spire_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
