# Empty compiler generated dependencies file for spire_attack.
# This may be replaced when dependencies are built.
