
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modbus/data_model.cpp" "src/modbus/CMakeFiles/spire_modbus.dir/data_model.cpp.o" "gcc" "src/modbus/CMakeFiles/spire_modbus.dir/data_model.cpp.o.d"
  "/root/repo/src/modbus/endpoint.cpp" "src/modbus/CMakeFiles/spire_modbus.dir/endpoint.cpp.o" "gcc" "src/modbus/CMakeFiles/spire_modbus.dir/endpoint.cpp.o.d"
  "/root/repo/src/modbus/pdu.cpp" "src/modbus/CMakeFiles/spire_modbus.dir/pdu.cpp.o" "gcc" "src/modbus/CMakeFiles/spire_modbus.dir/pdu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spire_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spire_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
