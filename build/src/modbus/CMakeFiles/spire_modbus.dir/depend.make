# Empty dependencies file for spire_modbus.
# This may be replaced when dependencies are built.
