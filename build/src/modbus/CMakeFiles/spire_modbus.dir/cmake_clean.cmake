file(REMOVE_RECURSE
  "CMakeFiles/spire_modbus.dir/data_model.cpp.o"
  "CMakeFiles/spire_modbus.dir/data_model.cpp.o.d"
  "CMakeFiles/spire_modbus.dir/endpoint.cpp.o"
  "CMakeFiles/spire_modbus.dir/endpoint.cpp.o.d"
  "CMakeFiles/spire_modbus.dir/pdu.cpp.o"
  "CMakeFiles/spire_modbus.dir/pdu.cpp.o.d"
  "libspire_modbus.a"
  "libspire_modbus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spire_modbus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
