file(REMOVE_RECURSE
  "libspire_modbus.a"
)
