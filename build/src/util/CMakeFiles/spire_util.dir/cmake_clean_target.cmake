file(REMOVE_RECURSE
  "libspire_util.a"
)
