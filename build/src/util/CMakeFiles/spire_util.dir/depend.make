# Empty dependencies file for spire_util.
# This may be replaced when dependencies are built.
