file(REMOVE_RECURSE
  "CMakeFiles/spire_util.dir/hex.cpp.o"
  "CMakeFiles/spire_util.dir/hex.cpp.o.d"
  "CMakeFiles/spire_util.dir/log.cpp.o"
  "CMakeFiles/spire_util.dir/log.cpp.o.d"
  "libspire_util.a"
  "libspire_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spire_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
