file(REMOVE_RECURSE
  "libspire_scada.a"
)
