# Empty compiler generated dependencies file for spire_scada.
# This may be replaced when dependencies are built.
