file(REMOVE_RECURSE
  "CMakeFiles/spire_scada.dir/commercial.cpp.o"
  "CMakeFiles/spire_scada.dir/commercial.cpp.o.d"
  "CMakeFiles/spire_scada.dir/cycler.cpp.o"
  "CMakeFiles/spire_scada.dir/cycler.cpp.o.d"
  "CMakeFiles/spire_scada.dir/deployment.cpp.o"
  "CMakeFiles/spire_scada.dir/deployment.cpp.o.d"
  "CMakeFiles/spire_scada.dir/field_client.cpp.o"
  "CMakeFiles/spire_scada.dir/field_client.cpp.o.d"
  "CMakeFiles/spire_scada.dir/historian.cpp.o"
  "CMakeFiles/spire_scada.dir/historian.cpp.o.d"
  "CMakeFiles/spire_scada.dir/hmi.cpp.o"
  "CMakeFiles/spire_scada.dir/hmi.cpp.o.d"
  "CMakeFiles/spire_scada.dir/master.cpp.o"
  "CMakeFiles/spire_scada.dir/master.cpp.o.d"
  "CMakeFiles/spire_scada.dir/proxy.cpp.o"
  "CMakeFiles/spire_scada.dir/proxy.cpp.o.d"
  "CMakeFiles/spire_scada.dir/topology.cpp.o"
  "CMakeFiles/spire_scada.dir/topology.cpp.o.d"
  "CMakeFiles/spire_scada.dir/wire.cpp.o"
  "CMakeFiles/spire_scada.dir/wire.cpp.o.d"
  "libspire_scada.a"
  "libspire_scada.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spire_scada.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
