
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scada/commercial.cpp" "src/scada/CMakeFiles/spire_scada.dir/commercial.cpp.o" "gcc" "src/scada/CMakeFiles/spire_scada.dir/commercial.cpp.o.d"
  "/root/repo/src/scada/cycler.cpp" "src/scada/CMakeFiles/spire_scada.dir/cycler.cpp.o" "gcc" "src/scada/CMakeFiles/spire_scada.dir/cycler.cpp.o.d"
  "/root/repo/src/scada/deployment.cpp" "src/scada/CMakeFiles/spire_scada.dir/deployment.cpp.o" "gcc" "src/scada/CMakeFiles/spire_scada.dir/deployment.cpp.o.d"
  "/root/repo/src/scada/field_client.cpp" "src/scada/CMakeFiles/spire_scada.dir/field_client.cpp.o" "gcc" "src/scada/CMakeFiles/spire_scada.dir/field_client.cpp.o.d"
  "/root/repo/src/scada/historian.cpp" "src/scada/CMakeFiles/spire_scada.dir/historian.cpp.o" "gcc" "src/scada/CMakeFiles/spire_scada.dir/historian.cpp.o.d"
  "/root/repo/src/scada/hmi.cpp" "src/scada/CMakeFiles/spire_scada.dir/hmi.cpp.o" "gcc" "src/scada/CMakeFiles/spire_scada.dir/hmi.cpp.o.d"
  "/root/repo/src/scada/master.cpp" "src/scada/CMakeFiles/spire_scada.dir/master.cpp.o" "gcc" "src/scada/CMakeFiles/spire_scada.dir/master.cpp.o.d"
  "/root/repo/src/scada/proxy.cpp" "src/scada/CMakeFiles/spire_scada.dir/proxy.cpp.o" "gcc" "src/scada/CMakeFiles/spire_scada.dir/proxy.cpp.o.d"
  "/root/repo/src/scada/topology.cpp" "src/scada/CMakeFiles/spire_scada.dir/topology.cpp.o" "gcc" "src/scada/CMakeFiles/spire_scada.dir/topology.cpp.o.d"
  "/root/repo/src/scada/wire.cpp" "src/scada/CMakeFiles/spire_scada.dir/wire.cpp.o" "gcc" "src/scada/CMakeFiles/spire_scada.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spire_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spire_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/spire_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spire_net.dir/DependInfo.cmake"
  "/root/repo/build/src/modbus/CMakeFiles/spire_modbus.dir/DependInfo.cmake"
  "/root/repo/build/src/dnp3/CMakeFiles/spire_dnp3.dir/DependInfo.cmake"
  "/root/repo/build/src/plc/CMakeFiles/spire_plc.dir/DependInfo.cmake"
  "/root/repo/build/src/spines/CMakeFiles/spire_spines.dir/DependInfo.cmake"
  "/root/repo/build/src/prime/CMakeFiles/spire_prime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
