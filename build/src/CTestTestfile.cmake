# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("crypto")
subdirs("net")
subdirs("modbus")
subdirs("dnp3")
subdirs("plc")
subdirs("spines")
subdirs("prime")
subdirs("scada")
subdirs("mana")
subdirs("attack")
