file(REMOVE_RECURSE
  "CMakeFiles/spire_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/spire_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/spire_crypto.dir/hmac.cpp.o"
  "CMakeFiles/spire_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/spire_crypto.dir/keyring.cpp.o"
  "CMakeFiles/spire_crypto.dir/keyring.cpp.o.d"
  "CMakeFiles/spire_crypto.dir/sha256.cpp.o"
  "CMakeFiles/spire_crypto.dir/sha256.cpp.o.d"
  "libspire_crypto.a"
  "libspire_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spire_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
