# Empty dependencies file for spire_crypto.
# This may be replaced when dependencies are built.
