file(REMOVE_RECURSE
  "libspire_crypto.a"
)
