
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prime/messages.cpp" "src/prime/CMakeFiles/spire_prime.dir/messages.cpp.o" "gcc" "src/prime/CMakeFiles/spire_prime.dir/messages.cpp.o.d"
  "/root/repo/src/prime/recovery.cpp" "src/prime/CMakeFiles/spire_prime.dir/recovery.cpp.o" "gcc" "src/prime/CMakeFiles/spire_prime.dir/recovery.cpp.o.d"
  "/root/repo/src/prime/replica.cpp" "src/prime/CMakeFiles/spire_prime.dir/replica.cpp.o" "gcc" "src/prime/CMakeFiles/spire_prime.dir/replica.cpp.o.d"
  "/root/repo/src/prime/transport.cpp" "src/prime/CMakeFiles/spire_prime.dir/transport.cpp.o" "gcc" "src/prime/CMakeFiles/spire_prime.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spire_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spire_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/spire_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
