file(REMOVE_RECURSE
  "CMakeFiles/spire_prime.dir/messages.cpp.o"
  "CMakeFiles/spire_prime.dir/messages.cpp.o.d"
  "CMakeFiles/spire_prime.dir/recovery.cpp.o"
  "CMakeFiles/spire_prime.dir/recovery.cpp.o.d"
  "CMakeFiles/spire_prime.dir/replica.cpp.o"
  "CMakeFiles/spire_prime.dir/replica.cpp.o.d"
  "CMakeFiles/spire_prime.dir/transport.cpp.o"
  "CMakeFiles/spire_prime.dir/transport.cpp.o.d"
  "libspire_prime.a"
  "libspire_prime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spire_prime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
