file(REMOVE_RECURSE
  "libspire_prime.a"
)
