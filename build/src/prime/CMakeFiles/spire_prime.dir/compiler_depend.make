# Empty compiler generated dependencies file for spire_prime.
# This may be replaced when dependencies are built.
