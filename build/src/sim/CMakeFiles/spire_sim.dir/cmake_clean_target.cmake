file(REMOVE_RECURSE
  "libspire_sim.a"
)
