# Empty dependencies file for spire_sim.
# This may be replaced when dependencies are built.
