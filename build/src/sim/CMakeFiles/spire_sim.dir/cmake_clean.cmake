file(REMOVE_RECURSE
  "CMakeFiles/spire_sim.dir/rng.cpp.o"
  "CMakeFiles/spire_sim.dir/rng.cpp.o.d"
  "CMakeFiles/spire_sim.dir/simulator.cpp.o"
  "CMakeFiles/spire_sim.dir/simulator.cpp.o.d"
  "libspire_sim.a"
  "libspire_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spire_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
