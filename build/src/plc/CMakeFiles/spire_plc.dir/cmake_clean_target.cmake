file(REMOVE_RECURSE
  "libspire_plc.a"
)
