file(REMOVE_RECURSE
  "CMakeFiles/spire_plc.dir/breaker.cpp.o"
  "CMakeFiles/spire_plc.dir/breaker.cpp.o.d"
  "CMakeFiles/spire_plc.dir/plc.cpp.o"
  "CMakeFiles/spire_plc.dir/plc.cpp.o.d"
  "CMakeFiles/spire_plc.dir/rtu.cpp.o"
  "CMakeFiles/spire_plc.dir/rtu.cpp.o.d"
  "libspire_plc.a"
  "libspire_plc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spire_plc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
