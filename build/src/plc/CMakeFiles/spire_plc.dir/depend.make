# Empty dependencies file for spire_plc.
# This may be replaced when dependencies are built.
