#include "spines/message.hpp"

namespace spire::spines {

namespace {

template <typename T>
std::optional<T> guarded_decode(std::span<const std::uint8_t> data,
                                T (*parse)(util::ByteReader&)) {
  try {
    util::ByteReader r(data);
    T value = parse(r);
    r.expect_done();
    return value;
  } catch (const util::SerializationError&) {
    return std::nullopt;
  }
}

}  // namespace

util::Bytes HelloBody::encode() const {
  util::ByteWriter w;
  w.u64(seq);
  return w.take();
}

std::optional<HelloBody> HelloBody::decode(std::span<const std::uint8_t> data) {
  return guarded_decode<HelloBody>(data, [](util::ByteReader& r) {
    HelloBody h;
    h.seq = r.u64();
    return h;
  });
}

util::Bytes LinkStateBody::signed_bytes() const {
  util::ByteWriter w;
  w.str(origin);
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(neighbors.size()));
  for (const auto& n : neighbors) w.str(n);
  return w.take();
}

util::Bytes LinkStateBody::encode() const {
  util::ByteWriter w;
  w.raw(signed_bytes());
  signature.encode(w);
  return w.take();
}

std::optional<LinkStateBody> LinkStateBody::decode(
    std::span<const std::uint8_t> data) {
  return guarded_decode<LinkStateBody>(data, [](util::ByteReader& r) {
    LinkStateBody b;
    b.origin = r.str();
    b.seq = r.u64();
    const std::uint32_t n = r.u32();
    if (n > 4096) throw util::SerializationError("absurd neighbor count");
    b.neighbors.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) b.neighbors.push_back(r.str());
    b.signature = crypto::Signature::decode(r);
    return b;
  });
}

util::Bytes AreaSummaryBody::signed_bytes() const {
  util::ByteWriter w;
  w.str(origin);
  w.u32(area);
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(area_path.size()));
  for (const std::uint32_t a : area_path) w.u32(a);
  w.u32(total_members);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const auto& m : members) w.str(m);
  return w.take();
}

util::Bytes AreaSummaryBody::encode() const {
  util::ByteWriter w;
  w.raw(signed_bytes());
  signature.encode(w);
  return w.take();
}

std::optional<AreaSummaryBody> AreaSummaryBody::decode(
    std::span<const std::uint8_t> data) {
  return guarded_decode<AreaSummaryBody>(data, [](util::ByteReader& r) {
    AreaSummaryBody b;
    b.origin = r.str();
    b.area = r.u32();
    b.seq = r.u64();
    const std::uint32_t paths = r.u32();
    if (paths > 256) throw util::SerializationError("absurd area path");
    b.area_path.reserve(paths);
    for (std::uint32_t i = 0; i < paths; ++i) b.area_path.push_back(r.u32());
    b.total_members = r.u32();
    const std::uint32_t n = r.u32();
    if (n > 4096) throw util::SerializationError("absurd member count");
    b.members.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) b.members.push_back(r.str());
    b.signature = crypto::Signature::decode(r);
    return b;
  });
}

util::Bytes DataBody::encode() const {
  util::ByteWriter w(4 + src.size() + 4 + dst.size() + 2 + 2 + 1 + 8 + 1 + 4 +
                     payload.size());
  w.str(src);
  w.str(dst);
  w.u16(src_port);
  w.u16(dst_port);
  w.u8(static_cast<std::uint8_t>(priority));
  w.u64(msg_seq);
  w.u8(ttl);
  w.blob(payload);
  return w.take();
}

std::optional<DataBody> DataBody::decode(std::span<const std::uint8_t> data) {
  return guarded_decode<DataBody>(data, [](util::ByteReader& r) {
    DataBody d;
    d.src = r.str();
    d.dst = r.str();
    d.src_port = r.u16();
    d.dst_port = r.u16();
    const std::uint8_t prio = r.u8();
    if (prio > 2) throw util::SerializationError("bad priority");
    d.priority = static_cast<Priority>(prio);
    d.msg_seq = r.u64();
    d.ttl = r.u8();
    d.payload = r.blob();
    return d;
  });
}

util::Bytes LinkEnvelope::encode() const {
  util::ByteWriter w;
  w.str(sender);
  w.boolean(sealed);
  w.blob(body);
  return w.take();
}

std::optional<LinkEnvelope> LinkEnvelope::decode(
    std::span<const std::uint8_t> data) {
  return guarded_decode<LinkEnvelope>(data, [](util::ByteReader& r) {
    LinkEnvelope e;
    e.sender = r.str();
    e.sealed = r.boolean();
    e.body = r.blob();
    return e;
  });
}

util::Bytes InnerPacket::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(link_seq);
  w.blob(body);
  return w.take();
}

std::optional<InnerPacket> InnerPacket::decode(
    std::span<const std::uint8_t> data) {
  return guarded_decode<InnerPacket>(data, [](util::ByteReader& r) {
    InnerPacket p;
    const std::uint8_t t = r.u8();
    // 4 is the legacy debug opcode: intentionally NOT a valid packet.
    if (t < 1 || t > 6 || t == 4) {
      throw util::SerializationError("bad packet type");
    }
    p.type = static_cast<PacketType>(t);
    p.link_seq = r.u64();
    p.body = r.blob();
    return p;
  });
}

}  // namespace spire::spines
