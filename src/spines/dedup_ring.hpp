// Flood-dedup cache: a fixed-size open-addressing hash table keyed by
// (source handle, message seq) with a circular FIFO driving eviction.
// Replaces the old std::set<pair<string, u64>> + deque: identical
// semantics (exact membership, oldest-first eviction at capacity) but
// O(1) insert/lookup/evict with zero steady-state allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "spines/node_table.hpp"

namespace spire::spines {

class DedupRing {
 public:
  explicit DedupRing(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity),
        fifo_(capacity_) {
    std::size_t slots = 16;
    while (slots < capacity_ * 2) slots <<= 1;  // load factor <= 0.5
    slots_.assign(slots, Slot{});
    mask_ = slots - 1;
  }

  /// Returns true if (src, seq) is already recorded; otherwise records
  /// it — evicting the oldest entry once `capacity` are live — and
  /// returns false.
  bool check_and_insert(NodeHandle src, std::uint64_t seq) {
    std::size_t i = home(src, seq);
    while (slots_[i].used) {
      if (slots_[i].src == src && slots_[i].seq == seq) return true;
      i = (i + 1) & mask_;
    }
    if (live_ == capacity_) {
      const auto& oldest = fifo_[fifo_head_];
      erase(oldest.first, oldest.second);
      ++evictions_;
      // The backward-shift in erase() may have moved the insertion
      // point; re-probe from home.
      i = home(src, seq);
      while (slots_[i].used) i = (i + 1) & mask_;
    }
    slots_[i] = Slot{seq, src, true};
    fifo_[(fifo_head_ + live_) % capacity_] = {src, seq};
    if (live_ < capacity_) {
      ++live_;
    } else {
      fifo_head_ = (fifo_head_ + 1) % capacity_;
    }
    return false;
  }

  [[nodiscard]] bool contains(NodeHandle src, std::uint64_t seq) const {
    std::size_t i = home(src, seq);
    while (slots_[i].used) {
      if (slots_[i].src == src && slots_[i].seq == seq) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::size_t size() const { return live_; }

 private:
  struct Slot {
    std::uint64_t seq = 0;
    NodeHandle src = 0;
    bool used = false;
  };

  [[nodiscard]] std::size_t home(NodeHandle src, std::uint64_t seq) const {
    // Fibonacci-style mix of both key halves; the table is a power of
    // two so only the mixed high bits matter.
    std::uint64_t h = seq * 0x9E3779B97F4A7C15ULL;
    h ^= (static_cast<std::uint64_t>(src) + 0x9E3779B9U) * 0xC2B2AE3D27D4EB4FULL;
    h ^= h >> 29;
    return static_cast<std::size_t>(h) & mask_;
  }

  /// Removes a key that is known to be present, repairing the probe
  /// chain with the standard backward-shift so lookups stay correct.
  void erase(NodeHandle src, std::uint64_t seq) {
    std::size_t i = home(src, seq);
    while (!(slots_[i].used && slots_[i].src == src && slots_[i].seq == seq)) {
      i = (i + 1) & mask_;
    }
    std::size_t j = i;
    slots_[i].used = false;
    while (true) {
      j = (j + 1) & mask_;
      if (!slots_[j].used) return;
      const std::size_t k = home(slots_[j].src, slots_[j].seq);
      // Shift slots_[j] back into the hole at i unless its home lies
      // (cyclically) strictly after the hole and at or before j.
      const bool keep = (i < j) ? (i < k && k <= j) : (i < k || k <= j);
      if (!keep) {
        slots_[i] = slots_[j];
        slots_[j].used = false;
        i = j;
      }
    }
  }

  std::size_t capacity_;
  std::vector<Slot> slots_;
  std::vector<std::pair<NodeHandle, std::uint64_t>> fifo_;  ///< insertion order
  std::size_t fifo_head_ = 0;
  std::size_t live_ = 0;
  std::size_t mask_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace spire::spines
