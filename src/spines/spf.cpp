#include "spines/spf.hpp"

#include <algorithm>
#include <cassert>

namespace spire::spines {

void SpfEngine::attach_self(NodeHandle self) {
  self_ = self;
  if (self_ != kNoHandle) ensure_nodes(self_ + 1);
  force_full_ = true;
}

void SpfEngine::ensure_nodes(std::size_t count) {
  if (count <= n_) return;
  n_ = count;
  adj_.resize(n_);
  row_present_.resize(n_, 0);
  dist_.resize(n_, kInfDist);
  parent_.resize(n_, kNoHandle);
  routes_.resize(n_, kNoHandle);
  children_.resize(n_);
  settled_round_.resize(n_, 0);
}

bool SpfEngine::advertises(NodeHandle a, NodeHandle b) const {
  const std::vector<NodeHandle>& row = adj_[a];
  return std::binary_search(row.begin(), row.end(), b);
}

bool SpfEngine::set_adjacency(NodeHandle origin,
                              const std::vector<NodeHandle>& neighbors) {
  ensure_nodes(origin + 1);
  row_scratch_.clear();
  for (const NodeHandle x : neighbors) {
    if (x == kNoHandle || x == origin) continue;
    ensure_nodes(x + 1);
    row_scratch_.push_back(x);
  }
  std::sort(row_scratch_.begin(), row_scratch_.end());
  row_scratch_.erase(std::unique(row_scratch_.begin(), row_scratch_.end()),
                     row_scratch_.end());

  std::vector<NodeHandle>& row = adj_[origin];
  if (row_present_[origin] && row == row_scratch_) return false;

  if (!row_present_[origin]) {
    // An origin's first advertisement changes the shape of the graph
    // (a brand-new vertex with edges): rebuild rather than repair.
    row_present_[origin] = 1;
    force_full_ = true;
  } else {
    // Record the confirmed-edge deltas: (origin, x) was/is confirmed
    // exactly when x advertises origin back, and x's row is untouched
    // by this call.
    auto old_it = row.begin();
    auto new_it = row_scratch_.begin();
    while (old_it != row.end() || new_it != row_scratch_.end()) {
      if (new_it == row_scratch_.end() ||
          (old_it != row.end() && *old_it < *new_it)) {
        if (advertises(*old_it, origin)) {
          pending_remove_.push_back({origin, *old_it});
        }
        ++old_it;
      } else if (old_it == row.end() || *new_it < *old_it) {
        if (advertises(*new_it, origin)) {
          pending_add_.push_back({origin, *new_it});
        }
        ++new_it;
      } else {
        ++old_it;
        ++new_it;
      }
    }
  }
  row = row_scratch_;
  return true;
}

void SpfEngine::compute_full(std::vector<std::uint32_t>& dist,
                             std::vector<NodeHandle>& parent,
                             std::vector<NodeHandle>& routes) const {
  dist.assign(n_, kInfDist);
  parent.assign(n_, kNoHandle);
  routes.assign(n_, kNoHandle);
  if (self_ == kNoHandle || self_ >= n_) return;
  dist[self_] = 0;
  parent[self_] = self_;

  // Each frontier is processed in ascending handle order, so the first
  // discoverer of v is its minimum-handle neighbor at dist - 1 — the
  // canonical parent.
  std::vector<NodeHandle> frontier{self_};
  std::vector<NodeHandle> next;
  std::uint32_t d = 0;
  while (!frontier.empty()) {
    next.clear();
    for (const NodeHandle u : frontier) {
      for (const NodeHandle v : adj_[u]) {
        if (dist[v] != kInfDist) continue;
        if (!advertises(v, u)) continue;  // unconfirmed edge
        dist[v] = d + 1;
        parent[v] = u;
        routes[v] = (u == self_) ? v : routes[u];
        next.push_back(v);
      }
    }
    std::sort(next.begin(), next.end());
    frontier.swap(next);
    ++d;
  }
}

void SpfEngine::rebuild_children() {
  for (auto& c : children_) c.clear();
  for (NodeHandle v = 0; v < n_; ++v) {
    if (v == self_ || parent_[v] == kNoHandle) continue;
    children_[parent_[v]].push_back(v);
  }
}

void SpfEngine::full_bfs() {
  ++stats_.full_runs;
  compute_full(dist_, parent_, routes_);
  rebuild_children();
}

void SpfEngine::detach_child(NodeHandle parent, NodeHandle child) {
  std::vector<NodeHandle>& kids = children_[parent];
  const auto it = std::find(kids.begin(), kids.end(), child);
  if (it != kids.end()) {
    *it = kids.back();
    kids.pop_back();
  }
}

void SpfEngine::orphan_subtree(NodeHandle v) {
  if (dist_[v] == kInfDist) return;  // already invalid
  detach_child(parent_[v], v);
  stack_scratch_.clear();
  stack_scratch_.push_back(v);
  while (!stack_scratch_.empty()) {
    const NodeHandle x = stack_scratch_.back();
    stack_scratch_.pop_back();
    if (dist_[x] == kInfDist) continue;
    dist_[x] = kInfDist;
    parent_[x] = kNoHandle;
    routes_[x] = kNoHandle;
    invalid_scratch_.push_back(x);
    for (const NodeHandle c : children_[x]) stack_scratch_.push_back(c);
    children_[x].clear();
  }
}

void SpfEngine::push_candidate(NodeHandle v, std::uint32_t d) {
  if (buckets_.size() <= d) buckets_.resize(d + 1);
  buckets_[d].push_back(v);
}

void SpfEngine::incremental() {
  ++stats_.incremental_runs;
  ++round_;
  invalid_scratch_.clear();
  route_fix_queue_.clear();

  // Phase 1: removed tree edges orphan the subtree hanging off them.
  // Edges that were re-added within the same batch are still confirmed
  // and need no repair.
  for (const EdgeDelta& e : pending_remove_) {
    if (confirmed(e.u, e.v)) continue;
    if (parent_[e.v] == e.u) {
      orphan_subtree(e.v);
    } else if (parent_[e.u] == e.v) {
      orphan_subtree(e.u);
    }
    // A removed non-tree edge cannot change the canonical function:
    // dist is realized by tree paths, and the canonical parent is the
    // minimum-handle neighbor at dist - 1, which a non-parent edge
    // endpoint is not.
  }

  // Phase 2: seed the bucket queue. Invalid vertices are relaxed from
  // every still-valid confirmed neighbor; added edges can improve an
  // endpoint's dist or (at equal dist) its canonical parent.
  std::uint32_t max_bucket = 0;
  auto seed = [&](NodeHandle v, std::uint32_t d) {
    push_candidate(v, d);
    max_bucket = std::max(max_bucket, d);
  };
  for (const NodeHandle x : invalid_scratch_) {
    for (const NodeHandle u : adj_[x]) {
      if (dist_[u] == kInfDist || !advertises(u, x)) continue;
      seed(x, dist_[u] + 1);
    }
  }
  for (const EdgeDelta& e : pending_add_) {
    if (!confirmed(e.u, e.v)) continue;  // removed again within the batch
    const NodeHandle ends[2][2] = {{e.u, e.v}, {e.v, e.u}};
    for (const auto& uv : ends) {
      const NodeHandle a = uv[0];
      const NodeHandle b = uv[1];
      if (dist_[a] == kInfDist) continue;
      if (dist_[a] + 1 < dist_[b]) {
        seed(b, dist_[a] + 1);
      } else if (dist_[b] != kInfDist && dist_[a] + 1 == dist_[b] &&
                 a < parent_[b]) {
        seed(b, dist_[b]);  // canonical-parent-only revisit
      }
    }
  }

  // Phase 3: settle in distance order. Every vertex with final dist d
  // has a candidate in bucket d by the time bucket d is processed, and
  // all vertices at d - 1 are final then, so the canonical parent scan
  // over current dist values is exact.
  std::uint64_t settled = 0;
  for (std::uint32_t d = 0; d < buckets_.size() && d <= max_bucket; ++d) {
    // Index buckets_[d] afresh on every access: seed() below may grow
    // buckets_ and reallocate, so no reference may be held across it.
    for (std::size_t i = 0; i < buckets_[d].size(); ++i) {
      const NodeHandle v = buckets_[d][i];
      if (settled_round_[v] == round_) continue;
      if (d > dist_[v]) continue;  // a better candidate already settled
      NodeHandle p = kNoHandle;
      for (const NodeHandle u : adj_[v]) {
        if (dist_[u] == d - 1 && advertises(u, v)) {
          p = u;
          break;  // rows are sorted: first hit is the minimum handle
        }
      }
      if (p == kNoHandle) continue;  // superseded candidate; skip
      const std::uint32_t old_dist = dist_[v];
      const bool was_invalid = old_dist == kInfDist;
      if (!was_invalid && parent_[v] != kNoHandle) detach_child(parent_[v], v);
      dist_[v] = d;
      parent_[v] = p;
      children_[p].push_back(v);
      const NodeHandle old_route = routes_[v];
      routes_[v] = (p == self_) ? v : routes_[p];
      settled_round_[v] = round_;
      ++settled;
      if (routes_[v] != old_route) route_fix_queue_.push_back(v);
      if (was_invalid || d < old_dist) {
        for (const NodeHandle w : adj_[v]) {
          if (!advertises(w, v)) continue;
          if (d + 1 < dist_[w]) {
            seed(w, d + 1);
          } else if (d + 1 == dist_[w] && settled_round_[w] != round_ &&
                     v < parent_[w]) {
            seed(w, dist_[w]);  // v became w's canonical parent
          }
        }
      }
    }
    buckets_[d].clear();
  }
  for (auto& bucket : buckets_) bucket.clear();  // drop unreached seeds
  stats_.vertices_settled += settled;

  // Phase 4: a route change propagates to every stale descendant. A
  // vertex settled in phase 3 already derived its route from a final
  // ancestor chain; everything else inherits parent-first down the
  // children lists (re-fixing until values stabilize).
  for (std::size_t head = 0; head < route_fix_queue_.size(); ++head) {
    const NodeHandle v = route_fix_queue_[head];
    for (const NodeHandle c : children_[v]) {
      const NodeHandle nr = (v == self_) ? c : routes_[v];
      if (routes_[c] != nr) {
        routes_[c] = nr;
        route_fix_queue_.push_back(c);
      }
    }
  }
}

void SpfEngine::recompute() {
  if (self_ == kNoHandle) return;
  ensure_nodes(self_ + 1);
  const bool batch_overflow =
      pending_add_.size() + pending_remove_.size() > kMaxIncrementalEdges;
  if (!has_run_ || force_full_ || batch_overflow) {
    if (has_run_ && force_full_) ++stats_.fallback_shape;
    if (has_run_ && !force_full_ && batch_overflow) ++stats_.fallback_batch;
    full_bfs();
  } else {
    incremental();
  }
  has_run_ = true;
  force_full_ = false;
  pending_add_.clear();
  pending_remove_.clear();
}

bool SpfEngine::verify_against_full() {
  compute_full(vdist_, vparent_, vroutes_);
  return vdist_ == dist_ && vparent_ == parent_ && vroutes_ == routes_;
}

}  // namespace spire::spines
