// Spines overlay wire protocol.
//
// Three packet types flow between overlay daemons: link Hellos (liveness),
// signed link-state updates (topology flooding), and Data messages
// (session traffic). In intrusion-tolerant mode every daemon-to-daemon
// packet is sealed with the per-link key (encrypt-then-MAC) — the
// mechanism that made the red team's modified/patched Spines daemons
// harmless in the excursion (paper §IV-B).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/keyring.hpp"
#include "util/bytes.hpp"

namespace spire::spines {

/// Overlay node identifier, e.g. "int3" or "ext1".
using NodeId = std::string;

/// Session port within a daemon (application multiplexing).
using SessionPort = std::uint16_t;

/// Overlay multicast: a DataBody with this destination is delivered at
/// every node that has the session port open (except the origin) and is
/// flooded regardless of forwarding mode — Spines' multicast groups,
/// which Prime uses for its all-replica broadcasts.
inline const NodeId kBroadcastDst = "*";

/// Message priority: Spires' priority flooding serves higher classes
/// first; SCADA control traffic rides kHigh.
enum class Priority : std::uint8_t { kLow = 0, kMedium = 1, kHigh = 2 };

enum class PacketType : std::uint8_t {
  kHello = 1,
  kLinkState = 2,
  kData = 3,
  // 4 is the legacy debug opcode (deliberately not a valid InnerPacket).
  kAck = 5,  ///< link-level acknowledgment of a kData link_seq
  kAreaSummary = 6,  ///< border-daemon inter-area reachability summary
};

struct HelloBody {
  std::uint64_t seq = 0;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<HelloBody> decode(std::span<const std::uint8_t> data);
};

/// Flooded, origin-signed adjacency advertisement.
struct LinkStateBody {
  NodeId origin;
  std::uint64_t seq = 0;
  std::vector<NodeId> neighbors;
  crypto::Signature signature;

  /// Bytes covered by the signature (everything but the signature).
  [[nodiscard]] util::Bytes signed_bytes() const;
  [[nodiscard]] util::Bytes encode() const;
  static std::optional<LinkStateBody> decode(std::span<const std::uint8_t> data);
};

/// Border-daemon reachability summary (hierarchical area routing).
///
/// A border daemon periodically advertises which members of a subject
/// `area` are reachable, signed under its own identity — summaries are
/// always re-originated at each border ("next-hop-self"), never
/// relayed verbatim. `members` is a bounded, rotated subset of the
/// full set (BATMAN-style originator capping): `total_members` tells
/// receivers the full cardinality while each advertisement stays
/// O(cap). `area_path` lists the areas the information has traversed;
/// a border drops summaries whose path already contains its own area,
/// which bounds inter-area propagation to simple area paths.
struct AreaSummaryBody {
  NodeId origin;
  std::uint32_t area = 0;  ///< subject area the members belong to
  std::uint64_t seq = 0;   ///< per-origin, across all its summary streams
  std::vector<std::uint32_t> area_path;
  std::uint32_t total_members = 0;
  std::vector<NodeId> members;
  crypto::Signature signature;

  /// Bytes covered by the signature (everything but the signature).
  [[nodiscard]] util::Bytes signed_bytes() const;
  [[nodiscard]] util::Bytes encode() const;
  static std::optional<AreaSummaryBody> decode(
      std::span<const std::uint8_t> data);
};

/// End-to-end session message, forwarded hop by hop.
struct DataBody {
  NodeId src;
  NodeId dst;
  SessionPort src_port = 0;
  SessionPort dst_port = 0;
  Priority priority = Priority::kMedium;
  std::uint64_t msg_seq = 0;  ///< per-origin, for flood dedup
  std::uint8_t ttl = 32;
  util::Bytes payload;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<DataBody> decode(std::span<const std::uint8_t> data);
};

/// Link-layer envelope: identifies the sending daemon (so the receiver
/// can pick the link key) and carries either a sealed or a plaintext
/// inner packet depending on the overlay's security mode.
struct LinkEnvelope {
  NodeId sender;
  bool sealed = false;
  util::Bytes body;  ///< sealed bytes, or plaintext [type u8 | body]

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<LinkEnvelope> decode(std::span<const std::uint8_t> data);
};

/// Inner packet: [type u8][link_seq u64][body...].
struct InnerPacket {
  PacketType type = PacketType::kHello;
  std::uint64_t link_seq = 0;  ///< per-link replay counter
  util::Bytes body;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<InnerPacket> decode(std::span<const std::uint8_t> data);
};

}  // namespace spire::spines
