#include "spines/daemon.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace spire::spines {

namespace {
/// Approximate wire size of a data message for pacing purposes.
std::size_t data_wire_size(const DataBody& d) { return 64 + d.payload.size(); }
}  // namespace

Daemon::Daemon(sim::Simulator& sim, net::Host& host, DaemonConfig config,
               const crypto::Keyring& keyring, crypto::Verifier verifier)
    : sim_(sim),
      host_(host),
      config_(std::move(config)),
      keyring_(keyring),
      verifier_(std::move(verifier)),
      signer_(config_.id, keyring.identity_key(config_.id)),
      log_("spines." + config_.id) {}

void Daemon::make_channels(Neighbor& n, const NodeId& id, bool corrupted) {
  // Per-direction keys: each direction seals under a key bound to the
  // sender's id, so the two directions never share a nonce space.
  const std::string link_label =
      corrupted ? "corrupted-binary-without-keys" : "";
  auto dir_key = [&](const NodeId& sender) {
    crypto::SymmetricKey base = keyring_.link_key(config_.id, id);
    if (corrupted) {
      // A rebuilt daemon without the deployment's key material: derive
      // from a wrong base so nothing it seals verifies anywhere.
      base = keyring_.derive(link_label + sender);
    }
    const util::Bytes label = util::to_bytes("dir:" + sender);
    crypto::SymmetricKey k{};
    const crypto::Digest d = crypto::hmac_sha256(base, label);
    std::copy(d.begin(), d.end(), k.begin());
    return k;
  };
  n.send_channel = std::make_unique<crypto::SecureChannel>(dir_key(config_.id));
  n.recv_channel = std::make_unique<crypto::SecureChannel>(dir_key(id));
}

void Daemon::add_neighbor(const NodeId& id, net::Endpoint address) {
  Neighbor n;
  n.address = address;
  make_channels(n, id, false);
  neighbors_.emplace(id, std::move(n));
}

void Daemon::start() {
  if (running_) return;
  running_ = true;
  host_.bind_udp(config_.udp_port,
                 [this](const net::Datagram& d) { handle_udp(d); });
  hello_tick();
  lsu_tick();
  if (config_.reliable_data_links &&
      config_.mode == ForwardingMode::kRouted) {
    retransmit_tick();
  }
}

void Daemon::stop() {
  if (!running_) return;
  running_ = false;
  host_.unbind_udp(config_.udp_port);
  for (auto& [id, n] : neighbors_) {
    n.up = false;
    for (auto& q : n.queues) q.clear();
    n.unacked.clear();
  }
}

void Daemon::open_session(SessionPort port, SessionHandler handler) {
  sessions_[port] = std::move(handler);
}

void Daemon::close_session(SessionPort port) { sessions_.erase(port); }

bool Daemon::session_send(SessionPort src_port, const NodeId& dst,
                          SessionPort dst_port, util::Bytes payload,
                          Priority priority) {
  if (!running_) return false;
  DataBody data;
  data.src = config_.id;
  data.dst = dst;
  data.src_port = src_port;
  data.dst_port = dst_port;
  data.priority = priority;
  data.msg_seq = ++data_seq_;
  data.payload = std::move(payload);
  ++stats_.data_originated;
  on_data(std::nullopt, std::move(data));
  return true;
}

void Daemon::corrupt_link_keys() {
  keys_corrupted_ = true;
  for (auto& [id, n] : neighbors_) make_channels(n, id, true);
}

void Daemon::restore_link_keys() {
  keys_corrupted_ = false;
  for (auto& [id, n] : neighbors_) make_channels(n, id, false);
}

bool Daemon::link_up(const NodeId& neighbor) const {
  const auto it = neighbors_.find(neighbor);
  return it != neighbors_.end() && it->second.up;
}

std::optional<NodeId> Daemon::next_hop(const NodeId& dst) const {
  const auto it = routes_.find(dst);
  if (it == routes_.end()) return std::nullopt;
  return it->second;
}

void Daemon::send_packet(const NodeId& neighbor, PacketType type,
                         const util::Bytes& body) {
  auto it = neighbors_.find(neighbor);
  if (it == neighbors_.end() || !running_) return;
  Neighbor& n = it->second;

  InnerPacket inner;
  inner.type = type;
  inner.link_seq = ++n.send_link_seq;
  inner.body = body;
  const util::Bytes inner_bytes = inner.encode();

  // Reliable message service: data packets on routed links are tracked
  // until acked (flooding already provides its own redundancy).
  if (type == PacketType::kData && config_.reliable_data_links &&
      config_.mode == ForwardingMode::kRouted) {
    n.unacked[inner.link_seq] = Neighbor::Unacked{inner_bytes, sim_.now(), 0};
  }
  transmit_inner(neighbor, inner_bytes);
}

void Daemon::transmit_inner(const NodeId& neighbor,
                            const util::Bytes& inner_bytes) {
  auto it = neighbors_.find(neighbor);
  if (it == neighbors_.end() || !running_) return;
  Neighbor& n = it->second;
  LinkEnvelope env;
  env.sender = config_.id;
  env.sealed = config_.intrusion_tolerant;
  env.body = env.sealed ? n.send_channel->seal(inner_bytes) : inner_bytes;
  host_.send_udp(n.address.ip, n.address.port, config_.udp_port, env.encode());
}

void Daemon::send_ack(const NodeId& neighbor, std::uint64_t acked_seq) {
  ++stats_.acks_sent;
  util::ByteWriter w;
  w.u64(acked_seq);
  send_packet(neighbor, PacketType::kAck, w.take());
}

bool Daemon::accept_link_seq(Neighbor& n, std::uint64_t seq) {
  if (seq > n.recv_link_seq) {
    const std::uint64_t shift = seq - n.recv_link_seq;
    n.recv_window = shift >= 64 ? 0 : (n.recv_window << shift);
    n.recv_window |= 1;  // bit 0 tracks the new maximum
    n.recv_link_seq = seq;
    return true;
  }
  const std::uint64_t age = n.recv_link_seq - seq;
  if (age >= 64) return false;  // beyond the window: treat as replay
  const std::uint64_t bit = 1ULL << age;
  if (n.recv_window & bit) return false;
  n.recv_window |= bit;
  return true;
}

void Daemon::retransmit_tick() {
  if (!running_) return;
  sim_.schedule_after(config_.retransmit_timeout / 2,
                      [this] { retransmit_tick(); });
  const sim::Time now = sim_.now();
  for (auto& [id, n] : neighbors_) {
    for (auto it = n.unacked.begin(); it != n.unacked.end();) {
      if (now - it->second.sent_at < config_.retransmit_timeout) {
        ++it;
        continue;
      }
      if (it->second.retries >= config_.max_retransmits) {
        ++stats_.data_abandoned;  // link is dead; hellos will notice
        it = n.unacked.erase(it);
        continue;
      }
      ++it->second.retries;
      it->second.sent_at = now;
      ++stats_.data_retransmits;
      transmit_inner(id, it->second.inner_bytes);
      ++it;
    }
  }
}

void Daemon::handle_udp(const net::Datagram& dgram) {
  if (!running_) return;
  const auto env = LinkEnvelope::decode(dgram.payload);
  if (!env) return;

  const auto it = neighbors_.find(env->sender);
  if (it == neighbors_.end()) {
    ++stats_.dropped_auth;
    return;  // unknown daemons are not neighbors; drop.
  }
  Neighbor& n = it->second;

  util::Bytes inner_bytes;
  if (config_.intrusion_tolerant) {
    if (!env->sealed) {
      ++stats_.dropped_auth;
      return;
    }
    auto opened = n.recv_channel->open(env->body);
    if (!opened) {
      ++stats_.dropped_auth;
      return;  // wrong keys, tampering, or a non-member impersonating.
    }
    inner_bytes = std::move(*opened);
  } else {
    inner_bytes = env->body;
  }

  const auto inner = InnerPacket::decode(inner_bytes);
  if (!inner) {
    // Legacy debug opcode and other malformed inner packets land here.
    if (!inner_bytes.empty() && inner_bytes.front() == kDebugPacketType) {
      if (config_.intrusion_tolerant) {
        ++stats_.debug_packets_ignored;  // code path compiled out in IT mode
      } else {
        ++stats_.debug_packets_honoured;
      }
    }
    return;
  }

  const bool reliable_data = inner->type == PacketType::kData &&
                             config_.reliable_data_links &&
                             config_.mode == ForwardingMode::kRouted;
  if (!accept_link_seq(n, inner->link_seq)) {
    ++stats_.dropped_replay;
    // Duplicate data usually means our ack was lost: re-ack so the
    // sender stops retransmitting.
    if (reliable_data) send_ack(env->sender, inner->link_seq);
    return;
  }
  if (reliable_data) send_ack(env->sender, inner->link_seq);

  process_inner(env->sender, *inner);
}

void Daemon::process_inner(const NodeId& from, const InnerPacket& inner) {
  switch (inner.type) {
    case PacketType::kHello:
      if (HelloBody::decode(inner.body)) on_hello(from);
      break;
    case PacketType::kLinkState:
      if (const auto lsu = LinkStateBody::decode(inner.body)) {
        on_link_state(from, *lsu);
      }
      break;
    case PacketType::kData:
      if (auto data = DataBody::decode(inner.body)) {
        on_data(from, std::move(*data));
      }
      break;
    case PacketType::kAck: {
      try {
        util::ByteReader r(inner.body);
        const std::uint64_t acked = r.u64();
        r.expect_done();
        neighbors_.at(from).unacked.erase(acked);
      } catch (const util::SerializationError&) {
      }
      break;
    }
  }
}

void Daemon::on_hello(const NodeId& from) {
  Neighbor& n = neighbors_.at(from);
  n.last_hello = sim_.now();
  if (!n.up) {
    n.up = true;
    log_.debug("link to ", from, " up");
    broadcast_own_lsu();
    recompute_routes();
  }
}

void Daemon::on_link_state(const NodeId& arrival, const LinkStateBody& lsu) {
  auto& entry = lsdb_[lsu.origin];
  if (lsu.seq <= entry.seq && lsu.origin != config_.id) {
    return;  // stale or duplicate
  }
  const util::Bytes covered = lsu.signed_bytes();
  if (!verifier_.verify(lsu.origin, covered, lsu.signature)) {
    ++stats_.lsu_rejected_sig;
    return;
  }
  if (lsu.origin == config_.id) return;  // our own, reflected back

  ++stats_.lsu_accepted;
  entry.seq = lsu.seq;
  entry.neighbors = lsu.neighbors;
  recompute_routes();

  // Re-flood to all up neighbors except where it came from.
  const util::Bytes body = lsu.encode();
  for (const auto& [id, n] : neighbors_) {
    if (id != arrival && n.up) send_packet(id, PacketType::kLinkState, body);
  }
}

void Daemon::on_data(const std::optional<NodeId>& arrival, DataBody data) {
  if (dedup_seen(data.src, data.msg_seq)) {
    ++stats_.dropped_dedup;
    return;
  }

  const bool is_broadcast = data.dst == kBroadcastDst;
  if (data.dst == config_.id ||
      (is_broadcast && data.src != config_.id)) {
    const auto session = sessions_.find(data.dst_port);
    if (session != sessions_.end()) {
      ++stats_.data_delivered;
      session->second(data);
    }
    if (!is_broadcast) return;  // unicast terminates at its destination
  }

  if (data.ttl <= 1) {
    ++stats_.dropped_ttl;
    return;
  }
  data.ttl--;

  if (is_broadcast || config_.mode == ForwardingMode::kPriorityFlood) {
    for (auto& [id, n] : neighbors_) {
      if (arrival && id == *arrival) continue;
      if (!n.up) continue;
      enqueue_data(id, data);
    }
  } else {
    const auto hop = next_hop(data.dst);
    if (!hop) {
      ++stats_.dropped_no_route;
      return;
    }
    enqueue_data(*hop, data);
  }
  ++stats_.data_forwarded;
}

void Daemon::enqueue_data(const NodeId& neighbor, const DataBody& data) {
  Neighbor& n = neighbors_.at(neighbor);
  const auto prio = static_cast<std::size_t>(data.priority);
  auto& queue = n.queues[prio][data.src];
  if (queue.size() >= config_.per_source_queue_cap) {
    // Per-source cap: an abusive source only ever drops its own traffic.
    ++stats_.dropped_queue_full;
    return;
  }
  queue.push_back(data);
  if (!n.pump_scheduled) pump(neighbor);
}

void Daemon::pump(const NodeId& neighbor) {
  Neighbor& n = neighbors_.at(neighbor);
  n.pump_scheduled = false;
  if (!running_) return;

  if (sim_.now() < n.busy_until) {
    n.pump_scheduled = true;
    sim_.schedule_at(n.busy_until, [this, neighbor] { pump(neighbor); });
    return;
  }

  // Highest priority class with traffic; round-robin across sources.
  for (int prio = 2; prio >= 0; --prio) {
    auto& sources = n.queues[static_cast<std::size_t>(prio)];
    if (sources.empty()) continue;

    // Find the source after rr_last (wrapping), for fairness.
    auto it = sources.upper_bound(n.rr_last[static_cast<std::size_t>(prio)]);
    if (it == sources.end()) it = sources.begin();
    DataBody data = std::move(it->second.front());
    it->second.pop_front();
    n.rr_last[static_cast<std::size_t>(prio)] = it->first;
    if (it->second.empty()) sources.erase(it);

    const double bytes = static_cast<double>(data_wire_size(data));
    const auto tx_time =
        static_cast<sim::Time>(std::ceil(bytes / config_.link_bytes_per_us));
    n.busy_until = sim_.now() + tx_time;
    send_packet(neighbor, PacketType::kData, data.encode());

    bool more = false;
    for (const auto& q : n.queues) {
      if (!q.empty()) {
        more = true;
        break;
      }
    }
    if (more) {
      n.pump_scheduled = true;
      sim_.schedule_at(n.busy_until, [this, neighbor] { pump(neighbor); });
    }
    return;
  }
}

void Daemon::hello_tick() {
  if (!running_) return;
  ++hello_seq_;
  const util::Bytes body = HelloBody{hello_seq_}.encode();
  bool topology_changed = false;
  for (auto& [id, n] : neighbors_) {
    send_packet(id, PacketType::kHello, body);
    if (n.up && sim_.now() - n.last_hello > config_.link_timeout) {
      n.up = false;
      topology_changed = true;
      log_.debug("link to ", id, " down (hello timeout)");
    }
  }
  if (topology_changed) {
    broadcast_own_lsu();
    recompute_routes();
  }
  sim_.schedule_after(config_.hello_interval, [this] { hello_tick(); });
}

void Daemon::lsu_tick() {
  if (!running_) return;
  broadcast_own_lsu();
  sim_.schedule_after(config_.lsu_refresh, [this] { lsu_tick(); });
}

void Daemon::broadcast_own_lsu() {
  LinkStateBody lsu;
  lsu.origin = config_.id;
  lsu.seq = ++own_lsu_seq_;
  for (const auto& [id, n] : neighbors_) {
    if (n.up) lsu.neighbors.push_back(id);
  }
  lsu.signature = signer_.sign(lsu.signed_bytes());

  // Record our own entry so route computation sees it.
  lsdb_[config_.id] = LinkStateEntry{lsu.seq, lsu.neighbors};
  recompute_routes();

  const util::Bytes body = lsu.encode();
  for (const auto& [id, n] : neighbors_) {
    if (n.up) send_packet(id, PacketType::kLinkState, body);
  }
}

void Daemon::recompute_routes() {
  // Edge (a,b) counts only if both a and b advertise each other: a
  // Byzantine origin can then only *remove* itself, not fabricate paths.
  auto has_edge = [this](const NodeId& a, const NodeId& b) {
    const auto ia = lsdb_.find(a);
    const auto ib = lsdb_.find(b);
    if (ia == lsdb_.end() || ib == lsdb_.end()) return false;
    const auto& na = ia->second.neighbors;
    const auto& nb = ib->second.neighbors;
    return std::find(na.begin(), na.end(), b) != na.end() &&
           std::find(nb.begin(), nb.end(), a) != nb.end();
  };

  routes_.clear();
  // BFS from self over confirmed edges (unit link costs).
  std::map<NodeId, NodeId> parent;
  std::queue<NodeId> frontier;
  frontier.push(config_.id);
  parent[config_.id] = config_.id;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const auto& [v, entry] : lsdb_) {
      if (parent.count(v)) continue;
      if (!has_edge(u, v)) continue;
      parent[v] = u;
      frontier.push(v);
    }
  }
  for (const auto& [dst, p] : parent) {
    if (dst == config_.id) continue;
    // Walk back to find the first hop.
    NodeId hop = dst;
    while (parent[hop] != config_.id) hop = parent[hop];
    routes_[dst] = hop;
  }
}

bool Daemon::dedup_seen(const NodeId& src, std::uint64_t msg_seq) {
  const auto key = std::make_pair(src, msg_seq);
  if (dedup_.count(key)) return true;
  dedup_.insert(key);
  dedup_order_.push_back(key);
  while (dedup_order_.size() > config_.dedup_cache_size) {
    dedup_.erase(dedup_order_.front());
    dedup_order_.pop_front();
  }
  return false;
}

}  // namespace spire::spines
