#include "spines/daemon.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace spire::spines {

namespace {
/// Approximate wire size of a data message for pacing purposes.
std::size_t data_wire_size(const DataBody& d) { return 64 + d.payload.size(); }
}  // namespace

void Daemon::PriorityClassQueue::clear() {
  for (auto& q : by_source) q.clear();
  active.clear();
  rr_next = 0;
  depth = 0;
}

Daemon::Daemon(sim::Simulator& sim, net::Host& host, DaemonConfig config,
               const crypto::Keyring& keyring, crypto::Verifier verifier)
    : sim_(sim),
      host_(host),
      config_(std::move(config)),
      keyring_(keyring),
      verifier_(std::move(verifier)),
      signer_(config_.id, keyring.identity_key(config_.id)),
      log_("spines." + config_.id),
      nodes_(config_.max_overlay_nodes),
      dedup_(config_.dedup_cache_size),
      metrics_("spines.daemon." + config_.id) {
  metrics_.counter("data_originated", &stats_.data_originated);
  metrics_.counter("data_delivered", &stats_.data_delivered);
  metrics_.counter("data_forwarded", &stats_.data_forwarded);
  metrics_.counter("dropped_auth", &stats_.dropped_auth);
  metrics_.counter("dropped_replay", &stats_.dropped_replay);
  metrics_.counter("dropped_dedup", &stats_.dropped_dedup);
  metrics_.counter("dropped_queue_full", &stats_.dropped_queue_full);
  metrics_.counter("dropped_no_route", &stats_.dropped_no_route);
  metrics_.counter("dropped_ttl", &stats_.dropped_ttl);
  metrics_.counter("lsu_accepted", &stats_.lsu_accepted);
  metrics_.counter("lsu_rejected_sig", &stats_.lsu_rejected_sig);
  metrics_.counter("data_retransmits", &stats_.data_retransmits);
  metrics_.counter("data_abandoned", &stats_.data_abandoned);
  metrics_.counter("acks_sent", &stats_.acks_sent);
  metrics_.counter("route_recomputes", &stats_.route_recomputes);
  metrics_.counter("route_recomputes_coalesced",
                   &stats_.route_recomputes_coalesced);
  metrics_.counter("dedup_evictions", &stats_.dedup_evictions);
  metrics_.counter("spf_incremental", &stats_.spf_incremental);
  metrics_.counter("spf_full", &stats_.spf_full);
  metrics_.counter("border_summaries_sent", &stats_.border_summaries_sent);
  metrics_.counter("summaries_accepted", &stats_.summaries_accepted);
  metrics_.counter("summaries_rejected_sig", &stats_.summaries_rejected_sig);
  metrics_.counter("lsu_bytes_sent", &stats_.lsu_bytes_sent);
  metrics_.counter("summary_bytes_sent", &stats_.summary_bytes_sent);
  metrics_.counter("inter_area_control_bytes",
                   &stats_.inter_area_control_bytes);
  metrics_.counter("node_table_overflows", &stats_.node_table_overflows);
  for (std::size_t p = 0; p < stats_.max_queue_depth.size(); ++p) {
    metrics_.gauge_fn("max_queue_depth" + std::to_string(p), [this, p] {
      return static_cast<std::int64_t>(stats_.max_queue_depth[p]);
    });
  }
  self_ = admit_node(config_.id);
  spf_.attach_self(self_);
}

NodeHandle Daemon::admit_node(std::string_view id) {
  const NodeHandle h = nodes_.intern(id);
  if (h == kNoHandle) {
    // Explicit, counted overflow: an undersized table shows up in the
    // metrics snapshot instead of silently dropping members.
    stats_.node_table_overflows = nodes_.overflows();
    return kNoHandle;
  }
  if (nodes_.size() > lsdb_.size()) {
    lsdb_.resize(nodes_.size());
    neighbors_.resize(nodes_.size());
    remote_vias_.resize(nodes_.size());
    remote_routes_.resize(nodes_.size(), kNoHandle);
    control_bytes_by_neighbor_.resize(nodes_.size(), 0);
    spf_.ensure_nodes(nodes_.size());
  }
  return h;
}

void Daemon::make_channels(Neighbor& n, const NodeId& id, bool corrupted) {
  // Per-direction keys: each direction seals under a key bound to the
  // sender's id, so the two directions never share a nonce space.
  const std::string link_label =
      corrupted ? "corrupted-binary-without-keys" : "";
  auto dir_key = [&](const NodeId& sender) {
    crypto::SymmetricKey base = keyring_.link_key(config_.id, id);
    if (corrupted) {
      // A rebuilt daemon without the deployment's key material: derive
      // from a wrong base so nothing it seals verifies anywhere.
      base = keyring_.derive(link_label + sender);
    }
    const util::Bytes label = util::to_bytes("dir:" + sender);
    crypto::SymmetricKey k{};
    const crypto::Digest d = crypto::hmac_sha256(base, label);
    std::copy(d.begin(), d.end(), k.begin());
    return k;
  };
  n.send_channel = std::make_unique<crypto::SecureChannel>(dir_key(config_.id));
  n.recv_channel = std::make_unique<crypto::SecureChannel>(dir_key(id));
}

void Daemon::add_neighbor(const NodeId& id, net::Endpoint address) {
  add_neighbor(id, address, config_.area);
}

void Daemon::add_neighbor(const NodeId& id, net::Endpoint address,
                          std::uint32_t area) {
  const NodeHandle h = admit_node(id);
  if (h == kNoHandle || neighbors_[h]) return;
  auto n = std::make_unique<Neighbor>();
  n->handle = h;
  n->address = address;
  n->area = area;
  make_channels(*n, id, keys_corrupted_);
  neighbors_[h] = std::move(n);
  neighbor_order_.push_back(h);
}

bool Daemon::is_border() const {
  for (const NodeHandle h : neighbor_order_) {
    if (!same_area(*neighbors_[h])) return true;
  }
  return false;
}

std::uint64_t Daemon::control_bytes_to(const NodeId& neighbor) const {
  const NodeHandle h = nodes_.lookup(neighbor);
  return h < control_bytes_by_neighbor_.size() ? control_bytes_by_neighbor_[h]
                                               : 0;
}

void Daemon::start() {
  if (running_) return;
  running_ = true;
  host_.bind_udp(config_.udp_port,
                 [this](const net::Datagram& d) { handle_udp(d); });
  hello_tick(epoch_);
  lsu_tick(epoch_);
  if (is_border()) summary_tick(epoch_);
  if (config_.reliable_data_links &&
      config_.mode == ForwardingMode::kRouted) {
    retransmit_tick(epoch_);
  }
}

void Daemon::stop() {
  if (!running_) return;
  running_ = false;
  ++epoch_;  // orphan every scheduled tick, pump, and route-recompute timer
  host_.unbind_udp(config_.udp_port);
  routes_dirty_ = false;
  route_recompute_scheduled_ = false;
  for (const NodeHandle h : neighbor_order_) {
    Neighbor& n = *neighbors_[h];
    n.up = false;
    for (auto& q : n.queues) q.clear();
    n.unacked.clear();
    // Pacing state must not leak into the next start(): a restarted
    // daemon begins with an idle link.
    n.busy_until = 0;
    n.pump_scheduled = false;
  }
}

void Daemon::open_session(SessionPort port, SessionHandler handler) {
  sessions_[port] = std::move(handler);
}

void Daemon::close_session(SessionPort port) { sessions_.erase(port); }

bool Daemon::session_send(SessionPort src_port, const NodeId& dst,
                          SessionPort dst_port, util::Bytes payload,
                          Priority priority) {
  if (!running_) return false;
  DataBody data;
  data.src = config_.id;
  data.dst = dst;
  data.src_port = src_port;
  data.dst_port = dst_port;
  data.priority = priority;
  data.msg_seq = ++data_seq_;
  data.payload = std::move(payload);
  ++stats_.data_originated;
  on_data(kNoHandle, std::move(data));
  return true;
}

void Daemon::corrupt_link_keys() {
  keys_corrupted_ = true;
  for (const NodeHandle h : neighbor_order_) {
    make_channels(*neighbors_[h], nodes_.name(h), true);
  }
}

void Daemon::restore_link_keys() {
  keys_corrupted_ = false;
  for (const NodeHandle h : neighbor_order_) {
    make_channels(*neighbors_[h], nodes_.name(h), false);
  }
}

bool Daemon::link_up(const NodeId& neighbor) const {
  const Neighbor* n = neighbor_slot(nodes_.lookup(neighbor));
  return n != nullptr && n->up;
}

std::optional<NodeId> Daemon::next_hop(const NodeId& dst) const {
  const NodeHandle h = nodes_.lookup(dst);
  if (h == kNoHandle) return std::nullopt;
  const NodeHandle hop = route_for(h);
  if (hop == kNoHandle) return std::nullopt;
  return nodes_.name(hop);
}

NodeHandle Daemon::route_for(NodeHandle dst) const {
  const NodeHandle hop = spf_.route(dst);
  if (hop != kNoHandle) return hop;  // intra-area always wins
  return dst < remote_routes_.size() ? remote_routes_[dst] : kNoHandle;
}

bool Daemon::lsdb_contains(const NodeId& origin) const {
  const NodeHandle h = nodes_.lookup(origin);
  return h != kNoHandle && h < lsdb_.size() && lsdb_[h].present;
}

void Daemon::send_packet(NodeHandle neighbor, PacketType type,
                         std::span<const std::uint8_t> body) {
  Neighbor* n = neighbor_slot(neighbor);
  if (n == nullptr || !running_) return;

  // Control-plane byte accounting: the wide-area bench gates LSU +
  // summary bytes, split by whether the link crosses an area border.
  if (type == PacketType::kLinkState || type == PacketType::kAreaSummary) {
    if (type == PacketType::kAreaSummary) {
      stats_.summary_bytes_sent += body.size();
      ++stats_.border_summaries_sent;
    } else {
      stats_.lsu_bytes_sent += body.size();
    }
    if (!same_area(*n)) stats_.inter_area_control_bytes += body.size();
    if (neighbor < control_bytes_by_neighbor_.size()) {
      control_bytes_by_neighbor_[neighbor] += body.size();
    }
  }

  // Inner packet [type u8][link_seq u64][body blob], serialized into the
  // reusable scratch: the hot path allocates nothing.
  inner_scratch_.clear();
  inner_scratch_.reserve(1 + 8 + 4 + body.size());
  inner_scratch_.u8(static_cast<std::uint8_t>(type));
  inner_scratch_.u64(++n->send_link_seq);
  inner_scratch_.blob(body);

  // Reliable message service: data packets on routed links are tracked
  // until acked (flooding already provides its own redundancy).
  if (type == PacketType::kData && config_.reliable_data_links &&
      config_.mode == ForwardingMode::kRouted) {
    n->unacked[n->send_link_seq] = Neighbor::Unacked{
        util::Bytes(inner_scratch_.bytes().begin(),
                    inner_scratch_.bytes().end()),
        sim_.now(), 0};
  }
  transmit_inner(neighbor, inner_scratch_.bytes());
}

void Daemon::transmit_inner(NodeHandle neighbor,
                            std::span<const std::uint8_t> inner_bytes) {
  Neighbor* n = neighbor_slot(neighbor);
  if (n == nullptr || !running_) return;
  // Link envelope [sender str][sealed bool][body blob], built in the
  // second scratch so sealing (which reads inner_bytes) and enveloping
  // never collide.
  const bool sealed = config_.intrusion_tolerant;
  util::Bytes sealed_body;
  std::span<const std::uint8_t> body = inner_bytes;
  if (sealed) {
    sealed_body = n->send_channel->seal(inner_bytes);
    body = sealed_body;
  }
  env_scratch_.clear();
  env_scratch_.reserve(4 + config_.id.size() + 1 + 4 + body.size());
  env_scratch_.str(config_.id);
  env_scratch_.boolean(sealed);
  env_scratch_.blob(body);
  host_.send_udp(n->address.ip, n->address.port, config_.udp_port,
                 std::span<const std::uint8_t>(env_scratch_.bytes()));
}

void Daemon::send_ack(NodeHandle neighbor, std::uint64_t acked_seq) {
  ++stats_.acks_sent;
  std::array<std::uint8_t, 8> buf{};
  for (int i = 0; i < 8; ++i) {
    buf[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(acked_seq >> (56 - 8 * i));
  }
  send_packet(neighbor, PacketType::kAck, buf);
}

void Daemon::retransmit_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || !running_) return;
  sim_.schedule_after(config_.retransmit_timeout / 2,
                      [this, epoch] { retransmit_tick(epoch); });
  const sim::Time now = sim_.now();
  for (const NodeHandle h : neighbor_order_) {
    Neighbor& n = *neighbors_[h];
    for (auto it = n.unacked.begin(); it != n.unacked.end();) {
      if (now - it->second.sent_at < config_.retransmit_timeout) {
        ++it;
        continue;
      }
      if (it->second.retries >= config_.max_retransmits) {
        ++stats_.data_abandoned;  // link is dead; hellos will notice
        it = n.unacked.erase(it);
        continue;
      }
      ++it->second.retries;
      it->second.sent_at = now;
      ++stats_.data_retransmits;
      transmit_inner(h, it->second.inner_bytes);
      ++it;
    }
  }
}

void Daemon::handle_udp(const net::Datagram& dgram) {
  if (!running_) return;

  // The envelope and inner framing are hand-parsed over borrowed spans
  // (equivalent to LinkEnvelope::decode / InnerPacket::decode): the
  // receive path allocates nothing until a body decoder needs ownership.
  NodeHandle from = kNoHandle;
  bool env_sealed = false;
  std::span<const std::uint8_t> env_body;
  try {
    util::ByteReader r(dgram.payload);
    const std::string_view sender = r.str_view();
    env_sealed = r.boolean();
    env_body = r.blob_span();
    r.expect_done();
    from = nodes_.lookup(sender);
  } catch (const util::SerializationError&) {
    return;
  }

  Neighbor* n = neighbor_slot(from);
  if (n == nullptr) {
    ++stats_.dropped_auth;
    return;  // unknown daemons are not neighbors; drop.
  }

  util::Bytes opened;  // owns the plaintext in sealed mode
  std::span<const std::uint8_t> inner_bytes = env_body;
  if (config_.intrusion_tolerant) {
    if (!env_sealed) {
      ++stats_.dropped_auth;
      return;
    }
    auto plain = n->recv_channel->open(env_body);
    if (!plain) {
      ++stats_.dropped_auth;
      return;  // wrong keys, tampering, or a non-member impersonating.
    }
    opened = std::move(*plain);
    inner_bytes = opened;
  }

  std::uint8_t raw_type = 0;
  std::uint64_t link_seq = 0;
  std::span<const std::uint8_t> body;
  try {
    util::ByteReader r(inner_bytes);
    raw_type = r.u8();
    // 4 is the legacy debug opcode: intentionally not a valid packet.
    if (raw_type < 1 || raw_type > 6 || raw_type == 4) {
      throw util::SerializationError("bad packet type");
    }
    link_seq = r.u64();
    body = r.blob_span();
    r.expect_done();
  } catch (const util::SerializationError&) {
    // Legacy debug opcode and other malformed inner packets land here.
    if (!inner_bytes.empty() && inner_bytes.front() == kDebugPacketType) {
      if (config_.intrusion_tolerant) {
        ++stats_.debug_packets_ignored;  // code path compiled out in IT mode
      } else {
        ++stats_.debug_packets_honoured;
      }
    }
    return;
  }
  const auto type = static_cast<PacketType>(raw_type);

  const bool reliable_data = type == PacketType::kData &&
                             config_.reliable_data_links &&
                             config_.mode == ForwardingMode::kRouted;
  if (!n->recv_window.accept(link_seq)) {
    ++stats_.dropped_replay;
    // Duplicate data usually means our ack was lost: re-ack so the
    // sender stops retransmitting.
    if (reliable_data) send_ack(from, link_seq);
    return;
  }
  if (reliable_data) send_ack(from, link_seq);

  process_inner(from, type, body);
}

void Daemon::process_inner(NodeHandle from, PacketType type,
                           std::span<const std::uint8_t> body) {
  switch (type) {
    case PacketType::kHello:
      if (HelloBody::decode(body)) on_hello(from);
      break;
    case PacketType::kLinkState:
      if (const auto lsu = LinkStateBody::decode(body)) {
        on_link_state(from, *lsu);
      }
      break;
    case PacketType::kAreaSummary:
      if (const auto summary = AreaSummaryBody::decode(body)) {
        on_area_summary(from, *summary);
      }
      break;
    case PacketType::kData:
      if (auto data = DataBody::decode(body)) {
        on_data(from, std::move(*data));
      }
      break;
    case PacketType::kAck: {
      try {
        util::ByteReader r(body);
        const std::uint64_t acked = r.u64();
        r.expect_done();
        neighbor_slot(from)->unacked.erase(acked);
      } catch (const util::SerializationError&) {
      }
      break;
    }
  }
}

void Daemon::on_hello(NodeHandle from) {
  Neighbor& n = *neighbors_[from];
  n.last_hello = sim_.now();
  if (!n.up) {
    n.up = true;
    log_.debug("link to ", nodes_.name(from), " up");
    if (same_area(n)) {
      broadcast_own_lsu();  // adjacency changed: marks routes dirty
    } else {
      // A wide link came up (or healed after a partition): re-advertise
      // immediately instead of waiting out the summary interval, so
      // remote reachability converges at hello speed.
      send_summaries();
      refresh_remote_routes();
    }
  }
}

void Daemon::on_link_state(NodeHandle arrival, const LinkStateBody& lsu) {
  // Fault containment: link-state never crosses an area border, so an
  // LSU arriving over a wide link is bogus regardless of signature.
  const Neighbor* arr = neighbor_slot(arrival);
  if (arr != nullptr && !same_area(*arr)) return;

  // Look up — never insert — before the signature verifies: a forged
  // LSU from a non-member must leave no trace in the node table or the
  // LSDB (and stale floods from members skip verification entirely).
  const bool is_self = lsu.origin == config_.id;
  NodeHandle origin = nodes_.lookup(lsu.origin);
  const std::uint64_t known_seq =
      (origin != kNoHandle && origin < lsdb_.size() && lsdb_[origin].present)
          ? lsdb_[origin].seq
          : 0;
  if (!is_self && lsu.seq <= known_seq) return;  // stale or duplicate

  const util::Bytes covered = lsu.signed_bytes();
  if (!verifier_.verify(lsu.origin, covered, lsu.signature)) {
    ++stats_.lsu_rejected_sig;
    return;
  }
  if (is_self) return;  // our own, reflected back

  ++stats_.lsu_accepted;
  origin = admit_node(lsu.origin);
  if (origin == kNoHandle) return;  // node table full

  std::vector<NodeHandle> adj;
  adj.reserve(lsu.neighbors.size());
  for (const NodeId& name : lsu.neighbors) {
    const NodeHandle h = admit_node(name);
    if (h != kNoHandle) adj.push_back(h);
  }

  LsdbEntry& entry = lsdb_[origin];
  if (!entry.present) {
    entry.present = true;
    ++lsdb_count_;
  }
  entry.seq = lsu.seq;
  // Deferred recomputation: a refresh that does not change the
  // adjacency (seq bump only) must not trigger a route recompute. The
  // SPF engine compares against its stored row and accumulates the
  // confirmed-edge delta for the next incremental repair.
  if (spf_.set_adjacency(origin, adj)) mark_routes_dirty();

  // Re-flood to up neighbors in our own area except where it came
  // from: LSUs never cross an area border.
  const util::Bytes body = lsu.encode();
  for (const NodeHandle h : neighbor_order_) {
    if (h != arrival && neighbors_[h]->up && same_area(*neighbors_[h])) {
      send_packet(h, PacketType::kLinkState, body);
    }
  }
}

void Daemon::on_data(NodeHandle arrival, DataBody data) {
  const NodeHandle src = admit_node(data.src);
  if (src == kNoHandle) {
    ++stats_.dropped_auth;  // a member minting unbounded source names
    return;
  }
  if (dedup_.check_and_insert(src, data.msg_seq)) {
    ++stats_.dropped_dedup;
    return;
  }
  stats_.dedup_evictions = dedup_.evictions();

  const bool is_broadcast = data.dst == kBroadcastDst;
  const NodeHandle dst = is_broadcast ? kNoHandle : nodes_.lookup(data.dst);
  if ((!is_broadcast && dst == self_) || (is_broadcast && src != self_)) {
    const auto session = sessions_.find(data.dst_port);
    if (session != sessions_.end()) {
      ++stats_.data_delivered;
      session->second(data);
    }
    if (!is_broadcast) return;  // unicast terminates at its destination
  }

  if (data.ttl <= 1) {
    ++stats_.dropped_ttl;
    return;
  }
  data.ttl--;

  // One shared unit per forwarded message: flood fan-out enqueues the
  // same object on every neighbor queue instead of copying the payload,
  // and pump() encodes it once for all of them.
  auto unit = std::make_shared<ForwardUnit>();
  unit->body = std::move(data);

  if (is_broadcast || config_.mode == ForwardingMode::kPriorityFlood) {
    for (const NodeHandle h : neighbor_order_) {
      if (h == arrival || !neighbors_[h]->up) continue;
      enqueue_data(h, src, unit);
    }
  } else {
    const NodeHandle hop = route_for(dst);
    if (hop == kNoHandle) {
      ++stats_.dropped_no_route;
      return;
    }
    enqueue_data(hop, src, unit);
  }
  ++stats_.data_forwarded;
}

void Daemon::enqueue_data(NodeHandle neighbor, NodeHandle src,
                          const std::shared_ptr<ForwardUnit>& unit) {
  Neighbor& n = *neighbors_[neighbor];
  const auto prio = static_cast<std::size_t>(unit->body.priority);
  PriorityClassQueue& pq = n.queues[prio];
  if (pq.by_source.size() <= src) pq.by_source.resize(nodes_.size());
  auto& queue = pq.by_source[src];
  if (queue.size() >= config_.per_source_queue_cap) {
    // Per-source cap: an abusive source only ever drops its own traffic.
    ++stats_.dropped_queue_full;
    return;
  }
  if (queue.empty()) pq.active.push_back(src);
  queue.push_back(unit);
  ++pq.depth;
  stats_.max_queue_depth[prio] =
      std::max<std::uint64_t>(stats_.max_queue_depth[prio], pq.depth);
  if (!n.pump_scheduled) pump(neighbor);
}

void Daemon::pump(NodeHandle neighbor) {
  Neighbor& n = *neighbors_[neighbor];
  n.pump_scheduled = false;
  if (!running_) return;

  if (sim_.now() < n.busy_until) {
    n.pump_scheduled = true;
    sim_.schedule_at(n.busy_until, [this, neighbor, epoch = epoch_] {
      if (epoch == epoch_) pump(neighbor);
    });
    return;
  }

  // Highest priority class with traffic; round-robin across sources.
  for (int prio = 2; prio >= 0; --prio) {
    PriorityClassQueue& pq = n.queues[static_cast<std::size_t>(prio)];
    if (pq.empty()) continue;

    const std::size_t idx = pq.rr_next % pq.active.size();
    const NodeHandle src = pq.active[idx];
    auto& queue = pq.by_source[src];
    const std::shared_ptr<ForwardUnit> unit = std::move(queue.front());
    queue.pop_front();
    --pq.depth;
    if (queue.empty()) {
      // The next source slides into idx; the cursor stays put.
      pq.active.erase(pq.active.begin() + static_cast<std::ptrdiff_t>(idx));
      pq.rr_next = idx;
    } else {
      pq.rr_next = idx + 1;
    }

    if (unit->encoded.empty()) unit->encoded = unit->body.encode();
    const double bytes = static_cast<double>(data_wire_size(unit->body));
    const auto tx_time =
        static_cast<sim::Time>(std::ceil(bytes / config_.link_bytes_per_us));
    n.busy_until = sim_.now() + tx_time;
    send_packet(neighbor, PacketType::kData, unit->encoded);

    bool more = false;
    for (const auto& q : n.queues) {
      if (!q.empty()) {
        more = true;
        break;
      }
    }
    if (more) {
      n.pump_scheduled = true;
      sim_.schedule_at(n.busy_until, [this, neighbor, epoch = epoch_] {
        if (epoch == epoch_) pump(neighbor);
      });
    }
    return;
  }
}

void Daemon::hello_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || !running_) return;
  ++hello_seq_;
  const util::Bytes body = HelloBody{hello_seq_}.encode();
  bool topology_changed = false;
  bool wide_changed = false;
  for (const NodeHandle h : neighbor_order_) {
    Neighbor& n = *neighbors_[h];
    send_packet(h, PacketType::kHello, body);
    if (n.up && sim_.now() - n.last_hello > config_.link_timeout) {
      n.up = false;
      if (same_area(n)) {
        topology_changed = true;
      } else {
        wide_changed = true;  // a wide link died: vias must re-resolve
      }
      log_.debug("link to ", nodes_.name(h), " down (hello timeout)");
    }
  }
  if (topology_changed) {
    broadcast_own_lsu();  // adjacency changed: marks routes dirty
  }
  if (wide_changed) refresh_remote_routes();
  sim_.schedule_after(config_.hello_interval,
                      [this, epoch] { hello_tick(epoch); });
}

void Daemon::lsu_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || !running_) return;
  broadcast_own_lsu();
  sim_.schedule_after(config_.lsu_refresh, [this, epoch] { lsu_tick(epoch); });
}

void Daemon::broadcast_own_lsu() {
  LinkStateBody lsu;
  lsu.origin = config_.id;
  lsu.seq = ++own_lsu_seq_;
  std::vector<NodeHandle> adj;
  for (const NodeHandle h : neighbor_order_) {
    // Cross-area adjacency is border-daemon state, not area topology:
    // it is advertised through summaries, never through LSUs.
    if (neighbors_[h]->up && same_area(*neighbors_[h])) {
      lsu.neighbors.push_back(nodes_.name(h));
      adj.push_back(h);
    }
  }
  lsu.signature = signer_.sign(lsu.signed_bytes());

  // Record our own entry so route computation sees it; only an actual
  // adjacency change dirties the routes (the periodic refresh does not).
  LsdbEntry& entry = lsdb_[self_];
  if (!entry.present) {
    entry.present = true;
    ++lsdb_count_;
  }
  entry.seq = lsu.seq;
  if (spf_.set_adjacency(self_, adj)) mark_routes_dirty();

  const util::Bytes body = lsu.encode();
  for (const NodeHandle h : neighbor_order_) {
    if (neighbors_[h]->up && same_area(*neighbors_[h])) {
      send_packet(h, PacketType::kLinkState, body);
    }
  }
}

void Daemon::mark_routes_dirty() {
  routes_dirty_ = true;
  if (route_recompute_scheduled_) {
    ++stats_.route_recomputes_coalesced;
    return;
  }
  route_recompute_scheduled_ = true;
  sim_.schedule_after(config_.route_coalesce_interval, [this, epoch = epoch_] {
    if (epoch != epoch_ || !running_) return;
    route_recompute_scheduled_ = false;
    if (routes_dirty_) {
      routes_dirty_ = false;
      recompute_routes();
    }
  });
}

void Daemon::recompute_routes() {
  ++stats_.route_recomputes;
  // The SPF engine holds the advertised-adjacency rows (fed from
  // accepted LSUs); edges count only when both endpoints advertise
  // each other, so a Byzantine origin can only remove itself, not
  // fabricate paths. The recompute is incremental when the accumulated
  // confirmed-edge delta allows it, and must be indistinguishable from
  // a full BFS.
  spf_.recompute();
#ifndef NDEBUG
  assert(spf_.verify_against_full() &&
         "incremental SPF diverged from the canonical full BFS");
#endif
  stats_.spf_full = spf_.stats().full_runs;
  stats_.spf_incremental = spf_.stats().incremental_runs;
  // Intra-area distances changed, so the best local border for each
  // remote destination may have too.
  refresh_remote_routes();
}

// ---- hierarchical areas: summaries, vias, remote routes -------------------

void Daemon::summary_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || !running_) return;
  sim_.schedule_after(config_.summary_interval,
                      [this, epoch] { summary_tick(epoch); });
  send_summaries();
}

void Daemon::send_summaries() {
  if (!running_) return;
  const sim::Time now = sim_.now();

  // Own-area stream: every member the intra-area SPF currently
  // reaches, plus self. Handles ascend, so the rotation order is
  // stable across intervals.
  member_scratch_.clear();
  for (NodeHandle h = 0; h < nodes_.size(); ++h) {
    if (h == self_ || spf_.dist(h) != SpfEngine::kInfDist) {
      member_scratch_.push_back(h);
    }
  }
  static const std::vector<std::uint32_t> kEmptyPath;
  emit_summary_stream(config_.area, kEmptyPath, member_scratch_,
                      own_area_cursor_);

  // Transit streams: areas learned across our own wide links, pruned
  // of members that stopped being re-advertised.
  for (auto& [area, fa] : foreign_) {
    for (auto it = fa.members.begin(); it != fa.members.end();) {
      if (now - it->second > config_.summary_member_timeout) {
        it = fa.members.erase(it);
      } else {
        ++it;
      }
    }
    if (fa.members.empty()) continue;
    member_scratch_.clear();
    for (const auto& [h, seen] : fa.members) member_scratch_.push_back(h);
    emit_summary_stream(area, fa.path, member_scratch_, fa.cursor);
  }
}

void Daemon::emit_summary_stream(std::uint32_t subject_area,
                                 const std::vector<std::uint32_t>& path,
                                 const std::vector<NodeHandle>& members,
                                 std::size_t& cursor) {
  if (members.empty()) return;
  AreaSummaryBody body;
  body.origin = config_.id;
  body.area = subject_area;
  body.seq = ++own_summary_seq_;
  body.area_path = path;
  if (std::find(body.area_path.begin(), body.area_path.end(), config_.area) ==
      body.area_path.end()) {
    body.area_path.push_back(config_.area);
  }
  body.total_members = static_cast<std::uint32_t>(members.size());
  // BATMAN-style originator capping: at most summary_fanout_cap names
  // per advertisement, rotating through the set so every member is
  // covered within ceil(n/cap) intervals.
  const std::size_t count =
      std::min(config_.summary_fanout_cap, members.size());
  if (cursor >= members.size()) cursor = 0;
  body.members.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    body.members.push_back(nodes_.name(members[(cursor + i) % members.size()]));
  }
  cursor = (cursor + count) % members.size();
  body.signature = signer_.sign(body.signed_bytes());
  const util::Bytes encoded = body.encode();

  for (const NodeHandle h : neighbor_order_) {
    Neighbor& n = *neighbors_[h];
    if (!n.up) continue;
    if (same_area(n)) {
      // Re-originate foreign reachability into the local area (the
      // own-area stream is already known intra-area).
      if (subject_area != config_.area) {
        send_packet(h, PacketType::kAreaSummary, encoded);
      }
    } else {
      // Across the wide link, unless the far area already carried it.
      bool seen = n.area == subject_area;
      for (const std::uint32_t a : body.area_path) seen = seen || a == n.area;
      if (!seen) send_packet(h, PacketType::kAreaSummary, encoded);
    }
  }
}

void Daemon::on_area_summary(NodeHandle arrival, const AreaSummaryBody& s) {
  const Neighbor* arr = neighbor_slot(arrival);
  if (arr == nullptr) return;
  if (s.origin == config_.id) return;  // our own, reflected back
  const bool cross = !same_area(*arr);

  // Lookup-before-insert + stale-skip, mirroring the LSU path: forged
  // summaries from non-members leave no trace, and stale floods skip
  // signature verification entirely.
  NodeHandle origin = nodes_.lookup(s.origin);
  if (origin != kNoHandle) {
    const auto it = summary_seq_.find({origin, s.area});
    if (it != summary_seq_.end() && s.seq <= it->second) return;
  }
  if (cross) {
    // Summaries are re-originated at every border ("next-hop-self"):
    // across a wide link the signer must be the link's far end.
    if (origin == kNoHandle || origin != arrival) return;
    if (s.area == config_.area) return;  // our own area, bounced back
    for (const std::uint32_t a : s.area_path) {
      if (a == config_.area) return;  // already traversed us: loop
    }
  }
  if (!verifier_.verify(s.origin, s.signed_bytes(), s.signature)) {
    ++stats_.summaries_rejected_sig;
    return;
  }
  origin = admit_node(s.origin);
  if (origin == kNoHandle) return;  // node table full
  ++stats_.summaries_accepted;
  summary_seq_[{origin, s.area}] = s.seq;

  // Borders merge cross-link summaries into their foreign-area state
  // (for transit + intra re-origination). Intra-area summaries only
  // feed the via table — merging them back into foreign state would
  // let two borders keep each other's ghost entries alive forever.
  ForeignArea* fa = nullptr;
  if (cross) {
    fa = &foreign_[s.area];
    fa->path = s.area_path;
  }
  const sim::Time now = sim_.now();
  for (const NodeId& name : s.members) {
    const NodeHandle h = admit_node(name);
    if (h == kNoHandle || h == self_) continue;
    if (fa != nullptr) fa->members[h] = now;
    note_remote_via(h, origin);
  }
  refresh_remote_routes();

  if (!cross) {
    // Flood on within the area so interior daemons two hops from the
    // border learn the via as well (per-(origin, area) seq dedup above
    // keeps this loop-free).
    const util::Bytes body = s.encode();
    for (const NodeHandle h : neighbor_order_) {
      Neighbor& n = *neighbors_[h];
      if (h != arrival && n.up && same_area(n)) {
        send_packet(h, PacketType::kAreaSummary, body);
      }
    }
  }
}

void Daemon::note_remote_via(NodeHandle dst, NodeHandle via) {
  if (dst == kNoHandle || via == kNoHandle || dst == self_) return;
  if (remote_vias_.size() <= dst) remote_vias_.resize(nodes_.size());
  auto& vias = remote_vias_[dst];
  for (RemoteVia& rv : vias) {
    if (rv.via == via) {
      rv.last_seen = sim_.now();
      return;
    }
  }
  constexpr std::size_t kMaxViasPerDst = 8;
  if (vias.size() >= kMaxViasPerDst) {
    // Evict the stalest advertiser: the via table stays bounded per
    // destination no matter how many borders advertise it.
    auto oldest = std::min_element(
        vias.begin(), vias.end(), [](const RemoteVia& a, const RemoteVia& b) {
          return a.last_seen < b.last_seen;
        });
    *oldest = RemoteVia{via, sim_.now()};
    return;
  }
  vias.push_back(RemoteVia{via, sim_.now()});
}

void Daemon::refresh_remote_routes() {
  const sim::Time now = sim_.now();
  std::fill(remote_routes_.begin(), remote_routes_.end(), kNoHandle);
  for (NodeHandle dst = 0; dst < remote_vias_.size(); ++dst) {
    auto& vias = remote_vias_[dst];
    if (vias.empty()) continue;
    std::erase_if(vias, [&](const RemoteVia& rv) {
      return now - rv.last_seen > config_.summary_member_timeout;
    });
    std::uint32_t best_cost = SpfEngine::kInfDist;
    NodeHandle best_via = kNoHandle;
    NodeHandle best_hop = kNoHandle;
    for (const RemoteVia& rv : vias) {
      std::uint32_t cost = SpfEngine::kInfDist;
      NodeHandle hop = kNoHandle;
      const Neighbor* n = neighbor_slot(rv.via);
      if (n != nullptr && n->up && !same_area(*n)) {
        // Our own wide link. Strictly cheaper than any border reached
        // through the area (even one at SPF distance 1): the resolved
        // cost then decreases strictly at every forwarding hop, which
        // rules out deflection loops between equal-distance borders.
        cost = 0;
        hop = rv.via;
      } else if (rv.via != self_ &&
                 spf_.dist(rv.via) != SpfEngine::kInfDist) {
        cost = spf_.dist(rv.via);  // a local border, via the SPF tree
        hop = spf_.route(rv.via);
      }
      if (hop == kNoHandle) continue;
      if (cost < best_cost || (cost == best_cost && rv.via < best_via)) {
        best_cost = cost;
        best_via = rv.via;
        best_hop = hop;
      }
    }
    remote_routes_[dst] = best_hop;
  }
}

}  // namespace spire::spines
