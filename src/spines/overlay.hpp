// Overlay builder: declares nodes and links, then constructs one Daemon
// per node with the full membership baked into its verifier — matching
// how a real Spines deployment is provisioned from a static topology
// and key material before it is fielded.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "spines/daemon.hpp"

namespace spire::spines {

class Overlay {
 public:
  /// `config_template` supplies every per-daemon setting except `id`
  /// and `udp_port`, which are set per node.
  Overlay(sim::Simulator& sim, const crypto::Keyring& keyring,
          DaemonConfig config_template);

  /// Declares an overlay node running on `host` (which must already
  /// have its interfaces configured). `iface` selects which of the
  /// host's NICs carries this daemon's traffic — replica hosts are
  /// dual-homed (internal + external networks, §III-B). `area` assigns
  /// the node to a routing area (hierarchical wide-area overlays);
  /// defaulting everything to area 0 yields the classic flat overlay.
  void add_node(const NodeId& id, net::Host& host,
                std::uint16_t udp_port = kDefaultDaemonPort,
                std::size_t iface = 0, std::uint32_t area = 0);

  /// Declares a bidirectional overlay link. `iface_a`/`iface_b`
  /// override which NIC each endpoint uses for *this* link only —
  /// border daemons reach their wide-area peer over a WAN-facing
  /// interface while intra-area links stay on the site network.
  /// kSameIface keeps the node's default interface.
  static constexpr std::size_t kSameIface = static_cast<std::size_t>(-1);
  void add_link(const NodeId& a, const NodeId& b,
                std::size_t iface_a = kSameIface,
                std::size_t iface_b = kSameIface);

  /// Constructs all daemons. After this, daemon() is usable.
  void build();

  /// Adds firewall allow rules on every member host for exactly the
  /// neighbor (ip, port) pairs its daemon uses — the §III-B posture.
  /// Call after build(); does not change the hosts' default-deny flag.
  void allow_link_traffic();

  void start_all();

  [[nodiscard]] Daemon& daemon(const NodeId& id);
  [[nodiscard]] const std::vector<NodeId>& node_ids() const { return order_; }

 private:
  struct NodeSpec {
    net::Host* host = nullptr;
    std::uint16_t port = kDefaultDaemonPort;
    std::size_t iface = 0;
    std::uint32_t area = 0;
  };
  struct LinkSpec {
    NodeId a;
    NodeId b;
    std::size_t iface_a = kSameIface;
    std::size_t iface_b = kSameIface;
  };

  sim::Simulator& sim_;
  const crypto::Keyring& keyring_;
  DaemonConfig template_;
  std::map<NodeId, NodeSpec> specs_;
  std::vector<NodeId> order_;
  std::vector<LinkSpec> links_;
  std::map<NodeId, std::unique_ptr<Daemon>> daemons_;
};

}  // namespace spire::spines
