// NodeTable: the overlay daemon's interner from NodeId strings to dense
// uint32 handles. Interning happens once at admission time (neighbor
// declaration, verified LSU acceptance, first dedup sighting); every
// per-packet structure — neighbor slots, routes, LSDB, per-priority
// queues, the dedup ring — is then a flat vector indexed by handle, so
// the forwarding path does zero string compares.
#pragma once

#include <cstdint>
#include <string_view>

#include "spines/message.hpp"
#include "util/interner.hpp"

namespace spire::spines {

using NodeHandle = std::uint32_t;
constexpr NodeHandle kNoHandle = util::StringInterner::kInvalid;

/// Upper bound on distinct node names a daemon will ever intern. Wire
/// input from a compromised member could otherwise mint unbounded fresh
/// NodeIds (as LSU neighbors or data sources) and grow the table — and
/// every handle-indexed vector — without limit.
constexpr std::size_t kMaxOverlayNodes = 4096;

class NodeTable {
 public:
  /// Interns `id`, or returns kNoHandle once the table is full (the
  /// caller drops the packet — legitimate memberships are far smaller).
  NodeHandle intern(std::string_view id) {
    const NodeHandle existing = interner_.lookup(id);
    if (existing != kNoHandle) return existing;  // steady state: one probe
    if (interner_.size() >= kMaxOverlayNodes) return kNoHandle;
    return interner_.intern(id);
  }

  [[nodiscard]] NodeHandle lookup(std::string_view id) const {
    return interner_.lookup(id);
  }

  [[nodiscard]] const NodeId& name(NodeHandle handle) const {
    return interner_.name(handle);
  }

  [[nodiscard]] std::size_t size() const { return interner_.size(); }

 private:
  util::StringInterner interner_;
};

}  // namespace spire::spines
