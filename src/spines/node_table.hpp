// NodeTable: the overlay daemon's interner from NodeId strings to dense
// uint32 handles. Interning happens once at admission time (neighbor
// declaration, verified LSU acceptance, first dedup sighting); every
// per-packet structure — neighbor slots, routes, LSDB, per-priority
// queues, the dedup ring — is then a flat vector indexed by handle, so
// the forwarding path does zero string compares.
#pragma once

#include <cstdint>
#include <string_view>

#include "spines/message.hpp"
#include "util/interner.hpp"

namespace spire::spines {

using NodeHandle = std::uint32_t;
constexpr NodeHandle kNoHandle = util::StringInterner::kInvalid;

/// Default upper bound on distinct node names a daemon will ever
/// intern. Wire input from a compromised member could otherwise mint
/// unbounded fresh NodeIds (as LSU neighbors, summary members, or data
/// sources) and grow the table — and every handle-indexed vector —
/// without limit. Sized for wide-area deployments (500+ daemons × area
/// summaries) with a wide margin; per-daemon overridable through
/// DaemonConfig::max_overlay_nodes.
constexpr std::size_t kMaxOverlayNodes = 16384;

class NodeTable {
 public:
  NodeTable() = default;
  explicit NodeTable(std::size_t max_nodes) : max_nodes_(max_nodes) {}

  /// Interns `id`, or returns kNoHandle once the table is full (the
  /// caller drops the packet — legitimate memberships are far
  /// smaller). Hitting the bound is an explicit, counted overflow, not
  /// a silent cap: check overflows() to detect an undersized table.
  NodeHandle intern(std::string_view id) {
    const NodeHandle existing = interner_.lookup(id);
    if (existing != kNoHandle) return existing;  // steady state: one probe
    if (interner_.size() >= max_nodes_) {
      ++overflows_;
      return kNoHandle;
    }
    return interner_.intern(id);
  }

  [[nodiscard]] NodeHandle lookup(std::string_view id) const {
    return interner_.lookup(id);
  }

  [[nodiscard]] const NodeId& name(NodeHandle handle) const {
    return interner_.name(handle);
  }

  [[nodiscard]] std::size_t size() const { return interner_.size(); }
  [[nodiscard]] std::size_t capacity() const { return max_nodes_; }
  /// Intern attempts rejected because the table was full.
  [[nodiscard]] std::uint64_t overflows() const { return overflows_; }

 private:
  util::StringInterner interner_;
  std::size_t max_nodes_ = kMaxOverlayNodes;
  std::uint64_t overflows_ = 0;
};

}  // namespace spire::spines
