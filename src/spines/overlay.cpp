#include "spines/overlay.hpp"

#include <stdexcept>

namespace spire::spines {

Overlay::Overlay(sim::Simulator& sim, const crypto::Keyring& keyring,
                 DaemonConfig config_template)
    : sim_(sim), keyring_(keyring), template_(std::move(config_template)) {}

void Overlay::add_node(const NodeId& id, net::Host& host,
                       std::uint16_t udp_port, std::size_t iface,
                       std::uint32_t area) {
  if (specs_.count(id)) throw std::invalid_argument("duplicate node id " + id);
  specs_[id] = NodeSpec{&host, udp_port, iface, area};
  order_.push_back(id);
}

void Overlay::add_link(const NodeId& a, const NodeId& b, std::size_t iface_a,
                       std::size_t iface_b) {
  if (!specs_.count(a) || !specs_.count(b)) {
    throw std::invalid_argument("link references unknown node");
  }
  links_.push_back(LinkSpec{a, b, iface_a, iface_b});
}

void Overlay::build() {
  crypto::Verifier verifier;
  for (const auto& id : order_) {
    verifier.add_identity(id, keyring_.identity_key(id));
  }

  for (const auto& id : order_) {
    const NodeSpec& spec = specs_.at(id);
    DaemonConfig config = template_;
    config.id = id;
    config.udp_port = spec.port;
    config.area = spec.area;
    daemons_[id] = std::make_unique<Daemon>(sim_, *spec.host, config, keyring_,
                                            verifier);
  }

  for (const auto& link : links_) {
    const NodeSpec& sa = specs_.at(link.a);
    const NodeSpec& sb = specs_.at(link.b);
    const std::size_t ifa =
        link.iface_a == kSameIface ? sa.iface : link.iface_a;
    const std::size_t ifb =
        link.iface_b == kSameIface ? sb.iface : link.iface_b;
    daemons_.at(link.a)->add_neighbor(
        link.b, net::Endpoint{sb.host->ip(ifb), sb.port}, sb.area);
    daemons_.at(link.b)->add_neighbor(
        link.a, net::Endpoint{sa.host->ip(ifa), sa.port}, sa.area);
  }
}

void Overlay::allow_link_traffic() {
  for (const auto& link : links_) {
    const NodeSpec& sa = specs_.at(link.a);
    const NodeSpec& sb = specs_.at(link.b);
    const net::IpAddress ip_a = sa.host->ip(
        link.iface_a == kSameIface ? sa.iface : link.iface_a);
    const net::IpAddress ip_b = sb.host->ip(
        link.iface_b == kSameIface ? sb.iface : link.iface_b);
    sa.host->firewall().allow.push_back(
        net::FirewallRule{net::Direction::kInbound, ip_b, sa.port, sb.port});
    sa.host->firewall().allow.push_back(
        net::FirewallRule{net::Direction::kOutbound, ip_b, sb.port, sa.port});
    sb.host->firewall().allow.push_back(
        net::FirewallRule{net::Direction::kInbound, ip_a, sb.port, sa.port});
    sb.host->firewall().allow.push_back(
        net::FirewallRule{net::Direction::kOutbound, ip_a, sa.port, sb.port});
  }
}

void Overlay::start_all() {
  for (const auto& id : order_) daemons_.at(id)->start();
}

Daemon& Overlay::daemon(const NodeId& id) {
  const auto it = daemons_.find(id);
  if (it == daemons_.end()) {
    throw std::out_of_range("daemon not built: " + id);
  }
  return *it->second;
}

}  // namespace spire::spines
