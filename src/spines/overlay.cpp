#include "spines/overlay.hpp"

#include <stdexcept>

namespace spire::spines {

Overlay::Overlay(sim::Simulator& sim, const crypto::Keyring& keyring,
                 DaemonConfig config_template)
    : sim_(sim), keyring_(keyring), template_(std::move(config_template)) {}

void Overlay::add_node(const NodeId& id, net::Host& host,
                       std::uint16_t udp_port, std::size_t iface) {
  if (specs_.count(id)) throw std::invalid_argument("duplicate node id " + id);
  specs_[id] = NodeSpec{&host, udp_port, iface};
  order_.push_back(id);
}

void Overlay::add_link(const NodeId& a, const NodeId& b) {
  if (!specs_.count(a) || !specs_.count(b)) {
    throw std::invalid_argument("link references unknown node");
  }
  links_.emplace_back(a, b);
}

void Overlay::build() {
  crypto::Verifier verifier;
  for (const auto& id : order_) {
    verifier.add_identity(id, keyring_.identity_key(id));
  }

  for (const auto& id : order_) {
    const NodeSpec& spec = specs_.at(id);
    DaemonConfig config = template_;
    config.id = id;
    config.udp_port = spec.port;
    daemons_[id] = std::make_unique<Daemon>(sim_, *spec.host, config, keyring_,
                                            verifier);
  }

  for (const auto& [a, b] : links_) {
    const NodeSpec& sa = specs_.at(a);
    const NodeSpec& sb = specs_.at(b);
    daemons_.at(a)->add_neighbor(b,
                                 net::Endpoint{sb.host->ip(sb.iface), sb.port});
    daemons_.at(b)->add_neighbor(a,
                                 net::Endpoint{sa.host->ip(sa.iface), sa.port});
  }
}

void Overlay::allow_link_traffic() {
  for (const auto& [a, b] : links_) {
    const NodeSpec& sa = specs_.at(a);
    const NodeSpec& sb = specs_.at(b);
    const net::IpAddress ip_a = sa.host->ip(sa.iface);
    const net::IpAddress ip_b = sb.host->ip(sb.iface);
    sa.host->firewall().allow.push_back(
        net::FirewallRule{net::Direction::kInbound, ip_b, sa.port, sb.port});
    sa.host->firewall().allow.push_back(
        net::FirewallRule{net::Direction::kOutbound, ip_b, sb.port, sa.port});
    sb.host->firewall().allow.push_back(
        net::FirewallRule{net::Direction::kInbound, ip_a, sb.port, sa.port});
    sb.host->firewall().allow.push_back(
        net::FirewallRule{net::Direction::kOutbound, ip_a, sa.port, sb.port});
  }
}

void Overlay::start_all() {
  for (const auto& id : order_) daemons_.at(id)->start();
}

Daemon& Overlay::daemon(const NodeId& id) {
  const auto it = daemons_.find(id);
  if (it == daemons_.end()) {
    throw std::out_of_range("daemon not built: " + id);
  }
  return *it->second;
}

}  // namespace spire::spines
