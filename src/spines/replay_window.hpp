// Per-link replay/duplicate tracking: highest sequence number seen plus
// a 64-wide bitmap of recently seen sequence numbers, so delayed
// retransmissions are still accepted exactly once. Extracted from the
// daemon's Neighbor so the window arithmetic is testable in isolation.
#pragma once

#include <cstdint>

namespace spire::spines {

struct ReplayWindow {
  std::uint64_t max_seq = 0;
  std::uint64_t window = 0;  ///< bit i tracks (max_seq - i)

  /// Accept check; returns false for duplicates and for anything older
  /// than the 64-entry window (treated as replay).
  bool accept(std::uint64_t seq) {
    if (seq > max_seq) {
      const std::uint64_t shift = seq - max_seq;
      window = shift >= 64 ? 0 : (window << shift);
      window |= 1;  // bit 0 tracks the new maximum
      max_seq = seq;
      return true;
    }
    const std::uint64_t age = max_seq - seq;
    if (age >= 64) return false;  // beyond the window: treat as replay
    const std::uint64_t bit = 1ULL << age;
    if (window & bit) return false;
    window |= bit;
    return true;
  }
};

}  // namespace spire::spines
