// Incremental shortest-path-first engine for the overlay control plane.
//
// The daemon's route table is a pure function of the confirmed-edge
// graph (an edge counts only if both endpoints advertise each other),
// defined canonically so two different algorithms can compute it and be
// compared byte-for-byte:
//
//   dist[v]   = BFS hop count from self over confirmed edges;
//   parent[v] = the minimum-handle confirmed neighbor of v at
//               dist[v] - 1 (parent[self] = self);
//   route[v]  = v when parent[v] == self, else route[parent[v]].
//
// Two implementations of that function live here. full_bfs() rebuilds
// everything from the adjacency rows; the incremental path repairs only
// the region affected by the confirmed-edge deltas accumulated since
// the last recompute (orphan the subtrees cut off by removed tree
// edges, then re-settle the invalid/improved region with a bucket
// queue in distance order). Single link flaps — the steady-state
// workload at 500 daemons — touch O(affected subtree), not O(graph).
// Topology-shape changes (an origin's first advertisement, oversized
// delta batches) fall back to the full BFS. Debug builds assert the
// incremental result equals the full recomputation after every run.
#pragma once

#include <cstdint>
#include <vector>

#include "spines/node_table.hpp"

namespace spire::spines {

struct SpfStats {
  std::uint64_t full_runs = 0;
  std::uint64_t incremental_runs = 0;
  /// Vertices re-settled across all incremental runs (repair work).
  std::uint64_t vertices_settled = 0;
  std::uint64_t fallback_shape = 0;  ///< full runs forced by a shape change
  std::uint64_t fallback_batch = 0;  ///< full runs forced by delta overflow
};

class SpfEngine {
 public:
  static constexpr std::uint32_t kInfDist = 0xFFFFFFFFu;
  /// Confirmed-edge delta batches larger than this are cheaper to
  /// rebuild than to repair.
  static constexpr std::size_t kMaxIncrementalEdges = 64;

  /// Sets the BFS root. Must be called before the first recompute().
  void attach_self(NodeHandle self);

  /// Grows every handle-indexed structure to `count` nodes. New nodes
  /// start with no adjacency and stay unreachable until advertised.
  void ensure_nodes(std::size_t count);

  /// Replaces `origin`'s advertised adjacency row (sorted + deduped
  /// internally, self-loops dropped). Returns true when the row
  /// actually changed — the caller's cue to mark routes dirty.
  /// Confirmed-edge deltas are accumulated for the next recompute().
  bool set_adjacency(NodeHandle origin,
                     const std::vector<NodeHandle>& neighbors);

  /// Recomputes dist/parent/route, incrementally when possible.
  void recompute();

  [[nodiscard]] NodeHandle route(NodeHandle dst) const {
    return dst < routes_.size() ? routes_[dst] : kNoHandle;
  }
  [[nodiscard]] std::uint32_t dist(NodeHandle dst) const {
    return dst < dist_.size() ? dist_[dst] : kInfDist;
  }
  [[nodiscard]] const std::vector<NodeHandle>& routes() const {
    return routes_;
  }
  [[nodiscard]] std::size_t node_count() const { return n_; }
  [[nodiscard]] const SpfStats& stats() const { return stats_; }

  /// Recomputes the canonical function from scratch into scratch
  /// buffers and compares with the current dist/parent/route state.
  /// Used by the daemon's debug assert and the equivalence tests.
  [[nodiscard]] bool verify_against_full();

 private:
  struct EdgeDelta {
    NodeHandle u = kNoHandle;
    NodeHandle v = kNoHandle;
  };

  [[nodiscard]] bool advertises(NodeHandle a, NodeHandle b) const;
  [[nodiscard]] bool confirmed(NodeHandle a, NodeHandle b) const {
    return advertises(a, b) && advertises(b, a);
  }

  /// Canonical full BFS into the given output vectors.
  void compute_full(std::vector<std::uint32_t>& dist,
                    std::vector<NodeHandle>& parent,
                    std::vector<NodeHandle>& routes) const;
  void full_bfs();
  void incremental();
  void rebuild_children();
  void orphan_subtree(NodeHandle v);
  void detach_child(NodeHandle parent, NodeHandle child);
  void push_candidate(NodeHandle v, std::uint32_t d);

  NodeHandle self_ = kNoHandle;
  std::size_t n_ = 0;
  bool has_run_ = false;
  bool force_full_ = true;

  std::vector<std::vector<NodeHandle>> adj_;  ///< sorted advertised rows
  std::vector<std::uint8_t> row_present_;

  std::vector<std::uint32_t> dist_;
  std::vector<NodeHandle> parent_;
  std::vector<NodeHandle> routes_;
  std::vector<std::vector<NodeHandle>> children_;  ///< current SPF tree

  std::vector<EdgeDelta> pending_add_;
  std::vector<EdgeDelta> pending_remove_;

  // Incremental-run scratch (reused across runs, sized lazily).
  std::vector<std::vector<NodeHandle>> buckets_;
  std::vector<std::uint32_t> settled_round_;
  std::uint32_t round_ = 0;
  std::vector<NodeHandle> invalid_scratch_;
  std::vector<NodeHandle> stack_scratch_;
  std::vector<NodeHandle> route_fix_queue_;
  std::vector<NodeHandle> row_scratch_;

  // verify_against_full scratch.
  std::vector<std::uint32_t> vdist_;
  std::vector<NodeHandle> vparent_;
  std::vector<NodeHandle> vroutes_;

  SpfStats stats_;
};

}  // namespace spire::spines
