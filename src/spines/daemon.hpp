// Spines overlay daemon.
//
// Implements the properties the paper's deployments rely on (§II, §IV):
//  * authenticated + encrypted links (per-link keys, encrypt-then-MAC,
//    per-direction nonce spaces, replay counters) in intrusion-tolerant
//    mode — a daemon without the current keys simply cannot join;
//  * signed link-state flooding with bidirectional edge confirmation,
//    so a Byzantine daemon can only lie about its own adjacencies;
//  * two forwarding modes: shortest-path routing, and the
//    intrusion-tolerant priority flood with per-source round-robin
//    fairness and per-source queue caps, which keeps a traffic-blasting
//    compromised daemon from starving correct sources;
//  * the legacy "debug" code path that the red team's patched binary
//    targeted, which is compiled out (ignored) in intrusion-tolerant
//    mode — reproducing the excursion result.
//
// Data-plane fast path (see DESIGN.md "Performance architecture"): node
// names are interned to dense uint32 handles at admission, so neighbor
// state, routes, the LSDB, and the per-priority queues are flat vectors
// — the handle_udp → on_data → enqueue_data → pump → send_packet chain
// does zero string compares. Route recomputation is event-coalesced
// behind a dirty flag, flood dedup is an O(1) open-addressing ring, and
// forwarded messages are shared (not copied) across neighbor queues and
// encoded once per pump batch.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/keyring.hpp"
#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "spines/dedup_ring.hpp"
#include "spines/message.hpp"
#include "spines/node_table.hpp"
#include "spines/replay_window.hpp"
#include "spines/spf.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace spire::spines {

constexpr std::uint16_t kDefaultDaemonPort = 8100;
/// Legacy debug opcode (see file comment). Present for fidelity to the
/// red-team excursion; only honoured outside intrusion-tolerant mode.
constexpr std::uint8_t kDebugPacketType = 4;

enum class ForwardingMode {
  kRouted,        ///< shortest-path unicast
  kPriorityFlood  ///< intrusion-tolerant constrained flooding
};

struct DaemonConfig {
  NodeId id;
  std::uint16_t udp_port = kDefaultDaemonPort;
  /// Seal all link traffic and disable legacy code paths.
  bool intrusion_tolerant = true;
  ForwardingMode mode = ForwardingMode::kPriorityFlood;
  sim::Time hello_interval = 100 * sim::kMillisecond;
  sim::Time link_timeout = 350 * sim::kMillisecond;
  sim::Time lsu_refresh = 1 * sim::kSecond;
  /// Topology events (accepted LSUs, hello up/down transitions) within
  /// this window collapse into a single route recomputation.
  sim::Time route_coalesce_interval = 1 * sim::kMillisecond;
  /// Overlay egress pacing (bytes per microsecond, ~1 Gb/s default).
  double link_bytes_per_us = 125.0;
  std::size_t per_source_queue_cap = 128;
  std::size_t dedup_cache_size = 8192;
  /// Spines' reliable message service: per-link ARQ for data packets
  /// (ack + retransmit), so routed traffic survives transient drops.
  bool reliable_data_links = true;
  sim::Time retransmit_timeout = 50 * sim::kMillisecond;
  int max_retransmits = 6;

  // --- hierarchical area routing (wide-area overlays) -------------------
  /// Routing area this daemon belongs to. LSUs flood only within the
  /// area; reachability crosses area borders as bounded summary
  /// advertisements from border daemons (daemons with a neighbor in a
  /// different area). Single-area overlays behave exactly as before.
  std::uint32_t area = 0;
  /// Border daemons advertise each summary stream once per interval.
  sim::Time summary_interval = 1 * sim::kSecond;
  /// Max member names per summary advertisement; larger sets rotate
  /// through consecutive advertisements (BATMAN-style originator
  /// capping), so per-interval fan-out is bounded regardless of area
  /// size.
  std::size_t summary_fanout_cap = 64;
  /// Remote members not re-advertised within this window are dropped.
  sim::Time summary_member_timeout = 10 * sim::kSecond;
  /// Node-table capacity (distinct node names this daemon will admit).
  std::size_t max_overlay_nodes = kMaxOverlayNodes;
};

struct DaemonStats {
  std::uint64_t data_originated = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t dropped_auth = 0;
  std::uint64_t dropped_replay = 0;
  std::uint64_t dropped_dedup = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t lsu_accepted = 0;
  std::uint64_t lsu_rejected_sig = 0;
  std::uint64_t debug_packets_ignored = 0;
  std::uint64_t debug_packets_honoured = 0;
  std::uint64_t data_retransmits = 0;
  std::uint64_t data_abandoned = 0;  ///< gave up after max retransmits
  std::uint64_t acks_sent = 0;
  // Control-plane churn and queue-pressure observability (printed by the
  // soak/topology benches so regressions are visible in bench output).
  std::uint64_t route_recomputes = 0;
  std::uint64_t route_recomputes_coalesced = 0;
  std::uint64_t dedup_evictions = 0;
  std::array<std::uint64_t, 3> max_queue_depth{};  ///< per priority class
  // Incremental-SPF and wide-area control-plane observability.
  std::uint64_t spf_incremental = 0;  ///< recomputes repaired incrementally
  std::uint64_t spf_full = 0;         ///< recomputes that ran the full BFS
  std::uint64_t border_summaries_sent = 0;
  std::uint64_t summaries_accepted = 0;
  std::uint64_t summaries_rejected_sig = 0;
  std::uint64_t lsu_bytes_sent = 0;
  std::uint64_t summary_bytes_sent = 0;
  /// LSU + summary bytes sent over links whose far end is in another
  /// area — the wide-area control-plane budget bench_wide_area gates.
  std::uint64_t inter_area_control_bytes = 0;
  std::uint64_t node_table_overflows = 0;
};

/// Delivery callback for a local session.
using SessionHandler = std::function<void(const DataBody&)>;

class Daemon {
 public:
  /// `verifier` must know the identity keys of every legitimate overlay
  /// node; `keyring` supplies link keys and this node's signing key.
  Daemon(sim::Simulator& sim, net::Host& host, DaemonConfig config,
         const crypto::Keyring& keyring, crypto::Verifier verifier);

  /// Declares a neighbor and its underlay address. Call before start().
  void add_neighbor(const NodeId& id, net::Endpoint address);
  /// Same, for a neighbor in (possibly) another routing area. A
  /// cross-area neighbor makes this daemon a border daemon: LSUs never
  /// cross the link; summary advertisements do.
  void add_neighbor(const NodeId& id, net::Endpoint address,
                    std::uint32_t area);

  /// Binds the UDP port and begins hello/LSU cycles.
  void start();
  /// Unbinds and goes silent (the excursion's "stop the daemons" step).
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  // ---- session API (local applications) ---------------------------------
  void open_session(SessionPort port, SessionHandler handler);
  void close_session(SessionPort port);
  /// Sends a message into the overlay. Returns false if the daemon is
  /// stopped.
  bool session_send(SessionPort src_port, const NodeId& dst,
                    SessionPort dst_port, util::Bytes payload,
                    Priority priority = Priority::kHigh);

  // ---- attack-framework hooks --------------------------------------------
  /// Replaces this daemon's key material with garbage, modelling the red
  /// team's rebuilt/modified binary that lacked the new link keys.
  void corrupt_link_keys();
  /// Restores correct keys (reinstalling the legitimate binary).
  void restore_link_keys();

  [[nodiscard]] const DaemonStats& stats() const { return stats_; }
  [[nodiscard]] const DaemonConfig& config() const { return config_; }
  [[nodiscard]] bool link_up(const NodeId& neighbor) const;
  [[nodiscard]] std::optional<NodeId> next_hop(const NodeId& dst) const;
  /// LSDB introspection (used by the forged-LSU regression test: a
  /// non-member origin must leave no trace).
  [[nodiscard]] std::size_t lsdb_size() const { return lsdb_count_; }
  [[nodiscard]] bool lsdb_contains(const NodeId& origin) const;
  /// True when any declared neighbor is in another area.
  [[nodiscard]] bool is_border() const;
  /// Incremental-SPF engine introspection (equivalence tests, benches).
  [[nodiscard]] const SpfStats& spf_stats() const { return spf_.stats(); }
  /// Total LSU + summary bytes this daemon has sent to `neighbor`
  /// (bench_wide_area sums these over the designated wide links).
  [[nodiscard]] std::uint64_t control_bytes_to(const NodeId& neighbor) const;
  [[nodiscard]] const NodeTable& node_table() const { return nodes_; }

 private:
  /// One data message staged for transmission. Flood fan-out shares one
  /// unit across every neighbor queue; the wire encoding is produced
  /// once, on first transmission, and reused for every copy sent.
  struct ForwardUnit {
    DataBody body;
    util::Bytes encoded;
  };

  /// Per-source FIFOs for one priority class, indexed by source handle,
  /// with a round-robin ring of sources that currently have traffic.
  struct PriorityClassQueue {
    std::vector<std::deque<std::shared_ptr<ForwardUnit>>> by_source;
    std::vector<NodeHandle> active;  ///< sources with non-empty queues
    std::size_t rr_next = 0;         ///< round-robin cursor into `active`
    std::size_t depth = 0;           ///< total queued across sources

    [[nodiscard]] bool empty() const { return depth == 0; }
    void clear();
  };

  struct Neighbor {
    NodeHandle handle = kNoHandle;
    net::Endpoint address;
    std::uint32_t area = 0;  ///< routing area of the far end
    std::unique_ptr<crypto::SecureChannel> send_channel;
    std::unique_ptr<crypto::SecureChannel> recv_channel;
    std::uint64_t send_link_seq = 0;
    ReplayWindow recv_window;
    sim::Time last_hello = 0;
    bool up = false;
    /// Reliable-service state: unacked data packets awaiting ack.
    struct Unacked {
      util::Bytes inner_bytes;
      sim::Time sent_at = 0;
      int retries = 0;
    };
    std::map<std::uint64_t, Unacked> unacked;
    std::array<PriorityClassQueue, 3> queues;
    sim::Time busy_until = 0;
    bool pump_scheduled = false;
  };

  struct LsdbEntry {
    bool present = false;
    std::uint64_t seq = 0;
  };

  /// One "dst is reachable via this advertiser" fact from an accepted
  /// summary. Interior daemons collect local borders as vias; borders
  /// additionally collect their cross-area neighbors.
  struct RemoteVia {
    NodeHandle via = kNoHandle;
    sim::Time last_seen = 0;
  };

  /// Border-side state for one remote area whose members this daemon
  /// has learned across its wide-area links.
  struct ForeignArea {
    std::vector<std::uint32_t> path;  ///< areas traversed so far
    std::map<NodeHandle, sim::Time> members;  ///< member -> last seen
    std::size_t cursor = 0;  ///< rotation position for capped fan-out
  };

  void make_channels(Neighbor& n, const NodeId& id, bool corrupted);
  void handle_udp(const net::Datagram& dgram);
  void process_inner(NodeHandle from, PacketType type,
                     std::span<const std::uint8_t> body);
  void on_hello(NodeHandle from);
  void on_link_state(NodeHandle arrival, const LinkStateBody& lsu);
  void on_area_summary(NodeHandle arrival, const AreaSummaryBody& summary);
  /// `arrival` is kNoHandle for locally originated messages.
  void on_data(NodeHandle arrival, DataBody data);
  void hello_tick(std::uint64_t epoch);
  void lsu_tick(std::uint64_t epoch);
  void summary_tick(std::uint64_t epoch);
  void retransmit_tick(std::uint64_t epoch);
  void send_ack(NodeHandle neighbor, std::uint64_t acked_seq);
  void transmit_inner(NodeHandle neighbor,
                      std::span<const std::uint8_t> inner_bytes);
  void broadcast_own_lsu();
  void send_packet(NodeHandle neighbor, PacketType type,
                   std::span<const std::uint8_t> body);
  void enqueue_data(NodeHandle neighbor, NodeHandle src,
                    const std::shared_ptr<ForwardUnit>& unit);
  void pump(NodeHandle neighbor);
  /// Sets the routes-dirty flag and schedules one coalesced
  /// recompute_routes() per route_coalesce_interval.
  void mark_routes_dirty();
  void recompute_routes();
  /// Border origination: advertises every summary stream (own area +
  /// learned foreign areas) across wide links and into the local area.
  void send_summaries();
  /// Emits one capped, rotated advertisement for a member set.
  void emit_summary_stream(std::uint32_t subject_area,
                           const std::vector<std::uint32_t>& path,
                           const std::vector<NodeHandle>& members,
                           std::size_t& cursor);
  /// Records "dst reachable via `via`" with freshness `now`.
  void note_remote_via(NodeHandle dst, NodeHandle via);
  /// Rebuilds remote_routes_ from the via table and the current SPF
  /// result: best via = min (cost, handle), cost 1 for an up direct
  /// cross-area neighbor, else the intra-area SPF distance.
  void refresh_remote_routes();
  /// Intra-area route if the SPF tree reaches dst, else the summary-
  /// derived remote route.
  [[nodiscard]] NodeHandle route_for(NodeHandle dst) const;
  [[nodiscard]] bool same_area(const Neighbor& n) const {
    return n.area == config_.area;
  }
  /// Interns `id`, dropping to kNoHandle when the node table is full;
  /// grows every handle-indexed vector to match.
  NodeHandle admit_node(std::string_view id);
  [[nodiscard]] Neighbor* neighbor_slot(NodeHandle h) {
    return h < neighbors_.size() ? neighbors_[h].get() : nullptr;
  }
  [[nodiscard]] const Neighbor* neighbor_slot(NodeHandle h) const {
    return h < neighbors_.size() ? neighbors_[h].get() : nullptr;
  }

  sim::Simulator& sim_;
  net::Host& host_;
  DaemonConfig config_;
  const crypto::Keyring& keyring_;
  crypto::Verifier verifier_;
  crypto::Signer signer_;
  util::Logger log_;

  bool running_ = false;
  bool keys_corrupted_ = false;
  /// Timer epoch: bumped on stop() so orphaned tick/pump lambdas no-op
  /// (mirrors the Prime replica's timer-epoch pattern).
  std::uint64_t epoch_ = 0;

  NodeTable nodes_;
  NodeHandle self_ = kNoHandle;
  std::vector<std::unique_ptr<Neighbor>> neighbors_;  ///< indexed by handle
  std::vector<NodeHandle> neighbor_order_;            ///< declaration order
  std::map<SessionPort, SessionHandler> sessions_;

  std::uint64_t hello_seq_ = 0;
  std::uint64_t own_lsu_seq_ = 0;
  std::uint64_t data_seq_ = 0;

  std::vector<LsdbEntry> lsdb_;    ///< indexed by origin handle
  std::size_t lsdb_count_ = 0;
  bool routes_dirty_ = false;
  bool route_recompute_scheduled_ = false;
  SpfEngine spf_;  ///< intra-area routes (canonical BFS + incremental)

  // --- wide-area state ---------------------------------------------------
  std::uint64_t own_summary_seq_ = 0;
  std::size_t own_area_cursor_ = 0;  ///< rotation over own-area members
  std::map<std::uint32_t, ForeignArea> foreign_;  ///< borders only
  /// Per-(origin handle, subject area) newest accepted summary seq.
  std::map<std::pair<NodeHandle, std::uint32_t>, std::uint64_t> summary_seq_;
  std::vector<std::vector<RemoteVia>> remote_vias_;  ///< by dst handle
  std::vector<NodeHandle> remote_routes_;            ///< by dst handle
  std::vector<std::uint64_t> control_bytes_by_neighbor_;  ///< by handle
  std::vector<NodeHandle> member_scratch_;  ///< summary-stream staging

  DedupRing dedup_;

  // Reusable serialization scratch: the send path encodes into these
  // instead of allocating per packet.
  util::ByteWriter inner_scratch_;
  util::ByteWriter env_scratch_;

  DaemonStats stats_;
  obs::Binder metrics_;  ///< exposes stats_ in the metrics registry
};

}  // namespace spire::spines
