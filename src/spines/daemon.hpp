// Spines overlay daemon.
//
// Implements the properties the paper's deployments rely on (§II, §IV):
//  * authenticated + encrypted links (per-link keys, encrypt-then-MAC,
//    per-direction nonce spaces, replay counters) in intrusion-tolerant
//    mode — a daemon without the current keys simply cannot join;
//  * signed link-state flooding with bidirectional edge confirmation,
//    so a Byzantine daemon can only lie about its own adjacencies;
//  * two forwarding modes: shortest-path routing, and the
//    intrusion-tolerant priority flood with per-source round-robin
//    fairness and per-source queue caps, which keeps a traffic-blasting
//    compromised daemon from starving correct sources;
//  * the legacy "debug" code path that the red team's patched binary
//    targeted, which is compiled out (ignored) in intrusion-tolerant
//    mode — reproducing the excursion result.
//
// Data-plane fast path (see DESIGN.md "Performance architecture"): node
// names are interned to dense uint32 handles at admission, so neighbor
// state, routes, the LSDB, and the per-priority queues are flat vectors
// — the handle_udp → on_data → enqueue_data → pump → send_packet chain
// does zero string compares. Route recomputation is event-coalesced
// behind a dirty flag, flood dedup is an O(1) open-addressing ring, and
// forwarded messages are shared (not copied) across neighbor queues and
// encoded once per pump batch.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/keyring.hpp"
#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "spines/dedup_ring.hpp"
#include "spines/message.hpp"
#include "spines/node_table.hpp"
#include "spines/replay_window.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace spire::spines {

constexpr std::uint16_t kDefaultDaemonPort = 8100;
/// Legacy debug opcode (see file comment). Present for fidelity to the
/// red-team excursion; only honoured outside intrusion-tolerant mode.
constexpr std::uint8_t kDebugPacketType = 4;

enum class ForwardingMode {
  kRouted,        ///< shortest-path unicast
  kPriorityFlood  ///< intrusion-tolerant constrained flooding
};

struct DaemonConfig {
  NodeId id;
  std::uint16_t udp_port = kDefaultDaemonPort;
  /// Seal all link traffic and disable legacy code paths.
  bool intrusion_tolerant = true;
  ForwardingMode mode = ForwardingMode::kPriorityFlood;
  sim::Time hello_interval = 100 * sim::kMillisecond;
  sim::Time link_timeout = 350 * sim::kMillisecond;
  sim::Time lsu_refresh = 1 * sim::kSecond;
  /// Topology events (accepted LSUs, hello up/down transitions) within
  /// this window collapse into a single route recomputation.
  sim::Time route_coalesce_interval = 1 * sim::kMillisecond;
  /// Overlay egress pacing (bytes per microsecond, ~1 Gb/s default).
  double link_bytes_per_us = 125.0;
  std::size_t per_source_queue_cap = 128;
  std::size_t dedup_cache_size = 8192;
  /// Spines' reliable message service: per-link ARQ for data packets
  /// (ack + retransmit), so routed traffic survives transient drops.
  bool reliable_data_links = true;
  sim::Time retransmit_timeout = 50 * sim::kMillisecond;
  int max_retransmits = 6;
};

struct DaemonStats {
  std::uint64_t data_originated = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t dropped_auth = 0;
  std::uint64_t dropped_replay = 0;
  std::uint64_t dropped_dedup = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t lsu_accepted = 0;
  std::uint64_t lsu_rejected_sig = 0;
  std::uint64_t debug_packets_ignored = 0;
  std::uint64_t debug_packets_honoured = 0;
  std::uint64_t data_retransmits = 0;
  std::uint64_t data_abandoned = 0;  ///< gave up after max retransmits
  std::uint64_t acks_sent = 0;
  // Control-plane churn and queue-pressure observability (printed by the
  // soak/topology benches so regressions are visible in bench output).
  std::uint64_t route_recomputes = 0;
  std::uint64_t route_recomputes_coalesced = 0;
  std::uint64_t dedup_evictions = 0;
  std::array<std::uint64_t, 3> max_queue_depth{};  ///< per priority class
};

/// Delivery callback for a local session.
using SessionHandler = std::function<void(const DataBody&)>;

class Daemon {
 public:
  /// `verifier` must know the identity keys of every legitimate overlay
  /// node; `keyring` supplies link keys and this node's signing key.
  Daemon(sim::Simulator& sim, net::Host& host, DaemonConfig config,
         const crypto::Keyring& keyring, crypto::Verifier verifier);

  /// Declares a neighbor and its underlay address. Call before start().
  void add_neighbor(const NodeId& id, net::Endpoint address);

  /// Binds the UDP port and begins hello/LSU cycles.
  void start();
  /// Unbinds and goes silent (the excursion's "stop the daemons" step).
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  // ---- session API (local applications) ---------------------------------
  void open_session(SessionPort port, SessionHandler handler);
  void close_session(SessionPort port);
  /// Sends a message into the overlay. Returns false if the daemon is
  /// stopped.
  bool session_send(SessionPort src_port, const NodeId& dst,
                    SessionPort dst_port, util::Bytes payload,
                    Priority priority = Priority::kHigh);

  // ---- attack-framework hooks --------------------------------------------
  /// Replaces this daemon's key material with garbage, modelling the red
  /// team's rebuilt/modified binary that lacked the new link keys.
  void corrupt_link_keys();
  /// Restores correct keys (reinstalling the legitimate binary).
  void restore_link_keys();

  [[nodiscard]] const DaemonStats& stats() const { return stats_; }
  [[nodiscard]] const DaemonConfig& config() const { return config_; }
  [[nodiscard]] bool link_up(const NodeId& neighbor) const;
  [[nodiscard]] std::optional<NodeId> next_hop(const NodeId& dst) const;
  /// LSDB introspection (used by the forged-LSU regression test: a
  /// non-member origin must leave no trace).
  [[nodiscard]] std::size_t lsdb_size() const { return lsdb_count_; }
  [[nodiscard]] bool lsdb_contains(const NodeId& origin) const;

 private:
  /// One data message staged for transmission. Flood fan-out shares one
  /// unit across every neighbor queue; the wire encoding is produced
  /// once, on first transmission, and reused for every copy sent.
  struct ForwardUnit {
    DataBody body;
    util::Bytes encoded;
  };

  /// Per-source FIFOs for one priority class, indexed by source handle,
  /// with a round-robin ring of sources that currently have traffic.
  struct PriorityClassQueue {
    std::vector<std::deque<std::shared_ptr<ForwardUnit>>> by_source;
    std::vector<NodeHandle> active;  ///< sources with non-empty queues
    std::size_t rr_next = 0;         ///< round-robin cursor into `active`
    std::size_t depth = 0;           ///< total queued across sources

    [[nodiscard]] bool empty() const { return depth == 0; }
    void clear();
  };

  struct Neighbor {
    NodeHandle handle = kNoHandle;
    net::Endpoint address;
    std::unique_ptr<crypto::SecureChannel> send_channel;
    std::unique_ptr<crypto::SecureChannel> recv_channel;
    std::uint64_t send_link_seq = 0;
    ReplayWindow recv_window;
    sim::Time last_hello = 0;
    bool up = false;
    /// Reliable-service state: unacked data packets awaiting ack.
    struct Unacked {
      util::Bytes inner_bytes;
      sim::Time sent_at = 0;
      int retries = 0;
    };
    std::map<std::uint64_t, Unacked> unacked;
    std::array<PriorityClassQueue, 3> queues;
    sim::Time busy_until = 0;
    bool pump_scheduled = false;
  };

  struct LsdbEntry {
    bool present = false;
    std::uint64_t seq = 0;
    std::vector<NodeHandle> neighbors;
  };

  void make_channels(Neighbor& n, const NodeId& id, bool corrupted);
  void handle_udp(const net::Datagram& dgram);
  void process_inner(NodeHandle from, PacketType type,
                     std::span<const std::uint8_t> body);
  void on_hello(NodeHandle from);
  void on_link_state(NodeHandle arrival, const LinkStateBody& lsu);
  /// `arrival` is kNoHandle for locally originated messages.
  void on_data(NodeHandle arrival, DataBody data);
  void hello_tick(std::uint64_t epoch);
  void lsu_tick(std::uint64_t epoch);
  void retransmit_tick(std::uint64_t epoch);
  void send_ack(NodeHandle neighbor, std::uint64_t acked_seq);
  void transmit_inner(NodeHandle neighbor,
                      std::span<const std::uint8_t> inner_bytes);
  void broadcast_own_lsu();
  void send_packet(NodeHandle neighbor, PacketType type,
                   std::span<const std::uint8_t> body);
  void enqueue_data(NodeHandle neighbor, NodeHandle src,
                    const std::shared_ptr<ForwardUnit>& unit);
  void pump(NodeHandle neighbor);
  /// Sets the routes-dirty flag and schedules one coalesced
  /// recompute_routes() per route_coalesce_interval.
  void mark_routes_dirty();
  void recompute_routes();
  /// Interns `id`, dropping to kNoHandle when the node table is full;
  /// grows every handle-indexed vector to match.
  NodeHandle admit_node(std::string_view id);
  [[nodiscard]] Neighbor* neighbor_slot(NodeHandle h) {
    return h < neighbors_.size() ? neighbors_[h].get() : nullptr;
  }
  [[nodiscard]] const Neighbor* neighbor_slot(NodeHandle h) const {
    return h < neighbors_.size() ? neighbors_[h].get() : nullptr;
  }

  sim::Simulator& sim_;
  net::Host& host_;
  DaemonConfig config_;
  const crypto::Keyring& keyring_;
  crypto::Verifier verifier_;
  crypto::Signer signer_;
  util::Logger log_;

  bool running_ = false;
  bool keys_corrupted_ = false;
  /// Timer epoch: bumped on stop() so orphaned tick/pump lambdas no-op
  /// (mirrors the Prime replica's timer-epoch pattern).
  std::uint64_t epoch_ = 0;

  NodeTable nodes_;
  NodeHandle self_ = kNoHandle;
  std::vector<std::unique_ptr<Neighbor>> neighbors_;  ///< indexed by handle
  std::vector<NodeHandle> neighbor_order_;            ///< declaration order
  std::map<SessionPort, SessionHandler> sessions_;

  std::uint64_t hello_seq_ = 0;
  std::uint64_t own_lsu_seq_ = 0;
  std::uint64_t data_seq_ = 0;

  std::vector<LsdbEntry> lsdb_;    ///< indexed by origin handle
  std::size_t lsdb_count_ = 0;
  std::vector<NodeHandle> routes_; ///< dst handle -> next-hop handle
  bool routes_dirty_ = false;
  bool route_recompute_scheduled_ = false;

  DedupRing dedup_;

  // Reusable serialization scratch: the send path encodes into these
  // instead of allocating per packet.
  util::ByteWriter inner_scratch_;
  util::ByteWriter env_scratch_;
  // Route recomputation scratch (adjacency bitset + BFS state).
  std::vector<std::uint64_t> adj_bits_;
  std::vector<NodeHandle> bfs_parent_;
  std::vector<NodeHandle> bfs_frontier_;

  DaemonStats stats_;
  obs::Binder metrics_;  ///< exposes stats_ in the metrics registry
};

}  // namespace spire::spines
