// Spines overlay daemon.
//
// Implements the properties the paper's deployments rely on (§II, §IV):
//  * authenticated + encrypted links (per-link keys, encrypt-then-MAC,
//    per-direction nonce spaces, replay counters) in intrusion-tolerant
//    mode — a daemon without the current keys simply cannot join;
//  * signed link-state flooding with bidirectional edge confirmation,
//    so a Byzantine daemon can only lie about its own adjacencies;
//  * two forwarding modes: shortest-path routing, and the
//    intrusion-tolerant priority flood with per-source round-robin
//    fairness and per-source queue caps, which keeps a traffic-blasting
//    compromised daemon from starving correct sources;
//  * the legacy "debug" code path that the red team's patched binary
//    targeted, which is compiled out (ignored) in intrusion-tolerant
//    mode — reproducing the excursion result.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "crypto/keyring.hpp"
#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "spines/message.hpp"
#include "util/log.hpp"

namespace spire::spines {

constexpr std::uint16_t kDefaultDaemonPort = 8100;
/// Legacy debug opcode (see file comment). Present for fidelity to the
/// red-team excursion; only honoured outside intrusion-tolerant mode.
constexpr std::uint8_t kDebugPacketType = 4;

enum class ForwardingMode {
  kRouted,        ///< shortest-path unicast
  kPriorityFlood  ///< intrusion-tolerant constrained flooding
};

struct DaemonConfig {
  NodeId id;
  std::uint16_t udp_port = kDefaultDaemonPort;
  /// Seal all link traffic and disable legacy code paths.
  bool intrusion_tolerant = true;
  ForwardingMode mode = ForwardingMode::kPriorityFlood;
  sim::Time hello_interval = 100 * sim::kMillisecond;
  sim::Time link_timeout = 350 * sim::kMillisecond;
  sim::Time lsu_refresh = 1 * sim::kSecond;
  /// Overlay egress pacing (bytes per microsecond, ~1 Gb/s default).
  double link_bytes_per_us = 125.0;
  std::size_t per_source_queue_cap = 128;
  std::size_t dedup_cache_size = 8192;
  /// Spines' reliable message service: per-link ARQ for data packets
  /// (ack + retransmit), so routed traffic survives transient drops.
  bool reliable_data_links = true;
  sim::Time retransmit_timeout = 50 * sim::kMillisecond;
  int max_retransmits = 6;
};

struct DaemonStats {
  std::uint64_t data_originated = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t dropped_auth = 0;
  std::uint64_t dropped_replay = 0;
  std::uint64_t dropped_dedup = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t lsu_accepted = 0;
  std::uint64_t lsu_rejected_sig = 0;
  std::uint64_t debug_packets_ignored = 0;
  std::uint64_t debug_packets_honoured = 0;
  std::uint64_t data_retransmits = 0;
  std::uint64_t data_abandoned = 0;  ///< gave up after max retransmits
  std::uint64_t acks_sent = 0;
};

/// Delivery callback for a local session.
using SessionHandler = std::function<void(const DataBody&)>;

class Daemon {
 public:
  /// `verifier` must know the identity keys of every legitimate overlay
  /// node; `keyring` supplies link keys and this node's signing key.
  Daemon(sim::Simulator& sim, net::Host& host, DaemonConfig config,
         const crypto::Keyring& keyring, crypto::Verifier verifier);

  /// Declares a neighbor and its underlay address. Call before start().
  void add_neighbor(const NodeId& id, net::Endpoint address);

  /// Binds the UDP port and begins hello/LSU cycles.
  void start();
  /// Unbinds and goes silent (the excursion's "stop the daemons" step).
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  // ---- session API (local applications) ---------------------------------
  void open_session(SessionPort port, SessionHandler handler);
  void close_session(SessionPort port);
  /// Sends a message into the overlay. Returns false if the daemon is
  /// stopped.
  bool session_send(SessionPort src_port, const NodeId& dst,
                    SessionPort dst_port, util::Bytes payload,
                    Priority priority = Priority::kHigh);

  // ---- attack-framework hooks --------------------------------------------
  /// Replaces this daemon's key material with garbage, modelling the red
  /// team's rebuilt/modified binary that lacked the new link keys.
  void corrupt_link_keys();
  /// Restores correct keys (reinstalling the legitimate binary).
  void restore_link_keys();

  [[nodiscard]] const DaemonStats& stats() const { return stats_; }
  [[nodiscard]] const DaemonConfig& config() const { return config_; }
  [[nodiscard]] bool link_up(const NodeId& neighbor) const;
  [[nodiscard]] std::optional<NodeId> next_hop(const NodeId& dst) const;

 private:
  struct Neighbor {
    net::Endpoint address;
    std::unique_ptr<crypto::SecureChannel> send_channel;
    std::unique_ptr<crypto::SecureChannel> recv_channel;
    std::uint64_t send_link_seq = 0;
    /// Windowed replay/duplicate tracking: highest seq seen plus a
    /// 64-wide bitmap of recently seen sequence numbers, so delayed
    /// retransmissions are still accepted exactly once.
    std::uint64_t recv_link_seq = 0;
    std::uint64_t recv_window = 0;
    sim::Time last_hello = 0;
    bool up = false;
    /// Reliable-service state: unacked data packets awaiting ack.
    struct Unacked {
      util::Bytes inner_bytes;
      sim::Time sent_at = 0;
      int retries = 0;
    };
    std::map<std::uint64_t, Unacked> unacked;
    // Priority-flood fairness: per priority class, per-source FIFOs
    // served round-robin (rr_last remembers the last source served).
    std::array<std::map<NodeId, std::deque<DataBody>>, 3> queues;
    std::array<NodeId, 3> rr_last;
    sim::Time busy_until = 0;
    bool pump_scheduled = false;
  };

  void make_channels(Neighbor& n, const NodeId& id, bool corrupted);
  void handle_udp(const net::Datagram& dgram);
  void process_inner(const NodeId& from, const InnerPacket& inner);
  void on_hello(const NodeId& from);
  void on_link_state(const NodeId& arrival, const LinkStateBody& lsu);
  void on_data(const std::optional<NodeId>& arrival, DataBody data);
  void hello_tick();
  void lsu_tick();
  void retransmit_tick();
  /// Windowed accept check; returns false for duplicates/too-old.
  bool accept_link_seq(Neighbor& n, std::uint64_t seq);
  void send_ack(const NodeId& neighbor, std::uint64_t acked_seq);
  void transmit_inner(const NodeId& neighbor, const util::Bytes& inner_bytes);
  void broadcast_own_lsu();
  void send_packet(const NodeId& neighbor, PacketType type,
                   const util::Bytes& body);
  void enqueue_data(const NodeId& neighbor, const DataBody& data);
  void pump(const NodeId& neighbor);
  void recompute_routes();
  [[nodiscard]] bool dedup_seen(const NodeId& src, std::uint64_t msg_seq);

  sim::Simulator& sim_;
  net::Host& host_;
  DaemonConfig config_;
  const crypto::Keyring& keyring_;
  crypto::Verifier verifier_;
  crypto::Signer signer_;
  util::Logger log_;

  bool running_ = false;
  bool keys_corrupted_ = false;
  std::map<NodeId, Neighbor> neighbors_;
  std::map<SessionPort, SessionHandler> sessions_;

  std::uint64_t hello_seq_ = 0;
  std::uint64_t own_lsu_seq_ = 0;
  std::uint64_t data_seq_ = 0;

  struct LinkStateEntry {
    std::uint64_t seq = 0;
    std::vector<NodeId> neighbors;
  };
  std::map<NodeId, LinkStateEntry> lsdb_;
  std::map<NodeId, NodeId> routes_;  ///< dst -> next hop

  std::set<std::pair<NodeId, std::uint64_t>> dedup_;
  std::deque<std::pair<NodeId, std::uint64_t>> dedup_order_;

  DaemonStats stats_;
};

}  // namespace spire::spines
