// Deterministic fault-injection harness.
//
// A ChaosInjector runs a schedule of fault episodes — link
// loss/delay/jitter degradation, node partitions, crash-restarts — off
// the discrete-event simulator, so a chaos run replays bit-identically
// for a given seed. The injector is layering-agnostic: it drives the
// system under test only through the ChaosHooks the caller wires up
// (a Prime LoopbackFabric, a full SpireDeployment, ...), so sim/ stays
// free of protocol dependencies.
//
// Schedules can be scripted event-by-event (tests reproducing one
// precise interleaving) or generated randomly within a fault budget of
// one episode at a time — chaos alone never exceeds the single
// disturbed-replica envelope the n = 3f + 2k + 1 sizing assumes on top
// of proactive recovery.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace spire::sim {

/// Fault controls of the system under test. Unset hooks turn that
/// fault kind into a no-op.
struct ChaosHooks {
  /// Degrades every link: drop probability plus added delivery jitter.
  /// Called with (0, 0) when the episode heals.
  std::function<void(double loss, Time extra_jitter)> set_link_quality;
  /// Cuts a node's connectivity (true) / heals it (false). The node
  /// keeps running — this is a partition, not a crash.
  std::function<void(std::uint32_t node, bool cut)> set_partitioned;
  /// Crashes a node (ungraceful takedown, volatile state lost).
  std::function<void(std::uint32_t node)> crash;
  /// Restarts a crashed node (rejoin via its recovery path).
  std::function<void(std::uint32_t node)> restart;
};

struct ChaosEvent {
  enum class Kind { kLinkDegrade, kPartition, kCrashRestart };
  Kind kind = Kind::kPartition;
  Time at = 0;        ///< absolute simulated time the fault begins
  Time duration = 0;  ///< the fault lifts at `at + duration`
  std::uint32_t node = 0;  ///< target node (partition / crash-restart)
  double loss = 0;         ///< link degrade: drop probability
  Time jitter = 0;         ///< link degrade: added delivery jitter bound
};

struct ChaosStats {
  std::uint64_t injected = 0;  ///< episodes begun
  std::uint64_t healed = 0;    ///< episodes lifted
  std::uint64_t partitions = 0;
  std::uint64_t crash_restarts = 0;
  std::uint64_t link_degrades = 0;
  Time total_fault_time = 0;  ///< summed episode durations (injected ones)
};

class ChaosInjector {
 public:
  ChaosInjector(Simulator& sim, ChaosHooks hooks);

  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  /// Appends one scripted episode. Call before arm().
  void add(const ChaosEvent& event);

  /// Appends a randomized schedule over [start, end): sequential
  /// episodes (never overlapping) with exponentially distributed gaps
  /// of the given mean, uniform durations in [min_duration,
  /// max_duration], targets drawn from [0, node_count). Crash-restart
  /// episodes are only generated when `include_crashes` is set —
  /// leave it off when a proactive-recovery scheduler is also running
  /// and chaos should only consume the partition budget.
  void add_random_schedule(Rng rng, Time start, Time end, Time mean_gap,
                           Time min_duration, Time max_duration,
                           std::uint32_t node_count, bool include_crashes);

  /// Schedules every added episode on the simulator.
  void arm();
  /// Heals any active episode and orphans all pending ones.
  void stop();

  [[nodiscard]] const ChaosStats& stats() const { return stats_; }
  [[nodiscard]] bool fault_active() const { return !active_events_.empty(); }
  [[nodiscard]] std::size_t scheduled() const { return events_.size(); }

 private:
  void begin(const ChaosEvent& event);
  void end(const ChaosEvent& event);

  Simulator& sim_;
  ChaosHooks hooks_;
  std::vector<ChaosEvent> events_;
  std::uint64_t gen_ = 0;  ///< orphans scheduled begin/end lambdas
  bool armed_ = false;
  std::vector<ChaosEvent> active_events_;  ///< episodes currently injected
  ChaosStats stats_;
};

}  // namespace spire::sim
