// Deterministic random number generator (xoshiro256**).
//
// All nondeterminism in the simulation — network jitter, diversity
// variant selection, workload timing, MANA noise — flows from one
// seeded Rng so experiments replay exactly.
#pragma once

#include <cstdint>
#include <vector>

namespace spire::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5349'5245'2019'0001ULL);  // "SIRE2019"

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev);

  /// Derives an independent child generator (for per-component streams).
  Rng fork();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace spire::sim
