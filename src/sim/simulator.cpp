#include "sim/simulator.hpp"

#include <utility>

namespace spire::sim {

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  const Key key{at, next_seq_++};
  queue_.emplace(key, std::make_pair(id, std::move(fn)));
  index_.emplace(id, key);
  return id;
}

EventId Simulator::schedule_after(Time delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  queue_.erase(it->second);
  index_.erase(it);
  return true;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  now_ = it->first.at;
  auto [id, fn] = std::move(it->second);
  queue_.erase(it);
  index_.erase(id);
  ++executed_;
  fn();
  return true;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.begin()->first.at <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace spire::sim
