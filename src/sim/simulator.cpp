#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace spire::sim {
namespace {

/// Saturating add so kNever propagates as "infinity".
constexpr Time sat_add(Time a, Time b) {
  return (b != kNever && a <= kNever - b) ? a + b : kNever;
}

/// Polite spin: tells the core we are in a wait loop.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  asm volatile("pause");
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Spins this many iterations before degrading to yield(), so a window
/// barrier costs nanoseconds when shards are balanced but does not
/// starve an oversubscribed machine.
constexpr unsigned kSpinBudget = 4096;

/// When nothing bounds a parallel window — no shard-0 event, no
/// deadline, no finite lookahead — windows fall back to this fixed
/// span of simulated time so run(limit) still observes its budget at
/// boundaries. Fixed, so window placement (and therefore any
/// lookahead-violation clamping) never depends on the limit argument.
constexpr Time kFallbackWindow = kSecond;

}  // namespace

thread_local Simulator::ExecContext Simulator::tls_exec_;

Simulator::Simulator() {
  auto s = std::make_unique<Shard>();
  s->id = kMainShard;
  s->name = "main";
  main_shard_ = s.get();
  shards_.push_back(std::move(s));
}

Simulator::~Simulator() { stop_pool(); }

// ---- per-shard queue (the pre-shard kernel's exact algorithm) -----------

EventId Simulator::Shard::schedule_local(Time at, std::function<void()> fn) {
  const EventId seq = next_seq++;
  slots.push_back(std::move(fn));
  ++live;
  heap.push_back(Entry{at, seq});
  std::push_heap(heap.begin(), heap.end(), later);
  maybe_trim_slots();
  return seq;
}

bool Simulator::Shard::cancel_local(EventId seq) {
  if (!is_live(seq)) return false;  // already ran, cancelled, or unknown
  slots[seq - base] = nullptr;
  --live;
  // Lazy cancellation leaves a tombstone in the heap; rebuild once
  // tombstones dominate so cancel-heavy workloads stay bounded.
  if (heap.size() > 64 && heap.size() > 2 * live) compact_heap();
  return true;
}

void Simulator::Shard::compact_heap() {
  std::erase_if(heap, [this](const Entry& e) { return !is_live(e.seq); });
  std::make_heap(heap.begin(), heap.end(), later);
}

void Simulator::Shard::prune_dead() {
  while (!heap.empty() && !is_live(heap.front().seq)) {
    std::pop_heap(heap.begin(), heap.end(), later);
    heap.pop_back();
  }
}

void Simulator::Shard::maybe_trim_slots() {
  if (slots.size() < next_trim) return;
  if (live == 0) {
    slots.clear();
    base = next_seq;
  } else {
    // Seqs below every pending event form a dead prefix; drop it. (Dead
    // holes above the first live seq cannot be dropped without
    // remapping ids, so a long-lived event pins at most its own tail.)
    std::size_t first_live = 0;
    while (!slots[first_live]) ++first_live;
    slots.erase(slots.begin(),
                slots.begin() + static_cast<std::ptrdiff_t>(first_live));
    base += first_live;
  }
  next_trim = std::max<std::size_t>(1024, slots.size() * 2);
}

// ---- scheduling ---------------------------------------------------------

Simulator::Shard& Simulator::scheduling_shard() const {
  const ExecContext& ctx = tls_exec_;
  if (ctx.sim == this) return *ctx.shard;
  return *shards_[ambient_shard_];
}

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  Shard& s = scheduling_shard();
  // Clamp "in the past" to the shard-local clock — or, from driver
  // context, to the global clock as well (a shard created mid-run must
  // not accept events behind the simulation).
  const Time floor = tls_exec_.sim == this ? s.now : std::max(s.now, now_);
  if (at < floor) at = floor;
  return encode_id(s.id, s.schedule_local(at, std::move(fn)));
}

EventId Simulator::schedule_after(Time delay, std::function<void()> fn) {
  return schedule_at(sat_add(now(), delay), std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const auto shard = static_cast<ShardId>(id >> kSeqBits);
  if (shard >= shards_.size()) return false;
  return shards_[shard]->cancel_local(id & kSeqMask);
}

// ---- sharding -----------------------------------------------------------

ShardId Simulator::register_shard(std::string name) {
  if (shards_.size() >= (std::size_t{1} << (64 - kSeqBits))) {
    throw std::length_error("sim: shard id space exhausted");
  }
  auto s = std::make_unique<Shard>();
  s->id = static_cast<ShardId>(shards_.size());
  s->name = std::move(name);
  s->now = now_;  // a shard registered mid-simulation starts at now
  const ShardId id = s->id;
  shards_.push_back(std::move(s));
  return id;
}

const std::string& Simulator::shard_name(ShardId shard) const {
  return shards_.at(shard)->name;
}

ShardId Simulator::current_shard() const {
  const ExecContext& ctx = tls_exec_;
  return ctx.sim == this ? ctx.shard->id : ambient_shard_;
}

void Simulator::note_link_latency(Time latency) {
  lookahead_ = std::min(lookahead_, latency);
}

void Simulator::set_workers(unsigned workers) {
  if (workers == 0) workers = 1;
  if (workers == workers_) return;
  stop_pool();
  workers_ = workers;
}

void Simulator::send_to(ShardId dst, Time delay, std::function<void()> fn) {
  const ExecContext& ctx = tls_exec_;
  const Time base = ctx.sim == this ? ctx.shard->now : now_;
  post_at(dst, sat_add(base, delay), std::move(fn));
}

void Simulator::post_at(ShardId dst, Time at, std::function<void()> fn) {
  const ExecContext& ctx = tls_exec_;
  Shard& d = *shards_.at(dst);
  if (ctx.sim != this) {
    // Driver context: the queues are quiescent, insert directly.
    d.schedule_local(std::max({at, d.now, now_}), std::move(fn));
    return;
  }
  Shard& src = *ctx.shard;
  if (src.id == dst) {
    // Same-shard send degrades to an ordinary local event.
    src.schedule_local(std::max(at, src.now), std::move(fn));
    return;
  }
  Time arrival = std::max(at, src.now);
  // Conservative safety: a parallel shard's cross-shard send must land
  // outside the current window (its peers may already have executed up
  // to the horizon). A send that breaks the lookahead contract is
  // clamped to the horizon — which is a pure function of queue state,
  // so even the violation is deterministic — and counted. Shard 0 is
  // exempt: it only runs while every other shard is idle at an earlier
  // or equal time, so any future-dated delivery from it is safe.
  if (src.id != kMainShard && arrival < window_horizon_) {
    arrival = window_horizon_;
    ++src.lookahead_violations;
  }
  src.outbox.push_back(Mail{dst, arrival, std::move(fn)});
}

void Simulator::merge_mailboxes() {
  scratch_mail_.clear();
  for (auto& sp : shards_) {
    if (sp->outbox.empty()) continue;
    for (auto& m : sp->outbox) scratch_mail_.push_back(std::move(m));
    sp->outbox.clear();
  }
  if (scratch_mail_.empty()) return;
  // Canonical merge order: (destination, arrival time, source shard,
  // source program order). Outboxes were drained in shard-id order with
  // each one already in program order, so a stable sort on (dst, at)
  // yields exactly that order without carrying source keys in the Mail.
  std::stable_sort(scratch_mail_.begin(), scratch_mail_.end(),
                   [](const Mail& a, const Mail& b) {
                     return a.dst != b.dst ? a.dst < b.dst : a.at < b.at;
                   });
  mails_routed_ += scratch_mail_.size();
  for (auto& m : scratch_mail_) {
    Shard& d = *shards_[m.dst];
    d.schedule_local(std::max(m.at, d.now), std::move(m.fn));
  }
  scratch_mail_.clear();
}

// ---- single-shard execution (bit-exact pre-shard fast path) -------------

bool Simulator::step_single() {
  Shard& s = *main_shard_;
  s.prune_dead();
  if (s.heap.empty()) return false;
  std::pop_heap(s.heap.begin(), s.heap.end(), later);
  const Entry ev = s.heap.back();
  s.heap.pop_back();
  std::function<void()> fn = std::move(s.slots[ev.seq - s.base]);
  s.slots[ev.seq - s.base] = nullptr;
  --s.live;
  now_ = ev.at;
  s.now = ev.at;
  ++s.executed;
  fn();
  return true;
}

std::size_t Simulator::run_until_single(Time deadline) {
  Shard& s = *main_shard_;
  std::size_t n = 0;
  while (true) {
    s.prune_dead();
    if (s.heap.empty() || s.heap.front().at > deadline) break;
    step_single();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  s.now = now_;
  return n;
}

// ---- multi-shard execution ----------------------------------------------

bool Simulator::step() {
  if (shards_.size() == 1) return step_single();
  // Serial stepping runs the canonically next event across all shards:
  // min (time, shard id, seq). No window is open, so cross-shard sends
  // need no horizon clamp.
  window_horizon_ = 0;
  merge_mailboxes();
  Shard* best = nullptr;
  for (auto& sp : shards_) {
    const Time t = sp->next_at();
    if (t == kNever) continue;
    if (best == nullptr || t < best->heap.front().at) best = sp.get();
  }
  if (best == nullptr) return false;
  Shard& s = *best;
  std::pop_heap(s.heap.begin(), s.heap.end(), later);
  const Entry ev = s.heap.back();
  s.heap.pop_back();
  std::function<void()> fn = std::move(s.slots[ev.seq - s.base]);
  s.slots[ev.seq - s.base] = nullptr;
  --s.live;
  s.now = ev.at;
  now_ = std::max(now_, ev.at);
  ++s.executed;
  const ExecContext saved = tls_exec_;
  tls_exec_ = ExecContext{this, &s};
  fn();
  tls_exec_ = saved;
  return true;
}

std::size_t Simulator::run(std::size_t limit) {
  if (shards_.size() == 1) {
    std::size_t n = 0;
    while (n < limit && step_single()) ++n;
    return n;
  }
  return run_multi(kNever, limit);
}

std::size_t Simulator::run_until(Time deadline) {
  if (shards_.size() == 1) return run_until_single(deadline);
  return run_multi(deadline, SIZE_MAX);
}

std::size_t Simulator::run_exclusive(Shard& s0, Time cap, std::size_t budget) {
  // Shard 0 runs alone while it holds the earliest event, so its events
  // may touch any shard's components. Its cross-shard posts cap the
  // batch dynamically: once it mails a delivery for time A, it may only
  // keep running events at <= A (at == A is fine — shard 0 wins the
  // equal-time tiebreak), otherwise the canonical time order between
  // shard 0 and the destination shard would invert.
  const ExecContext saved = tls_exec_;
  tls_exec_ = ExecContext{this, &s0};
  std::size_t n = 0;
  std::size_t seen_outbox = s0.outbox.size();
  while (n < budget) {
    s0.prune_dead();
    if (s0.heap.empty() || s0.heap.front().at > cap) break;
    std::pop_heap(s0.heap.begin(), s0.heap.end(), later);
    const Entry ev = s0.heap.back();
    s0.heap.pop_back();
    std::function<void()> fn = std::move(s0.slots[ev.seq - s0.base]);
    s0.slots[ev.seq - s0.base] = nullptr;
    --s0.live;
    s0.now = ev.at;
    ++s0.executed;
    fn();
    ++n;
    for (; seen_outbox < s0.outbox.size(); ++seen_outbox) {
      cap = std::min(cap, s0.outbox[seen_outbox].at);
    }
  }
  tls_exec_ = saved;
  return n;
}

std::size_t Simulator::run_shard_window(Shard& s, Time horizon) {
  const ExecContext saved = tls_exec_;
  tls_exec_ = ExecContext{this, &s};
  std::size_t n = 0;
  while (true) {
    s.prune_dead();
    if (s.heap.empty() || s.heap.front().at >= horizon) break;
    std::pop_heap(s.heap.begin(), s.heap.end(), later);
    const Entry ev = s.heap.back();
    s.heap.pop_back();
    std::function<void()> fn = std::move(s.slots[ev.seq - s.base]);
    s.slots[ev.seq - s.base] = nullptr;
    --s.live;
    s.now = ev.at;
    ++s.executed;
    fn();
    ++n;
  }
  tls_exec_ = saved;
  return n;
}

std::size_t Simulator::run_multi(Time deadline, std::size_t limit) {
  ensure_pool();
  const bool pooled = !threads_.empty();
  if (pooled) activate_pool();
  Shard& s0 = *main_shard_;
  std::size_t total = 0;
  while (total < limit) {
    merge_mailboxes();
    const Time t0 = s0.next_at();
    Time tmin_rest = kNever;
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      tmin_rest = std::min(tmin_rest, shards_[i]->next_at());
    }
    const Time tmin = std::min(t0, tmin_rest);
    if (tmin == kNever || tmin > deadline) break;
    if (t0 <= tmin_rest) {
      // Exclusive phase: shard 0 holds the earliest event (winning the
      // equal-time tiebreak), so it runs serially until the parallel
      // shards catch up in priority.
      total += run_exclusive(s0, std::min(tmin_rest, deadline), limit - total);
      ++exclusive_batches_;
      continue;
    }
    // Parallel window: every shard may run its events with timestamp
    // strictly below the horizon — no cross-shard delivery can land
    // inside it (in-flight mail was merged above; new mail from a
    // parallel shard must clear the horizon; shard 0 is not running).
    Time horizon = sat_add(tmin_rest, lookahead_);
    horizon = std::min(horizon, t0);
    if (deadline != kNever) horizon = std::min(horizon, deadline + 1);
    if (horizon == kNever) horizon = sat_add(tmin_rest, kFallbackWindow);
    window_horizon_ = horizon;
    const std::uint64_t before = events_executed();
    if (pooled) {
      pending_workers_.store(workers_ - 1, std::memory_order_relaxed);
      epoch_.fetch_add(1, std::memory_order_release);
      run_slice(0);
      unsigned spins = 0;
      while (pending_workers_.load(std::memory_order_acquire) != 0) {
        if (++spins < kSpinBudget) {
          cpu_relax();
        } else {
          std::this_thread::yield();
        }
      }
    } else {
      for (std::size_t i = 1; i < shards_.size(); ++i) {
        run_shard_window(*shards_[i], window_horizon_);
      }
    }
    ++parallel_windows_;
    total += events_executed() - before;
  }
  if (pooled) deactivate_pool();
  finish_run(deadline);
  return total;
}

void Simulator::finish_run(Time deadline) {
  Time max_now = now_;
  for (auto& sp : shards_) max_now = std::max(max_now, sp->now);
  if (deadline != kNever) {
    max_now = std::max(max_now, deadline);
    // run_until semantics: every shard's clock advances to the deadline
    // even across quiet queues.
    for (auto& sp : shards_) sp->now = std::max(sp->now, deadline);
  }
  now_ = max_now;
}

// ---- worker pool --------------------------------------------------------

void Simulator::ensure_pool() {
  if (!pool_wanted()) {
    stop_pool();
    return;
  }
  const std::size_t want = workers_ - 1;
  if (threads_.size() == want) return;
  stop_pool();
  threads_.reserve(want);
  for (std::size_t t = 0; t < want; ++t) {
    // Main thread takes slice 0; worker t takes slice t+1.
    threads_.emplace_back(
        [this, t] { worker_main(static_cast<unsigned>(t) + 1); });
  }
}

void Simulator::stop_pool() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_shutdown_ = true;
    pool_active_.store(false, std::memory_order_relaxed);
  }
  pool_cv_.notify_all();
  for (auto& th : threads_) th.join();
  threads_.clear();
  pool_shutdown_ = false;
}

void Simulator::activate_pool() {
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    pool_active_.store(true, std::memory_order_relaxed);
  }
  pool_cv_.notify_all();
}

void Simulator::deactivate_pool() {
  // Workers drain out of the spin loop and park on the condvar; the
  // last window's completion was already synchronized via
  // pending_workers_, so no worker is mid-slice here.
  pool_active_.store(false, std::memory_order_release);
}

void Simulator::run_slice(unsigned slice) {
  // Static shard->slice assignment keeps the work partition a pure
  // function of the topology.
  const Time horizon = window_horizon_;
  const unsigned stride = workers_;
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    if ((i - 1) % stride == slice) run_shard_window(*shards_[i], horizon);
  }
}

void Simulator::worker_main(unsigned slice) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(pool_mu_);
      pool_cv_.wait(lk, [this] {
        return pool_shutdown_ || pool_active_.load(std::memory_order_relaxed);
      });
      if (pool_shutdown_) return;
    }
    unsigned spins = 0;
    while (pool_active_.load(std::memory_order_acquire)) {
      const std::uint64_t e = epoch_.load(std::memory_order_acquire);
      if (e == seen_epoch) {
        if (++spins < kSpinBudget) {
          cpu_relax();
        } else {
          std::this_thread::yield();
        }
        continue;
      }
      seen_epoch = e;
      spins = 0;
      run_slice(slice);
      pending_workers_.fetch_sub(1, std::memory_order_release);
    }
  }
}

// ---- introspection ------------------------------------------------------

std::size_t Simulator::pending() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) n += sp->live + sp->outbox.size();
  return n;
}

std::uint64_t Simulator::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& sp : shards_) n += sp->executed;
  return n;
}

KernelStats Simulator::kernel_stats() const {
  KernelStats st;
  st.parallel_windows = parallel_windows_;
  st.exclusive_batches = exclusive_batches_;
  st.mails_routed = mails_routed_;
  st.events_executed = events_executed();
  for (const auto& sp : shards_) {
    st.lookahead_violations += sp->lookahead_violations;
  }
  st.shards = static_cast<std::uint32_t>(shards_.size());
  st.workers = workers_;
  st.lookahead = lookahead_;
  return st;
}

}  // namespace spire::sim
