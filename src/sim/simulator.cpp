#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace spire::sim {

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  slots_.push_back(std::move(fn));
  ++live_count_;
  heap_.push_back(Entry{at, id});
  std::push_heap(heap_.begin(), heap_.end(), later);
  maybe_trim_slots();
  return id;
}

EventId Simulator::schedule_after(Time delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (!is_live(id)) return false;  // already ran, already cancelled, unknown
  slots_[id - base_] = nullptr;
  --live_count_;
  // Lazy cancellation leaves a tombstone in the heap; rebuild once
  // tombstones dominate so cancel-heavy workloads stay bounded.
  if (heap_.size() > 64 && heap_.size() > 2 * live_count_) compact_heap();
  return true;
}

void Simulator::compact_heap() {
  std::erase_if(heap_, [this](const Entry& e) { return !is_live(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), later);
}

void Simulator::prune_dead() {
  while (!heap_.empty() && !is_live(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

void Simulator::maybe_trim_slots() {
  if (slots_.size() < next_slot_trim_) return;
  if (live_count_ == 0) {
    slots_.clear();
    base_ = next_id_;
  } else {
    // Ids below every pending event form a dead prefix; drop it. (Dead
    // holes above the first live id cannot be dropped without remapping
    // ids, so a long-lived event pins at most its own tail.)
    std::size_t first_live = 0;
    while (!slots_[first_live]) ++first_live;
    slots_.erase(slots_.begin(),
                 slots_.begin() + static_cast<std::ptrdiff_t>(first_live));
    base_ += first_live;
  }
  next_slot_trim_ = std::max<std::size_t>(1024, slots_.size() * 2);
}

bool Simulator::step() {
  prune_dead();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const Entry ev = heap_.back();
  heap_.pop_back();
  std::function<void()> fn = std::move(slots_[ev.id - base_]);
  slots_[ev.id - base_] = nullptr;
  --live_count_;
  now_ = ev.at;
  ++executed_;
  fn();
  return true;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(Time deadline) {
  std::size_t n = 0;
  while (true) {
    prune_dead();
    if (heap_.empty() || heap_.front().at > deadline) break;
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace spire::sim
