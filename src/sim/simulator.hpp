// Deterministic discrete-event simulation kernel.
//
// Every component in the reproduction — network links, Spines daemons,
// Prime replicas, PLC scan cycles, MANA windows, attack scripts — runs
// as callbacks scheduled on one Simulator. Time is simulated
// microseconds; there is no wall-clock anywhere, so a six-day plant
// soak (paper §V) executes in seconds and every run is bit-identical
// for a given seed.
//
// The kernel is a conservative-parallel scheduler (DESIGN.md §8).
// Events are partitioned into per-shard queues: shard 0 (kMainShard)
// is the serial control shard every existing workload runs on
// unchanged; register_shard() creates additional shards — one per
// host/actor — whose events may execute concurrently on a fixed pool
// of workers. Cross-shard interaction goes exclusively through
// deterministic mailboxes (send_to/post_at), and the minimum
// cross-shard link latency (note_link_latency) is the lookahead that
// bounds each synchronization window: within a window every shard may
// run all events with timestamp below the global horizon before the
// next barrier, because no in-flight cross-shard message can arrive
// earlier. Execution order is a fixed total order — (timestamp, shard,
// per-shard FIFO seq), with mailbox deliveries merged in (timestamp,
// source shard, source order) — independent of worker count and worker
// timing, so a run at --workers=8 is bit-identical to --workers=1.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace spire::sim {

/// Simulated time in microseconds since simulation start.
using Time = std::uint64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000;
constexpr Time kSecond = 1000 * kMillisecond;
constexpr Time kMinute = 60 * kSecond;
constexpr Time kHour = 60 * kMinute;
constexpr Time kDay = 24 * kHour;
/// Sentinel for "no event / unbounded".
constexpr Time kNever = ~Time{0};

/// Identifies a scheduled event so it can be cancelled. Id 0 is never
/// used. Shard 0 issues the same dense ids the pre-shard kernel did;
/// other shards' ids carry the shard in the high bits.
using EventId = std::uint64_t;

/// Identifies an event shard (one per host/actor). Shard 0 always
/// exists and is the serial control shard.
using ShardId = std::uint32_t;
constexpr ShardId kMainShard = 0;

/// Aggregated kernel counters (per-shard internally, merged on read —
/// call from driver context only, never from inside an event).
struct KernelStats {
  std::uint64_t parallel_windows = 0;   ///< barrier-bounded parallel phases
  std::uint64_t exclusive_batches = 0;  ///< shard-0 serial phases
  std::uint64_t mails_routed = 0;       ///< cross-shard deliveries merged
  std::uint64_t lookahead_violations = 0;  ///< sends clamped to the horizon
  std::uint64_t events_executed = 0;
  std::uint32_t shards = 1;
  std::uint32_t workers = 1;
  Time lookahead = kNever;
};

/// Conservative-parallel discrete-event scheduler.
///
/// Events at equal timestamps on the same shard fire in scheduling
/// order (FIFO); across shards the tiebreak is the shard id, and
/// cross-shard deliveries merge in (timestamp, source shard, source
/// order) — a total order that never depends on worker timing.
///
/// Each shard queue is an indexed binary min-heap ordered by
/// (timestamp, seq) with lazy cancellation: cancel() flips a liveness
/// flag (O(1), seqs are dense so the index is a flat array) and the
/// dead heap entry is skipped when it surfaces, or dropped wholesale
/// once tombstones outnumber live events.
///
/// Threading contract: schedule_at/schedule_after/cancel act on the
/// *current* shard — the shard of the executing event, or the ambient
/// shard (ShardScope, default shard 0) from driver code between runs.
/// A shard's state (its queue, and by convention every component
/// registered to it) must only be touched by its own events; the only
/// cross-shard edges are send_to/post_at mailbox messages, which must
/// carry at least lookahead() of delay when sent from a parallel
/// shard. register_shard/set_workers/run*/stats accessors are
/// driver-context-only.
class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time: the executing event's timestamp on this
  /// event's shard, or the global clock from driver context.
  [[nodiscard]] Time now() const {
    const ExecContext& ctx = tls_exec_;
    return ctx.sim == this ? shard_now(*ctx.shard) : now_;
  }

  /// Schedules `fn` to run at absolute simulated time `at` (clamped to
  /// `now()` if in the past) on the current shard. Returns an id
  /// usable with cancel().
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` microseconds from now on the
  /// current shard.
  EventId schedule_after(Time delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if it already ran or was
  /// previously cancelled. Only valid from the event's own shard or
  /// from driver context.
  bool cancel(EventId id);

  // ---- sharding ---------------------------------------------------------

  /// Registers a new parallel shard (driver context only, not while
  /// running). Assign one per host/actor at registration time so the
  /// shard layout — and therefore the execution order — is a fixed
  /// function of the topology, not of runtime behaviour.
  ShardId register_shard(std::string name);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const std::string& shard_name(ShardId shard) const;

  /// Shard of the executing event, or the ambient shard from driver
  /// context (kMainShard unless a ShardScope is active).
  [[nodiscard]] ShardId current_shard() const;

  /// Cross-shard send: runs `fn` on `dst` after `delay`. From a
  /// parallel shard the delivery must clear the current window horizon
  /// (delay >= lookahead()); violating sends are clamped to the
  /// horizon — deterministically — and counted in
  /// KernelStats::lookahead_violations. Not cancellable (returns no
  /// id); same-shard sends degrade to schedule_after exactly.
  void send_to(ShardId dst, Time delay, std::function<void()> fn);

  /// Absolute-time variant of send_to.
  void post_at(ShardId dst, Time at, std::function<void()> fn);

  /// Declares a cross-shard link latency; the minimum over all calls
  /// becomes the lookahead that sizes parallel windows. Call once per
  /// cross-shard link at wiring time, before the first run.
  void note_link_latency(Time latency);
  [[nodiscard]] Time lookahead() const { return lookahead_; }

  /// Fixed worker-pool size (driver context only). 1 = serial; the
  /// execution order and results are identical at every setting.
  void set_workers(unsigned workers);
  [[nodiscard]] unsigned workers() const { return workers_; }

  // ---- execution --------------------------------------------------------

  /// Runs a single event — the canonically next one across all shards.
  /// Returns false if every queue is empty.
  bool step();

  /// Runs events until the queues are empty or `limit` events have
  /// run; returns the number executed. With parallel shards the limit
  /// is enforced at window boundaries, so slightly more than `limit`
  /// events may run; single-shard programs get the exact pre-shard
  /// behaviour.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= deadline (including events that are
  /// scheduled at exactly `deadline` by events executing within the
  /// call), then advances now() to deadline even if the queues still
  /// hold later events.
  std::size_t run_until(Time deadline);

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] KernelStats kernel_stats() const;

 private:
  friend class ShardScope;

  /// Heap entries are 16-byte PODs so sift operations stay cheap; the
  /// callback lives in slots_, found by per-shard seq.
  struct Entry {
    Time at;
    EventId seq;
  };

  /// Min-heap order: earliest (at, seq) surfaces first. The seq is the
  /// schedule-order tiebreaker that preserves equal-timestamp FIFO.
  static bool later(const Entry& a, const Entry& b) {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }

  /// A cross-shard delivery staged in the sender's outbox until the
  /// next barrier. Merge order is (at, source shard, source order):
  /// outboxes are drained in shard-id order and kept stable, so the
  /// Mail itself only carries (dst, at).
  struct Mail {
    ShardId dst;
    Time at;
    std::function<void()> fn;
  };

  /// One event shard: a complete queue (the pre-shard kernel's guts)
  /// plus the outbox for cross-shard sends. Cache-line aligned so
  /// concurrently executing shards never false-share.
  struct alignas(64) Shard {
    ShardId id = 0;
    Time now = 0;
    std::uint64_t executed = 0;
    std::uint64_t lookahead_violations = 0;
    EventId next_seq = 1;
    EventId base = 1;  ///< seq of slots[0]
    std::vector<std::function<void()>> slots;
    std::size_t live = 0;
    std::vector<Entry> heap;
    std::size_t next_trim = 1024;
    std::vector<Mail> outbox;
    std::string name;

    EventId schedule_local(Time at, std::function<void()> fn);
    bool cancel_local(EventId seq);
    /// An empty slot is the tombstone: cancel() nulls the callback,
    /// which also releases anything it captured immediately.
    [[nodiscard]] bool is_live(EventId seq) const {
      return seq >= base && seq < next_seq &&
             static_cast<bool>(slots[seq - base]);
    }
    void prune_dead();        ///< pops cancelled entries off the heap top
    void compact_heap();      ///< drops tombstones when they dominate
    void maybe_trim_slots();  ///< amortized trim of the dead slot prefix
    /// Earliest live event time, or kNever.
    [[nodiscard]] Time next_at() {
      prune_dead();
      return heap.empty() ? kNever : heap.front().at;
    }
  };

  struct ExecContext {
    const Simulator* sim = nullptr;
    Shard* shard = nullptr;
  };
  static thread_local ExecContext tls_exec_;

  static Time shard_now(const Shard& s) { return s.now; }

  // EventId = (shard << kSeqBits) | per-shard seq. Shard 0 keeps the
  // dense ids the pre-shard kernel issued.
  static constexpr unsigned kSeqBits = 40;
  static constexpr EventId kSeqMask = (EventId{1} << kSeqBits) - 1;
  static EventId encode_id(ShardId shard, EventId seq) {
    return (static_cast<EventId>(shard) << kSeqBits) | seq;
  }

  [[nodiscard]] Shard& scheduling_shard() const;

  // Single-shard exact legacy paths.
  bool step_single();
  std::size_t run_single(std::size_t limit);
  std::size_t run_until_single(Time deadline);

  // Multi-shard windowed execution.
  std::size_t run_multi(Time deadline, std::size_t limit);
  std::size_t run_exclusive(Shard& s0, Time cap, std::size_t budget);
  std::size_t run_shard_window(Shard& shard, Time horizon);
  void merge_mailboxes();
  void finish_run(Time deadline);

  // Worker pool (spawned lazily; windows are dispatched through an
  // epoch counter the workers spin on, so a window barrier costs a few
  // atomic operations, not a futex round-trip).
  void ensure_pool();
  void stop_pool();
  void activate_pool();
  void deactivate_pool();
  void worker_main(unsigned slice);
  void run_slice(unsigned slice);
  [[nodiscard]] bool pool_wanted() const {
    return workers_ > 1 && shards_.size() > 1;
  }

  Time now_ = 0;
  Time lookahead_ = kNever;  ///< min cross-shard link latency
  unsigned workers_ = 1;
  ShardId ambient_shard_ = kMainShard;
  std::vector<std::unique_ptr<Shard>> shards_;
  Shard* main_shard_ = nullptr;  ///< shards_[0], cached for the hot path

  // Kernel counters (driver-written only).
  std::uint64_t parallel_windows_ = 0;
  std::uint64_t exclusive_batches_ = 0;
  std::uint64_t mails_routed_ = 0;
  std::vector<Mail> scratch_mail_;

  // Window state published to workers: horizon_ is written by the
  // driver before the epoch bump (release) and read by workers after
  // observing the new epoch (acquire).
  Time window_horizon_ = 0;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> pending_workers_{0};
  std::atomic<bool> pool_active_{false};
  bool pool_shutdown_ = false;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::vector<std::thread> threads_;
};

/// RAII ambient-shard binding for driver code: component construction
/// and driver-side scheduling inside the scope land on `shard`, so a
/// host/actor built under its ShardScope has every timer and callback
/// confined to its shard from the first event on.
class ShardScope {
 public:
  ShardScope(Simulator& sim, ShardId shard)
      : sim_(sim), previous_(sim.ambient_shard_) {
    sim_.ambient_shard_ = shard;
  }
  ~ShardScope() { sim_.ambient_shard_ = previous_; }
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  Simulator& sim_;
  ShardId previous_;
};

/// RAII helper: installs the simulator's clock as the logger time
/// source for the lifetime of the simulation.
class LogClockScope {
 public:
  explicit LogClockScope(const Simulator& sim) {
    util::LogConfig::instance().time_source = [&sim] { return sim.now(); };
  }
  ~LogClockScope() { util::LogConfig::instance().time_source = nullptr; }
  LogClockScope(const LogClockScope&) = delete;
  LogClockScope& operator=(const LogClockScope&) = delete;
};

}  // namespace spire::sim
