// Deterministic discrete-event simulation kernel.
//
// Every component in the reproduction — network links, Spines daemons,
// Prime replicas, PLC scan cycles, MANA windows, attack scripts — runs
// as callbacks scheduled on one Simulator. Time is simulated
// microseconds; there is no wall-clock anywhere, so a six-day plant
// soak (paper §V) executes in seconds and every run is bit-identical
// for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/log.hpp"

namespace spire::sim {

/// Simulated time in microseconds since simulation start.
using Time = std::uint64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000;
constexpr Time kSecond = 1000 * kMillisecond;
constexpr Time kMinute = 60 * kSecond;
constexpr Time kHour = 60 * kMinute;
constexpr Time kDay = 24 * kHour;

/// Identifies a scheduled event so it can be cancelled. Id 0 is never used.
using EventId = std::uint64_t;

/// Single-threaded discrete-event scheduler.
///
/// Events at equal timestamps fire in scheduling order (FIFO), which
/// keeps message interleavings deterministic.
///
/// Internally an indexed binary min-heap ordered by (timestamp, id)
/// with lazy cancellation: cancel() flips a liveness flag (O(1), ids
/// are dense so the index is a flat array) and the dead heap entry is
/// skipped when it surfaces, or dropped wholesale once tombstones
/// outnumber live events. The id doubles as the FIFO tiebreaker, so
/// the execution order is the exact total order the previous
/// red-black-tree implementation produced.
class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` to run at absolute simulated time `at` (clamped to
  /// `now()` if in the past). Returns an id usable with cancel().
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` microseconds from now.
  EventId schedule_after(Time delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if it already ran or was
  /// previously cancelled.
  bool cancel(EventId id);

  /// Runs a single event. Returns false if the queue is empty.
  bool step();

  /// Runs events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= deadline, then advances now() to
  /// deadline even if the queue still has later events.
  std::size_t run_until(Time deadline);

  [[nodiscard]] std::size_t pending() const { return live_count_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  /// Heap entries are 16-byte PODs so sift operations stay cheap; the
  /// callback lives in slots_, found by id.
  struct Entry {
    Time at;
    EventId id;
  };

  /// Min-heap order: earliest (at, id) surfaces first. The id is the
  /// schedule-order tiebreaker that preserves equal-timestamp FIFO.
  static bool later(const Entry& a, const Entry& b) {
    return a.at != b.at ? a.at > b.at : a.id > b.id;
  }

  /// An empty slot is the tombstone: cancel() nulls the callback, which
  /// also releases anything it captured immediately.
  [[nodiscard]] bool is_live(EventId id) const {
    return id >= base_ && id < next_id_ &&
           static_cast<bool>(slots_[id - base_]);
  }

  void prune_dead();       ///< pops cancelled entries off the heap top
  void compact_heap();     ///< drops tombstones when they dominate
  void maybe_trim_slots(); ///< amortized trim of the dead slot prefix

  Time now_ = 0;
  std::uint64_t executed_ = 0;
  EventId next_id_ = 1;
  EventId base_ = 1;  ///< id of slots_[0]
  std::vector<std::function<void()>> slots_;
  std::size_t live_count_ = 0;
  std::vector<Entry> heap_;
  std::size_t next_slot_trim_ = 1024;
};

/// RAII helper: installs the simulator's clock as the logger time
/// source for the lifetime of the simulation.
class LogClockScope {
 public:
  explicit LogClockScope(const Simulator& sim) {
    util::LogConfig::instance().time_source = [&sim] { return sim.now(); };
  }
  ~LogClockScope() { util::LogConfig::instance().time_source = nullptr; }
  LogClockScope(const LogClockScope&) = delete;
  LogClockScope& operator=(const LogClockScope&) = delete;
};

}  // namespace spire::sim
