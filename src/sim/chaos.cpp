#include "sim/chaos.hpp"

#include <algorithm>

namespace spire::sim {

ChaosInjector::ChaosInjector(Simulator& sim, ChaosHooks hooks)
    : sim_(sim), hooks_(std::move(hooks)) {}

void ChaosInjector::add(const ChaosEvent& event) { events_.push_back(event); }

void ChaosInjector::add_random_schedule(Rng rng, Time start, Time end,
                                        Time mean_gap, Time min_duration,
                                        Time max_duration,
                                        std::uint32_t node_count,
                                        bool include_crashes) {
  Time cursor = start;
  while (true) {
    cursor += static_cast<Time>(rng.exponential(static_cast<double>(mean_gap)));
    if (cursor >= end) break;
    ChaosEvent event;
    event.at = cursor;
    event.duration = rng.uniform(min_duration, max_duration);
    // An episode that would outlive the schedule is clipped so the
    // system is guaranteed fault-free after `end`.
    event.duration = std::min(event.duration, end - cursor);
    const std::uint64_t kinds = include_crashes ? 3 : 2;
    switch (rng.uniform(0, kinds - 1)) {
      case 0:
        event.kind = ChaosEvent::Kind::kLinkDegrade;
        event.loss = 0.01 + 0.04 * rng.uniform01();  // 1-5% drop
        event.jitter = 1 * kMillisecond +
                       static_cast<Time>(rng.uniform(0, 2)) * kMillisecond;
        break;
      case 1:
        event.kind = ChaosEvent::Kind::kPartition;
        event.node = static_cast<std::uint32_t>(
            rng.uniform(0, node_count > 0 ? node_count - 1 : 0));
        break;
      default:
        event.kind = ChaosEvent::Kind::kCrashRestart;
        event.node = static_cast<std::uint32_t>(
            rng.uniform(0, node_count > 0 ? node_count - 1 : 0));
        break;
    }
    events_.push_back(event);
    // Sequential episodes only: the next fault starts after this one
    // heals, so chaos by itself disturbs at most one node at a time.
    cursor += event.duration;
  }
}

void ChaosInjector::arm() {
  armed_ = true;
  const std::uint64_t gen = gen_;
  for (const ChaosEvent& event : events_) {
    sim_.schedule_at(event.at, [this, gen, event] {
      if (gen != gen_) return;
      begin(event);
    });
    sim_.schedule_at(event.at + event.duration, [this, gen, event] {
      if (gen != gen_) return;
      end(event);
    });
  }
}

void ChaosInjector::stop() {
  ++gen_;
  if (!armed_) return;
  // Heal exactly the in-flight episodes so a stop() mid-fault leaves
  // the system clean (mirrors the recovery scheduler's no-orphans
  // contract) without touching nodes whose episodes never began.
  const std::vector<ChaosEvent> active = std::move(active_events_);
  active_events_.clear();
  for (const ChaosEvent& event : active) end(event);
}

void ChaosInjector::begin(const ChaosEvent& event) {
  active_events_.push_back(event);
  ++stats_.injected;
  stats_.total_fault_time += event.duration;
  switch (event.kind) {
    case ChaosEvent::Kind::kLinkDegrade:
      ++stats_.link_degrades;
      if (hooks_.set_link_quality) {
        hooks_.set_link_quality(event.loss, event.jitter);
      }
      break;
    case ChaosEvent::Kind::kPartition:
      ++stats_.partitions;
      if (hooks_.set_partitioned) hooks_.set_partitioned(event.node, true);
      break;
    case ChaosEvent::Kind::kCrashRestart:
      ++stats_.crash_restarts;
      if (hooks_.crash) hooks_.crash(event.node);
      break;
  }
}

void ChaosInjector::end(const ChaosEvent& event) {
  std::erase_if(active_events_, [&](const ChaosEvent& e) {
    return e.at == event.at && e.kind == event.kind && e.node == event.node;
  });
  ++stats_.healed;
  switch (event.kind) {
    case ChaosEvent::Kind::kLinkDegrade:
      if (hooks_.set_link_quality) hooks_.set_link_quality(0, 0);
      break;
    case ChaosEvent::Kind::kPartition:
      if (hooks_.set_partitioned) hooks_.set_partitioned(event.node, false);
      break;
    case ChaosEvent::Kind::kCrashRestart:
      if (hooks_.restart) hooks_.restart(event.node);
      break;
  }
}

}  // namespace spire::sim
