#include "sim/rng.hpp"

#include <cmath>
#include <numbers>

namespace spire::sim {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + v % span;
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

double Rng::exponential(double mean) {
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

Rng Rng::fork() { return Rng(next() ^ 0xA5A5'5A5A'DEAD'BEEFULL); }

}  // namespace spire::sim
