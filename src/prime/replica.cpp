#include "prime/replica.hpp"

#include <algorithm>

#include "crypto/merkle.hpp"
#include "obs/trace.hpp"

namespace spire::prime {

namespace {
constexpr int kStateTransferFallbackAttempts = 100;  // ~5 s of retries
constexpr std::uint64_t kSlotRetention = 1024;
}  // namespace

Replica::Replica(sim::Simulator& sim, ReplicaId id, PrimeConfig config,
                 const crypto::Keyring& keyring, Application& app,
                 std::unique_ptr<ReplicaTransport> transport, sim::Rng rng)
    : sim_(sim),
      id_(id),
      config_(std::move(config)),
      keyring_(keyring),
      signer_(replica_identity(id), keyring.identity_key(replica_identity(id))),
      app_(app),
      transport_(std::move(transport)),
      rng_(rng),
      log_("prime." + std::to_string(id)),
      metrics_("prime.replica" + std::to_string(id)) {
  metrics_.counter("updates_executed", &stats_.updates_executed);
  metrics_.counter("po_requests_sent", &stats_.po_requests_sent);
  metrics_.counter("preprepares_sent", &stats_.preprepares_sent);
  metrics_.counter("matrices_applied", &stats_.matrices_applied);
  metrics_.counter("view_changes", &stats_.view_changes);
  metrics_.counter("state_transfers", &stats_.state_transfers);
  metrics_.counter("fetches_sent", &stats_.fetches_sent);
  metrics_.counter("dropped_bad_signature", &stats_.dropped_bad_signature);
  metrics_.counter("dropped_unknown_client", &stats_.dropped_unknown_client);
  metrics_.counter("checkpoints_stable", &stats_.checkpoints_stable);
  metrics_.counter("verify_cache_hits", &stats_.verify_cache_hits);
  metrics_.counter("stale_po_arus_dropped", &stats_.stale_po_arus_dropped);
  metrics_.counter("recon_fetches_queued", &stats_.recon_fetches_queued);
  metrics_.counter("recon_fetches_satisfied",
                   &stats_.recon_fetches_satisfied);
  metrics_.counter("row_verify_short_circuits",
                   &stats_.row_verify_short_circuits);
  metrics_.counter("matrix_fetches_sent", &stats_.matrix_fetches_sent);
  metrics_.counter("batches_sealed", &stats_.batches_sealed);
  metrics_.counter("state_transfer_bytes", &stats_.state_transfer_bytes);
  metrics_.counter("state_reqs_sent", &stats_.state_reqs_sent);
  metrics_.counter("suspect_ticks", &stats_.suspect_ticks);
  metrics_.counter("turnaround_suspects", &stats_.turnaround_suspects);
  metrics_.counter("equivocation_suspects", &stats_.equivocation_suspects);
  metrics_.counter("withheld_aru_suspects", &stats_.withheld_aru_suspects);
  metrics_.counter("byz_preprepares_delayed", &stats_.byz_preprepares_delayed);
  metrics_.counter("byz_equivocations_sent", &stats_.byz_equivocations_sent);
  metrics_.counter("byz_rows_withheld", &stats_.byz_rows_withheld);
  metrics_.counter("byz_merkle_paths_forged", &stats_.byz_merkle_paths_forged);
  identities_.reserve(config_.n());
  for (ReplicaId r = 0; r < config_.n(); ++r) {
    identities_.push_back(replica_identity(r));
    verifier_.add_identity(identities_.back(),
                           keyring.identity_key(identities_.back()));
  }
  for (const auto& client : config_.client_identities) {
    verifier_.add_identity(client, keyring.identity_key(client));
  }
  recv_aru_.assign(config_.n(), 0);
  exec_aru_.assign(config_.n(), 0);
  latest_aru_.assign(config_.n(), nullptr);
  latest_aru_view_.assign(config_.n(), 0);
  peer_turnaround_.resize(config_.n());
  po_log_ = std::vector<PoLog>(config_.n());
}

void Replica::start() {
  // A start() while timers are already chained (double start, or start
  // after a recover() whose state transfer re-armed them) must orphan
  // the old chain, or every periodic tick runs twice — which halves the
  // effective suspicion threshold (PR 9 bugfix).
  ++epoch_;
  running_ = true;
  recovering_ = false;
  variant_ = rng_.next();
  verify_cache_.clear();
  // start() is a *fresh-world* boot: every replica begins it together
  // (initial deployment, or the full-system restart of a ground-truth
  // rebuild), so the monotonic counters reset consistently with the
  // peers' wiped PO stores. recover() — a single replica rejoining a
  // live system — deliberately preserves them instead.
  next_po_seq_ = 1;
  my_aru_seq_ = 0;
  if (!started_once_) {
    started_once_ = true;
    initial_app_snapshot_ = app_.snapshot();
  } else {
    // Restart from a clean image: the application state is wiped too
    // (a SCADA master rebuilds it from field-device reports, §III-A).
    app_.restore(initial_app_snapshot_);
  }
  // Checkpoint 0 = the deterministic initial state; it anchors recovery
  // for replicas that rejoin before the first periodic checkpoint.
  checkpoint_blobs_[0] = snapshot_bundle();
  arm_timers();
}

void Replica::shutdown() {
  running_ = false;
  recovering_ = false;
  ++epoch_;  // orphan all scheduled timers

  // Volatile state is lost on takedown, as with a real proactive
  // recovery that wipes the machine.
  pending_batch_.clear();
  last_batched_.clear();
  preorder_buffer_.clear();
  preorder_stall_.clear();
  po_log_ = std::vector<PoLog>(config_.n());
  recv_aru_.assign(config_.n(), 0);
  latest_aru_.assign(config_.n(), nullptr);
  latest_aru_view_.assign(config_.n(), 0);
  turnaround_.clear();
  for (auto& pending : peer_turnaround_) pending.clear();
  turnaround_baseline_ = 0;
  byz_holdback_.clear();
  send_queue_.clear();
  flush_scheduled_ = false;
  // next_po_seq_ and my_aru_seq_ deliberately survive the wipe: they
  // model secure-hardware-backed monotonic counters (as proactive
  // recovery systems keep for exactly this reason). Reusing PO sequence
  // numbers after rejuvenation would collide with the old requests
  // still stored at peers, silently losing the new ones.
  view_ = 0;
  next_order_seq_ = 1;
  view_start_.clear();
  slots_.clear();
  applied_seq_ = 0;
  highest_committed_ = 0;
  cert_attempts_.clear();
  exec_aru_.assign(config_.n(), 0);
  executed_clients_.clear();
  new_leader_votes_.clear();
  collected_view_states_.clear();
  new_view_sent_ = false;
  expected_rows_.clear();
  reproposal_top_ = 0;
  reproposal_view_ = 0;
  checkpoint_blobs_.clear();
  checkpoint_votes_.clear();
  stable_checkpoint_.reset();
  state_resps_.clear();
  chosen_state_.reset();
  outstanding_cert_fetches_.clear();
  outstanding_matrix_fetches_.clear();
  last_prop_valid_ = false;
  last_prop_rows_.clear();
  last_accepted_view_ = 0;
  last_accepted_seq_ = 0;
  last_accepted_rows_.clear();
  last_suspected_view_ = 0;
  // Rejuvenation semantics: acceptances recorded before the takedown
  // are not trustworthy afterwards (see verify_cache.hpp).
  verify_cache_.clear();
}

void Replica::recover() {
  shutdown();
  ++epoch_;
  running_ = true;
  recovering_ = true;
  variant_ = rng_.next();  // fresh diversity variant (MultiCompiler stand-in)
  state_nonce_ = rng_.next();
  behavior_ = ReplicaBehavior::kCorrect;  // clean code image
  byz_ = ByzantineConfig{};               // scripted compromise wiped too
  log_.info("recovering with new variant ", variant_);
  const std::uint64_t epoch = epoch_;
  sim_.schedule_after(1, [this, epoch] { recovery_tick(epoch); });
}

bool Replica::acting_crashed() const {
  return behavior_ == ReplicaBehavior::kCrashed;
}

void Replica::arm_timers() {
  const std::uint64_t epoch = epoch_;
  last_leader_activity_ = sim_.now();
  sim_.schedule_after(config_.po_request_interval,
                      [this, epoch] { po_flush_tick(epoch); });
  sim_.schedule_after(config_.po_aru_interval,
                      [this, epoch] { po_aru_tick(epoch); });
  sim_.schedule_after(config_.preprepare_interval,
                      [this, epoch] { preprepare_tick(epoch); });
  sim_.schedule_after(config_.suspect_timeout / 4,
                      [this, epoch] { suspect_tick(epoch); });
  sim_.schedule_after(config_.recon_interval,
                      [this, epoch] { recon_tick(epoch); });
}

const std::string& Replica::identity_of(ReplicaId r) const {
  static const std::string kUnknown;
  return r < identities_.size() ? identities_[r] : kUnknown;
}

bool Replica::sender_is(const Envelope& env, ReplicaId r) const {
  return r < identities_.size() && env.sender == identities_[r];
}

std::optional<ReplicaId> Replica::sender_id(const Envelope& env) const {
  for (ReplicaId r = 0; r < identities_.size(); ++r) {
    if (env.sender == identities_[r]) return r;
  }
  return std::nullopt;
}

bool Replica::verify_unit(const std::string& identity,
                          std::span<const std::uint8_t> unit_bytes,
                          const crypto::Signature& sig, bool cacheable) {
  if (cacheable) {
    const crypto::Digest d = crypto::sha256(unit_bytes);
    if (verify_cache_.contains(identity, d)) {
      ++stats_.verify_cache_hits;
      return true;
    }
    // The wire form is signed-prefix || MAC, so the signed portion is
    // the unit minus its trailing MAC — verified without re-serializing.
    const auto prefix = unit_bytes.first(unit_bytes.size() - sizeof(sig.mac));
    if (!verifier_.verify(identity, prefix, sig)) return false;
    verify_cache_.insert(identity, d);
    return true;
  }
  const auto prefix = unit_bytes.first(unit_bytes.size() - sizeof(sig.mac));
  return verifier_.verify(identity, prefix, sig);
}

bool Replica::verify_envelope(const Envelope& env,
                              std::span<const std::uint8_t> raw_bytes,
                              bool cacheable) {
  if (!env.batch) {
    return verify_unit(env.sender, raw_bytes, env.signature, cacheable);
  }
  // Batch-signed: the signature covers the Merkle root of the whole
  // send batch. Hash this unit's signed prefix into its leaf, fold the
  // inclusion path, and memoize the verified root — every other unit
  // of the batch then verifies with hashes alone. The root digest is a
  // sound cache key: it binds the full leaf preimage (sender included)
  // through SHA-256.
  const std::size_t suffix = 4 + 1 + 32 * env.batch->path.size() +
                             sizeof(env.signature.mac);
  if (raw_bytes.size() < suffix) return false;  // unreachable post-decode
  const crypto::Digest leaf =
      crypto::merkle_leaf(raw_bytes.first(raw_bytes.size() - suffix));
  const crypto::Digest root =
      crypto::MerkleTree::fold(leaf, env.batch->index, env.batch->path);
  if (verify_cache_.contains(env.sender, root)) {
    ++stats_.verify_cache_hits;
    return true;
  }
  if (!verifier_.verify(env.sender, crypto::merkle_root_message(root),
                        env.signature)) {
    return false;
  }
  verify_cache_.insert(env.sender, root);
  return true;
}

bool Replica::verify_row(const PoAru& row, ReplicaId r) {
  // Encode-once fast path: a row whose raw bytes equal the PO-ARU we
  // already accepted into latest_aru_ needs no crypto at all. Equality
  // of the FULL standalone encoding (signature included) is required —
  // (replica, aru_seq) alone would be unsound, since a Byzantine
  // replica can sign two different PO-ARUs with the same aru_seq. The
  // acceptance view must match too: a replayed stale row in a later
  // view goes through full (memoized) verification again.
  if (r < latest_aru_.size() && latest_aru_[r] && !row.raw.empty() &&
      latest_aru_view_[r] == view_ && latest_aru_[r]->raw == row.raw) {
    ++stats_.row_verify_short_circuits;
    return true;
  }
  if (!row.raw.empty()) return verify_unit(identity_of(r), row.raw, row.sig);
  return verify_unit(identity_of(r), row.encode_standalone(), row.sig);
}

bool Replica::verify_client_update(const ClientUpdate& update) {
  // Digest over signed_bytes || MAC: the same shape verify_unit caches,
  // computed incrementally to avoid concatenating a scratch buffer.
  const util::Bytes signed_bytes = update.signed_bytes();
  crypto::Sha256 h;
  h.update(signed_bytes);
  h.update(std::span<const std::uint8_t>(update.client_sig.mac.data(),
                                         update.client_sig.mac.size()));
  const crypto::Digest d = h.finish();
  if (verify_cache_.contains(update.client, d)) {
    ++stats_.verify_cache_hits;
    return true;
  }
  if (!verifier_.verify(update.client, signed_bytes, update.client_sig)) {
    return false;
  }
  verify_cache_.insert(update.client, d);
  return true;
}

void Replica::send_envelope(MsgType type, util::Bytes body,
                            std::optional<ReplicaId> to) {
  if (!running_ || acting_crashed()) return;
  if (to && *to == id_) {
    // Directed-to-self never touches the wire; seal and loop back now.
    const util::Bytes bytes = Envelope::seal(type, signer_, body);
    process_message(bytes, /*pre_verified=*/true);
    return;
  }
  // Merkle-batched signing: queue the unit and drain the queue at the
  // end of the current simulator step. Everything a timer tick emits is
  // then sealed under ONE root signature instead of one HMAC each.
  send_queue_.push_back(PendingSend{type, std::move(body), to});
  if (!flushing_ && !flush_scheduled_) {
    flush_scheduled_ = true;
    const std::uint64_t epoch = epoch_;
    sim_.schedule_after(0, [this, epoch] {
      flush_scheduled_ = false;
      if (epoch != epoch_ || !running_) return;
      flush_sends();
    });
  }
}

void Replica::flush_sends() {
  flushing_ = true;
  const std::uint64_t epoch = epoch_;
  while (!send_queue_.empty() && running_ && !acting_crashed() &&
         epoch == epoch_) {
    std::vector<PendingSend> batch;
    batch.swap(send_queue_);
    std::vector<util::Bytes> wires;
    if (batch.size() == 1) {
      // A lone unit keeps the classic unbatched wire form — identical
      // bytes to the pre-batching protocol, no proof overhead.
      wires.push_back(Envelope::seal(batch[0].type, signer_, batch[0].body));
    } else {
      std::vector<Envelope::BatchItem> items;
      items.reserve(batch.size());
      for (const auto& p : batch) {
        items.push_back(Envelope::BatchItem{p.type, p.body});
      }
      wires = Envelope::seal_batch(signer_, items);
      ++stats_.batches_sealed;
    }
    // Self-deliver broadcasts first: locally produced protocol state
    // (e.g. our own Pre-Prepare) must land before peer replies to it
    // can arrive, mirroring the old synchronous self-delivery. The
    // bytes were signed by this replica just above, so verification is
    // skipped, not cached.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch[i].to) process_message(wires[i], /*pre_verified=*/true);
      if (epoch != epoch_ || !running_) { flushing_ = false; return; }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      // Byzantine forger (adversary v2): corrupt the Merkle inclusion
      // proof of a fraction of outgoing batch-signed wires. The proof
      // region sits between the signed body and the trailing 32-byte
      // MAC; flipping a bit there breaks root folding at every
      // receiver, which must drop the wire without suspecting anyone
      // (an unauthenticated byte is indistinguishable from line noise).
      if (byz_.forge_merkle_rate > 0.0 && batch.size() > 1 &&
          wires[i].size() > 40 && rng_.chance(byz_.forge_merkle_rate)) {
        wires[i][wires[i].size() - 40] ^= 0x01;
        ++stats_.byz_merkle_paths_forged;
      }
      if (batch[i].to) {
        transport_->send(*batch[i].to, std::move(wires[i]));
      } else {
        transport_->broadcast(std::move(wires[i]));
      }
    }
  }
  flushing_ = false;
  // Self-delivery above may have enqueued follow-up sends after an
  // epoch bump cut the loop short; make sure they still drain.
  if (!send_queue_.empty() && !flush_scheduled_ && running_) {
    flush_scheduled_ = true;
    const std::uint64_t now_epoch = epoch_;
    sim_.schedule_after(0, [this, now_epoch] {
      flush_scheduled_ = false;
      if (now_epoch != epoch_ || !running_) return;
      flush_sends();
    });
  }
}

void Replica::on_message(const util::Bytes& envelope_bytes) {
  process_message(envelope_bytes, /*pre_verified=*/false);
}

void Replica::process_message(const util::Bytes& envelope_bytes,
                              bool pre_verified) {
  if (!running_ || acting_crashed()) return;
  const auto env = Envelope::decode(envelope_bytes);
  if (!env) return;
  // Self-authenticating payloads skip the envelope HMAC: a ClientUpdate
  // carries the client's own signature over the same content and a
  // PO-ARU is a standalone signed unit, so the transport envelope's
  // second MAC proves nothing extra. The handlers verify the embedded
  // signature (and still bind the sender claim to it), so rewrapping a
  // genuine payload in a fresh envelope grants nothing beyond the
  // replay the network could always perform — which stale/dedup checks
  // absorb. Prepare and Commit keep the envelope check but skip the
  // verified-digest memo: each is consumed exactly once on the hot
  // path, so caching it costs a SHA-256 per message for hits that only
  // view-change proof re-verification could ever see.
  const bool self_authenticating = env->type == MsgType::kClientUpdate ||
                                   env->type == MsgType::kPoAru;
  if (!pre_verified && !self_authenticating) {
    const bool cacheable =
        env->type != MsgType::kPrepare && env->type != MsgType::kCommit;
    if (!verify_envelope(*env, envelope_bytes, cacheable)) {
      ++stats_.dropped_bad_signature;
      return;
    }
  }

  if (recovering_) {
    // A recovering replica has no state to contribute; it only listens
    // for the state-transfer replies it solicited.
    switch (env->type) {
      case MsgType::kStateResp: handle_state_resp(*env); return;
      case MsgType::kSnapshotResp: handle_snapshot_resp(*env); return;
      default: return;
    }
  }

  switch (env->type) {
    case MsgType::kClientUpdate: handle_client_update(*env); break;
    case MsgType::kPoRequest: handle_po_request(*env, envelope_bytes); break;
    case MsgType::kPoAru: handle_po_aru(*env); break;
    case MsgType::kPrePrepare: handle_preprepare(*env, envelope_bytes); break;
    case MsgType::kPrepare:
      handle_prepare_or_commit(*env, envelope_bytes, false);
      break;
    case MsgType::kCommit:
      handle_prepare_or_commit(*env, envelope_bytes, true);
      break;
    case MsgType::kNewLeader: handle_new_leader(*env); break;
    case MsgType::kViewState: handle_view_state(*env); break;
    case MsgType::kNewView: handle_new_view(*env); break;
    case MsgType::kPoReqFetch: handle_po_fetch(*env); break;
    case MsgType::kPoReqResp: handle_po_resp(*env); break;
    case MsgType::kStateReq: handle_state_req(*env); break;
    case MsgType::kStateResp: break;   // not recovering: ignore
    case MsgType::kSnapshotReq: handle_snapshot_req(*env); break;
    case MsgType::kSnapshotResp: break;
    case MsgType::kCommitCertReq: handle_cert_req(*env); break;
    case MsgType::kCommitCertResp: handle_cert_resp(*env); break;
    case MsgType::kCheckpoint: handle_checkpoint(*env, envelope_bytes); break;
    case MsgType::kMatrixFetch: handle_matrix_fetch(*env); break;
    case MsgType::kMatrixResp: handle_matrix_resp(*env); break;
  }
}

// ---- preordering ------------------------------------------------------------

void Replica::handle_client_update(const Envelope& env) {
  util::ByteReader r(env.body);
  ClientUpdate update;
  try {
    update = ClientUpdate::decode(r);
    r.expect_done();
  } catch (const util::SerializationError&) {
    return;
  }
  if (update.client != env.sender) return;
  if (!verifier_.knows(update.client)) {
    ++stats_.dropped_unknown_client;
    return;
  }
  // The client's embedded signature is the unit of trust here (the
  // envelope MAC was skipped as redundant). Verify it before the
  // responsibility check: every replica re-verifies this update when it
  // arrives inside a PO-Request anyway, and the memo in
  // verify_client_update makes that later check a hash lookup — so
  // verifying at receipt moves a cost, it does not add one.
  if (!verify_client_update(update)) {
    ++stats_.dropped_bad_signature;
    return;
  }

  // Responsible-set preordering: clients broadcast to all replicas, but
  // only the f+k+1 replicas deterministically assigned to this client
  // preorder its updates — enough that at least one is correct and live
  // even with f intrusions and k concurrent recoveries, without n-fold
  // duplication. Execution-level dedup makes any overlap harmless.
  const ReplicaId primary = client_primary(update.client);
  const std::uint32_t offset = (config_.n() + id_ - primary) % config_.n();
  if (offset > config_.f + config_.k) return;

  if (auto* tracer = obs::Tracer::current()) {
    tracer->replica_recv(update.client, update.client_seq);
  }
  enqueue_for_preorder(std::move(update));
}

ReplicaId Replica::client_primary(const std::string& client) {
  // Responsibility is a pure function of the client identity; memoize
  // the sha256 so steady-state deliveries cost one map lookup. Only
  // reached for identities the verifier knows, so the memo is bounded
  // by the configured client set.
  const auto it = client_primary_.find(client);
  if (it != client_primary_.end()) return it->second;
  const std::uint64_t h = crypto::digest_prefix64(crypto::sha256(client));
  const auto primary = static_cast<ReplicaId>(h % config_.n());
  client_primary_.emplace(client, primary);
  return primary;
}

void Replica::enqueue_for_preorder(ClientUpdate update) {
  // Each origin must emit a client's updates with contiguous, increasing
  // client_seq (the execution layer's in-order dedup depends on it), so
  // out-of-order arrivals are parked until their predecessor is batched
  // here or executed via another origin.
  auto& last = last_batched_[update.client];
  const auto executed = executed_clients_.find(update.client);
  if (executed != executed_clients_.end()) {
    last = std::max(last, executed->second);
  }
  if (update.client_seq <= last) return;  // stale or already handled

  auto& parked = preorder_buffer_[update.client];
  if (update.client_seq > last + 1) {
    if (parked.size() < 1024) {
      parked.emplace(update.client_seq, std::move(update));
    }
    return;
  }

  pending_batch_.push_back(update);
  last = update.client_seq;
  // Drain any parked successors that are now contiguous.
  auto it = parked.begin();
  while (it != parked.end() && it->first == last + 1) {
    pending_batch_.push_back(std::move(it->second));
    last = it->first;
    it = parked.erase(it);
  }
  while (!parked.empty() && parked.begin()->first <= last) {
    parked.erase(parked.begin());
  }
}

void Replica::drain_preorder_buffer() {
  constexpr int kStallJumpTicks = 100;  // ~1s at the default flush rate
  for (auto client_it = preorder_buffer_.begin();
       client_it != preorder_buffer_.end();) {
    auto& parked = client_it->second;
    auto& last = last_batched_[client_it->first];
    const auto executed = executed_clients_.find(client_it->first);
    if (executed != executed_clients_.end()) {
      last = std::max(last, executed->second);
    }
    bool progressed = false;
    while (!parked.empty() && parked.begin()->first <= last) {
      parked.erase(parked.begin());
      progressed = true;
    }
    auto& stall = preorder_stall_[client_it->first];
    if (!parked.empty() && ++stall > kStallJumpTicks) {
      // Predecessors are never coming (e.g. the whole system restarted
      // while the client session kept counting): jump forward.
      last = parked.begin()->first - 1;
      log_.info("preorder jump for ", client_it->first, " to seq ",
                parked.begin()->first);
    }
    while (!parked.empty() && parked.begin()->first == last + 1) {
      pending_batch_.push_back(std::move(parked.begin()->second));
      last = parked.begin()->first;
      parked.erase(parked.begin());
      progressed = true;
    }
    if (progressed) stall = 0;
    if (parked.empty()) {
      preorder_stall_.erase(client_it->first);
      client_it = preorder_buffer_.erase(client_it);
    } else {
      ++client_it;
    }
  }
}

void Replica::po_flush_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || !running_) return;
  drain_preorder_buffer();
  if (!pending_batch_.empty()) {
    PoRequest req;
    req.origin = id_;
    req.po_seq = next_po_seq_++;
    req.updates = std::move(pending_batch_);
    pending_batch_.clear();
    ++stats_.po_requests_sent;
    if (auto* tracer = obs::Tracer::current()) {
      for (const auto& update : req.updates) {
        tracer->po_request(update.client, update.client_seq);
      }
    }
    send_envelope(MsgType::kPoRequest, req.encode());
  }
  sim_.schedule_after(config_.po_request_interval,
                      [this, epoch] { po_flush_tick(epoch); });
}

void Replica::handle_po_request(const Envelope& env, const util::Bytes& raw) {
  const auto req = PoRequest::decode(env.body);
  if (!req) return;
  if (!sender_is(env, req->origin)) return;
  store_po_request(*req, raw);
}

bool Replica::po_contains(ReplicaId origin, std::uint64_t seq) const {
  const PoLog& log = po_log_[origin];
  if (seq < log.base) return true;  // pruned: was stored and executed past
  const std::uint64_t idx = seq - log.base;
  return idx < log.slots.size() && log.slots[idx].stored != nullptr;
}

const Replica::StoredPoRequest* Replica::po_get(ReplicaId origin,
                                                std::uint64_t seq) const {
  const PoLog& log = po_log_[origin];
  if (seq < log.base) return nullptr;
  const std::uint64_t idx = seq - log.base;
  return idx < log.slots.size() ? log.slots[idx].stored.get() : nullptr;
}

void Replica::po_mark_wanted(ReplicaId origin, std::uint64_t seq) {
  PoLog& log = po_log_[origin];
  if (seq < log.base || seq >= log.base + kPoHorizon) return;
  if (log.wanted_count >= kMaxWantedPerOrigin) return;
  const std::uint64_t idx = seq - log.base;
  if (idx >= log.slots.size()) log.slots.resize(idx + 1);
  PoSlot& slot = log.slots[idx];
  if (slot.stored || slot.wanted) return;
  slot.wanted = true;
  ++log.wanted_count;
  ++stats_.recon_fetches_queued;
}

void Replica::store_po_request(const PoRequest& req, const util::Bytes& raw) {
  if (req.origin >= config_.n()) return;
  PoLog& log = po_log_[req.origin];
  if (req.po_seq < log.base) return;  // below the retention window
  if (req.po_seq >= log.base + kPoHorizon) return;  // absurdly far ahead
  const std::uint64_t idx = req.po_seq - log.base;
  if (idx < log.slots.size() && log.slots[idx].stored) return;  // duplicate
  // Client updates inside a PO-Request carry their own client
  // signatures; verify them here once so execution can trust the store.
  // verify_client_update memoizes, so an update this replica already
  // checked at receipt (or inside another origin's batch) costs one
  // digest, not an HMAC.
  for (const auto& update : req.updates) {
    if (!verifier_.knows(update.client) || !verify_client_update(update)) {
      ++stats_.dropped_bad_signature;
      return;
    }
  }
  if (idx >= log.slots.size()) log.slots.resize(idx + 1);
  PoSlot& slot = log.slots[idx];
  slot.stored = std::make_unique<StoredPoRequest>(StoredPoRequest{req, raw});
  if (slot.wanted) {
    slot.wanted = false;
    --log.wanted_count;
    ++stats_.recon_fetches_satisfied;
  }

  auto& aru = recv_aru_[req.origin];
  while (po_contains(req.origin, aru + 1)) ++aru;

  try_apply();
}

void Replica::po_aru_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || !running_) return;
  auto aru = std::make_shared<PoAru>();
  aru->replica = id_;
  aru->aru_seq = ++my_aru_seq_;
  aru->aru = recv_aru_;
  aru->sign(signer_);  // also caches the standalone wire bytes in raw
  turnaround_.emplace_back(sim_.now(), aru->aru_seq);
  // Encode-once: our own row goes into latest_aru_ directly (no wire
  // round trip needed), and the cached raw bytes are the send body. The
  // leader then splices these exact bytes into Pre-Prepares, and
  // followers short-circuit verify_row against them.
  util::Bytes body = aru->raw;
  latest_aru_[id_] = std::move(aru);
  latest_aru_view_[id_] = view_;
  send_envelope(MsgType::kPoAru, std::move(body));
  sim_.schedule_after(config_.po_aru_interval,
                      [this, epoch] { po_aru_tick(epoch); });
}

void Replica::handle_po_aru(const Envelope& env) {
  auto aru = PoAru::decode_standalone(env.body);
  if (!aru || aru->aru.size() != config_.n()) return;
  if (!sender_is(env, aru->replica)) return;
  if (aru->replica == id_) return;  // own broadcast, installed at send
  // Stale-before-verify: an old (or replayed) PO-ARU changes nothing,
  // so drop it without paying for an HMAC.
  auto& latest = latest_aru_[aru->replica];
  if (latest && aru->aru_seq <= latest->aru_seq) {
    ++stats_.stale_po_arus_dropped;
    return;
  }
  // env.body is exactly the standalone PO-ARU encoding, and this is the
  // ONLY signature check on the PO-ARU path (the envelope MAC was
  // skipped as redundant in process_message): the row's own signature
  // authenticates it, and sender_is above pins the envelope's sender
  // claim to the row owner. The memo key here — sha256 of the
  // standalone encoding — is the same one verify_row computes, so rows
  // re-shipped inside Pre-Prepares hit this entry.
  if (!verify_unit(env.sender, env.body, aru->sig)) {
    ++stats_.dropped_bad_signature;
    return;
  }

  // PO-ARU-driven reconciliation: a peer acknowledging PO-Requests we
  // never received (lost to a partition or drops) tells us exactly what
  // to fetch. Bounded lookahead keeps this cheap.
  for (ReplicaId i = 0; i < config_.n(); ++i) {
    const std::uint64_t theirs = aru->aru[i];
    const std::uint64_t mine = recv_aru_[i];
    if (theirs <= mine) continue;
    const std::uint64_t until = std::min(theirs, mine + 8);
    for (std::uint64_t s = mine + 1; s <= until; ++s) {
      if (!po_contains(i, s)) po_mark_wanted(i, s);
    }
  }

  latest = std::make_shared<const PoAru>(std::move(*aru));
  latest_aru_view_[latest->replica] = view_;
  // Withheld-ARU aging (adversary v2 defense): remember when we saw
  // this peer's broadcast row. accept_preprepare drains the samples the
  // leader's matrices cover; suspect_tick ages whatever the leader
  // keeps omitting. Bounded per origin — one aged sample is enough to
  // suspect, precision beyond that buys nothing.
  auto& pending = peer_turnaround_[latest->replica];
  if (pending.size() < kPeerTurnaroundCap) {
    pending.emplace_back(sim_.now(), latest->aru_seq);
  }
}

// ---- ordering ---------------------------------------------------------------

void Replica::preprepare_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || !running_) return;
  sim_.schedule_after(config_.preprepare_interval,
                      [this, epoch] { preprepare_tick(epoch); });
  if (!is_leader()) return;
  if (behavior_ == ReplicaBehavior::kSilentLeader) return;
  if (view_start_.count(view_) && next_order_seq_ < view_start_[view_]) {
    next_order_seq_ = view_start_[view_];
  }
  if (next_order_seq_ > highest_committed_ + config_.ordering_window) return;

  PrePrepare pp;
  pp.leader = id_;
  pp.view = view_;
  pp.order_seq = next_order_seq_;
  if (behavior_ == ReplicaBehavior::kStaleLeader) {
    // Delay attack: structurally valid Pre-Prepares whose matrix never
    // reflects fresh PO-ARUs, so no new updates become eligible.
    pp.rows.assign(config_.n(), nullptr);
  } else {
    pp.rows = latest_aru_;
  }
  // Byzantine withholding (adversary v2): silently drop the victims'
  // rows. Each matrix is individually valid — only the aging of the
  // victims' broadcast PO-ARUs betrays the exclusion.
  for (const ReplicaId victim : byz_.withhold_victims) {
    if (victim < pp.rows.size() && pp.rows[victim]) {
      pp.rows[victim] = nullptr;
      ++stats_.byz_rows_withheld;
    }
  }

  // Skip redundant proposals when idle, but heartbeat often enough that
  // correct replicas never suspect a healthy leader. Rows are shared
  // immutable objects, so pointer equality decides freshness.
  const bool fresh = !last_prop_valid_ || pp.rows != last_prop_rows_;
  const bool heartbeat_due =
      sim_.now() - last_preprepare_sent_ >= config_.leader_heartbeat;
  if (!fresh && !heartbeat_due) return;
  last_preprepare_sent_ = sim_.now();

  // Byzantine equivocation (adversary v2): sign two divergent full
  // matrices for the same (view, seq) — variant B drops the freshest
  // non-self row — and split the peer set between them. Neither variant
  // can gather a 2f+k+1 quorum of matching prepares, and any correct
  // replica that sees f+1 same-view prepares for a digest other than
  // its own installed one holds proof of equivocation (at most f of
  // them can be lying) and suspects immediately.
  if (byz_.equivocate) {
    PrePrepare alt = pp;
    bool diverged = false;
    for (ReplicaId r = config_.n(); r-- > 0;) {
      if (r != id_ && alt.rows[r]) {
        alt.rows[r] = nullptr;
        diverged = true;
        break;
      }
    }
    if (diverged) {
      util::Bytes wire_a = Envelope::seal(MsgType::kPrePrepare, signer_,
                                          pp.encode());
      const util::Bytes wire_b =
          Envelope::seal(MsgType::kPrePrepare, signer_, alt.encode());
      last_prop_valid_ = false;  // no delta chain across the fork
      ++next_order_seq_;
      ++stats_.preprepares_sent;
      ++stats_.byz_equivocations_sent;
      process_message(wire_a, /*pre_verified=*/true);
      if (epoch != epoch_ || !running_) return;
      for (ReplicaId r = 0; r < config_.n(); ++r) {
        if (r == id_) continue;
        transport_->send(r, r < (config_.n() + 1) / 2 ? wire_a : wire_b);
      }
      return;
    }
  }

  // Delta-encode against our immediately preceding proposal in this
  // view: unchanged rows ship as a one-byte tag instead of a full
  // signed PO-ARU, with the chained matrix digest binding the whole
  // reconstructed matrix.
  const bool delta_ok = last_prop_valid_ && last_prop_view_ == view_ &&
                        last_prop_seq_ + 1 == pp.order_seq;
  util::Bytes body =
      delta_ok ? pp.encode_delta(last_prop_rows_) : pp.encode();
  last_prop_valid_ = true;
  last_prop_view_ = view_;
  last_prop_seq_ = pp.order_seq;
  last_prop_rows_ = pp.rows;

  ++next_order_seq_;
  ++stats_.preprepares_sent;

  // Byzantine delay/reorder (adversary v2): Prime's signature
  // performance attack. Seal and install the proposal locally now (the
  // attacker looks current to itself and can serve MatrixFetches), but
  // hold the broadcast back; with reordering, release held proposals
  // pairwise swapped. Below turnaround_bound this is invisible — that
  // is the bounded-delay guarantee, the damage is capped, not zero.
  if (byz_.preprepare_delay > 0 || byz_.reorder_preprepares) {
    util::Bytes wire = Envelope::seal(MsgType::kPrePrepare, signer_, body);
    ++stats_.byz_preprepares_delayed;
    process_message(wire, /*pre_verified=*/true);
    if (epoch != epoch_ || !running_) return;
    byz_holdback_.push_back(std::move(wire));
    if (byz_.reorder_preprepares && byz_holdback_.size() < 2) return;
    std::vector<util::Bytes> held;
    held.swap(byz_holdback_);
    if (byz_.reorder_preprepares) std::swap(held.front(), held.back());
    sim_.schedule_after(
        byz_.preprepare_delay, [this, epoch, held = std::move(held)]() mutable {
          if (epoch != epoch_ || !running_ || acting_crashed()) return;
          for (auto& wire : held) transport_->broadcast(std::move(wire));
        });
    return;
  }

  send_envelope(MsgType::kPrePrepare, std::move(body));
}

void Replica::handle_preprepare(const Envelope& env, const util::Bytes& raw) {
  auto pp = PrePrepare::decode(env.body);
  if (!pp) return;
  if (!sender_is(env, pp->leader)) return;
  if (pp->view != view_ || pp->leader != leader_of(view_)) return;
  if (pp->order_seq <= applied_seq_) return;
  if (pp->order_seq > applied_seq_ + (1u << 20)) return;  // absurd horizon
  const auto start_it = view_start_.find(view_);
  if (start_it != view_start_.end() && pp->order_seq < start_it->second) return;
  if (pp->rows.size() != config_.n()) return;

  // The agreement digest derives from the leader's CLAIMED matrix
  // digest, so equivocation / duplicate / committed checks run before
  // any row verification or delta reconstruction — a flood of
  // duplicates costs hashing, not HMACs.
  const crypto::Digest digest = pp->digest();
  const auto slot_it = slots_.find(pp->order_seq);
  if (slot_it != slots_.end()) {
    const OrderSlot& slot = slot_it->second;
    if (slot.committed) {
      // Final: a re-proposal in a later view changes nothing we did.
      last_leader_activity_ = sim_.now();
      return;
    }
    if (slot.preprepare && slot.view == pp->view) {
      if (slot.digest != digest) {
        // Equivocation: two conflicting proposals for the same slot.
        log_.warn("conflicting pre-prepares for seq ", pp->order_seq,
                  " in view ", view_, "; suspecting leader");
        suspect(view_ + 1);
      } else {
        last_leader_activity_ = sim_.now();
      }
      return;
    }
    if (slot.preprepare && slot.view > pp->view) return;
  }

  if (pp->is_delta()) {
    // Reconstruct tag-2 (unchanged) rows from the proposal this delta
    // chains onto. If we never accepted that proposal (just recovered,
    // or it was lost), we cannot reconstruct — fall back to fetching
    // the full matrix from any replica that did accept it.
    const bool chain_ok = last_accepted_view_ == pp->view &&
                          last_accepted_seq_ + 1 == pp->order_seq &&
                          !last_accepted_rows_.empty();
    if (!chain_ok) {
      request_matrix(pp->view, pp->order_seq);
      return;
    }
    for (ReplicaId r = 0; r < config_.n(); ++r) {
      if (pp->unchanged[r]) pp->rows[r] = last_accepted_rows_[r];
    }
  }

  accept_preprepare(std::move(*pp), digest, raw, /*direct_from_leader=*/true);
}

void Replica::accept_preprepare(PrePrepare pp, const crypto::Digest& digest,
                                const util::Bytes& raw_envelope,
                                bool direct_from_leader) {
  // Verify the inline rows. Rows reconstructed from the previous
  // accepted proposal (tag-2) were verified when that proposal was
  // accepted, and verify_row short-circuits rows whose bytes match an
  // already-accepted latest_aru_ entry.
  for (ReplicaId r = 0; r < config_.n(); ++r) {
    const auto& row = pp.rows[r];
    if (!row) continue;
    if (r < pp.unchanged.size() && pp.unchanged[r]) continue;
    if (row->replica != r || row->aru.size() != config_.n() ||
        !verify_row(*row, r)) {
      // Malformed matrix straight from the leader is attributable
      // misbehavior; via a MatrixResp the responder may have tampered
      // with the attachment, so only drop.
      if (direct_from_leader) suspect(view_ + 1);
      return;
    }
  }

  // The claimed matrix digest (covered by the agreement digest every
  // replica prepares on) must match the matrix we actually hold. A
  // mismatch on the direct path means the leader's delta lies about
  // unchanged rows — leader-signed, so suspect. On the fetch path the
  // responder's attachment may be bogus: drop and let retries find an
  // honest responder.
  const crypto::Digest computed = PrePrepare::matrix_digest_of(pp.rows);
  if (computed != pp.matrix_digest) {
    if (direct_from_leader) {
      log_.warn("pre-prepare matrix digest mismatch at seq ", pp.order_seq,
                "; suspecting leader");
      suspect(view_ + 1);
    }
    return;
  }

  // Re-proposal constraint: in a view installed by a NewView, the
  // leading slots must carry exactly the proven matrices (or an empty
  // no-op matrix for holes) — a leader proposing anything else for
  // them is misbehaving.
  if (reproposal_view_ == view_ && pp.order_seq <= reproposal_top_) {
    const auto expected = expected_rows_.find(pp.order_seq);
    const crypto::Digest required = expected != expected_rows_.end()
                                        ? expected->second
                                        : empty_matrix_digest();
    if (computed != required) {
      log_.warn("leader deviated from re-proposal constraints at seq ",
                pp.order_seq, "; suspecting");
      if (direct_from_leader) suspect(view_ + 1);
      return;
    }
  }

  OrderSlot& slot = slots_[pp.order_seq];
  if (slot.committed) {
    last_leader_activity_ = sim_.now();
    return;
  }
  if (slot.preprepare) {
    if (slot.view == pp.view) {
      // Raced with another copy (e.g. a MatrixResp landing after the
      // leader's retransmission); the digest checks ran in
      // handle_preprepare, nothing more to do.
      last_leader_activity_ = sim_.now();
      return;
    }
    if (slot.view > pp.view) return;
    // Newer view supersedes an abandoned proposal.
    slot = OrderSlot{};
  }

  // Turnaround check bookkeeping: our row being reflected clears the
  // pending PO-ARUs it covers.
  if (const auto& my_row = pp.rows[id_]) {
    while (!turnaround_.empty() &&
           turnaround_.front().second <= my_row->aru_seq) {
      turnaround_.pop_front();
    }
  }
  // Likewise for every peer's pending samples (withheld-ARU aging): a
  // matrix row covering the sample proves the leader is not excluding
  // that origin.
  for (ReplicaId r = 0; r < config_.n(); ++r) {
    const auto& row = pp.rows[r];
    if (!row) continue;
    auto& pending = peer_turnaround_[r];
    while (!pending.empty() && pending.front().second <= row->aru_seq) {
      pending.pop_front();
    }
  }

  // Track the newest accepted proposal for future delta reconstruction.
  if (pp.view > last_accepted_view_ ||
      (pp.view == last_accepted_view_ && pp.order_seq > last_accepted_seq_)) {
    last_accepted_view_ = pp.view;
    last_accepted_seq_ = pp.order_seq;
    last_accepted_rows_ = pp.rows;
  }
  outstanding_matrix_fetches_.erase(pp.order_seq);

  const std::uint64_t seq = pp.order_seq;
  const std::uint64_t pp_view = pp.view;
  pp.unchanged.clear();  // stored form always carries the full rows
  slot.preprepare = std::move(pp);
  slot.preprepare_envelope = raw_envelope;
  slot.digest = digest;
  slot.view = pp_view;
  slot.pp_at = sim_.now();
  last_leader_activity_ = sim_.now();

  PrepareOrCommit prepare;
  prepare.replica = id_;
  prepare.view = pp_view;
  prepare.order_seq = seq;
  prepare.preprepare_digest = digest;
  send_envelope(MsgType::kPrepare, prepare.encode());

  try_commit(seq);
}

void Replica::request_matrix(std::uint64_t view, std::uint64_t order_seq) {
  const auto it = outstanding_matrix_fetches_.find(order_seq);
  if (it == outstanding_matrix_fetches_.end()) {
    if (outstanding_matrix_fetches_.size() >= kMaxMatrixFetches) return;
    outstanding_matrix_fetches_[order_seq] = view;
  } else {
    it->second = view;
  }
  MatrixFetch fetch;
  fetch.view = view;
  fetch.order_seq = order_seq;
  ++stats_.matrix_fetches_sent;
  send_envelope(MsgType::kMatrixFetch, fetch.encode());
}

void Replica::handle_matrix_fetch(const Envelope& env) {
  const auto fetch = MatrixFetch::decode(env.body);
  if (!fetch) return;
  const auto slot_it = slots_.find(fetch->order_seq);
  if (slot_it == slots_.end()) return;
  const OrderSlot& slot = slot_it->second;
  if (!slot.preprepare || slot.view != fetch->view ||
      slot.preprepare_envelope.empty()) {
    return;
  }
  const auto r = sender_id(env);
  if (!r) return;
  MatrixResp resp;
  resp.view = fetch->view;
  resp.order_seq = fetch->order_seq;
  resp.preprepare_envelope = slot.preprepare_envelope;
  resp.rows = slot.preprepare->rows;
  send_envelope(MsgType::kMatrixResp, resp.encode(), *r);
}

void Replica::handle_matrix_resp(const Envelope& env) {
  const auto resp = MatrixResp::decode(env.body);
  if (!resp) return;
  if (!outstanding_matrix_fetches_.count(resp->order_seq)) return;  // unsolicited
  const auto inner = Envelope::decode(resp->preprepare_envelope);
  if (!inner || inner->type != MsgType::kPrePrepare ||
      !verify_envelope(*inner, resp->preprepare_envelope)) {
    return;
  }
  auto pp = PrePrepare::decode(inner->body);
  if (!pp) return;
  if (!sender_is(*inner, pp->leader)) return;
  if (pp->view != resp->view || pp->order_seq != resp->order_seq) return;
  if (pp->view != view_ || pp->leader != leader_of(view_)) return;
  if (pp->order_seq <= applied_seq_) return;
  if (pp->order_seq > applied_seq_ + (1u << 20)) return;
  if (pp->rows.size() != config_.n() || resp->rows.size() != config_.n()) {
    return;
  }
  // Substitute the responder's full row attachment for the (possibly
  // delta-encoded) row set of the stored envelope; the leader-signed
  // matrix digest check in accept_preprepare catches tampering.
  pp->rows = resp->rows;
  pp->unchanged.clear();
  const crypto::Digest digest = pp->digest();
  accept_preprepare(std::move(*pp), digest, resp->preprepare_envelope,
                    /*direct_from_leader=*/false);
}

void Replica::handle_prepare_or_commit(const Envelope& env,
                                       const util::Bytes& raw, bool is_commit) {
  const auto msg = PrepareOrCommit::decode(env.body);
  if (!msg) return;
  if (!sender_is(env, msg->replica)) return;
  if (msg->order_seq <= applied_seq_) return;
  if (msg->order_seq > applied_seq_ + (1u << 20)) return;  // absurd horizon

  OrderSlot& slot = slots_[msg->order_seq];
  auto& table = is_commit ? slot.commits : slot.prepares;
  const auto entry = std::make_pair(msg->view, msg->preprepare_digest);
  const auto it = table.find(msg->replica);
  if (it == table.end() || it->second.first < msg->view) {
    table[msg->replica] = entry;
    if (is_commit) {
      slot.commit_envelopes[msg->replica] = raw;
    } else {
      // Kept to assemble prepared proofs for view changes.
      slot.prepare_envelopes[msg->replica] = raw;
    }
  }

  // Equivocation detection via cross-replica digest exchange (adversary
  // v2 defense): our Prepare digests are what we received leader-signed,
  // and so are every peer's. f+1 same-view prepares for a digest other
  // than our installed one mean at least one CORRECT replica holds a
  // conflicting leader-signed proposal for this slot — attributable
  // equivocation, suspected immediately instead of waiting for the
  // turnaround bound. Fewer than f+1 could all be liars framing an
  // honest leader, so the threshold is exact.
  if (!is_commit && slot.preprepare && slot.view == view_ &&
      msg->view == slot.view && msg->preprepare_digest != slot.digest) {
    std::uint32_t differing = 0;
    for (const auto& [replica, prepared] : slot.prepares) {
      if (prepared.first == slot.view && prepared.second != slot.digest) {
        ++differing;
      }
    }
    if (differing >= config_.f + 1) {
      ++stats_.equivocation_suspects;
      log_.warn("f+1 divergent prepares for seq ", msg->order_seq,
                " in view ", view_, "; leader equivocated");
      suspect(view_ + 1);
    }
  }
  try_commit(msg->order_seq);
}

void Replica::try_commit(std::uint64_t seq) {
  const auto slot_it = slots_.find(seq);
  if (slot_it == slots_.end()) return;
  OrderSlot& slot = slot_it->second;
  if (!slot.preprepare) return;

  const auto count_matching = [&](const auto& table) {
    std::uint32_t count = 0;
    for (const auto& [replica, entry] : table) {
      if (entry.first == slot.view && entry.second == slot.digest) ++count;
    }
    return count;
  };

  if (!slot.prepared && count_matching(slot.prepares) >= config_.quorum()) {
    slot.prepared = true;
  }
  if (slot.prepared && !slot.sent_commit) {
    slot.sent_commit = true;
    PrepareOrCommit commit;
    commit.replica = id_;
    commit.view = slot.view;
    commit.order_seq = seq;
    commit.preprepare_digest = slot.digest;
    send_envelope(MsgType::kCommit, commit.encode());
    // Self-delivery is deferred to the batched flush, so this cannot
    // re-enter try_commit synchronously.
  }
  if (!slot.committed && count_matching(slot.commits) >= config_.quorum()) {
    slot.committed = true;
    slot.commit_at = sim_.now();
    highest_committed_ = std::max(highest_committed_, seq);
    try_apply();
  }
}

// ---- execution ---------------------------------------------------------------

std::vector<std::uint64_t> Replica::eligibility(const PrePrepare& pp) const {
  const std::uint32_t n = config_.n();
  std::vector<std::uint64_t> result(n, 0);
  std::vector<std::uint64_t> column(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      column[j] = pp.rows[j] ? pp.rows[j]->aru[i] : 0;
    }
    std::sort(column.begin(), column.end(), std::greater<>());
    // The quorum-th largest claim: at least f+k+1 correct replicas have
    // preordered through this sequence, so it is recoverable.
    result[i] = column[config_.quorum() - 1];
  }
  return result;
}

bool Replica::can_apply(std::uint64_t seq, bool mark_missing) {
  const OrderSlot& slot = slots_.at(seq);
  const auto elig = eligibility(*slot.preprepare);
  bool ok = true;
  for (ReplicaId i = 0; i < config_.n(); ++i) {
    for (std::uint64_t s = exec_aru_[i] + 1; s <= elig[i]; ++s) {
      if (!po_contains(i, s)) {
        ok = false;
        if (!mark_missing) return false;
        // Reconciliation: mark the PO-Requests the matrix made eligible
        // but we never received (recon_tick drives the fetches).
        po_mark_wanted(i, s);
      }
    }
  }
  return ok;
}

void Replica::try_apply() {
  while (true) {
    const std::uint64_t next = applied_seq_ + 1;
    const auto slot_it = slots_.find(next);
    const bool have_committed =
        slot_it != slots_.end() && slot_it->second.committed;

    if (have_committed) {
      if (can_apply(next, /*mark_missing=*/true)) {
        apply_matrix(next);
        continue;
      }
      return;
    }

    // Not committed locally. Slots below the current view's start were
    // applied by a correct replica (start is derived from applied_seq
    // reports), and pipeline gaps below later commits will resolve via
    // leader retransmission — in both cases the certificate is
    // fetchable, so we never skip (skipping a slot someone executed
    // would fork the execution order). A gap stuck long enough that
    // peers must have pruned it falls back to a full state transfer.
    const auto start_it = view_start_.find(view_);
    const bool behind = highest_committed_ > next ||
                        (start_it != view_start_.end() &&
                         next < start_it->second);
    if (behind) {
      if (cert_attempts_[next] > kStateTransferFallbackAttempts) {
        begin_state_transfer();
        return;
      }
      outstanding_cert_fetches_.insert(next);
    }
    return;
  }
}

void Replica::apply_matrix(std::uint64_t seq) {
  OrderSlot& slot = slots_.at(seq);
  const auto elig = eligibility(*slot.preprepare);
  auto* tracer = obs::Tracer::current();

  for (ReplicaId i = 0; i < config_.n(); ++i) {
    for (std::uint64_t s = exec_aru_[i] + 1; s <= elig[i]; ++s) {
      // can_apply guaranteed presence just before this call.
      const StoredPoRequest& stored = *po_get(i, s);
      for (const auto& update : stored.request.updates) {
        auto& executed = executed_clients_[update.client];
        if (update.client_seq <= executed) continue;  // cross-origin dup
        executed = update.client_seq;
        ++stats_.updates_executed;
        const ExecutionInfo info{seq, i, s};
        app_.apply(update, info);
        if (tracer != nullptr) {
          tracer->executed(update.client, update.client_seq, slot.pp_at,
                           slot.commit_at);
        }
        if (observer_) observer_(update, info);
      }
    }
    exec_aru_[i] = std::max(exec_aru_[i], elig[i]);
  }

  applied_seq_ = seq;
  ++stats_.matrices_applied;
  outstanding_cert_fetches_.erase(seq);
  cert_attempts_.erase(seq);
  maybe_checkpoint();

  // Retention: keep a window of slots and PO-Requests to serve
  // reconciliation and catch-up, prune the rest.
  while (!slots_.empty() &&
         slots_.begin()->first + kSlotRetention < applied_seq_) {
    slots_.erase(slots_.begin());
  }
  for (ReplicaId i = 0; i < config_.n(); ++i) {
    PoLog& log = po_log_[i];
    while (!log.slots.empty() && log.base + kSlotRetention < exec_aru_[i]) {
      if (log.slots.front().wanted) --log.wanted_count;
      log.slots.pop_front();
      ++log.base;
    }
    // An emptied log whose base lags far behind execution (e.g. an
    // origin that went quiet) jumps forward so fresh sequence numbers
    // stay inside the insert horizon.
    if (log.slots.empty() && log.base + kSlotRetention < exec_aru_[i]) {
      log.base = exec_aru_[i] - kSlotRetention;
    }
  }
}

void Replica::maybe_checkpoint() {
  if (applied_seq_ % config_.checkpoint_interval != 0) return;
  util::Bytes blob = snapshot_bundle();
  Checkpoint cp;
  cp.replica = id_;
  cp.applied_seq = applied_seq_;
  cp.snapshot_digest = crypto::sha256(blob);
  cp.sign(signer_);
  checkpoint_blobs_[applied_seq_] = std::move(blob);
  while (checkpoint_blobs_.size() > 3) {
    checkpoint_blobs_.erase(checkpoint_blobs_.begin());
  }

  send_envelope(MsgType::kCheckpoint, cp.encode());
}

void Replica::handle_checkpoint(const Envelope& env, const util::Bytes& raw) {
  const auto cp = Checkpoint::decode(env.body);
  if (!cp) return;
  if (!sender_is(env, cp->replica)) return;
  if (!cp->verify_embedded(verifier_, env.sender)) return;

  auto& votes = checkpoint_votes_[cp->applied_seq];
  votes[cp->replica] = std::make_pair(cp->snapshot_digest, raw);

  std::uint32_t matching = 0;
  for (const auto& [replica, vote] : votes) {
    if (vote.first == cp->snapshot_digest) ++matching;
  }
  if (matching >= config_.f + 1 &&
      (!stable_checkpoint_ || cp->applied_seq > stable_checkpoint_->seq)) {
    stable_checkpoint_ = StableCheckpoint{cp->applied_seq, cp->snapshot_digest};
    ++stats_.checkpoints_stable;
    while (!checkpoint_votes_.empty() &&
           checkpoint_votes_.begin()->first < cp->applied_seq) {
      checkpoint_votes_.erase(checkpoint_votes_.begin());
    }
  }
}

// ---- suspect / view change ---------------------------------------------------

void Replica::suspect_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || !running_) return;
  sim_.schedule_after(config_.suspect_timeout / 4,
                      [this, epoch] { suspect_tick(epoch); });
  if (acting_crashed()) return;
  ++stats_.suspect_ticks;
  if (is_leader()) return;

  if (sim_.now() - last_leader_activity_ > config_.suspect_timeout) {
    log_.debug("leader of view ", view_, " silent; suspecting");
    suspect(view_ + 1);
    return;
  }
  // All turnaround aging is measured from the later of the sample time
  // and the current view's install: a freshly seated leader is not
  // blamed for the previous leader's backlog (PR 9 bugfix).
  const auto age_of = [&](sim::Time sample) {
    return sim_.now() - std::max(sample, turnaround_baseline_);
  };
  // Turnaround bound (delay-attack defense): our PO-ARU must appear in
  // the leader's matrices within the bound.
  if (!turnaround_.empty() &&
      age_of(turnaround_.front().first) > config_.turnaround_bound) {
    ++stats_.turnaround_suspects;
    log_.debug("leader of view ", view_,
               " not reflecting our PO-ARUs; suspecting");
    suspect(view_ + 1);
    return;
  }
  // Withheld-ARU aging (adversary v2 defense): the same bound applied
  // to every peer's broadcast PO-ARUs, relaxed 2x — a peer's last
  // broadcast before a crash legitimately goes un-included, and under
  // loss chaos a sample's covering matrix can simply be late, so only
  // persistent exclusion clears the bar.
  const sim::Time peer_bound = 2 * config_.turnaround_bound;
  for (ReplicaId r = 0; r < config_.n(); ++r) {
    if (r == id_) continue;
    const auto& pending = peer_turnaround_[r];
    if (!pending.empty() && age_of(pending.front().first) > peer_bound) {
      ++stats_.withheld_aru_suspects;
      log_.warn("leader of view ", view_, " withholding PO-ARUs of replica ",
                r, "; suspecting");
      suspect(view_ + 1);
      return;
    }
  }
}

void Replica::suspect(std::uint64_t proposed_view) {
  if (proposed_view <= view_) return;
  if (last_suspected_view_ >= proposed_view) return;
  last_suspected_view_ = proposed_view;
  NewLeader msg;
  msg.replica = id_;
  msg.proposed_view = proposed_view;
  send_envelope(MsgType::kNewLeader, msg.encode());
}

void Replica::handle_new_leader(const Envelope& env) {
  const auto msg = NewLeader::decode(env.body);
  if (!msg) return;
  if (!sender_is(env, msg->replica)) return;
  if (msg->proposed_view <= view_) return;

  auto& votes = new_leader_votes_[msg->proposed_view];
  votes.insert(msg->replica);
  if (votes.size() >= config_.quorum()) {
    enter_view(msg->proposed_view);
  } else if (votes.size() >= config_.f + 1) {
    // f+1 suspicions cannot all be Byzantine: join the view change so
    // it converges even if we have not timed out locally yet.
    suspect(msg->proposed_view);
  }
}

void Replica::enter_view(std::uint64_t view) {
  if (view <= view_) return;
  view_ = view;
  ++stats_.view_changes;
  log_.info("entering view ", view, " (leader ", leader_of(view), ")");
  last_leader_activity_ = sim_.now();
  turnaround_.clear();
  for (auto& pending : peer_turnaround_) pending.clear();
  turnaround_baseline_ = sim_.now();
  collected_view_states_.clear();
  new_view_sent_ = false;
  while (!new_leader_votes_.empty() &&
         new_leader_votes_.begin()->first <= view) {
    new_leader_votes_.erase(new_leader_votes_.begin());
  }

  ViewState vs;
  vs.replica = id_;
  vs.view = view;
  // Applied (contiguously executed) position: the quorum maximum of
  // these defines what the new view may start past.
  vs.max_committed = applied_seq_;
  std::uint64_t max_prepared = 0;
  for (const auto& [seq, slot] : slots_) {
    if (!slot.prepared) continue;
    max_prepared = std::max(max_prepared, seq);
    if (slot.committed || seq <= applied_seq_ || vs.prepared.size() >= 32) {
      continue;
    }
    // Assemble the self-certifying prepared proof for this slot. The
    // stored envelope may be delta-encoded, so the full row set rides
    // along (checked against the envelope's signed matrix digest).
    PreparedProof proof;
    proof.order_seq = seq;
    proof.preprepare_envelope = slot.preprepare_envelope;
    proof.rows = slot.preprepare->rows;
    for (const auto& [replica, entry] : slot.prepares) {
      if (entry.first != slot.view || entry.second != slot.digest) continue;
      const auto env_it = slot.prepare_envelopes.find(replica);
      if (env_it != slot.prepare_envelopes.end()) {
        proof.prepare_envelopes.push_back(env_it->second);
      }
    }
    if (proof.prepare_envelopes.size() >= config_.quorum()) {
      vs.prepared.push_back(std::move(proof));
    }
  }
  vs.max_prepared = max_prepared;
  vs.sign(signer_);

  if (leader_of(view) == id_) {
    collected_view_states_[id_] = vs;
    maybe_send_new_view();
  } else {
    util::ByteWriter w;
    vs.encode(w);
    send_envelope(MsgType::kViewState, w.take(), leader_of(view));
  }
}

void Replica::handle_view_state(const Envelope& env) {
  util::ByteReader r(env.body);
  ViewState vs;
  try {
    vs = ViewState::decode(r);
    r.expect_done();
  } catch (const util::SerializationError&) {
    return;
  }
  if (!sender_is(env, vs.replica)) return;
  if (vs.view != view_ || leader_of(view_) != id_) return;
  if (!vs.verify_embedded(verifier_, env.sender)) return;
  collected_view_states_[vs.replica] = vs;
  maybe_send_new_view();
}

void Replica::maybe_send_new_view() {
  if (new_view_sent_ || collected_view_states_.size() < config_.quorum()) return;
  new_view_sent_ = true;

  NewView nv;
  nv.leader = id_;
  nv.view = view_;
  std::uint64_t max_applied = 0;
  for (const auto& [replica, vs] : collected_view_states_) {
    max_applied = std::max(max_applied, vs.max_committed);
    nv.justification.push_back(vs);
  }
  nv.start_seq = max_applied + 1;
  // The self-delivery of this NewView installs the re-proposal
  // constraints and emits the re-proposals (handle_new_view).
  send_envelope(MsgType::kNewView, nv.encode());
}

crypto::Digest Replica::empty_matrix_digest() const {
  return PrePrepare::matrix_digest_of(
      std::vector<PrePrepare::Row>(config_.n(), nullptr));
}

std::optional<PrePrepare> Replica::verify_prepared_proof(
    const PreparedProof& proof) {
  const auto env = Envelope::decode(proof.preprepare_envelope);
  if (!env || env->type != MsgType::kPrePrepare ||
      !verify_envelope(*env, proof.preprepare_envelope)) {
    return std::nullopt;
  }
  auto pp = PrePrepare::decode(env->body);
  if (!pp || pp->order_seq != proof.order_seq) return std::nullopt;
  if (!sender_is(*env, pp->leader) || pp->leader != leader_of(pp->view)) {
    return std::nullopt;
  }
  if (pp->rows.size() != config_.n() || proof.rows.size() != config_.n()) {
    return std::nullopt;
  }
  // The envelope may be delta-encoded; the proof attaches the full row
  // set, authenticated by the leader-signed matrix digest.
  for (ReplicaId r = 0; r < config_.n(); ++r) {
    const auto& row = proof.rows[r];
    if (!row) continue;
    if (row->replica != r || row->aru.size() != config_.n() ||
        !verify_row(*row, r)) {
      return std::nullopt;
    }
  }
  if (PrePrepare::matrix_digest_of(proof.rows) != pp->matrix_digest) {
    return std::nullopt;
  }
  pp->rows = proof.rows;
  pp->unchanged.clear();
  const crypto::Digest digest = pp->digest();
  std::set<ReplicaId> senders;
  for (const auto& prepare_bytes : proof.prepare_envelopes) {
    const auto prepare_env = Envelope::decode(prepare_bytes);
    if (!prepare_env || prepare_env->type != MsgType::kPrepare ||
        !verify_envelope(*prepare_env, prepare_bytes)) {
      continue;
    }
    const auto prepare = PrepareOrCommit::decode(prepare_env->body);
    if (!prepare || prepare->order_seq != proof.order_seq ||
        prepare->view != pp->view || prepare->preprepare_digest != digest) {
      continue;
    }
    if (!sender_is(*prepare_env, prepare->replica)) continue;
    senders.insert(prepare->replica);
  }
  if (senders.size() < config_.quorum()) return std::nullopt;
  return pp;
}

void Replica::handle_new_view(const Envelope& env) {
  const auto nv = NewView::decode(env.body);
  if (!nv) return;
  if (nv->view < view_) return;
  if (!sender_is(env, nv->leader)) return;
  if (leader_of(nv->view) != nv->leader) return;
  if (nv->justification.size() < config_.quorum()) return;

  std::uint64_t max_applied = 0;
  std::set<ReplicaId> distinct;
  for (const auto& vs : nv->justification) {
    if (vs.view != nv->view) return;
    if (!vs.verify_embedded(verifier_, identity_of(vs.replica))) return;
    distinct.insert(vs.replica);
    max_applied = std::max(max_applied, vs.max_committed);
  }
  if (distinct.size() < config_.quorum()) return;
  if (nv->start_seq != max_applied + 1) return;

  // Gather the prepared proofs at or above start: any slot that might
  // have committed anywhere is guaranteed (quorum intersection) to be
  // proven by some correct justifier; the highest old view wins.
  std::map<std::uint64_t, std::pair<std::uint64_t, PrePrepare>> chosen;
  for (const auto& vs : nv->justification) {
    for (const auto& proof : vs.prepared) {
      if (proof.order_seq < nv->start_seq) continue;
      const auto pp = verify_prepared_proof(proof);
      if (!pp) continue;  // Byzantine garbage: ignore
      const auto it = chosen.find(proof.order_seq);
      if (it == chosen.end() || pp->view > it->second.first) {
        chosen[proof.order_seq] = std::make_pair(pp->view, *pp);
      }
    }
  }

  if (nv->view > view_) {
    view_ = nv->view;
    ++stats_.view_changes;
  }
  // Re-baseline the delay-attack bookkeeping UNCONDITIONALLY: when we
  // already entered this view via NewLeader votes, samples queued while
  // the view change was in flight predate the new leader's tenure, and
  // aging them against it would spuriously evict a healthy fresh leader
  // (PR 9 bugfix — previously only done when the view advanced here).
  turnaround_.clear();
  for (auto& pending : peer_turnaround_) pending.clear();
  turnaround_baseline_ = sim_.now();
  view_start_[nv->view] = nv->start_seq;
  last_leader_activity_ = sim_.now();

  reproposal_view_ = nv->view;
  reproposal_top_ = chosen.empty() ? nv->start_seq - 1 : chosen.rbegin()->first;
  expected_rows_.clear();
  for (const auto& [seq, viewed_pp] : chosen) {
    // verify_prepared_proof established matrix_digest ==
    // matrix_digest_of(rows) for every chosen proposal.
    expected_rows_[seq] = viewed_pp.second.matrix_digest;
  }

  if (leader_of(view_) == id_) {
    next_order_seq_ =
        std::max({next_order_seq_, nv->start_seq, reproposal_top_ + 1});
    // Emit the re-proposals immediately: proven matrices verbatim,
    // no-op (empty) matrices for the holes between them.
    for (std::uint64_t seq = nv->start_seq; seq <= reproposal_top_; ++seq) {
      PrePrepare pp;
      pp.leader = id_;
      pp.view = view_;
      pp.order_seq = seq;
      const auto it = chosen.find(seq);
      if (it != chosen.end()) {
        pp.rows = it->second.second.rows;
      } else {
        pp.rows.assign(config_.n(), nullptr);
      }
      ++stats_.preprepares_sent;
      send_envelope(MsgType::kPrePrepare, pp.encode());
      last_prop_valid_ = true;
      last_prop_view_ = view_;
      last_prop_seq_ = seq;
      last_prop_rows_ = pp.rows;
    }
  }
  try_apply();
}

// ---- reconciliation -----------------------------------------------------------

void Replica::recon_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || !running_) return;
  sim_.schedule_after(config_.recon_interval,
                      [this, epoch] { recon_tick(epoch); });
  if (acting_crashed()) return;

  for (ReplicaId origin = 0; origin < config_.n(); ++origin) {
    const PoLog& log = po_log_[origin];
    if (log.wanted_count == 0) continue;
    std::uint32_t sent = 0;
    for (std::uint64_t idx = 0; idx < log.slots.size() && sent < 64; ++idx) {
      if (!log.slots[idx].wanted) continue;
      PoReqFetch fetch;
      fetch.origin = origin;
      fetch.po_seq = log.base + idx;
      ++stats_.fetches_sent;
      ++sent;
      send_envelope(MsgType::kPoReqFetch, fetch.encode());
    }
  }

  // Delta-matrix fallback retries: keep asking for full matrices we
  // could not reconstruct until the slot is applied or the view moves.
  for (auto it = outstanding_matrix_fetches_.begin();
       it != outstanding_matrix_fetches_.end();) {
    if (it->first <= applied_seq_ || it->second < view_) {
      it = outstanding_matrix_fetches_.erase(it);
      continue;
    }
    MatrixFetch fetch;
    fetch.view = it->second;
    fetch.order_seq = it->first;
    ++stats_.matrix_fetches_sent;
    send_envelope(MsgType::kMatrixFetch, fetch.encode());
    ++it;
  }

  // Catch-up lookahead: when the commit stream is far ahead of our
  // applied point (post-partition or post-recovery), fetch a window of
  // certificates per tick instead of one.
  std::set<std::uint64_t> cert_wanted = outstanding_cert_fetches_;
  if (highest_committed_ > applied_seq_) {
    const std::uint64_t until =
        std::min(highest_committed_, applied_seq_ + 32);
    for (std::uint64_t seq = applied_seq_ + 1; seq <= until; ++seq) {
      const auto it = slots_.find(seq);
      if (it == slots_.end() || !it->second.committed) cert_wanted.insert(seq);
    }
  }
  for (const auto seq : cert_wanted) {
    CommitCertReq req;
    req.order_seq = seq;
    ++cert_attempts_[seq];
    send_envelope(MsgType::kCommitCertReq, req.encode());
  }
  if (!cert_wanted.empty()) try_apply();

  // Ordering retransmission: under message loss a slot could otherwise
  // be stranded with no quorum ever assembling anywhere (deployments
  // get this from Spines reliability; the engine must not depend on
  // it). Re-announce our contribution to the lowest in-flight slots.
  for (std::uint64_t seq = applied_seq_ + 1; seq <= applied_seq_ + 8; ++seq) {
    const auto it = slots_.find(seq);
    if (it == slots_.end()) continue;
    OrderSlot& slot = it->second;
    if (!slot.preprepare || slot.committed || slot.view != view_) continue;
    // A delaying/reordering Byzantine leader does not helpfully
    // retransmit the very proposals it is holding back.
    if (is_leader() && !slot.preprepare_envelope.empty() &&
        byz_.preprepare_delay == 0 && !byz_.reorder_preprepares) {
      transport_->broadcast(slot.preprepare_envelope);
    }
    PrepareOrCommit prepare;
    prepare.replica = id_;
    prepare.view = slot.view;
    prepare.order_seq = seq;
    prepare.preprepare_digest = slot.digest;
    send_envelope(MsgType::kPrepare, prepare.encode());
    if (slot.sent_commit) {
      PrepareOrCommit commit = prepare;
      send_envelope(MsgType::kCommit, commit.encode());
    }
  }
}

void Replica::handle_po_fetch(const Envelope& env) {
  const auto fetch = PoReqFetch::decode(env.body);
  if (!fetch) return;
  if (fetch->origin >= config_.n()) return;
  const StoredPoRequest* stored = po_get(fetch->origin, fetch->po_seq);
  if (!stored) return;
  // Find the requester's replica id to respond directly.
  if (const auto r = sender_id(env)) {
    PoReqResp resp;
    resp.origin = fetch->origin;
    resp.po_seq = fetch->po_seq;
    resp.envelope = stored->envelope;
    send_envelope(MsgType::kPoReqResp, resp.encode(), *r);
  }
}

void Replica::handle_po_resp(const Envelope& env) {
  const auto resp = PoReqResp::decode(env.body);
  if (!resp) return;
  const auto inner = Envelope::decode(resp->envelope);
  if (!inner || inner->type != MsgType::kPoRequest) return;
  if (!verify_envelope(*inner, resp->envelope)) return;
  const auto req = PoRequest::decode(inner->body);
  if (!req) return;
  if (!sender_is(*inner, req->origin)) return;
  store_po_request(*req, resp->envelope);
}

void Replica::handle_cert_req(const Envelope& env) {
  const auto req = CommitCertReq::decode(env.body);
  if (!req) return;
  const auto slot_it = slots_.find(req->order_seq);
  if (slot_it == slots_.end() || !slot_it->second.committed) return;
  const OrderSlot& slot = slot_it->second;

  CommitCertResp resp;
  resp.order_seq = req->order_seq;
  resp.preprepare_envelope = slot.preprepare_envelope;
  // The stored envelope may be delta-encoded; ship the full row set,
  // authenticated by the envelope's signed matrix digest.
  resp.rows = slot.preprepare->rows;
  for (const auto& [replica, entry] : slot.commits) {
    if (entry.first == slot.view && entry.second == slot.digest) {
      const auto env_it = slot.commit_envelopes.find(replica);
      if (env_it != slot.commit_envelopes.end()) {
        resp.commit_envelopes.push_back(env_it->second);
      }
    }
  }
  if (resp.commit_envelopes.size() < config_.quorum()) return;

  if (const auto r = sender_id(env)) {
    send_envelope(MsgType::kCommitCertResp, resp.encode(), *r);
  }
}

void Replica::handle_cert_resp(const Envelope& env) {
  const auto resp = CommitCertResp::decode(env.body);
  if (!resp) return;
  if (resp->order_seq <= applied_seq_) return;

  const auto pp_env = Envelope::decode(resp->preprepare_envelope);
  if (!pp_env || pp_env->type != MsgType::kPrePrepare ||
      !verify_envelope(*pp_env, resp->preprepare_envelope)) {
    return;
  }
  auto pp = PrePrepare::decode(pp_env->body);
  if (!pp || pp->order_seq != resp->order_seq) return;
  if (!sender_is(*pp_env, pp->leader)) return;
  if (pp->rows.size() != config_.n() || resp->rows.size() != config_.n()) {
    return;
  }
  // The envelope may be delta-encoded; the response attaches the full
  // row set, authenticated by the leader-signed matrix digest.
  for (ReplicaId r = 0; r < config_.n(); ++r) {
    const auto& row = resp->rows[r];
    if (!row) continue;
    if (row->replica != r || row->aru.size() != config_.n() ||
        !verify_row(*row, r)) {
      return;
    }
  }
  if (PrePrepare::matrix_digest_of(resp->rows) != pp->matrix_digest) return;
  pp->rows = resp->rows;
  pp->unchanged.clear();
  const crypto::Digest digest = pp->digest();

  std::set<ReplicaId> committers;
  for (const auto& commit_bytes : resp->commit_envelopes) {
    const auto commit_env = Envelope::decode(commit_bytes);
    if (!commit_env || commit_env->type != MsgType::kCommit ||
        !verify_envelope(*commit_env, commit_bytes)) {
      continue;
    }
    const auto commit = PrepareOrCommit::decode(commit_env->body);
    if (!commit || commit->order_seq != resp->order_seq) continue;
    if (!sender_is(*commit_env, commit->replica)) continue;
    if (commit->view != pp->view || commit->preprepare_digest != digest) continue;
    committers.insert(commit->replica);
  }
  if (committers.size() < config_.quorum()) return;

  OrderSlot& slot = slots_[resp->order_seq];
  slot.preprepare = *pp;
  slot.preprepare_envelope = resp->preprepare_envelope;
  slot.digest = digest;
  slot.view = pp->view;
  slot.prepared = true;
  slot.committed = true;
  highest_committed_ = std::max(highest_committed_, resp->order_seq);
  try_apply();
}

// ---- state transfer (paper §III-A) --------------------------------------------

util::Bytes Replica::snapshot_bundle() const {
  util::ByteWriter w;
  w.u32(config_.n());
  for (const auto v : exec_aru_) w.u64(v);
  w.u32(static_cast<std::uint32_t>(executed_clients_.size()));
  for (const auto& [client, seq] : executed_clients_) {
    w.str(client);
    w.u64(seq);
  }
  w.blob(app_.snapshot());
  return w.take();
}

void Replica::install_bundle(std::uint64_t applied_seq,
                             std::span<const std::uint8_t> blob) {
  util::ByteReader r(blob);
  const std::uint32_t n = r.u32();
  if (n != config_.n()) throw util::SerializationError("bundle width mismatch");
  exec_aru_.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) exec_aru_[i] = r.u64();
  executed_clients_.clear();
  const std::uint32_t clients = r.u32();
  for (std::uint32_t i = 0; i < clients; ++i) {
    const std::string client = r.str();
    executed_clients_[client] = r.u64();
  }
  const util::Bytes app_blob = r.blob();
  r.expect_done();
  app_.restore(app_blob);
  applied_seq_ = applied_seq;
  highest_committed_ = std::max(highest_committed_, applied_seq);
  // Receipt cursors start from the execution state: everything at or
  // below exec_aru is already reflected in the restored snapshot, so
  // acknowledging it is sound and keeps our PO-ARUs meaningful. The
  // PO logs re-base onto the installed position — without this, fresh
  // PO-Requests near exec_aru would land past the insert horizon of a
  // stale base and be dropped forever.
  for (ReplicaId i = 0; i < config_.n(); ++i) {
    recv_aru_[i] = std::max(recv_aru_[i], exec_aru_[i]);
    po_log_[i] = PoLog{};
    po_log_[i].base = exec_aru_[i] + 1;
  }
}

void Replica::begin_state_transfer() {
  // A gap in the committed order that peers can no longer serve (their
  // retention window moved on, or we were out too long): rebuild from a
  // checkpoint exactly as a proactive recovery would (§III-A).
  log_.warn("ordering gap unrecoverable from peers; rejoining via state "
            "transfer");
  recover();
}

void Replica::recovery_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || !running_ || !recovering_) return;
  StateReq req;
  req.nonce = state_nonce_;
  ++stats_.state_reqs_sent;
  send_envelope(MsgType::kStateReq, req.encode());
  sim_.schedule_after(config_.state_retry_interval,
                      [this, epoch] { recovery_tick(epoch); });
}

void Replica::handle_state_req(const Envelope& env) {
  const auto req = StateReq::decode(env.body);
  if (!req) return;

  // Serve the latest checkpoint we can hand over as a stable blob.
  StateResp resp;
  resp.nonce = req->nonce;
  resp.view = view_;
  if (stable_checkpoint_ && checkpoint_blobs_.count(stable_checkpoint_->seq)) {
    resp.applied_seq = stable_checkpoint_->seq;
    resp.snapshot_digest = stable_checkpoint_->digest;
  } else if (!checkpoint_blobs_.empty()) {
    const auto& [seq, blob] = *checkpoint_blobs_.rbegin();
    resp.applied_seq = seq;
    resp.snapshot_digest = crypto::sha256(blob);
  } else {
    return;
  }

  if (const auto r = sender_id(env)) {
    send_envelope(MsgType::kStateResp, resp.encode(), *r);
  }
}

void Replica::handle_state_resp(const Envelope& env) {
  if (!recovering_ || chosen_state_) return;
  const auto resp = StateResp::decode(env.body);
  if (!resp || resp->nonce != state_nonce_) return;
  const auto sender = sender_id(env);
  if (!sender) return;
  state_resps_[*sender] = *resp;

  // f+1 matching (applied_seq, digest) pairs vouch for a state at least
  // one correct replica holds.
  std::map<std::pair<std::uint64_t, crypto::Digest>, std::uint32_t> tally;
  for (const auto& [replica, r] : state_resps_) {
    ++tally[std::make_pair(r.applied_seq, r.snapshot_digest)];
  }
  for (const auto& [key, count] : tally) {
    if (count < config_.f + 1) continue;
    if (chosen_state_ && key.first <= chosen_state_->applied_seq) continue;
    StateResp chosen;
    chosen.applied_seq = key.first;
    chosen.snapshot_digest = key.second;
    // Adopt the (f+1)-th largest reported view: at least one correct
    // replica is at or above it.
    std::vector<std::uint64_t> views;
    for (const auto& [replica, r] : state_resps_) views.push_back(r.view);
    std::sort(views.begin(), views.end(), std::greater<>());
    chosen.view = views[std::min<std::size_t>(config_.f, views.size() - 1)];
    chosen_state_ = chosen;

    SnapshotReq sreq;
    sreq.nonce = state_nonce_;
    sreq.applied_seq = chosen.applied_seq;
    send_envelope(MsgType::kSnapshotReq, sreq.encode());
  }
}

void Replica::handle_snapshot_req(const Envelope& env) {
  const auto req = SnapshotReq::decode(env.body);
  if (!req) return;
  const auto blob_it = checkpoint_blobs_.find(req->applied_seq);
  if (blob_it == checkpoint_blobs_.end()) return;

  SnapshotResp resp;
  resp.nonce = req->nonce;
  resp.applied_seq = req->applied_seq;
  resp.blob = blob_it->second;
  if (const auto r = sender_id(env)) {
    send_envelope(MsgType::kSnapshotResp, resp.encode(), *r);
  }
}

void Replica::handle_snapshot_resp(const Envelope& env) {
  if (!recovering_ || !chosen_state_) return;
  const auto resp = SnapshotResp::decode(env.body);
  if (!resp || resp->nonce != state_nonce_) return;
  if (resp->applied_seq != chosen_state_->applied_seq) return;
  if (crypto::sha256(resp->blob) != chosen_state_->snapshot_digest) return;

  try {
    install_bundle(resp->applied_seq, resp->blob);
  } catch (const util::SerializationError&) {
    return;
  }
  view_ = chosen_state_->view;
  recovering_ = false;
  ++stats_.state_transfers;
  stats_.state_transfer_bytes += resp->blob.size();
  state_resps_.clear();
  chosen_state_.reset();
  checkpoint_blobs_[applied_seq_] = snapshot_bundle();
  log_.info("state transfer complete: applied_seq ", applied_seq_, ", view ",
            view_);
  app_.on_state_transfer();
  arm_timers();
  // Signal last, with the replica fully rejoined: observers may react
  // by taking other replicas down (the recovery scheduler's gate).
  if (recovery_done_observer_) recovery_done_observer_();
}

}  // namespace spire::prime
