#include "prime/transport.hpp"

namespace spire::prime {

class LoopbackFabric::Handle : public ReplicaTransport {
 public:
  Handle(LoopbackFabric& fabric, ReplicaId id) : fabric_(fabric), id_(id) {}

  void send(ReplicaId to, util::Bytes envelope) override {
    fabric_.deliver(id_, to, std::move(envelope));
  }

  void broadcast(util::Bytes envelope) override {
    fabric_.deliver_all(id_, std::move(envelope));
  }

 private:
  LoopbackFabric& fabric_;
  ReplicaId id_;
};

std::unique_ptr<ReplicaTransport> LoopbackFabric::transport_for(ReplicaId id) {
  return std::make_unique<Handle>(*this, id);
}

}  // namespace spire::prime
