#include "prime/transport.hpp"

namespace spire::prime {

class LoopbackFabric::Handle : public ReplicaTransport {
 public:
  Handle(LoopbackFabric& fabric, ReplicaId id) : fabric_(fabric), id_(id) {}

  void send(ReplicaId to, const util::Bytes& envelope) override {
    fabric_.deliver(id_, to, envelope);
  }

  void broadcast(const util::Bytes& envelope) override {
    fabric_.deliver_all(id_, envelope);
  }

 private:
  LoopbackFabric& fabric_;
  ReplicaId id_;
};

std::unique_ptr<ReplicaTransport> LoopbackFabric::transport_for(ReplicaId id) {
  return std::make_unique<Handle>(*this, id);
}

}  // namespace spire::prime
