// Prime BFT protocol messages.
//
// The reproduction implements Prime's structure (Amir et al., "Prime:
// Byzantine Replication Under Attack"), as deployed in Spire:
//
//   ClientUpdate -> PO-Request (origin broadcasts batched updates)
//                -> PO-ARU    (cumulative per-origin acknowledgment;
//                              PO-Acks are folded into the cumulative
//                              vector, see DESIGN.md)
//                -> Pre-Prepare (leader's matrix of signed PO-ARUs)
//                -> Prepare / Commit (PBFT-style agreement on the matrix)
//                -> deterministic execution from matrix eligibility.
//
// Plus the machinery the deployments exercised: suspect-leader /
// view-change messages for the bounded-delay guarantee, reconciliation
// fetches, and the replication-level state-transfer signal of §III-A.
//
// Every message travels in a signed Envelope; PO-ARUs and ViewStates
// additionally carry embedded signatures so they can be re-shipped
// inside Pre-Prepares and New-Views and verified independently.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/keyring.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace spire::prime {

using ReplicaId = std::uint32_t;

enum class MsgType : std::uint8_t {
  kClientUpdate = 1,
  kPoRequest = 2,
  kPoAru = 3,
  kPrePrepare = 4,
  kPrepare = 5,
  kCommit = 6,
  kNewLeader = 7,
  kViewState = 8,
  kNewView = 9,
  kPoReqFetch = 10,
  kPoReqResp = 11,
  kStateReq = 12,
  kStateResp = 13,
  kSnapshotReq = 14,
  kSnapshotResp = 15,
  kCommitCertReq = 16,
  kCommitCertResp = 17,
  kCheckpoint = 18,
};

/// Outer, signed envelope for every Prime message.
struct Envelope {
  MsgType type = MsgType::kClientUpdate;
  std::string sender;  ///< identity, e.g. "prime/3" or "client/hmi"
  util::Bytes body;
  crypto::Signature signature;

  /// Exact wire size of encode(); used as a reserve() hint.
  [[nodiscard]] std::size_t encoded_size() const {
    return 1 + 4 + sender.size() + 4 + body.size() + sizeof(signature.mac);
  }
  [[nodiscard]] util::Bytes signed_bytes() const;
  [[nodiscard]] util::Bytes encode() const;
  static std::optional<Envelope> decode(std::span<const std::uint8_t> data);

  /// Builds and signs an envelope in one step.
  static Envelope make(MsgType type, const crypto::Signer& signer,
                       util::Bytes body);
  /// Signs and encodes in a single serialization pass: the wire form is
  /// signed_bytes() || signature, so the prefix is written once, signed
  /// in place, and the signature appended — one allocation total.
  static util::Bytes seal(MsgType type, const crypto::Signer& signer,
                          std::span<const std::uint8_t> body);
  [[nodiscard]] bool verify(const crypto::Verifier& verifier) const;
};

// ---- bodies ---------------------------------------------------------------

/// An end-client operation (HMI command, PLC status report).
struct ClientUpdate {
  std::string client;
  std::uint64_t client_seq = 0;
  util::Bytes payload;
  crypto::Signature client_sig;

  [[nodiscard]] util::Bytes signed_bytes() const;
  void sign(const crypto::Signer& signer);
  [[nodiscard]] bool verify(const crypto::Verifier& verifier) const;

  void encode(util::ByteWriter& w) const;
  static ClientUpdate decode(util::ByteReader& r);
};

struct PoRequest {
  ReplicaId origin = 0;
  std::uint64_t po_seq = 0;
  std::vector<ClientUpdate> updates;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<PoRequest> decode(std::span<const std::uint8_t> data);
};

/// Cumulative acknowledgment: aru[i] = highest contiguous PO-Request
/// sequence received from origin i. Carries an embedded signature so
/// leaders can embed it in Pre-Prepare matrices.
struct PoAru {
  ReplicaId replica = 0;
  std::uint64_t aru_seq = 0;  ///< freshness counter
  std::vector<std::uint64_t> aru;
  crypto::Signature sig;

  [[nodiscard]] util::Bytes signed_bytes() const;
  void sign(const crypto::Signer& signer);
  [[nodiscard]] bool verify_embedded(const crypto::Verifier& verifier,
                                     const std::string& identity) const;

  void encode(util::ByteWriter& w) const;
  static PoAru decode(util::ByteReader& r);
  [[nodiscard]] util::Bytes encode_standalone() const;
  static std::optional<PoAru> decode_standalone(
      std::span<const std::uint8_t> data);
};

/// The leader's ordered proposal: a matrix of the freshest signed
/// PO-ARUs it holds (one optional row per replica).
struct PrePrepare {
  ReplicaId leader = 0;
  std::uint64_t view = 0;
  std::uint64_t order_seq = 0;
  std::vector<std::optional<PoAru>> rows;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<PrePrepare> decode(std::span<const std::uint8_t> data);
  /// Digest that Prepare/Commit messages agree on.
  [[nodiscard]] crypto::Digest digest() const;
};

struct PrepareOrCommit {
  ReplicaId replica = 0;
  std::uint64_t view = 0;
  std::uint64_t order_seq = 0;
  crypto::Digest preprepare_digest{};

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<PrepareOrCommit> decode(
      std::span<const std::uint8_t> data);
};

struct NewLeader {
  ReplicaId replica = 0;
  std::uint64_t proposed_view = 0;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<NewLeader> decode(std::span<const std::uint8_t> data);
};

/// A self-certifying prepared certificate: the old-view Pre-Prepare
/// envelope plus a quorum of matching Prepare envelopes. Slots that
/// might have committed anywhere are exactly the slots some member of
/// any view-change quorum holds prepared (quorum intersection), so
/// carrying these lets the new leader re-propose them instead of
/// abandoning possibly-executed work — the PBFT-style safety rule.
struct PreparedProof {
  std::uint64_t order_seq = 0;
  util::Bytes preprepare_envelope;
  std::vector<util::Bytes> prepare_envelopes;

  void encode(util::ByteWriter& w) const;
  static PreparedProof decode(util::ByteReader& r);
};

/// Per-replica ordering state reported to the new leader during a view
/// change; embedded-signed so the NewView can prove its start_seq.
struct ViewState {
  ReplicaId replica = 0;
  std::uint64_t view = 0;
  std::uint64_t max_prepared = 0;
  std::uint64_t max_committed = 0;  ///< the reporter's applied_seq
  std::vector<PreparedProof> prepared;  ///< prepared-uncommitted slots
  crypto::Signature sig;

  [[nodiscard]] util::Bytes signed_bytes() const;
  void sign(const crypto::Signer& signer);
  [[nodiscard]] bool verify_embedded(const crypto::Verifier& verifier,
                                     const std::string& identity) const;

  void encode(util::ByteWriter& w) const;
  static ViewState decode(util::ByteReader& r);
};

struct NewView {
  ReplicaId leader = 0;
  std::uint64_t view = 0;
  std::uint64_t start_seq = 0;
  std::vector<ViewState> justification;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<NewView> decode(std::span<const std::uint8_t> data);
};

struct PoReqFetch {
  ReplicaId origin = 0;
  std::uint64_t po_seq = 0;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<PoReqFetch> decode(std::span<const std::uint8_t> data);
};

/// Re-serves the origin-signed PO-Request envelope verbatim.
struct PoReqResp {
  ReplicaId origin = 0;
  std::uint64_t po_seq = 0;
  util::Bytes envelope;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<PoReqResp> decode(std::span<const std::uint8_t> data);
};

struct StateReq {
  std::uint64_t nonce = 0;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<StateReq> decode(std::span<const std::uint8_t> data);
};

/// Execution-state summary; a recovering replica adopts the state
/// vouched for by f+1 matching responses, then pulls the snapshot blob.
struct StateResp {
  std::uint64_t nonce = 0;
  std::uint64_t view = 0;
  std::uint64_t applied_seq = 0;
  crypto::Digest snapshot_digest{};

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<StateResp> decode(std::span<const std::uint8_t> data);
};

struct SnapshotReq {
  std::uint64_t nonce = 0;
  std::uint64_t applied_seq = 0;  ///< checkpoint boundary being requested

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<SnapshotReq> decode(std::span<const std::uint8_t> data);
};

struct SnapshotResp {
  std::uint64_t nonce = 0;
  std::uint64_t applied_seq = 0;
  util::Bytes blob;  ///< exec cursors + application snapshot (see replica.cpp)

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<SnapshotResp> decode(std::span<const std::uint8_t> data);
};

struct CommitCertReq {
  std::uint64_t order_seq = 0;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<CommitCertReq> decode(std::span<const std::uint8_t> data);
};

/// A committed Pre-Prepare plus a commit quorum, served verbatim.
struct CommitCertResp {
  std::uint64_t order_seq = 0;
  util::Bytes preprepare_envelope;
  std::vector<util::Bytes> commit_envelopes;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<CommitCertResp> decode(
      std::span<const std::uint8_t> data);
};

/// Periodic execution checkpoint; f+1 matching votes make a checkpoint
/// stable, and stable checkpoints anchor recovery state transfer.
struct Checkpoint {
  ReplicaId replica = 0;
  std::uint64_t applied_seq = 0;
  crypto::Digest snapshot_digest{};
  crypto::Signature sig;

  [[nodiscard]] util::Bytes signed_bytes() const;
  void sign(const crypto::Signer& signer);
  [[nodiscard]] bool verify_embedded(const crypto::Verifier& verifier,
                                     const std::string& identity) const;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<Checkpoint> decode(std::span<const std::uint8_t> data);
};

/// Identity helpers.
[[nodiscard]] std::string replica_identity(ReplicaId id);

}  // namespace spire::prime
