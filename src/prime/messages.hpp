// Prime BFT protocol messages.
//
// The reproduction implements Prime's structure (Amir et al., "Prime:
// Byzantine Replication Under Attack"), as deployed in Spire:
//
//   ClientUpdate -> PO-Request (origin broadcasts batched updates)
//                -> PO-ARU    (cumulative per-origin acknowledgment;
//                              PO-Acks are folded into the cumulative
//                              vector, see DESIGN.md)
//                -> Pre-Prepare (leader's matrix of signed PO-ARUs)
//                -> Prepare / Commit (PBFT-style agreement on the matrix)
//                -> deterministic execution from matrix eligibility.
//
// Plus the machinery the deployments exercised: suspect-leader /
// view-change messages for the bounded-delay guarantee, reconciliation
// fetches, and the replication-level state-transfer signal of §III-A.
//
// Every message travels in a signed Envelope; PO-ARUs and ViewStates
// additionally carry embedded signatures so they can be re-shipped
// inside Pre-Prepares and New-Views and verified independently.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/keyring.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace spire::prime {

using ReplicaId = std::uint32_t;

enum class MsgType : std::uint8_t {
  kClientUpdate = 1,
  kPoRequest = 2,
  kPoAru = 3,
  kPrePrepare = 4,
  kPrepare = 5,
  kCommit = 6,
  kNewLeader = 7,
  kViewState = 8,
  kNewView = 9,
  kPoReqFetch = 10,
  kPoReqResp = 11,
  kStateReq = 12,
  kStateResp = 13,
  kSnapshotReq = 14,
  kSnapshotResp = 15,
  kCommitCertReq = 16,
  kCommitCertResp = 17,
  kCheckpoint = 18,
  kMatrixFetch = 19,
  kMatrixResp = 20,
};

inline constexpr std::uint8_t kMaxMsgType = 20;
/// High bit of the wire type byte: the envelope carries a Merkle
/// inclusion proof and its signature covers the batch root.
inline constexpr std::uint8_t kBatchedFlag = 0x80;
inline constexpr std::size_t kMaxBatchDepth = 16;

/// Merkle inclusion proof for a batch-signed envelope: the signature
/// covers merkle_root_message(fold(leaf, index, path)) where leaf is
/// the hash of this envelope's signed prefix.
struct BatchProof {
  std::uint32_t index = 0;
  std::vector<crypto::Digest> path;
};

/// Outer, signed envelope for every Prime message.
struct Envelope {
  MsgType type = MsgType::kClientUpdate;
  std::string sender;  ///< identity, e.g. "prime/3" or "client/hmi"
  util::Bytes body;
  std::optional<BatchProof> batch;  ///< present iff batch-signed
  crypto::Signature signature;

  /// Exact wire size of encode(); used as a reserve() hint.
  [[nodiscard]] std::size_t encoded_size() const {
    return 1 + 4 + sender.size() + 4 + body.size() +
           (batch ? 4 + 1 + 32 * batch->path.size() : 0) +
           sizeof(signature.mac);
  }
  /// The signed prefix for a solo envelope, and the Merkle-leaf
  /// preimage for a batched one (the flagged type byte is included, so
  /// a batched prefix can never double as a solo signed message).
  [[nodiscard]] util::Bytes signed_bytes() const;
  [[nodiscard]] util::Bytes encode() const;
  static std::optional<Envelope> decode(std::span<const std::uint8_t> data);

  /// Builds and signs an envelope in one step.
  static Envelope make(MsgType type, const crypto::Signer& signer,
                       util::Bytes body);
  /// Signs and encodes in a single serialization pass: the wire form is
  /// signed_bytes() || signature, so the prefix is written once, signed
  /// in place, and the signature appended — one allocation total.
  static util::Bytes seal(MsgType type, const crypto::Signer& signer,
                          std::span<const std::uint8_t> body);

  /// One unit of a Merkle-signed send batch.
  struct BatchItem {
    MsgType type = MsgType::kClientUpdate;
    std::span<const std::uint8_t> body;
  };
  /// Seals every item with ONE signature: builds a Merkle tree over the
  /// per-item signed prefixes, signs the root, and emits each wire as
  /// prefix || inclusion proof || root signature.
  static std::vector<util::Bytes> seal_batch(
      const crypto::Signer& signer, std::span<const BatchItem> items);

  /// Verifies a solo signature, or folds the inclusion path and
  /// verifies the root signature for a batched envelope.
  [[nodiscard]] bool verify(const crypto::Verifier& verifier) const;
};

// ---- bodies ---------------------------------------------------------------

/// An end-client operation (HMI command, PLC status report).
struct ClientUpdate {
  std::string client;
  std::uint64_t client_seq = 0;
  util::Bytes payload;
  crypto::Signature client_sig;

  [[nodiscard]] util::Bytes signed_bytes() const;
  void sign(const crypto::Signer& signer);
  [[nodiscard]] bool verify(const crypto::Verifier& verifier) const;

  void encode(util::ByteWriter& w) const;
  static ClientUpdate decode(util::ByteReader& r);
};

struct PoRequest {
  ReplicaId origin = 0;
  std::uint64_t po_seq = 0;
  std::vector<ClientUpdate> updates;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<PoRequest> decode(std::span<const std::uint8_t> data);
};

/// Cumulative acknowledgment: aru[i] = highest contiguous PO-Request
/// sequence received from origin i. Carries an embedded signature so
/// leaders can embed it in Pre-Prepare matrices.
///
/// Encode-once: `raw` caches the standalone wire encoding (fields plus
/// embedded signature). sign() and decode() fill it, so a row is
/// serialized exactly once in its lifetime — PrePrepare::encode()
/// splices the cached bytes, matrix digests hash them directly, and
/// verify_row short-circuits on raw-byte equality with an
/// already-accepted copy. Rows are shared immutably via
/// PrePrepare::Row (shared_ptr<const PoAru>).
struct PoAru {
  ReplicaId replica = 0;
  std::uint64_t aru_seq = 0;  ///< freshness counter
  std::vector<std::uint64_t> aru;
  crypto::Signature sig;
  util::Bytes raw;  ///< cached standalone encoding; not a wire field

  [[nodiscard]] util::Bytes signed_bytes() const;
  /// Signs and refreshes the cached encoding.
  void sign(const crypto::Signer& signer);
  [[nodiscard]] bool verify_embedded(const crypto::Verifier& verifier,
                                     const std::string& identity) const;

  /// Splices `raw` when cached, else re-serializes field by field.
  void encode(util::ByteWriter& w) const;
  /// Decodes and captures the consumed wire bytes into `raw`.
  static PoAru decode(util::ByteReader& r);
  void refresh_raw();
  [[nodiscard]] util::Bytes encode_standalone() const;
  static std::optional<PoAru> decode_standalone(
      std::span<const std::uint8_t> data);
};

/// The leader's ordered proposal: a matrix of the freshest signed
/// PO-ARUs it holds (one shared row per replica, null = absent).
///
/// Wire format (delta matrices): the header carries the digest of the
/// FULL matrix, then one tag per row — 0 absent, 1 row bytes inline,
/// 2 "unchanged since this leader's previous proposal". Followers
/// reconstruct tag-2 rows from the previous accepted proposal and
/// check the reconstruction against the leader-signed matrix digest;
/// on mismatch (or a missing prior) they fall back to fetching the
/// full matrix. The agreement digest() covers header + matrix digest
/// only, so delta and full encodings of the same proposal agree.
struct PrePrepare {
  using Row = std::shared_ptr<const PoAru>;

  ReplicaId leader = 0;
  std::uint64_t view = 0;
  std::uint64_t order_seq = 0;
  std::vector<Row> rows;
  /// Decode side: non-empty iff any row arrived as tag 2; entry r is 1
  /// when rows[r] must be taken from the prior proposal. Cleared once
  /// the matrix is reconstructed and accepted.
  std::vector<std::uint8_t> unchanged;
  /// Digest of the full row matrix: claimed (decode) or computed
  /// lazily from rows (encode/digest); zero means "not yet computed".
  mutable crypto::Digest matrix_digest{};

  [[nodiscard]] bool is_delta() const { return !unchanged.empty(); }
  /// matrix_digest, computing it from rows if unset.
  [[nodiscard]] const crypto::Digest& matrix() const;
  /// Canonical digest over per-row presence + raw row bytes.
  [[nodiscard]] static crypto::Digest matrix_digest_of(
      const std::vector<Row>& rows);
  /// Canonical full-rows attachment encoding (used by MatrixResp and
  /// prepared/commit certificates).
  static void encode_rows(util::ByteWriter& w, const std::vector<Row>& rows);
  static std::vector<Row> decode_rows(util::ByteReader& r);

  [[nodiscard]] util::Bytes encode() const;
  /// Delta encoding against the same leader's previous proposal: rows
  /// pointer-equal to `prev` are sent as tag 2.
  [[nodiscard]] util::Bytes encode_delta(const std::vector<Row>& prev) const;
  static std::optional<PrePrepare> decode(std::span<const std::uint8_t> data);
  /// Digest that Prepare/Commit messages agree on; covers the header
  /// and the full-matrix digest, independent of delta vs full wire.
  [[nodiscard]] crypto::Digest digest() const;
};

struct PrepareOrCommit {
  ReplicaId replica = 0;
  std::uint64_t view = 0;
  std::uint64_t order_seq = 0;
  crypto::Digest preprepare_digest{};

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<PrepareOrCommit> decode(
      std::span<const std::uint8_t> data);
};

struct NewLeader {
  ReplicaId replica = 0;
  std::uint64_t proposed_view = 0;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<NewLeader> decode(std::span<const std::uint8_t> data);
};

/// A self-certifying prepared certificate: the old-view Pre-Prepare
/// envelope plus a quorum of matching Prepare envelopes. Slots that
/// might have committed anywhere are exactly the slots some member of
/// any view-change quorum holds prepared (quorum intersection), so
/// carrying these lets the new leader re-propose them instead of
/// abandoning possibly-executed work — the PBFT-style safety rule.
struct PreparedProof {
  std::uint64_t order_seq = 0;
  util::Bytes preprepare_envelope;
  std::vector<util::Bytes> prepare_envelopes;
  /// Full row matrix of the Pre-Prepare. The envelope may be
  /// delta-encoded (tag-2 rows reference state the verifier need not
  /// hold), so the proof attaches the rows and the verifier checks
  /// them against the leader-signed matrix digest.
  std::vector<PrePrepare::Row> rows;

  void encode(util::ByteWriter& w) const;
  static PreparedProof decode(util::ByteReader& r);
};

/// Per-replica ordering state reported to the new leader during a view
/// change; embedded-signed so the NewView can prove its start_seq.
struct ViewState {
  ReplicaId replica = 0;
  std::uint64_t view = 0;
  std::uint64_t max_prepared = 0;
  std::uint64_t max_committed = 0;  ///< the reporter's applied_seq
  std::vector<PreparedProof> prepared;  ///< prepared-uncommitted slots
  crypto::Signature sig;

  [[nodiscard]] util::Bytes signed_bytes() const;
  void sign(const crypto::Signer& signer);
  [[nodiscard]] bool verify_embedded(const crypto::Verifier& verifier,
                                     const std::string& identity) const;

  void encode(util::ByteWriter& w) const;
  static ViewState decode(util::ByteReader& r);
};

struct NewView {
  ReplicaId leader = 0;
  std::uint64_t view = 0;
  std::uint64_t start_seq = 0;
  std::vector<ViewState> justification;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<NewView> decode(std::span<const std::uint8_t> data);
};

struct PoReqFetch {
  ReplicaId origin = 0;
  std::uint64_t po_seq = 0;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<PoReqFetch> decode(std::span<const std::uint8_t> data);
};

/// Re-serves the origin-signed PO-Request envelope verbatim.
struct PoReqResp {
  ReplicaId origin = 0;
  std::uint64_t po_seq = 0;
  util::Bytes envelope;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<PoReqResp> decode(std::span<const std::uint8_t> data);
};

struct StateReq {
  std::uint64_t nonce = 0;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<StateReq> decode(std::span<const std::uint8_t> data);
};

/// Execution-state summary; a recovering replica adopts the state
/// vouched for by f+1 matching responses, then pulls the snapshot blob.
struct StateResp {
  std::uint64_t nonce = 0;
  std::uint64_t view = 0;
  std::uint64_t applied_seq = 0;
  crypto::Digest snapshot_digest{};

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<StateResp> decode(std::span<const std::uint8_t> data);
};

struct SnapshotReq {
  std::uint64_t nonce = 0;
  std::uint64_t applied_seq = 0;  ///< checkpoint boundary being requested

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<SnapshotReq> decode(std::span<const std::uint8_t> data);
};

struct SnapshotResp {
  std::uint64_t nonce = 0;
  std::uint64_t applied_seq = 0;
  util::Bytes blob;  ///< exec cursors + application snapshot (see replica.cpp)

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<SnapshotResp> decode(std::span<const std::uint8_t> data);
};

struct CommitCertReq {
  std::uint64_t order_seq = 0;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<CommitCertReq> decode(std::span<const std::uint8_t> data);
};

/// A committed Pre-Prepare plus a commit quorum, served verbatim.
/// Attaches the full row matrix for the same reason as PreparedProof.
struct CommitCertResp {
  std::uint64_t order_seq = 0;
  util::Bytes preprepare_envelope;
  std::vector<util::Bytes> commit_envelopes;
  std::vector<PrePrepare::Row> rows;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<CommitCertResp> decode(
      std::span<const std::uint8_t> data);
};

/// Follower request for the full row matrix of a Pre-Prepare it could
/// not reconstruct from a delta (stale or missing prior proposal).
struct MatrixFetch {
  std::uint64_t view = 0;
  std::uint64_t order_seq = 0;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<MatrixFetch> decode(std::span<const std::uint8_t> data);
};

/// Serves the leader-signed Pre-Prepare envelope verbatim plus the
/// full row matrix; the requester validates the rows against the
/// matrix digest inside the (re-verified) envelope.
struct MatrixResp {
  std::uint64_t view = 0;
  std::uint64_t order_seq = 0;
  util::Bytes preprepare_envelope;
  std::vector<PrePrepare::Row> rows;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<MatrixResp> decode(std::span<const std::uint8_t> data);
};

/// Periodic execution checkpoint; f+1 matching votes make a checkpoint
/// stable, and stable checkpoints anchor recovery state transfer.
struct Checkpoint {
  ReplicaId replica = 0;
  std::uint64_t applied_seq = 0;
  crypto::Digest snapshot_digest{};
  crypto::Signature sig;

  [[nodiscard]] util::Bytes signed_bytes() const;
  void sign(const crypto::Signer& signer);
  [[nodiscard]] bool verify_embedded(const crypto::Verifier& verifier,
                                     const std::string& identity) const;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<Checkpoint> decode(std::span<const std::uint8_t> data);
};

/// Identity helpers.
[[nodiscard]] std::string replica_identity(ReplicaId id);

}  // namespace spire::prime
