// Replicated application interface.
//
// Prime orders ClientUpdates; the application applies them and owns the
// application-level state. Per the paper's key design point (§III-A),
// catch-up after partitions or proactive recovery is NOT done by
// replaying the replication log: the replication layer *signals* the
// application, which then restores from a peer snapshot — or, in the
// SCADA case, can rebuild ground truth by polling field devices.
#pragma once

#include <cstdint>
#include <span>

#include "prime/messages.hpp"

namespace spire::prime {

struct ExecutionInfo {
  std::uint64_t order_seq = 0;   ///< matrix seq that made it eligible
  ReplicaId origin = 0;          ///< preordering replica
  std::uint64_t po_seq = 0;
};

class Application {
 public:
  virtual ~Application() = default;

  /// Applies one ordered, deduplicated client update.
  virtual void apply(const ClientUpdate& update, const ExecutionInfo& info) = 0;

  /// Serializes the full application state.
  [[nodiscard]] virtual util::Bytes snapshot() const = 0;

  /// Replaces the application state from a snapshot (state transfer).
  virtual void restore(std::span<const std::uint8_t> blob) = 0;

  /// Signal from the replication layer (paper §III-A): an
  /// application-level state transfer just completed, so application
  /// state may have jumped arbitrarily (e.g. the HMI must re-render,
  /// pending commands must be discarded).
  virtual void on_state_transfer() {}
};

}  // namespace spire::prime
