// Replica-to-replica transport abstraction.
//
// In deployments, Prime replicas talk over the isolated internal Spines
// network (spire::scada wires that up); unit and property tests use the
// in-memory LoopbackTransport to drive thousands of protocol rounds
// without a network stack.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "prime/messages.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace spire::prime {

class ReplicaTransport {
 public:
  virtual ~ReplicaTransport() = default;

  /// Sends envelope bytes to one replica (best-effort). Takes the
  /// bytes by value so hot paths can move freshly sealed wires straight
  /// into the transport's in-flight storage without a copy.
  virtual void send(ReplicaId to, util::Bytes envelope) = 0;

  /// Sends to every replica except the caller.
  virtual void broadcast(util::Bytes envelope) = 0;
};

/// In-memory transport for tests: delivers through the simulator with a
/// configurable delay, with optional per-link drop/partition control,
/// probabilistic loss, and delivery jitter (fault injection).
class LoopbackFabric {
 public:
  LoopbackFabric(sim::Simulator& sim, std::size_t n,
                 sim::Time latency = 200 /*us*/)
      : sim_(sim), inboxes_(n), latency_(latency), blocked_(n, std::vector<bool>(n, false)) {}

  /// Drops each message independently with probability `p` and adds
  /// uniform jitter in [0, max_jitter] to survivors.
  void set_fault_injection(double p, sim::Time max_jitter, std::uint64_t seed) {
    loss_probability_ = p;
    max_jitter_ = max_jitter;
    fault_rng_ = sim::Rng(seed);
  }

  using Inbox = std::function<void(const util::Bytes&)>;

  void attach(ReplicaId id, Inbox inbox) { inboxes_.at(id) = std::move(inbox); }

  /// Blocks/unblocks the directed link from -> to (partition injection).
  void set_blocked(ReplicaId from, ReplicaId to, bool blocked) {
    blocked_.at(from).at(to) = blocked;
  }

  /// Isolates a replica entirely in both directions.
  void isolate(ReplicaId id, bool isolated) {
    for (std::size_t j = 0; j < inboxes_.size(); ++j) {
      blocked_.at(id).at(j) = isolated;
      blocked_.at(j).at(id) = isolated;
    }
  }

  void deliver(ReplicaId from, ReplicaId to, util::Bytes envelope) {
    deliver_shared(from, to,
                   std::make_shared<const util::Bytes>(std::move(envelope)));
  }

  /// Fans an envelope out to every replica but `from` with ONE copy of
  /// the bytes, shared by all the in-flight delivery closures.
  void deliver_all(ReplicaId from, util::Bytes envelope) {
    const auto shared = std::make_shared<const util::Bytes>(std::move(envelope));
    for (ReplicaId to = 0; to < inboxes_.size(); ++to) {
      if (to != from) deliver_shared(from, to, shared);
    }
  }

  [[nodiscard]] std::uint64_t messages_dropped() const {
    return messages_dropped_;
  }

  [[nodiscard]] std::size_t size() const { return inboxes_.size(); }

  /// Creates the per-replica transport handle.
  std::unique_ptr<ReplicaTransport> transport_for(ReplicaId id);

 private:
  class Handle;

  void deliver_shared(ReplicaId from, ReplicaId to,
                      std::shared_ptr<const util::Bytes> envelope) {
    if (to >= inboxes_.size() || blocked_[from][to]) return;
    if (loss_probability_ > 0 && fault_rng_.chance(loss_probability_)) {
      ++messages_dropped_;
      return;
    }
    sim::Time delay = latency_;
    if (max_jitter_ > 0) delay += fault_rng_.uniform(0, max_jitter_);
    sim_.schedule_after(delay, [this, to, envelope = std::move(envelope)] {
      if (inboxes_[to]) inboxes_[to](*envelope);
    });
  }

  sim::Simulator& sim_;
  std::vector<Inbox> inboxes_;
  sim::Time latency_;
  std::vector<std::vector<bool>> blocked_;
  double loss_probability_ = 0;
  sim::Time max_jitter_ = 0;
  sim::Rng fault_rng_{0};
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace spire::prime
