// Proactive recovery scheduler (paper §II).
//
// Periodically takes one replica down, wipes it, restarts it with a
// fresh diversity variant, and waits for its application-level state
// transfer to finish before moving to the next — so at most k replicas
// are ever recovering simultaneously, the regime n = 3f + 2k + 1 is
// sized for. With f = 1, k = 1 this is the six-replica configuration
// used in the power-plant deployment (§V).
#pragma once

#include <cstdint>
#include <vector>

#include "prime/replica.hpp"
#include "sim/simulator.hpp"

namespace spire::prime {

struct RecoveryConfig {
  /// Time between the start of consecutive recoveries.
  sim::Time period = 30 * sim::kSecond;
  /// How long a replica stays down before it begins rejoining (reimage
  /// + restart time on real hardware).
  sim::Time downtime = 2 * sim::kSecond;
};

class ProactiveRecovery {
 public:
  ProactiveRecovery(sim::Simulator& sim, std::vector<Replica*> replicas,
                    RecoveryConfig config);

  /// Begins the rejuvenation cycle (round-robin over replicas).
  void start();
  void stop();

  [[nodiscard]] std::uint64_t recoveries_completed() const {
    return completed_;
  }

 private:
  void tick();

  sim::Simulator& sim_;
  std::vector<Replica*> replicas_;
  RecoveryConfig config_;
  bool running_ = false;
  std::size_t next_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace spire::prime
