// Proactive recovery scheduler (paper §II).
//
// Completion-gated, epoch-guarded rejuvenation: the scheduler takes a
// replica down, wipes it, restarts it with a fresh diversity variant,
// and opens the next recovery slot only once the target's
// application-level state transfer has actually finished (the replica's
// recovery-done signal), so at most `max_concurrent` (= k) replicas are
// ever down or recovering simultaneously — the invariant the sizing
// rule n = 3f + 2k + 1 depends on. With f = 1, k = 1 this is the
// six-replica configuration used in the power-plant deployment (§V).
//
// Guard rails:
//  * a generation counter orphans the periodic tick chain across
//    stop()/start(), so a restart never spawns a second concurrent
//    chain (double-rate takedowns);
//  * per-recovery attempt tokens keep the downtime / deadline lambdas
//    of one in-flight recovery valid across stop(), so a replica taken
//    down just before stop() is still brought back (no orphaned,
//    permanently-shut-down replica);
//  * a transfer deadline with exponential backoff re-issues recover()
//    when a rejoining replica stalls (e.g. partitioned mid-transfer);
//  * replicas that are down or recovering for reasons outside the
//    scheduler (crash injection, self-initiated state transfer) occupy
//    recovery slots too, keeping the global simultaneously-disturbed
//    count within k.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "prime/replica.hpp"
#include "sim/simulator.hpp"

namespace spire::prime {

struct RecoveryConfig {
  /// Time between the start of consecutive recoveries.
  sim::Time period = 30 * sim::kSecond;
  /// How long a replica stays down before it begins rejoining (reimage
  /// + restart time on real hardware).
  sim::Time downtime = 2 * sim::kSecond;
  /// Hard cap on simultaneous in-flight recoveries — the k the
  /// deployment was sized for. Takedown ticks that would exceed it are
  /// deferred until a completion opens a slot.
  std::uint32_t max_concurrent = 1;
  /// Budget for a rejoining replica's state transfer. On expiry the
  /// scheduler re-issues recover() (fresh nonce, fresh transfer) after
  /// a backoff.
  sim::Time transfer_deadline = 10 * sim::kSecond;
  /// Initial retry backoff; doubles per consecutive retry of the same
  /// recovery, capped at 8x. Retries never give up: a replica the
  /// scheduler took down is always driven back into the membership.
  sim::Time retry_backoff = 1 * sim::kSecond;
};

/// Observability for the rejuvenation cycle (printed by the soak/fig2
/// benches, asserted by tests).
struct RecoveryStats {
  std::uint64_t takedowns = 0;   ///< shutdowns initiated by the scheduler
  std::uint64_t completed = 0;   ///< state transfers finished
  std::uint64_t retries = 0;     ///< deadline-expired recover() re-issues
  std::uint64_t deferred_ticks = 0;  ///< period ticks gated by the k cap
  std::uint32_t in_flight_high_water = 0;  ///< max simultaneous disturbed
  sim::Time last_recovery_wall = 0;  ///< takedown -> transfer-complete
  sim::Time max_recovery_wall = 0;
  sim::Time total_recovery_wall = 0;
  std::uint64_t transfer_bytes = 0;  ///< snapshot bytes installed
  std::uint64_t state_reqs = 0;      ///< StateReq (re)transmissions
};

class ProactiveRecovery {
 public:
  ProactiveRecovery(sim::Simulator& sim, std::vector<Replica*> replicas,
                    RecoveryConfig config);
  ~ProactiveRecovery();

  ProactiveRecovery(const ProactiveRecovery&) = delete;
  ProactiveRecovery& operator=(const ProactiveRecovery&) = delete;

  /// Begins the rejuvenation cycle (round-robin over replicas). A
  /// restart resets the rotation and starts a fresh tick chain; ticks
  /// scheduled by a previous run never fire again.
  void start();
  /// Stops scheduling new takedowns. In-flight recoveries are not
  /// abandoned: a target still in its downtime window is recovered
  /// immediately, and one mid-transfer is driven to completion
  /// (deadline/retry chain stays armed), so no replica is left shut
  /// down by a stop() at any instant.
  void stop();

  /// Recoveries whose state transfer finished (not merely started).
  [[nodiscard]] std::uint64_t recoveries_completed() const {
    return stats_.completed;
  }
  [[nodiscard]] const RecoveryStats& stats() const { return stats_; }
  /// Scheduler-tracked recoveries currently in flight.
  [[nodiscard]] std::uint32_t in_flight() const {
    return static_cast<std::uint32_t>(in_flight_.size());
  }
  /// All currently disturbed replicas: scheduler-tracked in-flight plus
  /// replicas down or recovering for external reasons.
  [[nodiscard]] std::uint32_t disturbed() const;

 private:
  /// One scheduler-initiated recovery, from shutdown() to the
  /// recovery-done signal.
  struct InFlight {
    bool down = true;          ///< still in the downtime window
    std::uint64_t attempt = 0; ///< token guarding this entry's lambdas
    sim::Time taken_down_at = 0;
    sim::Time backoff = 0;     ///< next retry delay (doubles, capped)
    std::uint64_t bytes_before = 0;  ///< replica stat snapshots for deltas
    std::uint64_t reqs_before = 0;
  };

  void tick(std::uint64_t gen);
  void schedule_tick(sim::Time delay);
  [[nodiscard]] Replica* pick_target();
  void begin_recovery(Replica* target);
  void bring_up(Replica* target, InFlight& entry);
  void arm_deadline(Replica* target, std::uint64_t attempt, sim::Time delay);
  void on_deadline(Replica* target, std::uint64_t attempt);
  void finish(Replica* target);

  sim::Simulator& sim_;
  std::vector<Replica*> replicas_;
  RecoveryConfig config_;
  bool running_ = false;
  std::uint64_t gen_ = 0;  ///< invalidates the periodic tick chain
  bool tick_pending_ = false;  ///< a gated takedown awaits a free slot
  std::size_t next_ = 0;
  std::uint64_t attempt_counter_ = 0;
  std::map<Replica*, InFlight> in_flight_;
  RecoveryStats stats_;
  obs::Binder metrics_;  ///< exposes stats_ in the metrics registry
};

}  // namespace spire::prime
