// Prime BFT replica.
//
// Implements preordering (PO-Request / cumulative PO-ARU), leader-based
// ordering on matrices of signed PO-ARUs (Pre-Prepare / Prepare /
// Commit with 2f+k+1 quorums out of n = 3f+2k+1), deterministic
// execution by matrix eligibility, checkpointing, reconciliation
// fetches, suspect-leader view changes (the bounded-delay defense), and
// the application-level state-transfer signal that the paper's §III-A
// identifies as essential for a real SCADA deployment.
//
// Documented simplifications vs. full Prime (see DESIGN.md §5):
//  * PO-Acks are folded into the cumulative PO-ARU vector;
//  * the view change collects signed per-replica ordering summaries at
//    the new leader instead of Prime's full VC sub-protocol; quorum
//    intersection (2f+k+1 out of 3f+2k+1) yields the same safety
//    argument;
//  * the delay-attack defense monitors leader heartbeat freshness and
//    own-row turnaround rather than RTT-calibrated expectations.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "crypto/verify_cache.hpp"
#include "obs/metrics.hpp"
#include "prime/application.hpp"
#include "prime/messages.hpp"
#include "prime/transport.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace spire::prime {

struct PrimeConfig {
  std::uint32_t f = 1;  ///< tolerated intrusions
  std::uint32_t k = 0;  ///< simultaneous proactive recoveries

  [[nodiscard]] std::uint32_t n() const { return 3 * f + 2 * k + 1; }
  [[nodiscard]] std::uint32_t quorum() const { return 2 * f + k + 1; }

  sim::Time po_request_interval = 10 * sim::kMillisecond;  ///< batch flush
  sim::Time po_aru_interval = 20 * sim::kMillisecond;
  sim::Time preprepare_interval = 30 * sim::kMillisecond;
  /// Idle heartbeat: leader re-sends a Pre-Prepare at least this often.
  sim::Time leader_heartbeat = 200 * sim::kMillisecond;
  sim::Time suspect_timeout = 1 * sim::kSecond;
  /// Max age of an un-included own PO-ARU before the leader is suspected
  /// (turnaround bound; the Prime delay-attack defense).
  sim::Time turnaround_bound = 800 * sim::kMillisecond;
  sim::Time recon_interval = 50 * sim::kMillisecond;
  sim::Time state_retry_interval = 300 * sim::kMillisecond;
  std::uint64_t checkpoint_interval = 16;  ///< applied matrices per checkpoint
  std::uint64_t ordering_window = 16;      ///< max outstanding Pre-Prepares
  /// Clients whose updates replicas accept (proxies, HMIs, tools).
  std::vector<std::string> client_identities;
};

/// Behaviour override used by the attack framework for a compromised
/// replica. A compromised replica still cannot forge other identities.
enum class ReplicaBehavior {
  kCorrect,
  kCrashed,      ///< sends and processes nothing
  kSilentLeader, ///< correct except: as leader, sends no Pre-Prepares
  kStaleLeader,  ///< as leader, sends Pre-Prepares with empty matrices
};

/// Scripted Byzantine behaviours (adversary v2). Attached to a replica
/// by the attack framework; the replica keeps its own identity and keys
/// but deviates from the protocol in the configured ways — it still
/// cannot forge other replicas' signatures. recover() clears the
/// config: a rejuvenated replica runs a clean code image.
struct ByzantineConfig {
  /// (a) Prime's signature performance attack: as leader, hold every
  /// Pre-Prepare back this long before it reaches the wire. Calibrated
  /// just under `turnaround_bound` the delay is invisible to the
  /// suspicion machinery (that is the point of the bounded-delay
  /// guarantee — the damage is bounded, not zero); above the bound the
  /// TAT defense must evict the leader.
  sim::Time preprepare_delay = 0;
  /// Emit held-back Pre-Prepares pairwise swapped (reordering attack;
  /// implies holding proposals until a pair has accumulated).
  bool reorder_preprepares = false;
  /// (b) Equivocation: as leader, send divergent row matrices for the
  /// same (view, seq) to the two halves of the peer set.
  bool equivocate = false;
  /// (c) Withholding: as leader, never include these replicas' PO-ARU
  /// rows in proposed matrices (starves the victims' updates).
  std::vector<ReplicaId> withhold_victims;
  /// (d) Forged Merkle paths: corrupt the inclusion proof of this
  /// fraction of outgoing batch-signed wires.
  double forge_merkle_rate = 0.0;

  [[nodiscard]] bool active() const {
    return preprepare_delay != 0 || reorder_preprepares || equivocate ||
           !withhold_victims.empty() || forge_merkle_rate > 0.0;
  }
};

struct ReplicaStats {
  std::uint64_t updates_executed = 0;
  std::uint64_t po_requests_sent = 0;
  std::uint64_t preprepares_sent = 0;
  std::uint64_t matrices_applied = 0;
  std::uint64_t view_changes = 0;
  std::uint64_t state_transfers = 0;
  std::uint64_t fetches_sent = 0;
  std::uint64_t dropped_bad_signature = 0;
  std::uint64_t dropped_unknown_client = 0;
  std::uint64_t checkpoints_stable = 0;
  std::uint64_t verify_cache_hits = 0;
  // Ordering fast-path counters (PR 3).
  std::uint64_t stale_po_arus_dropped = 0;    ///< PO-ARUs older than latest
  std::uint64_t recon_fetches_queued = 0;     ///< PO-Request gaps marked wanted
  std::uint64_t recon_fetches_satisfied = 0;  ///< wanted gaps later filled
  std::uint64_t row_verify_short_circuits = 0;  ///< rows matched byte-for-byte
  std::uint64_t matrix_fetches_sent = 0;      ///< delta fallbacks to full fetch
  std::uint64_t batches_sealed = 0;           ///< Merkle-signed send batches
  // Recovery observability (PR 4).
  std::uint64_t state_transfer_bytes = 0;  ///< snapshot bytes installed
  std::uint64_t state_reqs_sent = 0;       ///< StateReq (re)transmissions
  // Adversary v2 (PR 9): suspicion-machinery observability...
  std::uint64_t suspect_ticks = 0;            ///< suspicion poll executions
  std::uint64_t turnaround_suspects = 0;      ///< own-row TAT bound exceeded
  std::uint64_t equivocation_suspects = 0;    ///< f+1 divergent same-view prepares
  std::uint64_t withheld_aru_suspects = 0;    ///< peer PO-ARU aged past bound
  // ...and attacker-side counters (what the Byzantine script did).
  std::uint64_t byz_preprepares_delayed = 0;
  std::uint64_t byz_equivocations_sent = 0;
  std::uint64_t byz_rows_withheld = 0;
  std::uint64_t byz_merkle_paths_forged = 0;
};

class Replica {
 public:
  Replica(sim::Simulator& sim, ReplicaId id, PrimeConfig config,
          const crypto::Keyring& keyring, Application& app,
          std::unique_ptr<ReplicaTransport> transport, sim::Rng rng);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Starts protocol timers. `fresh` replicas begin at the initial
  /// state; call recover() instead when rejoining a running system.
  void start();
  /// Stops all activity and forgets volatile state (proactive-recovery
  /// takedown, or crash injection).
  void shutdown();
  /// Restarts from a clean slate with a new diversity variant and runs
  /// the state-transfer protocol to rejoin (paper §II proactive
  /// recovery; §III-A application-level state transfer).
  void recover();

  /// Feeds a received envelope (from Spines or loopback fabric).
  void on_message(const util::Bytes& envelope_bytes);

  [[nodiscard]] ReplicaId id() const { return id_; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] bool recovering() const { return recovering_; }
  [[nodiscard]] std::uint64_t view() const { return view_; }
  [[nodiscard]] std::uint64_t applied_seq() const { return applied_seq_; }
  [[nodiscard]] std::uint64_t variant() const { return variant_; }
  [[nodiscard]] const ReplicaStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t verify_cache_size() const {
    return verify_cache_.size();
  }
  [[nodiscard]] ReplicaId leader_of(std::uint64_t view) const {
    return static_cast<ReplicaId>(view % config_.n());
  }
  [[nodiscard]] bool is_leader() const { return leader_of(view_) == id_; }

  // ---- attack-framework hooks --------------------------------------------
  void set_behavior(ReplicaBehavior behavior) { behavior_ = behavior; }
  [[nodiscard]] ReplicaBehavior behavior() const { return behavior_; }
  /// Installs a scripted Byzantine behaviour (see ByzantineConfig).
  /// Survives crash/restart; cleared by recover().
  void set_byzantine(ByzantineConfig byz) { byz_ = std::move(byz); }
  [[nodiscard]] const ByzantineConfig& byzantine() const { return byz_; }

  /// Observer invoked on every executed update (benches/tests).
  using ExecuteObserver =
      std::function<void(const ClientUpdate&, const ExecutionInfo&)>;
  void set_execute_observer(ExecuteObserver obs) { observer_ = std::move(obs); }

  /// Observer fired when a recover()'s application-level state transfer
  /// completes (`recovering_` clears). The ProactiveRecovery scheduler
  /// uses it as the completion gate that keeps simultaneous recoveries
  /// within k.
  using RecoveryDoneObserver = std::function<void()>;
  void set_recovery_done_observer(RecoveryDoneObserver obs) {
    recovery_done_observer_ = std::move(obs);
  }

 private:
  // ---- outbound helpers ----
  /// Queues a unit for the current send tick. All units queued within
  /// one simulator timestamp are sealed together under a single Merkle
  /// root signature (batch of one = plain solo seal). Directed sends to
  /// self stay synchronous.
  void send_envelope(MsgType type, util::Bytes body,
                     std::optional<ReplicaId> to = std::nullopt);
  /// Drains send_queue_: seals each batch, self-delivers broadcasts,
  /// hands the wires to the transport by move.
  void flush_sends();

  // ---- identity / verification helpers ----
  /// Precomputed replica identity string (empty for out-of-range ids,
  /// which no verifier knows).
  [[nodiscard]] const std::string& identity_of(ReplicaId r) const;
  /// True iff the envelope's sender is replica `r`.
  [[nodiscard]] bool sender_is(const Envelope& env, ReplicaId r) const;
  /// Reverse lookup: sender identity -> replica id, if any.
  [[nodiscard]] std::optional<ReplicaId> sender_id(const Envelope& env) const;
  /// Cached verification of any signed unit whose wire form is
  /// signed-prefix || 32-byte MAC (envelopes, standalone PO-ARUs).
  /// `unit_bytes` is the full wire form, MAC included. `cacheable`
  /// false skips the verified-digest memo (check and insert) for units
  /// that are consumed exactly once, saving the SHA-256 cache key.
  bool verify_unit(const std::string& identity,
                   std::span<const std::uint8_t> unit_bytes,
                   const crypto::Signature& sig, bool cacheable = true);
  /// Envelope verification memoized through verify_cache_. `raw_bytes`
  /// is the envelope's full wire form (signature included). Batched
  /// envelopes always memoize their root (that is the whole mechanism);
  /// `cacheable` only governs the solo path.
  bool verify_envelope(const Envelope& env,
                       std::span<const std::uint8_t> raw_bytes,
                       bool cacheable = true);
  /// Embedded PO-ARU verification memoized through verify_cache_; rows
  /// re-shipped inside Pre-Prepares hit the entry their standalone
  /// broadcast created.
  bool verify_row(const PoAru& row, ReplicaId r);
  /// Client-signature verification memoized through verify_cache_ (an
  /// update is re-checked at receipt and again inside every PO-Request
  /// that batches it).
  bool verify_client_update(const ClientUpdate& update);
  /// Memoized responsible-replica lookup for a client identity (pure
  /// function of the name; only known clients are cached).
  ReplicaId client_primary(const std::string& client);
  /// on_message body; `pre_verified` is set only for self-delivered
  /// bytes this replica just built and signed itself.
  void process_message(const util::Bytes& envelope_bytes, bool pre_verified);

  // ---- timers ----
  void po_flush_tick(std::uint64_t epoch);
  void po_aru_tick(std::uint64_t epoch);
  void preprepare_tick(std::uint64_t epoch);
  void suspect_tick(std::uint64_t epoch);
  void recon_tick(std::uint64_t epoch);
  void recovery_tick(std::uint64_t epoch);
  void arm_timers();

  // ---- message handlers ----
  void handle_client_update(const Envelope& env);
  void enqueue_for_preorder(ClientUpdate update);
  void drain_preorder_buffer();
  void handle_po_request(const Envelope& env, const util::Bytes& raw);
  void handle_po_aru(const Envelope& env);
  void handle_preprepare(const Envelope& env, const util::Bytes& raw);
  void handle_prepare_or_commit(const Envelope& env, const util::Bytes& raw,
                                bool is_commit);
  void handle_new_leader(const Envelope& env);
  void handle_view_state(const Envelope& env);
  void handle_new_view(const Envelope& env);
  void handle_po_fetch(const Envelope& env);
  void handle_po_resp(const Envelope& env);
  void handle_matrix_fetch(const Envelope& env);
  void handle_matrix_resp(const Envelope& env);
  void handle_state_req(const Envelope& env);
  void handle_state_resp(const Envelope& env);
  void handle_snapshot_req(const Envelope& env);
  void handle_snapshot_resp(const Envelope& env);
  void handle_cert_req(const Envelope& env);
  void handle_cert_resp(const Envelope& env);
  void handle_checkpoint(const Envelope& env, const util::Bytes& raw);

  // ---- protocol steps ----
  void store_po_request(const PoRequest& req, const util::Bytes& raw);
  /// Final acceptance of a Pre-Prepare whose full row matrix is known:
  /// verifies rows, checks the leader-signed matrix-digest claim and
  /// re-proposal constraints, installs the slot, sends Prepare.
  /// `direct_from_leader` controls blame on failure: a bad matrix in a
  /// leader-signed delivery suspects the leader; a bad attachment in a
  /// MatrixResp only discredits the (unauthenticated-rows) responder
  /// and is dropped.
  void accept_preprepare(PrePrepare pp, const crypto::Digest& digest,
                         const util::Bytes& raw_envelope,
                         bool direct_from_leader);
  /// Delta fallback: ask peers for the full row matrix of (view, seq).
  void request_matrix(std::uint64_t view, std::uint64_t order_seq);
  void try_commit(std::uint64_t seq);
  void try_apply();
  /// True iff every PO-Request the matrix makes eligible is stored.
  /// When `mark_missing`, flags each gap in the PO log for recon_tick.
  [[nodiscard]] bool can_apply(std::uint64_t seq, bool mark_missing);
  void apply_matrix(std::uint64_t seq);
  [[nodiscard]] std::vector<std::uint64_t> eligibility(const PrePrepare& pp) const;
  void maybe_checkpoint();
  void suspect(std::uint64_t proposed_view);
  void enter_view(std::uint64_t view);
  void maybe_send_new_view();
  /// Validates a prepared proof; returns the proven PrePrepare.
  /// Non-const: nested envelope verifications go through verify_cache_.
  [[nodiscard]] std::optional<PrePrepare> verify_prepared_proof(
      const PreparedProof& proof);
  /// Matrix digest of the all-absent matrix (the re-proposal
  /// constraint for unconstrained slots).
  [[nodiscard]] crypto::Digest empty_matrix_digest() const;
  void begin_state_transfer();
  [[nodiscard]] util::Bytes snapshot_bundle() const;
  void install_bundle(std::uint64_t applied_seq,
                      std::span<const std::uint8_t> blob);
  [[nodiscard]] bool acting_crashed() const;

  sim::Simulator& sim_;
  ReplicaId id_;
  PrimeConfig config_;
  const crypto::Keyring& keyring_;
  crypto::Signer signer_;
  crypto::Verifier verifier_;
  crypto::VerifyCache verify_cache_;
  std::vector<std::string> identities_;  ///< replica id -> identity string
  Application& app_;
  std::unique_ptr<ReplicaTransport> transport_;
  sim::Rng rng_;
  util::Logger log_;

  bool running_ = false;
  bool recovering_ = false;
  std::uint64_t epoch_ = 0;  ///< invalidates timers across restarts
  std::uint64_t variant_ = 0;
  ReplicaBehavior behavior_ = ReplicaBehavior::kCorrect;
  ByzantineConfig byz_;
  /// Held-back Pre-Prepare wires for the delay/reorder attack.
  std::vector<util::Bytes> byz_holdback_;

  // ---- preordering state ----
  std::uint64_t next_po_seq_ = 1;
  std::vector<ClientUpdate> pending_batch_;
  /// Highest client_seq this replica has batched per client. Local-only
  /// bookkeeping: guarantees each origin emits a client's updates in
  /// contiguous order, which the execution-level high-water dedup
  /// relies on for exactly-once, in-order semantics.
  std::map<std::string, std::uint64_t> last_batched_;
  /// Out-of-order client updates parked until their predecessor is
  /// batched or executed (bounded per client).
  std::map<std::string, std::map<std::uint64_t, ClientUpdate>> preorder_buffer_;
  /// Flush ticks a client's parked queue has made no progress. After a
  /// bound, the origin "jumps" to the lowest parked sequence — the case
  /// where the predecessor will never arrive (e.g. client sessions
  /// survive a full-system ground-truth restart, paper §III-A).
  std::map<std::string, int> preorder_stall_;
  /// Application state at construction; a fresh start() reinstalls it
  /// (clean reinstall semantics, as opposed to recover()'s transfer).
  util::Bytes initial_app_snapshot_;
  bool started_once_ = false;
  struct StoredPoRequest {
    PoRequest request;
    util::Bytes envelope;  ///< origin-signed, re-servable
  };
  /// Per-origin PO-Request log: a deque ring indexed by po_seq - base.
  /// O(1) contains/get/insert on the per-PO-Request hot path (the old
  /// std::map keyed by (origin, po_seq) profiled at ~25%). A slot's
  /// `wanted` flag replaces the old unbounded outstanding_fetches_ set;
  /// wanted_count caps reconciliation backlog per origin.
  struct PoSlot {
    std::unique_ptr<StoredPoRequest> stored;
    bool wanted = false;
  };
  struct PoLog {
    std::uint64_t base = 1;  ///< po_seq of slots.front()
    std::deque<PoSlot> slots;
    std::uint32_t wanted_count = 0;
  };
  static constexpr std::uint64_t kPoHorizon = 8192;       ///< max seqs past base
  static constexpr std::uint32_t kMaxWantedPerOrigin = 512;
  std::vector<PoLog> po_log_;  ///< one log per origin
  [[nodiscard]] bool po_contains(ReplicaId origin, std::uint64_t seq) const;
  [[nodiscard]] const StoredPoRequest* po_get(ReplicaId origin,
                                              std::uint64_t seq) const;
  void po_mark_wanted(ReplicaId origin, std::uint64_t seq);
  std::vector<std::uint64_t> recv_aru_;      ///< contiguous receipt per origin
  std::uint64_t my_aru_seq_ = 0;
  std::vector<PrePrepare::Row> latest_aru_;  ///< freshest verified per replica
  /// View in which latest_aru_[r] was accepted. The raw-byte-equality
  /// verify short-circuit is only valid within that view: a Byzantine
  /// leader may otherwise replay a stale signed row across views
  /// without any re-verification (PR 9 bugfix).
  std::vector<std::uint64_t> latest_aru_view_;
  std::deque<std::pair<sim::Time, std::uint64_t>> turnaround_;  ///< (sent, aru_seq)
  /// Per-origin pending-inclusion samples mirroring turnaround_ for
  /// peers' broadcast PO-ARUs (withheld-ARU aging defense): a leader
  /// whose matrices keep omitting a peer's rows past the relaxed bound
  /// is running Prime's exclusion attack and gets suspected.
  std::vector<std::deque<std::pair<sim::Time, std::uint64_t>>> peer_turnaround_;
  static constexpr std::size_t kPeerTurnaroundCap = 16;
  /// Instant the current view was installed. All turnaround aging is
  /// measured from max(sample time, baseline): a freshly seated leader
  /// cannot be blamed for backlog the previous leader created.
  sim::Time turnaround_baseline_ = 0;

  // ---- ordering state ----
  std::uint64_t view_ = 0;
  std::uint64_t next_order_seq_ = 1;  ///< leader's next proposal
  std::map<std::uint64_t, std::uint64_t> view_start_;  ///< view -> start_seq
  struct OrderSlot {
    std::optional<PrePrepare> preprepare;
    util::Bytes preprepare_envelope;
    crypto::Digest digest{};
    std::uint64_t view = 0;
    /// replica -> (view, digest) of its Prepare / Commit.
    std::map<ReplicaId, std::pair<std::uint64_t, crypto::Digest>> prepares;
    std::map<ReplicaId, std::pair<std::uint64_t, crypto::Digest>> commits;
    std::map<ReplicaId, util::Bytes> prepare_envelopes;
    std::map<ReplicaId, util::Bytes> commit_envelopes;
    bool prepared = false;
    bool committed = false;
    bool sent_commit = false;
    // Trace stamps (obs): when this slot's Pre-Prepare was installed
    // and when it committed locally. Plain stores, kept even with
    // tracing off.
    sim::Time pp_at = 0;
    sim::Time commit_at = 0;
  };
  std::map<std::uint64_t, OrderSlot> slots_;
  std::uint64_t applied_seq_ = 0;
  std::uint64_t highest_committed_ = 0;
  sim::Time last_leader_activity_ = 0;
  sim::Time last_preprepare_sent_ = 0;
  std::uint64_t last_suspected_view_ = 0;
  std::map<std::uint64_t, int> cert_attempts_;

  // ---- delta-matrix state ----
  // Leader side: the previous proposal, so the next Pre-Prepare can be
  // delta-encoded against it (and freshness checked by row pointers).
  bool last_prop_valid_ = false;
  std::uint64_t last_prop_view_ = 0;
  std::uint64_t last_prop_seq_ = 0;
  std::vector<PrePrepare::Row> last_prop_rows_;
  // Follower side: the last accepted proposal, for reconstructing
  // tag-2 (unchanged) rows of the leader's next delta.
  std::uint64_t last_accepted_view_ = 0;
  std::uint64_t last_accepted_seq_ = 0;
  std::vector<PrePrepare::Row> last_accepted_rows_;
  /// order_seq -> view of pending full-matrix fetches (bounded).
  std::map<std::uint64_t, std::uint64_t> outstanding_matrix_fetches_;
  static constexpr std::size_t kMaxMatrixFetches = 16;

  // ---- send batching ----
  struct PendingSend {
    MsgType type = MsgType::kClientUpdate;
    util::Bytes body;
    std::optional<ReplicaId> to;
  };
  std::vector<PendingSend> send_queue_;
  bool flush_scheduled_ = false;
  bool flushing_ = false;

  // ---- execution state ----
  std::vector<std::uint64_t> exec_aru_;
  std::map<std::string, std::uint64_t> executed_clients_;

  // ---- view change state ----
  std::map<std::uint64_t, std::set<ReplicaId>> new_leader_votes_;
  std::map<ReplicaId, ViewState> collected_view_states_;  ///< for view_ (as leader)
  bool new_view_sent_ = false;
  /// Re-proposal constraints for the current view, derived from the
  /// accepted NewView's prepared proofs: seq -> required matrix-rows
  /// digest. Slots start..reproposal_top_ must match these.
  std::map<std::uint64_t, crypto::Digest> expected_rows_;
  std::uint64_t reproposal_top_ = 0;
  std::uint64_t reproposal_view_ = 0;

  // ---- checkpoints ----
  std::map<std::uint64_t, util::Bytes> checkpoint_blobs_;
  std::map<std::uint64_t, std::map<ReplicaId, std::pair<crypto::Digest, util::Bytes>>>
      checkpoint_votes_;  ///< seq -> replica -> (digest, envelope)
  struct StableCheckpoint {
    std::uint64_t seq = 0;
    crypto::Digest digest{};
  };
  std::optional<StableCheckpoint> stable_checkpoint_;

  // ---- recovery / reconciliation ----
  std::uint64_t state_nonce_ = 0;
  std::map<ReplicaId, StateResp> state_resps_;
  std::optional<StateResp> chosen_state_;
  std::set<std::uint64_t> outstanding_cert_fetches_;

  /// client identity -> responsible primary (memoized pure function;
  /// survives recovery on purpose).
  std::map<std::string, ReplicaId, std::less<>> client_primary_;

  ReplicaStats stats_;
  /// Exposes stats_ in the metrics registry; declared after it so the
  /// binder tombstones its entries before the fields go away.
  obs::Binder metrics_;
  ExecuteObserver observer_;
  RecoveryDoneObserver recovery_done_observer_;
};

}  // namespace spire::prime
