#include "prime/messages.hpp"

#include "crypto/merkle.hpp"

namespace spire::prime {

namespace {

template <typename T>
std::optional<T> guarded(std::span<const std::uint8_t> data,
                         T (*parse)(util::ByteReader&)) {
  try {
    util::ByteReader r(data);
    T value = parse(r);
    r.expect_done();
    return value;
  } catch (const util::SerializationError&) {
    return std::nullopt;
  }
}

void put_digest(util::ByteWriter& w, const crypto::Digest& d) {
  w.raw(std::span<const std::uint8_t>(d.data(), d.size()));
}

crypto::Digest get_digest(util::ByteReader& r) {
  crypto::Digest d{};
  const auto raw = r.raw(d.size());
  std::copy(raw.begin(), raw.end(), d.begin());
  return d;
}

}  // namespace

std::string replica_identity(ReplicaId id) {
  return "prime/" + std::to_string(id);
}

// ---- Envelope --------------------------------------------------------------

util::Bytes Envelope::signed_bytes() const {
  util::ByteWriter w(1 + 4 + sender.size() + 4 + body.size());
  w.u8(static_cast<std::uint8_t>(type) | (batch ? kBatchedFlag : 0));
  w.str(sender);
  w.blob(body);
  return w.take();
}

util::Bytes Envelope::encode() const {
  util::ByteWriter w(encoded_size());
  w.u8(static_cast<std::uint8_t>(type) | (batch ? kBatchedFlag : 0));
  w.str(sender);
  w.blob(body);
  if (batch) {
    w.u32(batch->index);
    w.u8(static_cast<std::uint8_t>(batch->path.size()));
    for (const auto& d : batch->path) put_digest(w, d);
  }
  signature.encode(w);
  return w.take();
}

std::optional<Envelope> Envelope::decode(std::span<const std::uint8_t> data) {
  return guarded<Envelope>(data, [](util::ByteReader& r) {
    Envelope e;
    const std::uint8_t raw_type = r.u8();
    const std::uint8_t t = raw_type & static_cast<std::uint8_t>(~kBatchedFlag);
    if (t < 1 || t > kMaxMsgType) throw util::SerializationError("bad msg type");
    e.type = static_cast<MsgType>(t);
    e.sender = r.str();
    e.body = r.blob();
    if (raw_type & kBatchedFlag) {
      BatchProof proof;
      proof.index = r.u32();
      const std::uint8_t depth = r.u8();
      if (depth > kMaxBatchDepth) {
        throw util::SerializationError("absurd batch depth");
      }
      if (proof.index >= (1u << depth)) {
        throw util::SerializationError("batch index outside tree");
      }
      proof.path.reserve(depth);
      for (std::uint8_t i = 0; i < depth; ++i) proof.path.push_back(get_digest(r));
      e.batch = std::move(proof);
    }
    e.signature = crypto::Signature::decode(r);
    return e;
  });
}

Envelope Envelope::make(MsgType type, const crypto::Signer& signer,
                        util::Bytes body) {
  Envelope e;
  e.type = type;
  e.sender = signer.identity();
  e.body = std::move(body);
  e.signature = signer.sign(e.signed_bytes());
  return e;
}

util::Bytes Envelope::seal(MsgType type, const crypto::Signer& signer,
                           std::span<const std::uint8_t> body) {
  util::ByteWriter w(1 + 4 + signer.identity().size() + 4 + body.size() +
                     sizeof(crypto::Signature::mac));
  w.u8(static_cast<std::uint8_t>(type));
  w.str(signer.identity());
  w.blob(body);
  const crypto::Signature sig = signer.sign(w.bytes());
  sig.encode(w);
  return w.take();
}

std::vector<util::Bytes> Envelope::seal_batch(const crypto::Signer& signer,
                                              std::span<const BatchItem> items) {
  if (items.empty()) return {};
  if (items.size() > (1u << kMaxBatchDepth)) {
    throw std::invalid_argument("batch too large");
  }
  const std::string& identity = signer.identity();
  std::vector<util::ByteWriter> prefixes(items.size());
  std::vector<crypto::Digest> leaves;
  leaves.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    util::ByteWriter& w = prefixes[i];
    // Proof suffix is depth*32 + 5; over-reserving by a level is fine.
    w.reserve(1 + 4 + identity.size() + 4 + items[i].body.size() + 5 +
              32 * (kMaxBatchDepth / 2) + sizeof(crypto::Signature::mac));
    w.u8(static_cast<std::uint8_t>(items[i].type) | kBatchedFlag);
    w.str(identity);
    w.blob(items[i].body);
    leaves.push_back(crypto::merkle_leaf(w.bytes()));
  }
  const crypto::MerkleTree tree(std::move(leaves));
  const crypto::Signature sig =
      signer.sign(crypto::merkle_root_message(tree.root()));
  std::vector<util::Bytes> out;
  out.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    util::ByteWriter& w = prefixes[i];
    const auto path = tree.path(i);
    w.u32(static_cast<std::uint32_t>(i));
    w.u8(static_cast<std::uint8_t>(path.size()));
    for (const auto& d : path) put_digest(w, d);
    sig.encode(w);
    out.push_back(w.take());
  }
  return out;
}

bool Envelope::verify(const crypto::Verifier& verifier) const {
  if (!batch) return verifier.verify(sender, signed_bytes(), signature);
  const crypto::Digest leaf = crypto::merkle_leaf(signed_bytes());
  const crypto::Digest root =
      crypto::MerkleTree::fold(leaf, batch->index, batch->path);
  return verifier.verify(sender, crypto::merkle_root_message(root), signature);
}

// ---- ClientUpdate ----------------------------------------------------------

util::Bytes ClientUpdate::signed_bytes() const {
  util::ByteWriter w(4 + client.size() + 8 + 4 + payload.size());
  w.str(client);
  w.u64(client_seq);
  w.blob(payload);
  return w.take();
}

void ClientUpdate::sign(const crypto::Signer& signer) {
  client_sig = signer.sign(signed_bytes());
}

bool ClientUpdate::verify(const crypto::Verifier& verifier) const {
  return verifier.verify(client, signed_bytes(), client_sig);
}

void ClientUpdate::encode(util::ByteWriter& w) const {
  w.str(client);
  w.u64(client_seq);
  w.blob(payload);
  client_sig.encode(w);
}

ClientUpdate ClientUpdate::decode(util::ByteReader& r) {
  ClientUpdate u;
  u.client = r.str();
  u.client_seq = r.u64();
  u.payload = r.blob();
  u.client_sig = crypto::Signature::decode(r);
  return u;
}

// ---- PoRequest -------------------------------------------------------------

util::Bytes PoRequest::encode() const {
  util::ByteWriter w;
  w.u32(origin);
  w.u64(po_seq);
  w.u32(static_cast<std::uint32_t>(updates.size()));
  for (const auto& u : updates) u.encode(w);
  return w.take();
}

std::optional<PoRequest> PoRequest::decode(std::span<const std::uint8_t> data) {
  return guarded<PoRequest>(data, [](util::ByteReader& r) {
    PoRequest p;
    p.origin = r.u32();
    p.po_seq = r.u64();
    const std::uint32_t n = r.u32();
    if (n > 65536) throw util::SerializationError("absurd batch size");
    p.updates.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) p.updates.push_back(ClientUpdate::decode(r));
    return p;
  });
}

// ---- PoAru -----------------------------------------------------------------

util::Bytes PoAru::signed_bytes() const {
  util::ByteWriter w(4 + 8 + 4 + 8 * aru.size());
  w.u32(replica);
  w.u64(aru_seq);
  w.u32(static_cast<std::uint32_t>(aru.size()));
  for (auto v : aru) w.u64(v);
  return w.take();
}

void PoAru::sign(const crypto::Signer& signer) {
  sig = signer.sign(signed_bytes());
  refresh_raw();
}

bool PoAru::verify_embedded(const crypto::Verifier& verifier,
                            const std::string& identity) const {
  return verifier.verify(identity, signed_bytes(), sig);
}

void PoAru::refresh_raw() {
  util::ByteWriter w(4 + 8 + 4 + 8 * aru.size() + sizeof(sig.mac));
  w.u32(replica);
  w.u64(aru_seq);
  w.u32(static_cast<std::uint32_t>(aru.size()));
  for (auto v : aru) w.u64(v);
  sig.encode(w);
  raw = w.take();
}

void PoAru::encode(util::ByteWriter& w) const {
  if (!raw.empty()) {
    w.raw(raw);
    return;
  }
  w.u32(replica);
  w.u64(aru_seq);
  w.u32(static_cast<std::uint32_t>(aru.size()));
  for (auto v : aru) w.u64(v);
  sig.encode(w);
}

PoAru PoAru::decode(util::ByteReader& r) {
  const std::size_t mark = r.offset();
  PoAru p;
  p.replica = r.u32();
  p.aru_seq = r.u64();
  const std::uint32_t n = r.u32();
  if (n > 4096) throw util::SerializationError("absurd aru width");
  p.aru.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) p.aru.push_back(r.u64());
  p.sig = crypto::Signature::decode(r);
  const auto consumed = r.since(mark);
  p.raw.assign(consumed.begin(), consumed.end());
  return p;
}

util::Bytes PoAru::encode_standalone() const {
  if (!raw.empty()) return raw;
  util::ByteWriter w(4 + 8 + 4 + 8 * aru.size() + sizeof(sig.mac));
  encode(w);
  return w.take();
}

std::optional<PoAru> PoAru::decode_standalone(
    std::span<const std::uint8_t> data) {
  return guarded<PoAru>(data, [](util::ByteReader& r) { return PoAru::decode(r); });
}

// ---- PrePrepare ------------------------------------------------------------

namespace {

// Row tags on the Pre-Prepare wire.
constexpr std::uint8_t kRowAbsent = 0;
constexpr std::uint8_t kRowInline = 1;
constexpr std::uint8_t kRowUnchanged = 2;

// Domain prefixes keep the matrix digest and the agreement digest from
// colliding with each other or with any signed unit.
constexpr std::string_view kMatrixDomain = "spire.pmx";
constexpr std::string_view kPrePrepareDomain = "spire.ppd";

void hash_str(crypto::Sha256& h, std::string_view s) {
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

}  // namespace

const crypto::Digest& PrePrepare::matrix() const {
  if (matrix_digest == crypto::Digest{}) {
    matrix_digest = matrix_digest_of(rows);
  }
  return matrix_digest;
}

crypto::Digest PrePrepare::matrix_digest_of(const std::vector<Row>& rows) {
  crypto::Sha256 h;
  hash_str(h, kMatrixDomain);
  for (const auto& row : rows) {
    const std::uint8_t present = row ? 1 : 0;
    h.update(std::span<const std::uint8_t>(&present, 1));
    if (!row) continue;
    if (!row->raw.empty()) {
      h.update(row->raw);
    } else {
      const util::Bytes tmp = row->encode_standalone();
      h.update(tmp);
    }
  }
  return h.finish();
}

void PrePrepare::encode_rows(util::ByteWriter& w,
                             const std::vector<Row>& rows) {
  w.u32(static_cast<std::uint32_t>(rows.size()));
  for (const auto& row : rows) {
    if (row) {
      w.u8(kRowInline);
      row->encode(w);
    } else {
      w.u8(kRowAbsent);
    }
  }
}

std::vector<PrePrepare::Row> PrePrepare::decode_rows(util::ByteReader& r) {
  const std::uint32_t n = r.u32();
  if (n > 4096) throw util::SerializationError("absurd matrix size");
  std::vector<Row> rows;
  rows.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t tag = r.u8();
    if (tag == kRowInline) {
      rows.push_back(std::make_shared<const PoAru>(PoAru::decode(r)));
    } else if (tag == kRowAbsent) {
      rows.push_back(nullptr);
    } else {
      throw util::SerializationError("bad row tag");
    }
  }
  return rows;
}

util::Bytes PrePrepare::encode() const {
  std::size_t hint = 4 + 8 + 8 + 32 + 4 + rows.size();
  for (const auto& row : rows) {
    if (row) hint += 4 + 8 + 4 + 8 * row->aru.size() + sizeof(row->sig.mac);
  }
  util::ByteWriter w(hint);
  w.u32(leader);
  w.u64(view);
  w.u64(order_seq);
  put_digest(w, matrix());
  encode_rows(w, rows);
  return w.take();
}

util::Bytes PrePrepare::encode_delta(const std::vector<Row>& prev) const {
  util::ByteWriter w(4 + 8 + 8 + 32 + 4 + rows.size() * 128);
  w.u32(leader);
  w.u64(view);
  w.u64(order_seq);
  put_digest(w, matrix());
  w.u32(static_cast<std::uint32_t>(rows.size()));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    if (!row) {
      w.u8(kRowAbsent);
    } else if (i < prev.size() && prev[i] == row) {
      w.u8(kRowUnchanged);
    } else {
      w.u8(kRowInline);
      row->encode(w);
    }
  }
  return w.take();
}

std::optional<PrePrepare> PrePrepare::decode(
    std::span<const std::uint8_t> data) {
  return guarded<PrePrepare>(data, [](util::ByteReader& r) {
    PrePrepare p;
    p.leader = r.u32();
    p.view = r.u64();
    p.order_seq = r.u64();
    p.matrix_digest = get_digest(r);
    const std::uint32_t n = r.u32();
    if (n > 4096) throw util::SerializationError("absurd matrix size");
    p.rows.reserve(n);
    bool any_unchanged = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint8_t tag = r.u8();
      if (tag == kRowInline) {
        p.rows.push_back(std::make_shared<const PoAru>(PoAru::decode(r)));
      } else if (tag == kRowAbsent) {
        p.rows.push_back(nullptr);
      } else if (tag == kRowUnchanged) {
        if (!any_unchanged) {
          any_unchanged = true;
          p.unchanged.assign(n, 0);
        }
        p.unchanged[i] = 1;
        p.rows.push_back(nullptr);
      } else {
        throw util::SerializationError("bad row tag");
      }
    }
    return p;
  });
}

crypto::Digest PrePrepare::digest() const {
  crypto::Sha256 h;
  hash_str(h, kPrePrepareDomain);
  util::ByteWriter w(4 + 8 + 8 + 4);
  w.u32(leader);
  w.u64(view);
  w.u64(order_seq);
  w.u32(static_cast<std::uint32_t>(rows.size()));
  h.update(w.bytes());
  h.update(matrix());
  return h.finish();
}

// ---- PrepareOrCommit -------------------------------------------------------

util::Bytes PrepareOrCommit::encode() const {
  util::ByteWriter w(4 + 8 + 8 + sizeof(preprepare_digest));
  w.u32(replica);
  w.u64(view);
  w.u64(order_seq);
  put_digest(w, preprepare_digest);
  return w.take();
}

std::optional<PrepareOrCommit> PrepareOrCommit::decode(
    std::span<const std::uint8_t> data) {
  return guarded<PrepareOrCommit>(data, [](util::ByteReader& r) {
    PrepareOrCommit p;
    p.replica = r.u32();
    p.view = r.u64();
    p.order_seq = r.u64();
    p.preprepare_digest = get_digest(r);
    return p;
  });
}

// ---- view change -----------------------------------------------------------

util::Bytes NewLeader::encode() const {
  util::ByteWriter w;
  w.u32(replica);
  w.u64(proposed_view);
  return w.take();
}

std::optional<NewLeader> NewLeader::decode(std::span<const std::uint8_t> data) {
  return guarded<NewLeader>(data, [](util::ByteReader& r) {
    NewLeader n;
    n.replica = r.u32();
    n.proposed_view = r.u64();
    return n;
  });
}

void PreparedProof::encode(util::ByteWriter& w) const {
  w.u64(order_seq);
  w.blob(preprepare_envelope);
  w.u32(static_cast<std::uint32_t>(prepare_envelopes.size()));
  for (const auto& p : prepare_envelopes) w.blob(p);
  PrePrepare::encode_rows(w, rows);
}

PreparedProof PreparedProof::decode(util::ByteReader& r) {
  PreparedProof proof;
  proof.order_seq = r.u64();
  proof.preprepare_envelope = r.blob();
  const std::uint32_t n = r.u32();
  if (n > 256) throw util::SerializationError("absurd prepare count");
  proof.prepare_envelopes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) proof.prepare_envelopes.push_back(r.blob());
  proof.rows = PrePrepare::decode_rows(r);
  return proof;
}

util::Bytes ViewState::signed_bytes() const {
  util::ByteWriter w;
  w.u32(replica);
  w.u64(view);
  w.u64(max_prepared);
  w.u64(max_committed);
  w.u32(static_cast<std::uint32_t>(prepared.size()));
  for (const auto& proof : prepared) proof.encode(w);
  return w.take();
}

void ViewState::sign(const crypto::Signer& signer) {
  sig = signer.sign(signed_bytes());
}

bool ViewState::verify_embedded(const crypto::Verifier& verifier,
                                const std::string& identity) const {
  return verifier.verify(identity, signed_bytes(), sig);
}

void ViewState::encode(util::ByteWriter& w) const {
  w.u32(replica);
  w.u64(view);
  w.u64(max_prepared);
  w.u64(max_committed);
  w.u32(static_cast<std::uint32_t>(prepared.size()));
  for (const auto& proof : prepared) proof.encode(w);
  sig.encode(w);
}

ViewState ViewState::decode(util::ByteReader& r) {
  ViewState v;
  v.replica = r.u32();
  v.view = r.u64();
  v.max_prepared = r.u64();
  v.max_committed = r.u64();
  const std::uint32_t n = r.u32();
  if (n > 64) throw util::SerializationError("absurd proof count");
  v.prepared.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    v.prepared.push_back(PreparedProof::decode(r));
  }
  v.sig = crypto::Signature::decode(r);
  return v;
}

util::Bytes NewView::encode() const {
  util::ByteWriter w;
  w.u32(leader);
  w.u64(view);
  w.u64(start_seq);
  w.u32(static_cast<std::uint32_t>(justification.size()));
  for (const auto& vs : justification) vs.encode(w);
  return w.take();
}

std::optional<NewView> NewView::decode(std::span<const std::uint8_t> data) {
  return guarded<NewView>(data, [](util::ByteReader& r) {
    NewView n;
    n.leader = r.u32();
    n.view = r.u64();
    n.start_seq = r.u64();
    const std::uint32_t count = r.u32();
    if (count > 4096) throw util::SerializationError("absurd justification");
    n.justification.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      n.justification.push_back(ViewState::decode(r));
    }
    return n;
  });
}

// ---- reconciliation / state transfer ---------------------------------------

util::Bytes PoReqFetch::encode() const {
  util::ByteWriter w;
  w.u32(origin);
  w.u64(po_seq);
  return w.take();
}

std::optional<PoReqFetch> PoReqFetch::decode(
    std::span<const std::uint8_t> data) {
  return guarded<PoReqFetch>(data, [](util::ByteReader& r) {
    PoReqFetch f;
    f.origin = r.u32();
    f.po_seq = r.u64();
    return f;
  });
}

util::Bytes PoReqResp::encode() const {
  util::ByteWriter w;
  w.u32(origin);
  w.u64(po_seq);
  w.blob(envelope);
  return w.take();
}

std::optional<PoReqResp> PoReqResp::decode(std::span<const std::uint8_t> data) {
  return guarded<PoReqResp>(data, [](util::ByteReader& r) {
    PoReqResp p;
    p.origin = r.u32();
    p.po_seq = r.u64();
    p.envelope = r.blob();
    return p;
  });
}

util::Bytes StateReq::encode() const {
  util::ByteWriter w;
  w.u64(nonce);
  return w.take();
}

std::optional<StateReq> StateReq::decode(std::span<const std::uint8_t> data) {
  return guarded<StateReq>(data, [](util::ByteReader& r) {
    StateReq s;
    s.nonce = r.u64();
    return s;
  });
}

util::Bytes StateResp::encode() const {
  util::ByteWriter w;
  w.u64(nonce);
  w.u64(view);
  w.u64(applied_seq);
  put_digest(w, snapshot_digest);
  return w.take();
}

std::optional<StateResp> StateResp::decode(std::span<const std::uint8_t> data) {
  return guarded<StateResp>(data, [](util::ByteReader& r) {
    StateResp s;
    s.nonce = r.u64();
    s.view = r.u64();
    s.applied_seq = r.u64();
    s.snapshot_digest = get_digest(r);
    return s;
  });
}

util::Bytes SnapshotReq::encode() const {
  util::ByteWriter w;
  w.u64(nonce);
  w.u64(applied_seq);
  return w.take();
}

std::optional<SnapshotReq> SnapshotReq::decode(
    std::span<const std::uint8_t> data) {
  return guarded<SnapshotReq>(data, [](util::ByteReader& r) {
    SnapshotReq s;
    s.nonce = r.u64();
    s.applied_seq = r.u64();
    return s;
  });
}

util::Bytes SnapshotResp::encode() const {
  util::ByteWriter w;
  w.u64(nonce);
  w.u64(applied_seq);
  w.blob(blob);
  return w.take();
}

std::optional<SnapshotResp> SnapshotResp::decode(
    std::span<const std::uint8_t> data) {
  return guarded<SnapshotResp>(data, [](util::ByteReader& r) {
    SnapshotResp s;
    s.nonce = r.u64();
    s.applied_seq = r.u64();
    s.blob = r.blob();
    return s;
  });
}

util::Bytes CommitCertReq::encode() const {
  util::ByteWriter w;
  w.u64(order_seq);
  return w.take();
}

std::optional<CommitCertReq> CommitCertReq::decode(
    std::span<const std::uint8_t> data) {
  return guarded<CommitCertReq>(data, [](util::ByteReader& r) {
    CommitCertReq c;
    c.order_seq = r.u64();
    return c;
  });
}

util::Bytes CommitCertResp::encode() const {
  util::ByteWriter w;
  w.u64(order_seq);
  w.blob(preprepare_envelope);
  w.u32(static_cast<std::uint32_t>(commit_envelopes.size()));
  for (const auto& c : commit_envelopes) w.blob(c);
  PrePrepare::encode_rows(w, rows);
  return w.take();
}

std::optional<CommitCertResp> CommitCertResp::decode(
    std::span<const std::uint8_t> data) {
  return guarded<CommitCertResp>(data, [](util::ByteReader& r) {
    CommitCertResp c;
    c.order_seq = r.u64();
    c.preprepare_envelope = r.blob();
    const std::uint32_t n = r.u32();
    if (n > 4096) throw util::SerializationError("absurd commit count");
    c.commit_envelopes.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) c.commit_envelopes.push_back(r.blob());
    c.rows = PrePrepare::decode_rows(r);
    return c;
  });
}

// ---- matrix fetch ----------------------------------------------------------

util::Bytes MatrixFetch::encode() const {
  util::ByteWriter w;
  w.u64(view);
  w.u64(order_seq);
  return w.take();
}

std::optional<MatrixFetch> MatrixFetch::decode(
    std::span<const std::uint8_t> data) {
  return guarded<MatrixFetch>(data, [](util::ByteReader& r) {
    MatrixFetch f;
    f.view = r.u64();
    f.order_seq = r.u64();
    return f;
  });
}

util::Bytes MatrixResp::encode() const {
  util::ByteWriter w;
  w.u64(view);
  w.u64(order_seq);
  w.blob(preprepare_envelope);
  PrePrepare::encode_rows(w, rows);
  return w.take();
}

std::optional<MatrixResp> MatrixResp::decode(
    std::span<const std::uint8_t> data) {
  return guarded<MatrixResp>(data, [](util::ByteReader& r) {
    MatrixResp m;
    m.view = r.u64();
    m.order_seq = r.u64();
    m.preprepare_envelope = r.blob();
    m.rows = PrePrepare::decode_rows(r);
    return m;
  });
}

// ---- Checkpoint ------------------------------------------------------------

util::Bytes Checkpoint::signed_bytes() const {
  util::ByteWriter w;
  w.u32(replica);
  w.u64(applied_seq);
  put_digest(w, snapshot_digest);
  return w.take();
}

void Checkpoint::sign(const crypto::Signer& signer) {
  sig = signer.sign(signed_bytes());
}

bool Checkpoint::verify_embedded(const crypto::Verifier& verifier,
                                 const std::string& identity) const {
  return verifier.verify(identity, signed_bytes(), sig);
}

util::Bytes Checkpoint::encode() const {
  util::ByteWriter w;
  w.u32(replica);
  w.u64(applied_seq);
  put_digest(w, snapshot_digest);
  sig.encode(w);
  return w.take();
}

std::optional<Checkpoint> Checkpoint::decode(
    std::span<const std::uint8_t> data) {
  return guarded<Checkpoint>(data, [](util::ByteReader& r) {
    Checkpoint c;
    c.replica = r.u32();
    c.applied_seq = r.u64();
    c.snapshot_digest = get_digest(r);
    c.sig = crypto::Signature::decode(r);
    return c;
  });
}

}  // namespace spire::prime
