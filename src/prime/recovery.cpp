#include "prime/recovery.hpp"

namespace spire::prime {

ProactiveRecovery::ProactiveRecovery(sim::Simulator& sim,
                                     std::vector<Replica*> replicas,
                                     RecoveryConfig config)
    : sim_(sim), replicas_(std::move(replicas)), config_(config) {}

void ProactiveRecovery::start() {
  if (running_) return;
  running_ = true;
  sim_.schedule_after(config_.period, [this] { tick(); });
}

void ProactiveRecovery::stop() { running_ = false; }

void ProactiveRecovery::tick() {
  if (!running_) return;
  // Descending order: with leader = view mod n, ascending order would
  // take down the *current* leader on every single step (each view
  // change hands leadership to the next recovery target). Descending
  // hits the leader at most once per cycle, as in a real deployment.
  Replica* target = replicas_[replicas_.size() - 1 - next_];
  next_ = (next_ + 1) % replicas_.size();

  target->shutdown();
  sim_.schedule_after(config_.downtime, [this, target] {
    if (!running_) return;
    target->recover();
    ++completed_;
  });
  sim_.schedule_after(config_.period, [this] { tick(); });
}

}  // namespace spire::prime
