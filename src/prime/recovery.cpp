#include "prime/recovery.hpp"

#include <algorithm>

namespace spire::prime {

namespace {
constexpr std::uint64_t kMaxBackoffMultiple = 8;
}  // namespace

ProactiveRecovery::ProactiveRecovery(sim::Simulator& sim,
                                     std::vector<Replica*> replicas,
                                     RecoveryConfig config)
    : sim_(sim),
      replicas_(std::move(replicas)),
      config_(config),
      metrics_("prime.recovery") {
  metrics_.counter("takedowns", &stats_.takedowns);
  metrics_.counter("completed", &stats_.completed);
  metrics_.counter("retries", &stats_.retries);
  metrics_.counter("deferred_ticks", &stats_.deferred_ticks);
  metrics_.counter("transfer_bytes", &stats_.transfer_bytes);
  metrics_.counter("state_reqs", &stats_.state_reqs);
  metrics_.gauge_fn("in_flight_high_water", [this] {
    return static_cast<std::int64_t>(stats_.in_flight_high_water);
  });
  metrics_.gauge_fn("max_recovery_wall_us", [this] {
    return static_cast<std::int64_t>(stats_.max_recovery_wall);
  });
  // The recovery-done signal is the completion gate: a slot reopens
  // only when the target's state transfer has actually finished.
  for (Replica* r : replicas_) {
    r->set_recovery_done_observer([this, r] { finish(r); });
  }
}

ProactiveRecovery::~ProactiveRecovery() {
  for (Replica* r : replicas_) r->set_recovery_done_observer(nullptr);
}

void ProactiveRecovery::start() {
  if (running_) return;
  running_ = true;
  ++gen_;  // orphan any tick scheduled by a previous run (stale-tick bug)
  next_ = 0;
  tick_pending_ = false;
  schedule_tick(config_.period);
}

void ProactiveRecovery::stop() {
  running_ = false;
  ++gen_;  // the periodic chain dies; per-recovery lambdas stay valid
  tick_pending_ = false;
  // Never leave a replica shut down: a target still in its downtime
  // window is brought back immediately; one mid-transfer keeps its
  // deadline/retry chain and completes on its own.
  for (auto& [target, entry] : in_flight_) {
    if (entry.down) bring_up(target, entry);
  }
}

std::uint32_t ProactiveRecovery::disturbed() const {
  std::uint32_t count = static_cast<std::uint32_t>(in_flight_.size());
  for (Replica* r : replicas_) {
    if (in_flight_.count(r)) continue;
    if (!r->running() || r->recovering()) ++count;
  }
  return count;
}

void ProactiveRecovery::schedule_tick(sim::Time delay) {
  const std::uint64_t gen = gen_;
  sim_.schedule_after(delay, [this, gen] { tick(gen); });
}

Replica* ProactiveRecovery::pick_target() {
  // Descending order: with leader = view mod n, ascending order would
  // take down the *current* leader on every single step (each view
  // change hands leadership to the next recovery target). Descending
  // hits the leader at most once per cycle, as in a real deployment.
  for (std::size_t probes = 0; probes < replicas_.size(); ++probes) {
    Replica* candidate = replicas_[replicas_.size() - 1 - next_];
    next_ = (next_ + 1) % replicas_.size();
    // Skip replicas already disturbed — in flight with us, externally
    // crashed, or running their own state transfer. Rejuvenating those
    // would double-count a slot (or wipe a replica mid-rejoin).
    if (in_flight_.count(candidate)) continue;
    if (!candidate->running() || candidate->recovering()) continue;
    return candidate;
  }
  return nullptr;
}

void ProactiveRecovery::tick(std::uint64_t gen) {
  if (gen != gen_ || !running_) return;
  // Completion gate: every disturbed replica — ours or not — occupies
  // one of the k slots the sizing rule budgets for. If all are taken,
  // the cycle pauses here and resumes from finish().
  if (disturbed() >= config_.max_concurrent) {
    ++stats_.deferred_ticks;
    tick_pending_ = true;
    // Fallback re-check: if the slot is held by an *external*
    // disturbance (crash injection, self-initiated transfer), no
    // finish() of ours will ever resume the cycle. finish() orphans
    // this re-check via a generation bump, so one chain always exists.
    schedule_tick(config_.period);
    return;
  }
  if (Replica* target = pick_target()) begin_recovery(target);
  schedule_tick(config_.period);
}

void ProactiveRecovery::begin_recovery(Replica* target) {
  InFlight entry;
  entry.down = true;
  entry.attempt = ++attempt_counter_;
  entry.taken_down_at = sim_.now();
  entry.backoff = config_.retry_backoff;
  entry.bytes_before = target->stats().state_transfer_bytes;
  entry.reqs_before = target->stats().state_reqs_sent;
  in_flight_[target] = entry;
  ++stats_.takedowns;
  stats_.in_flight_high_water =
      std::max(stats_.in_flight_high_water, disturbed());

  target->shutdown();
  const std::uint64_t attempt = entry.attempt;
  // Guarded by the attempt token, not the generation: stop() must not
  // orphan the pending bring-up (that was the stuck-replica bug). When
  // stop() recovers the target early, it bumps the attempt instead.
  sim_.schedule_after(config_.downtime, [this, target, attempt] {
    const auto it = in_flight_.find(target);
    if (it == in_flight_.end() || it->second.attempt != attempt) return;
    if (!it->second.down) return;
    bring_up(target, it->second);
  });
}

void ProactiveRecovery::bring_up(Replica* target, InFlight& entry) {
  entry.down = false;
  entry.attempt = ++attempt_counter_;  // orphans the pending downtime lambda
  target->recover();
  arm_deadline(target, entry.attempt, config_.transfer_deadline);
}

void ProactiveRecovery::arm_deadline(Replica* target, std::uint64_t attempt,
                                     sim::Time delay) {
  sim_.schedule_after(delay, [this, target, attempt] {
    on_deadline(target, attempt);
  });
}

void ProactiveRecovery::on_deadline(Replica* target, std::uint64_t attempt) {
  const auto it = in_flight_.find(target);
  if (it == in_flight_.end() || it->second.attempt != attempt) return;
  if (!target->recovering()) {
    // Completion raced the deadline, or the replica was restarted fresh
    // behind our back (external start()). Either way it is up; settle
    // the entry so the slot reopens.
    if (target->running()) finish(target);
    return;
  }
  // The transfer stalled (e.g. the replica was partitioned mid-join).
  // Re-issue recover() after the current backoff: a fresh nonce and a
  // fresh StateReq round, with exponential spacing so a long partition
  // does not turn into a retry storm.
  ++stats_.retries;
  InFlight& entry = it->second;
  const std::uint64_t retry_attempt = ++attempt_counter_;
  entry.attempt = retry_attempt;
  const sim::Time backoff = entry.backoff;
  entry.backoff = std::min(entry.backoff * 2,
                           config_.retry_backoff * kMaxBackoffMultiple);
  sim_.schedule_after(backoff, [this, target, retry_attempt] {
    const auto entry_it = in_flight_.find(target);
    if (entry_it == in_flight_.end() ||
        entry_it->second.attempt != retry_attempt) {
      return;
    }
    if (!target->recovering()) {
      if (target->running()) finish(target);
      return;
    }
    target->recover();
    arm_deadline(target, retry_attempt, config_.transfer_deadline);
  });
}

void ProactiveRecovery::finish(Replica* target) {
  const auto it = in_flight_.find(target);
  // Completions the scheduler did not initiate (a replica's own
  // begin_state_transfer) are not ours to account.
  if (it == in_flight_.end()) return;
  const InFlight& entry = it->second;
  const sim::Time wall = sim_.now() - entry.taken_down_at;
  ++stats_.completed;
  stats_.last_recovery_wall = wall;
  stats_.max_recovery_wall = std::max(stats_.max_recovery_wall, wall);
  stats_.total_recovery_wall += wall;
  stats_.transfer_bytes +=
      target->stats().state_transfer_bytes - entry.bytes_before;
  stats_.state_reqs += target->stats().state_reqs_sent - entry.reqs_before;
  in_flight_.erase(it);

  if (running_ && tick_pending_) {
    tick_pending_ = false;
    // Resume the paused cycle off the simulator, not inside the
    // replica's own completion path (deterministic ordering; no
    // takedown reentrancy with a state-transfer message in hand). The
    // generation bump orphans the fallback re-check tick so the resumed
    // chain is the only one.
    ++gen_;
    schedule_tick(0);
  }
}

}  // namespace spire::prime
