#include "attack/attacker.hpp"

namespace spire::attack {

Attacker::Attacker(sim::Simulator& sim, net::Host& host, std::size_t iface)
    : sim_(sim), host_(host), iface_(iface), log_("attack." + host.name()) {
  host_.set_compromised(true);
  host_.set_promiscuous(iface_, true);
}

void Attacker::port_scan(net::IpAddress target, std::uint16_t first_port,
                         std::uint16_t last_port, sim::Time pace) {
  sim::Time when = 0;
  for (std::uint32_t port = first_port; port <= last_port; ++port) {
    when += pace;
    sim_.schedule_after(when, [this, target, port] {
      ++stats_.probes_sent;
      host_.send_udp(target, static_cast<std::uint16_t>(port), attack_port_,
                     util::to_bytes("probe"));
    });
  }
  log_.info("port scan of ", target.str(), " ports ", first_port, "-",
            last_port);
  if (label_) label_("port-scan", sim_.now(), sim_.now() + when);
}

void Attacker::arp_poison(net::IpAddress victim_ip, net::MacAddress victim_mac,
                          net::IpAddress impersonated_ip, int count,
                          sim::Time interval) {
  log_.info("ARP poisoning ", victim_ip.str(), ": claiming ",
            impersonated_ip.str());
  if (label_) {
    label_("arp-poison", sim_.now(),
           sim_.now() + interval * static_cast<sim::Time>(count));
  }
  for (int i = 0; i < count; ++i) {
    sim_.schedule_after(interval * static_cast<sim::Time>(i),
                        [this, victim_ip, victim_mac, impersonated_ip] {
      ++stats_.arp_poisons_sent;
      net::ArpPacket reply;
      reply.op = net::ArpOp::kReply;
      reply.sender_mac = host_.mac(iface_);  // the lie
      reply.sender_ip = impersonated_ip;
      reply.target_mac = victim_mac;
      reply.target_ip = victim_ip;
      net::EthernetFrame frame{host_.mac(iface_), victim_mac,
                               net::EtherType::kArp, reply.encode()};
      host_.send_frame_raw(iface_, frame);
    });
  }
}

void Attacker::start_mitm(TamperFn tamper) {
  mitm_start_ = sim_.now();
  if (label_) label_("mitm", mitm_start_, 0);  // open until stop_mitm
  tamper_ = std::move(tamper);
  host_.set_packet_interceptor(
      [this](std::size_t iface, const net::Datagram& dgram) {
        (void)iface;
        ++stats_.mitm_intercepted;
        if (!tamper_) {
          forward_intercepted(dgram);
          return true;
        }
        const auto result = tamper_(dgram);
        if (!result) return true;  // dropped
        if (result->payload != dgram.payload) ++stats_.mitm_tampered;
        forward_intercepted(*result);
        return true;
      });
}

void Attacker::stop_mitm() {
  // Re-announces the interval with its real end; a sink that saw the
  // open-ended begin treats this as the close.
  if (label_) label_("mitm", mitm_start_, sim_.now());
  tamper_ = nullptr;
  host_.set_packet_interceptor(nullptr);
}

void Attacker::forward_intercepted(const net::Datagram& dgram) {
  // Forward to the true destination. The attacker knows the real MAC
  // (it observed it, or can resolve it while the victims cannot see the
  // side conversation).
  const auto mac = host_.arp_lookup(dgram.dst_ip);
  if (!mac) {
    // Resolve by re-sending through the normal stack (src stays forged
    // at IP level because we re-encode the datagram as-is).
    net::EthernetFrame frame{host_.mac(iface_), net::MacAddress::broadcast(),
                             net::EtherType::kIpv4, dgram.encode()};
    host_.send_frame_raw(iface_, frame);
    return;
  }
  net::EthernetFrame frame{host_.mac(iface_), *mac, net::EtherType::kIpv4,
                           dgram.encode()};
  host_.send_frame_raw(iface_, frame);
}

void Attacker::ip_spoof_burst(net::IpAddress fake_src_ip,
                              net::MacAddress fake_src_mac,
                              net::IpAddress dst_ip, net::MacAddress dst_mac,
                              std::uint16_t dst_port, int count) {
  log_.info("IP spoofing burst as ", fake_src_ip.str(), " toward ",
            dst_ip.str(), ":", dst_port);
  if (label_) label_("ip-spoof", sim_.now(), sim_.now());
  for (int i = 0; i < count; ++i) {
    ++stats_.spoofed_frames_sent;
    net::Datagram dgram;
    dgram.src_ip = fake_src_ip;
    dgram.dst_ip = dst_ip;
    dgram.src_port = attack_port_;
    dgram.dst_port = dst_port;
    dgram.payload = util::to_bytes("spoofed");
    net::EthernetFrame frame{fake_src_mac, dst_mac, net::EtherType::kIpv4,
                             dgram.encode()};
    host_.send_frame_raw(iface_, frame);
  }
}

void Attacker::dos_flood(net::IpAddress dst_ip, net::MacAddress dst_mac,
                         std::uint16_t dst_port, std::uint32_t pps,
                         sim::Time duration, std::size_t payload_size) {
  log_.info("DoS flood toward ", dst_ip.str(), ":", dst_port, " at ", pps,
            " pps for ", duration / sim::kMillisecond, "ms");
  const sim::Time gap = sim::kSecond / std::max<std::uint32_t>(1, pps);
  const std::uint64_t total = duration / std::max<sim::Time>(1, gap);
  if (label_) label_("dos-flood", sim_.now(), sim_.now() + duration);
  for (std::uint64_t i = 0; i < total; ++i) {
    sim_.schedule_after(gap * i, [this, dst_ip, dst_mac, dst_port,
                                  payload_size] {
      ++stats_.dos_frames_sent;
      net::Datagram dgram;
      dgram.src_ip = host_.ip(iface_);
      dgram.dst_ip = dst_ip;
      dgram.src_port = attack_port_;
      dgram.dst_port = dst_port;
      dgram.payload.assign(payload_size, 0xDD);
      net::EthernetFrame frame{host_.mac(iface_), dst_mac,
                               net::EtherType::kIpv4, dgram.encode()};
      host_.send_frame_raw(iface_, frame);
    });
  }
}

void Attacker::plc_dump_config(
    net::IpAddress plc_ip,
    std::function<void(std::optional<plc::PlcConfig>)> done, sim::Time timeout) {
  pending_dump_ = std::move(done);
  host_.bind_udp(attack_port_, [this](const net::Datagram& dgram) {
    if (!pending_dump_) return;
    try {
      util::ByteReader r(dgram.payload);
      const auto op = static_cast<plc::MaintenanceOp>(r.u8());
      if (op != plc::MaintenanceOp::kDumpConfig) return;
      const auto blob = r.blob();
      auto handler = std::move(pending_dump_);
      pending_dump_ = nullptr;
      sim_.cancel(dump_timeout_);
      handler(plc::PlcConfig::decode(blob));
    } catch (const util::SerializationError&) {
    }
  });

  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(plc::MaintenanceOp::kDumpConfig));
  const bool sent =
      host_.send_udp(plc_ip, plc::kMaintenancePort, attack_port_, w.take());
  log_.info("PLC config dump request to ", plc_ip.str(),
            sent ? "" : " (egress blocked)");

  dump_timeout_ = sim_.schedule_after(timeout, [this] {
    if (!pending_dump_) return;
    auto handler = std::move(pending_dump_);
    pending_dump_ = nullptr;
    handler(std::nullopt);
  });
}

void Attacker::plc_upload_config(net::IpAddress plc_ip,
                                 const std::string& password,
                                 plc::PlcConfig config) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(plc::MaintenanceOp::kUploadConfig));
  w.str(password);
  w.blob(config.encode());
  host_.send_udp(plc_ip, plc::kMaintenancePort, attack_port_, w.take());
  log_.info("PLC config upload to ", plc_ip.str());
}

void Attacker::plc_direct_write(net::IpAddress plc_ip, std::uint16_t breaker,
                                bool close) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(plc::MaintenanceOp::kDirectCoilWrite));
  w.u16(breaker);
  w.boolean(close);
  host_.send_udp(plc_ip, plc::kMaintenancePort, attack_port_, w.take());
}

EscalationResult try_privilege_escalation(const net::Host& target) {
  const net::OsProfile& os = target.os();
  if (!os.patched_kernel) return EscalationResult::kRootViaKernelExploit;
  if (!os.patched_sshd) return EscalationResult::kRootViaSshd;
  return EscalationResult::kFailedPatchedOs;
}

std::string_view to_string(EscalationResult result) {
  switch (result) {
    case EscalationResult::kRootViaKernelExploit: return "root-via-kernel-exploit";
    case EscalationResult::kRootViaSshd: return "root-via-sshd-exploit";
    case EscalationResult::kFailedPatchedOs: return "failed-patched-os";
  }
  return "?";
}

Exploit craft_exploit_against(const prime::Replica& replica) {
  return Exploit{replica.variant()};
}

bool apply_exploit(prime::Replica& replica, const Exploit& exploit,
                   prime::ReplicaBehavior on_success_behavior) {
  if (replica.variant() != exploit.target_variant) return false;
  replica.set_behavior(on_success_behavior);
  return true;
}

bool apply_exploit(prime::Replica& replica, const Exploit& exploit,
                   prime::ByzantineConfig on_success_byzantine) {
  if (replica.variant() != exploit.target_variant) return false;
  replica.set_byzantine(std::move(on_success_byzantine));
  return true;
}

}  // namespace spire::attack
