// Red-team attack framework (paper §IV).
//
// An Attacker drives a host it controls and replays the attacks the
// Sandia red team used, as primitives the experiment benches compose:
//   * port scans and IP-spoofed traffic,
//   * ARP poisoning and full man-in-the-middle interception,
//   * denial-of-service traffic bursts,
//   * PLC maintenance-protocol abuse (memory dump -> config upload ->
//     direct breaker control),
//   * privilege-escalation attempts against the host OS profile
//     (dirtycow-class kernel bugs, sshd CVEs),
//   * diversity-aware replica exploits (an exploit is crafted against
//     one MultiCompiler variant and only works on that variant).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "plc/plc.hpp"
#include "prime/replica.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace spire::attack {

struct AttackStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t arp_poisons_sent = 0;
  std::uint64_t spoofed_frames_sent = 0;
  std::uint64_t dos_frames_sent = 0;
  std::uint64_t mitm_intercepted = 0;
  std::uint64_t mitm_tampered = 0;
};

class Attacker {
 public:
  Attacker(sim::Simulator& sim, net::Host& host, std::size_t iface = 0);

  /// Ground-truth labeling for detection scoring: every traffic
  /// primitive reports (attack name, start, end) when launched, with
  /// end computed from its own schedule (0 = open-ended, e.g. MITM).
  /// The sink carries plain types only, so scoreboards in higher
  /// layers can subscribe without this library depending on them.
  using LabelSink =
      std::function<void(std::string_view name, sim::Time start, sim::Time end)>;
  void set_label_sink(LabelSink sink) { label_ = std::move(sink); }

  // ---- reconnaissance ------------------------------------------------------
  /// UDP port sweep of `target` over [first_port, last_port], paced.
  void port_scan(net::IpAddress target, std::uint16_t first_port,
                 std::uint16_t last_port, sim::Time pace = 500);

  // ---- layer-2 attacks -----------------------------------------------------
  /// Sends `count` gratuitous ARP replies to `victim`, claiming
  /// `impersonated_ip` lives at this attacker's MAC.
  void arp_poison(net::IpAddress victim_ip, net::MacAddress victim_mac,
                  net::IpAddress impersonated_ip, int count = 3,
                  sim::Time interval = 50 * sim::kMillisecond);

  /// Installs a man-in-the-middle on traffic that ARP poisoning steers
  /// to this host: `tamper` may modify the datagram (return the
  /// modified copy), drop it (nullopt), or pass it through unchanged.
  /// The attacker re-resolves the true destination and forwards.
  using TamperFn =
      std::function<std::optional<net::Datagram>(const net::Datagram&)>;
  void start_mitm(TamperFn tamper);
  void stop_mitm();

  /// Frames with a forged source IP/MAC.
  void ip_spoof_burst(net::IpAddress fake_src_ip, net::MacAddress fake_src_mac,
                      net::IpAddress dst_ip, net::MacAddress dst_mac,
                      std::uint16_t dst_port, int count);

  /// Traffic flood toward a target at `pps` for `duration`.
  void dos_flood(net::IpAddress dst_ip, net::MacAddress dst_mac,
                 std::uint16_t dst_port, std::uint32_t pps, sim::Time duration,
                 std::size_t payload_size = 1000);

  // ---- PLC maintenance abuse ------------------------------------------------
  /// Issues a memory/config dump; `on_config` fires with the parsed
  /// config (the step that leaked the password in the red-team test).
  void plc_dump_config(net::IpAddress plc_ip,
                       std::function<void(std::optional<plc::PlcConfig>)> done,
                       sim::Time timeout = 500 * sim::kMillisecond);
  /// Uploads a config using `password`; enables direct control.
  void plc_upload_config(net::IpAddress plc_ip, const std::string& password,
                         plc::PlcConfig config);
  void plc_direct_write(net::IpAddress plc_ip, std::uint16_t breaker,
                        bool close);

  [[nodiscard]] const AttackStats& stats() const { return stats_; }
  [[nodiscard]] net::Host& host() { return host_; }

 private:
  void forward_intercepted(const net::Datagram& dgram);

  sim::Simulator& sim_;
  net::Host& host_;
  std::size_t iface_;
  util::Logger log_;
  std::uint16_t attack_port_ = 47000;
  AttackStats stats_;
  LabelSink label_;
  sim::Time mitm_start_ = 0;
  TamperFn tamper_;
  std::function<void(std::optional<plc::PlcConfig>)> pending_dump_;
  sim::EventId dump_timeout_ = 0;
};

// ---- host / replica compromise models ---------------------------------------

enum class EscalationResult {
  kRootViaKernelExploit,  ///< dirtycow-class shared-memory bug
  kRootViaSshd,
  kFailedPatchedOs,
};

[[nodiscard]] EscalationResult try_privilege_escalation(const net::Host& target);
[[nodiscard]] std::string_view to_string(EscalationResult result);

/// A crafted exploit binds to the diversity variant it was developed
/// against (the MultiCompiler property, DESIGN.md §3).
struct Exploit {
  std::uint64_t target_variant = 0;
};

[[nodiscard]] Exploit craft_exploit_against(const prime::Replica& replica);

/// Attempts the exploit: succeeds (installing `on_success_behavior`)
/// only if the replica currently runs the targeted variant.
bool apply_exploit(prime::Replica& replica, const Exploit& exploit,
                   prime::ReplicaBehavior on_success_behavior);

/// Adversary-v2 variant: on success the compromised replica runs the
/// scripted Byzantine behaviour (delay/reorder/equivocate/withhold/
/// forge) instead of a coarse ReplicaBehavior. The next proactive
/// recovery wipes it along with the variant the exploit bound to.
bool apply_exploit(prime::Replica& replica, const Exploit& exploit,
                   prime::ByzantineConfig on_success_byzantine);

}  // namespace spire::attack
