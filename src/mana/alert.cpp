#include "mana/alert.hpp"

#include <cstdio>

#include "mana/features.hpp"

namespace spire::mana {

namespace {

std::string format_ip(std::uint64_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u",
                static_cast<unsigned>((ip >> 24) & 0xFF),
                static_cast<unsigned>((ip >> 16) & 0xFF),
                static_cast<unsigned>((ip >> 8) & 0xFF),
                static_cast<unsigned>(ip & 0xFF));
  return buf;
}

std::string format_mac(std::uint64_t key) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((key >> 40) & 0xFF),
                static_cast<unsigned>((key >> 32) & 0xFF),
                static_cast<unsigned>((key >> 24) & 0xFF),
                static_cast<unsigned>((key >> 16) & 0xFF),
                static_cast<unsigned>((key >> 8) & 0xFF),
                static_cast<unsigned>(key & 0xFF));
  return buf;
}

}  // namespace

std::string_view to_string(DetectorId id) {
  switch (id) {
    case DetectorId::kKMeans: return "kmeans";
    case DetectorId::kOcSvm: return "ocsvm";
    case DetectorId::kRules: return "rules";
    case DetectorId::kEnsemble: return "ensemble";
  }
  return "?";
}

std::string_view to_string(AlertKind kind) {
  switch (kind) {
    case AlertKind::kAnomalousWindow: return "anomalous-window";
    case AlertKind::kArpBindingChange: return "arp-binding-change";
    case AlertKind::kPortScan: return "port-scan";
    case AlertKind::kTrafficFlood: return "traffic-flood";
    case AlertKind::kNewSourceMac: return "new-source-mac";
    case AlertKind::kSubstationFlood: return "substation-flood";
  }
  return "?";
}

std::string Alert::detail() const {
  switch (kind) {
    case AlertKind::kAnomalousWindow: {
      // args: {dominant feature index, 0, 0}
      const auto idx = static_cast<std::size_t>(args[0]);
      std::string out = "dominant feature: ";
      out += idx < WindowFeatures::kDim ? WindowFeatures::names()[idx] : "?";
      out += " (votes:";
      for (std::size_t d = 0; d < kVotingDetectors; ++d) {
        if (votes & (1u << d)) {
          out += ' ';
          out += to_string(static_cast<DetectorId>(d));
        }
      }
      out += ')';
      return out;
    }
    case AlertKind::kArpBindingChange:
      // args: {ip, old mac key (0 = never seen in baseline), new mac key}
      if (args[1] == 0) {
        return "new binding " + format_ip(args[0]) + " -> " +
               format_mac(args[2]) + " never seen in baseline";
      }
      return format_ip(args[0]) + " moved from " + format_mac(args[1]) +
             " to " + format_mac(args[2]);
    case AlertKind::kPortScan:
      // args: {src ip, distinct ports, threshold}
      return format_ip(args[0]) + " probed " + std::to_string(args[1]) +
             " distinct ports (threshold " + std::to_string(args[2]) + ")";
    case AlertKind::kTrafficFlood:
      // args: {window frames, baseline ceiling, 0}
      return std::to_string(args[0]) + " frames in window (baseline max " +
             std::to_string(args[1]) + ")";
    case AlertKind::kNewSourceMac:
      // args: {mac key, 0, 0}
      return "source " + format_mac(args[0]) + " never seen in baseline";
    case AlertKind::kSubstationFlood:
      // args: {/24 subnet base, window frames, ceiling}
      return "substation " + format_ip(args[0]) + "/24 sent " +
             std::to_string(args[1]) + " frames (ceiling " +
             std::to_string(args[2]) + ")";
  }
  return "?";
}

}  // namespace spire::mana
