#include "mana/kmeans.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace spire::mana {

namespace {

double sq_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

double KMeansModel::nearest_distance(const std::vector<double>& point) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& c : centroids) best = std::min(best, sq_distance(point, c));
  return std::sqrt(best);
}

std::size_t KMeansModel::nearest_centroid(
    const std::vector<double>& point) const {
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    const double d = sq_distance(point, centroids[i]);
    if (d < best) {
      best = d;
      best_index = i;
    }
  }
  return best_index;
}

KMeansModel kmeans_fit(const std::vector<std::vector<double>>& points,
                       std::size_t k, sim::Rng& rng, int max_iterations) {
  if (points.empty()) throw std::invalid_argument("kmeans: no training data");
  k = std::max<std::size_t>(1, std::min(k, points.size()));

  KMeansModel model;
  // k-means++ seeding.
  model.centroids.push_back(
      points[rng.uniform(0, points.size() - 1)]);
  while (model.centroids.size() < k) {
    std::vector<double> weights(points.size());
    double total = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : model.centroids) {
        best = std::min(best, sq_distance(points[i], c));
      }
      weights[i] = best;
      total += best;
    }
    if (total <= 0) break;  // all remaining points coincide with centroids
    double pick = rng.uniform01() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      pick -= weights[i];
      if (pick <= 0) {
        chosen = i;
        break;
      }
    }
    model.centroids.push_back(points[chosen]);
  }

  // Lloyd iterations.
  const std::size_t dim = points.front().size();
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    std::vector<std::vector<double>> sums(model.centroids.size(),
                                          std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(model.centroids.size(), 0);
    for (const auto& p : points) {
      const std::size_t c = model.nearest_centroid(p);
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += p[d];
    }
    bool moved = false;
    for (std::size_t c = 0; c < model.centroids.size(); ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t d = 0; d < dim; ++d) {
        const double next = sums[c][d] / static_cast<double>(counts[c]);
        if (std::abs(next - model.centroids[c][d]) > 1e-12) moved = true;
        model.centroids[c][d] = next;
      }
    }
    if (!moved) break;
  }
  return model;
}

}  // namespace spire::mana
