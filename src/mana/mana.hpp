// MANA: Machine-learning Assisted Network Analyzer (paper §II, §III-C).
//
// One Mana instance per monitored network (the red-team experiment ran
// three: enterprise + two operations networks). It is strictly
// out-of-band: its only input is the mirrored packet capture from a
// switch tap, and it emits alerts for the situational-awareness board.
//
// Detection combines an unsupervised anomaly model (z-normalized
// windowed features -> k-means -> distance threshold calibrated on the
// training capture) with protocol-shape watchers that attribute the
// anomaly: ARP binding changes (MITM), port fan-out (scanning), and
// traffic floods (DoS).
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "mana/features.hpp"
#include "mana/kmeans.hpp"
#include "net/pcap.hpp"
#include "util/log.hpp"

namespace spire::mana {

enum class AlertKind {
  kAnomalousWindow,
  kArpBindingChange,
  kPortScan,
  kTrafficFlood,
};

[[nodiscard]] std::string_view to_string(AlertKind kind);

struct Alert {
  sim::Time at = 0;
  std::string network;
  AlertKind kind = AlertKind::kAnomalousWindow;
  std::string detail;
  double score = 0;  ///< anomaly score (distance / threshold), where relevant
};

struct ManaConfig {
  std::string network;  ///< label, e.g. "operations-spire"
  sim::Time window = 1 * sim::kSecond;
  std::size_t clusters = 4;
  /// Anomaly threshold = this multiple of the max training distance.
  double threshold_slack = 1.5;
  std::size_t port_scan_threshold = 15;  ///< distinct dst ports per src
  /// Flood alert when a window carries this multiple of the busiest
  /// training window. SCADA traffic is highly regular (§V), so 3x the
  /// observed maximum is still far above benign variation.
  double flood_multiplier = 2.0;
  std::uint64_t seed = 0x4D414E41;       // "MANA"
};

class Mana {
 public:
  explicit Mana(ManaConfig config);

  /// Feed a mirrored frame (wire this to Switch::add_tap).
  void on_capture(const net::PcapRecord& record);

  /// Training lifecycle: ingest baseline traffic, then finalize.
  void finish_training();
  [[nodiscard]] bool trained() const { return model_.has_value(); }

  /// Push window boundaries forward on quiet networks.
  void flush_until(sim::Time now);

  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  [[nodiscard]] std::size_t windows_scored() const { return windows_scored_; }
  [[nodiscard]] std::size_t windows_anomalous() const {
    return windows_anomalous_;
  }
  [[nodiscard]] double threshold() const { return threshold_; }

  /// Clears the alert list (between experiment phases).
  void clear_alerts() { alerts_.clear(); }

 private:
  void on_window(const WindowFeatures& features);
  [[nodiscard]] std::vector<double> normalize(
      const std::vector<double>& raw) const;
  void raise(AlertKind kind, std::string detail, double score,
             sim::Time at);

  ManaConfig config_;
  util::Logger log_;
  sim::Rng rng_;
  FeatureExtractor extractor_;

  // Training accumulators.
  std::vector<std::vector<double>> training_windows_;
  std::vector<double> mean_, stddev_;
  double max_training_frames_ = 0;
  std::optional<KMeansModel> model_;
  double threshold_ = 0;

  // ARP watch: IP -> MAC binding learned in training.
  std::map<std::uint32_t, net::MacAddress> arp_bindings_;

  std::vector<Alert> alerts_;
  std::map<AlertKind, sim::Time> last_raised_;
  std::size_t windows_scored_ = 0;
  std::size_t windows_anomalous_ = 0;
};

}  // namespace spire::mana
