// MANA: Machine-learning Assisted Network Analyzer (paper §II, §III-C;
// DESIGN.md §13).
//
// One Mana instance per monitored network (the red-team experiment ran
// three: enterprise + two operations networks). It is strictly
// out-of-band: its only input is the mirrored packet capture from a
// switch tap, and it emits alerts for the situational-awareness board.
//
// The pipeline is streaming and allocation-free per frame:
//
//   Switch mirror ─▶ CaptureTap ring ─▶ poll() drain
//                                          │
//                              FeatureExtractor (flat accumulators)
//                                          │ windowed features
//               ┌──────────────┬───────────┴──────────┐
//            k-means        one-class SVM         RuleEngine
//          (distance)      (RFF distance)     (per-substation watch)
//               └──────────────┴───────────┬──────────┘
//                              majority vote (≥ min_votes)
//                                          │
//                            Alert {detector, votes, args}
//
// The statistical members flag a window; the rule watchers *attribute*
// it (which binding flipped, who scanned, which substation flooded)
// and raise their own alerts immediately. Every alert records which
// detectors agreed, and detail text is deferred until an exporter asks.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mana/alert.hpp"
#include "mana/features.hpp"
#include "mana/kmeans.hpp"
#include "mana/ocsvm.hpp"
#include "mana/rules.hpp"
#include "net/pcap.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace spire::mana {

struct ManaConfig {
  std::string network;  ///< label, e.g. "operations-spire"
  sim::Time window = 1 * sim::kSecond;
  std::size_t clusters = 4;
  /// k-means anomaly threshold = this multiple of the max training
  /// distance.
  double threshold_slack = 1.5;
  std::size_t port_scan_threshold = 15;  ///< distinct dst ports per src
  /// Flood alert when a window carries this multiple of the busiest
  /// training window (global and per substation).
  double flood_multiplier = 2.0;
  /// Votes (of kVotingDetectors) required for an ensemble
  /// anomalous-window alert.
  std::size_t min_votes = 2;
  OcSvmConfig ocsvm;
  RuleConfig rules;  ///< port_scan_threshold / flood_multiplier above win
  FeatureConfig features;
  net::CaptureTapConfig tap;
  std::uint64_t seed = 0x4D414E41;  // "MANA"
};

struct ManaStats {
  std::uint64_t frames_processed = 0;  ///< drained weights (frames seen)
  std::uint64_t windows_scored = 0;
  std::uint64_t windows_anomalous = 0;
  std::uint64_t sampled_windows_scored = 0;  ///< scored under sampling
  std::uint64_t alerts_total = 0;
};

class Mana {
 public:
  explicit Mana(ManaConfig config);

  /// The line-rate capture ring. Attach with
  /// `sw.add_capture_tap(&mana.tap())`; Mana outlives the switch wiring.
  [[nodiscard]] net::CaptureTap& tap() { return tap_; }

  /// Out-of-band analyzer turn: drains the capture ring through the
  /// feature extractor and rule watchers, then closes any elapsed
  /// windows. Schedule periodically (e.g. once per window).
  void poll(sim::Time now);

  /// Legacy per-frame path (Switch::add_tap wiring): summarizes and
  /// processes the frame inline, bypassing the ring.
  void on_capture(const net::PcapRecord& record);

  /// Training lifecycle: ingest baseline traffic, then finalize all
  /// three detectors.
  void finish_training();
  [[nodiscard]] bool trained() const { return model_.has_value(); }

  /// Push window boundaries forward on quiet networks.
  void flush_until(sim::Time now);

  /// Invoked for every raised alert (after rate-limiting); wire the
  /// scoreboard here.
  void set_alert_sink(std::function<void(const Alert&)> sink) {
    alert_sink_ = std::move(sink);
  }

  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  [[nodiscard]] const ManaStats& stats() const { return stats_; }
  [[nodiscard]] const ExtractorStats& extractor_stats() const {
    return extractor_.stats();
  }
  [[nodiscard]] const net::CaptureTapStats& tap_stats() const {
    return tap_.stats();
  }
  [[nodiscard]] std::size_t windows_scored() const {
    return stats_.windows_scored;
  }
  [[nodiscard]] std::size_t windows_anomalous() const {
    return stats_.windows_anomalous;
  }
  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] net::NetworkId network_id() const { return network_id_; }

  /// Clears the alert list (between experiment phases).
  void clear_alerts() { alerts_.clear(); }

 private:
  void process_summary(const net::FrameSummary& summary);
  void on_window(const WindowFeatures& features);
  void on_finding(const RuleFinding& finding);
  void normalize(const std::array<double, WindowFeatures::kDim>& raw,
                 std::vector<double>& out) const;
  void raise(Alert alert);

  ManaConfig config_;
  net::NetworkId network_id_ = 0;
  util::Logger log_;
  sim::Rng rng_;
  net::CaptureTap tap_;
  FeatureExtractor extractor_;
  RuleEngine rules_;
  OcSvm ocsvm_;

  // Training accumulators.
  std::vector<std::vector<double>> training_windows_;
  std::vector<double> mean_, stddev_;
  std::optional<KMeansModel> model_;
  double threshold_ = 0;
  mutable std::vector<double> normalized_;  // scoring scratch

  std::vector<Alert> alerts_;
  std::function<void(const Alert&)> alert_sink_;
  std::map<AlertKind, sim::Time> last_raised_;
  ManaStats stats_;
  obs::Binder metrics_;
};

}  // namespace spire::mana
