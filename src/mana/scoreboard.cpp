#include "mana/scoreboard.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace spire::mana {

ScoreBoard::ScoreBoard(ScoreBoardConfig config) : config_(config) {}

void ScoreBoard::attack_begin(std::string name, sim::Time start,
                              std::vector<AlertKind> expected) {
  if (obs::Tracer* tracer = obs::Tracer::current()) {
    tracer->attack_begin_marker(name, start);
  }
  PendingAttack attack;
  attack.label =
      AttackLabel{std::move(name), start, 0, std::move(expected)};
  attacks_.push_back(std::move(attack));
}

void ScoreBoard::attack_end(std::string_view name, sim::Time end) {
  for (auto it = attacks_.rbegin(); it != attacks_.rend(); ++it) {
    if (it->label.end == 0 && it->label.name == name) {
      it->label.end = end;
      if (obs::Tracer* tracer = obs::Tracer::current()) {
        tracer->attack_end_marker(it->label.name, end);
      }
      return;
    }
  }
}

void ScoreBoard::add_label(AttackLabel label) {
  if (obs::Tracer* tracer = obs::Tracer::current()) {
    tracer->attack_begin_marker(label.name, label.start);
    if (label.end != 0) tracer->attack_end_marker(label.name, label.end);
  }
  PendingAttack attack;
  attack.label = std::move(label);
  attacks_.push_back(std::move(attack));
}

ScoreBoard::PendingAttack* ScoreBoard::match(const Alert& alert) {
  for (PendingAttack& attack : attacks_) {
    const AttackLabel& label = attack.label;
    if (alert.at < label.start) continue;
    if (label.end != 0 && alert.at > label.end + config_.grace) continue;
    if (!label.expected.empty() &&
        std::find(label.expected.begin(), label.expected.end(), alert.kind) ==
            label.expected.end()) {
      continue;
    }
    return &attack;
  }
  return nullptr;
}

void ScoreBoard::on_alert(const Alert& alert) {
  ++alerts_seen_;
  PendingAttack* attack = match(alert);
  const bool hit = attack != nullptr;

  for (std::size_t d = 0; d < kVotingDetectors; ++d) {
    if ((alert.votes & (1u << d)) == 0) continue;
    if (hit) {
      ++scores_[d].true_positives;
    } else {
      ++scores_[d].false_positives;
    }
  }
  auto& ensemble = scores_[static_cast<std::size_t>(DetectorId::kEnsemble)];
  if (hit) {
    ++ensemble.true_positives;
  } else {
    ++ensemble.false_positives;
  }

  if (hit) {
    if (!attack->detected) {
      attack->detected = true;
      attack->first_alert = alert.at;
      attack->first_kind = alert.kind;
      attack->first_detector = alert.detector;
    }
    attack->detectors |= alert.votes;
  }
}

void ScoreBoard::finalize(sim::Time now) {
  if (finalized_) return;
  finalized_ = true;
  for (PendingAttack& attack : attacks_) {
    if (attack.label.end == 0) attack.label.end = now;
    AttackOutcome outcome;
    outcome.name = attack.label.name;
    outcome.start = attack.label.start;
    outcome.end = attack.label.end;
    outcome.detected = attack.detected;
    outcome.detectors = attack.detectors;
    if (attack.detected) {
      outcome.first_alert = attack.first_alert;
      outcome.latency = attack.first_alert - attack.label.start;
      outcome.first_kind = attack.first_kind;
      outcome.first_detector = attack.first_detector;
      if (latency_hist_ != nullptr) {
        latency_hist_->record(static_cast<std::uint64_t>(outcome.latency));
      }
    }
    for (std::size_t d = 0; d < kVotingDetectors; ++d) {
      if (attack.detectors & (1u << d)) {
        ++scores_[d].attacks_detected;
      } else {
        ++scores_[d].attacks_missed;
      }
    }
    auto& ensemble = scores_[static_cast<std::size_t>(DetectorId::kEnsemble)];
    if (attack.detected) {
      ++ensemble.attacks_detected;
    } else {
      ++ensemble.attacks_missed;
    }
    outcomes_.push_back(std::move(outcome));
  }
}

double ScoreBoard::mean_latency_us() const {
  std::uint64_t sum = 0;
  std::uint64_t n = 0;
  for (const AttackOutcome& o : outcomes_) {
    if (!o.detected) continue;
    sum += static_cast<std::uint64_t>(o.latency);
    ++n;
  }
  return n > 0 ? static_cast<double>(sum) / static_cast<double>(n) : 0;
}

std::uint64_t ScoreBoard::max_latency_us() const {
  std::uint64_t max = 0;
  for (const AttackOutcome& o : outcomes_) {
    if (o.detected) max = std::max(max, static_cast<std::uint64_t>(o.latency));
  }
  return max;
}

void ScoreBoard::bind_metrics(const std::string& prefix) {
  binder_ = std::make_unique<obs::Binder>(prefix);
  latency_hist_ =
      obs::MetricsRegistry::current().histogram(prefix + ".detection_latency_us");
  static const char* kRows[] = {"kmeans", "ocsvm", "rules", "ensemble"};
  for (std::size_t d = 0; d < kVotingDetectors + 1; ++d) {
    const std::string row = kRows[d];
    binder_->counter(row + ".true_positives", &scores_[d].true_positives);
    binder_->counter(row + ".false_positives", &scores_[d].false_positives);
    binder_->counter(row + ".attacks_detected", &scores_[d].attacks_detected);
    binder_->counter(row + ".attacks_missed", &scores_[d].attacks_missed);
    // ×1000 fixed-point so 0.95 precision reads as 950 in snapshots.
    binder_->gauge_fn(row + ".precision_m", [this, d] {
      return static_cast<std::int64_t>(scores_[d].precision() * 1000);
    });
    binder_->gauge_fn(row + ".recall_m", [this, d] {
      return static_cast<std::int64_t>(scores_[d].recall() * 1000);
    });
  }
}

}  // namespace spire::mana
