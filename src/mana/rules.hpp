// Per-substation rule watchers (DESIGN.md §13).
//
// The third ensemble member: deterministic protocol-shape rules that
// *attribute* an anomaly while the statistical models only flag it.
// SCADA networks are finalized at commissioning (paper §V), which makes
// hard allowlists viable: the set of source MACs, the IP→MAC ARP
// bindings, and each substation's (/24) traffic ceiling are all learned
// from the baseline capture and then frozen.
//
// Watchers:
//  * ARP binding watch — a claimed sender binding that contradicts the
//    baseline is a poisoning signature (immediate, per frame).
//  * New-source-MAC — a source MAC never seen in baseline (immediate,
//    reported once per MAC).
//  * Port fan-out — a source probing many distinct destination ports;
//    fires the moment the threshold is crossed, not at window close.
//  * Flood ceilings — global and per-/24 weighted frame counts checked
//    at window close against baseline-max × multiplier.
//
// The engine consumes the same FrameSummary stream as the feature
// extractor and shares its window cadence; all per-window state lives
// in epoch-cleared flat tables (no per-window allocation).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "mana/alert.hpp"
#include "mana/features.hpp"

namespace spire::mana {

struct RuleConfig {
  std::size_t port_scan_threshold = 15;  ///< distinct dst ports per src
  /// Flood alert when a window carries this multiple of the busiest
  /// training window (globally or per substation). SCADA traffic is
  /// highly regular (§V), so 2x the observed maximum is still far
  /// above benign variation.
  double flood_multiplier = 2.0;
  /// Minimum absolute per-substation ceiling, so a subnet that was
  /// nearly silent in training doesn't alert on two frames.
  std::uint64_t min_substation_ceiling = 64;
  std::size_t max_tracked_sources = 2048;   ///< port fan-out table
  std::size_t max_substations = 256;        ///< per-/24 counters
};

/// One rule verdict; the sink turns it into an Alert.
struct RuleFinding {
  AlertKind kind = AlertKind::kPortScan;
  sim::Time at = 0;
  double score = 0;
  std::array<std::uint64_t, 3> args{};
};

class RuleEngine {
 public:
  using FindingSink = std::function<void(const RuleFinding&)>;

  RuleEngine(RuleConfig config, FindingSink sink);

  /// Per-frame path: learns baselines before finish_training(), checks
  /// the immediate watchers after.
  void on_frame(const net::FrameSummary& s);

  /// Window-close path: flood ceilings (learn or check), then epoch-
  /// clears per-window state. Call when the feature extractor emits.
  void close_window(sim::Time window_start, sim::Time window_end);

  void finish_training();
  [[nodiscard]] bool trained() const { return trained_; }

  /// Findings raised during the window just closed (the rules' ensemble
  /// vote for that window). Valid after close_window().
  [[nodiscard]] std::size_t last_window_findings() const {
    return last_window_findings_;
  }

  [[nodiscard]] std::uint64_t baseline_max_window_frames() const {
    return global_ceiling_;
  }

 private:
  void emit(const RuleFinding& finding);

  RuleConfig config_;
  FindingSink sink_;
  bool trained_ = false;

  // Baselines, frozen at finish_training().
  std::map<std::uint32_t, std::uint64_t> arp_bindings_;  // IP → MAC key
  std::set<std::uint64_t> known_macs_;
  std::map<std::uint32_t, std::uint64_t> substation_ceiling_;  // /24 → frames
  std::uint64_t global_ceiling_ = 0;

  // Per-window accumulators (epoch-cleared).
  FlatPairSet port_pairs_;      // (src ip, dst port) dedupe
  FlatCounter ports_per_src_;   // src ip → distinct dst ports
  FlatCounter substation_frames_;  // /24 base → weighted frames
  std::uint64_t window_frames_ = 0;

  std::set<std::uint64_t> alerted_macs_;  // one kNewSourceMac per MAC
  std::size_t window_findings_ = 0;       // raised since last close
  std::size_t last_window_findings_ = 0;
};

}  // namespace spire::mana
