// MANA feature extraction (paper §II, §III-C; DESIGN.md §13).
//
// MANA consumes a passive packet capture and turns it into fixed-width
// windowed feature vectors for machine-learning evaluation. The
// features are protocol-agnostic on purpose: SCADA networks are full of
// proprietary and (in Spire's case) encrypted protocols, so MANA looks
// at traffic *shape* — volumes, sizes, fan-out, ARP behaviour — rather
// than payload contents.
//
// The extractor is streaming and allocation-free on the per-frame
// path: it ingests fixed-width FrameSummary records (from a
// CaptureTap ring) and accumulates into flat open-addressing tables
// whose per-window "clear" is an epoch bump, not a wipe. Additive
// features honour each summary's sampling weight, so windows scored
// under capture overload stay calibrated; distinct-count features are
// observed lower bounds and the window is flagged as sampled.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/pcap.hpp"
#include "sim/simulator.hpp"

namespace spire::mana {

/// Epoch-cleared open-addressing set of (a, b) u64 pairs. Fixed
/// capacity: inserts past the load limit are counted as saturation and
/// skipped (the distinct count becomes an explicit lower bound), never
/// allocated. clear() is O(1).
class FlatPairSet {
 public:
  explicit FlatPairSet(std::size_t min_capacity);

  /// True if the pair was newly inserted; false when already present
  /// or the table is saturated (check saturated_inserts()).
  bool insert(std::uint64_t a, std::uint64_t b);

  void clear() {
    ++epoch_;
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::uint64_t saturated_inserts() const { return saturated_; }

 private:
  struct Slot {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint32_t epoch = 0;
  };

  [[nodiscard]] std::size_t index_of(std::uint64_t a, std::uint64_t b) const {
    std::uint64_t h = a * 0x9E3779B97F4A7C15ull;
    h ^= b + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h >> 32) & mask_;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t limit_ = 0;  // load factor 1/2
  std::size_t size_ = 0;
  std::uint32_t epoch_ = 1;
  std::uint64_t saturated_ = 0;
};

/// Epoch-cleared open-addressing u64 → u32 counter map (same bounds
/// and saturation semantics as FlatPairSet).
class FlatCounter {
 public:
  explicit FlatCounter(std::size_t min_capacity);

  /// Increments `key` and returns its new count (0 when saturated).
  std::uint32_t increment(std::uint64_t key);

  /// Adds `delta` to `key`; returns the new total (0 when saturated).
  std::uint32_t add(std::uint64_t key, std::uint32_t delta);

  /// Visits every live (current-epoch) entry as fn(key, count).
  /// Slow path only (window close): walks the whole table.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.epoch == epoch_) fn(s.key, s.count);
    }
  }

  void clear() {
    ++epoch_;
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::uint64_t saturated_inserts() const { return saturated_; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t count = 0;
    std::uint32_t epoch = 0;
  };

  [[nodiscard]] std::size_t index_of(std::uint64_t key) const {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) &
           mask_;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t limit_ = 0;
  std::size_t size_ = 0;
  std::uint32_t epoch_ = 1;
  std::uint64_t saturated_ = 0;
};

/// One analysis window's feature vector (flat array: no per-window
/// allocation on the scoring path).
struct WindowFeatures {
  static constexpr std::size_t kDim = 10;

  sim::Time window_start = 0;
  sim::Time window_end = 0;
  std::array<double, kDim> values{};
  /// Frames represented by sampling weights beyond those actually
  /// captured in this window; > 0 marks the window as sampled.
  std::uint64_t sampled_weight = 0;
  /// An accumulator hit its capacity: distinct counts are lower bounds.
  bool saturated = false;

  [[nodiscard]] bool sampled() const { return sampled_weight > 0; }

  static const std::array<const char*, kDim>& names();
};

struct FeatureConfig {
  std::size_t max_src_macs = 2048;       ///< distinct L2 sources per window
  std::size_t max_flows = 4096;          ///< distinct (src,dst) MAC pairs
  std::size_t max_port_pairs = 4096;     ///< distinct (src IP, dst port)
  std::size_t max_src_counters = 2048;   ///< distinct source IPs
};

struct ExtractorStats {
  std::uint64_t frames_ingested = 0;
  std::uint64_t windows_emitted = 0;
  std::uint64_t sampled_windows = 0;
  std::uint64_t saturated_inserts = 0;
};

/// Streams FrameSummary records into windowed features.
class FeatureExtractor {
 public:
  using WindowSink = std::function<void(const WindowFeatures&)>;

  FeatureExtractor(sim::Time window, WindowSink sink,
                   FeatureConfig config = {});

  void ingest(const net::FrameSummary& summary);
  /// Closes the current window if `now` has passed its end (call
  /// periodically so quiet networks still emit windows).
  void flush_until(sim::Time now);

  [[nodiscard]] const ExtractorStats& stats() const { return stats_; }

 private:
  void emit();
  void roll_to(sim::Time t);
  void reset_window();

  sim::Time window_;
  WindowSink sink_;
  sim::Time current_start_ = 0;
  bool started_ = false;

  // Scalar accumulators for the current window (sampling-weighted).
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  double size_sum_ = 0;
  double size_sq_sum_ = 0;
  std::uint64_t arp_requests_ = 0;
  std::uint64_t arp_replies_ = 0;
  std::uint64_t broadcast_ = 0;
  std::uint64_t sampled_weight_ = 0;

  // Distinct-count accumulators (flat, epoch-cleared).
  FlatPairSet src_macs_;
  FlatPairSet flows_;
  FlatPairSet port_pairs_;   // (src IP, dst port) dedupe
  FlatCounter ports_per_src_;  // src IP → distinct dst ports
  std::uint32_t max_ports_per_src_ = 0;
  std::uint64_t saturated_at_window_start_ = 0;

  ExtractorStats stats_;
};

}  // namespace spire::mana
