// MANA feature extraction (paper §II, §III-C).
//
// MANA consumes a passive packet capture and turns it into fixed-width
// windowed feature vectors for machine-learning evaluation. The
// features are protocol-agnostic on purpose: SCADA networks are full of
// proprietary and (in Spire's case) encrypted protocols, so MANA looks
// at traffic *shape* — volumes, sizes, fan-out, ARP behaviour — rather
// than payload contents.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/pcap.hpp"
#include "sim/simulator.hpp"

namespace spire::mana {

/// One analysis window's feature vector.
struct WindowFeatures {
  sim::Time window_start = 0;
  sim::Time window_end = 0;
  std::vector<double> values;

  static const std::vector<std::string>& names();
  static constexpr std::size_t kDim = 10;
};

/// Streams PcapRecords into windowed features.
class FeatureExtractor {
 public:
  using WindowSink = std::function<void(const WindowFeatures&)>;

  FeatureExtractor(sim::Time window, WindowSink sink);

  void ingest(const net::PcapRecord& record);
  /// Closes the current window if `now` has passed its end (call
  /// periodically so quiet networks still emit windows).
  void flush_until(sim::Time now);

 private:
  void emit();
  void roll_to(sim::Time t);

  sim::Time window_;
  WindowSink sink_;
  sim::Time current_start_ = 0;
  bool started_ = false;

  // Accumulators for the current window.
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  double size_sum_ = 0;
  double size_sq_sum_ = 0;
  std::uint64_t arp_requests_ = 0;
  std::uint64_t arp_replies_ = 0;
  std::uint64_t broadcast_ = 0;
  std::set<net::MacAddress> src_macs_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> flows_;  ///< (src,dst) keys
  std::map<std::uint32_t, std::set<std::uint16_t>> dst_ports_per_src_;
};

}  // namespace spire::mana
