// k-means clustering (k-means++ init, Lloyd iterations) — the
// unsupervised model MANA trains on baseline traffic. Deterministic
// given the Rng seed.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace spire::mana {

struct KMeansModel {
  std::vector<std::vector<double>> centroids;

  /// Distance from `point` to the nearest centroid (Euclidean).
  [[nodiscard]] double nearest_distance(const std::vector<double>& point) const;
  [[nodiscard]] std::size_t nearest_centroid(
      const std::vector<double>& point) const;
};

/// Fits k-means on `points`; `k` is clamped to the number of distinct
/// points available.
[[nodiscard]] KMeansModel kmeans_fit(const std::vector<std::vector<double>>& points,
                                     std::size_t k, sim::Rng& rng,
                                     int max_iterations = 50);

}  // namespace spire::mana
