#include "mana/features.hpp"

#include <algorithm>
#include <cmath>

namespace spire::mana {

namespace {

std::size_t round_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlatPairSet::FlatPairSet(std::size_t min_capacity) {
  const std::size_t slots = round_pow2(std::max<std::size_t>(8, min_capacity) * 2);
  slots_.resize(slots);
  mask_ = slots - 1;
  limit_ = slots / 2;
}

bool FlatPairSet::insert(std::uint64_t a, std::uint64_t b) {
  std::size_t i = index_of(a, b);
  while (slots_[i].epoch == epoch_) {
    if (slots_[i].a == a && slots_[i].b == b) return false;
    i = (i + 1) & mask_;
  }
  if (size_ >= limit_) {
    ++saturated_;
    return false;
  }
  slots_[i] = Slot{a, b, epoch_};
  ++size_;
  return true;
}

FlatCounter::FlatCounter(std::size_t min_capacity) {
  const std::size_t slots = round_pow2(std::max<std::size_t>(8, min_capacity) * 2);
  slots_.resize(slots);
  mask_ = slots - 1;
  limit_ = slots / 2;
}

std::uint32_t FlatCounter::increment(std::uint64_t key) {
  return add(key, 1);
}

std::uint32_t FlatCounter::add(std::uint64_t key, std::uint32_t delta) {
  std::size_t i = index_of(key);
  while (slots_[i].epoch == epoch_) {
    if (slots_[i].key == key) {
      slots_[i].count += delta;
      return slots_[i].count;
    }
    i = (i + 1) & mask_;
  }
  if (size_ >= limit_) {
    ++saturated_;
    return 0;
  }
  slots_[i] = Slot{key, delta, epoch_};
  ++size_;
  return delta;
}

const std::array<const char*, WindowFeatures::kDim>& WindowFeatures::names() {
  static const std::array<const char*, kDim> kNames = {
      "frames",        "bytes",         "mean_size",   "stddev_size",
      "arp_requests",  "arp_replies",   "broadcast",   "unique_src_macs",
      "unique_flows",  "max_ports_per_src"};
  return kNames;
}

FeatureExtractor::FeatureExtractor(sim::Time window, WindowSink sink,
                                   FeatureConfig config)
    : window_(window),
      sink_(std::move(sink)),
      src_macs_(config.max_src_macs),
      flows_(config.max_flows),
      port_pairs_(config.max_port_pairs),
      ports_per_src_(config.max_src_counters) {}

void FeatureExtractor::roll_to(sim::Time t) {
  if (!started_) {
    current_start_ = t - (t % window_);
    started_ = true;
    return;
  }
  while (t >= current_start_ + window_) {
    emit();
    current_start_ += window_;
  }
}

void FeatureExtractor::ingest(const net::FrameSummary& s) {
  roll_to(s.time);
  ++stats_.frames_ingested;

  const std::uint64_t w = s.weight;
  frames_ += w;
  bytes_ += static_cast<std::uint64_t>(s.wire_size) * w;
  const double size = static_cast<double>(s.wire_size);
  const double dw = static_cast<double>(w);
  size_sum_ += size * dw;
  size_sq_sum_ += size * size * dw;
  if (s.broadcast()) broadcast_ += w;
  if (w > 1) sampled_weight_ += w - 1;
  src_macs_.insert(s.src_mac, 0);

  if (s.kind == net::FrameKind::kArp) {
    if (s.arp_reply()) {
      arp_replies_ += w;
    } else {
      arp_requests_ += w;
    }
  } else if (s.kind == net::FrameKind::kIpv4) {
    flows_.insert(s.src_mac, s.dst_mac);
    if (port_pairs_.insert(s.src_ip, s.dst_port)) {
      const std::uint32_t count = ports_per_src_.increment(s.src_ip);
      if (count > max_ports_per_src_) max_ports_per_src_ = count;
    }
  }
}

void FeatureExtractor::flush_until(sim::Time now) {
  if (!started_) return;
  while (now >= current_start_ + window_) {
    emit();
    current_start_ += window_;
  }
}

void FeatureExtractor::emit() {
  WindowFeatures out;
  out.window_start = current_start_;
  out.window_end = current_start_ + window_;

  const double n = static_cast<double>(frames_);
  const double mean = frames_ ? size_sum_ / n : 0.0;
  const double variance =
      frames_ ? std::max(0.0, size_sq_sum_ / n - mean * mean) : 0.0;

  out.values = {static_cast<double>(frames_),
                static_cast<double>(bytes_),
                mean,
                std::sqrt(variance),
                static_cast<double>(arp_requests_),
                static_cast<double>(arp_replies_),
                static_cast<double>(broadcast_),
                static_cast<double>(src_macs_.size()),
                static_cast<double>(flows_.size()),
                static_cast<double>(max_ports_per_src_)};
  out.sampled_weight = sampled_weight_;
  const std::uint64_t saturated_now =
      src_macs_.saturated_inserts() + flows_.saturated_inserts() +
      port_pairs_.saturated_inserts() + ports_per_src_.saturated_inserts();
  out.saturated = saturated_now > saturated_at_window_start_;

  ++stats_.windows_emitted;
  if (out.sampled()) ++stats_.sampled_windows;
  stats_.saturated_inserts = saturated_now;
  saturated_at_window_start_ = saturated_now;

  sink_(out);
  reset_window();
}

void FeatureExtractor::reset_window() {
  frames_ = 0;
  bytes_ = 0;
  size_sum_ = 0;
  size_sq_sum_ = 0;
  arp_requests_ = 0;
  arp_replies_ = 0;
  broadcast_ = 0;
  sampled_weight_ = 0;
  max_ports_per_src_ = 0;
  src_macs_.clear();
  flows_.clear();
  port_pairs_.clear();
  ports_per_src_.clear();
}

}  // namespace spire::mana
