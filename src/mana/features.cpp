#include "mana/features.hpp"

#include <cmath>

namespace spire::mana {

const std::vector<std::string>& WindowFeatures::names() {
  static const std::vector<std::string> kNames = {
      "frames",        "bytes",         "mean_size",   "stddev_size",
      "arp_requests",  "arp_replies",   "broadcast",   "unique_src_macs",
      "unique_flows",  "max_ports_per_src"};
  return kNames;
}

FeatureExtractor::FeatureExtractor(sim::Time window, WindowSink sink)
    : window_(window), sink_(std::move(sink)) {}

void FeatureExtractor::roll_to(sim::Time t) {
  if (!started_) {
    current_start_ = t - (t % window_);
    started_ = true;
    return;
  }
  while (t >= current_start_ + window_) {
    emit();
    current_start_ += window_;
  }
}

void FeatureExtractor::ingest(const net::PcapRecord& record) {
  roll_to(record.time);

  const auto& frame = record.frame;
  ++frames_;
  const double size = static_cast<double>(frame.wire_size());
  bytes_ += frame.wire_size();
  size_sum_ += size;
  size_sq_sum_ += size * size;
  if (frame.dst.is_broadcast()) ++broadcast_;
  src_macs_.insert(frame.src);

  if (frame.ethertype == net::EtherType::kArp) {
    if (const auto arp = net::ArpPacket::decode(frame.payload)) {
      if (arp->op == net::ArpOp::kRequest) {
        ++arp_requests_;
      } else {
        ++arp_replies_;
      }
    }
  } else if (frame.ethertype == net::EtherType::kIpv4) {
    if (const auto dgram = net::Datagram::decode(frame.payload)) {
      auto mac_key = [](const net::MacAddress& m) {
        std::uint64_t v = 0;
        for (auto b : m.bytes) v = (v << 8) | b;
        return v;
      };
      flows_.insert(std::make_pair(mac_key(frame.src), mac_key(frame.dst)));
      dst_ports_per_src_[dgram->src_ip.value].insert(dgram->dst_port);
    }
  }
}

void FeatureExtractor::flush_until(sim::Time now) {
  if (!started_) return;
  while (now >= current_start_ + window_) {
    emit();
    current_start_ += window_;
  }
}

void FeatureExtractor::emit() {
  WindowFeatures out;
  out.window_start = current_start_;
  out.window_end = current_start_ + window_;

  const double n = static_cast<double>(frames_);
  const double mean = frames_ ? size_sum_ / n : 0.0;
  const double variance =
      frames_ ? std::max(0.0, size_sq_sum_ / n - mean * mean) : 0.0;
  std::size_t max_ports = 0;
  for (const auto& [src, ports] : dst_ports_per_src_) {
    max_ports = std::max(max_ports, ports.size());
  }

  out.values = {static_cast<double>(frames_),
                static_cast<double>(bytes_),
                mean,
                std::sqrt(variance),
                static_cast<double>(arp_requests_),
                static_cast<double>(arp_replies_),
                static_cast<double>(broadcast_),
                static_cast<double>(src_macs_.size()),
                static_cast<double>(flows_.size()),
                static_cast<double>(max_ports)};
  sink_(out);

  frames_ = 0;
  bytes_ = 0;
  size_sum_ = 0;
  size_sq_sum_ = 0;
  arp_requests_ = 0;
  arp_replies_ = 0;
  broadcast_ = 0;
  src_macs_.clear();
  flows_.clear();
  dst_ports_per_src_.clear();
}

}  // namespace spire::mana
