// Streaming one-class SVM scorer (PAPERS.md: Maglaras et al., ensemble
// OCSVM for SCADA IDS).
//
// An RBF-kernel one-class SVM is approximated with random Fourier
// features: x is lifted to z(x) = sqrt(2/D) * cos(Ωx + b), where the
// rows of Ω are drawn from N(0, 2γ). In that lifted space the training
// distribution collapses to a tight cloud, and the model is the cloud's
// centroid plus a radius threshold — scoring is one D×dim matrix-vector
// product and a distance, over preallocated scratch: no kernel matrix,
// no allocation, O(D·dim) per window. Equal-weight centroids are the
// ν→1 limit of SVDD, which suits MANA: the baseline capture is taken on
// a finalized network and contains no outliers to down-weight.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/rng.hpp"

namespace spire::mana {

struct OcSvmConfig {
  std::size_t features = 64;  ///< random Fourier dimension D
  /// RBF width (inputs are z-normalized). Kept small on purpose: with
  /// a wide gamma every pair of windows lifts to near-orthogonal RFF
  /// vectors, the training radius sits at the kernel's saturation
  /// ceiling, and no outlier can clear a multiplicative slack. A
  /// narrow gamma keeps baseline windows correlated (small radius)
  /// while genuinely anomalous windows still decorrelate.
  double gamma = 0.01;
  /// Threshold = this multiple of the training-radius quantile below.
  double threshold_slack = 1.3;
  /// Radius quantile the slack multiplies (the ν knob): using the max
  /// lets a single outlier training window — lifted near the RFF
  /// saturation ceiling, where every dissimilar point lands — push the
  /// threshold past any reachable score. Tolerating a small fraction
  /// of training outliers keeps the boundary inside the reachable
  /// range.
  double train_quantile = 0.9;
  std::uint64_t seed = 0x4F435356;  // "OCSV"
};

class OcSvm {
 public:
  OcSvm(std::size_t input_dim, OcSvmConfig config);

  /// Fits centroid + radius threshold on z-normalized training windows.
  void fit(const std::vector<std::vector<double>>& normalized_windows);

  /// Distance of the lifted point from the training centroid.
  [[nodiscard]] double score(std::span<const double> normalized) const;

  [[nodiscard]] bool trained() const { return trained_; }
  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] bool anomalous(std::span<const double> normalized) const {
    return score(normalized) > threshold_;
  }

 private:
  void lift(std::span<const double> x, std::vector<double>& z) const;

  std::size_t input_dim_;
  OcSvmConfig config_;
  std::vector<double> omega_;   // D × input_dim frequencies, row-major
  std::vector<double> phase_;   // D
  std::vector<double> center_;  // D
  mutable std::vector<double> scratch_;  // D, reused per score
  double threshold_ = 0;
  bool trained_ = false;
};

}  // namespace spire::mana
