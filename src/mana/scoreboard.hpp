// Detection-quality scoreboard (DESIGN.md §13).
//
// Consumes ground-truth attack labels from the red-team scenarios and
// the alert stream from one or more Mana instances, and computes the
// observability headline: per-detector and ensemble precision / recall
// / F1 plus detection latency (attack start → first attributed alert).
//
// Scoring is event-based, matching how an operator reads the board:
//   * An alert is a true positive when it lands inside a labeled attack
//     interval (plus a grace period after the attack ends — floods and
//     scans are legitimately reported at window close) and, when the
//     label names expected kinds, the alert kind is among them.
//   * Every other alert is a false positive.
//   * An attack is detected (recall) when at least one true-positive
//     alert matched it; detection latency is first such alert − start.
// Per-detector rows attribute through Alert::votes, so an ensemble
// window alert credits every member that voted for it.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mana/alert.hpp"
#include "obs/metrics.hpp"

namespace spire::mana {

struct ScoreBoardConfig {
  /// Alerts within [start, end + grace] count toward the attack.
  sim::Time grace = 2 * sim::kSecond;
};

struct AttackLabel {
  std::string name;
  sim::Time start = 0;
  sim::Time end = 0;  ///< 0 = still open (closed by attack_end/finalize)
  /// Alert kinds that count as attribution; empty accepts any kind.
  std::vector<AlertKind> expected;
};

struct DetectorScore {
  std::uint64_t true_positives = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t attacks_detected = 0;
  std::uint64_t attacks_missed = 0;

  /// 1.0 when no alerts were raised at all (nothing claimed, nothing
  /// wrong) — matches the hand-computed convention in the tests.
  [[nodiscard]] double precision() const {
    const std::uint64_t total = true_positives + false_positives;
    return total == 0 ? 1.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double recall() const {
    const std::uint64_t total = attacks_detected + attacks_missed;
    return total == 0 ? 1.0
                      : static_cast<double>(attacks_detected) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r > 0 ? 2 * p * r / (p + r) : 0;
  }
};

struct AttackOutcome {
  std::string name;
  sim::Time start = 0;
  sim::Time end = 0;
  bool detected = false;
  sim::Time first_alert = 0;     ///< valid when detected
  sim::Time latency = 0;         ///< first_alert − start, when detected
  AlertKind first_kind = AlertKind::kAnomalousWindow;
  DetectorId first_detector = DetectorId::kEnsemble;
  std::uint8_t detectors = 0;    ///< vote_bit mask of members that hit it
};

class ScoreBoard {
 public:
  explicit ScoreBoard(ScoreBoardConfig config = {});

  /// Ground-truth labeling. attack_begin leaves the interval open;
  /// attack_end closes the most recent open label with that name.
  /// Both mirror into obs::Tracer markers when tracing is active.
  void attack_begin(std::string name, sim::Time start,
                    std::vector<AlertKind> expected = {});
  void attack_end(std::string_view name, sim::Time end);
  void add_label(AttackLabel label);

  /// Wire as Mana's alert sink.
  void on_alert(const Alert& alert);

  /// Closes open labels at `now` and folds per-attack outcomes into the
  /// per-detector recall columns. Idempotent per label/alert set.
  void finalize(sim::Time now);

  /// Rows indexed by DetectorId (kEnsemble row = the system verdict).
  [[nodiscard]] const DetectorScore& score(DetectorId id) const {
    return scores_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const DetectorScore& ensemble() const {
    return score(DetectorId::kEnsemble);
  }
  [[nodiscard]] const std::vector<AttackOutcome>& outcomes() const {
    return outcomes_;
  }
  [[nodiscard]] std::uint64_t alerts_seen() const { return alerts_seen_; }

  /// Mean detection latency over detected attacks, microseconds.
  [[nodiscard]] double mean_latency_us() const;
  /// Max detection latency over detected attacks, microseconds.
  [[nodiscard]] std::uint64_t max_latency_us() const;

  /// Registers precision/recall/latency into the current metrics
  /// registry under `prefix` (gauges are ×1000 fixed-point; latency is
  /// a histogram). Call once, after construction.
  void bind_metrics(const std::string& prefix);

 private:
  struct PendingAttack {
    AttackLabel label;
    bool detected = false;
    sim::Time first_alert = 0;
    AlertKind first_kind = AlertKind::kAnomalousWindow;
    DetectorId first_detector = DetectorId::kEnsemble;
    std::uint8_t detectors = 0;
  };

  [[nodiscard]] PendingAttack* match(const Alert& alert);

  ScoreBoardConfig config_;
  std::vector<PendingAttack> attacks_;
  std::array<DetectorScore, kVotingDetectors + 1> scores_{};
  std::vector<AttackOutcome> outcomes_;
  std::uint64_t alerts_seen_ = 0;
  bool finalized_ = false;

  obs::Histogram* latency_hist_ = nullptr;
  std::unique_ptr<obs::Binder> binder_;
};

}  // namespace spire::mana
