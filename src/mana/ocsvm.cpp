#include "mana/ocsvm.hpp"

#include <algorithm>
#include <cmath>

namespace spire::mana {

OcSvm::OcSvm(std::size_t input_dim, OcSvmConfig config)
    : input_dim_(input_dim), config_(config) {
  sim::Rng rng(config_.seed);
  const double sigma = std::sqrt(2.0 * config_.gamma);
  omega_.resize(config_.features * input_dim_);
  for (double& w : omega_) w = rng.normal(0.0, sigma);
  phase_.resize(config_.features);
  constexpr double kTwoPi = 6.283185307179586;
  for (double& b : phase_) b = rng.uniform01() * kTwoPi;
  center_.assign(config_.features, 0.0);
  scratch_.resize(config_.features);
}

void OcSvm::lift(std::span<const double> x, std::vector<double>& z) const {
  const double scale = std::sqrt(2.0 / static_cast<double>(config_.features));
  for (std::size_t d = 0; d < config_.features; ++d) {
    const double* row = &omega_[d * input_dim_];
    double dot = phase_[d];
    for (std::size_t i = 0; i < input_dim_; ++i) dot += row[i] * x[i];
    z[d] = scale * std::cos(dot);
  }
}

void OcSvm::fit(const std::vector<std::vector<double>>& normalized_windows) {
  center_.assign(config_.features, 0.0);
  if (normalized_windows.empty()) {
    threshold_ = 0;
    trained_ = true;
    return;
  }
  std::vector<double> z(config_.features);
  for (const auto& x : normalized_windows) {
    lift(x, z);
    for (std::size_t d = 0; d < config_.features; ++d) center_[d] += z[d];
  }
  const double inv = 1.0 / static_cast<double>(normalized_windows.size());
  for (double& c : center_) c *= inv;

  std::vector<double> radii;
  radii.reserve(normalized_windows.size());
  for (const auto& x : normalized_windows) {
    lift(x, z);
    double dist_sq = 0;
    for (std::size_t d = 0; d < config_.features; ++d) {
      const double diff = z[d] - center_[d];
      dist_sq += diff * diff;
    }
    radii.push_back(std::sqrt(dist_sq));
  }
  const double q = std::clamp(config_.train_quantile, 0.0, 1.0);
  const std::size_t at = std::min(
      radii.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(radii.size())));
  std::nth_element(radii.begin(), radii.begin() + static_cast<std::ptrdiff_t>(at),
                   radii.end());
  threshold_ = radii[at] * config_.threshold_slack;
  trained_ = true;
}

double OcSvm::score(std::span<const double> normalized) const {
  lift(normalized, scratch_);
  double dist_sq = 0;
  for (std::size_t d = 0; d < config_.features; ++d) {
    const double diff = scratch_[d] - center_[d];
    dist_sq += diff * diff;
  }
  return std::sqrt(dist_sq);
}

}  // namespace spire::mana
