#include "mana/rules.hpp"

#include <algorithm>

namespace spire::mana {

namespace {

constexpr std::uint32_t substation_of(std::uint32_t ip) {
  return ip & 0xFFFFFF00u;  // /24 base
}

}  // namespace

RuleEngine::RuleEngine(RuleConfig config, FindingSink sink)
    : config_(config),
      sink_(std::move(sink)),
      port_pairs_(config.max_tracked_sources * 4),
      ports_per_src_(config.max_tracked_sources),
      substation_frames_(config.max_substations) {}

void RuleEngine::on_frame(const net::FrameSummary& s) {
  const std::uint64_t w = s.weight;
  window_frames_ += w;
  if (s.src_ip != 0) {
    substation_frames_.add(substation_of(s.src_ip),
                           static_cast<std::uint32_t>(w));
  }

  if (!trained_) {
    // Learn the allowlists. ARP churn during training re-learns the
    // binding; post-training it never does (a legitimate
    // re-announcement of the same binding stays quiet, a flip alerts
    // every window until resolved).
    if (s.src_mac != 0) known_macs_.insert(s.src_mac);
    if (s.kind == net::FrameKind::kArp && s.src_ip != 0) {
      arp_bindings_[s.src_ip] = s.src_mac;
    }
    return;
  }

  // --- immediate watchers -------------------------------------------
  if (s.kind == net::FrameKind::kArp && s.src_ip != 0) {
    const auto it = arp_bindings_.find(s.src_ip);
    if (it == arp_bindings_.end()) {
      if (s.arp_reply()) {
        // A binding never seen in training, asserted via a reply: on a
        // statically-configured SCADA network this is itself a
        // poisoning signature.
        emit(RuleFinding{AlertKind::kArpBindingChange, s.time, 0,
                         {s.src_ip, 0, s.src_mac}});
      }
    } else if (it->second != s.src_mac) {
      emit(RuleFinding{AlertKind::kArpBindingChange, s.time, 0,
                       {s.src_ip, it->second, s.src_mac}});
    }
  }

  if (s.src_mac != 0 && !known_macs_.contains(s.src_mac) &&
      alerted_macs_.insert(s.src_mac).second) {
    emit(RuleFinding{AlertKind::kNewSourceMac, s.time, 0, {s.src_mac, 0, 0}});
  }

  if (s.kind == net::FrameKind::kIpv4 &&
      port_pairs_.insert(s.src_ip, s.dst_port)) {
    const std::uint32_t distinct = ports_per_src_.increment(s.src_ip);
    // Fire exactly at the crossing so a scan is reported once per
    // window, at the frame that crossed the line (latency beats
    // window-close reporting by most of a window).
    if (distinct == config_.port_scan_threshold) {
      emit(RuleFinding{
          AlertKind::kPortScan, s.time, 1.0,
          {s.src_ip, distinct, config_.port_scan_threshold}});
    }
  }
}

void RuleEngine::close_window(sim::Time /*window_start*/,
                              sim::Time window_end) {
  if (!trained_) {
    global_ceiling_ = std::max(global_ceiling_, window_frames_);
    substation_frames_.for_each([this](std::uint64_t sub, std::uint32_t n) {
      auto& ceiling = substation_ceiling_[static_cast<std::uint32_t>(sub)];
      ceiling = std::max(ceiling, static_cast<std::uint64_t>(n));
    });
  } else {
    if (global_ceiling_ > 0) {
      const double limit =
          static_cast<double>(global_ceiling_) * config_.flood_multiplier;
      if (static_cast<double>(window_frames_) > limit) {
        emit(RuleFinding{
            AlertKind::kTrafficFlood, window_end,
            static_cast<double>(window_frames_) /
                static_cast<double>(global_ceiling_),
            {window_frames_, global_ceiling_, 0}});
      }
    }
    substation_frames_.for_each([&](std::uint64_t sub, std::uint32_t n) {
      const auto it =
          substation_ceiling_.find(static_cast<std::uint32_t>(sub));
      // Unknown substations get the minimum ceiling: traffic from an
      // address block absent in baseline is suspect at low volume.
      const std::uint64_t base =
          it != substation_ceiling_.end() ? it->second : 0;
      const std::uint64_t ceiling = std::max(
          config_.min_substation_ceiling,
          static_cast<std::uint64_t>(static_cast<double>(base) *
                                     config_.flood_multiplier));
      if (n > ceiling) {
        emit(RuleFinding{AlertKind::kSubstationFlood, window_end,
                         static_cast<double>(n) /
                             static_cast<double>(ceiling),
                         {sub, n, ceiling}});
      }
    });
  }

  window_frames_ = 0;
  port_pairs_.clear();
  ports_per_src_.clear();
  substation_frames_.clear();
  last_window_findings_ = window_findings_;
  window_findings_ = 0;
}

void RuleEngine::finish_training() { trained_ = true; }

void RuleEngine::emit(const RuleFinding& finding) {
  ++window_findings_;
  if (sink_) sink_(finding);
}

}  // namespace spire::mana
