// MANA alert type with per-detector attribution (DESIGN.md §13).
//
// Alerts are raised on the scoring path, so the struct is cheap to
// construct: the network is an interned handle, and the human-readable
// explanation is *deferred* — the alert stores up to three raw numeric
// arguments and detail() formats them only when an exporter (board,
// JSONL, bench table) actually asks.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/pcap.hpp"

namespace spire::mana {

/// Which ensemble member produced (or voted for) an alert.
enum class DetectorId : std::uint8_t {
  kKMeans = 0,  ///< k-means distance over z-normalized windows
  kOcSvm = 1,   ///< random-Fourier one-class SVM over the same windows
  kRules = 2,   ///< per-substation protocol-shape watchers
  kEnsemble = 3,  ///< majority vote of the above
};
inline constexpr std::size_t kVotingDetectors = 3;

[[nodiscard]] std::string_view to_string(DetectorId id);

/// Bitmask helpers for Alert::votes.
[[nodiscard]] constexpr std::uint8_t vote_bit(DetectorId id) {
  return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(id));
}

enum class AlertKind : std::uint8_t {
  kAnomalousWindow,
  kArpBindingChange,
  kPortScan,
  kTrafficFlood,
  kNewSourceMac,
  kSubstationFlood,
};

[[nodiscard]] std::string_view to_string(AlertKind kind);

struct Alert {
  sim::Time at = 0;
  net::NetworkId network = 0;
  AlertKind kind = AlertKind::kAnomalousWindow;
  DetectorId detector = DetectorId::kRules;
  /// Bitmask of vote_bit(DetectorId) — which members agreed. For rule
  /// alerts this is just the rules bit; for ensemble window alerts it
  /// records the exact coalition.
  std::uint8_t votes = 0;
  double score = 0;  ///< anomaly score (distance / threshold), where relevant
  /// Kind-specific numeric arguments (IPs, MAC keys, counts); see
  /// detail() for the per-kind layout.
  std::array<std::uint64_t, 3> args{};

  [[nodiscard]] const std::string& network_name() const {
    return net::NetworkLabels::instance().name(network);
  }

  /// Formats the human-readable explanation from `args`. Off the
  /// scoring path by construction — only exporters call it.
  [[nodiscard]] std::string detail() const;
};

}  // namespace spire::mana
