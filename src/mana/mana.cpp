#include "mana/mana.hpp"

#include <cmath>

namespace spire::mana {

std::string_view to_string(AlertKind kind) {
  switch (kind) {
    case AlertKind::kAnomalousWindow: return "anomalous-window";
    case AlertKind::kArpBindingChange: return "arp-binding-change";
    case AlertKind::kPortScan: return "port-scan";
    case AlertKind::kTrafficFlood: return "traffic-flood";
  }
  return "?";
}

Mana::Mana(ManaConfig config)
    : config_(std::move(config)),
      log_("mana." + config_.network),
      rng_(config_.seed),
      extractor_(config_.window,
                 [this](const WindowFeatures& f) { on_window(f); }) {}

void Mana::on_capture(const net::PcapRecord& record) {
  // ARP watch runs on raw frames so it can attribute MITM attempts to a
  // specific binding flip, independent of the windowed model.
  if (record.frame.ethertype == net::EtherType::kArp) {
    if (const auto arp = net::ArpPacket::decode(record.frame.payload)) {
      const auto it = arp_bindings_.find(arp->sender_ip.value);
      if (it == arp_bindings_.end()) {
        if (!trained()) {
          arp_bindings_[arp->sender_ip.value] = arp->sender_mac;
        } else if (arp->op == net::ArpOp::kReply) {
          // A binding never seen in training, asserted via a reply: on
          // a statically-configured SCADA network this is itself a
          // poisoning signature.
          raise(AlertKind::kArpBindingChange,
                "new binding " + arp->sender_ip.str() + " -> " +
                    arp->sender_mac.str() + " never seen in baseline",
                0, record.time);
        }
      } else if (it->second != arp->sender_mac) {
        if (trained()) {
          raise(AlertKind::kArpBindingChange,
                arp->sender_ip.str() + " moved from " + it->second.str() +
                    " to " + arp->sender_mac.str(),
                0, record.time);
        } else {
          it->second = arp->sender_mac;  // churn during training: re-learn
        }
      }
    }
  }
  extractor_.ingest(record);
}

void Mana::flush_until(sim::Time now) { extractor_.flush_until(now); }

void Mana::on_window(const WindowFeatures& features) {
  if (!trained()) {
    training_windows_.push_back(features.values);
    max_training_frames_ = std::max(max_training_frames_, features.values[0]);
    return;
  }

  ++windows_scored_;
  const std::vector<double> normalized = normalize(features.values);
  const double distance = model_->nearest_distance(normalized);
  if (distance > threshold_) {
    ++windows_anomalous_;
    // Attribute the anomaly to the most deviant feature for the
    // operator board.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < normalized.size(); ++i) {
      if (std::abs(normalized[i]) > std::abs(normalized[worst])) worst = i;
    }
    raise(AlertKind::kAnomalousWindow,
          "dominant feature: " + WindowFeatures::names()[worst],
          threshold_ > 0 ? distance / threshold_ : distance,
          features.window_end);
  }

  const double ports = features.values[9];
  if (ports >= static_cast<double>(config_.port_scan_threshold)) {
    raise(AlertKind::kPortScan,
          std::to_string(static_cast<int>(ports)) + " distinct ports probed",
          ports / static_cast<double>(config_.port_scan_threshold),
          features.window_end);
  }
  if (max_training_frames_ > 0 &&
      features.values[0] > max_training_frames_ * config_.flood_multiplier) {
    raise(AlertKind::kTrafficFlood,
          std::to_string(static_cast<std::uint64_t>(features.values[0])) +
              " frames in window (baseline max " +
              std::to_string(static_cast<std::uint64_t>(max_training_frames_)) +
              ")",
          features.values[0] / max_training_frames_, features.window_end);
  }
}

std::vector<double> Mana::normalize(const std::vector<double>& raw) const {
  std::vector<double> out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out[i] = (raw[i] - mean_[i]) / stddev_[i];
  }
  return out;
}

void Mana::finish_training() {
  if (training_windows_.empty()) {
    throw std::runtime_error("mana: no training windows captured");
  }
  const std::size_t dim = training_windows_.front().size();
  mean_.assign(dim, 0.0);
  stddev_.assign(dim, 0.0);
  for (const auto& w : training_windows_) {
    for (std::size_t i = 0; i < dim; ++i) mean_[i] += w[i];
  }
  for (std::size_t i = 0; i < dim; ++i) {
    mean_[i] /= static_cast<double>(training_windows_.size());
  }
  for (const auto& w : training_windows_) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = w[i] - mean_[i];
      stddev_[i] += d * d;
    }
  }
  for (std::size_t i = 0; i < dim; ++i) {
    stddev_[i] =
        std::sqrt(stddev_[i] / static_cast<double>(training_windows_.size()));
    if (stddev_[i] < 1e-9) stddev_[i] = 1.0;  // constant feature
  }

  std::vector<std::vector<double>> normalized;
  normalized.reserve(training_windows_.size());
  for (const auto& w : training_windows_) normalized.push_back(normalize(w));

  model_ = kmeans_fit(normalized, config_.clusters, rng_);
  double max_distance = 0;
  for (const auto& w : normalized) {
    max_distance = std::max(max_distance, model_->nearest_distance(w));
  }
  threshold_ = std::max(1e-6, max_distance) * config_.threshold_slack;
  log_.info("trained on ", training_windows_.size(), " windows; threshold ",
            threshold_);
  training_windows_.clear();
}

void Mana::raise(AlertKind kind, std::string detail, double score,
                 sim::Time at) {
  // Collapse repeats of the same alert kind within one window period.
  const auto last = last_raised_.find(kind);
  if (last != last_raised_.end() && at - last->second < config_.window) {
    return;
  }
  last_raised_[kind] = at;
  alerts_.push_back(Alert{at, config_.network, kind, std::move(detail), score});
  log_.warn("ALERT ", to_string(kind), ": ", alerts_.back().detail);
}

}  // namespace spire::mana
