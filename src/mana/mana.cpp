#include "mana/mana.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"

namespace spire::mana {

Mana::Mana(ManaConfig config)
    : config_(std::move(config)),
      network_id_(net::NetworkLabels::instance().intern(config_.network)),
      log_("mana." + config_.network),
      rng_(config_.seed),
      tap_(config_.tap),
      extractor_(config_.window,
                 [this](const WindowFeatures& f) { on_window(f); },
                 config_.features),
      rules_(
          [&] {
            RuleConfig rc = config_.rules;
            rc.port_scan_threshold = config_.port_scan_threshold;
            rc.flood_multiplier = config_.flood_multiplier;
            return rc;
          }(),
          [this](const RuleFinding& f) { on_finding(f); }),
      ocsvm_(WindowFeatures::kDim, config_.ocsvm),
      metrics_("mana." + config_.network) {
  normalized_.resize(WindowFeatures::kDim);
  metrics_.counter("frames_mirrored", &tap_.stats().frames_mirrored);
  metrics_.counter("dropped_frames", &tap_.stats().frames_dropped);
  metrics_.counter("frames_sampled_out", &tap_.stats().frames_sampled_out);
  metrics_.counter("frames_processed", &stats_.frames_processed);
  metrics_.counter("windows_scored", &stats_.windows_scored);
  metrics_.counter("windows_anomalous", &stats_.windows_anomalous);
  metrics_.counter("sampled_windows", &extractor_.stats().sampled_windows);
  metrics_.counter("alerts_total", &stats_.alerts_total);
}

void Mana::poll(sim::Time now) {
  tap_.drain([this](const net::FrameSummary& s) { process_summary(s); });
  extractor_.flush_until(now);
}

void Mana::on_capture(const net::PcapRecord& record) {
  process_summary(net::FrameSummary::summarize(record.time, record.frame));
}

void Mana::process_summary(const net::FrameSummary& s) {
  stats_.frames_processed += s.weight;
  // Extractor first: rolling into a new window emits window N (and
  // closes the rules' window N) before this frame — which belongs to
  // window N+1 — reaches the rule watchers.
  extractor_.ingest(s);
  rules_.on_frame(s);
}

void Mana::flush_until(sim::Time now) { extractor_.flush_until(now); }

void Mana::on_window(const WindowFeatures& features) {
  // The rules share the extractor's window cadence: every frame of this
  // window has already passed through on_frame.
  rules_.close_window(features.window_start, features.window_end);

  if (!trained()) {
    training_windows_.emplace_back(features.values.begin(),
                                   features.values.end());
    return;
  }

  ++stats_.windows_scored;
  if (features.sampled()) ++stats_.sampled_windows_scored;

  normalize(features.values, normalized_);
  const double km_distance = model_->nearest_distance(normalized_);
  const double km_ratio = threshold_ > 0 ? km_distance / threshold_ : 0;
  const double oc_score = ocsvm_.score(normalized_);
  const double oc_ratio =
      ocsvm_.threshold() > 0 ? oc_score / ocsvm_.threshold() : 0;

  std::uint8_t votes = 0;
  if (km_ratio > 1.0) votes |= vote_bit(DetectorId::kKMeans);
  if (oc_ratio > 1.0) votes |= vote_bit(DetectorId::kOcSvm);
  if (rules_.last_window_findings() > 0) votes |= vote_bit(DetectorId::kRules);

  if (static_cast<std::size_t>(std::popcount(votes)) >= config_.min_votes) {
    ++stats_.windows_anomalous;
    // Attribute the anomaly to the most deviant feature for the
    // operator board.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < normalized_.size(); ++i) {
      if (std::abs(normalized_[i]) > std::abs(normalized_[worst])) worst = i;
    }
    Alert alert;
    alert.at = features.window_end;
    alert.network = network_id_;
    alert.kind = AlertKind::kAnomalousWindow;
    alert.detector = DetectorId::kEnsemble;
    alert.votes = votes;
    alert.score = std::max(km_ratio, oc_ratio);
    alert.args = {worst, 0, 0};
    raise(alert);
  }
}

void Mana::on_finding(const RuleFinding& finding) {
  Alert alert;
  alert.at = finding.at;
  alert.network = network_id_;
  alert.kind = finding.kind;
  alert.detector = DetectorId::kRules;
  alert.votes = vote_bit(DetectorId::kRules);
  alert.score = finding.score;
  alert.args = finding.args;
  raise(alert);
}

void Mana::normalize(const std::array<double, WindowFeatures::kDim>& raw,
                     std::vector<double>& out) const {
  out.resize(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    out[i] = (raw[i] - mean_[i]) / stddev_[i];
  }
}

void Mana::finish_training() {
  if (training_windows_.empty()) {
    throw std::runtime_error("mana: no training windows captured");
  }
  const std::size_t dim = training_windows_.front().size();
  mean_.assign(dim, 0.0);
  stddev_.assign(dim, 0.0);
  for (const auto& w : training_windows_) {
    for (std::size_t i = 0; i < dim; ++i) mean_[i] += w[i];
  }
  for (std::size_t i = 0; i < dim; ++i) {
    mean_[i] /= static_cast<double>(training_windows_.size());
  }
  for (const auto& w : training_windows_) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = w[i] - mean_[i];
      stddev_[i] += d * d;
    }
  }
  for (std::size_t i = 0; i < dim; ++i) {
    stddev_[i] =
        std::sqrt(stddev_[i] / static_cast<double>(training_windows_.size()));
    if (stddev_[i] < 1e-9) stddev_[i] = 1.0;  // constant feature
  }

  std::vector<std::vector<double>> normalized;
  normalized.reserve(training_windows_.size());
  for (const auto& w : training_windows_) {
    std::vector<double> n(dim);
    for (std::size_t i = 0; i < dim; ++i) n[i] = (w[i] - mean_[i]) / stddev_[i];
    normalized.push_back(std::move(n));
  }

  model_ = kmeans_fit(normalized, config_.clusters, rng_);
  double max_distance = 0;
  for (const auto& w : normalized) {
    max_distance = std::max(max_distance, model_->nearest_distance(w));
  }
  threshold_ = std::max(1e-6, max_distance) * config_.threshold_slack;
  ocsvm_.fit(normalized);
  rules_.finish_training();
  log_.info("trained on ", training_windows_.size(), " windows; kmeans thr ",
            threshold_, ", ocsvm thr ", ocsvm_.threshold());
  training_windows_.clear();
}

void Mana::raise(Alert alert) {
  // Collapse repeats of the same alert kind within one window period.
  const auto last = last_raised_.find(alert.kind);
  if (last != last_raised_.end() && alert.at - last->second < config_.window) {
    return;
  }
  last_raised_[alert.kind] = alert.at;
  ++stats_.alerts_total;
  // Detail text stays deferred: the log line carries only the kind and
  // score; exporters call detail() when they want the story.
  log_.warn("ALERT ", to_string(alert.kind), " detector=",
            to_string(alert.detector), " score=", alert.score);
  if (obs::Tracer* tracer = obs::Tracer::current()) {
    tracer->alert_marker(alert.network_name(),
                         std::string(to_string(alert.kind)),
                         std::string(to_string(alert.detector)), alert.score,
                         alert.at);
  }
  alerts_.push_back(alert);
  if (alert_sink_) alert_sink_(alerts_.back());
}

}  // namespace spire::mana
