// CRC-DNP (IEEE 1815 data-link CRC): polynomial x^16 + x^13 + x^12 +
// x^11 + x^10 + x^8 + x^6 + x^5 + x^2 + 1, LSB-first, transmitted
// complemented, little-endian. Every DNP3 link-layer header and each
// 16-octet user-data block carries one.
#pragma once

#include <cstdint>
#include <span>

namespace spire::dnp3 {

/// Raw (un-complemented) CRC over `data`.
[[nodiscard]] std::uint16_t crc_dnp(std::span<const std::uint8_t> data);

/// The on-wire value (complemented).
[[nodiscard]] inline std::uint16_t crc_dnp_wire(
    std::span<const std::uint8_t> data) {
  return static_cast<std::uint16_t>(~crc_dnp(data));
}

}  // namespace spire::dnp3
