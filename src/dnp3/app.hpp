// DNP3 application layer (IEEE 1815 §4/§5): the request/response
// fragments a SCADA master exchanges with an RTU outstation. The
// subset implemented is what grid RTU polling actually uses:
//   * class-0 integrity poll (READ of group 60 var 1),
//   * binary inputs with flags (g1v2) and binary output status (g10v2),
//   * 16-bit analog inputs with flag (g30v2),
//   * control relay output block (CROB, g12v1) via DIRECT_OPERATE.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.hpp"

namespace spire::dnp3 {

enum class AppFunction : std::uint8_t {
  kRead = 0x01,
  kDirectOperate = 0x05,
  kResponse = 0x81,
};

/// Application control octet (single-fragment: FIR|FIN always set).
struct AppControl {
  std::uint8_t sequence = 0;  ///< 0..15
  bool confirm = false;

  [[nodiscard]] std::uint8_t encode() const {
    return static_cast<std::uint8_t>(0x80 | 0x40 | (confirm ? 0x20 : 0) |
                                     (sequence & 0x0F));
  }
  static AppControl decode(std::uint8_t octet) {
    return AppControl{static_cast<std::uint8_t>(octet & 0x0F),
                      (octet & 0x20) != 0};
  }
};

/// Internal indications (IIN1 high bits we model).
struct Iin {
  bool device_restart = false;
  bool no_func_code_support = false;

  [[nodiscard]] std::uint16_t encode() const {
    std::uint16_t v = 0;
    if (device_restart) v |= 0x0080;       // IIN1.7
    if (no_func_code_support) v |= 0x0100; // IIN2.0
    return v;
  }
  static Iin decode(std::uint16_t v) {
    return Iin{(v & 0x0080) != 0, (v & 0x0100) != 0};
  }
};

/// CROB — control relay output block (g12v1).
enum class ControlCode : std::uint8_t {
  kLatchOn = 0x03,
  kLatchOff = 0x04,
};

struct Crob {
  std::uint16_t index = 0;  ///< output point
  ControlCode code = ControlCode::kLatchOn;
  std::uint8_t count = 1;
  std::uint32_t on_time_ms = 0;
  std::uint32_t off_time_ms = 0;
  std::uint8_t status = 0;  ///< 0 = success in responses
};

struct BinaryPoint {
  bool state = false;
  bool online = true;
};

struct AnalogPoint {
  std::int16_t value = 0;
  bool online = true;
};

/// Decoded request fragment.
struct AppRequest {
  AppControl control;
  AppFunction function = AppFunction::kRead;
  bool class0_poll = false;       ///< READ of g60v1, qualifier 0x06
  std::optional<Crob> crob;       ///< DIRECT_OPERATE payload

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<AppRequest> decode(std::span<const std::uint8_t> data);
};

/// Decoded response fragment.
struct AppResponse {
  AppControl control;
  Iin iin;
  std::vector<BinaryPoint> binary_inputs;          // g1v2
  std::vector<BinaryPoint> binary_output_status;   // g10v2
  std::vector<AnalogPoint> analog_inputs;          // g30v2
  std::optional<Crob> crob_echo;                   // g12v1 status echo

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<AppResponse> decode(std::span<const std::uint8_t> data);
};

}  // namespace spire::dnp3
