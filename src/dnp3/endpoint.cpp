#include "dnp3/endpoint.hpp"

namespace spire::dnp3 {

std::optional<util::Bytes> Outstation::handle(
    std::span<const std::uint8_t> data) {
  const auto unwrapped = unwrap_fragment(data);
  if (!unwrapped) return std::nullopt;
  if (unwrapped->frame.destination != address_) return std::nullopt;
  const auto request = AppRequest::decode(unwrapped->app_fragment);

  AppResponse response;
  response.iin.device_restart = restarted_;

  if (!request) {
    // Well-framed but unsupported application request: IIN2.0.
    response.iin.no_func_code_support = true;
  } else {
    response.control.sequence = request->control.sequence;
    if (request->function == AppFunction::kRead && request->class0_poll) {
      response.binary_inputs = points_.binary_inputs;
      response.binary_output_status = points_.binary_output_status;
      response.analog_inputs = points_.analog_inputs;
    } else if (request->function == AppFunction::kDirectOperate &&
               request->crob) {
      Crob echo = *request->crob;
      echo.status = on_operate_
                        ? on_operate_(echo.index,
                                      echo.code == ControlCode::kLatchOn)
                        : 4 /*NOT_SUPPORTED*/;
      response.crob_echo = echo;
    } else {
      response.iin.no_func_code_support = true;
    }
  }

  ++served_;
  restarted_ = false;
  return wrap_fragment(unwrapped->frame.source, address_,
                       unwrapped->transport.sequence, response.encode(),
                       /*dir_master_to_outstation=*/false);
}

Master::Master(sim::Simulator& sim, std::string name,
               std::uint16_t master_address, std::uint16_t outstation_address,
               SendFn send)
    : sim_(sim),
      log_("dnp3.master." + std::move(name)),
      master_address_(master_address),
      outstation_address_(outstation_address),
      send_(std::move(send)) {}

void Master::send_request(AppRequest request, ResponseHandler handler,
                          sim::Time timeout) {
  const std::uint8_t seq = next_app_seq_;
  next_app_seq_ = static_cast<std::uint8_t>((next_app_seq_ + 1) & 0x0F);
  request.control.sequence = seq;

  Pending pending;
  pending.handler = std::move(handler);
  pending.timeout_event = sim_.schedule_after(timeout, [this, seq] {
    const auto it = pending_.find(seq);
    if (it == pending_.end()) return;
    auto handler = std::move(it->second.handler);
    pending_.erase(it);
    ++timeouts_;
    log_.debug("request seq ", static_cast<int>(seq), " timed out");
    handler(std::nullopt);
  });
  pending_.emplace(seq, std::move(pending));

  const std::uint8_t transport_seq = next_transport_seq_;
  next_transport_seq_ = static_cast<std::uint8_t>((next_transport_seq_ + 1) & 0x3F);
  send_(wrap_fragment(outstation_address_, master_address_, transport_seq,
                      request.encode(), /*dir_master_to_outstation=*/true));
}

void Master::integrity_poll(ResponseHandler handler, sim::Time timeout) {
  AppRequest request;
  request.function = AppFunction::kRead;
  request.class0_poll = true;
  send_request(std::move(request), std::move(handler), timeout);
}

void Master::direct_operate(std::uint16_t index, bool close,
                            ResponseHandler handler, sim::Time timeout) {
  AppRequest request;
  request.function = AppFunction::kDirectOperate;
  Crob crob;
  crob.index = index;
  crob.code = close ? ControlCode::kLatchOn : ControlCode::kLatchOff;
  request.crob = crob;
  send_request(std::move(request), std::move(handler), timeout);
}

void Master::on_data(std::span<const std::uint8_t> data) {
  const auto unwrapped = unwrap_fragment(data);
  if (!unwrapped) return;
  if (unwrapped->frame.destination != master_address_) return;
  if (unwrapped->frame.source != outstation_address_) return;
  const auto response = AppResponse::decode(unwrapped->app_fragment);
  if (!response) return;

  const auto it = pending_.find(response->control.sequence);
  if (it == pending_.end()) return;  // late or unsolicited
  sim_.cancel(it->second.timeout_event);
  auto handler = std::move(it->second.handler);
  pending_.erase(it);
  handler(*response);
}

}  // namespace spire::dnp3
