// DNP3 outstation (RTU side) and master (proxy side) endpoints,
// transport-agnostic like their Modbus counterparts: callers provide a
// send function and feed received bytes in.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dnp3/app.hpp"
#include "dnp3/framing.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace spire::dnp3 {

/// Conventional DNP3 port.
constexpr std::uint16_t kDnp3Port = 20000;

/// The outstation's live point database (owned by the RTU device).
struct PointDatabase {
  std::vector<BinaryPoint> binary_inputs;
  std::vector<BinaryPoint> binary_output_status;
  std::vector<AnalogPoint> analog_inputs;
};

class Outstation {
 public:
  /// `on_operate` executes a CROB against the field hardware; it
  /// returns the DNP3 status code (0 = success, 4 = not supported).
  using OperateFn = std::function<std::uint8_t(std::uint16_t index, bool close)>;

  Outstation(std::uint16_t address, PointDatabase& points, OperateFn on_operate)
      : address_(address), points_(points), on_operate_(std::move(on_operate)) {}

  /// Handles one wire datagram; returns the response datagram, or
  /// nullopt for frames that are corrupt or not addressed to us.
  [[nodiscard]] std::optional<util::Bytes> handle(
      std::span<const std::uint8_t> data);

  [[nodiscard]] std::uint64_t requests_served() const { return served_; }
  /// IIN1.7 "device restart" until the first response is served.
  void set_restarted() { restarted_ = true; }

 private:
  std::uint16_t address_;
  PointDatabase& points_;
  OperateFn on_operate_;
  bool restarted_ = true;
  std::uint64_t served_ = 0;
};

class Master {
 public:
  using SendFn = std::function<void(const util::Bytes&)>;
  using ResponseHandler = std::function<void(std::optional<AppResponse>)>;

  Master(sim::Simulator& sim, std::string name, std::uint16_t master_address,
         std::uint16_t outstation_address, SendFn send);

  /// Class-0 integrity poll: returns the whole point database.
  void integrity_poll(ResponseHandler handler,
                      sim::Time timeout = 200 * sim::kMillisecond);

  /// CROB latch on/off against one output point.
  void direct_operate(std::uint16_t index, bool close, ResponseHandler handler,
                      sim::Time timeout = 200 * sim::kMillisecond);

  void on_data(std::span<const std::uint8_t> data);

  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

 private:
  void send_request(AppRequest request, ResponseHandler handler,
                    sim::Time timeout);

  sim::Simulator& sim_;
  util::Logger log_;
  std::uint16_t master_address_;
  std::uint16_t outstation_address_;
  SendFn send_;
  std::uint8_t next_app_seq_ = 0;
  std::uint8_t next_transport_seq_ = 0;
  struct Pending {
    ResponseHandler handler;
    sim::EventId timeout_event = 0;
  };
  std::map<std::uint8_t, Pending> pending_;  ///< by app sequence
  std::uint64_t timeouts_ = 0;
};

}  // namespace spire::dnp3
