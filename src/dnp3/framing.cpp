#include "dnp3/framing.hpp"

#include "dnp3/crc.hpp"

namespace spire::dnp3 {

namespace {
constexpr std::uint8_t kStart1 = 0x05;
constexpr std::uint8_t kStart2 = 0x64;
constexpr std::size_t kBlock = 16;

void put_u16_le(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
}  // namespace

util::Bytes LinkFrame::encode() const {
  util::Bytes out;
  out.push_back(kStart1);
  out.push_back(kStart2);
  // LEN counts CTRL + DEST + SRC + user data (not CRCs, not start).
  out.push_back(static_cast<std::uint8_t>(5 + user_data.size()));
  std::uint8_t control = static_cast<std::uint8_t>(function);
  if (dir) control |= 0x80;
  if (prm) control |= 0x40;
  out.push_back(control);
  put_u16_le(out, destination);
  put_u16_le(out, source);
  const std::uint16_t header_crc = crc_dnp_wire(
      std::span<const std::uint8_t>(out.data(), out.size()));
  put_u16_le(out, header_crc);

  for (std::size_t offset = 0; offset < user_data.size(); offset += kBlock) {
    const std::size_t n = std::min(kBlock, user_data.size() - offset);
    const std::span<const std::uint8_t> block(user_data.data() + offset, n);
    out.insert(out.end(), block.begin(), block.end());
    put_u16_le(out, crc_dnp_wire(block));
  }
  return out;
}

std::optional<LinkFrame> LinkFrame::decode(std::span<const std::uint8_t> data) {
  if (data.size() < 10) return std::nullopt;
  if (data[0] != kStart1 || data[1] != kStart2) return std::nullopt;
  const std::uint8_t length = data[2];
  if (length < 5) return std::nullopt;

  const std::uint16_t header_crc =
      static_cast<std::uint16_t>(data[8] | (data[9] << 8));
  if (crc_dnp_wire(data.subspan(0, 8)) != header_crc) return std::nullopt;

  LinkFrame frame;
  const std::uint8_t control = data[3];
  frame.dir = (control & 0x80) != 0;
  frame.prm = (control & 0x40) != 0;
  frame.function = static_cast<LinkFunction>(control & 0x0F);
  frame.destination = static_cast<std::uint16_t>(data[4] | (data[5] << 8));
  frame.source = static_cast<std::uint16_t>(data[6] | (data[7] << 8));

  const std::size_t user_len = static_cast<std::size_t>(length) - 5;
  std::size_t pos = 10;
  std::size_t remaining = user_len;
  while (remaining > 0) {
    const std::size_t n = std::min(kBlock, remaining);
    if (pos + n + 2 > data.size()) return std::nullopt;
    const std::span<const std::uint8_t> block = data.subspan(pos, n);
    const std::uint16_t crc =
        static_cast<std::uint16_t>(data[pos + n] | (data[pos + n + 1] << 8));
    if (crc_dnp_wire(block) != crc) return std::nullopt;
    frame.user_data.insert(frame.user_data.end(), block.begin(), block.end());
    pos += n + 2;
    remaining -= n;
  }
  if (pos != data.size()) return std::nullopt;
  return frame;
}

util::Bytes wrap_fragment(std::uint16_t destination, std::uint16_t source,
                          std::uint8_t transport_seq,
                          const util::Bytes& app_fragment,
                          bool dir_master_to_outstation) {
  LinkFrame frame;
  frame.dir = dir_master_to_outstation;
  frame.destination = destination;
  frame.source = source;
  frame.user_data.push_back(
      TransportHeader{true, true, static_cast<std::uint8_t>(transport_seq & 0x3F)}
          .encode());
  frame.user_data.insert(frame.user_data.end(), app_fragment.begin(),
                         app_fragment.end());
  return frame.encode();
}

std::optional<Unwrapped> unwrap_fragment(std::span<const std::uint8_t> data) {
  auto frame = LinkFrame::decode(data);
  if (!frame || frame->user_data.empty()) return std::nullopt;
  Unwrapped out;
  out.transport = TransportHeader::decode(frame->user_data.front());
  if (!out.transport.fir || !out.transport.fin) {
    return std::nullopt;  // multi-segment fragments not used here
  }
  out.app_fragment.assign(frame->user_data.begin() + 1,
                          frame->user_data.end());
  out.frame = std::move(*frame);
  return out;
}

}  // namespace spire::dnp3
