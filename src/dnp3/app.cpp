#include "dnp3/app.hpp"

namespace spire::dnp3 {

namespace {

// Object header constants used by this subset.
constexpr std::uint8_t kGroupBinaryInput = 1;    // var 2: with flags
constexpr std::uint8_t kGroupBinaryOutput = 10;  // var 2: status w/ flags
constexpr std::uint8_t kGroupCrob = 12;          // var 1
constexpr std::uint8_t kGroupAnalogInput = 30;   // var 2: 16-bit w/ flag
constexpr std::uint8_t kGroupClass = 60;         // var 1: class 0
constexpr std::uint8_t kQualifierAll = 0x06;         // no range (requests)
constexpr std::uint8_t kQualifierStartStop8 = 0x00;  // 1-byte start/stop
constexpr std::uint8_t kQualifierCountIndex8 = 0x17; // 1B count + 1B index

void put_u16_le(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32_le(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint8_t flag_byte(bool state, bool online) {
  return static_cast<std::uint8_t>((state ? 0x80 : 0) | (online ? 0x01 : 0));
}

void put_crob(util::Bytes& out, const Crob& crob) {
  out.push_back(kGroupCrob);
  out.push_back(1);  // variation
  out.push_back(kQualifierCountIndex8);
  out.push_back(1);  // count
  out.push_back(static_cast<std::uint8_t>(crob.index & 0xFF));
  out.push_back(static_cast<std::uint8_t>(crob.code));
  out.push_back(crob.count);
  put_u32_le(out, crob.on_time_ms);
  put_u32_le(out, crob.off_time_ms);
  out.push_back(crob.status);
}

/// Reader with explicit failure state (DNP3 objects are positional).
struct Cursor {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos + 1 > data.size()) {
      ok = false;
      return 0;
    }
    return data[pos++];
  }
  std::uint16_t u16_le() {
    const std::uint8_t lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
  std::uint32_t u32_le() {
    const std::uint16_t lo = u16_le();
    return static_cast<std::uint32_t>(lo) |
           (static_cast<std::uint32_t>(u16_le()) << 16);
  }
  [[nodiscard]] bool done() const { return pos == data.size(); }
};

std::optional<Crob> read_crob(Cursor& c) {
  if (c.u8() != kQualifierCountIndex8) return std::nullopt;
  if (c.u8() != 1) return std::nullopt;  // single-control subset
  Crob crob;
  crob.index = c.u8();
  const std::uint8_t code = c.u8();
  if (code != static_cast<std::uint8_t>(ControlCode::kLatchOn) &&
      code != static_cast<std::uint8_t>(ControlCode::kLatchOff)) {
    return std::nullopt;
  }
  crob.code = static_cast<ControlCode>(code);
  crob.count = c.u8();
  crob.on_time_ms = c.u32_le();
  crob.off_time_ms = c.u32_le();
  crob.status = c.u8();
  if (!c.ok) return std::nullopt;
  return crob;
}

}  // namespace

util::Bytes AppRequest::encode() const {
  util::Bytes out;
  out.push_back(control.encode());
  out.push_back(static_cast<std::uint8_t>(function));
  if (function == AppFunction::kRead && class0_poll) {
    out.push_back(kGroupClass);
    out.push_back(1);  // variation: class 0 data
    out.push_back(kQualifierAll);
  } else if (function == AppFunction::kDirectOperate && crob) {
    put_crob(out, *crob);
  }
  return out;
}

std::optional<AppRequest> AppRequest::decode(
    std::span<const std::uint8_t> data) {
  Cursor c{data};
  AppRequest req;
  req.control = AppControl::decode(c.u8());
  const std::uint8_t function = c.u8();
  if (!c.ok) return std::nullopt;
  switch (function) {
    case static_cast<std::uint8_t>(AppFunction::kRead): {
      req.function = AppFunction::kRead;
      if (c.u8() != kGroupClass || c.u8() != 1 || c.u8() != kQualifierAll ||
          !c.ok || !c.done()) {
        return std::nullopt;
      }
      req.class0_poll = true;
      return req;
    }
    case static_cast<std::uint8_t>(AppFunction::kDirectOperate): {
      req.function = AppFunction::kDirectOperate;
      if (c.u8() != kGroupCrob || c.u8() != 1) return std::nullopt;
      req.crob = read_crob(c);
      if (!req.crob || !c.done()) return std::nullopt;
      return req;
    }
    default:
      return std::nullopt;
  }
}

util::Bytes AppResponse::encode() const {
  util::Bytes out;
  out.push_back(control.encode());
  out.push_back(static_cast<std::uint8_t>(AppFunction::kResponse));
  put_u16_le(out, iin.encode());

  if (!binary_inputs.empty()) {
    out.push_back(kGroupBinaryInput);
    out.push_back(2);
    out.push_back(kQualifierStartStop8);
    out.push_back(0);
    out.push_back(static_cast<std::uint8_t>(binary_inputs.size() - 1));
    for (const auto& p : binary_inputs) {
      out.push_back(flag_byte(p.state, p.online));
    }
  }
  if (!binary_output_status.empty()) {
    out.push_back(kGroupBinaryOutput);
    out.push_back(2);
    out.push_back(kQualifierStartStop8);
    out.push_back(0);
    out.push_back(static_cast<std::uint8_t>(binary_output_status.size() - 1));
    for (const auto& p : binary_output_status) {
      out.push_back(flag_byte(p.state, p.online));
    }
  }
  if (!analog_inputs.empty()) {
    out.push_back(kGroupAnalogInput);
    out.push_back(2);
    out.push_back(kQualifierStartStop8);
    out.push_back(0);
    out.push_back(static_cast<std::uint8_t>(analog_inputs.size() - 1));
    for (const auto& p : analog_inputs) {
      out.push_back(p.online ? 0x01 : 0x00);
      put_u16_le(out, static_cast<std::uint16_t>(p.value));
    }
  }
  if (crob_echo) put_crob(out, *crob_echo);
  return out;
}

std::optional<AppResponse> AppResponse::decode(
    std::span<const std::uint8_t> data) {
  Cursor c{data};
  AppResponse resp;
  resp.control = AppControl::decode(c.u8());
  if (c.u8() != static_cast<std::uint8_t>(AppFunction::kResponse)) {
    return std::nullopt;
  }
  resp.iin = Iin::decode(c.u16_le());
  if (!c.ok) return std::nullopt;

  while (c.ok && !c.done()) {
    const std::uint8_t group = c.u8();
    const std::uint8_t variation = c.u8();
    if (group == kGroupCrob && variation == 1) {
      resp.crob_echo = read_crob(c);
      if (!resp.crob_echo) return std::nullopt;
      continue;
    }
    if (c.u8() != kQualifierStartStop8) return std::nullopt;
    const std::uint8_t start = c.u8();
    const std::uint8_t stop = c.u8();
    if (!c.ok || stop < start) return std::nullopt;
    const std::size_t count = static_cast<std::size_t>(stop - start) + 1;

    if (group == kGroupBinaryInput && variation == 2) {
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint8_t flags = c.u8();
        resp.binary_inputs.push_back(
            BinaryPoint{(flags & 0x80) != 0, (flags & 0x01) != 0});
      }
    } else if (group == kGroupBinaryOutput && variation == 2) {
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint8_t flags = c.u8();
        resp.binary_output_status.push_back(
            BinaryPoint{(flags & 0x80) != 0, (flags & 0x01) != 0});
      }
    } else if (group == kGroupAnalogInput && variation == 2) {
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint8_t flags = c.u8();
        const auto value = static_cast<std::int16_t>(c.u16_le());
        resp.analog_inputs.push_back(AnalogPoint{value, (flags & 0x01) != 0});
      }
    } else {
      return std::nullopt;  // unknown object in this subset
    }
  }
  if (!c.ok) return std::nullopt;
  return resp;
}

}  // namespace spire::dnp3
