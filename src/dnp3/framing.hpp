// DNP3 data-link framing (IEEE 1815 §9) and the one-octet transport
// function (§8): 0x0564 start, length, control, 16-bit destination and
// source addresses, CRC on the header and on every 16-octet data block.
// This reproduction carries whole application fragments in a single
// transport segment (FIR|FIN set), which is how short SCADA polls and
// controls travel in practice.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace spire::dnp3 {

/// Link-layer function codes used here (primary frames).
enum class LinkFunction : std::uint8_t {
  kUnconfirmedUserData = 4,
};

struct LinkFrame {
  bool dir = true;       ///< master-to-outstation when true
  bool prm = true;       ///< primary frame
  LinkFunction function = LinkFunction::kUnconfirmedUserData;
  std::uint16_t destination = 0;
  std::uint16_t source = 0;
  util::Bytes user_data;  ///< transport segment

  /// Encodes with header CRC and per-block CRCs.
  [[nodiscard]] util::Bytes encode() const;

  /// Decodes and verifies every CRC; nullopt on any corruption.
  static std::optional<LinkFrame> decode(std::span<const std::uint8_t> data);
};

/// Transport header (single-segment fragments).
struct TransportHeader {
  bool fin = true;
  bool fir = true;
  std::uint8_t sequence = 0;  ///< 0..63

  [[nodiscard]] std::uint8_t encode() const {
    return static_cast<std::uint8_t>((fin ? 0x80 : 0) | (fir ? 0x40 : 0) |
                                     (sequence & 0x3F));
  }
  static TransportHeader decode(std::uint8_t octet) {
    return TransportHeader{(octet & 0x80) != 0, (octet & 0x40) != 0,
                           static_cast<std::uint8_t>(octet & 0x3F)};
  }
};

/// Wraps an application fragment for the wire (link + transport).
[[nodiscard]] util::Bytes wrap_fragment(std::uint16_t destination,
                                        std::uint16_t source,
                                        std::uint8_t transport_seq,
                                        const util::Bytes& app_fragment,
                                        bool dir_master_to_outstation);

/// Unwraps a wire datagram back to (frame, application fragment).
struct Unwrapped {
  LinkFrame frame;
  TransportHeader transport;
  util::Bytes app_fragment;
};
[[nodiscard]] std::optional<Unwrapped> unwrap_fragment(
    std::span<const std::uint8_t> data);

}  // namespace spire::dnp3
