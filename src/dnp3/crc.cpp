#include "dnp3/crc.hpp"

#include <array>

namespace spire::dnp3 {

namespace {

// Reflected form of polynomial 0x3D65.
constexpr std::uint16_t kPolyReflected = 0xA6BC;

std::array<std::uint16_t, 256> make_table() {
  std::array<std::uint16_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t crc = static_cast<std::uint16_t>(i);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? static_cast<std::uint16_t>((crc >> 1) ^ kPolyReflected)
                      : static_cast<std::uint16_t>(crc >> 1);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint16_t, 256>& table() {
  static const std::array<std::uint16_t, 256> kTable = make_table();
  return kTable;
}

}  // namespace

std::uint16_t crc_dnp(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0;
  for (const std::uint8_t byte : data) {
    crc = static_cast<std::uint16_t>((crc >> 8) ^
                                     table()[(crc ^ byte) & 0xFF]);
  }
  return crc;
}

}  // namespace spire::dnp3
