// Hex encoding/decoding used for logging digests, keys, and packet dumps.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace spire::util {

/// Lower-case hex encoding of a byte span.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> data);

/// Decodes a hex string (case-insensitive). Throws SerializationError on
/// odd length or non-hex characters.
[[nodiscard]] Bytes from_hex(std::string_view hex);

}  // namespace spire::util
