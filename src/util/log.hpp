// Minimal structured logger.
//
// Components log through a Logger handle tagged with their name (for
// example "prime.replica3" or "spines.daemon.int5"). The global sink can
// be redirected (tests capture it, benches silence it) and stamped with
// simulated time by installing a time source from the simulation kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace spire::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// Process-wide log configuration. Not thread-safe by design: the whole
/// system is a single-threaded discrete-event simulation.
class LogConfig {
 public:
  static LogConfig& instance();

  LogLevel level = LogLevel::kWarn;
  /// Receives fully formatted lines. Defaults to stderr.
  std::function<void(const std::string&)> sink;
  /// Returns the current time in microseconds (installed by the sim).
  std::function<std::uint64_t()> time_source;

 private:
  LogConfig();
};

/// Lightweight handle; cheap to copy.
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(LogConfig::instance().level);
  }

  template <typename... Args>
  void log(LogLevel level, Args&&... args) const {
    if (!enabled(level)) return;
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    emit(level, oss.str());
  }

  template <typename... Args>
  void trace(Args&&... args) const {
    log(LogLevel::kTrace, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void debug(Args&&... args) const {
    log(LogLevel::kDebug, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(Args&&... args) const {
    log(LogLevel::kInfo, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(Args&&... args) const {
    log(LogLevel::kWarn, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void error(Args&&... args) const {
    log(LogLevel::kError, std::forward<Args>(args)...);
  }

  [[nodiscard]] const std::string& component() const { return component_; }

 private:
  void emit(LogLevel level, const std::string& message) const;

  std::string component_;
};

}  // namespace spire::util
