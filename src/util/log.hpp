// Minimal structured logger.
//
// Components log through a Logger handle tagged with their name (for
// example "prime.replica3" or "spines.daemon.int5"). The global sink can
// be redirected (tests capture it, benches silence it) and stamped with
// simulated time by installing a time source from the simulation kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace spire::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

[[nodiscard]] std::string_view to_string(LogLevel level);

/// Process-wide log configuration. Not thread-safe by design: the whole
/// system is a single-threaded discrete-event simulation.
class LogConfig {
 public:
  static LogConfig& instance();

  LogLevel level = LogLevel::kWarn;
  /// Receives fully formatted lines. Defaults to stderr.
  std::function<void(const std::string&)> sink;
  /// Returns the current time in microseconds (installed by the sim).
  std::function<std::uint64_t()> time_source;

  /// Per-component override: `prefix` matches a component exactly or as
  /// a dotted prefix ("prime" covers "prime.3"; "scada.proxy" covers
  /// "scada.proxy.breaker-1"). Longest matching prefix wins.
  void set_override(std::string prefix, LogLevel override_level);
  void clear_overrides();
  [[nodiscard]] bool has_overrides() const { return !overrides_.empty(); }

  /// Effective level for a component: its longest-prefix override, or
  /// the global `level` when none matches.
  [[nodiscard]] LogLevel level_for(std::string_view component) const;
  /// Override for a component if one matches, else nullopt. Loggers use
  /// this so a direct assignment to `level` still takes effect for
  /// components without overrides.
  [[nodiscard]] std::optional<LogLevel> override_for(
      std::string_view component) const;

  /// Applies a SPIRE_LOG-style spec: a comma-separated list of
  /// `component=level` overrides and/or a bare `level` that sets the
  /// global default — e.g. "prime=debug,spines=warn" or "info" or
  /// "off,scada=debug". Unknown names are ignored. Returns true if any
  /// element parsed.
  bool apply_spec(std::string_view spec);

  /// Bumped on every override change; Loggers use it to memoize their
  /// override lookup.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

 private:
  LogConfig();

  std::map<std::string, LogLevel, std::less<>> overrides_;
  std::uint64_t generation_ = 1;
};

/// Lightweight handle; cheap to copy.
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  [[nodiscard]] bool enabled(LogLevel level) const {
    const auto& config = LogConfig::instance();
    if (!config.has_overrides()) {  // fast path: one compare, no lookup
      return static_cast<int>(level) >= static_cast<int>(config.level);
    }
    if (cached_generation_ != config.generation()) {
      cached_generation_ = config.generation();
      cached_override_ = config.override_for(component_);
    }
    const LogLevel effective =
        cached_override_ ? *cached_override_ : config.level;
    return static_cast<int>(level) >= static_cast<int>(effective);
  }

  template <typename... Args>
  void log(LogLevel level, Args&&... args) const {
    if (!enabled(level)) return;
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    emit(level, oss.str());
  }

  template <typename... Args>
  void trace(Args&&... args) const {
    log(LogLevel::kTrace, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void debug(Args&&... args) const {
    log(LogLevel::kDebug, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(Args&&... args) const {
    log(LogLevel::kInfo, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(Args&&... args) const {
    log(LogLevel::kWarn, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void error(Args&&... args) const {
    log(LogLevel::kError, std::forward<Args>(args)...);
  }

  [[nodiscard]] const std::string& component() const { return component_; }

 private:
  void emit(LogLevel level, const std::string& message) const;

  std::string component_;
  // Memoized override lookup, refreshed when the config generation
  // moves (0 = never looked up).
  mutable std::uint64_t cached_generation_ = 0;
  mutable std::optional<LogLevel> cached_override_;
};

/// Parses "debug"/"info"/… (as printed by to_string, lowercase).
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

}  // namespace spire::util
