// String interning: maps strings to dense, stable uint32 handles so hot
// paths can replace string-keyed maps with flat vectors indexed by
// handle. Handles are assigned in insertion order starting at 0 and are
// never recycled; the interner is append-only.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace spire::util {

/// Hash/equality pair enabling heterogeneous (string_view) lookup into
/// an unordered_map keyed by std::string, so probing never allocates.
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

class StringInterner {
 public:
  static constexpr std::uint32_t kInvalid = 0xFFFF'FFFF;

  /// Returns the handle for `s`, assigning the next dense handle if the
  /// string has not been seen before.
  std::uint32_t intern(std::string_view s) {
    const auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    const auto handle = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back(s);
    index_.emplace(names_.back(), handle);
    return handle;
  }

  /// Returns the handle for `s`, or kInvalid if it was never interned.
  [[nodiscard]] std::uint32_t lookup(std::string_view s) const {
    const auto it = index_.find(s);
    return it == index_.end() ? kInvalid : it->second;
  }

  [[nodiscard]] const std::string& name(std::uint32_t handle) const {
    return names_.at(handle);
  }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, std::uint32_t, TransparentStringHash,
                     std::equal_to<>>
      index_;
  std::vector<std::string> names_;
};

}  // namespace spire::util
