// Byte-buffer utilities and bounds-checked binary serialization.
//
// All wire formats in this repository (Modbus frames, Spines overlay
// packets, Prime protocol messages, SCADA payloads) are encoded with
// ByteWriter and decoded with ByteReader. Integers are big-endian
// ("network order"), matching what the real Spire/Spines/Modbus stacks
// put on the wire. Decoding is fully bounds-checked: malformed input
// raises SerializationError instead of reading out of bounds, which is
// what allows the attack framework to throw arbitrary garbage at every
// parser in the system.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace spire::util {

using Bytes = std::vector<std::uint8_t>;

/// Thrown when a ByteReader runs out of input or a length prefix is
/// inconsistent with the remaining buffer.
class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what)
      : std::runtime_error("serialization error: " + what) {}
};

/// Appends big-endian primitive values and length-prefixed blobs to a
/// growable byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Pre-sizes the buffer from an encoded-size hint.
  explicit ByteWriter(std::size_t size_hint) { buf_.reserve(size_hint); }

  /// Grows capacity to at least `n` bytes (hot paths pass the exact
  /// encoded size so a message serializes with one allocation).
  void reserve(std::size_t n) { buf_.reserve(n); }

  /// Drops the contents but keeps the capacity, so a scratch writer can
  /// be reused across messages without reallocating.
  void clear() { buf_.clear(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }

  void u64(std::uint64_t v) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      buf_.push_back(static_cast<std::uint8_t>(v >> shift));
    }
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Raw bytes, no length prefix.
  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// u32 length prefix followed by the bytes.
  void blob(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
  }

  /// u32 length prefix followed by UTF-8 bytes.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Bounds-checked big-endian decoder over a borrowed byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool boolean() { return u8() != 0; }

  Bytes raw(std::size_t n) {
    need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  Bytes blob() {
    std::uint32_t n = u32();
    if (n > remaining()) throw SerializationError("blob length exceeds input");
    return raw(n);
  }

  /// Borrowed u32-length-prefixed read for hot-path decoders: the view
  /// aliases the input buffer and must not outlive it.
  std::span<const std::uint8_t> blob_span() {
    std::uint32_t n = u32();
    if (n > remaining()) throw SerializationError("blob length exceeds input");
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::string str() {
    std::uint32_t n = u32();
    if (n > remaining()) throw SerializationError("string length exceeds input");
    need(n);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  /// Borrowed variant of str(); same aliasing caveat as blob_span().
  std::string_view str_view() {
    std::uint32_t n = u32();
    if (n > remaining()) throw SerializationError("string length exceeds input");
    std::string_view out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  /// Remaining bytes without consuming them.
  [[nodiscard]] std::span<const std::uint8_t> rest() const {
    return data_.subspan(pos_);
  }

  /// Current read position; pair with since() to capture the exact wire
  /// bytes a nested structure was decoded from (encode-once caching).
  [[nodiscard]] std::size_t offset() const { return pos_; }

  /// The input bytes consumed since `mark` (a prior offset()). Borrowed
  /// view; same aliasing caveat as blob_span().
  [[nodiscard]] std::span<const std::uint8_t> since(std::size_t mark) const {
    return data_.subspan(mark, pos_ - mark);
  }

  void expect_done() const {
    if (!done()) throw SerializationError("trailing bytes after message");
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw SerializationError("input truncated");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Convenience: byte vector from a string literal / view.
[[nodiscard]] inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

[[nodiscard]] inline std::string to_string(std::span<const std::uint8_t> b) {
  return std::string(b.begin(), b.end());
}

}  // namespace spire::util
