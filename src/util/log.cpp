#include "util/log.hpp"

#include <cstdio>
#include <iomanip>

namespace spire::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogConfig::LogConfig() {
  sink = [](const std::string& line) { std::fputs((line + "\n").c_str(), stderr); };
}

LogConfig& LogConfig::instance() {
  static LogConfig config;
  return config;
}

void Logger::emit(LogLevel level, const std::string& message) const {
  auto& config = LogConfig::instance();
  std::ostringstream oss;
  if (config.time_source) {
    const std::uint64_t us = config.time_source();
    oss << std::setw(10) << us / 1000 << '.' << std::setw(3) << std::setfill('0')
        << us % 1000 << std::setfill(' ') << "ms ";
  }
  oss << to_string(level) << ' ' << component_ << ": " << message;
  config.sink(oss.str());
}

}  // namespace spire::util
