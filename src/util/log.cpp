#include "util/log.hpp"

#include <cstdio>
#include <iomanip>

namespace spire::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogConfig::LogConfig() {
  sink = [](const std::string& line) { std::fputs((line + "\n").c_str(), stderr); };
}

LogConfig& LogConfig::instance() {
  static LogConfig config;
  return config;
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

void LogConfig::set_override(std::string prefix, LogLevel override_level) {
  overrides_[std::move(prefix)] = override_level;
  ++generation_;
}

void LogConfig::clear_overrides() {
  if (overrides_.empty()) return;
  overrides_.clear();
  ++generation_;
}

std::optional<LogLevel> LogConfig::override_for(
    std::string_view component) const {
  std::optional<LogLevel> best;
  std::size_t best_len = 0;
  for (const auto& [prefix, lvl] : overrides_) {
    const bool matches =
        component == prefix ||
        (component.size() > prefix.size() &&
         component[prefix.size()] == '.' &&
         component.substr(0, prefix.size()) == prefix);
    if (matches && prefix.size() >= best_len) {
      best = lvl;
      best_len = prefix.size();
    }
  }
  return best;
}

LogLevel LogConfig::level_for(std::string_view component) const {
  const auto override_level = override_for(component);
  return override_level ? *override_level : level;
}

bool LogConfig::apply_spec(std::string_view spec) {
  bool any = false;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view item = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      if (const auto lvl = parse_log_level(item)) {
        level = *lvl;
        any = true;
      }
    } else if (const auto lvl = parse_log_level(item.substr(eq + 1))) {
      set_override(std::string(item.substr(0, eq)), *lvl);
      any = true;
    }
  }
  return any;
}

void Logger::emit(LogLevel level, const std::string& message) const {
  auto& config = LogConfig::instance();
  std::ostringstream oss;
  if (config.time_source) {
    const std::uint64_t us = config.time_source();
    oss << std::setw(10) << us / 1000 << '.' << std::setw(3) << std::setfill('0')
        << us % 1000 << std::setfill(' ') << "ms ";
  }
  oss << to_string(level) << ' ' << component_ << ": " << message;
  config.sink(oss.str());
}

}  // namespace spire::util
