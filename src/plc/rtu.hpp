// Emulated RTU: the DNP3-speaking cousin of the Modbus PLC (paper §II
// lists both as the field devices Spire proxies). The RTU runs the
// same breaker physics and scan cycle but exposes a DNP3 outstation:
// class-0 integrity polls return binary inputs (actual positions),
// binary output status (commanded positions) and 16-bit analog inputs
// (synthetic load currents); CROB direct-operates command the breakers.
#pragma once

#include <string>

#include "dnp3/endpoint.hpp"
#include "net/host.hpp"
#include "plc/field_device.hpp"
#include "sim/rng.hpp"

namespace spire::plc {

struct RtuStats {
  std::uint64_t scans = 0;
  std::uint64_t dnp3_requests = 0;
  std::uint64_t operates_accepted = 0;
  std::uint64_t operates_rejected = 0;
};

class Rtu : public FieldDevice {
 public:
  Rtu(sim::Simulator& sim, net::Host& host, std::string name,
      std::vector<BreakerSpec> breaker_specs, sim::Rng rng,
      sim::Time scan_interval = 10 * sim::kMillisecond,
      std::uint16_t dnp3_address = 1);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] BreakerBank& breakers() override { return breakers_; }
  [[nodiscard]] const BreakerBank& breakers() const override {
    return breakers_;
  }
  void actuate_breaker_locally(std::size_t index, bool close) override;

  [[nodiscard]] const RtuStats& stats() const { return stats_; }
  [[nodiscard]] const dnp3::PointDatabase& points() const { return points_; }

 private:
  void scan();
  void handle_dnp3(const net::Datagram& dgram);

  sim::Simulator& sim_;
  net::Host& host_;
  std::string name_;
  util::Logger log_;
  BreakerBank breakers_;
  dnp3::PointDatabase points_;
  dnp3::Outstation outstation_;
  sim::Rng rng_;
  sim::Time scan_interval_;
  RtuStats stats_;
};

}  // namespace spire::plc
