// Physical process model: a bank of circuit breakers.
//
// This is the "ground truth" the paper leans on in §III-A — the state
// of the field devices is the real state of the power system, which is
// what lets Spire rebuild SCADA-master state from the PLCs after an
// assumption breach. Breakers actuate with a mechanical delay, so a
// commanded flip becomes visible in the PLC's inputs only after the
// (simulated) physics happen.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace spire::plc {

struct BreakerSpec {
  std::string name;
  bool initially_closed = false;
  sim::Time actuation_delay = 40 * sim::kMillisecond;
};

/// Fired whenever a breaker's physical position changes.
using BreakerObserver =
    std::function<void(std::size_t index, bool closed, sim::Time at)>;

class BreakerBank {
 public:
  BreakerBank(sim::Simulator& sim, std::vector<BreakerSpec> specs);

  [[nodiscard]] std::size_t size() const { return breakers_.size(); }
  [[nodiscard]] const std::string& name(std::size_t i) const {
    return breakers_.at(i).spec.name;
  }

  /// Commands breaker `i` to open/close; the physical position changes
  /// after the actuation delay. Re-commands supersede pending motion.
  void command(std::size_t i, bool close);

  [[nodiscard]] bool commanded(std::size_t i) const {
    return breakers_.at(i).commanded_closed;
  }
  [[nodiscard]] bool closed(std::size_t i) const {
    return breakers_.at(i).actual_closed;
  }

  void add_observer(BreakerObserver obs) { observers_.push_back(std::move(obs)); }

  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

 private:
  struct Breaker {
    BreakerSpec spec;
    bool commanded_closed = false;
    bool actual_closed = false;
    sim::EventId pending = 0;
  };

  sim::Simulator& sim_;
  std::vector<Breaker> breakers_;
  std::vector<BreakerObserver> observers_;
  std::uint64_t transitions_ = 0;
};

}  // namespace spire::plc
