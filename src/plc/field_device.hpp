// Common interface over field devices (Modbus PLCs, DNP3 RTUs): the
// ground-truth surface that benches, the measurement rig, and the
// ground-truth-recovery story interact with.
#pragma once

#include <string>

#include "plc/breaker.hpp"

namespace spire::plc {

class FieldDevice {
 public:
  virtual ~FieldDevice() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual BreakerBank& breakers() = 0;
  [[nodiscard]] virtual const BreakerBank& breakers() const = 0;

  /// Physical/local actuation (switchgear-side), bypassing SCADA.
  virtual void actuate_breaker_locally(std::size_t index, bool close) = 0;
};

}  // namespace spire::plc
