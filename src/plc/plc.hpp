// Emulated PLC (OpenPLC-style), per DESIGN.md §3.
//
// The device runs a periodic scan cycle: coils written over Modbus are
// treated as breaker open/close commands, the physical breaker
// positions are copied back into the discrete inputs, and synthetic
// current measurements into the input registers. It also exposes the
// deliberately insecure vendor "maintenance" service (UDP 5007) whose
// unauthenticated memory dump and password-protected config upload
// reproduce the red team's takeover path against the commercial system
// (paper §IV-B): dump the config to learn the password, then upload a
// modified config to gain direct control.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "modbus/endpoint.hpp"
#include "net/host.hpp"
#include "plc/breaker.hpp"
#include "plc/field_device.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace spire::plc {

/// Vendor maintenance service port (proprietary, plaintext).
constexpr std::uint16_t kMaintenancePort = 5007;

enum class MaintenanceOp : std::uint8_t {
  kDumpConfig = 1,
  kUploadConfig = 2,
  kDirectCoilWrite = 3,
};

/// The PLC's persistent configuration — what the red team dumped and
/// rewrote on the commercial system's PLC.
struct PlcConfig {
  std::string device_name = "plc";
  std::string firmware = "ladderos-2.4.1";
  std::string maintenance_password = "factory-default";
  std::uint16_t breaker_count = 0;
  /// When true, MaintenanceOp::kDirectCoilWrite bypasses the scan logic
  /// entirely. Legit firmware ships with this off; the red team's
  /// uploaded config turns it on.
  bool direct_control_enabled = false;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<PlcConfig> decode(std::span<const std::uint8_t> data);
};

struct PlcStats {
  std::uint64_t scans = 0;
  std::uint64_t modbus_requests = 0;
  std::uint64_t config_dumps = 0;
  std::uint64_t config_uploads_accepted = 0;
  std::uint64_t config_uploads_rejected = 0;
  std::uint64_t direct_writes_accepted = 0;
  std::uint64_t direct_writes_rejected = 0;
};

class Plc : public FieldDevice {
 public:
  /// Binds the Modbus server and maintenance service on `host` and
  /// starts the scan cycle. `host` must already have an interface.
  Plc(sim::Simulator& sim, net::Host& host, std::string name,
      std::vector<BreakerSpec> breakers, sim::Rng rng,
      sim::Time scan_interval = 10 * sim::kMillisecond);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] BreakerBank& breakers() override { return breakers_; }
  [[nodiscard]] const BreakerBank& breakers() const override {
    return breakers_;
  }
  [[nodiscard]] modbus::DataModel& data_model() { return model_; }
  [[nodiscard]] const PlcConfig& config() const { return config_; }
  [[nodiscard]] const PlcStats& stats() const { return stats_; }
  [[nodiscard]] bool config_tampered() const { return config_tampered_; }

  /// Physical/local breaker actuation (e.g. the plant measurement
  /// device flipping a breaker at the switchgear, not via SCADA).
  void actuate_breaker_locally(std::size_t index, bool close) override;

 private:
  void scan();
  void handle_modbus(const net::Datagram& dgram);
  void handle_maintenance(const net::Datagram& dgram);

  sim::Simulator& sim_;
  net::Host& host_;
  std::string name_;
  util::Logger log_;
  BreakerBank breakers_;
  modbus::DataModel model_;
  modbus::Server server_;
  PlcConfig config_;
  PlcConfig original_config_;
  bool config_tampered_ = false;
  sim::Rng rng_;
  sim::Time scan_interval_;
  PlcStats stats_;
};

}  // namespace spire::plc
