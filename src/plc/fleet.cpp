#include "plc/fleet.hpp"

#include "obs/trace.hpp"

namespace spire::plc {

EmulatedFleet::EmulatedFleet(sim::Simulator& sim, FleetConfig config,
                             SinkFn sink)
    : sim_(sim),
      config_(config),
      sink_(std::move(sink)),
      rng_(config.seed),
      metrics_("plc.fleet") {
  if (config_.slices == 0) config_.slices = 1;
  devices_.reserve(config_.devices);
  for (std::size_t i = 0; i < config_.devices; ++i) {
    Device d;
    d.name = "fd" + std::to_string(i);
    d.breakers.assign(config_.breakers_per_device, true);  // energized
    d.readings.assign(config_.readings_per_device, 0);
    for (auto& reading : d.readings) {
      reading = static_cast<std::uint16_t>(rng_.uniform(100, 900));
    }
    devices_.push_back(std::move(d));
  }
  metrics_.counter("reports_emitted", &stats_.reports_emitted);
  metrics_.counter("flips_emitted", &stats_.flips_emitted);
}

void EmulatedFleet::start() {
  if (running_ || devices_.empty()) return;
  running_ = true;
  tick();
}

void EmulatedFleet::tick() {
  if (!running_) return;
  // One slice of the fleet per timer event: 10k devices at 50 slices
  // is 200 reports per event, every interval/50.
  const std::size_t per_slice =
      (devices_.size() + config_.slices - 1) / config_.slices;
  for (std::size_t n = 0; n < per_slice && n < devices_.size(); ++n) {
    emit(devices_[cursor_]);
    cursor_ = (cursor_ + 1) % devices_.size();
  }
  sim_.schedule_after(config_.report_interval / config_.slices,
                      [this] { tick(); });
}

void EmulatedFleet::emit(Device& device) {
  // Telemetry drifts every report; breakers flip rarely and never
  // faster than min_flip_gap per device.
  for (auto& reading : device.readings) {
    const auto jitter = static_cast<std::uint16_t>(rng_.uniform(0, 20));
    reading = static_cast<std::uint16_t>(500 + ((reading + jitter) % 500));
  }
  bool flipped = false;
  if (!device.breakers.empty() && rng_.chance(config_.flip_chance) &&
      sim_.now() >= device.last_flip + config_.min_flip_gap) {
    const auto breaker = static_cast<std::size_t>(
        rng_.uniform(0, device.breakers.size() - 1));
    device.breakers[breaker] = !device.breakers[breaker];
    device.last_flip = sim_.now();
    ++device.flips;
    ++stats_.flips_emitted;
    flipped = true;
    if (auto* tracer = obs::Tracer::current()) {
      tracer->plc_change(device.name, breaker);
    }
  }
  ++stats_.reports_emitted;
  sink_(device.name, device.breakers, device.readings, flipped);
}

}  // namespace spire::plc
