// Emulated device fleet (DESIGN.md §9): thousands of lightweight
// PLCs/RTUs for fleet-scale benches.
//
// The full EmulatedPlc carries a Modbus endpoint, a maintenance
// service, and a scan loop — perfect for a seventeen-device substation,
// far too heavy to instantiate 10k times. The fleet keeps only what
// the field layer above can observe: per-device breaker images and
// synthetic readings, swept on a single timer in round-robin slices so
// 10k devices cost one event per slice, not 10k timers. Devices are
// named like ScenarioSpec::fleet ("fd<i>") so the same spec seeds the
// masters.
//
// Every emitted report is handed to the sink (normally
// FleetProxy::ingest); reports that carry a breaker flip are flagged
// critical so the front door sheds them last. The fleet records its
// own ground truth — per-device flip counts and final breaker images —
// which benches compare against what the HMIs actually rendered: the
// zero-missed-deltas gate.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace spire::plc {

struct FleetConfig {
  std::size_t devices = 1000;
  std::size_t breakers_per_device = 2;
  std::size_t readings_per_device = 2;
  /// Per-device reporting period; the fleet is swept in slices so the
  /// emitted load spreads evenly across the period.
  sim::Time report_interval = 500 * sim::kMillisecond;
  std::size_t slices = 50;  ///< timer events per sweep of the fleet
  double flip_chance = 0.02;  ///< chance a report flips one breaker
  sim::Time min_flip_gap = 2 * sim::kSecond;  ///< per-device flip spacing
  std::uint64_t seed = 0x464c4545'54303141ULL;  // "FLEET01A"
};

struct FleetStats {
  std::uint64_t reports_emitted = 0;
  std::uint64_t flips_emitted = 0;
};

class EmulatedFleet {
 public:
  /// Receives each device report; `critical` marks breaker movement.
  using SinkFn =
      std::function<void(const std::string& device, std::vector<bool> breakers,
                         std::vector<std::uint16_t> readings, bool critical)>;

  EmulatedFleet(sim::Simulator& sim, FleetConfig config, SinkFn sink);

  void start();
  void stop() { running_ = false; }

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  [[nodiscard]] const std::string& device_name(std::size_t i) const {
    return devices_[i].name;
  }
  [[nodiscard]] const FleetStats& stats() const { return stats_; }

  // --- ground truth for bench gates ----------------------------------
  /// Breaker flips emitted for this device so far.
  [[nodiscard]] std::uint64_t flips(std::size_t i) const {
    return devices_[i].flips;
  }
  [[nodiscard]] std::uint64_t total_flips() const { return stats_.flips_emitted; }
  /// The device's true breaker image right now.
  [[nodiscard]] const std::vector<bool>& breakers(std::size_t i) const {
    return devices_[i].breakers;
  }

 private:
  struct Device {
    std::string name;
    std::vector<bool> breakers;
    std::vector<std::uint16_t> readings;
    sim::Time last_flip = 0;
    std::uint64_t flips = 0;
  };

  void tick();
  void emit(Device& device);

  sim::Simulator& sim_;
  FleetConfig config_;
  SinkFn sink_;
  sim::Rng rng_;
  std::vector<Device> devices_;
  std::size_t cursor_ = 0;  ///< next device in the round-robin sweep
  bool running_ = false;
  FleetStats stats_;
  obs::Binder metrics_;
};

}  // namespace spire::plc
