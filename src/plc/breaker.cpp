#include "plc/breaker.hpp"

namespace spire::plc {

BreakerBank::BreakerBank(sim::Simulator& sim, std::vector<BreakerSpec> specs)
    : sim_(sim) {
  breakers_.reserve(specs.size());
  for (auto& spec : specs) {
    Breaker b;
    b.commanded_closed = spec.initially_closed;
    b.actual_closed = spec.initially_closed;
    b.spec = std::move(spec);
    breakers_.push_back(std::move(b));
  }
}

void BreakerBank::command(std::size_t i, bool close) {
  Breaker& b = breakers_.at(i);
  if (b.commanded_closed == close) return;
  b.commanded_closed = close;
  if (b.pending != 0) sim_.cancel(b.pending);
  b.pending = sim_.schedule_after(b.spec.actuation_delay, [this, i, close] {
    Breaker& br = breakers_[i];
    br.pending = 0;
    if (br.actual_closed == close) return;
    br.actual_closed = close;
    ++transitions_;
    for (const auto& obs : observers_) obs(i, close, sim_.now());
  });
}

}  // namespace spire::plc
