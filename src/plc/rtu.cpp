#include "plc/rtu.hpp"

namespace spire::plc {

Rtu::Rtu(sim::Simulator& sim, net::Host& host, std::string name,
         std::vector<BreakerSpec> breaker_specs, sim::Rng rng,
         sim::Time scan_interval, std::uint16_t dnp3_address)
    : sim_(sim),
      host_(host),
      name_(std::move(name)),
      log_("rtu." + name_),
      breakers_(sim, std::move(breaker_specs)),
      outstation_(dnp3_address, points_,
                  [this](std::uint16_t index, bool close) -> std::uint8_t {
                    if (index >= breakers_.size()) {
                      ++stats_.operates_rejected;
                      return 4;  // NOT_SUPPORTED
                    }
                    ++stats_.operates_accepted;
                    breakers_.command(index, close);
                    return 0;  // SUCCESS
                  }),
      rng_(rng),
      scan_interval_(scan_interval) {
  points_.binary_inputs.resize(breakers_.size());
  points_.binary_output_status.resize(breakers_.size());
  points_.analog_inputs.resize(breakers_.size());
  for (std::size_t i = 0; i < breakers_.size(); ++i) {
    points_.binary_inputs[i] = {breakers_.closed(i), true};
    points_.binary_output_status[i] = {breakers_.commanded(i), true};
  }

  host_.bind_udp(dnp3::kDnp3Port,
                 [this](const net::Datagram& d) { handle_dnp3(d); });
  sim_.schedule_after(scan_interval_, [this] { scan(); });
}

void Rtu::scan() {
  ++stats_.scans;
  for (std::size_t i = 0; i < breakers_.size(); ++i) {
    const bool closed = breakers_.closed(i);
    points_.binary_inputs[i] = {closed, true};
    points_.binary_output_status[i] = {breakers_.commanded(i), true};
    const double amps =
        closed ? rng_.normal(480.0, 6.0) : rng_.normal(0.5, 0.2);
    points_.analog_inputs[i] = {
        static_cast<std::int16_t>(std::max(0.0, amps) * 10.0), true};
  }
  sim_.schedule_after(scan_interval_, [this] { scan(); });
}

void Rtu::handle_dnp3(const net::Datagram& dgram) {
  ++stats_.dnp3_requests;
  const auto response = outstation_.handle(dgram.payload);
  if (!response) return;
  host_.send_udp(dgram.src_ip, dgram.src_port, dnp3::kDnp3Port, *response);
}

void Rtu::actuate_breaker_locally(std::size_t index, bool close) {
  breakers_.command(index, close);
}

}  // namespace spire::plc
