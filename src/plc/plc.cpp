#include "plc/plc.hpp"

namespace spire::plc {

util::Bytes PlcConfig::encode() const {
  util::ByteWriter w;
  w.str(device_name);
  w.str(firmware);
  w.str(maintenance_password);
  w.u16(breaker_count);
  w.boolean(direct_control_enabled);
  return w.take();
}

std::optional<PlcConfig> PlcConfig::decode(std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    PlcConfig c;
    c.device_name = r.str();
    c.firmware = r.str();
    c.maintenance_password = r.str();
    c.breaker_count = r.u16();
    c.direct_control_enabled = r.boolean();
    r.expect_done();
    return c;
  } catch (const util::SerializationError&) {
    return std::nullopt;
  }
}

Plc::Plc(sim::Simulator& sim, net::Host& host, std::string name,
         std::vector<BreakerSpec> breaker_specs, sim::Rng rng,
         sim::Time scan_interval)
    : sim_(sim),
      host_(host),
      name_(std::move(name)),
      log_("plc." + name_),
      breakers_(sim, std::move(breaker_specs)),
      // Coils command breakers; discrete inputs mirror positions; input
      // registers carry one synthetic current measurement per breaker
      // plus a device status word.
      model_(breakers_.size(), breakers_.size(), 16, breakers_.size() + 1),
      server_(model_),
      rng_(rng),
      scan_interval_(scan_interval) {
  config_.device_name = name_;
  config_.breaker_count = static_cast<std::uint16_t>(breakers_.size());
  original_config_ = config_;

  // Initialize coils to the commanded state so the first scan does not
  // spuriously open everything.
  for (std::size_t i = 0; i < breakers_.size(); ++i) {
    model_.set_coil(i, breakers_.commanded(i));
    model_.set_discrete_input(i, breakers_.closed(i));
  }

  host_.bind_udp(modbus::kModbusPort, [this](const net::Datagram& d) {
    handle_modbus(d);
  });
  host_.bind_udp(kMaintenancePort, [this](const net::Datagram& d) {
    handle_maintenance(d);
  });

  sim_.schedule_after(scan_interval_, [this] { scan(); });
}

void Plc::scan() {
  ++stats_.scans;

  // Coils -> breaker commands (unless a tampered config has put the
  // device in direct-control mode, in which case ladder logic is
  // bypassed and only maintenance writes move the breakers).
  if (!config_.direct_control_enabled) {
    for (std::size_t i = 0; i < breakers_.size(); ++i) {
      breakers_.command(i, model_.coil(i));
    }
  }

  // Physical positions -> discrete inputs; synthetic measurements ->
  // input registers (load current ~480A when closed, leakage when open,
  // with sensor noise — gives MANA realistic, slightly varying values).
  for (std::size_t i = 0; i < breakers_.size(); ++i) {
    const bool closed = breakers_.closed(i);
    model_.set_discrete_input(i, closed);
    const double amps = closed ? rng_.normal(480.0, 6.0) : rng_.normal(0.5, 0.2);
    model_.set_input_register(i, static_cast<std::uint16_t>(
                                     std::max(0.0, amps) * 10.0));
  }
  model_.set_input_register(breakers_.size(),
                            static_cast<std::uint16_t>(stats_.scans & 0xFFFF));

  sim_.schedule_after(scan_interval_, [this] { scan(); });
}

void Plc::handle_modbus(const net::Datagram& dgram) {
  ++stats_.modbus_requests;
  const auto response = server_.handle(dgram.payload);
  if (!response) return;
  host_.send_udp(dgram.src_ip, dgram.src_port, modbus::kModbusPort, *response);
}

void Plc::handle_maintenance(const net::Datagram& dgram) {
  try {
    util::ByteReader r(dgram.payload);
    const auto op = static_cast<MaintenanceOp>(r.u8());
    switch (op) {
      case MaintenanceOp::kDumpConfig: {
        // No authentication: this is the real-world weakness that let
        // the red team pull the PLC's memory within hours (§IV-B).
        ++stats_.config_dumps;
        log_.warn("maintenance config dump served to ", dgram.src_ip.str());
        util::ByteWriter w;
        w.u8(static_cast<std::uint8_t>(MaintenanceOp::kDumpConfig));
        w.blob(config_.encode());
        host_.send_udp(dgram.src_ip, dgram.src_port, kMaintenancePort, w.take());
        return;
      }
      case MaintenanceOp::kUploadConfig: {
        const std::string password = r.str();
        const auto blob = r.blob();
        const auto new_config = PlcConfig::decode(blob);
        if (password != config_.maintenance_password || !new_config) {
          ++stats_.config_uploads_rejected;
          return;
        }
        ++stats_.config_uploads_accepted;
        config_ = *new_config;
        config_tampered_ =
            config_.direct_control_enabled !=
                original_config_.direct_control_enabled ||
            config_.firmware != original_config_.firmware;
        log_.warn("maintenance config upload accepted from ",
                  dgram.src_ip.str(), config_tampered_ ? " (TAMPERED)" : "");
        return;
      }
      case MaintenanceOp::kDirectCoilWrite: {
        const std::uint16_t address = r.u16();
        const bool value = r.boolean();
        if (!config_.direct_control_enabled ||
            address >= breakers_.size()) {
          ++stats_.direct_writes_rejected;
          return;
        }
        ++stats_.direct_writes_accepted;
        model_.set_coil(address, value);
        breakers_.command(address, value);
        log_.warn("direct coil write: breaker ", address, " <- ",
                  value ? "CLOSE" : "OPEN");
        return;
      }
    }
  } catch (const util::SerializationError&) {
    // Malformed maintenance traffic is dropped, as on the real device.
  }
}

void Plc::actuate_breaker_locally(std::size_t index, bool close) {
  model_.set_coil(index, close);
  breakers_.command(index, close);
}

}  // namespace spire::plc
