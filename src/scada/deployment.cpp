#include "scada/deployment.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace spire::scada {

namespace {

std::string internal_node(std::size_t i) { return "int" + std::to_string(i); }
std::string external_node(std::size_t i) { return "ext" + std::to_string(i); }
std::string proxy_node(const std::string& device) { return "extp-" + device; }
std::string hmi_node(std::size_t j) { return "exth-" + std::to_string(j); }

}  // namespace

class SpireDeployment::SpinesReplicaTransport : public prime::ReplicaTransport {
 public:
  SpinesReplicaTransport(spines::Daemon& daemon, std::uint32_t n,
                         prime::ReplicaId self)
      : daemon_(daemon), n_(n), self_(self) {}

  void send(prime::ReplicaId to, util::Bytes envelope) override {
    daemon_.session_send(kReplicaSession, internal_node(to), kReplicaSession,
                         envelope, spines::Priority::kHigh);
  }

  void broadcast(util::Bytes envelope) override {
    // One overlay multicast instead of n-1 unicasts: the internal
    // overlay floods it to every replica daemon.
    daemon_.session_send(kReplicaSession, spines::kBroadcastDst,
                         kReplicaSession, envelope, spines::Priority::kHigh);
  }

 private:
  spines::Daemon& daemon_;
  std::uint32_t n_;
  prime::ReplicaId self_;
};

SpireDeployment::SpireDeployment(sim::Simulator& sim, DeploymentConfig config)
    : sim_(sim),
      config_(std::move(config)),
      keyring_(config_.keyring_seed),
      rng_(config_.seed) {
  config_.prime.f = config_.f;
  config_.prime.k = config_.k;
  config_.prime.client_identities.clear();
  for (const auto& device : config_.scenario.devices) {
    config_.prime.client_identities.push_back(proxy_identity(device.name));
  }
  for (std::size_t j = 0; j < config_.hmi_count; ++j) {
    config_.prime.client_identities.push_back(hmi_identity(j));
  }
  config_.prime.client_identities.push_back("client/cycler");

  build_network();
  build_overlays();
  build_field_devices();
  build_replicas();
  build_clients();
  harden_all();  // applies exactly the enabled HardeningOptions
}

SpireDeployment::~SpireDeployment() = default;

void SpireDeployment::build_network() {
  network_ = std::make_unique<net::Network>(sim_);

  const std::uint32_t sites = config_.sites.site_count();
  const std::uint32_t n = config_.prime.n();
  if (sites > n) {
    throw std::invalid_argument("more sites than replicas");
  }

  for (std::uint32_t s = 0; s < sites; ++s) {
    const std::string suffix = sites > 1 ? "-site" + std::to_string(s) : "";
    net::SwitchConfig internal_config;
    internal_config.name = "spines-internal" + suffix;
    internal_config.static_port_binding = config_.hardening.static_switch_ports;
    internal_switches_.push_back(&network_->add_switch(internal_config));

    net::SwitchConfig external_config;
    external_config.name = "spines-external" + suffix;
    external_config.static_port_binding = config_.hardening.static_switch_ports;
    external_switches_.push_back(&network_->add_switch(external_config));
  }
  internal_switch_ = internal_switches_[0];
  external_switch_ = external_switches_[0];

  std::uint32_t mac_id = 1;

  for (std::uint32_t i = 0; i < n; ++i) {
    net::Host& host = network_->add_host("replica" + std::to_string(i));
    host.add_interface(net::MacAddress::from_id(mac_id++),
                       net::IpAddress::make(10, 1, 0, 1 + i), 24);
    host.add_interface(net::MacAddress::from_id(mac_id++),
                       net::IpAddress::make(10, 2, 0, 1 + i), 24);
    const std::uint32_t site = site_of_replica(i);
    network_->connect(host, 0, *internal_switches_[site]);
    network_->connect(host, 1, *external_switches_[site]);
    replica_hosts_.push_back(&host);
  }

  // Inter-site WAN mesh: one dedicated 2-port switch per site pair,
  // whose propagation delay is the wide-area latency. The border host
  // of site s is replica s (round-robin placement puts it there); it
  // gets one extra WAN NIC per peer site. Dedicated switches let a
  // whole-site partition cut exactly that site's links with chaos loss.
  std::uint8_t wan_subnet = 20;
  for (std::uint32_t a = 0; a < sites; ++a) {
    for (std::uint32_t b = a + 1; b < sites; ++b) {
      net::SwitchConfig wan_config;
      wan_config.name = "wan-" + std::to_string(a) + "-" + std::to_string(b);
      wan_config.propagation_delay = config_.sites.wan_latency;
      wan_config.static_port_binding = config_.hardening.static_switch_ports;
      net::Switch& sw = network_->add_switch(wan_config);

      net::Host& host_a = *replica_hosts_[a];
      net::Host& host_b = *replica_hosts_[b];
      const std::size_t iface_a = host_a.interface_count();
      host_a.add_interface(net::MacAddress::from_id(mac_id++),
                           net::IpAddress::make(10, wan_subnet, 0, 1), 24);
      const std::size_t iface_b = host_b.interface_count();
      host_b.add_interface(net::MacAddress::from_id(mac_id++),
                           net::IpAddress::make(10, wan_subnet, 0, 2), 24);
      network_->connect(host_a, iface_a, sw);
      network_->connect(host_b, iface_b, sw);
      wan_links_.push_back(WanLink{a, b, &sw, iface_a, iface_b});
      ++wan_subnet;
    }
  }

  std::uint8_t device_index = 0;
  for (const auto& device : config_.scenario.devices) {
    net::Host& proxy_host = network_->add_host("proxy-" + device.name);
    proxy_host.add_interface(net::MacAddress::from_id(mac_id++),
                             net::IpAddress::make(10, 2, 0, 101 + device_index),
                             24);
    proxy_host.add_interface(
        net::MacAddress::from_id(mac_id++),
        net::IpAddress::make(10, 3, device_index, 1), 30);
    network_->connect(proxy_host, 0, *external_switch_);
    proxy_hosts_[device.name] = &proxy_host;

    net::Host& plc_host = network_->add_host("plc-" + device.name);
    plc_host.add_interface(net::MacAddress::from_id(mac_id++),
                           net::IpAddress::make(10, 3, device_index, 2), 30);
    // §III-B: the PLC connects to its proxy over a physical cable, not
    // through any switch.
    network_->cable(proxy_host, 1, plc_host, 0);
    plc_hosts_[device.name] = &plc_host;
    ++device_index;
  }

  for (std::size_t j = 0; j < config_.hmi_count; ++j) {
    net::Host& host = network_->add_host("hmi" + std::to_string(j));
    host.add_interface(
        net::MacAddress::from_id(mac_id++),
        net::IpAddress::make(10, 2, 0, static_cast<std::uint8_t>(201 + j)), 24);
    network_->connect(host, 0, *external_switch_);
    hmi_hosts_.push_back(&host);
  }

  cycler_host_ = &network_->add_host("cycler");
  cycler_host_->add_interface(net::MacAddress::from_id(mac_id++),
                              net::IpAddress::make(10, 2, 0, 250), 24);
  network_->connect(*cycler_host_, 0, *external_switch_);
}

void SpireDeployment::build_overlays() {
  // Internal (replication) network: intrusion-tolerant priority
  // flooding, as Spire runs it. External network: same sealed links,
  // but routed forwarding — it is a single-switch clique, where
  // link-state rerouting already provides the resilience and flooding
  // would only multiply every client/HMI message ~20x.
  spines::DaemonConfig daemon_template;
  daemon_template.intrusion_tolerant = config_.hardening.sealed_links;
  daemon_template.mode = spines::ForwardingMode::kPriorityFlood;

  const std::uint32_t n = config_.prime.n();

  // Multi-site: each site is its own Spines routing area (site == area),
  // so LSUs stay on the site LAN and only bounded border summaries
  // cross the WAN links between the sites' border daemons.
  internal_ = std::make_unique<spines::Overlay>(sim_, keyring_, daemon_template);
  for (std::uint32_t i = 0; i < n; ++i) {
    internal_->add_node(internal_node(i), *replica_hosts_[i],
                        kInternalDaemonPort, 0, site_of_replica(i));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (site_of_replica(i) == site_of_replica(j)) {
        internal_->add_link(internal_node(i), internal_node(j));
      }
    }
  }
  for (const WanLink& wan : wan_links_) {
    internal_->add_link(internal_node(wan.site_a), internal_node(wan.site_b),
                        wan.iface_a, wan.iface_b);
  }
  internal_->build();

  daemon_template.mode = spines::ForwardingMode::kRouted;
  external_ = std::make_unique<spines::Overlay>(sim_, keyring_, daemon_template);
  for (std::uint32_t i = 0; i < n; ++i) {
    external_->add_node(external_node(i), *replica_hosts_[i],
                        kExternalDaemonPort, 1, site_of_replica(i));
  }
  // Field proxies, HMIs and the cycler live at the primary control
  // center (site 0), exactly as in the single-site layout.
  for (const auto& device : config_.scenario.devices) {
    external_->add_node(proxy_node(device.name), *proxy_hosts_[device.name],
                        kExternalDaemonPort, 0);
  }
  for (std::size_t j = 0; j < config_.hmi_count; ++j) {
    external_->add_node(hmi_node(j), *hmi_hosts_[j], kExternalDaemonPort, 0);
  }
  external_->add_node("extc", *cycler_host_, kExternalDaemonPort, 0);

  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (site_of_replica(i) == site_of_replica(j)) {
        external_->add_link(external_node(i), external_node(j));
      }
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    if (site_of_replica(i) != 0) continue;  // clients are on site 0's LAN
    for (const auto& device : config_.scenario.devices) {
      external_->add_link(external_node(i), proxy_node(device.name));
    }
    for (std::size_t j = 0; j < config_.hmi_count; ++j) {
      external_->add_link(external_node(i), hmi_node(j));
    }
    external_->add_link(external_node(i), "extc");
  }
  for (const WanLink& wan : wan_links_) {
    external_->add_link(external_node(wan.site_a), external_node(wan.site_b),
                        wan.iface_a, wan.iface_b);
  }
  external_->build();
}

void SpireDeployment::partition_site(std::uint32_t site, bool cut) {
  for (const WanLink& wan : wan_links_) {
    if (wan.site_a == site || wan.site_b == site) {
      wan.sw->set_chaos(cut ? 1.0 : 0.0, 0);
    }
  }
}

void SpireDeployment::build_field_devices() {
  for (const auto& device : config_.scenario.devices) {
    std::vector<plc::BreakerSpec> specs;
    for (const auto& name : device.breaker_names) {
      specs.push_back(plc::BreakerSpec{name, false, 40 * sim::kMillisecond});
    }
    if (device.protocol == FieldProtocol::kDnp3) {
      plcs_[device.name] = std::make_unique<plc::Rtu>(
          sim_, *plc_hosts_[device.name], device.name, std::move(specs),
          rng_.fork());
    } else {
      plcs_[device.name] = std::make_unique<plc::Plc>(
          sim_, *plc_hosts_[device.name], device.name, std::move(specs),
          rng_.fork());
    }
    // Field-side trace origin: a breaker moving in the plant starts the
    // PLC→HMI span the moment it happens, before any poll sees it.
    const std::string name = device.name;
    plcs_[device.name]->breakers().add_observer(
        [name](std::size_t index, bool, sim::Time) {
          if (auto* tracer = obs::Tracer::current()) {
            tracer->plc_change(name, index);
          }
        });
  }
}

void SpireDeployment::build_replicas() {
  const std::uint32_t n = config_.prime.n();

  MasterConfig master_template;
  master_template.scenario = config_.scenario;
  for (const auto& device : config_.scenario.devices) {
    master_template.device_proxy[device.name] = proxy_identity(device.name);
  }
  for (std::size_t j = 0; j < config_.hmi_count; ++j) {
    master_template.hmis.push_back(hmi_identity(j));
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    MasterConfig mc = master_template;
    mc.replica_id = i;
    auto output = [this, i](const std::string& client, const util::Bytes& data) {
      std::string node;
      for (const auto& device : config_.scenario.devices) {
        if (client == proxy_identity(device.name)) node = proxy_node(device.name);
      }
      for (std::size_t j = 0; j < config_.hmi_count && node.empty(); ++j) {
        if (client == hmi_identity(j)) node = hmi_node(j);
      }
      if (node.empty()) return;
      external_->daemon(external_node(i))
          .session_send(kReplicaToClient, node, kReplicaToClient, data,
                        spines::Priority::kHigh);
    };
    masters_.push_back(
        std::make_unique<ScadaMaster>(std::move(mc), keyring_, output));

    auto transport = std::make_unique<SpinesReplicaTransport>(
        internal_->daemon(internal_node(i)), n, i);
    replicas_.push_back(std::make_unique<prime::Replica>(
        sim_, i, config_.prime, keyring_, *masters_.back(),
        std::move(transport), rng_.fork()));
  }
}

void SpireDeployment::submit_to_replicas(spines::Daemon& via,
                                         const util::Bytes& envelope) {
  for (std::uint32_t i = 0; i < config_.prime.n(); ++i) {
    via.session_send(kClientToReplica, external_node(i), kClientToReplica,
                     envelope, spines::Priority::kHigh);
  }
}

void SpireDeployment::build_clients() {
  crypto::Verifier replica_verifier;
  for (std::uint32_t i = 0; i < config_.prime.n(); ++i) {
    replica_verifier.add_identity(prime::replica_identity(i),
                                  keyring_.identity_key(prime::replica_identity(i)));
  }

  for (const auto& device : config_.scenario.devices) {
    ProxyConfig pc;
    pc.identity = proxy_identity(device.name);
    pc.device = device.name;
    pc.breaker_count = device.breaker_names.size();
    pc.f = config_.f;
    pc.poll_interval = config_.proxy_poll_interval;

    net::Host* proxy_host = proxy_hosts_[device.name];
    const net::IpAddress plc_ip = plc_hosts_[device.name]->ip(0);
    const std::uint16_t device_port = device.protocol == FieldProtocol::kDnp3
                                          ? dnp3::kDnp3Port
                                          : modbus::kModbusPort;
    auto field_send = [proxy_host, plc_ip, device_port](const util::Bytes& b) {
      proxy_host->send_udp(plc_ip, device_port, kProxyModbusPort, b);
    };
    std::unique_ptr<FieldClient> field;
    if (device.protocol == FieldProtocol::kDnp3) {
      field = std::make_unique<Dnp3FieldClient>(
          sim_, device.name, device.breaker_names.size(), field_send);
    } else {
      field = std::make_unique<ModbusFieldClient>(
          sim_, device.name, device.breaker_names.size(), field_send);
    }
    const std::string node = proxy_node(device.name);
    auto submit = [this, node](const util::Bytes& envelope) {
      submit_to_replicas(external_->daemon(node), envelope);
    };
    proxies_[device.name] = std::make_unique<PlcProxy>(
        sim_, std::move(pc), keyring_, replica_verifier, submit,
        std::move(field));

    PlcProxy* proxy = proxies_[device.name].get();
    proxy_host->bind_udp(kProxyModbusPort, [proxy](const net::Datagram& d) {
      proxy->field().on_data(d.payload);
    });
  }

  for (std::size_t j = 0; j < config_.hmi_count; ++j) {
    HmiConfig hc;
    hc.identity = hmi_identity(j);
    hc.f = config_.f;
    const std::string node = hmi_node(j);
    auto submit = [this, node](const util::Bytes& envelope) {
      submit_to_replicas(external_->daemon(node), envelope);
    };
    hmis_.push_back(std::make_unique<Hmi>(sim_, std::move(hc), keyring_,
                                          replica_verifier, submit));
  }

  if (config_.cycler_interval > 0) {
    auto submit = [this](const util::Bytes& envelope) {
      submit_to_replicas(external_->daemon("extc"), envelope);
    };
    cycler_ = std::make_unique<AutoCycler>(sim_, config_.scenario, keyring_,
                                           submit, config_.cycler_interval);
  }
}

void SpireDeployment::harden_all() {
  const HardeningOptions& opts = config_.hardening;
  for (const auto& host : network_->hosts()) {
    if (opts.static_arp) {
      host->use_static_arp(true);
      host->set_answer_arp_for_any_local_ip(false);
    }
    host->os() = opts.hardened_os ? net::OsProfile::hardened_centos()
                                  : net::OsProfile::default_ubuntu();
    host->firewall().default_deny = opts.firewalls;
  }
  // Preload every same-subnet (ip -> mac) pair: the §III-B static
  // MAC/IP mapping. (Loaded regardless; only consulted as *exclusive*
  // truth when static_arp is on.)
  const auto& hosts = network_->hosts();
  for (const auto& a : hosts) {
    for (std::size_t ia = 0; ia < a->interface_count(); ++ia) {
      for (const auto& b : hosts) {
        if (a.get() == b.get()) continue;
        for (std::size_t ib = 0; ib < b->interface_count(); ++ib) {
          if (a->ip(ia).same_subnet(b->ip(ib), 24)) {
            a->add_arp_entry(b->ip(ib), b->mac(ib));
          }
        }
      }
    }
  }

  internal_->allow_link_traffic();
  external_->allow_link_traffic();

  // Field protocol over the proxy<->device cable (Modbus or DNP3).
  for (const auto& device : config_.scenario.devices) {
    net::Host* proxy_host = proxy_hosts_[device.name];
    net::Host* plc_host = plc_hosts_[device.name];
    const net::IpAddress proxy_ip = proxy_host->ip(1);
    const net::IpAddress plc_ip = plc_host->ip(0);
    const std::uint16_t device_port = device.protocol == FieldProtocol::kDnp3
                                          ? dnp3::kDnp3Port
                                          : modbus::kModbusPort;
    proxy_host->firewall().allow.push_back(net::FirewallRule{
        net::Direction::kOutbound, plc_ip, kProxyModbusPort, device_port});
    proxy_host->firewall().allow.push_back(net::FirewallRule{
        net::Direction::kInbound, plc_ip, kProxyModbusPort, device_port});
    plc_host->firewall().allow.push_back(net::FirewallRule{
        net::Direction::kInbound, proxy_ip, device_port, kProxyModbusPort});
    plc_host->firewall().allow.push_back(net::FirewallRule{
        net::Direction::kOutbound, proxy_ip, device_port, kProxyModbusPort});
  }
}

void SpireDeployment::start() {
  internal_->start_all();
  external_->start_all();

  const std::uint32_t n = config_.prime.n();
  for (std::uint32_t i = 0; i < n; ++i) {
    prime::Replica* replica = replicas_[i].get();
    internal_->daemon(internal_node(i))
        .open_session(kReplicaSession, [replica](const spines::DataBody& d) {
          replica->on_message(d.payload);
        });
    external_->daemon(external_node(i))
        .open_session(kClientToReplica, [replica](const spines::DataBody& d) {
          replica->on_message(d.payload);
        });
    replica->start();
  }

  for (const auto& device : config_.scenario.devices) {
    PlcProxy* proxy = proxies_[device.name].get();
    external_->daemon(proxy_node(device.name))
        .open_session(kReplicaToClient, [proxy](const spines::DataBody& d) {
          proxy->on_master_output(d.payload);
        });
    proxy->start();
  }

  for (std::size_t j = 0; j < config_.hmi_count; ++j) {
    Hmi* hmi = hmis_[j].get();
    external_->daemon(hmi_node(j))
        .open_session(kReplicaToClient, [hmi](const spines::DataBody& d) {
          hmi->on_master_output(d.payload);
        });
  }

  if (cycler_) {
    // Give overlays and replication time to come up before load.
    sim_.schedule_after(2 * sim::kSecond, [this] { cycler_->start(); });
  }
}

PlcProxy& SpireDeployment::proxy(const std::string& device) {
  const auto it = proxies_.find(device);
  if (it == proxies_.end()) throw std::out_of_range("no proxy for " + device);
  return *it->second;
}

plc::FieldDevice& SpireDeployment::plc(const std::string& device) {
  const auto it = plcs_.find(device);
  if (it == plcs_.end()) throw std::out_of_range("no plc for " + device);
  return *it->second;
}

void SpireDeployment::flip_breaker_at_plc(const std::string& device,
                                          std::size_t index, bool close) {
  plc(device).actuate_breaker_locally(index, close);
}

std::unique_ptr<prime::ProactiveRecovery> SpireDeployment::make_recovery(
    prime::RecoveryConfig recovery_config) {
  std::vector<prime::Replica*> list;
  for (const auto& r : replicas_) list.push_back(r.get());
  return std::make_unique<prime::ProactiveRecovery>(sim_, std::move(list),
                                                    recovery_config);
}

std::unique_ptr<sim::ChaosInjector> SpireDeployment::make_chaos() {
  sim::ChaosHooks hooks;
  hooks.set_link_quality = [this](double loss, sim::Time jitter) {
    internal_switch_->set_chaos(loss, jitter);
    external_switch_->set_chaos(loss, jitter);
  };
  hooks.set_partitioned = [this](std::uint32_t node, bool cut) {
    if (node >= n()) return;
    // Stopping the daemons severs replica `node` from both overlays;
    // its sessions (replica, proxies' paths through it) survive the
    // outage and resume when the daemons rejoin.
    spines::Daemon& internal = internal_->daemon(internal_node(node));
    spines::Daemon& external = external_->daemon(external_node(node));
    if (cut) {
      if (internal.running()) internal.stop();
      if (external.running()) external.stop();
    } else {
      if (!internal.running()) internal.start();
      if (!external.running()) external.start();
    }
  };
  hooks.crash = [this](std::uint32_t node) {
    if (node >= n()) return;
    if (replicas_[node]->running()) replicas_[node]->shutdown();
  };
  hooks.restart = [this](std::uint32_t node) {
    if (node >= n()) return;
    if (!replicas_[node]->running()) replicas_[node]->recover();
  };
  return std::make_unique<sim::ChaosInjector>(sim_, std::move(hooks));
}

}  // namespace spire::scada
