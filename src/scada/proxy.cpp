#include "scada/proxy.hpp"

#include "prime/messages.hpp"

namespace spire::scada {

PlcProxy::PlcProxy(sim::Simulator& sim, ProxyConfig config,
                   const crypto::Keyring& keyring,
                   crypto::Verifier replica_verifier,
                   ScadaClient::SubmitFn submit,
                   std::unique_ptr<FieldClient> field)
    : sim_(sim),
      config_(std::move(config)),
      log_("scada.proxy." + config_.device),
      replica_verifier_(std::move(replica_verifier)),
      client_(config_.identity, keyring, std::move(submit)),
      field_(std::move(field)),
      door_(config_.front_door),
      batcher_(sim, config_.batch,
               [this](std::vector<StatusReport>&& reports) {
                 send_batch(std::move(reports));
               }),
      metrics_("scada.proxy." + config_.device),
      batch_fill_(obs::MetricsRegistry::current().histogram(
          "scada.proxy." + config_.device + ".batch_fill")) {
  metrics_.counter("polls", &stats_.polls);
  metrics_.counter("poll_failures", &stats_.poll_failures);
  metrics_.counter("reports_sent", &stats_.reports_sent);
  metrics_.counter("batches_sent", &stats_.batches_sent);
  metrics_.counter("orders_received", &stats_.orders_received);
  metrics_.counter("orders_rejected_sig", &stats_.orders_rejected_sig);
  metrics_.counter("commands_forwarded", &stats_.commands_forwarded);
  door_.bind(metrics_);
}

void PlcProxy::start() {
  if (running_) return;
  running_ = true;
  // Stagger polls across devices (deterministically, by device name) so
  // seventeen proxies do not all hit the network in the same instant.
  const auto jitter = static_cast<sim::Time>(
      crypto::digest_prefix64(crypto::sha256(config_.device)) %
      config_.poll_interval);
  sim_.schedule_after(jitter, [this] { poll_tick(); });
}

void PlcProxy::poll_tick() {
  if (!running_) return;
  ++stats_.polls;

  field_->poll(
      [this](std::optional<FieldClient::FieldState> state) {
        if (!running_) return;
        if (!state) {
          ++stats_.poll_failures;
          return;
        }
        // A report carrying breaker movement is protection-critical:
        // the front door must never shed it before plain telemetry.
        const DeltaPriority priority =
            (state->breakers != last_breakers_) ? DeltaPriority::kCritical
                                                : DeltaPriority::kTelemetry;
        if (!door_.admit(priority, sim_.now(), batcher_.pending())) return;

        StatusReport report;
        report.device = config_.device;
        report.report_seq = next_report_seq_++;
        report.breakers = std::move(state->breakers);
        report.readings = std::move(state->readings);
        last_breakers_ = report.breakers;
        batcher_.enqueue(std::move(report));
      },
      config_.modbus_timeout);

  sim_.schedule_after(config_.poll_interval, [this] { poll_tick(); });
}

void PlcProxy::send_batch(std::vector<StatusReport>&& reports) {
  if (reports.empty()) return;
  batch_fill_->record(reports.size());
  if (reports.size() == 1) {
    // Lone report: keep the classic kStatusReport wire shape so a
    // zero-window proxy is byte-identical to the pre-batching one.
    StatusReport report = std::move(reports.front());
    ++stats_.reports_sent;
    const std::uint64_t seq =
        client_.send(ScadaMsgType::kStatusReport, report.encode());
    if (auto* tracer = obs::Tracer::current()) {
      // Links any pending field-side breaker changes to this
      // report's span (the PLC→HMI end-to-end leg).
      tracer->proxy_report(config_.device, client_.identity(), seq,
                           report.breakers);
    }
    return;
  }

  BatchReport batch;
  batch.reports = std::move(reports);
  if (auto* tracer = obs::Tracer::current()) {
    // Member spans must exist before client_submit fans out to them.
    const std::uint64_t seq = client_.peek_seq();
    for (const auto& report : batch.reports) {
      tracer->proxy_batch_delta(report.device, client_.identity(), seq,
                                report.breakers);
    }
  }
  stats_.reports_sent += batch.reports.size();
  ++stats_.batches_sent;
  client_.send(ScadaMsgType::kBatchReport, batch.encode());
}

void PlcProxy::on_master_output(std::span<const std::uint8_t> data) {
  const auto output = MasterOutput::decode(data);
  if (!output || output->type != ScadaMsgType::kCommandOrder) return;
  const auto order = CommandOrder::decode(output->body);
  if (!order) return;
  handle_order(*order);
}

void PlcProxy::handle_order(const CommandOrder& order) {
  ++stats_.orders_received;
  const std::string identity = prime::replica_identity(order.replica);
  if (!order.verify(replica_verifier_, identity)) {
    ++stats_.orders_rejected_sig;
    return;
  }
  if (order.command.device != config_.device) return;

  const auto key = std::make_pair(order.issuer, order.command.command_id);
  if (executed_orders_.count(key)) return;

  auto& votes = order_votes_[key];
  votes[order.replica] = order.command;

  // Count replicas that sent exactly this command content.
  std::uint32_t matching = 0;
  const util::Bytes canonical = order.command.encode();
  for (const auto& [replica, command] : votes) {
    if (command.encode() == canonical) ++matching;
  }
  if (matching < config_.f + 1) return;

  executed_orders_.insert(key);
  order_votes_.erase(key);
  ++stats_.commands_forwarded;
  log_.debug("forwarding command to field device: breaker ",
             order.command.breaker, " <- ",
             order.command.close ? "CLOSE" : "OPEN");
  field_->command(order.command.breaker, order.command.close);
}

}  // namespace spire::scada
