// Replicated SCADA master (the application on top of Prime).
//
// Each Prime replica hosts one ScadaMaster. Ordered client updates are
// either field-state reports (from PLC proxies) or supervisory
// commands (from HMIs / the automatic cycling tool). The master keeps
// the replicated topology state, emits a signed CommandOrder toward
// the owning proxy for every ordered command, and pushes a signed,
// versioned StateUpdate to every HMI after every applied update —
// outputs that the receivers only act on after f+1 replicas agree.
//
// Paper §III-A property: the master's state is rebuildable from the
// field devices. A master restarted with empty state converges to the
// true topology within one proxy poll cycle, because reports carry the
// ground truth.
#pragma once

#include <functional>
#include <string>

#include "crypto/keyring.hpp"
#include "prime/application.hpp"
#include "scada/topology.hpp"
#include "scada/wire.hpp"

namespace spire::scada {

struct MasterConfig {
  std::uint32_t replica_id = 0;
  ScenarioSpec scenario;
  /// device name -> proxy client identity that owns it.
  std::map<std::string, std::string> device_proxy;
  /// HMI client identities to push state updates to.
  std::vector<std::string> hmis;
};

class ScadaMaster : public prime::Application {
 public:
  /// `output` delivers replica-signed bytes to one client identity
  /// (wired to the external Spines network by the deployment).
  using OutputFn =
      std::function<void(const std::string& client, const util::Bytes& data)>;

  ScadaMaster(MasterConfig config, const crypto::Keyring& keyring,
              OutputFn output);

  // prime::Application
  void apply(const prime::ClientUpdate& update,
             const prime::ExecutionInfo& info) override;
  [[nodiscard]] util::Bytes snapshot() const override;
  void restore(std::span<const std::uint8_t> blob) override;
  void on_state_transfer() override;

  [[nodiscard]] const TopologyState& state() const { return state_; }
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] std::uint64_t commands_ordered() const {
    return commands_ordered_;
  }
  [[nodiscard]] std::uint64_t reports_applied() const {
    return reports_applied_;
  }

 private:
  void push_state_to_hmis();

  MasterConfig config_;
  crypto::Signer signer_;
  OutputFn output_;
  TopologyState state_;
  std::uint64_t version_ = 0;
  std::uint64_t commands_ordered_ = 0;
  std::uint64_t reports_applied_ = 0;
  // Deterministic HMI push throttle (identical decisions at every
  // replica because state and version are identical): push when the
  // rendered state changes, and at least every kPushEvery versions.
  static constexpr std::uint64_t kPushEvery = 8;
  crypto::Digest last_pushed_digest_{};
  std::uint64_t last_pushed_version_ = 0;
};

}  // namespace spire::scada
