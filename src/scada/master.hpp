// Replicated SCADA master (the application on top of Prime).
//
// Each Prime replica hosts one ScadaMaster. Ordered client updates are
// field-state reports (single or batched, from PLC/fleet proxies),
// supervisory commands (from HMIs / the automatic cycling tool), or
// HMI resync requests. The master keeps the replicated topology state,
// emits a signed CommandOrder toward the owning proxy for every
// ordered command, and publishes signed, versioned StateUpdates to the
// HMIs — outputs that the receivers only act on after f+1 replicas
// agree.
//
// Publication is delta-first: after the initial full snapshot, a
// publication serializes only the devices whose shard changed-bits are
// set since the previous publication (TopologyState::serialize_changes)
// — at fleet scale this is KBs instead of MBs per push. Because every
// replica applies the same ordered updates to the same sharded image,
// the delta bytes are byte-identical across replicas and the HMIs'
// f+1 output voting works on deltas exactly as it did on full states.
// The publish decision itself is O(1): a visible-change flag
// accumulated from apply_report return values replaces the old
// O(devices) display-digest comparison.
//
// Paper §III-A property: the master's state is rebuildable from the
// field devices. A master restarted with empty state converges to the
// true topology within one proxy poll cycle, because reports carry the
// ground truth.
#pragma once

#include <functional>
#include <string>

#include "crypto/keyring.hpp"
#include "prime/application.hpp"
#include "scada/topology.hpp"
#include "scada/wire.hpp"

namespace spire::scada {

struct MasterConfig {
  std::uint32_t replica_id = 0;
  ScenarioSpec scenario;
  /// device name -> proxy client identity that owns it.
  std::map<std::string, std::string> device_proxy;
  /// HMI client identities to push state updates to.
  std::vector<std::string> hmis;
  /// Publish at most once per this many versions (1 = every eligible
  /// version; larger values let fleet deployments trade HMI freshness
  /// for fewer signatures).
  std::uint64_t publish_min_versions = 1;
};

class ScadaMaster : public prime::Application {
 public:
  /// `output` delivers replica-signed bytes to one client identity
  /// (wired to the external Spines network by the deployment).
  using OutputFn =
      std::function<void(const std::string& client, const util::Bytes& data)>;

  ScadaMaster(MasterConfig config, const crypto::Keyring& keyring,
              OutputFn output);

  // prime::Application
  void apply(const prime::ClientUpdate& update,
             const prime::ExecutionInfo& info) override;
  [[nodiscard]] util::Bytes snapshot() const override;
  void restore(std::span<const std::uint8_t> blob) override;
  void on_state_transfer() override;

  [[nodiscard]] const TopologyState& state() const { return state_; }
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] std::uint64_t commands_ordered() const {
    return commands_ordered_;
  }
  /// Counts constituent device reports: a batch of 40 deltas counts 40.
  [[nodiscard]] std::uint64_t reports_applied() const {
    return reports_applied_;
  }
  [[nodiscard]] std::uint64_t batches_applied() const {
    return batches_applied_;
  }
  [[nodiscard]] std::uint64_t deltas_published() const {
    return deltas_published_;
  }
  [[nodiscard]] std::uint64_t fulls_published() const {
    return fulls_published_;
  }
  [[nodiscard]] std::uint64_t resyncs_served() const {
    return resyncs_served_;
  }

 private:
  void push_state_to_hmis();
  void send_full_to(const std::string& client);

  MasterConfig config_;
  crypto::Signer signer_;
  OutputFn output_;
  TopologyState state_;
  std::uint64_t version_ = 0;
  std::uint64_t commands_ordered_ = 0;
  std::uint64_t reports_applied_ = 0;
  std::uint64_t batches_applied_ = 0;
  std::uint64_t deltas_published_ = 0;
  std::uint64_t fulls_published_ = 0;
  std::uint64_t resyncs_served_ = 0;
  // Deterministic HMI push throttle (identical decisions at every
  // replica because state and version are identical): push when an
  // operator-visible field changed, and at least every kPushEvery
  // versions as a heartbeat.
  static constexpr std::uint64_t kPushEvery = 8;
  bool visible_since_push_ = false;
  bool full_next_push_ = true;  ///< first publication is a full snapshot
  bool published_this_update_ = false;
  std::uint64_t last_pushed_version_ = 0;
};

}  // namespace spire::scada
