// Fleet proxy: one front door for thousands of field devices.
//
// The classic PlcProxy owns exactly one PLC over a direct cable — the
// right trust boundary for a substation, but one Prime client identity
// and one ordering round per device report does not scale to a
// fleet-wide deployment. The FleetProxy fronts many emulated
// PLCs/RTUs behind a single client identity: device deltas are pushed
// in (rather than polled), pass the same admission front door
// (token-bucket rate limit, shed watermark, hard queue bound with
// priority-aware shedding), and coalesce in the delta batcher so one
// signed ClientUpdate carries every device change that arrived inside
// the batch window. Supervisory commands still flow per device: the
// proxy collects replica-signed CommandOrders, votes f+1, and hands
// the command to the device's registered callback.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/keyring.hpp"
#include "obs/metrics.hpp"
#include "scada/client.hpp"
#include "scada/front_door.hpp"
#include "scada/wire.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace spire::scada {

struct FleetProxyConfig {
  std::string identity;  ///< client identity, e.g. "client/proxy-fleet0"
  std::uint32_t f = 1;   ///< orders need f+1 matching replicas
  FrontDoorConfig front_door;
  BatcherConfig batch;
};

struct FleetProxyStats {
  std::uint64_t deltas_offered = 0;  ///< ingest() calls (pre-admission)
  std::uint64_t reports_sent = 0;    ///< device reports that left the proxy
  std::uint64_t batches_sent = 0;    ///< kBatchReport updates submitted
  std::uint64_t orders_received = 0;
  std::uint64_t orders_rejected_sig = 0;
  std::uint64_t commands_forwarded = 0;
};

class FleetProxy {
 public:
  /// Called when f+1 replicas agree on a supervisory command for a
  /// registered device.
  using CommandFn = std::function<void(std::uint16_t breaker, bool close)>;

  FleetProxy(sim::Simulator& sim, FleetProxyConfig config,
             const crypto::Keyring& keyring, crypto::Verifier replica_verifier,
             ScadaClient::SubmitFn submit);

  /// Registers a fronted device; its per-device report sequence starts
  /// at 1. `on_command` may be empty for report-only devices.
  void register_device(const std::string& device, CommandFn on_command = {});

  /// Offers one device delta to the front door. Returns true if it was
  /// admitted into the batcher, false if it was shed.
  bool ingest(const std::string& device, std::vector<bool> breakers,
              std::vector<std::uint16_t> readings,
              DeltaPriority priority = DeltaPriority::kTelemetry);

  /// Flushes anything still coalescing; nothing admitted is dropped.
  void stop() { batcher_.stop(); }

  /// Feed for replica->proxy traffic from the external network.
  void on_master_output(std::span<const std::uint8_t> data);

  [[nodiscard]] const FleetProxyStats& stats() const { return stats_; }
  [[nodiscard]] const FrontDoorStats& front_door_stats() const {
    return door_.stats();
  }
  [[nodiscard]] const std::string& identity() const {
    return client_.identity();
  }
  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

 private:
  struct DeviceEntry {
    std::uint64_t next_seq = 1;
    CommandFn on_command;
  };

  void send_batch(std::vector<StatusReport>&& reports);
  void handle_order(const CommandOrder& order);

  sim::Simulator& sim_;
  FleetProxyConfig config_;
  util::Logger log_;
  crypto::Verifier replica_verifier_;
  ScadaClient client_;
  FrontDoor door_;
  DeltaBatcher batcher_;
  std::unordered_map<std::string, DeviceEntry> devices_;

  /// (issuer, command_id) -> replicas that sent a matching order.
  std::map<std::pair<std::string, std::uint64_t>,
           std::map<std::uint32_t, SupervisoryCommand>>
      order_votes_;
  std::set<std::pair<std::string, std::uint64_t>> executed_orders_;
  FleetProxyStats stats_;
  obs::Binder metrics_;
  obs::Histogram* batch_fill_;  ///< reports per flushed batch
};

}  // namespace spire::scada
