#include "scada/fleet_proxy.hpp"

#include "prime/messages.hpp"

namespace spire::scada {

FleetProxy::FleetProxy(sim::Simulator& sim, FleetProxyConfig config,
                       const crypto::Keyring& keyring,
                       crypto::Verifier replica_verifier,
                       ScadaClient::SubmitFn submit)
    : sim_(sim),
      config_(std::move(config)),
      log_("scada.fleet." + config_.identity),
      replica_verifier_(std::move(replica_verifier)),
      client_(config_.identity, keyring, std::move(submit)),
      door_(config_.front_door),
      batcher_(sim, config_.batch,
               [this](std::vector<StatusReport>&& reports) {
                 send_batch(std::move(reports));
               }),
      metrics_("scada.fleet." + config_.identity),
      batch_fill_(obs::MetricsRegistry::current().histogram(
          "scada.fleet." + config_.identity + ".batch_fill")) {
  metrics_.counter("deltas_offered", &stats_.deltas_offered);
  metrics_.counter("reports_sent", &stats_.reports_sent);
  metrics_.counter("batches_sent", &stats_.batches_sent);
  metrics_.counter("orders_received", &stats_.orders_received);
  metrics_.counter("orders_rejected_sig", &stats_.orders_rejected_sig);
  metrics_.counter("commands_forwarded", &stats_.commands_forwarded);
  door_.bind(metrics_);
}

void FleetProxy::register_device(const std::string& device,
                                 CommandFn on_command) {
  auto& entry = devices_[device];
  if (on_command) entry.on_command = std::move(on_command);
}

bool FleetProxy::ingest(const std::string& device, std::vector<bool> breakers,
                        std::vector<std::uint16_t> readings,
                        DeltaPriority priority) {
  ++stats_.deltas_offered;
  auto it = devices_.find(device);
  if (it == devices_.end()) return false;
  if (!door_.admit(priority, sim_.now(), batcher_.pending())) return false;

  StatusReport report;
  report.device = device;
  report.report_seq = it->second.next_seq++;
  report.breakers = std::move(breakers);
  report.readings = std::move(readings);
  batcher_.enqueue(std::move(report));
  return true;
}

void FleetProxy::send_batch(std::vector<StatusReport>&& reports) {
  if (reports.empty()) return;
  batch_fill_->record(reports.size());
  if (reports.size() == 1) {
    StatusReport report = std::move(reports.front());
    ++stats_.reports_sent;
    const std::uint64_t seq =
        client_.send(ScadaMsgType::kStatusReport, report.encode());
    if (auto* tracer = obs::Tracer::current()) {
      tracer->proxy_report(report.device, client_.identity(), seq,
                           report.breakers);
    }
    return;
  }

  BatchReport batch;
  batch.reports = std::move(reports);
  if (auto* tracer = obs::Tracer::current()) {
    // Member spans must exist before client_submit fans out to them.
    const std::uint64_t seq = client_.peek_seq();
    for (const auto& report : batch.reports) {
      tracer->proxy_batch_delta(report.device, client_.identity(), seq,
                                report.breakers);
    }
  }
  stats_.reports_sent += batch.reports.size();
  ++stats_.batches_sent;
  client_.send(ScadaMsgType::kBatchReport, batch.encode());
}

void FleetProxy::on_master_output(std::span<const std::uint8_t> data) {
  const auto output = MasterOutput::decode(data);
  if (!output || output->type != ScadaMsgType::kCommandOrder) return;
  const auto order = CommandOrder::decode(output->body);
  if (!order) return;
  handle_order(*order);
}

void FleetProxy::handle_order(const CommandOrder& order) {
  ++stats_.orders_received;
  const std::string identity = prime::replica_identity(order.replica);
  if (!order.verify(replica_verifier_, identity)) {
    ++stats_.orders_rejected_sig;
    return;
  }
  const auto device = devices_.find(order.command.device);
  if (device == devices_.end()) return;

  const auto key = std::make_pair(order.issuer, order.command.command_id);
  if (executed_orders_.count(key)) return;

  auto& votes = order_votes_[key];
  votes[order.replica] = order.command;

  std::uint32_t matching = 0;
  const util::Bytes canonical = order.command.encode();
  for (const auto& [replica, command] : votes) {
    if (command.encode() == canonical) ++matching;
  }
  if (matching < config_.f + 1) return;

  executed_orders_.insert(key);
  order_votes_.erase(key);
  ++stats_.commands_forwarded;
  if (device->second.on_command) {
    device->second.on_command(order.command.breaker, order.command.close);
  }
}

}  // namespace spire::scada
