#include "scada/field_client.hpp"

namespace spire::scada {

ModbusFieldClient::ModbusFieldClient(sim::Simulator& sim,
                                     const std::string& name,
                                     std::size_t breaker_count,
                                     modbus::Client::SendFn send)
    : breaker_count_(breaker_count), client_(sim, name, std::move(send)) {}

void ModbusFieldClient::poll(PollHandler handler, sim::Time timeout) {
  modbus::ReadBitsRequest bits_req;
  bits_req.fc = modbus::FunctionCode::kReadDiscreteInputs;
  bits_req.start = 0;
  bits_req.quantity = static_cast<std::uint16_t>(breaker_count_);

  auto shared_handler = std::make_shared<PollHandler>(std::move(handler));
  client_.request(
      bits_req,
      [this, shared_handler, timeout](std::optional<modbus::Response> bits_resp) {
        const auto* bits =
            bits_resp ? std::get_if<modbus::ReadBitsResponse>(&*bits_resp)
                      : nullptr;
        if (!bits) {
          (*shared_handler)(std::nullopt);
          return;
        }
        std::vector<bool> breakers(
            bits->values.begin(),
            bits->values.begin() + static_cast<std::ptrdiff_t>(std::min(
                                       bits->values.size(), breaker_count_)));

        modbus::ReadRegistersRequest reg_req;
        reg_req.fc = modbus::FunctionCode::kReadInputRegisters;
        reg_req.start = 0;
        reg_req.quantity = static_cast<std::uint16_t>(breaker_count_);
        client_.request(
            reg_req,
            [shared_handler, breakers](std::optional<modbus::Response> reg_resp) {
              const auto* regs =
                  reg_resp
                      ? std::get_if<modbus::ReadRegistersResponse>(&*reg_resp)
                      : nullptr;
              if (!regs) {
                (*shared_handler)(std::nullopt);
                return;
              }
              FieldState state;
              state.breakers = breakers;
              state.readings = regs->values;
              (*shared_handler)(std::move(state));
            },
            timeout);
      },
      timeout);
}

void ModbusFieldClient::command(std::uint16_t breaker, bool close) {
  modbus::WriteSingleCoilRequest write;
  write.address = breaker;
  write.value = close;
  client_.request(write, [](std::optional<modbus::Response>) {});
}

void ModbusFieldClient::on_data(std::span<const std::uint8_t> data) {
  client_.on_data(data);
}

Dnp3FieldClient::Dnp3FieldClient(sim::Simulator& sim, const std::string& name,
                                 std::size_t breaker_count,
                                 dnp3::Master::SendFn send,
                                 std::uint16_t master_address,
                                 std::uint16_t outstation_address)
    : breaker_count_(breaker_count),
      master_(sim, name, master_address, outstation_address, std::move(send)) {}

void Dnp3FieldClient::poll(PollHandler handler, sim::Time timeout) {
  master_.integrity_poll(
      [this, handler = std::move(handler)](std::optional<dnp3::AppResponse> resp) {
        if (!resp || resp->binary_inputs.size() < breaker_count_) {
          handler(std::nullopt);
          return;
        }
        FieldState state;
        for (std::size_t i = 0; i < breaker_count_; ++i) {
          state.breakers.push_back(resp->binary_inputs[i].state);
        }
        for (const auto& analog : resp->analog_inputs) {
          state.readings.push_back(static_cast<std::uint16_t>(analog.value));
        }
        handler(std::move(state));
      },
      timeout);
}

void Dnp3FieldClient::command(std::uint16_t breaker, bool close) {
  master_.direct_operate(breaker, close,
                         [](std::optional<dnp3::AppResponse>) {});
}

void Dnp3FieldClient::on_data(std::span<const std::uint8_t> data) {
  master_.on_data(data);
}

}  // namespace spire::scada
