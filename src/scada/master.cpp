#include "scada/master.hpp"

#include "obs/trace.hpp"
#include "prime/messages.hpp"

namespace spire::scada {

ScadaMaster::ScadaMaster(MasterConfig config, const crypto::Keyring& keyring,
                         OutputFn output)
    : config_(std::move(config)),
      signer_(prime::replica_identity(config_.replica_id),
              keyring.identity_key(prime::replica_identity(config_.replica_id))),
      output_(std::move(output)),
      state_(config_.scenario) {}

void ScadaMaster::apply(const prime::ClientUpdate& update,
                        const prime::ExecutionInfo& info) {
  (void)info;
  const auto payload = ClientPayload::decode(update.payload);
  if (!payload) return;
  published_this_update_ = false;

  switch (payload->type) {
    case ScadaMsgType::kStatusReport: {
      const auto report = StatusReport::decode(payload->body);
      if (!report) return;
      ++version_;
      ++reports_applied_;
      visible_since_push_ |=
          state_.apply_report(report->device, report->report_seq,
                              report->breakers, report->readings);
      push_state_to_hmis();
      break;
    }
    case ScadaMsgType::kBatchReport: {
      const auto batch = BatchReport::decode(payload->body);
      if (!batch || batch->reports.empty()) return;
      ++version_;  // one ordered update, one version, many device deltas
      ++batches_applied_;
      for (const auto& report : batch->reports) {
        ++reports_applied_;
        visible_since_push_ |=
            state_.apply_report(report.device, report.report_seq,
                                report.breakers, report.readings);
      }
      push_state_to_hmis();
      break;
    }
    case ScadaMsgType::kSupervisoryCommand: {
      const auto command = SupervisoryCommand::decode(payload->body);
      if (!command) return;
      ++version_;
      ++commands_ordered_;
      const auto proxy = config_.device_proxy.find(command->device);
      if (proxy != config_.device_proxy.end()) {
        CommandOrder order;
        order.replica = config_.replica_id;
        order.issuer = update.client;
        order.command = *command;
        order.sign(signer_);
        MasterOutput out;
        out.type = ScadaMsgType::kCommandOrder;
        out.body = order.encode();
        output_(proxy->second, out.encode());
      }
      // The command takes effect in the topology only when the field
      // device reports the new breaker position (ground truth).
      push_state_to_hmis();
      break;
    }
    case ScadaMsgType::kResyncRequest: {
      const auto request = ResyncRequest::decode(payload->body);
      if (!request) return;
      // Read-only side channel: answer the requester with a full
      // snapshot at the current version. No version bump and no
      // publication bookkeeping — the regular delta stream to the
      // other HMIs is unaffected.
      ++resyncs_served_;
      send_full_to(update.client);
      break;
    }
    default:
      break;
  }
  if (published_this_update_) {
    // This update's version was pushed to the HMIs (not throttled):
    // link the state version to the update's trace span.
    if (auto* tracer = obs::Tracer::current()) {
      tracer->master_publish(version_, update.client, update.client_seq);
    }
  }
}

void ScadaMaster::push_state_to_hmis() {
  if (config_.hmis.empty()) return;
  // A master that has never published is always due: HMIs need the
  // initial full snapshot before deltas mean anything.
  const bool due = visible_since_push_ || full_next_push_ ||
                   version_ >= last_pushed_version_ + kPushEvery;
  if (!due) return;  // nothing an operator could see changed
  if (version_ < last_pushed_version_ + config_.publish_min_versions) return;

  StateUpdate su;
  su.replica = config_.replica_id;
  su.version = version_;
  if (full_next_push_) {
    su.kind = StateUpdate::kFull;
    su.state = state_.serialize();
    full_next_push_ = false;
    ++fulls_published_;
  } else {
    su.kind = StateUpdate::kDelta;
    su.base_version = last_pushed_version_;
    su.state = state_.serialize_changes();
    ++deltas_published_;
  }
  // Either payload carries every accumulated change; start a fresh
  // delta window.
  state_.clear_changes();
  visible_since_push_ = false;
  last_pushed_version_ = version_;
  published_this_update_ = true;

  su.sign(signer_);
  MasterOutput out;
  out.type = ScadaMsgType::kStateUpdate;
  out.body = su.encode();
  const util::Bytes bytes = out.encode();
  for (const auto& hmi : config_.hmis) output_(hmi, bytes);
}

void ScadaMaster::send_full_to(const std::string& client) {
  StateUpdate su;
  su.replica = config_.replica_id;
  su.version = version_;
  su.kind = StateUpdate::kFull;
  su.state = state_.serialize();
  su.sign(signer_);
  MasterOutput out;
  out.type = ScadaMsgType::kStateUpdate;
  out.body = su.encode();
  output_(client, out.encode());
}

util::Bytes ScadaMaster::snapshot() const {
  util::ByteWriter w;
  w.u64(version_);
  w.blob(state_.serialize());
  // Publication bookkeeping rides along so a recovered replica resumes
  // the exact delta stream its peers are producing — byte-identical
  // StateUpdates are what keep its output-vote useful.
  w.u64(last_pushed_version_);
  w.boolean(visible_since_push_);
  w.boolean(full_next_push_);
  const auto& masks = state_.changed_masks();
  w.u32(static_cast<std::uint32_t>(masks.size()));
  for (const auto mask : masks) w.u64(mask);
  return w.take();
}

void ScadaMaster::restore(std::span<const std::uint8_t> blob) {
  util::ByteReader r(blob);
  version_ = r.u64();
  const util::Bytes state_bytes = r.blob();
  state_ = TopologyState::deserialize(state_bytes);
  last_pushed_version_ = r.u64();
  visible_since_push_ = r.boolean();
  full_next_push_ = r.boolean();
  const std::uint32_t mask_count = r.u32();
  if (mask_count != state_.shard_count()) {
    throw util::SerializationError("snapshot mask count mismatch");
  }
  std::vector<std::uint64_t> masks(mask_count);
  for (auto& mask : masks) mask = r.u64();
  state_.set_changed_masks(masks);
  r.expect_done();
}

void ScadaMaster::on_state_transfer() {
  // Re-announce the freshly installed state so a restarted HMI
  // converges quickly. Side channel: publication bookkeeping and the
  // delta window are untouched, keeping this replica's regular stream
  // byte-identical to its peers'.
  for (const auto& hmi : config_.hmis) send_full_to(hmi);
}

}  // namespace spire::scada
