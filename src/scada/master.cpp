#include "scada/master.hpp"

#include "obs/trace.hpp"
#include "prime/messages.hpp"

namespace spire::scada {

ScadaMaster::ScadaMaster(MasterConfig config, const crypto::Keyring& keyring,
                         OutputFn output)
    : config_(std::move(config)),
      signer_(prime::replica_identity(config_.replica_id),
              keyring.identity_key(prime::replica_identity(config_.replica_id))),
      output_(std::move(output)),
      state_(config_.scenario) {}

void ScadaMaster::apply(const prime::ClientUpdate& update,
                        const prime::ExecutionInfo& info) {
  (void)info;
  const auto payload = ClientPayload::decode(update.payload);
  if (!payload) return;

  switch (payload->type) {
    case ScadaMsgType::kStatusReport: {
      const auto report = StatusReport::decode(payload->body);
      if (!report) return;
      ++version_;
      ++reports_applied_;
      state_.apply_report(report->device, report->report_seq, report->breakers,
                          report->readings);
      push_state_to_hmis();
      break;
    }
    case ScadaMsgType::kSupervisoryCommand: {
      const auto command = SupervisoryCommand::decode(payload->body);
      if (!command) return;
      ++version_;
      ++commands_ordered_;
      const auto proxy = config_.device_proxy.find(command->device);
      if (proxy != config_.device_proxy.end()) {
        CommandOrder order;
        order.replica = config_.replica_id;
        order.issuer = update.client;
        order.command = *command;
        order.sign(signer_);
        MasterOutput out;
        out.type = ScadaMsgType::kCommandOrder;
        out.body = order.encode();
        output_(proxy->second, out.encode());
      }
      // The command takes effect in the topology only when the field
      // device reports the new breaker position (ground truth).
      push_state_to_hmis();
      break;
    }
    default:
      break;
  }
  if (last_pushed_version_ == version_) {
    // This update's version was pushed to the HMIs (not throttled):
    // link the state version to the update's trace span.
    if (auto* tracer = obs::Tracer::current()) {
      tracer->master_publish(version_, update.client, update.client_seq);
    }
  }
}

void ScadaMaster::push_state_to_hmis() {
  if (config_.hmis.empty()) return;
  const crypto::Digest digest = state_.display_digest();
  if (digest == last_pushed_digest_ &&
      version_ < last_pushed_version_ + kPushEvery) {
    return;  // nothing an operator could see changed; skip this version
  }
  last_pushed_digest_ = digest;
  last_pushed_version_ = version_;
  StateUpdate su;
  su.replica = config_.replica_id;
  su.version = version_;
  su.state = state_.serialize();
  su.sign(signer_);
  MasterOutput out;
  out.type = ScadaMsgType::kStateUpdate;
  out.body = su.encode();
  const util::Bytes bytes = out.encode();
  for (const auto& hmi : config_.hmis) output_(hmi, bytes);
}

util::Bytes ScadaMaster::snapshot() const {
  util::ByteWriter w;
  w.u64(version_);
  w.blob(state_.serialize());
  return w.take();
}

void ScadaMaster::restore(std::span<const std::uint8_t> blob) {
  util::ByteReader r(blob);
  version_ = r.u64();
  const util::Bytes state_bytes = r.blob();
  r.expect_done();
  state_ = TopologyState::deserialize(state_bytes);
  last_pushed_digest_ = crypto::Digest{};
  last_pushed_version_ = 0;
}

void ScadaMaster::on_state_transfer() {
  // Re-announce the freshly installed state so HMIs converge quickly.
  push_state_to_hmis();
}

}  // namespace spire::scada
