// Spire deployment builder: constructs the full Fig. 2 architecture on
// the emulated network — n = 3f+2k+1 replica hosts dual-homed on an
// isolated internal network (replication traffic) and an external
// network (proxies, HMIs, update tool), Spines overlays on both, one
// PLC per scenario device behind its proxy on a direct cable, and all
// §III-B hardening when `hardened` is set:
//   * per-host default-deny firewalls with exact (ip, port) allows,
//   * static ARP tables and no cross-NIC ARP answering,
//   * static MAC↔switch-port bindings,
//   * intrusion-tolerant (sealed) Spines links,
//   * hardened minimal-OS profiles.
// With `hardened` false the same system runs "open" — the ablation the
// red-team bench uses to show which defense stops which attack.
#pragma once

#include <memory>

#include "net/network.hpp"
#include "plc/plc.hpp"
#include "plc/rtu.hpp"
#include "prime/recovery.hpp"
#include "prime/replica.hpp"
#include "scada/cycler.hpp"
#include "scada/hmi.hpp"
#include "scada/master.hpp"
#include "scada/proxy.hpp"
#include "sim/chaos.hpp"
#include "spines/overlay.hpp"

namespace spire::scada {

/// The §III-B hardening measures, individually toggleable so the
/// ablation bench can show which defense stops which attack.
struct HardeningOptions {
  bool firewalls = true;           ///< default-deny + exact allows
  bool static_arp = true;          ///< static MAC<->IP, no cross-NIC answers
  bool static_switch_ports = true; ///< static MAC<->port bindings
  bool sealed_links = true;        ///< Spines intrusion-tolerant mode
  bool hardened_os = true;         ///< latest minimal-server profile

  static HardeningOptions all_on() { return {}; }
  static HardeningOptions all_off() {
    return {false, false, false, false, false};
  }
};

struct DeploymentConfig {
  std::uint32_t f = 1;
  std::uint32_t k = 0;  ///< 0: red-team config (n=4); 1: plant config (n=6)
  HardeningOptions hardening;  ///< defaults to everything on
  ScenarioSpec scenario = ScenarioSpec::red_team();
  std::size_t hmi_count = 1;
  sim::Time proxy_poll_interval = 200 * sim::kMillisecond;
  sim::Time cycler_interval = 1 * sim::kSecond;  ///< 0 disables the cycler
  prime::PrimeConfig prime;  ///< f, k and client list are filled in
  std::uint64_t seed = 20190101;
  std::string keyring_seed = "spire-deployment";
};

/// Ports used inside the deployment.
constexpr std::uint16_t kInternalDaemonPort = 8100;
constexpr std::uint16_t kExternalDaemonPort = 8200;
constexpr spines::SessionPort kReplicaSession = 9000;   ///< internal overlay
constexpr spines::SessionPort kClientToReplica = 9001;  ///< external overlay
constexpr spines::SessionPort kReplicaToClient = 9002;  ///< external overlay
constexpr std::uint16_t kProxyModbusPort = 1502;

class SpireDeployment {
 public:
  SpireDeployment(sim::Simulator& sim, DeploymentConfig config);
  ~SpireDeployment();

  SpireDeployment(const SpireDeployment&) = delete;
  SpireDeployment& operator=(const SpireDeployment&) = delete;

  /// Starts overlays, replicas, PLumbing. Give the system a warmup of
  /// ~1 simulated second before measuring.
  void start();

  [[nodiscard]] std::uint32_t n() const { return config_.prime.n(); }
  [[nodiscard]] prime::Replica& replica(std::size_t i) { return *replicas_[i]; }
  [[nodiscard]] ScadaMaster& master(std::size_t i) { return *masters_[i]; }
  [[nodiscard]] Hmi& hmi(std::size_t j) { return *hmis_[j]; }
  [[nodiscard]] PlcProxy& proxy(const std::string& device);
  /// Ground-truth access to a field device (Modbus PLC or DNP3 RTU).
  [[nodiscard]] plc::FieldDevice& plc(const std::string& device);
  [[nodiscard]] AutoCycler* cycler() { return cycler_.get(); }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] spines::Overlay& internal_overlay() { return *internal_; }
  [[nodiscard]] spines::Overlay& external_overlay() { return *external_; }
  [[nodiscard]] const crypto::Keyring& keyring() const { return keyring_; }
  [[nodiscard]] const DeploymentConfig& config() const { return config_; }
  [[nodiscard]] net::Switch& external_switch() { return *external_switch_; }
  [[nodiscard]] net::Switch& internal_switch() { return *internal_switch_; }
  [[nodiscard]] net::Host& replica_host(std::size_t i) {
    return *replica_hosts_[i];
  }

  /// Actuates a breaker locally at the field device (the plant
  /// measurement device of §V), bypassing SCADA entirely.
  void flip_breaker_at_plc(const std::string& device, std::size_t index,
                           bool close);

  /// Builds a proactive-recovery scheduler over all replicas.
  std::unique_ptr<prime::ProactiveRecovery> make_recovery(
      prime::RecoveryConfig recovery_config);

  /// Builds a fault injector wired to the deployment's fault surfaces:
  /// link degradation maps to chaos loss/jitter on both switches,
  /// partitioning replica i stops its internal+external Spines daemons
  /// (sessions survive; the overlay reroutes around it), crash/restart
  /// maps to replica shutdown()/recover(). Script or randomize the
  /// schedule on the returned injector, then arm() it.
  std::unique_ptr<sim::ChaosInjector> make_chaos();

  /// Identities used by the deployment.
  [[nodiscard]] static std::string proxy_identity(const std::string& device) {
    return "client/proxy-" + device;
  }
  [[nodiscard]] static std::string hmi_identity(std::size_t j) {
    return "client/hmi-" + std::to_string(j);
  }

 private:
  class SpinesReplicaTransport;

  void build_network();
  void build_overlays();
  void build_field_devices();
  void build_replicas();
  void build_clients();
  void harden_all();
  void submit_to_replicas(spines::Daemon& via, const util::Bytes& envelope);

  sim::Simulator& sim_;
  DeploymentConfig config_;
  crypto::Keyring keyring_;
  sim::Rng rng_;

  std::unique_ptr<net::Network> network_;
  net::Switch* internal_switch_ = nullptr;
  net::Switch* external_switch_ = nullptr;
  std::vector<net::Host*> replica_hosts_;
  std::map<std::string, net::Host*> proxy_hosts_;   ///< by device
  std::map<std::string, net::Host*> plc_hosts_;     ///< by device
  std::vector<net::Host*> hmi_hosts_;
  net::Host* cycler_host_ = nullptr;

  std::unique_ptr<spines::Overlay> internal_;
  std::unique_ptr<spines::Overlay> external_;

  std::map<std::string, std::unique_ptr<plc::FieldDevice>> plcs_;
  std::map<std::string, std::unique_ptr<PlcProxy>> proxies_;
  std::vector<std::unique_ptr<ScadaMaster>> masters_;
  std::vector<std::unique_ptr<prime::Replica>> replicas_;
  std::vector<std::unique_ptr<Hmi>> hmis_;
  std::unique_ptr<AutoCycler> cycler_;
};

}  // namespace spire::scada
