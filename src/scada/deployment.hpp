// Spire deployment builder: constructs the full Fig. 2 architecture on
// the emulated network — n = 3f+2k+1 replica hosts dual-homed on an
// isolated internal network (replication traffic) and an external
// network (proxies, HMIs, update tool), Spines overlays on both, one
// PLC per scenario device behind its proxy on a direct cable, and all
// §III-B hardening when `hardened` is set:
//   * per-host default-deny firewalls with exact (ip, port) allows,
//   * static ARP tables and no cross-NIC ARP answering,
//   * static MAC↔switch-port bindings,
//   * intrusion-tolerant (sealed) Spines links,
//   * hardened minimal-OS profiles.
// With `hardened` false the same system runs "open" — the ablation the
// red-team bench uses to show which defense stops which attack.
#pragma once

#include <memory>

#include "net/network.hpp"
#include "plc/plc.hpp"
#include "plc/rtu.hpp"
#include "prime/recovery.hpp"
#include "prime/replica.hpp"
#include "scada/cycler.hpp"
#include "scada/hmi.hpp"
#include "scada/master.hpp"
#include "scada/proxy.hpp"
#include "sim/chaos.hpp"
#include "spines/overlay.hpp"

namespace spire::scada {

/// The §III-B hardening measures, individually toggleable so the
/// ablation bench can show which defense stops which attack.
struct HardeningOptions {
  bool firewalls = true;           ///< default-deny + exact allows
  bool static_arp = true;          ///< static MAC<->IP, no cross-NIC answers
  bool static_switch_ports = true; ///< static MAC<->port bindings
  bool sealed_links = true;        ///< Spines intrusion-tolerant mode
  bool hardened_os = true;         ///< latest minimal-server profile

  static HardeningOptions all_on() { return {}; }
  static HardeningOptions all_off() {
    return {false, false, false, false, false};
  }
};

/// Wide-area site layout. The default (one control center, no data
/// centers) reproduces the single-site deployment unchanged. With more
/// sites, the 3f+2k+1 replicas are spread round-robin across control
/// and data centers, each site gets its own internal/external switch
/// pair and its own Spines routing area, and sites are joined by
/// dedicated WAN links (2-port switches whose propagation delay models
/// the wide-area latency) between border replica hosts — the paper's
/// multi-site configuration (2 CC + 2 DC).
struct SiteTopology {
  std::uint32_t control_centers = 1;
  std::uint32_t data_centers = 0;
  /// One-way propagation delay of every inter-site WAN link.
  sim::Time wan_latency = 20 * sim::kMillisecond;

  [[nodiscard]] std::uint32_t site_count() const {
    return control_centers + data_centers;
  }
  [[nodiscard]] bool multi_site() const { return site_count() > 1; }

  static SiteTopology single_site() { return {}; }
  static SiteTopology two_cc_two_dc(sim::Time latency = 20 * sim::kMillisecond) {
    return SiteTopology{2, 2, latency};
  }
};

struct DeploymentConfig {
  std::uint32_t f = 1;
  std::uint32_t k = 0;  ///< 0: red-team config (n=4); 1: plant config (n=6)
  HardeningOptions hardening;  ///< defaults to everything on
  SiteTopology sites;          ///< defaults to the classic single site
  ScenarioSpec scenario = ScenarioSpec::red_team();
  std::size_t hmi_count = 1;
  sim::Time proxy_poll_interval = 200 * sim::kMillisecond;
  sim::Time cycler_interval = 1 * sim::kSecond;  ///< 0 disables the cycler
  prime::PrimeConfig prime;  ///< f, k and client list are filled in
  std::uint64_t seed = 20190101;
  std::string keyring_seed = "spire-deployment";
};

/// Ports used inside the deployment.
constexpr std::uint16_t kInternalDaemonPort = 8100;
constexpr std::uint16_t kExternalDaemonPort = 8200;
constexpr spines::SessionPort kReplicaSession = 9000;   ///< internal overlay
constexpr spines::SessionPort kClientToReplica = 9001;  ///< external overlay
constexpr spines::SessionPort kReplicaToClient = 9002;  ///< external overlay
constexpr std::uint16_t kProxyModbusPort = 1502;

class SpireDeployment {
 public:
  SpireDeployment(sim::Simulator& sim, DeploymentConfig config);
  ~SpireDeployment();

  SpireDeployment(const SpireDeployment&) = delete;
  SpireDeployment& operator=(const SpireDeployment&) = delete;

  /// Starts overlays, replicas, PLumbing. Give the system a warmup of
  /// ~1 simulated second before measuring.
  void start();

  [[nodiscard]] std::uint32_t n() const { return config_.prime.n(); }
  [[nodiscard]] prime::Replica& replica(std::size_t i) { return *replicas_[i]; }
  [[nodiscard]] ScadaMaster& master(std::size_t i) { return *masters_[i]; }
  [[nodiscard]] Hmi& hmi(std::size_t j) { return *hmis_[j]; }
  [[nodiscard]] PlcProxy& proxy(const std::string& device);
  /// Ground-truth access to a field device (Modbus PLC or DNP3 RTU).
  [[nodiscard]] plc::FieldDevice& plc(const std::string& device);
  [[nodiscard]] AutoCycler* cycler() { return cycler_.get(); }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] spines::Overlay& internal_overlay() { return *internal_; }
  [[nodiscard]] spines::Overlay& external_overlay() { return *external_; }
  [[nodiscard]] const crypto::Keyring& keyring() const { return keyring_; }
  [[nodiscard]] const DeploymentConfig& config() const { return config_; }
  [[nodiscard]] net::Switch& external_switch() { return *external_switch_; }
  [[nodiscard]] net::Switch& internal_switch() { return *internal_switch_; }
  [[nodiscard]] net::Host& replica_host(std::size_t i) {
    return *replica_hosts_[i];
  }

  // --- wide-area site layout ---------------------------------------------
  [[nodiscard]] std::uint32_t site_count() const {
    return config_.sites.site_count();
  }
  /// Site hosting replica `i` (round-robin spread, so a 2CC+2DC layout
  /// with n=6 places [2,2,1,1] replicas per site).
  [[nodiscard]] std::uint32_t site_of_replica(std::size_t i) const {
    return static_cast<std::uint32_t>(i) % site_count();
  }
  /// Cuts (or heals) every WAN link touching `site`: the whole-site
  /// partition scenario. While cut, the site's replicas only see each
  /// other; on heal, the border daemons re-advertise and the overlay
  /// converges without restart.
  void partition_site(std::uint32_t site, bool cut);
  [[nodiscard]] net::Switch& internal_site_switch(std::uint32_t site) {
    return *internal_switches_.at(site);
  }
  [[nodiscard]] net::Switch& external_site_switch(std::uint32_t site) {
    return *external_switches_.at(site);
  }

  /// Models a successful replica compromise (the red-team suite's
  /// mid-soak stage): installs the scripted Byzantine behaviour on
  /// replica `i`. A later proactive recovery wipes it.
  void compromise_replica(std::size_t i, prime::ByzantineConfig byz) {
    replicas_.at(i)->set_byzantine(std::move(byz));
  }

  /// Actuates a breaker locally at the field device (the plant
  /// measurement device of §V), bypassing SCADA entirely.
  void flip_breaker_at_plc(const std::string& device, std::size_t index,
                           bool close);

  /// Builds a proactive-recovery scheduler over all replicas.
  std::unique_ptr<prime::ProactiveRecovery> make_recovery(
      prime::RecoveryConfig recovery_config);

  /// Builds a fault injector wired to the deployment's fault surfaces:
  /// link degradation maps to chaos loss/jitter on both switches,
  /// partitioning replica i stops its internal+external Spines daemons
  /// (sessions survive; the overlay reroutes around it), crash/restart
  /// maps to replica shutdown()/recover(). Script or randomize the
  /// schedule on the returned injector, then arm() it.
  std::unique_ptr<sim::ChaosInjector> make_chaos();

  /// Identities used by the deployment.
  [[nodiscard]] static std::string proxy_identity(const std::string& device) {
    return "client/proxy-" + device;
  }
  [[nodiscard]] static std::string hmi_identity(std::size_t j) {
    return "client/hmi-" + std::to_string(j);
  }

 private:
  class SpinesReplicaTransport;

  void build_network();
  void build_overlays();
  void build_field_devices();
  void build_replicas();
  void build_clients();
  void harden_all();
  void submit_to_replicas(spines::Daemon& via, const util::Bytes& envelope);

  sim::Simulator& sim_;
  DeploymentConfig config_;
  crypto::Keyring keyring_;
  sim::Rng rng_;

  std::unique_ptr<net::Network> network_;
  net::Switch* internal_switch_ = nullptr;  ///< site 0 (legacy accessor)
  net::Switch* external_switch_ = nullptr;  ///< site 0 (legacy accessor)
  std::vector<net::Switch*> internal_switches_;  ///< one per site
  std::vector<net::Switch*> external_switches_;  ///< one per site
  /// Inter-site WAN links: per site pair, the 2-port latency switch and
  /// the WAN NIC index on each site's border replica host.
  struct WanLink {
    std::uint32_t site_a = 0;
    std::uint32_t site_b = 0;
    net::Switch* sw = nullptr;
    std::size_t iface_a = 0;
    std::size_t iface_b = 0;
  };
  std::vector<WanLink> wan_links_;
  std::vector<net::Host*> replica_hosts_;
  std::map<std::string, net::Host*> proxy_hosts_;   ///< by device
  std::map<std::string, net::Host*> plc_hosts_;     ///< by device
  std::vector<net::Host*> hmi_hosts_;
  net::Host* cycler_host_ = nullptr;

  std::unique_ptr<spines::Overlay> internal_;
  std::unique_ptr<spines::Overlay> external_;

  std::map<std::string, std::unique_ptr<plc::FieldDevice>> plcs_;
  std::map<std::string, std::unique_ptr<PlcProxy>> proxies_;
  std::vector<std::unique_ptr<ScadaMaster>> masters_;
  std::vector<std::unique_ptr<prime::Replica>> replicas_;
  std::vector<std::unique_ptr<Hmi>> hmis_;
  std::unique_ptr<AutoCycler> cycler_;
};

}  // namespace spire::scada
