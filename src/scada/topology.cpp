#include "scada/topology.hpp"

namespace spire::scada {

const DeviceSpec* ScenarioSpec::device(const std::string& name) const {
  for (const auto& d : devices) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

std::size_t ScenarioSpec::total_breakers() const {
  std::size_t total = 0;
  for (const auto& d : devices) total += d.breaker_names.size();
  return total;
}

ScenarioSpec ScenarioSpec::red_team() {
  ScenarioSpec spec;
  spec.name = "red-team-2017";
  // The physical PLC: seven breakers managing power to four buildings
  // (Fig. 4). B10-1/B57/B56 are named in the paper; the rest follow the
  // same feeder naming style.
  spec.devices.push_back(DeviceSpec{
      "plc-phys",
      {"B10-1", "B57", "B56", "B41", "B42", "B23", "B24"},
      true});
  // Ten emulated PLCs modelling distribution to substations and remote
  // sites (§IV-A), four breakers each.
  for (int i = 0; i < 10; ++i) {
    DeviceSpec d;
    d.name = "dist" + std::to_string(i);
    for (int b = 0; b < 4; ++b) {
      d.breaker_names.push_back("D" + std::to_string(i) + "-" +
                                std::to_string(b));
    }
    spec.devices.push_back(std::move(d));
  }
  return spec;
}

ScenarioSpec ScenarioSpec::power_plant() {
  ScenarioSpec spec;
  spec.name = "power-plant-2018";
  // The plant engineers wired the three left-hand breakers of Fig. 4 to
  // real switchgear (§V).
  spec.devices.push_back(DeviceSpec{"plc-plant", {"B10-1", "B57", "B56"}, true});
  for (int i = 0; i < 10; ++i) {
    DeviceSpec d;
    d.name = "dist" + std::to_string(i);
    for (int b = 0; b < 4; ++b) {
      d.breaker_names.push_back("D" + std::to_string(i) + "-" +
                                std::to_string(b));
    }
    spec.devices.push_back(std::move(d));
  }
  // Six new emulated devices modelling a power-generation scenario
  // (§V); generation-side devices are DNP3 RTUs, exercising the other
  // field protocol the paper names.
  for (int i = 0; i < 6; ++i) {
    DeviceSpec d;
    d.name = "gen" + std::to_string(i);
    d.protocol = FieldProtocol::kDnp3;
    for (int b = 0; b < 3; ++b) {
      d.breaker_names.push_back("G" + std::to_string(i) + "-" +
                                std::to_string(b));
    }
    spec.devices.push_back(std::move(d));
  }
  return spec;
}

void TopologyState::register_device(const std::string& name,
                                    std::size_t breaker_count) {
  DeviceState state;
  state.breakers.assign(breaker_count, false);
  state.readings.assign(breaker_count, 0);
  devices_.emplace(name, std::move(state));
}

TopologyState::TopologyState(const ScenarioSpec& spec) {
  for (const auto& d : spec.devices) {
    DeviceState state;
    state.breakers.assign(d.breaker_names.size(), false);
    state.readings.assign(d.breaker_names.size(), 0);
    devices_.emplace(d.name, std::move(state));
  }
}

bool TopologyState::apply_report(const std::string& device,
                                 std::uint64_t report_seq,
                                 const std::vector<bool>& breakers,
                                 const std::vector<std::uint16_t>& readings) {
  const auto it = devices_.find(device);
  if (it == devices_.end()) return false;
  DeviceState& state = it->second;
  if (report_seq <= state.last_report_seq) return false;
  const bool changed = state.breakers != breakers || !state.online;
  state.breakers = breakers;
  state.readings = readings;
  state.last_report_seq = report_seq;
  state.online = true;
  return changed;
}

const DeviceState* TopologyState::device(const std::string& name) const {
  const auto it = devices_.find(name);
  return it == devices_.end() ? nullptr : &it->second;
}

std::optional<bool> TopologyState::breaker(const std::string& device,
                                           std::size_t index) const {
  const auto* d = this->device(device);
  if (!d || index >= d->breakers.size()) return std::nullopt;
  return d->breakers[index];
}

util::Bytes TopologyState::serialize() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(devices_.size()));
  for (const auto& [name, state] : devices_) {
    w.str(name);
    w.u64(state.last_report_seq);
    w.boolean(state.online);
    w.u32(static_cast<std::uint32_t>(state.breakers.size()));
    for (const bool b : state.breakers) w.boolean(b);
    w.u32(static_cast<std::uint32_t>(state.readings.size()));
    for (const auto v : state.readings) w.u16(v);
  }
  return w.take();
}

TopologyState TopologyState::deserialize(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  TopologyState state;
  const std::uint32_t count = r.u32();
  if (count > 65536) throw util::SerializationError("absurd device count");
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.str();
    DeviceState d;
    d.last_report_seq = r.u64();
    d.online = r.boolean();
    const std::uint32_t nb = r.u32();
    if (nb > 65536) throw util::SerializationError("absurd breaker count");
    d.breakers.resize(nb);
    for (std::uint32_t b = 0; b < nb; ++b) d.breakers[b] = r.boolean();
    const std::uint32_t nr = r.u32();
    if (nr > 65536) throw util::SerializationError("absurd reading count");
    d.readings.resize(nr);
    for (std::uint32_t v = 0; v < nr; ++v) d.readings[v] = r.u16();
    state.devices_.emplace(name, std::move(d));
  }
  r.expect_done();
  return state;
}

crypto::Digest TopologyState::digest() const {
  return crypto::sha256(serialize());
}

crypto::Digest TopologyState::display_digest() const {
  util::ByteWriter w;
  for (const auto& [name, state] : devices_) {
    w.str(name);
    w.boolean(state.online);
    for (const bool b : state.breakers) w.boolean(b);
  }
  return crypto::sha256(w.bytes());
}

}  // namespace spire::scada
