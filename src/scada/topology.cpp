#include "scada/topology.hpp"

namespace spire::scada {

namespace {

void put_device_record(util::ByteWriter& w, const DeviceState& state) {
  w.u64(state.last_report_seq);
  w.boolean(state.online);
  w.u32(static_cast<std::uint32_t>(state.breakers.size()));
  for (const bool b : state.breakers) w.boolean(b);
  w.u32(static_cast<std::uint32_t>(state.readings.size()));
  for (const auto v : state.readings) w.u16(v);
}

DeviceState get_device_record(util::ByteReader& r) {
  DeviceState d;
  d.last_report_seq = r.u64();
  d.online = r.boolean();
  const std::uint32_t nb = r.u32();
  if (nb > 65536) throw util::SerializationError("absurd breaker count");
  d.breakers.resize(nb);
  for (std::uint32_t b = 0; b < nb; ++b) d.breakers[b] = r.boolean();
  const std::uint32_t nr = r.u32();
  if (nr > 65536) throw util::SerializationError("absurd reading count");
  d.readings.resize(nr);
  for (std::uint32_t v = 0; v < nr; ++v) d.readings[v] = r.u16();
  return d;
}

}  // namespace

const DeviceSpec* ScenarioSpec::device(const std::string& name) const {
  for (const auto& d : devices) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

std::size_t ScenarioSpec::total_breakers() const {
  std::size_t total = 0;
  for (const auto& d : devices) total += d.breaker_names.size();
  return total;
}

ScenarioSpec ScenarioSpec::red_team() {
  ScenarioSpec spec;
  spec.name = "red-team-2017";
  // The physical PLC: seven breakers managing power to four buildings
  // (Fig. 4). B10-1/B57/B56 are named in the paper; the rest follow the
  // same feeder naming style.
  spec.devices.push_back(DeviceSpec{
      "plc-phys",
      {"B10-1", "B57", "B56", "B41", "B42", "B23", "B24"},
      true});
  // Ten emulated PLCs modelling distribution to substations and remote
  // sites (§IV-A), four breakers each.
  for (int i = 0; i < 10; ++i) {
    DeviceSpec d;
    d.name = "dist" + std::to_string(i);
    for (int b = 0; b < 4; ++b) {
      d.breaker_names.push_back("D" + std::to_string(i) + "-" +
                                std::to_string(b));
    }
    spec.devices.push_back(std::move(d));
  }
  return spec;
}

ScenarioSpec ScenarioSpec::power_plant() {
  ScenarioSpec spec;
  spec.name = "power-plant-2018";
  // The plant engineers wired the three left-hand breakers of Fig. 4 to
  // real switchgear (§V).
  spec.devices.push_back(DeviceSpec{"plc-plant", {"B10-1", "B57", "B56"}, true});
  for (int i = 0; i < 10; ++i) {
    DeviceSpec d;
    d.name = "dist" + std::to_string(i);
    for (int b = 0; b < 4; ++b) {
      d.breaker_names.push_back("D" + std::to_string(i) + "-" +
                                std::to_string(b));
    }
    spec.devices.push_back(std::move(d));
  }
  // Six new emulated devices modelling a power-generation scenario
  // (§V); generation-side devices are DNP3 RTUs, exercising the other
  // field protocol the paper names.
  for (int i = 0; i < 6; ++i) {
    DeviceSpec d;
    d.name = "gen" + std::to_string(i);
    d.protocol = FieldProtocol::kDnp3;
    for (int b = 0; b < 3; ++b) {
      d.breaker_names.push_back("G" + std::to_string(i) + "-" +
                                std::to_string(b));
    }
    spec.devices.push_back(std::move(d));
  }
  return spec;
}

ScenarioSpec ScenarioSpec::fleet(std::size_t devices,
                                 std::size_t breakers_per_device) {
  ScenarioSpec spec;
  spec.name = "fleet-" + std::to_string(devices);
  spec.devices.reserve(devices);
  for (std::size_t i = 0; i < devices; ++i) {
    DeviceSpec d;
    d.name = "fd" + std::to_string(i);
    for (std::size_t b = 0; b < breakers_per_device; ++b) {
      d.breaker_names.push_back("F" + std::to_string(i) + "-" +
                                std::to_string(b));
    }
    spec.devices.push_back(std::move(d));
  }
  return spec;
}

std::uint32_t TopologyState::register_device(const std::string& name,
                                             std::size_t breaker_count) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const auto handle = static_cast<std::uint32_t>(states_.size());
  DeviceState state;
  state.breakers.assign(breaker_count, false);
  state.readings.assign(breaker_count, 0);
  states_.push_back(std::move(state));
  names_.push_back(name);
  index_.emplace(name, handle);
  if ((handle >> kShardBits) >= changed_.size()) changed_.push_back(0);
  return handle;
}

TopologyState::TopologyState(const ScenarioSpec& spec) {
  states_.reserve(spec.devices.size());
  names_.reserve(spec.devices.size());
  for (const auto& d : spec.devices) {
    register_device(d.name, d.breaker_names.size());
  }
}

bool TopologyState::apply_report(const std::string& device,
                                 std::uint64_t report_seq,
                                 const std::vector<bool>& breakers,
                                 const std::vector<std::uint16_t>& readings) {
  const auto it = index_.find(device);
  if (it == index_.end()) return false;
  const std::uint32_t h = it->second;
  DeviceState& state = states_[h];
  if (report_seq <= state.last_report_seq) return false;
  const bool changed = state.breakers != breakers || !state.online;
  state.breakers = breakers;
  state.readings = readings;
  state.last_report_seq = report_seq;
  state.online = true;
  changed_[h >> kShardBits] |= std::uint64_t{1} << (h & (kShardSize - 1));
  return changed;
}

const DeviceState* TopologyState::device(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &states_[it->second];
}

std::uint32_t TopologyState::handle(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? kNoDevice : it->second;
}

std::optional<bool> TopologyState::breaker(const std::string& device,
                                           std::size_t index) const {
  const auto* d = this->device(device);
  if (!d || index >= d->breakers.size()) return std::nullopt;
  return d->breakers[index];
}

util::Bytes TopologyState::serialize() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(states_.size()));
  for (std::size_t i = 0; i < states_.size(); ++i) {
    w.str(names_[i]);
    put_device_record(w, states_[i]);
  }
  return w.take();
}

TopologyState TopologyState::deserialize(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  TopologyState state;
  const std::uint32_t count = r.u32();
  if (count > (1u << 20)) throw util::SerializationError("absurd device count");
  state.states_.reserve(count);
  state.names_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.str();
    const std::uint32_t h = state.register_device(name, 0);
    if (h != i) throw util::SerializationError("duplicate device name");
    state.states_[h] = get_device_record(r);
  }
  r.expect_done();
  return state;
}

crypto::Digest TopologyState::digest() const {
  return crypto::sha256(serialize());
}

crypto::Digest TopologyState::display_digest() const {
  util::ByteWriter w;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    w.str(names_[i]);
    w.boolean(states_[i].online);
    for (const bool b : states_[i].breakers) w.boolean(b);
  }
  return crypto::sha256(w.bytes());
}

bool TopologyState::has_changes() const {
  for (const std::uint64_t mask : changed_) {
    if (mask != 0) return true;
  }
  return false;
}

std::size_t TopologyState::changed_count() const {
  std::size_t n = 0;
  for (const std::uint64_t mask : changed_) {
    n += static_cast<std::size_t>(__builtin_popcountll(mask));
  }
  return n;
}

util::Bytes TopologyState::serialize_changes() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(changed_count()));
  for (std::size_t s = 0; s < changed_.size(); ++s) {
    std::uint64_t mask = changed_[s];
    while (mask != 0) {
      const auto bit = static_cast<std::uint32_t>(__builtin_ctzll(mask));
      mask &= mask - 1;
      const auto h = static_cast<std::uint32_t>((s << kShardBits) + bit);
      w.u32(h);
      put_device_record(w, states_[h]);
    }
  }
  return w.take();
}

void TopologyState::clear_changes() {
  for (std::uint64_t& mask : changed_) mask = 0;
}

void TopologyState::mark_all_changed() {
  if (changed_.empty()) return;
  for (std::uint64_t& mask : changed_) mask = ~std::uint64_t{0};
  // Trim the final partial shard to registered devices.
  const std::size_t tail = states_.size() & (kShardSize - 1);
  if (tail != 0) {
    changed_.back() = (std::uint64_t{1} << tail) - 1;
  }
}

void TopologyState::set_changed_masks(std::vector<std::uint64_t> masks) {
  masks.resize(changed_.size(), 0);
  changed_ = std::move(masks);
}

void TopologyState::apply_delta(std::span<const std::uint8_t> data,
                                const BreakerChangeFn& on_breaker_change) {
  util::ByteReader r(data);
  const std::uint32_t count = r.u32();
  if (count > (1u << 20)) throw util::SerializationError("absurd delta count");
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t h = r.u32();
    if (h >= states_.size()) {
      throw util::SerializationError("unknown device handle in delta");
    }
    DeviceState next = get_device_record(r);
    DeviceState& cur = states_[h];
    if (on_breaker_change) {
      const std::size_t n = next.breakers.size();
      for (std::size_t b = 0; b < n; ++b) {
        const bool was = b < cur.breakers.size() && cur.breakers[b];
        if (was != next.breakers[b]) on_breaker_change(h, b, next.breakers[b]);
      }
    }
    cur = std::move(next);
    changed_[h >> kShardBits] |= std::uint64_t{1} << (h & (kShardSize - 1));
  }
  r.expect_done();
}

}  // namespace spire::scada
