// Automatic update-generation tool (paper §IV-A): cycles through the
// breakers, flipping each periodically in a predetermined order — the
// workload the red team tried to disrupt, and the steady-state load
// for the architecture and soak benches.
#pragma once

#include <string>
#include <vector>

#include "scada/client.hpp"
#include "scada/topology.hpp"
#include "sim/simulator.hpp"

namespace spire::scada {

struct CycleEvent {
  sim::Time at = 0;
  std::string device;
  std::uint16_t breaker = 0;
  bool close = false;
  std::uint64_t command_id = 0;
};

class AutoCycler {
 public:
  AutoCycler(sim::Simulator& sim, const ScenarioSpec& scenario,
             const crypto::Keyring& keyring, ScadaClient::SubmitFn submit,
             sim::Time interval = 1 * sim::kSecond,
             std::string identity = "client/cycler");

  void start();
  void stop() { running_ = false; }

  [[nodiscard]] const std::vector<CycleEvent>& history() const {
    return history_;
  }

 private:
  void tick();

  sim::Simulator& sim_;
  ScadaClient client_;
  sim::Time interval_;
  bool running_ = false;
  struct Target {
    std::string device;
    std::uint16_t breaker;
    bool next_close = true;
  };
  std::vector<Target> targets_;
  std::size_t position_ = 0;
  std::uint64_t next_command_id_ = 1;
  std::vector<CycleEvent> history_;
};

}  // namespace spire::scada
