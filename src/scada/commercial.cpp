#include "scada/commercial.hpp"

namespace spire::scada {

util::Bytes CommMsg::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(a);
  w.u64(b);
  w.str(device);
  w.blob(blob);
  return w.take();
}

std::optional<CommMsg> CommMsg::decode(std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    CommMsg m;
    const std::uint8_t t = r.u8();
    if (t < 1 || t > 5) return std::nullopt;
    m.type = static_cast<CommMsgType>(t);
    m.a = r.u64();
    m.b = r.u64();
    m.device = r.str();
    m.blob = r.blob();
    r.expect_done();
    return m;
  } catch (const util::SerializationError&) {
    return std::nullopt;
  }
}

CommercialMaster::CommercialMaster(sim::Simulator& sim, net::Host& host,
                                   CommercialMasterConfig config)
    : sim_(sim),
      host_(host),
      config_(std::move(config)),
      log_("scada.commercial." + host.name()) {
  for (const auto& link : config_.devices) {
    state_.register_device(link.device, link.breaker_count);
    const net::IpAddress plc_ip = link.plc_ip;
    modbus_[link.device] = std::make_unique<modbus::Client>(
        sim, link.device, [this, plc_ip](const util::Bytes& adu) {
          host_.send_udp(plc_ip, modbus::kModbusPort, kCommercialMasterPort + 10,
                         adu);
        });
  }
}

void CommercialMaster::start() {
  if (running_) return;
  running_ = true;
  active_ = config_.is_primary;
  last_peer_heartbeat_ = sim_.now();

  host_.bind_udp(kCommercialMasterPort,
                 [this](const net::Datagram& d) { handle_request(d); });
  // Modbus responses come back on a dedicated local port.
  host_.bind_udp(kCommercialMasterPort + 10, [this](const net::Datagram& d) {
    for (auto& [device, client] : modbus_) {
      if (config_.devices.empty()) break;
      // Responses carry the matching transaction id; every client
      // checks its own pending table, so fan-out is harmless.
      client->on_data(d.payload);
    }
  });
  poll_tick();
  heartbeat_tick();
}

void CommercialMaster::stop() {
  running_ = false;
  active_ = false;
  host_.unbind_udp(kCommercialMasterPort);
  host_.unbind_udp(kCommercialMasterPort + 10);
}

void CommercialMaster::poll_tick() {
  if (!running_) return;
  sim_.schedule_after(config_.poll_interval, [this] { poll_tick(); });
  if (!active_) return;

  for (const auto& link : config_.devices) {
    modbus::ReadBitsRequest req;
    req.fc = modbus::FunctionCode::kReadDiscreteInputs;
    req.start = 0;
    req.quantity = static_cast<std::uint16_t>(link.breaker_count);
    const std::string device = link.device;
    modbus_[device]->request(
        req, [this, device, count = link.breaker_count](
                 std::optional<modbus::Response> resp) {
          if (!running_ || !active_ || !resp) return;
          const auto* bits = std::get_if<modbus::ReadBitsResponse>(&*resp);
          if (!bits) return;
          std::vector<bool> breakers(
              bits->values.begin(),
              bits->values.begin() +
                  static_cast<std::ptrdiff_t>(std::min(bits->values.size(), count)));
          std::vector<std::uint16_t> readings(count, 0);
          if (state_.apply_report(device, ++report_seq_[device], breakers,
                                  readings)) {
            ++version_;
          } else {
            ++version_;  // commercial HMIs refresh on every poll anyway
          }
        });
  }
}

void CommercialMaster::heartbeat_tick() {
  if (!running_) return;
  sim_.schedule_after(config_.heartbeat_interval, [this] { heartbeat_tick(); });

  CommMsg hb;
  hb.type = CommMsgType::kHeartbeat;
  hb.a = version_;
  host_.send_udp(config_.peer_ip, kCommercialMasterPort, kCommercialMasterPort,
                 hb.encode());

  if (!config_.is_primary && !active_ &&
      sim_.now() - last_peer_heartbeat_ > config_.failover_timeout) {
    log_.warn("primary silent; backup taking over");
    active_ = true;
  }
}

void CommercialMaster::handle_request(const net::Datagram& dgram) {
  const auto msg = CommMsg::decode(dgram.payload);
  if (!msg) return;

  switch (msg->type) {
    case CommMsgType::kGetState: {
      if (!active_) return;
      CommMsg reply;
      reply.type = CommMsgType::kStateReply;
      reply.a = msg->a;  // txn echo
      reply.b = version_;
      reply.blob = state_.serialize();
      host_.send_udp(dgram.src_ip, dgram.src_port, kCommercialMasterPort,
                     reply.encode());
      break;
    }
    case CommMsgType::kSetBreaker: {
      if (!active_) return;
      // No authentication: anyone who can reach this port commands the
      // grid — exactly the weakness the baseline carries.
      const std::uint16_t breaker = static_cast<std::uint16_t>(msg->b >> 1);
      const bool close = (msg->b & 1) != 0;
      const auto client = modbus_.find(msg->device);
      if (client == modbus_.end()) return;
      modbus::WriteSingleCoilRequest write;
      write.address = breaker;
      write.value = close;
      client->second->request(write, [](std::optional<modbus::Response>) {});
      break;
    }
    case CommMsgType::kHeartbeat: {
      last_peer_heartbeat_ = sim_.now();
      CommMsg ack;
      ack.type = CommMsgType::kHeartbeatAck;
      ack.a = msg->a;
      host_.send_udp(dgram.src_ip, dgram.src_port, kCommercialMasterPort,
                     ack.encode());
      break;
    }
    case CommMsgType::kHeartbeatAck:
      last_peer_heartbeat_ = sim_.now();
      break;
    default:
      break;
  }
}

CommercialHmi::CommercialHmi(sim::Simulator& sim, net::Host& host,
                             CommercialHmiConfig config)
    : sim_(sim),
      host_(host),
      config_(std::move(config)),
      log_("scada.commercial.hmi." + host.name()) {}

void CommercialHmi::start() {
  if (running_) return;
  running_ = true;
  host_.bind_udp(kCommercialHmiPort,
                 [this](const net::Datagram& d) { handle_reply(d); });
  poll_tick();
}

net::IpAddress CommercialHmi::active_master() const {
  return using_backup_ ? config_.backup_ip : config_.primary_ip;
}

void CommercialHmi::poll_tick() {
  if (!running_) return;
  sim_.schedule_after(config_.poll_interval, [this] { poll_tick(); });

  if (outstanding_txn_) {
    ++stats_.timeouts;
    ++consecutive_misses_;
    if (consecutive_misses_ >= config_.failover_after_misses) {
      using_backup_ = !using_backup_;
      consecutive_misses_ = 0;
      log_.warn("master unresponsive; switching to ",
                using_backup_ ? "backup" : "primary");
    }
  }

  CommMsg req;
  req.type = CommMsgType::kGetState;
  req.a = next_txn_++;
  outstanding_txn_ = req.a;
  ++stats_.polls;
  host_.send_udp(active_master(), kCommercialMasterPort, kCommercialHmiPort,
                 req.encode());
}

void CommercialHmi::handle_reply(const net::Datagram& dgram) {
  const auto msg = CommMsg::decode(dgram.payload);
  if (!msg || msg->type != CommMsgType::kStateReply) return;
  if (!outstanding_txn_ || msg->a != *outstanding_txn_) return;
  outstanding_txn_.reset();
  consecutive_misses_ = 0;
  ++stats_.replies;

  // No authentication, no voting: the HMI renders whatever "the
  // network" returned — the MITM surface the red team used.
  TopologyState state;
  try {
    state = TopologyState::deserialize(msg->blob);
  } catch (const util::SerializationError&) {
    return;
  }

  state.for_each([&](const std::string& device, const DeviceState& new_state) {
    const DeviceState* old_state = display_.device(device);
    for (std::size_t i = 0; i < new_state.breakers.size(); ++i) {
      const bool was =
          old_state && i < old_state->breakers.size() && old_state->breakers[i];
      if (was != new_state.breakers[i]) {
        last_change_ = sim_.now();
        if (observer_) observer_(device, i, new_state.breakers[i], sim_.now());
      }
    }
  });
  display_ = std::move(state);
  version_ = msg->b;
}

void CommercialHmi::command_breaker(const std::string& device,
                                    std::uint16_t breaker, bool close) {
  CommMsg cmd;
  cmd.type = CommMsgType::kSetBreaker;
  cmd.a = next_command_id_++;
  cmd.b = (static_cast<std::uint64_t>(breaker) << 1) | (close ? 1 : 0);
  cmd.device = device;
  ++stats_.commands_sent;
  host_.send_udp(active_master(), kCommercialMasterPort, kCommercialHmiPort,
                 cmd.encode());
}

}  // namespace spire::scada
