// SCADA application wire messages.
//
// These ride as opaque payloads inside Prime ClientUpdates (client ->
// replicas) and as replica-signed messages over the external Spines
// network (replicas -> proxies/HMI). Proxies and HMIs accept a
// replica-originated action only once f+1 replicas have sent identical
// content — the output-voting rule that makes a single compromised
// SCADA master harmless.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/keyring.hpp"
#include "util/bytes.hpp"

namespace spire::scada {

enum class ScadaMsgType : std::uint8_t {
  kStatusReport = 1,       ///< proxy -> masters: PLC field state
  kSupervisoryCommand = 2, ///< HMI/cycler -> masters: operator action
  kCommandOrder = 3,       ///< masters -> proxy: forward command to PLC
  kStateUpdate = 4,        ///< masters -> HMI: topology state
  kBatchReport = 5,        ///< proxy -> masters: many coalesced reports
  kResyncRequest = 6,      ///< HMI -> masters: delta base missing, full please
};

/// Field-state report for one device, produced by its proxy each poll.
struct StatusReport {
  std::string device;
  std::uint64_t report_seq = 0;
  std::vector<bool> breakers;
  std::vector<std::uint16_t> readings;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<StatusReport> decode(std::span<const std::uint8_t> data);
};

/// Operator/automation command: set one breaker.
struct SupervisoryCommand {
  std::string device;
  std::uint16_t breaker = 0;
  bool close = false;
  std::uint64_t command_id = 0;  ///< issuer-unique

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<SupervisoryCommand> decode(
      std::span<const std::uint8_t> data);
};

/// Many StatusReports coalesced by a proxy's delta batcher into one
/// Prime client update: one ordering round and one signature amortized
/// across every device change that arrived inside the batch window.
struct BatchReport {
  std::vector<StatusReport> reports;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<BatchReport> decode(std::span<const std::uint8_t> data);
};

/// HMI -> masters: the HMI's displayed version is too old to apply a
/// delta StateUpdate (it missed the base); masters answer the sender
/// with a full snapshot. Ordered through Prime so every replica serves
/// the same version and the f+1 vote still works.
struct ResyncRequest {
  std::uint64_t displayed_version = 0;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<ResyncRequest> decode(
      std::span<const std::uint8_t> data);
};

/// Client-update payload wrapper: [type u8][body].
struct ClientPayload {
  ScadaMsgType type = ScadaMsgType::kStatusReport;
  util::Bytes body;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<ClientPayload> decode(std::span<const std::uint8_t> data);
};

/// Replica -> proxy: execute a supervisory command on the field device.
/// Signed per replica; the proxy acts on f+1 matching orders.
struct CommandOrder {
  std::uint32_t replica = 0;
  std::string issuer;  ///< commanding client identity
  SupervisoryCommand command;
  crypto::Signature sig;

  [[nodiscard]] util::Bytes signed_bytes() const;
  void sign(const crypto::Signer& signer);
  [[nodiscard]] bool verify(const crypto::Verifier& verifier,
                            const std::string& identity) const;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<CommandOrder> decode(std::span<const std::uint8_t> data);
};

/// Replica -> HMI: versioned topology state. The HMI renders a version
/// once f+1 replicas sent byte-identical state at that version.
///
/// `kind` selects the payload: kFull carries the whole serialized
/// TopologyState; kDelta carries TopologyState::serialize_changes()
/// bytes covering every device that changed since `base_version` (the
/// previous publication). Delta records are absolute device states, so
/// any HMI whose displayed version is >= base_version can apply them.
struct StateUpdate {
  enum Kind : std::uint8_t { kFull = 0, kDelta = 1 };

  std::uint32_t replica = 0;
  std::uint64_t version = 0;
  std::uint8_t kind = kFull;
  std::uint64_t base_version = 0;  ///< meaningful for kDelta only
  util::Bytes state;  ///< serialized TopologyState or changes payload
  crypto::Signature sig;

  [[nodiscard]] util::Bytes signed_bytes() const;
  void sign(const crypto::Signer& signer);
  [[nodiscard]] bool verify(const crypto::Verifier& verifier,
                            const std::string& identity) const;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<StateUpdate> decode(std::span<const std::uint8_t> data);
};

/// Outer framing for replica->client traffic: [type u8][body].
struct MasterOutput {
  ScadaMsgType type = ScadaMsgType::kStateUpdate;
  util::Bytes body;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<MasterOutput> decode(std::span<const std::uint8_t> data);
};

}  // namespace spire::scada
