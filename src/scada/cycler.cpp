#include "scada/cycler.hpp"

namespace spire::scada {

AutoCycler::AutoCycler(sim::Simulator& sim, const ScenarioSpec& scenario,
                       const crypto::Keyring& keyring,
                       ScadaClient::SubmitFn submit, sim::Time interval,
                       std::string identity)
    : sim_(sim),
      client_(std::move(identity), keyring, std::move(submit)),
      interval_(interval) {
  for (const auto& device : scenario.devices) {
    for (std::size_t b = 0; b < device.breaker_names.size(); ++b) {
      targets_.push_back(Target{device.name, static_cast<std::uint16_t>(b), true});
    }
  }
}

void AutoCycler::start() {
  if (running_ || targets_.empty()) return;
  running_ = true;
  tick();
}

void AutoCycler::tick() {
  if (!running_) return;
  Target& target = targets_[position_];
  position_ = (position_ + 1) % targets_.size();

  SupervisoryCommand command;
  command.device = target.device;
  command.breaker = target.breaker;
  command.close = target.next_close;
  command.command_id = next_command_id_++;
  target.next_close = !target.next_close;

  history_.push_back(CycleEvent{sim_.now(), command.device, command.breaker,
                                command.close, command.command_id});
  client_.send(ScadaMsgType::kSupervisoryCommand, command.encode());

  sim_.schedule_after(interval_, [this] { tick(); });
}

}  // namespace spire::scada
