#include "scada/hmi.hpp"

#include "prime/messages.hpp"

namespace spire::scada {

Hmi::Hmi(sim::Simulator& sim, HmiConfig config, const crypto::Keyring& keyring,
         crypto::Verifier replica_verifier, ScadaClient::SubmitFn submit)
    : sim_(sim),
      config_(std::move(config)),
      log_("scada.hmi." + config_.identity),
      replica_verifier_(std::move(replica_verifier)),
      client_(config_.identity, keyring, std::move(submit)),
      metrics_("scada.hmi." + config_.identity) {
  metrics_.counter("updates_received", &stats_.updates_received);
  metrics_.counter("updates_rejected_sig", &stats_.updates_rejected_sig);
  metrics_.counter("versions_displayed", &stats_.versions_displayed);
  metrics_.counter("commands_issued", &stats_.commands_issued);
}

void Hmi::on_master_output(std::span<const std::uint8_t> data) {
  const auto output = MasterOutput::decode(data);
  if (!output || output->type != ScadaMsgType::kStateUpdate) return;
  const auto update = StateUpdate::decode(output->body);
  if (!update) return;

  ++stats_.updates_received;
  const std::string identity = prime::replica_identity(update->replica);
  if (!update->verify(replica_verifier_, identity)) {
    ++stats_.updates_rejected_sig;
    return;
  }
  if (auto* tracer = obs::Tracer::current()) {
    tracer->hmi_recv(update->version);
  }
  if (update->version <= version_) return;

  const crypto::Digest digest = crypto::sha256(update->state);
  auto& replicas = votes_[update->version][digest];
  replicas[update->replica] = update->state;
  if (replicas.size() < config_.f + 1) return;

  try {
    const TopologyState state = TopologyState::deserialize(update->state);
    adopt(update->version, state);
  } catch (const util::SerializationError&) {
    return;
  }
  while (!votes_.empty() && votes_.begin()->first <= version_) {
    votes_.erase(votes_.begin());
  }
}

void Hmi::adopt(std::uint64_t version, const TopologyState& state) {
  // Detect per-breaker display changes (screen redraw events).
  for (const auto& [device, new_state] : state.devices()) {
    const DeviceState* old_state = display_.device(device);
    for (std::size_t i = 0; i < new_state.breakers.size(); ++i) {
      const bool was =
          old_state && i < old_state->breakers.size() && old_state->breakers[i];
      const bool now = new_state.breakers[i];
      if (was != now) {
        last_change_ = sim_.now();
        for (const auto& observer : observers_) {
          observer(device, i, now, sim_.now());
        }
      }
    }
  }
  display_ = state;
  version_ = version;
  ++stats_.versions_displayed;
  if (auto* tracer = obs::Tracer::current()) {
    tracer->hmi_display(version);
  }
}

void Hmi::reset_display() {
  display_ = TopologyState{};
  version_ = 0;
  votes_.clear();
}

std::uint64_t Hmi::command_breaker(const std::string& device,
                                   std::uint16_t breaker, bool close) {
  SupervisoryCommand command;
  command.device = device;
  command.breaker = breaker;
  command.close = close;
  command.command_id = next_command_id_++;
  ++stats_.commands_issued;
  client_.send(ScadaMsgType::kSupervisoryCommand, command.encode());
  return command.command_id;
}

}  // namespace spire::scada
