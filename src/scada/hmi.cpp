#include "scada/hmi.hpp"

#include "prime/messages.hpp"

namespace spire::scada {

Hmi::Hmi(sim::Simulator& sim, HmiConfig config, const crypto::Keyring& keyring,
         crypto::Verifier replica_verifier, ScadaClient::SubmitFn submit)
    : sim_(sim),
      config_(std::move(config)),
      log_("scada.hmi." + config_.identity),
      replica_verifier_(std::move(replica_verifier)),
      client_(config_.identity, keyring, std::move(submit)),
      metrics_("scada.hmi." + config_.identity) {
  metrics_.counter("updates_received", &stats_.updates_received);
  metrics_.counter("updates_rejected_sig", &stats_.updates_rejected_sig);
  metrics_.counter("versions_displayed", &stats_.versions_displayed);
  metrics_.counter("deltas_applied", &stats_.deltas_applied);
  metrics_.counter("resyncs_requested", &stats_.resyncs_requested);
  metrics_.counter("commands_issued", &stats_.commands_issued);
}

void Hmi::on_master_output(std::span<const std::uint8_t> data) {
  const auto output = MasterOutput::decode(data);
  if (!output || output->type != ScadaMsgType::kStateUpdate) return;
  const auto update = StateUpdate::decode(output->body);
  if (!update) return;

  ++stats_.updates_received;
  const std::string identity = prime::replica_identity(update->replica);
  if (!update->verify(replica_verifier_, identity)) {
    ++stats_.updates_rejected_sig;
    return;
  }
  if (auto* tracer = obs::Tracer::current()) {
    tracer->hmi_recv(update->version);
  }
  if (update->version <= version_) return;

  // The vote digest covers kind and base_version along with the state
  // bytes, so f+1 agreement is agreement on the whole update content.
  util::ByteWriter key;
  key.u8(update->kind);
  key.u64(update->base_version);
  key.blob(update->state);
  const crypto::Digest digest = crypto::sha256(key.take());

  Vote& vote = votes_[update->version][digest];
  if (vote.replicas.empty()) {
    vote.kind = update->kind;
    vote.base_version = update->base_version;
    vote.state = update->state;
  }
  vote.replicas.insert(update->replica);

  if (votes_.size() > kMaxPendingVotes) {
    // Far behind the stream; stop buffering and ask for a snapshot.
    votes_.erase(votes_.begin());
    request_resync();
  }
  try_adopt();
}

void Hmi::try_adopt() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = votes_.begin(); it != votes_.end();) {
      if (it->first <= version_) {
        it = votes_.erase(it);
        continue;
      }
      bool adopted = false;
      for (const auto& [digest, vote] : it->second) {
        if (vote.replicas.size() < config_.f + 1) continue;
        if (vote.kind == StateUpdate::kFull) {
          try {
            adopt_full(it->first, TopologyState::deserialize(vote.state));
            adopted = true;
          } catch (const util::SerializationError&) {
          }
        } else if (vote.base_version <= version_ && version_ > 0) {
          adopted = adopt_delta(it->first, vote.state);
          if (!adopted) request_resync();
        } else {
          // Missed the delta's base publication; keep the vote — it
          // may become applicable once a resync snapshot lands.
          request_resync();
        }
        if (adopted) break;
      }
      if (adopted) {
        // version_ advanced: restart the scan, earlier buckets prune
        // and later deltas may have become applicable.
        progress = true;
        break;
      }
      ++it;
    }
  }
}

void Hmi::adopt_full(std::uint64_t version, const TopologyState& state) {
  // Detect per-breaker display changes (screen redraw events).
  state.for_each([&](const std::string& device, const DeviceState& new_state) {
    const DeviceState* old_state = display_.device(device);
    for (std::size_t i = 0; i < new_state.breakers.size(); ++i) {
      const bool was =
          old_state && i < old_state->breakers.size() && old_state->breakers[i];
      const bool now = new_state.breakers[i];
      if (was != now) {
        last_change_ = sim_.now();
        for (const auto& observer : observers_) {
          observer(device, i, now, sim_.now());
        }
      }
    }
  });
  display_ = state;
  finish_adopt(version);
}

bool Hmi::adopt_delta(std::uint64_t version, const util::Bytes& payload) {
  try {
    display_.apply_delta(
        payload,
        [&](std::uint32_t handle, std::size_t breaker, bool closed) {
          last_change_ = sim_.now();
          const std::string& device = display_.name(handle);
          for (const auto& observer : observers_) {
            observer(device, breaker, closed, sim_.now());
          }
        });
  } catch (const util::SerializationError&) {
    // Delta references a device our image does not have — the base
    // snapshot is stale or missing. The caller requests a resync.
    return false;
  }
  ++stats_.deltas_applied;
  finish_adopt(version);
  return true;
}

void Hmi::finish_adopt(std::uint64_t version) {
  version_ = version;
  ++stats_.versions_displayed;
  if (auto* tracer = obs::Tracer::current()) {
    tracer->hmi_display(version);
  }
}

void Hmi::request_resync() {
  const sim::Time now = sim_.now();
  if (resync_requested_ && now < last_resync_ + config_.resync_min_interval) {
    return;
  }
  resync_requested_ = true;
  last_resync_ = now;
  ++stats_.resyncs_requested;
  ResyncRequest request;
  request.displayed_version = version_;
  client_.send(ScadaMsgType::kResyncRequest, request.encode());
}

void Hmi::reset_display() {
  display_ = TopologyState{};
  version_ = 0;
  votes_.clear();
  resync_requested_ = false;
  last_resync_ = 0;
}

std::uint64_t Hmi::command_breaker(const std::string& device,
                                   std::uint16_t breaker, bool close) {
  SupervisoryCommand command;
  command.device = device;
  command.breaker = breaker;
  command.close = close;
  command.command_id = next_command_id_++;
  ++stats_.commands_issued;
  client_.send(ScadaMsgType::kSupervisoryCommand, command.encode());
  return command.command_id;
}

}  // namespace spire::scada
