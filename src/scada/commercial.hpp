// Commercial SCADA baseline (paper Fig. 1 and §IV-B).
//
// Primary-backup SCADA master, plaintext unauthenticated HMI protocol,
// PLCs attached directly to the operations switch, one-second poll
// cycle — a faithful model of the NIST-best-practices commercial
// system the red team compromised within hours: they reached the PLC's
// maintenance port from the enterprise network, dumped and rewrote its
// config, then ARP-poisoned the HMI↔master path to feed the operator
// false state.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "modbus/endpoint.hpp"
#include "net/host.hpp"
#include "scada/topology.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace spire::scada {

/// Plaintext commercial protocol (UDP, no auth, no crypto).
constexpr std::uint16_t kCommercialMasterPort = 7000;
constexpr std::uint16_t kCommercialHmiPort = 7001;

enum class CommMsgType : std::uint8_t {
  kGetState = 1,
  kStateReply = 2,
  kSetBreaker = 3,
  kHeartbeat = 4,
  kHeartbeatAck = 5,
};

struct CommMsg {
  CommMsgType type = CommMsgType::kGetState;
  std::uint64_t a = 0;       ///< txn / seq / command id
  std::uint64_t b = 0;       ///< version / breaker+close packing
  std::string device;
  util::Bytes blob;          ///< state payload

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<CommMsg> decode(std::span<const std::uint8_t> data);
};

struct CommercialDeviceLink {
  std::string device;
  net::IpAddress plc_ip;
  std::size_t breaker_count = 0;
};

struct CommercialMasterConfig {
  bool is_primary = true;
  net::IpAddress peer_ip;  ///< the other master (for failover heartbeats)
  std::vector<CommercialDeviceLink> devices;
  sim::Time poll_interval = 1 * sim::kSecond;  ///< typical commercial rate
  sim::Time heartbeat_interval = 500 * sim::kMillisecond;
  sim::Time failover_timeout = 2 * sim::kSecond;
};

class CommercialMaster {
 public:
  CommercialMaster(sim::Simulator& sim, net::Host& host,
                   CommercialMasterConfig config);

  void start();
  void stop();
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] const TopologyState& state() const { return state_; }
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  void poll_tick();
  void heartbeat_tick();
  void handle_request(const net::Datagram& dgram);

  sim::Simulator& sim_;
  net::Host& host_;
  CommercialMasterConfig config_;
  util::Logger log_;
  bool running_ = false;
  bool active_ = false;  ///< primary starts active; backup on failover
  sim::Time last_peer_heartbeat_ = 0;
  TopologyState state_;
  std::uint64_t version_ = 0;
  std::map<std::string, std::unique_ptr<modbus::Client>> modbus_;
  std::map<std::string, std::uint64_t> report_seq_;
};

struct CommercialHmiConfig {
  net::IpAddress primary_ip;
  net::IpAddress backup_ip;
  sim::Time poll_interval = 1 * sim::kSecond;
  sim::Time reply_timeout = 700 * sim::kMillisecond;
  int failover_after_misses = 3;
};

struct CommercialHmiStats {
  std::uint64_t polls = 0;
  std::uint64_t replies = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t commands_sent = 0;
};

class CommercialHmi {
 public:
  CommercialHmi(sim::Simulator& sim, net::Host& host,
                CommercialHmiConfig config);

  void start();
  void stop() { running_ = false; }

  void command_breaker(const std::string& device, std::uint16_t breaker,
                       bool close);

  [[nodiscard]] const TopologyState& display() const { return display_; }
  [[nodiscard]] std::uint64_t displayed_version() const { return version_; }
  [[nodiscard]] sim::Time last_display_change() const { return last_change_; }
  [[nodiscard]] const CommercialHmiStats& stats() const { return stats_; }
  void set_display_observer(std::function<void(const std::string&, std::size_t,
                                               bool, sim::Time)>
                                obs) {
    observer_ = std::move(obs);
  }

 private:
  void poll_tick();
  void handle_reply(const net::Datagram& dgram);
  [[nodiscard]] net::IpAddress active_master() const;

  sim::Simulator& sim_;
  net::Host& host_;
  CommercialHmiConfig config_;
  util::Logger log_;
  bool running_ = false;
  std::uint64_t next_txn_ = 1;
  std::optional<std::uint64_t> outstanding_txn_;
  int consecutive_misses_ = 0;
  bool using_backup_ = false;
  std::uint64_t next_command_id_ = 1;

  TopologyState display_;
  std::uint64_t version_ = 0;
  sim::Time last_change_ = 0;
  CommercialHmiStats stats_;
  std::function<void(const std::string&, std::size_t, bool, sim::Time)> observer_;
};

}  // namespace spire::scada
