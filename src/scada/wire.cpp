#include "scada/wire.hpp"

namespace spire::scada {

namespace {

template <typename T>
std::optional<T> guarded(std::span<const std::uint8_t> data,
                         T (*parse)(util::ByteReader&)) {
  try {
    util::ByteReader r(data);
    T value = parse(r);
    r.expect_done();
    return value;
  } catch (const util::SerializationError&) {
    return std::nullopt;
  }
}

void put_bools(util::ByteWriter& w, const std::vector<bool>& bits) {
  w.u32(static_cast<std::uint32_t>(bits.size()));
  for (const bool b : bits) w.boolean(b);
}

std::vector<bool> get_bools(util::ByteReader& r) {
  const std::uint32_t n = r.u32();
  if (n > 65536) throw util::SerializationError("absurd bit count");
  std::vector<bool> bits(n);
  for (std::uint32_t i = 0; i < n; ++i) bits[i] = r.boolean();
  return bits;
}

}  // namespace

util::Bytes StatusReport::encode() const {
  util::ByteWriter w;
  w.str(device);
  w.u64(report_seq);
  put_bools(w, breakers);
  w.u32(static_cast<std::uint32_t>(readings.size()));
  for (const auto v : readings) w.u16(v);
  return w.take();
}

std::optional<StatusReport> StatusReport::decode(
    std::span<const std::uint8_t> data) {
  return guarded<StatusReport>(data, [](util::ByteReader& r) {
    StatusReport s;
    s.device = r.str();
    s.report_seq = r.u64();
    s.breakers = get_bools(r);
    const std::uint32_t n = r.u32();
    if (n > 65536) throw util::SerializationError("absurd reading count");
    s.readings.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) s.readings.push_back(r.u16());
    return s;
  });
}

util::Bytes SupervisoryCommand::encode() const {
  util::ByteWriter w;
  w.str(device);
  w.u16(breaker);
  w.boolean(close);
  w.u64(command_id);
  return w.take();
}

std::optional<SupervisoryCommand> SupervisoryCommand::decode(
    std::span<const std::uint8_t> data) {
  return guarded<SupervisoryCommand>(data, [](util::ByteReader& r) {
    SupervisoryCommand c;
    c.device = r.str();
    c.breaker = r.u16();
    c.close = r.boolean();
    c.command_id = r.u64();
    return c;
  });
}

util::Bytes BatchReport::encode() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(reports.size()));
  for (const auto& report : reports) w.blob(report.encode());
  return w.take();
}

std::optional<BatchReport> BatchReport::decode(
    std::span<const std::uint8_t> data) {
  return guarded<BatchReport>(data, [](util::ByteReader& r) {
    BatchReport b;
    const std::uint32_t n = r.u32();
    if (n > 65536) throw util::SerializationError("absurd batch count");
    b.reports.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto report = StatusReport::decode(r.blob_span());
      if (!report) throw util::SerializationError("bad batched report");
      b.reports.push_back(*report);
    }
    return b;
  });
}

util::Bytes ResyncRequest::encode() const {
  util::ByteWriter w;
  w.u64(displayed_version);
  return w.take();
}

std::optional<ResyncRequest> ResyncRequest::decode(
    std::span<const std::uint8_t> data) {
  return guarded<ResyncRequest>(data, [](util::ByteReader& r) {
    ResyncRequest q;
    q.displayed_version = r.u64();
    return q;
  });
}

util::Bytes ClientPayload::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.blob(body);
  return w.take();
}

std::optional<ClientPayload> ClientPayload::decode(
    std::span<const std::uint8_t> data) {
  return guarded<ClientPayload>(data, [](util::ByteReader& r) {
    ClientPayload p;
    const std::uint8_t t = r.u8();
    if (t < 1 || t > 6) throw util::SerializationError("bad scada type");
    p.type = static_cast<ScadaMsgType>(t);
    p.body = r.blob();
    return p;
  });
}

util::Bytes CommandOrder::signed_bytes() const {
  util::ByteWriter w;
  w.u32(replica);
  w.str(issuer);
  w.blob(command.encode());
  return w.take();
}

void CommandOrder::sign(const crypto::Signer& signer) {
  sig = signer.sign(signed_bytes());
}

bool CommandOrder::verify(const crypto::Verifier& verifier,
                          const std::string& identity) const {
  return verifier.verify(identity, signed_bytes(), sig);
}

util::Bytes CommandOrder::encode() const {
  util::ByteWriter w;
  w.raw(signed_bytes());
  sig.encode(w);
  return w.take();
}

std::optional<CommandOrder> CommandOrder::decode(
    std::span<const std::uint8_t> data) {
  return guarded<CommandOrder>(data, [](util::ByteReader& r) {
    CommandOrder o;
    o.replica = r.u32();
    o.issuer = r.str();
    const auto body = r.blob();
    const auto cmd = SupervisoryCommand::decode(body);
    if (!cmd) throw util::SerializationError("bad inner command");
    o.command = *cmd;
    o.sig = crypto::Signature::decode(r);
    return o;
  });
}

util::Bytes StateUpdate::signed_bytes() const {
  util::ByteWriter w;
  w.u32(replica);
  w.u64(version);
  w.u8(kind);
  w.u64(base_version);
  w.blob(state);
  return w.take();
}

void StateUpdate::sign(const crypto::Signer& signer) {
  sig = signer.sign(signed_bytes());
}

bool StateUpdate::verify(const crypto::Verifier& verifier,
                         const std::string& identity) const {
  return verifier.verify(identity, signed_bytes(), sig);
}

util::Bytes StateUpdate::encode() const {
  util::ByteWriter w;
  w.raw(signed_bytes());
  sig.encode(w);
  return w.take();
}

std::optional<StateUpdate> StateUpdate::decode(
    std::span<const std::uint8_t> data) {
  return guarded<StateUpdate>(data, [](util::ByteReader& r) {
    StateUpdate s;
    s.replica = r.u32();
    s.version = r.u64();
    s.kind = r.u8();
    if (s.kind > StateUpdate::kDelta) {
      throw util::SerializationError("bad state-update kind");
    }
    s.base_version = r.u64();
    s.state = r.blob();
    s.sig = crypto::Signature::decode(r);
    return s;
  });
}

util::Bytes MasterOutput::encode() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.blob(body);
  return w.take();
}

std::optional<MasterOutput> MasterOutput::decode(
    std::span<const std::uint8_t> data) {
  return guarded<MasterOutput>(data, [](util::ByteReader& r) {
    MasterOutput m;
    const std::uint8_t t = r.u8();
    if (t < 1 || t > 6) throw util::SerializationError("bad output type");
    m.type = static_cast<ScadaMsgType>(t);
    m.body = r.blob();
    return m;
  });
}

}  // namespace spire::scada
