// PLC proxy (paper §II): the only component that speaks Modbus to the
// field device, over a direct cable; everything else reaches the device
// through the proxy's authenticated SCADA-level interface.
//
// Duties:
//  * polls the PLC's discrete inputs and input registers every cycle
//    and submits a signed StatusReport to the replicated masters;
//  * collects replica-signed CommandOrders and forwards a supervisory
//    command to the PLC only after f+1 distinct replicas sent an
//    identical order (output voting);
//  * runs every outbound report through the front door (rate limit,
//    queue bounds, priority shedding) and the delta batcher. With the
//    default config (unlimited rate, zero batch window) the wire
//    behavior is identical to the classic one-report-per-update proxy.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "crypto/keyring.hpp"
#include "obs/metrics.hpp"
#include "scada/client.hpp"
#include "scada/field_client.hpp"
#include "scada/front_door.hpp"
#include "scada/wire.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace spire::scada {

struct ProxyConfig {
  std::string identity;      ///< client identity, e.g. "client/proxy-phys"
  std::string device;        ///< device name it owns
  std::size_t breaker_count = 0;
  std::uint32_t f = 1;       ///< orders need f+1 matching replicas
  sim::Time poll_interval = 200 * sim::kMillisecond;
  sim::Time modbus_timeout = 100 * sim::kMillisecond;
  FrontDoorConfig front_door;  ///< admission control for outbound reports
  BatcherConfig batch;         ///< delta coalescing (window 0 = legacy)
};

struct ProxyStats {
  std::uint64_t polls = 0;
  std::uint64_t poll_failures = 0;
  std::uint64_t reports_sent = 0;
  std::uint64_t batches_sent = 0;
  std::uint64_t orders_received = 0;
  std::uint64_t orders_rejected_sig = 0;
  std::uint64_t commands_forwarded = 0;
};

class PlcProxy {
 public:
  /// `field` is the protocol adapter over the direct cable to this
  /// proxy's device (Modbus PLC or DNP3 RTU); bytes received from the
  /// device must be fed to field().on_data.
  PlcProxy(sim::Simulator& sim, ProxyConfig config,
           const crypto::Keyring& keyring, crypto::Verifier replica_verifier,
           ScadaClient::SubmitFn submit, std::unique_ptr<FieldClient> field);

  void start();
  /// Stops polling and flushes anything still waiting in the batcher so
  /// no admitted report is dropped on shutdown.
  void stop() {
    running_ = false;
    batcher_.stop();
  }

  /// Feed for replica->proxy traffic from the external network.
  void on_master_output(std::span<const std::uint8_t> data);

  [[nodiscard]] FieldClient& field() { return *field_; }
  [[nodiscard]] const ProxyStats& stats() const { return stats_; }
  [[nodiscard]] const FrontDoorStats& front_door_stats() const {
    return door_.stats();
  }
  [[nodiscard]] const std::string& device() const { return config_.device; }

 private:
  void poll_tick();
  void send_batch(std::vector<StatusReport>&& reports);
  void handle_order(const CommandOrder& order);

  sim::Simulator& sim_;
  ProxyConfig config_;
  util::Logger log_;
  crypto::Verifier replica_verifier_;
  ScadaClient client_;
  std::unique_ptr<FieldClient> field_;
  FrontDoor door_;
  DeltaBatcher batcher_;
  bool running_ = false;
  std::uint64_t next_report_seq_ = 1;
  std::vector<bool> last_breakers_;  ///< to classify report priority

  /// (issuer, command_id) -> replicas that sent a matching order.
  std::map<std::pair<std::string, std::uint64_t>,
           std::map<std::uint32_t, SupervisoryCommand>>
      order_votes_;
  std::set<std::pair<std::string, std::uint64_t>> executed_orders_;
  ProxyStats stats_;
  obs::Binder metrics_;  ///< exposes stats_ in the metrics registry
  obs::Histogram* batch_fill_;  ///< reports per flushed batch
};

}  // namespace spire::scada
