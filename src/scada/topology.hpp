// Power-topology scenarios and replicated SCADA-master state.
//
// Two scenarios from the paper:
//  * red-team (Fig. 4): one physical PLC with seven breakers feeding
//    four buildings, plus ten emulated PLCs modelling distribution to
//    substations and remote sites (§IV-A);
//  * power plant (§V): the three-breaker subset (B10-1, B57, B56) the
//    plant engineers wired to real switchgear, the same ten emulated
//    distribution PLCs, and six new emulated generation PLCs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace spire::scada {

/// Field protocol spoken on the device<->proxy cable (paper §II).
enum class FieldProtocol { kModbus, kDnp3 };

struct DeviceSpec {
  std::string name;
  std::vector<std::string> breaker_names;
  bool physical = false;  ///< backed by a real (emulated-physical) PLC
  FieldProtocol protocol = FieldProtocol::kModbus;
};

struct ScenarioSpec {
  std::string name;
  std::vector<DeviceSpec> devices;

  [[nodiscard]] const DeviceSpec* device(const std::string& name) const;
  [[nodiscard]] std::size_t total_breakers() const;

  /// The Fig. 4 red-team scenario.
  static ScenarioSpec red_team();
  /// The §V power-plant scenario.
  static ScenarioSpec power_plant();
};

/// Per-device state as known by the SCADA master.
struct DeviceState {
  std::vector<bool> breakers;
  std::vector<std::uint16_t> readings;
  std::uint64_t last_report_seq = 0;
  bool online = false;
};

/// The SCADA master's replicated view of the whole topology.
/// Deterministically serializable so replicas can vote on it and
/// checkpoint it.
class TopologyState {
 public:
  TopologyState() = default;
  explicit TopologyState(const ScenarioSpec& spec);

  /// Registers a device not described by a ScenarioSpec (used by the
  /// commercial baseline, which is configured by device links).
  void register_device(const std::string& name, std::size_t breaker_count);

  /// Applies a field report; returns true if anything changed. Reports
  /// older than the last seen sequence for the device are ignored
  /// (late/replayed poll results).
  bool apply_report(const std::string& device, std::uint64_t report_seq,
                    const std::vector<bool>& breakers,
                    const std::vector<std::uint16_t>& readings);

  [[nodiscard]] const DeviceState* device(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, DeviceState>& devices() const {
    return devices_;
  }
  [[nodiscard]] std::optional<bool> breaker(const std::string& device,
                                            std::size_t index) const;

  [[nodiscard]] util::Bytes serialize() const;
  static TopologyState deserialize(std::span<const std::uint8_t> data);
  [[nodiscard]] crypto::Digest digest() const;

  /// Digest over the operator-visible discrete state only (breaker
  /// positions + online flags), ignoring noisy analog readings. Used to
  /// decide whether an HMI push is worth sending.
  [[nodiscard]] crypto::Digest display_digest() const;

 private:
  std::map<std::string, DeviceState> devices_;
};

}  // namespace spire::scada
