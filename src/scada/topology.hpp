// Power-topology scenarios and replicated SCADA-master state.
//
// Two scenarios from the paper:
//  * red-team (Fig. 4): one physical PLC with seven breakers feeding
//    four buildings, plus ten emulated PLCs modelling distribution to
//    substations and remote sites (§IV-A);
//  * power plant (§V): the three-breaker subset (B10-1, B57, B56) the
//    plant engineers wired to real switchgear, the same ten emulated
//    distribution PLCs, and six new emulated generation PLCs.
//
// Plus the fleet scenario (ROADMAP item 2): a grid operator runs tens
// of thousands of field devices, so the master's device image is
// sharded — devices are interned to dense handles at registration
// (same trick as the overlay's NodeTable), fixed-size shards of 64
// devices carry a changed-device bitmask, and state publication
// serializes only the shards a delta actually touched instead of the
// whole image.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace spire::scada {

/// Field protocol spoken on the device<->proxy cable (paper §II).
enum class FieldProtocol { kModbus, kDnp3 };

struct DeviceSpec {
  std::string name;
  std::vector<std::string> breaker_names;
  bool physical = false;  ///< backed by a real (emulated-physical) PLC
  FieldProtocol protocol = FieldProtocol::kModbus;
};

struct ScenarioSpec {
  std::string name;
  std::vector<DeviceSpec> devices;

  [[nodiscard]] const DeviceSpec* device(const std::string& name) const;
  [[nodiscard]] std::size_t total_breakers() const;

  /// The Fig. 4 red-team scenario.
  static ScenarioSpec red_team();
  /// The §V power-plant scenario.
  static ScenarioSpec power_plant();
  /// Synthetic fleet of `devices` emulated field devices ("fd0"…),
  /// `breakers_per_device` breakers each — the 10k-device scale-out.
  static ScenarioSpec fleet(std::size_t devices,
                            std::size_t breakers_per_device = 2);
};

/// Per-device state as known by the SCADA master.
struct DeviceState {
  std::vector<bool> breakers;
  std::vector<std::uint16_t> readings;
  std::uint64_t last_report_seq = 0;
  bool online = false;
};

/// The SCADA master's replicated view of the whole topology.
/// Deterministically serializable so replicas can vote on it and
/// checkpoint it.
///
/// Devices live in a dense handle-indexed array (handle = registration
/// order). Shards of kShardSize consecutive handles each carry a
/// changed-device bitmask: apply_report flips one bit, and
/// serialize_changes() walks only non-zero masks, so building a delta
/// state publication is O(changed devices), not O(fleet).
class TopologyState {
 public:
  static constexpr std::size_t kShardBits = 6;
  static constexpr std::size_t kShardSize = std::size_t{1} << kShardBits;
  static constexpr std::uint32_t kNoDevice = 0xFFFFFFFFu;

  TopologyState() = default;
  explicit TopologyState(const ScenarioSpec& spec);

  /// Registers a device not described by a ScenarioSpec (used by the
  /// commercial baseline, which is configured by device links). Returns
  /// the device's dense handle (existing handle if already registered).
  std::uint32_t register_device(const std::string& name,
                                std::size_t breaker_count);

  /// Applies a field report; returns true if anything operator-visible
  /// changed (breaker positions or online flag). Reports older than the
  /// last seen sequence for the device are ignored (late/replayed poll
  /// results). Any accepted report marks the device changed for the
  /// next delta publication.
  bool apply_report(const std::string& device, std::uint64_t report_seq,
                    const std::vector<bool>& breakers,
                    const std::vector<std::uint16_t>& readings);

  [[nodiscard]] const DeviceState* device(const std::string& name) const;
  [[nodiscard]] const DeviceState* device_by_handle(std::uint32_t handle) const {
    return handle < states_.size() ? &states_[handle] : nullptr;
  }
  [[nodiscard]] std::optional<bool> breaker(const std::string& device,
                                            std::size_t index) const;

  [[nodiscard]] std::uint32_t handle(const std::string& name) const;
  [[nodiscard]] const std::string& name(std::uint32_t handle) const {
    return names_[handle];
  }
  [[nodiscard]] std::size_t device_count() const { return states_.size(); }
  [[nodiscard]] std::size_t shard_count() const { return changed_.size(); }

  /// Visits every device in registration order: fn(name, state).
  void for_each(
      const std::function<void(const std::string&, const DeviceState&)>& fn)
      const {
    for (std::size_t i = 0; i < states_.size(); ++i) fn(names_[i], states_[i]);
  }

  [[nodiscard]] util::Bytes serialize() const;
  static TopologyState deserialize(std::span<const std::uint8_t> data);
  [[nodiscard]] crypto::Digest digest() const;

  /// Digest over the operator-visible discrete state only (breaker
  /// positions + online flags), ignoring noisy analog readings. Used to
  /// decide whether an HMI push is worth sending.
  [[nodiscard]] crypto::Digest display_digest() const;

  // --- delta publication ------------------------------------------------
  /// True when any device changed since the last clear_changes().
  [[nodiscard]] bool has_changes() const;
  /// Number of devices currently marked changed.
  [[nodiscard]] std::size_t changed_count() const;

  /// Serializes absolute records for every changed device, walking only
  /// shards whose bitmask is non-zero. Does not clear the marks.
  [[nodiscard]] util::Bytes serialize_changes() const;
  void clear_changes();
  void mark_all_changed();

  /// Per-shard changed bitmasks; exposed so the master can carry them
  /// through snapshot/restore and a recovered replica resumes emitting
  /// byte-identical delta publications.
  [[nodiscard]] const std::vector<std::uint64_t>& changed_masks() const {
    return changed_;
  }
  void set_changed_masks(std::vector<std::uint64_t> masks);

  /// Fired for each breaker whose displayed position a delta flips:
  /// (handle, breaker index, now closed).
  using BreakerChangeFn =
      std::function<void(std::uint32_t, std::size_t, bool)>;

  /// Applies a serialize_changes() payload produced by a state with the
  /// same registration order (records are absolute, so re-applying an
  /// already-covered delta is idempotent). Throws SerializationError on
  /// malformed input or a device handle this state doesn't know — the
  /// HMI treats that as "my base is stale, request a resync".
  void apply_delta(std::span<const std::uint8_t> data,
                   const BreakerChangeFn& on_breaker_change = {});

 private:
  std::vector<DeviceState> states_;  // dense, handle-indexed
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> index_;
  std::vector<std::uint64_t> changed_;  // one bit per device, per shard
};

}  // namespace spire::scada
