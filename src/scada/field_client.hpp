// Protocol adapters between a PLC proxy and its field device. The
// proxy's job (poll state, forward voted commands) is identical for a
// Modbus PLC and a DNP3 RTU; only the wire conversation differs
// (paper §II: "their typical, insecure industrial communication
// protocols, such as Modbus or DNP3, are used only on the direct
// connection between the PLC or RTU and its proxy").
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dnp3/endpoint.hpp"
#include "modbus/endpoint.hpp"
#include "sim/simulator.hpp"

namespace spire::scada {

class FieldClient {
 public:
  struct FieldState {
    std::vector<bool> breakers;          ///< actual positions
    std::vector<std::uint16_t> readings; ///< load currents etc.
  };
  using PollHandler = std::function<void(std::optional<FieldState>)>;

  virtual ~FieldClient() = default;

  /// Reads the device's current state.
  virtual void poll(PollHandler handler, sim::Time timeout) = 0;
  /// Commands one breaker (fire and forget; the next poll confirms).
  virtual void command(std::uint16_t breaker, bool close) = 0;
  /// Bytes received from the device.
  virtual void on_data(std::span<const std::uint8_t> data) = 0;
};

/// Modbus/TCP adapter: discrete inputs + input registers, coil writes.
class ModbusFieldClient : public FieldClient {
 public:
  ModbusFieldClient(sim::Simulator& sim, const std::string& name,
                    std::size_t breaker_count, modbus::Client::SendFn send);

  void poll(PollHandler handler, sim::Time timeout) override;
  void command(std::uint16_t breaker, bool close) override;
  void on_data(std::span<const std::uint8_t> data) override;

 private:
  std::size_t breaker_count_;
  modbus::Client client_;
};

/// DNP3 adapter: class-0 integrity polls, CROB direct operates.
class Dnp3FieldClient : public FieldClient {
 public:
  Dnp3FieldClient(sim::Simulator& sim, const std::string& name,
                  std::size_t breaker_count, dnp3::Master::SendFn send,
                  std::uint16_t master_address = 100,
                  std::uint16_t outstation_address = 1);

  void poll(PollHandler handler, sim::Time timeout) override;
  void command(std::uint16_t breaker, bool close) override;
  void on_data(std::span<const std::uint8_t> data) override;

 private:
  std::size_t breaker_count_;
  dnp3::Master master_;
};

}  // namespace spire::scada
