// SCADA client-side helper: signs updates and submits them to all
// replicas (through whatever transport the deployment wires in —
// external Spines in the hardened setup, the loopback fabric in tests).
#pragma once

#include <functional>
#include <string>

#include "crypto/keyring.hpp"
#include "obs/trace.hpp"
#include "prime/messages.hpp"
#include "scada/wire.hpp"

namespace spire::scada {

class ScadaClient {
 public:
  /// `submit` must deliver the envelope bytes to every replica.
  using SubmitFn = std::function<void(const util::Bytes& envelope)>;

  ScadaClient(std::string identity, const crypto::Keyring& keyring,
              SubmitFn submit)
      : signer_(identity, keyring.identity_key(identity)),
        submit_(std::move(submit)) {}

  [[nodiscard]] const std::string& identity() const {
    return signer_.identity();
  }
  [[nodiscard]] std::uint64_t updates_sent() const { return next_seq_ - 1; }
  /// Sequence number the next send() will use. Lets callers create
  /// tracer spans for a batch before handing it to send().
  [[nodiscard]] std::uint64_t peek_seq() const { return next_seq_; }

  /// Signs and submits one SCADA payload as a Prime client update.
  std::uint64_t send(ScadaMsgType type, util::Bytes body) {
    ClientPayload payload;
    payload.type = type;
    payload.body = std::move(body);

    prime::ClientUpdate update;
    update.client = signer_.identity();
    update.client_seq = next_seq_++;
    update.payload = payload.encode();
    update.sign(signer_);

    util::ByteWriter w;
    update.encode(w);
    const prime::Envelope env =
        prime::Envelope::make(prime::MsgType::kClientUpdate, signer_, w.take());
    if (auto* tracer = obs::Tracer::current()) {
      tracer->client_submit(update.client, update.client_seq);
    }
    submit_(env.encode());
    return update.client_seq;
  }

 private:
  crypto::Signer signer_;
  SubmitFn submit_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace spire::scada
