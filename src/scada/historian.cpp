#include "scada/historian.hpp"

#include <algorithm>

namespace spire::scada {

namespace {
const std::vector<Historian::BreakerSample> kEmpty;
}

void Historian::record_transition(const std::string& device,
                                  std::size_t breaker, bool closed,
                                  sim::Time at) {
  breaker_series_[{device, breaker}].push_back(BreakerSample{at, closed});
  ++total_;
  if (!any_ || at < earliest_) {
    earliest_ = at;
    any_ = true;
  }
}

void Historian::record_reading(const std::string& device, std::size_t point,
                               std::uint16_t value, sim::Time at) {
  reading_series_[{device, point}].emplace_back(at, value);
  ++total_;
  if (!any_ || at < earliest_) {
    earliest_ = at;
    any_ = true;
  }
}

const std::vector<Historian::BreakerSample>& Historian::transitions(
    const std::string& device, std::size_t breaker) const {
  const auto it = breaker_series_.find({device, breaker});
  return it == breaker_series_.end() ? kEmpty : it->second;
}

std::optional<bool> Historian::state_at(const std::string& device,
                                        std::size_t breaker,
                                        sim::Time t) const {
  const auto& series = transitions(device, breaker);
  const auto it = std::upper_bound(
      series.begin(), series.end(), t,
      [](sim::Time value, const BreakerSample& s) { return value < s.at; });
  if (it == series.begin()) return std::nullopt;
  return std::prev(it)->closed;
}

void Historian::wipe() {
  breaker_series_.clear();
  reading_series_.clear();
  total_ = 0;
  earliest_ = 0;
  any_ = false;
}

}  // namespace spire::scada
