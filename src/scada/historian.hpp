// SCADA historian (the "PI Server" of Fig. 3): a time-series archive
// of breaker transitions and measurements, fed from a validated state
// stream (a Spire HMI's f+1-voted display, or a commercial master's
// polls).
//
// It exists in this reproduction to carry the paper's §III-A contrast:
// the SCADA master's *active* state is rebuildable from the field
// devices after an assumption breach, but the historian is a classic
// database — history that is wiped is gone forever. The historian test
// suite and the E9 bench lean on exactly that asymmetry.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace spire::scada {

class Historian {
 public:
  struct BreakerSample {
    sim::Time at = 0;
    bool closed = false;
  };

  /// Appends a breaker transition to the archive.
  void record_transition(const std::string& device, std::size_t breaker,
                         bool closed, sim::Time at);

  /// Appends an analog sample.
  void record_reading(const std::string& device, std::size_t point,
                      std::uint16_t value, sim::Time at);

  /// Full transition history of one breaker (chronological).
  [[nodiscard]] const std::vector<BreakerSample>& transitions(
      const std::string& device, std::size_t breaker) const;

  /// Breaker state as of time `t` per the archive; nullopt if the
  /// archive has no sample at or before `t`.
  [[nodiscard]] std::optional<bool> state_at(const std::string& device,
                                             std::size_t breaker,
                                             sim::Time t) const;

  [[nodiscard]] std::uint64_t total_samples() const { return total_; }
  [[nodiscard]] sim::Time earliest_sample() const { return earliest_; }

  /// The assumption breach: the archive host is destroyed. Unlike the
  /// SCADA masters, nothing can repopulate what was here (§III-A).
  void wipe();

 private:
  std::map<std::pair<std::string, std::size_t>, std::vector<BreakerSample>>
      breaker_series_;
  std::map<std::pair<std::string, std::size_t>,
           std::vector<std::pair<sim::Time, std::uint16_t>>>
      reading_series_;
  std::uint64_t total_ = 0;
  sim::Time earliest_ = 0;
  bool any_ = false;
};

}  // namespace spire::scada
