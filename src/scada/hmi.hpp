// HMI: the operator's view of the topology (Fig. 4) plus command entry.
//
// The HMI renders a topology version only after f+1 replicas delivered
// byte-identical state at that version, so a compromised master cannot
// show the operator a false picture. Display changes are timestamped
// per breaker — the hook the plant measurement device used (§V): a box
// on the screen flipped black/white with a breaker, and sensors timed
// the change.
//
// State arrives either as full snapshots or — the steady-state path at
// fleet scale — as deltas covering only the devices that changed since
// the previous publication. Delta records carry absolute device
// states, so a delta is applicable whenever the displayed version is
// at least its base version. An HMI that missed the base (restart,
// shed messages) asks the masters for a full snapshot with a
// rate-limited ResyncRequest and keeps the pending delta votes; they
// are re-examined after every adoption.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>

#include "crypto/keyring.hpp"
#include "obs/metrics.hpp"
#include "scada/client.hpp"
#include "scada/topology.hpp"
#include "scada/wire.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace spire::scada {

struct HmiConfig {
  std::string identity;  ///< e.g. "client/hmi-control-room"
  std::uint32_t f = 1;
  /// Minimum spacing between ResyncRequests (masters answer each one
  /// with a full snapshot — keep a confused HMI from flooding them).
  sim::Time resync_min_interval = sim::kSecond;
};

struct HmiStats {
  std::uint64_t updates_received = 0;
  std::uint64_t updates_rejected_sig = 0;
  std::uint64_t versions_displayed = 0;
  std::uint64_t deltas_applied = 0;
  std::uint64_t resyncs_requested = 0;
  std::uint64_t commands_issued = 0;
};

/// Fired when a displayed breaker changes: (device, index, closed, at).
using DisplayObserver = std::function<void(const std::string&, std::size_t,
                                           bool, sim::Time)>;

class Hmi {
 public:
  Hmi(sim::Simulator& sim, HmiConfig config, const crypto::Keyring& keyring,
      crypto::Verifier replica_verifier, ScadaClient::SubmitFn submit);

  /// Feed for replica->HMI traffic.
  void on_master_output(std::span<const std::uint8_t> data);

  /// Operator action: command a breaker.
  std::uint64_t command_breaker(const std::string& device,
                                std::uint16_t breaker, bool close);

  [[nodiscard]] const TopologyState& display() const { return display_; }
  [[nodiscard]] std::uint64_t displayed_version() const { return version_; }
  [[nodiscard]] sim::Time last_display_change() const { return last_change_; }
  [[nodiscard]] const HmiStats& stats() const { return stats_; }

  /// Replaces all display observers with `obs`.
  void set_display_observer(DisplayObserver obs) {
    observers_.clear();
    observers_.push_back(std::move(obs));
  }
  /// Adds an additional observer (e.g. a historian feed).
  void add_display_observer(DisplayObserver obs) {
    observers_.push_back(std::move(obs));
  }

  /// Operator restart of the HMI session: forgets the displayed version
  /// and pending votes. Used after a full-system ground-truth rebuild
  /// (paper §III-A), where the masters legitimately restart their
  /// version counters.
  void reset_display();

 private:
  /// One (version, content) vote bucket. The state bytes are stored
  /// once per distinct content, not once per replica — at fleet scale
  /// an update is KBs and f+1 copies per version would dominate HMI
  /// memory.
  struct Vote {
    std::uint8_t kind = StateUpdate::kFull;
    std::uint64_t base_version = 0;
    util::Bytes state;
    std::set<std::uint32_t> replicas;
  };

  void try_adopt();
  void adopt_full(std::uint64_t version, const TopologyState& state);
  bool adopt_delta(std::uint64_t version, const util::Bytes& payload);
  void finish_adopt(std::uint64_t version);
  void request_resync();

  /// Pending-vote bound; beyond this the oldest bucket is dropped and a
  /// resync requested instead of buffering without limit.
  static constexpr std::size_t kMaxPendingVotes = 512;

  sim::Simulator& sim_;
  HmiConfig config_;
  util::Logger log_;
  crypto::Verifier replica_verifier_;
  ScadaClient client_;

  TopologyState display_;
  std::uint64_t version_ = 0;
  sim::Time last_change_ = 0;
  sim::Time last_resync_ = 0;
  bool resync_requested_ = false;
  std::uint64_t next_command_id_ = 1;

  /// version -> content digest (over kind+base+state) -> vote.
  std::map<std::uint64_t, std::map<crypto::Digest, Vote>> votes_;

  HmiStats stats_;
  obs::Binder metrics_;  ///< exposes stats_ in the metrics registry
  std::vector<DisplayObserver> observers_;
};

}  // namespace spire::scada
