// HMI: the operator's view of the topology (Fig. 4) plus command entry.
//
// The HMI renders a topology version only after f+1 replicas delivered
// byte-identical state at that version, so a compromised master cannot
// show the operator a false picture. Display changes are timestamped
// per breaker — the hook the plant measurement device used (§V): a box
// on the screen flipped black/white with a breaker, and sensors timed
// the change.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "crypto/keyring.hpp"
#include "obs/metrics.hpp"
#include "scada/client.hpp"
#include "scada/topology.hpp"
#include "scada/wire.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace spire::scada {

struct HmiConfig {
  std::string identity;  ///< e.g. "client/hmi-control-room"
  std::uint32_t f = 1;
};

struct HmiStats {
  std::uint64_t updates_received = 0;
  std::uint64_t updates_rejected_sig = 0;
  std::uint64_t versions_displayed = 0;
  std::uint64_t commands_issued = 0;
};

/// Fired when a displayed breaker changes: (device, index, closed, at).
using DisplayObserver = std::function<void(const std::string&, std::size_t,
                                           bool, sim::Time)>;

class Hmi {
 public:
  Hmi(sim::Simulator& sim, HmiConfig config, const crypto::Keyring& keyring,
      crypto::Verifier replica_verifier, ScadaClient::SubmitFn submit);

  /// Feed for replica->HMI traffic.
  void on_master_output(std::span<const std::uint8_t> data);

  /// Operator action: command a breaker.
  std::uint64_t command_breaker(const std::string& device,
                                std::uint16_t breaker, bool close);

  [[nodiscard]] const TopologyState& display() const { return display_; }
  [[nodiscard]] std::uint64_t displayed_version() const { return version_; }
  [[nodiscard]] sim::Time last_display_change() const { return last_change_; }
  [[nodiscard]] const HmiStats& stats() const { return stats_; }

  /// Replaces all display observers with `obs`.
  void set_display_observer(DisplayObserver obs) {
    observers_.clear();
    observers_.push_back(std::move(obs));
  }
  /// Adds an additional observer (e.g. a historian feed).
  void add_display_observer(DisplayObserver obs) {
    observers_.push_back(std::move(obs));
  }

  /// Operator restart of the HMI session: forgets the displayed version
  /// and pending votes. Used after a full-system ground-truth rebuild
  /// (paper §III-A), where the masters legitimately restart their
  /// version counters.
  void reset_display();

 private:
  void adopt(std::uint64_t version, const TopologyState& state);

  sim::Simulator& sim_;
  HmiConfig config_;
  util::Logger log_;
  crypto::Verifier replica_verifier_;
  ScadaClient client_;

  TopologyState display_;
  std::uint64_t version_ = 0;
  sim::Time last_change_ = 0;
  std::uint64_t next_command_id_ = 1;

  /// version -> state digest -> replicas that vouched.
  std::map<std::uint64_t, std::map<crypto::Digest, std::map<std::uint32_t, util::Bytes>>>
      votes_;

  HmiStats stats_;
  obs::Binder metrics_;  ///< exposes stats_ in the metrics registry
  std::vector<DisplayObserver> observers_;
};

}  // namespace spire::scada
