// Proxy front door (ROADMAP item 2): the admission layer between field
// devices and the intrusion-tolerant core, modeled on Envoy's ratelimit
// filter and overload manager. A fleet proxy fronting thousands of
// devices cannot let a chattering PLC starve the Prime ordering path,
// so every arriving device delta passes three checks before it may
// occupy a slot in the delta batcher:
//
//  * a per-proxy integer token bucket (rate + burst) for telemetry;
//  * a shed watermark — when the pending-batch queue is this deep,
//    telemetry is dropped on arrival (backpressure toward the field);
//  * a hard queue capacity — the only bound that can drop critical
//    (breaker/command-response) traffic, and only when genuinely full.
//
// Critical deltas bypass the token bucket entirely: breaker movements
// are never shed before telemetry. All admission stats are plain
// uint64 fields bound into the MetricsRegistry (zero-alloc hot path).
//
// The DeltaBatcher below is the other half of the door: admitted
// deltas coalesce for up to one batch window (or until a count/byte
// budget fills) and flush as a single Prime client update, amortizing
// one ordering round and one signature across the whole batch.
// stop() performs a final synchronous flush so shutdown never silently
// drops an admitted delta.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.hpp"
#include "scada/wire.hpp"
#include "sim/simulator.hpp"

namespace spire::scada {

enum class DeltaPriority : std::uint8_t {
  kTelemetry = 0,  ///< periodic readings; sheddable under pressure
  kCritical = 1,   ///< breaker movement / command response; shed last
};

/// Integer token bucket over sim time. Token level is kept in
/// token-microseconds (1 token == sim::kSecond units) so refill math is
/// exact integer arithmetic at any tick granularity — no floating point
/// drift across replicas or runs.
class TokenBucket {
 public:
  TokenBucket() = default;
  /// rate 0 means unlimited. The bucket starts full (burst available).
  TokenBucket(std::uint64_t rate_per_sec, std::uint64_t burst)
      : rate_(rate_per_sec),
        capacity_(burst * static_cast<std::uint64_t>(sim::kSecond)),
        level_(capacity_) {}

  /// Takes one token if available at `now`. Unlimited buckets always
  /// succeed without touching state.
  bool try_take(sim::Time now) {
    if (rate_ == 0) return true;
    refill(now);
    constexpr auto kToken = static_cast<std::uint64_t>(sim::kSecond);
    if (level_ < kToken) return false;
    level_ -= kToken;
    return true;
  }

  /// Whole tokens currently available.
  [[nodiscard]] std::uint64_t available(sim::Time now) {
    if (rate_ == 0) return ~std::uint64_t{0};
    refill(now);
    return level_ / static_cast<std::uint64_t>(sim::kSecond);
  }

 private:
  void refill(sim::Time now) {
    if (now <= last_) return;
    const auto elapsed = static_cast<std::uint64_t>(now - last_);
    last_ = now;
    const std::uint64_t gained = elapsed * rate_;
    level_ = (gained >= capacity_ || capacity_ - gained < level_)
                 ? capacity_
                 : level_ + gained;
  }

  std::uint64_t rate_ = 0;      // tokens per second; 0 = unlimited
  std::uint64_t capacity_ = 0;  // token-microseconds
  std::uint64_t level_ = 0;     // token-microseconds
  sim::Time last_ = 0;
};

struct FrontDoorConfig {
  std::uint64_t rate_per_sec = 0;  ///< telemetry deltas/sec; 0 = unlimited
  std::uint64_t burst = 64;        ///< token bucket capacity
  std::size_t queue_capacity = 4096;  ///< hard bound on pending deltas
  std::size_t shed_watermark = 3072;  ///< telemetry shed threshold
};

struct FrontDoorStats {
  std::uint64_t admitted = 0;           ///< total deltas admitted
  std::uint64_t admitted_critical = 0;  ///< … of which critical
  std::uint64_t shed_rate = 0;      ///< telemetry dropped: bucket empty
  std::uint64_t shed_overload = 0;  ///< telemetry dropped: queue deep
  std::uint64_t shed_critical = 0;  ///< critical dropped: queue hard-full
  std::uint64_t queued_high_water = 0;  ///< max pending behind the door
};

class FrontDoor {
 public:
  FrontDoor() : FrontDoor(FrontDoorConfig{}) {}
  explicit FrontDoor(FrontDoorConfig config)
      : config_(config), bucket_(config.rate_per_sec, config.burst) {}

  /// Admission decision for one delta arriving at `now` with `queued`
  /// deltas already pending behind the door. Pure accept/drop — the
  /// caller enqueues on true.
  bool admit(DeltaPriority priority, sim::Time now, std::size_t queued) {
    if (priority == DeltaPriority::kCritical) {
      if (queued >= config_.queue_capacity) {
        ++stats_.shed_critical;
        return false;
      }
      ++stats_.admitted;
      ++stats_.admitted_critical;
      note_depth(queued + 1);
      return true;
    }
    if (queued >= config_.shed_watermark) {
      ++stats_.shed_overload;
      return false;
    }
    if (!bucket_.try_take(now)) {
      ++stats_.shed_rate;
      return false;
    }
    ++stats_.admitted;
    note_depth(queued + 1);
    return true;
  }

  [[nodiscard]] const FrontDoorStats& stats() const { return stats_; }
  [[nodiscard]] const FrontDoorConfig& config() const { return config_; }

  /// Exposes the admission counters under `binder`'s prefix.
  void bind(obs::Binder& binder) const {
    binder.counter("fd_admitted", &stats_.admitted);
    binder.counter("fd_admitted_critical", &stats_.admitted_critical);
    binder.counter("fd_shed_rate", &stats_.shed_rate);
    binder.counter("fd_shed_overload", &stats_.shed_overload);
    binder.counter("fd_shed_critical", &stats_.shed_critical);
    binder.counter("fd_queued_high_water", &stats_.queued_high_water);
  }

 private:
  void note_depth(std::size_t depth) {
    if (depth > stats_.queued_high_water) stats_.queued_high_water = depth;
  }

  FrontDoorConfig config_;
  TokenBucket bucket_;
  mutable FrontDoorStats stats_;
};

struct BatcherConfig {
  sim::Time window = 0;      ///< coalescing window; 0 = flush per delta
  std::size_t max_batch = 256;       ///< count budget per flush
  std::size_t max_bytes = 64 * 1024; ///< encoded-byte budget per flush
};

/// Coalesces admitted StatusReports and flushes them as one batch when
/// the window expires or a budget fills. With window 0 every enqueue
/// flushes synchronously — the legacy one-report-per-update path.
class DeltaBatcher {
 public:
  using FlushFn = std::function<void(std::vector<StatusReport>&&)>;

  DeltaBatcher(sim::Simulator& sim, BatcherConfig config, FlushFn flush)
      : sim_(sim), config_(config), flush_(std::move(flush)) {}

  void enqueue(StatusReport report) {
    pending_bytes_ += encoded_size(report);
    pending_.push_back(std::move(report));
    if (config_.window == 0 || pending_.size() >= config_.max_batch ||
        pending_bytes_ >= config_.max_bytes) {
      flush();
      return;
    }
    if (pending_.size() == 1) arm_timer();
  }

  /// Hands all pending reports to the flush callback immediately and
  /// invalidates any armed window timer.
  void flush() {
    ++epoch_;  // cancels the armed window timer, if any
    if (pending_.empty()) return;
    std::vector<StatusReport> batch;
    batch.swap(pending_);
    pending_bytes_ = 0;
    flush_(std::move(batch));
  }

  /// Final flush: nothing admitted before stop() is ever dropped.
  void stop() {
    stopped_ = true;
    flush();
  }

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] bool stopped() const { return stopped_; }

 private:
  static std::size_t encoded_size(const StatusReport& r) {
    return 4 + r.device.size() + 8 + 4 + r.breakers.size() + 4 +
           2 * r.readings.size();
  }

  void arm_timer() {
    const std::uint64_t epoch = epoch_;
    sim_.schedule_after(config_.window, [this, epoch] {
      if (stopped_ || epoch != epoch_) return;
      flush();
    });
  }

  sim::Simulator& sim_;
  BatcherConfig config_;
  FlushFn flush_;
  std::vector<StatusReport> pending_;
  std::size_t pending_bytes_ = 0;
  std::uint64_t epoch_ = 0;
  bool stopped_ = false;
};

}  // namespace spire::scada
