#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace spire::obs {

namespace {

constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount);

std::uint64_t span_key(std::uint32_t client, std::uint64_t seq) {
  // Sequences stay far below 2^40 in any run this tracer can hold.
  return (static_cast<std::uint64_t>(client) << 40) |
         (seq & ((std::uint64_t{1} << 40) - 1));
}

}  // namespace

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kPlcChange: return "plc_change";
    case Stage::kSubmit: return "submit";
    case Stage::kReplicaRecv: return "replica_recv";
    case Stage::kPoRequest: return "po_request";
    case Stage::kPrePrepare: return "preprepare";
    case Stage::kCommit: return "commit";
    case Stage::kExecute: return "execute";
    case Stage::kPublish: return "publish";
    case Stage::kHmiRecv: return "hmi_recv";
    case Stage::kHmiDisplay: return "hmi_display";
    case Stage::kCount: break;
  }
  return "?";
}

Tracer* Tracer::current_ = nullptr;
Tracer::Router Tracer::router_ = nullptr;
void* Tracer::router_ctx_ = nullptr;

Tracer::Tracer(std::function<std::uint64_t()> time_source)
    : time_(std::move(time_source)) {
  // Prefault the span store up front: growing it lazily puts soft page
  // faults and realloc copies inside the instrumented hot paths, which
  // is most of what the obs_overhead gate would then measure.
  spans_.resize(kPrefaultSpans);
  spans_.clear();
  auto& registry = MetricsRegistry::current();
  order_latency_us_ = registry.histogram("trace.submit_to_execute_us");
  e2e_latency_us_ = registry.histogram("trace.plc_to_display_us");
}

std::uint64_t Tracer::now() const {
  if (time_) return time_();
  const auto& fallback = util::LogConfig::instance().time_source;
  return fallback ? fallback() : 1;
}

std::uint32_t Tracer::intern(const std::string& client) {
  // Fingerprint on length + last byte: distinct client identities in a
  // deployment ("client/hmi0", "client/proxy-plc-phys", …) differ in at
  // least one of the two, so the memo rarely thrashes.
  const std::size_t slot =
      (client.size() * 131 +
       (client.empty() ? 0u : static_cast<unsigned char>(client.back()))) &
      (intern_memo_.size() - 1);
  InternMemo& memo = intern_memo_[slot];
  if (memo.name != nullptr && *memo.name == client) return memo.id;
  auto [it, inserted] = client_ids_.try_emplace(
      client, static_cast<std::uint32_t>(client_names_.size()));
  if (inserted) client_names_.push_back(client);
  memo.name = &it->first;  // unordered_map keys are node-stable
  memo.id = it->second;
  return it->second;
}

std::uint32_t Tracer::upsert_index(const std::string& client,
                                   std::uint64_t client_seq) {
  const std::uint32_t client_id = intern(client);
  const std::uint64_t key = span_key(client_id, client_seq);
  if (const std::uint32_t* index = by_key_.find(key)) return *index;
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return kNoSpan;
  }
  const auto index = static_cast<std::uint32_t>(spans_.size());
  by_key_.lookup_or_insert(key, index);
  spans_.emplace_back();
  spans_.back().client = client_id;
  spans_.back().client_seq = client_seq;
  return index;
}

Span* Tracer::upsert(const std::string& client, std::uint64_t client_seq) {
  const std::uint32_t index = upsert_index(client, client_seq);
  return index == kNoSpan ? nullptr : &spans_[index];
}

void Tracer::record(Span& span, Stage stage, std::uint64_t at) {
  const auto i = static_cast<std::size_t>(stage);
  if (span.hits[i] == 0 || at < span.at[i]) span.at[i] = at;
  ++span.hits[i];
}

void Tracer::record_fan(std::uint32_t index, Stage stage, std::uint64_t at) {
  Span& span = spans_[index];
  record(span, stage, at);
  // Batched updates fan every pipeline stage out to their per-delta
  // member spans (contiguous, so this is a linear walk).
  for (std::uint32_t i = 0; i < span.member_count; ++i) {
    record(spans_[span.first_member + i], stage, at);
  }
}

Tracer::DeviceTrace& Tracer::device_trace(const std::string& device) {
  auto [it, inserted] = devices_.try_emplace(device);
  if (inserted) {
    it->second.id = static_cast<std::uint32_t>(device_names_.size());
    device_names_.push_back(device);
  }
  return it->second;
}

void Tracer::plc_change(const std::string& device, std::size_t breaker) {
  DeviceTrace& trace = device_trace(device);
  if (trace.pending.size() <= breaker) {
    trace.pending.resize(breaker + 1, 0);
    trace.change_at.resize(breaker + 1, 0);
  }
  if (!trace.pending[breaker]) {  // keep the earliest unreported change
    trace.pending[breaker] = 1;
    trace.change_at[breaker] = now();
  }
}

void Tracer::proxy_report(const std::string& device, const std::string& client,
                          std::uint64_t client_seq,
                          const std::vector<bool>& breakers) {
  DeviceTrace& trace = device_trace(device);
  std::uint64_t earliest = 0;
  bool found = false;
  for (std::size_t i = 0; i < breakers.size() && i < trace.pending.size();
       ++i) {
    if (!trace.pending[i]) continue;
    const bool changed = !trace.has_last || i >= trace.last_reported.size() ||
                         trace.last_reported[i] != breakers[i];
    if (!changed) continue;
    if (!found || trace.change_at[i] < earliest) earliest = trace.change_at[i];
    found = true;
    trace.pending[i] = 0;
  }
  trace.last_reported = breakers;
  trace.has_last = true;
  Span* span = upsert(client, client_seq);
  if (span == nullptr) return;
  if (span->device == Span::kNoDevice) span->device = trace.id;
  if (found) record(*span, Stage::kPlcChange, earliest);
}

void Tracer::proxy_batch_delta(const std::string& device,
                               const std::string& client,
                               std::uint64_t client_seq,
                               const std::vector<bool>& breakers) {
  const std::uint32_t parent_index = upsert_index(client, client_seq);
  if (parent_index == kNoSpan) return;
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return;
  }
  DeviceTrace& trace = device_trace(device);
  std::uint64_t earliest = 0;
  bool found = false;
  for (std::size_t i = 0; i < breakers.size() && i < trace.pending.size();
       ++i) {
    if (!trace.pending[i]) continue;
    const bool changed = !trace.has_last || i >= trace.last_reported.size() ||
                         trace.last_reported[i] != breakers[i];
    if (!changed) continue;
    if (!found || trace.change_at[i] < earliest) earliest = trace.change_at[i];
    found = true;
    trace.pending[i] = 0;
  }
  trace.last_reported = breakers;
  trace.has_last = true;

  const auto member_index = static_cast<std::uint32_t>(spans_.size());
  {
    Span& parent = spans_[parent_index];
    if (parent.member_count == 0) {
      parent.first_member = member_index;
    } else if (parent.first_member + parent.member_count != member_index) {
      return;  // members must be contiguous; drop an interleaved add
    }
    ++parent.member_count;
  }
  spans_.emplace_back();  // may grow: re-fetch parent afterwards
  Span& member = spans_.back();
  const Span& parent = spans_[parent_index];
  member.parent = parent_index;
  member.client = parent.client;
  member.client_seq = parent.client_seq;
  member.device = trace.id;
  if (found) record(member, Stage::kPlcChange, earliest);
}

void Tracer::client_submit(const std::string& client,
                           std::uint64_t client_seq) {
  const std::uint32_t index = upsert_index(client, client_seq);
  if (index != kNoSpan) record_fan(index, Stage::kSubmit, now());
}

void Tracer::replica_recv(const std::string& client,
                          std::uint64_t client_seq) {
  const std::uint32_t index = upsert_index(client, client_seq);
  if (index != kNoSpan) record_fan(index, Stage::kReplicaRecv, now());
}

void Tracer::po_request(const std::string& client, std::uint64_t client_seq) {
  const std::uint32_t index = upsert_index(client, client_seq);
  if (index != kNoSpan) record_fan(index, Stage::kPoRequest, now());
}

void Tracer::executed(const std::string& client, std::uint64_t client_seq,
                      std::uint64_t pp_at, std::uint64_t commit_at) {
  const std::uint32_t index = upsert_index(client, client_seq);
  if (index == kNoSpan) return;
  if (pp_at != 0) record_fan(index, Stage::kPrePrepare, pp_at);
  if (commit_at != 0) record_fan(index, Stage::kCommit, commit_at);
  Span& span = spans_[index];
  const bool first = !span.has(Stage::kExecute);
  const std::uint64_t at = now();
  record_fan(index, Stage::kExecute, at);
  if (first && span.has(Stage::kSubmit) && order_latency_us_ != nullptr) {
    order_latency_us_->record(at - span.time(Stage::kSubmit));
  }
}

void Tracer::master_publish(std::uint64_t version, const std::string& client,
                            std::uint64_t client_seq) {
  const std::uint32_t index = upsert_index(client, client_seq);
  if (index == kNoSpan) return;
  record_fan(index, Stage::kPublish, now());
  spans_[index].version = version;
  by_version_.lookup_or_insert(version, index);
}

void Tracer::hmi_recv(std::uint64_t version) {
  const std::uint32_t* index = by_version_.find(version);
  if (index == nullptr) return;
  record_fan(*index, Stage::kHmiRecv, now());
}

void Tracer::record_display(Span& span, std::uint64_t at) {
  const bool first = !span.has(Stage::kHmiDisplay);
  record(span, Stage::kHmiDisplay, at);
  if (first && span.has(Stage::kPlcChange) && e2e_latency_us_ != nullptr) {
    e2e_latency_us_->record(at - span.time(Stage::kPlcChange));
  }
}

void Tracer::hmi_display(std::uint64_t version) {
  const std::uint32_t* index = by_version_.find(version);
  if (index == nullptr) return;
  const std::uint64_t at = now();
  Span& span = spans_[*index];
  record_display(span, at);
  for (std::uint32_t i = 0; i < span.member_count; ++i) {
    record_display(spans_[span.first_member + i], at);
  }
}

std::vector<Tracer::Leg> Tracer::breakdown() const {
  std::vector<Leg> legs = {
      {"plc->submit", Stage::kPlcChange, Stage::kSubmit, {}},
      {"submit->replica_recv", Stage::kSubmit, Stage::kReplicaRecv, {}},
      {"replica_recv->po_request", Stage::kReplicaRecv, Stage::kPoRequest, {}},
      {"po_request->preprepare", Stage::kPoRequest, Stage::kPrePrepare, {}},
      {"preprepare->commit", Stage::kPrePrepare, Stage::kCommit, {}},
      {"commit->execute", Stage::kCommit, Stage::kExecute, {}},
      {"execute->publish", Stage::kExecute, Stage::kPublish, {}},
      {"publish->hmi_recv", Stage::kPublish, Stage::kHmiRecv, {}},
      {"hmi_recv->display", Stage::kHmiRecv, Stage::kHmiDisplay, {}},
      {"submit->execute (ordered)", Stage::kSubmit, Stage::kExecute, {}},
      {"plc->display (end-to-end)", Stage::kPlcChange, Stage::kHmiDisplay, {}},
  };
  for (const Span& span : spans_) {
    for (Leg& leg : legs) {
      if (!span.has(leg.from) || !span.has(leg.to)) continue;
      const std::uint64_t a = span.time(leg.from);
      const std::uint64_t b = span.time(leg.to);
      if (b < a) continue;
      leg.samples_ms.push_back(static_cast<double>(b - a) / 1000.0);
    }
  }
  return legs;
}

namespace {

/// True when every listed stage is present with non-decreasing times.
bool chain_ok(const Span& span, const Stage* stages, std::size_t n) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!span.has(stages[i])) return false;
    const std::uint64_t t = span.time(stages[i]);
    if (i > 0 && t < prev) return false;
    prev = t;
  }
  return true;
}

}  // namespace

Tracer::Completeness Tracer::completeness(Stage from) const {
  static constexpr Stage kOrderedChain[] = {
      Stage::kPlcChange,  Stage::kSubmit, Stage::kReplicaRecv,
      Stage::kPoRequest,  Stage::kPrePrepare, Stage::kCommit,
      Stage::kExecute,    Stage::kPublish, Stage::kHmiRecv,
      Stage::kHmiDisplay,
  };
  std::size_t start = 0;
  while (start + 1 < kStageCount && kOrderedChain[start] != from) ++start;
  const std::size_t exec_end = static_cast<std::size_t>(Stage::kExecute) + 1;

  Completeness result;
  for (const Span& span : spans_) {
    // Member spans are accounted under their batch parent, not as
    // standalone executed updates.
    if (span.parent != Span::kNoParent) continue;
    if (span.has(Stage::kExecute)) {
      ++result.executed;
      if (chain_ok(span, kOrderedChain + start, exec_end - start)) {
        ++result.executed_complete;
      }
      if (span.member_count > 0) {
        result.deltas_expected += span.member_count;
        for (std::uint32_t i = 0; i < span.member_count; ++i) {
          const Span& member = spans_[span.first_member + i];
          if (chain_ok(member, kOrderedChain + start, exec_end - start)) {
            ++result.deltas_complete;
          }
        }
      } else if (span.device != Span::kNoDevice) {
        // Unbatched device-tagged update: counts as one delta.
        ++result.deltas_expected;
        if (chain_ok(span, kOrderedChain + start, exec_end - start)) {
          ++result.deltas_complete;
        }
      }
    }
    if (span.has(Stage::kHmiDisplay)) {
      ++result.displayed;
      // Display-path spans that came from a field change must chain all
      // the way from the PLC; command-origin spans start at submit.
      const std::size_t disp_start =
          span.has(Stage::kPlcChange) ? 0 : std::max<std::size_t>(start, 1);
      if (chain_ok(span, kOrderedChain + disp_start,
                   kStageCount - disp_start)) {
        ++result.displayed_complete;
      }
    }
  }
  return result;
}

void Tracer::attack_begin_marker(const std::string& name, std::uint64_t at) {
  markers_.push_back(
      Marker{Marker::Kind::kAttackBegin, at, name, {}, {}, 0});
}

void Tracer::attack_end_marker(const std::string& name, std::uint64_t at) {
  markers_.push_back(Marker{Marker::Kind::kAttackEnd, at, name, {}, {}, 0});
}

void Tracer::alert_marker(const std::string& network, const std::string& kind,
                          const std::string& detector, double score,
                          std::uint64_t at) {
  markers_.push_back(
      Marker{Marker::Kind::kAlert, at, kind, network, detector, score});
}

bool Tracer::write_jsonl(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  for (const Span& span : spans_) {
    std::fprintf(out, "{\"client\":\"%s\",\"seq\":%" PRIu64,
                 client_names_[span.client].c_str(), span.client_seq);
    if (span.device != Span::kNoDevice) {
      std::fprintf(out, ",\"device\":\"%s\"",
                   device_names_[span.device].c_str());
    }
    if (span.version != 0) {
      std::fprintf(out, ",\"version\":%" PRIu64, span.version);
    }
    std::fputs(",\"stages\":{", out);
    bool first = true;
    for (std::size_t i = 0; i < kStageCount; ++i) {
      if (span.hits[i] == 0) continue;
      std::fprintf(out, "%s\"%s\":{\"us\":%" PRIu64 ",\"n\":%u}",
                   first ? "" : ",", to_string(static_cast<Stage>(i)),
                   span.at[i], span.hits[i]);
      first = false;
    }
    std::fputs("}}\n", out);
  }
  for (const Marker& m : markers_) {
    const char* kind = m.kind == Marker::Kind::kAttackBegin ? "attack-begin"
                       : m.kind == Marker::Kind::kAttackEnd ? "attack-end"
                                                            : "alert";
    std::fprintf(out, "{\"marker\":\"%s\",\"us\":%" PRIu64 ",\"label\":\"%s\"",
                 kind, m.at, m.label.c_str());
    if (!m.network.empty()) {
      std::fprintf(out, ",\"network\":\"%s\"", m.network.c_str());
    }
    if (!m.detector.empty()) {
      std::fprintf(out, ",\"detector\":\"%s\",\"score\":%.3f",
                   m.detector.c_str(), m.score);
    }
    std::fputs("}\n", out);
  }
  std::fclose(out);
  return true;
}

ScopedTracer::ScopedTracer(std::function<std::uint64_t()> time_source)
    : tracer_(std::move(time_source)), previous_(Tracer::current_) {
  Tracer::current_ = &tracer_;
}

ScopedTracer::~ScopedTracer() {
  Tracer::current_ = previous_;
}

}  // namespace spire::obs
