// End-to-end update tracing (DESIGN.md §7).
//
// A Tracer records per-update spans as updates flow down the paper's
// Fig. 2 path: PLC → proxy → external Spines → Prime ordering
// (PO-Request → Pre-Prepare → Commit → execute) → Spines → HMI. Spans
// are keyed by the update's origin (client identity, client sequence) —
// the same pair Prime preorders by — and each stage keeps the earliest
// timestamp seen across replicas plus an occurrence count.
//
// Tracing is off by default: Tracer::current() is nullptr and every
// hook site is a single pointer test. Benches and tests enable it with
// a ScopedTracer. Completed runs export spans as JSONL and a per-leg
// latency breakdown (the soak's p50/p90/p99 per pipeline stage).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace spire::obs {

class Histogram;

enum class Stage : std::uint8_t {
  kPlcChange = 0,   // breaker moved in the field
  kSubmit,          // client signed + submitted the update
  kReplicaRecv,     // first responsible replica received it
  kPoRequest,       // first PO-Request disseminating it
  kPrePrepare,      // earliest Pre-Prepare slot that executed it
  kCommit,          // earliest replica commit of that slot
  kExecute,         // first replica applied it to the SCADA state
  kPublish,         // a master pushed the state version carrying it
  kHmiRecv,         // first HMI received that state version
  kHmiDisplay,      // an HMI adopted (f+1-voted) and displayed it
  kCount,
};

[[nodiscard]] const char* to_string(Stage stage);

// Spans are created once per ordered update on the hot path, so the
// struct stays trivially copyable (interned ids, no strings): vector
// growth is a memcpy instead of element-wise moves.
//
// A batched client update (many device deltas coalesced into one Prime
// ordering round) gets one parent span plus one member span per
// constituent delta. Members are allocated contiguously right after
// each other, so the parent only stores (first_member, member_count)
// and stage hooks fan out to members with an indexed loop — no extra
// map lookups on the hot path. Member spans carry their own device and
// kPlcChange time; every other stage is inherited from the parent.
struct Span {
  static constexpr std::uint32_t kNoDevice = 0xFFFFFFFFu;
  static constexpr std::uint32_t kNoParent = 0xFFFFFFFFu;

  std::uint32_t client = 0;     // interned identity, see Tracer::client_name
  std::uint32_t device = kNoDevice;  // interned, see Tracer::device_name
  std::uint64_t client_seq = 0;
  std::uint64_t version = 0;    // SCADA state version that published it
  std::uint32_t parent = kNoParent;  // span index of the batch parent
  std::uint32_t first_member = 0;    // first member span index
  std::uint32_t member_count = 0;    // batched deltas under this span
  // Earliest time per stage; valid only where hits[stage] > 0 (spans
  // can legitimately carry stage timestamps of 0 at sim start).
  std::array<std::uint64_t, static_cast<std::size_t>(Stage::kCount)> at{};
  std::array<std::uint32_t, static_cast<std::size_t>(Stage::kCount)> hits{};

  [[nodiscard]] bool has(Stage stage) const {
    return hits[static_cast<std::size_t>(stage)] > 0;
  }
  [[nodiscard]] std::uint64_t time(Stage stage) const {
    return at[static_cast<std::size_t>(stage)];
  }
};
static_assert(std::is_trivially_copyable_v<Span>);

/// Insert-only open-addressing map (u64 key → u32 value). Span hooks
/// fire several times per ordered update, and node-based unordered_map
/// lookups were the dominant cost in the obs_overhead gate; linear
/// probing over a flat array keeps a hook to ~one cache-line touch.
/// Keys are span keys (client<<40|seq) or state versions — never ~0.
class FlatMap64 {
 public:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  FlatMap64() : keys_(kInitialCap, kEmpty), vals_(kInitialCap) {}

  /// Pointer to the value for `key`, or nullptr when absent.
  [[nodiscard]] const std::uint32_t* find(std::uint64_t key) const {
    std::size_t i = index_of(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return &vals_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  /// Value already mapped to `key`, or `value` after inserting it
  /// (try_emplace semantics: an existing mapping wins). Second element
  /// is true when the insert happened.
  std::pair<std::uint32_t, bool> lookup_or_insert(std::uint64_t key,
                                                  std::uint32_t value) {
    std::size_t i = index_of(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return {vals_[i], false};
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    vals_[i] = value;
    ++size_;
    if (size_ * 2 > mask_ + 1) grow();  // keep load factor <= 1/2
    return {value, true};
  }

 private:
  // Big enough that typical runs (tens of thousands of spans at load
  // factor 1/2) never grow: rebuilds and their page faults would land
  // in the middle of instrumented hot paths.
  static constexpr std::size_t kInitialCap = 1u << 16;

  [[nodiscard]] std::size_t index_of(std::uint64_t key) const {
    // Fibonacci mix; bits 32+ spread low-entropy keys across the table.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) &
           mask_;
  }

  void grow() {
    const std::vector<std::uint64_t> old_keys = std::move(keys_);
    const std::vector<std::uint32_t> old_vals = std::move(vals_);
    const std::size_t cap = (mask_ + 1) * 2;
    keys_.assign(cap, kEmpty);
    vals_.assign(cap, 0);
    mask_ = cap - 1;
    for (std::size_t j = 0; j < old_keys.size(); ++j) {
      if (old_keys[j] == kEmpty) continue;
      std::size_t i = index_of(old_keys[j]);
      while (keys_[i] != kEmpty) i = (i + 1) & mask_;
      keys_[i] = old_keys[j];
      vals_[i] = old_vals[j];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> vals_;
  std::size_t mask_ = kInitialCap - 1;
  std::size_t size_ = 0;
};

class Tracer {
 public:
  /// With no time source, falls back to util::LogConfig's (the sim
  /// installs one via LogClockScope); failing that, a constant — stage
  /// ordering degenerates but hook cost stays measurable.
  explicit Tracer(std::function<std::uint64_t()> time_source = {});

  /// nullptr unless a ScopedTracer is active — hot paths test this once
  /// (plus one predictable branch for the shard router, below).
  static Tracer* current() {
    return router_ != nullptr ? router_(router_ctx_) : current_;
  }

  /// Shard routing (DESIGN.md §8): a parallel-kernel bench with one
  /// traced instance per shard installs a router so hooks resolve to
  /// the executing shard's tracer instead of the single global one.
  /// A plain function pointer + context keeps the uninstalled hot path
  /// at one branch. Install/uninstall from driver context only; the
  /// router itself must be safe to call from worker threads (it
  /// typically just indexes a per-shard array by
  /// Simulator::current_shard()).
  using Router = Tracer* (*)(void* ctx);
  static void set_router(Router router, void* ctx) {
    router_ = router;
    router_ctx_ = ctx;
  }

  // --- hooks (called from instrumented components) -------------------
  void plc_change(const std::string& device, std::size_t breaker);
  /// Proxy built a StatusReport: links pending field changes to the
  /// (client, seq) span and remembers the reported breaker image.
  void proxy_report(const std::string& device, const std::string& client,
                    std::uint64_t client_seq,
                    const std::vector<bool>& breakers);
  /// Proxy coalesced one device delta into the batch that will be
  /// submitted as (client, client_seq): appends a member span under
  /// that parent, tagged with the device and any pending field change.
  /// All members of one batch must be added back-to-back (one flush
  /// callback), before or after the parent's own stage hooks.
  void proxy_batch_delta(const std::string& device, const std::string& client,
                         std::uint64_t client_seq,
                         const std::vector<bool>& breakers);
  void client_submit(const std::string& client, std::uint64_t client_seq);
  void replica_recv(const std::string& client, std::uint64_t client_seq);
  void po_request(const std::string& client, std::uint64_t client_seq);
  /// Replica executed the update in a slot Pre-Prepared at pp_at and
  /// committed at commit_at (0 = unknown, e.g. adopted via view change).
  void executed(const std::string& client, std::uint64_t client_seq,
                std::uint64_t pp_at, std::uint64_t commit_at);
  void master_publish(std::uint64_t version, const std::string& client,
                      std::uint64_t client_seq);
  void hmi_recv(std::uint64_t version);
  void hmi_display(std::uint64_t version);

  // --- markers (security timeline) -----------------------------------
  // Point events interleaved with the update spans in the JSONL export:
  // red-team attack intervals and IDS alerts, so one trace file shows
  // the attack → alert chain next to the SCADA data path it rode over.
  // Markers are rare (per attack / per alert, never per frame), so
  // they carry owned strings.
  struct Marker {
    enum class Kind : std::uint8_t { kAttackBegin, kAttackEnd, kAlert };
    Kind kind = Kind::kAlert;
    std::uint64_t at = 0;
    std::string label;     ///< attack name, or alert kind
    std::string network;   ///< alert: capture network (else empty)
    std::string detector;  ///< alert: attributing detector (else empty)
    double score = 0;
  };
  void attack_begin_marker(const std::string& name, std::uint64_t at);
  void attack_end_marker(const std::string& name, std::uint64_t at);
  void alert_marker(const std::string& network, const std::string& kind,
                    const std::string& detector, double score,
                    std::uint64_t at);
  [[nodiscard]] const std::vector<Marker>& markers() const { return markers_; }

  // --- results -------------------------------------------------------
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const std::string& client_name(std::uint32_t id) const {
    return client_names_[id];
  }
  [[nodiscard]] const std::string& device_name(std::uint32_t id) const {
    return device_names_[id];
  }
  [[nodiscard]] std::uint64_t now() const;

  struct Leg {
    const char* name;
    Stage from, to;
    std::vector<double> samples_ms;
  };
  /// Per-leg latency samples over all spans where both endpoints exist.
  [[nodiscard]] std::vector<Leg> breakdown() const;

  struct Completeness {
    std::uint64_t executed = 0;           // spans that reached kExecute
    std::uint64_t executed_complete = 0;  // … with the full ordered chain
    std::uint64_t displayed = 0;          // spans that reached kHmiDisplay
    std::uint64_t displayed_complete = 0; // … with the full PLC→HMI chain
    // Per-delta accounting: batching must not mask a lost device
    // change, so executed updates are also counted by constituent —
    // each member of a batched span, and each unbatched device-tagged
    // span, must individually carry a complete ordered chain.
    std::uint64_t deltas_expected = 0;
    std::uint64_t deltas_complete = 0;
  };
  /// Chain completeness. `from` is the first required stage for the
  /// executed chain (kSubmit when every client goes through
  /// ScadaClient; kReplicaRecv for raw-envelope benches). Stages must
  /// be present and non-decreasing in time.
  [[nodiscard]] Completeness completeness(Stage from = Stage::kSubmit) const;

  /// One JSON object per span. Returns false if the file can't open.
  bool write_jsonl(const std::string& path) const;

 private:
  friend class ScopedTracer;

  static constexpr std::uint32_t kNoSpan = 0xFFFFFFFFu;
  std::uint32_t intern(const std::string& client);
  std::uint32_t upsert_index(const std::string& client,
                             std::uint64_t client_seq);
  Span* upsert(const std::string& client, std::uint64_t client_seq);
  void record(Span& span, Stage stage, std::uint64_t at);
  /// record() on the span at `index` plus all its member spans.
  void record_fan(std::uint32_t index, Stage stage, std::uint64_t at);
  void record_display(Span& span, std::uint64_t at);

  static constexpr std::size_t kMaxSpans = 1u << 20;  // runaway-soak bound
  static constexpr std::size_t kPrefaultSpans = 1u << 15;  // ~5 MB

  std::function<std::uint64_t()> time_;
  std::vector<Span> spans_;  // hooks address spans by index, never pointer
  std::vector<Marker> markers_;
  FlatMap64 by_key_;  // client<<40|seq → span index
  std::unordered_map<std::string, std::uint32_t> client_ids_;
  std::vector<std::string> client_names_;
  // Direct-mapped memo over client_ids_: hooks re-intern the same few
  // client identities millions of times, and the full string hash was
  // the next-largest term in the obs_overhead gate after the span maps.
  // Entries point at client_ids_ keys (node-stable), so hits and misses
  // are both allocation-free.
  struct InternMemo {
    const std::string* name = nullptr;
    std::uint32_t id = 0;
  };
  std::array<InternMemo, 8> intern_memo_{};
  FlatMap64 by_version_;  // SCADA state version → span index
  std::uint64_t dropped_ = 0;

  struct DeviceTrace {
    std::uint32_t id = 0;  // index into device_names_
    std::vector<std::uint64_t> change_at;  // earliest unconsumed change
    std::vector<std::uint8_t> pending;
    std::vector<bool> last_reported;
    bool has_last = false;
  };
  DeviceTrace& device_trace(const std::string& device);
  std::unordered_map<std::string, DeviceTrace> devices_;
  std::vector<std::string> device_names_;

  // Summary histograms in the current metrics registry (may be null if
  // registered histograms are unwanted).
  Histogram* order_latency_us_ = nullptr;  // submit → execute
  Histogram* e2e_latency_us_ = nullptr;    // plc change → HMI display

  static Tracer* current_;
  static Router router_;
  static void* router_ctx_;
};

/// Enables tracing for the scope's lifetime. Construct it *after* any
/// ScopedRegistry so the tracer's summary histograms land in the
/// scoped registry.
class ScopedTracer {
 public:
  explicit ScopedTracer(std::function<std::uint64_t()> time_source = {});
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

  Tracer& tracer() { return tracer_; }

 private:
  Tracer tracer_;
  Tracer* previous_;
};

}  // namespace spire::obs
