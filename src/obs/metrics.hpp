// Unified metrics registry (DESIGN.md §7).
//
// Components register named counters, gauges, and log-bucketed
// histograms once, up front, and receive raw handles (pointers into
// stable-address storage). The hot path is then a plain `++*handle` or
// an array increment — no string lookups, no hashing, no allocation.
// Existing per-component `*Stats` structs migrate without changing
// their fields or accessors: a `Binder` exposes each `uint64_t` field
// to the registry by pointer, read only at snapshot time.
//
// Snapshots serialize to JSON (machine) or an aligned text table
// (human), stamped with simulated time when a time source is
// installed. Registration order is deterministic for a deterministic
// run, so two identical sim runs produce byte-identical snapshots.
//
// Parallel-kernel contract (DESIGN.md §8): the registry is shard-safe
// by ownership, not by atomics. Handles are raw pointers owned by the
// component that registered them, and a component lives on exactly one
// shard, so every hot-path increment is a plain single-threaded store;
// the registry only walks the handles at snapshot time, from driver
// context, after the kernel's window barrier has already ordered all
// shard writes before the driver's reads. Per-shard instances (fleet
// benches) each build under their own ScopedRegistry and are merged —
// or emitted side by side — at snapshot time.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace spire::obs {

/// Log-bucketed histogram of unsigned 64-bit samples (microseconds on
/// the tracing paths, but unit-agnostic). Values below kLinear land in
/// exact unit buckets; above that each power-of-two octave is split
/// into kSub sub-buckets, bounding the relative quantile error at
/// ~1/kSub (6.25%). record() is allocation-free and branch-light.
class Histogram {
 public:
  static constexpr std::uint32_t kLinear = 64;  // exact below this value
  static constexpr std::uint32_t kSub = 16;     // sub-buckets per octave
  static constexpr std::uint32_t kLinearBits = 6;  // log2(kLinear)
  static constexpr std::uint32_t kSubBits = 4;     // log2(kSub)
  static constexpr std::uint32_t kBuckets =
      kLinear + (64 - kLinearBits) * kSub;

  void record(std::uint64_t value) {
    ++buckets_[bucket_of(value)];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return max_; }

  /// Approximate quantile (q in [0,1]): midpoint of the bucket holding
  /// the rank-q sample. Exact below kLinear; within ~6.25% above.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  void reset();

  static std::uint32_t bucket_of(std::uint64_t value);
  /// Inclusive lower bound of a bucket's value range.
  static std::uint64_t bucket_floor(std::uint32_t bucket);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

class Binder;

/// Process-wide registry. Like util::LogConfig, deliberately
/// single-threaded. `current()` is swappable (ScopedRegistry) so tests
/// and benches can run against a fresh registry without touching the
/// default global one.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The default process-wide registry.
  static MetricsRegistry& global();
  /// The registry new registrations bind into (global unless swapped).
  static MetricsRegistry& current();

  // --- registration (slow path, done once) ---------------------------
  /// Registry-owned counter; increment through the returned handle.
  std::uint64_t* counter(const std::string& name);
  /// Registry-owned gauge; assign through the returned handle.
  std::int64_t* gauge(const std::string& name);
  /// Registry-owned histogram; record() through the returned handle.
  Histogram* histogram(const std::string& name);

  /// Installed by the sim (or bench) so snapshots carry sim time.
  void set_time_source(std::function<std::uint64_t()> time_source) {
    time_source_ = std::move(time_source);
  }

  // --- snapshot (slow path) ------------------------------------------
  [[nodiscard]] std::string snapshot_json() const;
  [[nodiscard]] std::string snapshot_text() const;
  /// Number of live (non-tombstoned) metrics.
  [[nodiscard]] std::size_t size() const;

 private:
  friend class Binder;
  friend class ScopedRegistry;

  enum class Kind : std::uint8_t { kCounter, kGauge, kGaugeFn, kHistogram };
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    // Owned metrics point into the deques below; bound metrics read
    // through `bound` / `fn` at snapshot time only.
    const std::uint64_t* counter = nullptr;
    const std::int64_t* gauge = nullptr;
    std::function<std::int64_t()> fn;
    const Histogram* hist = nullptr;
    bool dead = false;  // tombstoned when its Binder was destroyed
  };

  std::size_t add_entry(Entry entry);

  std::vector<Entry> entries_;  // registration order == snapshot order
  // Deques for stable addresses: handles stay valid as metrics grow.
  std::deque<std::uint64_t> counters_;
  std::deque<std::int64_t> gauges_;
  std::deque<Histogram> histograms_;
  std::function<std::uint64_t()> time_source_;

  static MetricsRegistry* current_;
};

/// RAII registration of externally-owned stats into the current
/// registry. Components keep their plain `uint64_t` Stats fields (the
/// hot path stays an untouched `++stats_.field`); the Binder exposes
/// each field by pointer under `prefix + "." + suffix`. The destructor
/// tombstones its entries so a destroyed component never leaves the
/// registry reading freed memory. A Binder must not outlive the
/// registry it bound into (components created under a ScopedRegistry
/// must be destroyed inside that scope).
class Binder {
 public:
  explicit Binder(std::string prefix);
  ~Binder();
  Binder(const Binder&) = delete;
  Binder& operator=(const Binder&) = delete;

  void counter(const std::string& suffix, const std::uint64_t* value);
  /// For non-uint64 stats fields (uint32 high-waters, sim::Time
  /// stamps): the function is evaluated at snapshot time.
  void gauge_fn(const std::string& suffix, std::function<std::int64_t()> fn);

 private:
  MetricsRegistry* registry_;
  std::string prefix_;
  std::vector<std::size_t> entries_;
};

/// Swaps MetricsRegistry::current() to a fresh registry for the scope's
/// lifetime. Benches use this to measure instrumented runs in
/// isolation; tests use it for deterministic snapshots.
class ScopedRegistry {
 public:
  ScopedRegistry();
  explicit ScopedRegistry(std::function<std::uint64_t()> time_source);
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

  MetricsRegistry& registry() { return registry_; }

 private:
  MetricsRegistry registry_;
  MetricsRegistry* previous_;
};

}  // namespace spire::obs
