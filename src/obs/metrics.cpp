#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace spire::obs {

// --- Histogram -------------------------------------------------------

std::uint32_t Histogram::bucket_of(std::uint64_t value) {
  if (value < kLinear) return static_cast<std::uint32_t>(value);
  const std::uint32_t exponent = 63 - std::countl_zero(value);
  const std::uint32_t sub =
      static_cast<std::uint32_t>(value >> (exponent - kSubBits)) - kSub;
  return kLinear + (exponent - kLinearBits) * kSub + sub;
}

std::uint64_t Histogram::bucket_floor(std::uint32_t bucket) {
  if (bucket < kLinear) return bucket;
  const std::uint32_t rel = bucket - kLinear;
  const std::uint32_t exponent = kLinearBits + rel / kSub;
  const std::uint64_t sub = rel % kSub;
  return (std::uint64_t{1} << exponent) + (sub << (exponent - kSubBits));
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1) + 0.5);
  std::uint64_t cumulative = 0;
  for (std::uint32_t b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b];
    if (cumulative > rank) {
      if (b < kLinear) return b;  // exact
      const std::uint32_t exponent = kLinearBits + (b - kLinear) / kSub;
      const std::uint64_t width = std::uint64_t{1} << (exponent - kSubBits);
      const std::uint64_t mid = bucket_floor(b) + width / 2;
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

void Histogram::reset() {
  buckets_.fill(0);
  count_ = sum_ = min_ = max_ = 0;
}

// --- MetricsRegistry -------------------------------------------------

MetricsRegistry* MetricsRegistry::current_ = nullptr;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry& MetricsRegistry::current() {
  return current_ != nullptr ? *current_ : global();
}

std::size_t MetricsRegistry::add_entry(Entry entry) {
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

std::uint64_t* MetricsRegistry::counter(const std::string& name) {
  counters_.push_back(0);
  std::uint64_t* handle = &counters_.back();
  add_entry({name, Kind::kCounter, handle, nullptr, {}, nullptr, false});
  return handle;
}

std::int64_t* MetricsRegistry::gauge(const std::string& name) {
  gauges_.push_back(0);
  std::int64_t* handle = &gauges_.back();
  add_entry({name, Kind::kGauge, nullptr, handle, {}, nullptr, false});
  return handle;
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  histograms_.emplace_back();
  Histogram* handle = &histograms_.back();
  add_entry({name, Kind::kHistogram, nullptr, nullptr, {}, handle, false});
  return handle;
}

std::size_t MetricsRegistry::size() const {
  std::size_t live = 0;
  for (const Entry& entry : entries_) {
    if (!entry.dead) ++live;
  }
  return live;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::string MetricsRegistry::snapshot_json() const {
  std::string out = "{\"time_us\":";
  out += std::to_string(time_source_ ? time_source_() : 0);
  out += ",\"metrics\":[";
  bool first = true;
  char buf[160];
  for (const Entry& entry : entries_) {
    if (entry.dead) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, entry.name);
    switch (entry.kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof buf,
                      ",\"kind\":\"counter\",\"value\":%" PRIu64 "}",
                      *entry.counter);
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof buf,
                      ",\"kind\":\"gauge\",\"value\":%" PRId64 "}",
                      *entry.gauge);
        break;
      case Kind::kGaugeFn:
        std::snprintf(buf, sizeof buf,
                      ",\"kind\":\"gauge\",\"value\":%" PRId64 "}",
                      entry.fn());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.hist;
        std::snprintf(buf, sizeof buf,
                      ",\"kind\":\"histogram\",\"count\":%" PRIu64
                      ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
                      ",\"max\":%" PRIu64 ",\"p50\":%" PRIu64
                      ",\"p90\":%" PRIu64 ",\"p99\":%" PRIu64 "}",
                      h.count(), h.sum(), h.min(), h.max(), h.quantile(0.50),
                      h.quantile(0.90), h.quantile(0.99));
        break;
      }
    }
    out += buf;
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::snapshot_text() const {
  std::size_t width = 4;
  for (const Entry& entry : entries_) {
    if (!entry.dead) width = std::max(width, entry.name.size());
  }
  std::ostringstream oss;
  char buf[192];
  for (const Entry& entry : entries_) {
    if (entry.dead) continue;
    switch (entry.kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof buf, "%-*s  counter    %12" PRIu64 "\n",
                      static_cast<int>(width), entry.name.c_str(),
                      *entry.counter);
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof buf, "%-*s  gauge      %12" PRId64 "\n",
                      static_cast<int>(width), entry.name.c_str(),
                      *entry.gauge);
        break;
      case Kind::kGaugeFn:
        std::snprintf(buf, sizeof buf, "%-*s  gauge      %12" PRId64 "\n",
                      static_cast<int>(width), entry.name.c_str(), entry.fn());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.hist;
        std::snprintf(buf, sizeof buf,
                      "%-*s  histogram  count=%" PRIu64 " p50=%" PRIu64
                      " p90=%" PRIu64 " p99=%" PRIu64 " max=%" PRIu64 "\n",
                      static_cast<int>(width), entry.name.c_str(), h.count(),
                      h.quantile(0.50), h.quantile(0.90), h.quantile(0.99),
                      h.max());
        break;
      }
    }
    oss << buf;
  }
  return oss.str();
}

// --- Binder ----------------------------------------------------------

Binder::Binder(std::string prefix)
    : registry_(&MetricsRegistry::current()), prefix_(std::move(prefix)) {}

Binder::~Binder() {
  for (std::size_t index : entries_) {
    registry_->entries_[index].dead = true;
  }
}

void Binder::counter(const std::string& suffix, const std::uint64_t* value) {
  entries_.push_back(registry_->add_entry({prefix_ + "." + suffix,
                                           MetricsRegistry::Kind::kCounter,
                                           value, nullptr, {}, nullptr,
                                           false}));
}

void Binder::gauge_fn(const std::string& suffix,
                      std::function<std::int64_t()> fn) {
  entries_.push_back(registry_->add_entry({prefix_ + "." + suffix,
                                           MetricsRegistry::Kind::kGaugeFn,
                                           nullptr, nullptr, std::move(fn),
                                           nullptr, false}));
}

// --- ScopedRegistry --------------------------------------------------

ScopedRegistry::ScopedRegistry() : previous_(MetricsRegistry::current_) {
  MetricsRegistry::current_ = &registry_;
}

ScopedRegistry::ScopedRegistry(std::function<std::uint64_t()> time_source)
    : ScopedRegistry() {
  registry_.set_time_source(std::move(time_source));
}

ScopedRegistry::~ScopedRegistry() {
  MetricsRegistry::current_ = previous_;
}

}  // namespace spire::obs
