#include "net/frame.hpp"

namespace spire::net {

namespace {

void put_mac(util::ByteWriter& w, const MacAddress& mac) {
  w.raw(std::span<const std::uint8_t>(mac.bytes.data(), mac.bytes.size()));
}

MacAddress get_mac(util::ByteReader& r) {
  MacAddress mac;
  const auto raw = r.raw(6);
  std::copy(raw.begin(), raw.end(), mac.bytes.begin());
  return mac;
}

}  // namespace

util::Bytes ArpPacket::encode() const {
  util::ByteWriter w;
  w.u16(static_cast<std::uint16_t>(op));
  put_mac(w, sender_mac);
  w.u32(sender_ip.value);
  put_mac(w, target_mac);
  w.u32(target_ip.value);
  return w.take();
}

std::optional<ArpPacket> ArpPacket::decode(std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    ArpPacket p;
    p.op = static_cast<ArpOp>(r.u16());
    p.sender_mac = get_mac(r);
    p.sender_ip = IpAddress{r.u32()};
    p.target_mac = get_mac(r);
    p.target_ip = IpAddress{r.u32()};
    r.expect_done();
    if (p.op != ArpOp::kRequest && p.op != ArpOp::kReply) return std::nullopt;
    return p;
  } catch (const util::SerializationError&) {
    return std::nullopt;
  }
}

util::Bytes Datagram::encode() const {
  util::ByteWriter w(4 + 4 + 2 + 2 + 1 + 4 + payload.size());
  w.u32(src_ip.value);
  w.u32(dst_ip.value);
  w.u16(src_port);
  w.u16(dst_port);
  w.u8(ttl);
  w.blob(payload);
  return w.take();
}

std::optional<Datagram> Datagram::decode(std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    Datagram d;
    d.src_ip = IpAddress{r.u32()};
    d.dst_ip = IpAddress{r.u32()};
    d.src_port = r.u16();
    d.dst_port = r.u16();
    d.ttl = r.u8();
    d.payload = r.blob();
    r.expect_done();
    return d;
  } catch (const util::SerializationError&) {
    return std::nullopt;
  }
}

}  // namespace spire::net
