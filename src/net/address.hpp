// L2/L3 addressing for the emulated network.
//
// The red-team experiment (paper §IV) is largely a story about
// addresses: ARP poisoning remaps IP→MAC, IP spoofing forges source
// addresses, static MAC↔IP and MAC↔switch-port mappings pin them down.
// These types make those attacks and defenses first-class.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace spire::net {

/// 48-bit Ethernet MAC address.
struct MacAddress {
  std::array<std::uint8_t, 6> bytes{};

  auto operator<=>(const MacAddress&) const = default;

  [[nodiscard]] bool is_broadcast() const {
    for (auto b : bytes) {
      if (b != 0xFF) return false;
    }
    return true;
  }

  [[nodiscard]] std::string str() const;

  static MacAddress broadcast() {
    MacAddress m;
    m.bytes.fill(0xFF);
    return m;
  }

  /// Deterministic locally-administered MAC from a small integer id.
  static MacAddress from_id(std::uint32_t id) {
    MacAddress m;
    m.bytes = {0x02, 0x00, static_cast<std::uint8_t>(id >> 24),
               static_cast<std::uint8_t>(id >> 16),
               static_cast<std::uint8_t>(id >> 8),
               static_cast<std::uint8_t>(id)};
    return m;
  }
};

/// IPv4 address (the deployments disabled IPv6; so do we).
struct IpAddress {
  std::uint32_t value = 0;

  auto operator<=>(const IpAddress&) const = default;

  [[nodiscard]] std::string str() const;

  static constexpr IpAddress any() { return IpAddress{0}; }

  static constexpr IpAddress make(std::uint8_t a, std::uint8_t b,
                                  std::uint8_t c, std::uint8_t d) {
    return IpAddress{(static_cast<std::uint32_t>(a) << 24) |
                     (static_cast<std::uint32_t>(b) << 16) |
                     (static_cast<std::uint32_t>(c) << 8) |
                     static_cast<std::uint32_t>(d)};
  }

  [[nodiscard]] bool same_subnet(IpAddress other, int prefix_len) const {
    if (prefix_len <= 0) return true;
    const std::uint32_t mask =
        prefix_len >= 32 ? 0xFFFFFFFFu : ~((1u << (32 - prefix_len)) - 1);
    return (value & mask) == (other.value & mask);
  }
};

/// UDP-style endpoint.
struct Endpoint {
  IpAddress ip;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  [[nodiscard]] std::string str() const;
};

}  // namespace spire::net
