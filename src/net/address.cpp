#include "net/address.hpp"

#include <cstdio>

namespace spire::net {

std::string MacAddress::str() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::string IpAddress::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xFF,
                (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF);
  return buf;
}

std::string Endpoint::str() const {
  return ip.str() + ":" + std::to_string(port);
}

}  // namespace spire::net
