#include "net/switch.hpp"

#include <cmath>

namespace spire::net {

Switch::Switch(sim::Simulator& sim, SwitchConfig config)
    : sim_(sim),
      config_(std::move(config)),
      shard_(sim.current_shard()),
      log_("net.switch." + config_.name) {}

PortId Switch::add_port(std::function<void(const EthernetFrame&)> deliver) {
  ports_.push_back(Port{std::move(deliver), 0, 0, shard_});
  return ports_.size() - 1;
}

void Switch::bind_mac(const MacAddress& mac, PortId port) {
  static_table_[mac] = port;
}

void Switch::set_port_shard(PortId port, sim::ShardId shard) {
  ports_[port].shard = shard;
}

void Switch::add_tap(std::string network_label, PcapSink sink) {
  taps_.push_back(
      Tap{NetworkLabels::instance().intern(network_label), std::move(sink)});
}

void Switch::add_capture_tap(CaptureTap* tap) {
  capture_taps_.push_back(tap);
}

void Switch::set_chaos(double loss, sim::Time max_jitter) {
  chaos_loss_ = loss;
  chaos_jitter_ = max_jitter;
}

void Switch::receive(PortId ingress, EthernetFrame frame) {
  // Mirror to taps first: a capture port sees traffic even if the
  // switch later drops it (that is what makes DoS visible to MANA).
  for (CaptureTap* tap : capture_taps_) tap->capture(sim_.now(), frame);
  for (const auto& tap : taps_) {
    tap.sink(PcapRecord{sim_.now(), tap.label, frame});
  }

  if (config_.static_port_binding) {
    const auto it = static_table_.find(frame.src);
    if (it == static_table_.end() || it->second != ingress) {
      ++stats_.frames_dropped_binding;
      log_.debug("dropped frame from ", frame.src.str(), " on port ", ingress,
                 " (static binding violation)");
      return;
    }
  } else {
    learned_table_[frame.src] = ingress;
  }

  const auto& table =
      config_.static_port_binding ? static_table_ : learned_table_;

  if (!frame.dst.is_broadcast()) {
    const auto it = table.find(frame.dst);
    if (it != table.end()) {
      if (it->second != ingress) emit(it->second, std::move(frame));
      return;
    }
    if (config_.static_port_binding) {
      // Unknown unicast is not flooded when bindings are static: the
      // operator enumerated every legitimate device.
      ++stats_.frames_dropped_binding;
      return;
    }
  }

  // Broadcast or unknown unicast: flood.
  ++stats_.frames_flooded;
  for (PortId p = 0; p < ports_.size(); ++p) {
    if (p != ingress) emit(p, frame);
  }
}

void Switch::emit(PortId port, EthernetFrame frame) {
  Port& p = ports_[port];
  if (chaos_loss_ > 0 && chaos_rng_.chance(chaos_loss_)) {
    ++stats_.frames_dropped_chaos;
    return;
  }
  if (p.queued >= config_.egress_queue_frames) {
    ++stats_.frames_dropped_queue;
    return;
  }
  ++stats_.frames_forwarded;
  ++p.queued;

  const sim::Time start = std::max(sim_.now(), p.busy_until);
  const auto serialization = static_cast<sim::Time>(
      std::ceil(static_cast<double>(frame.wire_size()) / config_.bytes_per_us));
  const sim::Time done = start + serialization;
  p.busy_until = done;

  const sim::Time deliver_at = done + config_.propagation_delay;
  if (p.shard == shard_) {
    // Same-shard port: the exact pre-shard delivery event.
    sim_.schedule_at(deliver_at, [this, port, frame = std::move(frame)] {
      Port& out = ports_[port];
      if (out.queued > 0) --out.queued;
      if (out.deliver) out.deliver(frame);
    });
    return;
  }
  // Cross-shard port: the handoff crosses at least the propagation
  // delay (which Network::connect registered as lookahead), so the
  // posted delivery always clears the window horizon. Queue-slot
  // bookkeeping stays a switch-shard event.
  sim_.schedule_at(deliver_at, [this, port] {
    Port& out = ports_[port];
    if (out.queued > 0) --out.queued;
  });
  sim_.post_at(p.shard, deliver_at, [this, port, frame = std::move(frame)] {
    const Port& out = ports_[port];
    if (out.deliver) out.deliver(frame);
  });
}

}  // namespace spire::net
