#include "net/pcap.hpp"

#include "util/bytes.hpp"

namespace spire::net {

NetworkLabels& NetworkLabels::instance() {
  static NetworkLabels labels;
  return labels;
}

FrameSummary FrameSummary::summarize(sim::Time now,
                                     const EthernetFrame& frame) {
  FrameSummary s;
  s.time = now;
  s.wire_size = static_cast<std::uint32_t>(frame.wire_size());
  s.src_mac = mac_key(frame.src);
  s.dst_mac = mac_key(frame.dst);
  if (frame.dst.is_broadcast()) s.flags |= kBroadcast;

  if (frame.ethertype == EtherType::kArp) {
    if (const auto arp = ArpPacket::decode(frame.payload)) {
      s.kind = FrameKind::kArp;
      if (arp->op == ArpOp::kReply) s.flags |= kArpReply;
      // The claimed binding is the poisoning signal: the ARP watch
      // reads the asserted sender IP→MAC pair, not the L2 header.
      s.src_ip = arp->sender_ip.value;
      s.src_mac = mac_key(arp->sender_mac);
    }
  } else if (frame.ethertype == EtherType::kIpv4) {
    // Header-only parse of the 13-byte datagram preamble; stops before
    // the payload blob so no bytes are copied.
    try {
      util::ByteReader r(frame.payload);
      s.kind = FrameKind::kIpv4;
      s.src_ip = r.u32();
      s.dst_ip = r.u32();
      s.src_port = r.u16();
      s.dst_port = r.u16();
    } catch (const util::SerializationError&) {
      s.kind = FrameKind::kOther;  // malformed: still counted by shape
    }
  }
  return s;
}

namespace {

std::size_t round_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

CaptureTap::CaptureTap(CaptureTapConfig config) : config_(config) {
  const std::size_t slots = round_pow2(std::max<std::size_t>(8, config_.ring_slots));
  ring_.resize(slots);
  mask_ = slots - 1;
  high_slots_ = static_cast<std::size_t>(
      static_cast<double>(slots) * config_.sample_high_watermark);
  low_slots_ = static_cast<std::size_t>(
      static_cast<double>(slots) * config_.sample_low_watermark);
  if (high_slots_ >= slots) high_slots_ = slots - 1;
}

void CaptureTap::capture(sim::Time now, const EthernetFrame& frame) {
  ++stats_.frames_mirrored;

  if (!sampling_ && size_ >= high_slots_) {
    sampling_ = true;
    stride_ = std::max<std::uint32_t>(2, config_.sample_stride);
    stride_phase_ = 0;
    ++stats_.sampling_entered;
  }
  if (sampling_) {
    if (stride_phase_++ % stride_ != 0) {
      ++stats_.frames_sampled_out;
      ++pending_weight_;
      return;
    }
  }
  if (size_ > mask_) {
    // Hard full despite sampling: counted drop, and the stride doubles
    // so a sustained overload converges to what the drain absorbs.
    ++stats_.frames_dropped;
    if (sampling_ && stride_ < kMaxStride) {
      stride_ *= 2;
      ++stats_.stride_escalations;
    }
    return;
  }

  FrameSummary& slot = ring_[head_];
  slot = FrameSummary::summarize(now, frame);
  slot.weight = 1 + pending_weight_;
  pending_weight_ = 0;
  head_ = (head_ + 1) & mask_;
  ++size_;
  ++stats_.frames_captured;
}

void CaptureTap::maybe_exit_sampling() {
  if (sampling_ && size_ <= low_slots_) {
    sampling_ = false;
    stride_ = 1;
    stride_phase_ = 0;
  }
}

std::uint64_t CaptureTap::queued_weight() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0, idx = tail_; i < size_; ++i, idx = (idx + 1) & mask_) {
    total += ring_[idx].weight;
  }
  return total;
}

}  // namespace spire::net
