// Network builder: owns hosts, switches, and cables, and wires NICs to
// switch ports (or to each other for the direct PLC↔proxy cable that
// §III-B calls out as a defense).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace spire::net {

class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Host& add_host(std::string name);
  Switch& add_switch(SwitchConfig config);

  /// Connects host interface `iface` to a new port on `sw`; returns the
  /// port id. If the switch uses static port binding, also binds the
  /// NIC's MAC to the new port.
  PortId connect(Host& host, std::size_t iface, Switch& sw);

  /// Point-to-point cable between two NICs with a fixed latency. This
  /// bypasses any switch — no other device can observe or inject.
  void cable(Host& a, std::size_t iface_a, Host& b, std::size_t iface_b,
             sim::Time latency = 20);

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Host>>& hosts() const {
    return hosts_;
  }

  /// Finds a host by name; throws std::out_of_range if absent.
  Host& host(std::string_view name);

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Switch>> switches_;
};

}  // namespace spire::net
