// Passive packet-capture taps.
//
// MANA only ever sees the network through these (paper §III-C: the IDS
// was approved precisely because it is out-of-band and non-invasive).
// A tap is a switch port mirror: it receives copies of every frame and
// can never inject anything.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/frame.hpp"
#include "sim/simulator.hpp"

namespace spire::net {

/// One mirrored frame with capture metadata.
struct PcapRecord {
  sim::Time time = 0;
  std::string network;  ///< capture-point label, e.g. "enterprise".
  EthernetFrame frame;
};

/// Anything that consumes mirrored traffic (MANA, test recorders).
using PcapSink = std::function<void(const PcapRecord&)>;

}  // namespace spire::net
