// Passive packet-capture taps (DESIGN.md §13).
//
// MANA only ever sees the network through these (paper §III-C: the IDS
// was approved precisely because it is out-of-band and non-invasive).
// A tap is a switch port mirror: it receives copies of every frame and
// can never inject anything.
//
// Two tap flavours exist:
//
//  * The legacy PcapSink (std::function per mirrored frame, full frame
//    copy) stays for tests and low-rate recorders.
//  * CaptureTap is the line-rate path: the mirror port summarizes each
//    frame's headers into a fixed-width FrameSummary slot of a
//    preallocated ring — no string, no payload copy, no allocation —
//    and the analyzer drains the ring out-of-band. Overload is
//    explicit: past a high watermark the tap samples 1-in-N (skipped
//    frames fold their count into the next captured slot's weight, so
//    windowed features stay calibrated), and a hard-full ring drops
//    frames into a counted bucket, never silently.
//
// Capture-point labels ("enterprise", "operations-spire") are interned
// once at tap registration (the NodeTable pattern): every mirrored
// frame used to heap-allocate a std::string label on the switch hot
// path; now it carries a dense NetworkId handle.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/frame.hpp"
#include "sim/simulator.hpp"
#include "util/interner.hpp"

namespace spire::net {

/// Dense handle for a capture-point label, assigned by NetworkLabels.
using NetworkId = std::uint32_t;

/// Process-wide interner for capture-point labels. Append-only and
/// tiny (one entry per monitored network), registered at tap-install
/// time only — never on the mirror hot path.
class NetworkLabels {
 public:
  static NetworkLabels& instance();

  NetworkId intern(std::string_view label) { return interner_.intern(label); }
  [[nodiscard]] NetworkId lookup(std::string_view label) const {
    return interner_.lookup(label);
  }
  [[nodiscard]] const std::string& name(NetworkId id) const {
    return interner_.name(id);
  }
  [[nodiscard]] std::size_t size() const { return interner_.size(); }

 private:
  NetworkLabels() = default;
  util::StringInterner interner_;
};

/// One mirrored frame with capture metadata (legacy full-copy tap).
struct PcapRecord {
  sim::Time time = 0;
  NetworkId network = 0;  ///< interned capture-point label
  EthernetFrame frame;
};

/// Anything that consumes mirrored traffic via the legacy tap.
using PcapSink = std::function<void(const PcapRecord&)>;

// ---- line-rate capture path -------------------------------------------------

enum class FrameKind : std::uint8_t { kOther = 0, kArp, kIpv4 };

/// Fixed-width header summary of one mirrored frame: everything the
/// traffic-shape feature pipeline reads, nothing that allocates. For
/// ARP frames, src_ip/src_mac carry the *claimed* sender binding (the
/// poisoning signal), which may differ from the L2 source.
struct FrameSummary {
  static constexpr std::uint8_t kBroadcast = 0x01;  ///< L2 broadcast dst
  static constexpr std::uint8_t kArpReply = 0x02;   ///< ARP op == reply

  sim::Time time = 0;
  std::uint32_t weight = 1;  ///< frames represented (overload sampling)
  std::uint32_t wire_size = 0;
  FrameKind kind = FrameKind::kOther;
  std::uint8_t flags = 0;
  std::uint64_t src_mac = 0;  ///< 48-bit MAC folded into a u64 key
  std::uint64_t dst_mac = 0;
  std::uint32_t src_ip = 0;  ///< IPv4 src, or ARP claimed sender IP
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  [[nodiscard]] bool broadcast() const { return (flags & kBroadcast) != 0; }
  [[nodiscard]] bool arp_reply() const { return (flags & kArpReply) != 0; }

  static std::uint64_t mac_key(const MacAddress& mac) {
    std::uint64_t v = 0;
    for (auto b : mac.bytes) v = (v << 8) | b;
    return v;
  }

  /// Header-only parse: ARP decodes its fixed body, IPv4 reads the
  /// 13-byte datagram header and never materializes the payload.
  static FrameSummary summarize(sim::Time now, const EthernetFrame& frame);
};

struct CaptureTapConfig {
  /// Ring capacity in slots; rounded up to a power of two.
  std::size_t ring_slots = 8192;
  /// Occupancy fraction above which the tap enters sampling mode.
  double sample_high_watermark = 0.75;
  /// Occupancy fraction below which sampling mode ends.
  double sample_low_watermark = 0.25;
  /// Keep 1 in N frames while sampling (doubles on a hard-full drop,
  /// up to kMaxStride, so a sustained flood converges to a stride the
  /// drain rate can absorb).
  std::uint32_t sample_stride = 8;
};

/// Every mirrored frame lands in exactly one of these buckets, so
/// captured-with-weights + dropped + still-queued always equals
/// mirrored: overload is visible in the accounting, never silent.
struct CaptureTapStats {
  std::uint64_t frames_mirrored = 0;     ///< offered by the switch
  std::uint64_t frames_captured = 0;     ///< written into a ring slot
  std::uint64_t frames_sampled_out = 0;  ///< skipped; folded into weights
  std::uint64_t frames_dropped = 0;      ///< ring hard-full (counted)
  std::uint64_t sampling_entered = 0;    ///< watermark crossings
  std::uint64_t stride_escalations = 0;  ///< hard-full while sampling
};

/// Single-producer single-consumer summary ring between a switch mirror
/// port and the analyzer. Same-shard by construction (the tap lives on
/// its switch's shard); "out-of-band" is simulated by the analyzer
/// draining on its own periodic event rather than per frame.
class CaptureTap {
 public:
  static constexpr std::uint32_t kMaxStride = 1024;

  explicit CaptureTap(CaptureTapConfig config = {});

  /// Mirror-port push: header summarize + one slot write. Zero-alloc.
  void capture(sim::Time now, const EthernetFrame& frame);

  /// Drains every queued summary into `fn(const FrameSummary&)` in
  /// capture order. Returns the number of slots consumed.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    std::size_t consumed = 0;
    while (size_ > 0) {
      fn(ring_[tail_]);
      tail_ = (tail_ + 1) & mask_;
      --size_;
      ++consumed;
    }
    maybe_exit_sampling();
    return consumed;
  }

  [[nodiscard]] const CaptureTapStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queued() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] bool sampling() const { return sampling_; }
  [[nodiscard]] std::uint32_t stride() const { return stride_; }
  /// Sampled-out frames not yet folded into a captured slot's weight.
  [[nodiscard]] std::uint32_t pending_weight() const { return pending_weight_; }

  /// Accounting identity (drained weights must be summed by the
  /// consumer): mirrored == drained_weight + queued_weight + pending +
  /// dropped. Exposed for the overload tests and the bench gate.
  [[nodiscard]] std::uint64_t queued_weight() const;

 private:
  void maybe_exit_sampling();

  CaptureTapConfig config_;
  std::vector<FrameSummary> ring_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;  // next write
  std::size_t tail_ = 0;  // next read
  std::size_t size_ = 0;
  std::size_t high_slots_ = 0;
  std::size_t low_slots_ = 0;
  bool sampling_ = false;
  std::uint32_t stride_ = 1;
  std::uint32_t stride_phase_ = 0;
  std::uint32_t pending_weight_ = 0;  // sampled-out frames awaiting a slot
  CaptureTapStats stats_;
};

}  // namespace spire::net
