// Ethernet frames, ARP packets, and UDP-style datagrams.
//
// Transport note (DESIGN.md §3): Modbus/TCP and the Spines link
// protocol ride on this datagram layer rather than a full TCP stack;
// both protocols carry their own transaction/sequence identifiers, so
// request/response matching and reliability are handled one layer up,
// exactly where the real systems implement them too (Spines builds its
// own reliability; Modbus proxies re-issue polls).
#pragma once

#include <cstdint>
#include <optional>

#include "net/address.hpp"
#include "util/bytes.hpp"

namespace spire::net {

enum class EtherType : std::uint16_t {
  kArp = 0x0806,
  kIpv4 = 0x0800,
};

enum class ArpOp : std::uint16_t {
  kRequest = 1,
  kReply = 2,
};

/// ARP request/reply body.
struct ArpPacket {
  ArpOp op = ArpOp::kRequest;
  MacAddress sender_mac;
  IpAddress sender_ip;
  MacAddress target_mac;
  IpAddress target_ip;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<ArpPacket> decode(std::span<const std::uint8_t> data);
};

/// UDP-style datagram (IP header fields flattened in).
struct Datagram {
  IpAddress src_ip;
  IpAddress dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t ttl = 64;
  util::Bytes payload;

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<Datagram> decode(std::span<const std::uint8_t> data);
};

/// L2 frame as carried by switches and cables.
struct EthernetFrame {
  MacAddress src;
  MacAddress dst;
  EtherType ethertype = EtherType::kIpv4;
  util::Bytes payload;

  /// Wire size used for serialization-delay and queue accounting:
  /// 14-byte header + payload + 4-byte FCS, min 64.
  [[nodiscard]] std::size_t wire_size() const {
    return std::max<std::size_t>(64, 18 + payload.size());
  }
};

}  // namespace spire::net
