// Emulated host network stack.
//
// A Host owns one or more NICs, an ARP layer (dynamic and poisonable,
// or statically pinned per §III-B), a stateless firewall, a UDP-style
// socket table, and optional datagram forwarding with ACLs (used for
// the enterprise/operations firewall appliance in the Fig. 3 testbed).
// The OsProfile captures the hardening facts the excursion narrative
// turns on (latest minimal CentOS vs a default desktop install).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace spire::net {

enum class Direction { kInbound, kOutbound };

/// One allow rule; empty optionals are wildcards.
struct FirewallRule {
  Direction direction = Direction::kInbound;
  std::optional<IpAddress> remote_ip;
  std::optional<std::uint16_t> local_port;
  std::optional<std::uint16_t> remote_port;
};

/// Host firewall: the §III-B posture is default-deny with explicit
/// allows; the commercial baseline runs default-allow.
struct FirewallConfig {
  bool default_deny = false;
  std::vector<FirewallRule> allow;

  [[nodiscard]] bool permits(Direction dir, IpAddress remote,
                             std::uint16_t local_port,
                             std::uint16_t remote_port) const;
};

/// Operating-system facts consulted by privilege-escalation attacks.
struct OsProfile {
  std::string distro = "ubuntu-desktop";
  bool patched_kernel = false;   ///< dirtycow-class bugs fixed?
  bool patched_sshd = false;     ///< sshd CVEs fixed?
  bool minimal_install = false;  ///< no extra preinstalled services?

  static OsProfile hardened_centos() {
    return {"centos-minimal", true, true, true};
  }
  static OsProfile default_ubuntu() { return {"ubuntu-desktop", false, false, false}; }
};

/// ACL entry for forwarded (routed) traffic.
struct ForwardRule {
  std::optional<IpAddress> src_ip;
  std::optional<IpAddress> dst_ip;
  std::optional<std::uint16_t> dst_port;
};

struct Route {
  IpAddress prefix;
  int prefix_len = 24;
  std::size_t out_interface = 0;
  std::optional<IpAddress> next_hop;  ///< empty: directly attached.
};

struct HostStats {
  std::uint64_t frames_rx = 0;
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t dropped_firewall_in = 0;
  std::uint64_t dropped_firewall_out = 0;
  std::uint64_t dropped_no_handler = 0;
  std::uint64_t dropped_forward_acl = 0;
  std::uint64_t arp_replies_accepted = 0;
  std::uint64_t arp_replies_ignored_static = 0;
  std::uint64_t forwarded = 0;
};

using UdpHandler = std::function<void(const Datagram&)>;
/// Raw frame observer for promiscuous sniffing (attacker tooling).
using FrameSniffer = std::function<void(std::size_t iface, const EthernetFrame&)>;

class Host {
 public:
  Host(sim::Simulator& sim, std::string name);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Parallel-kernel shard this host's events run on (DESIGN.md §8).
  /// Defaults to the ambient shard at construction, so building a host
  /// under a sim::ShardScope pins it automatically; wiring helpers in
  /// Network route cross-shard traffic through the kernel mailboxes.
  void bind_shard(sim::ShardId shard) { shard_ = shard; }
  [[nodiscard]] sim::ShardId shard() const { return shard_; }

  // ---- interfaces -------------------------------------------------------
  /// Adds a NIC. The transmit hook is wired by Network::connect/cable.
  std::size_t add_interface(MacAddress mac, IpAddress ip, int prefix_len);
  [[nodiscard]] std::size_t interface_count() const { return ifaces_.size(); }
  [[nodiscard]] MacAddress mac(std::size_t iface = 0) const;
  [[nodiscard]] IpAddress ip(std::size_t iface = 0) const;
  /// The transmit hook takes the frame by value so the send path can
  /// move it down the wire instead of copying the payload at each layer
  /// (callbacks taking `const EthernetFrame&` still convert).
  void set_transmit(std::size_t iface, std::function<void(EthernetFrame)> tx);
  void set_promiscuous(std::size_t iface, bool on);

  /// Entry point for frames arriving from the wire.
  void handle_frame(std::size_t iface, const EthernetFrame& frame);

  // ---- configuration ----------------------------------------------------
  FirewallConfig& firewall() { return firewall_; }
  OsProfile& os() { return os_; }
  [[nodiscard]] const OsProfile& os() const { return os_; }

  /// §III-B: static MAC↔IP mapping; ARP replies are ignored.
  void use_static_arp(bool on) { static_arp_ = on; }
  void add_arp_entry(IpAddress ip, MacAddress mac) { arp_table_[ip] = mac; }
  /// §III-B: when false, a NIC only answers ARP for its own IP (the
  /// hardened setting); when true (OS default), any local IP is answered.
  void set_answer_arp_for_any_local_ip(bool on) { arp_any_local_ = on; }
  void set_gateway(IpAddress gw) { gateway_ = gw; }
  [[nodiscard]] std::optional<MacAddress> arp_lookup(IpAddress ip) const;

  // ---- sockets ----------------------------------------------------------
  void bind_udp(std::uint16_t port, UdpHandler handler);
  void unbind_udp(std::uint16_t port);
  [[nodiscard]] bool has_binding(std::uint16_t port) const;

  /// Sends a datagram; returns false if the egress firewall blocks it or
  /// no route exists. Source IP is taken from the chosen interface.
  bool send_udp(IpAddress dst_ip, std::uint16_t dst_port,
                std::uint16_t src_port, util::Bytes payload);
  /// Borrowed-buffer variant for hot paths that serialize into a reusable
  /// scratch writer: the payload is copied exactly once, into the
  /// datagram, instead of the caller materializing a fresh vector per
  /// send. Pass the span explicitly — an owned util::Bytes argument
  /// resolves to the overload above.
  bool send_udp(IpAddress dst_ip, std::uint16_t dst_port,
                std::uint16_t src_port, std::span<const std::uint8_t> payload);

  // ---- forwarding (firewall appliance / router) --------------------------
  void enable_forwarding(bool default_deny);
  void add_route(Route route) { routes_.push_back(route); }
  void add_forward_allow(ForwardRule rule) { forward_allow_.push_back(rule); }

  // ---- attacker-facing hooks ---------------------------------------------
  /// Injects an arbitrary frame (spoofing, gratuitous ARP, DoS floods).
  void send_frame_raw(std::size_t iface, const EthernetFrame& frame);
  void set_sniffer(FrameSniffer sniffer) { sniffer_ = std::move(sniffer); }
  /// Interceptor for datagrams that land on this host's NIC but are
  /// addressed to another IP (the position an ARP-poisoning MITM puts
  /// itself in). Returning true consumes the packet (tamper/forward/drop
  /// is the interceptor's business); false falls through to normal
  /// forwarding.
  using PacketInterceptor =
      std::function<bool(std::size_t iface, const Datagram&)>;
  void set_packet_interceptor(PacketInterceptor interceptor) {
    interceptor_ = std::move(interceptor);
  }
  /// Marks the host as attacker-controlled; the attack framework gates
  /// its capabilities on this.
  void set_compromised(bool on) { compromised_ = on; }
  [[nodiscard]] bool compromised() const { return compromised_; }

  [[nodiscard]] const HostStats& stats() const { return stats_; }

 private:
  struct Interface {
    MacAddress mac;
    IpAddress ip;
    int prefix_len = 24;
    bool promiscuous = false;
    std::function<void(EthernetFrame)> tx;
  };

  struct Egress {
    std::size_t iface;
    IpAddress next_hop;
  };
  [[nodiscard]] std::optional<Egress> resolve_egress(IpAddress dst_ip) const;

  void handle_arp(std::size_t iface, const ArpPacket& arp);
  void handle_datagram(std::size_t iface, const Datagram& dgram);
  void forward_datagram(Datagram dgram);
  /// Sends `dgram` out of `iface` toward `next_hop` (ARP-resolving it).
  void transmit_datagram(std::size_t iface, IpAddress next_hop,
                         const Datagram& dgram);
  [[nodiscard]] bool is_local_ip(IpAddress ip) const;
  [[nodiscard]] std::optional<std::size_t> interface_for(IpAddress dst) const;

  sim::Simulator& sim_;
  std::string name_;
  sim::ShardId shard_;
  util::Logger log_;
  std::vector<Interface> ifaces_;

  bool static_arp_ = false;
  bool arp_any_local_ = true;  // OS default; hardened hosts turn this off.
  std::map<IpAddress, MacAddress> arp_table_;
  std::map<IpAddress, std::vector<std::pair<std::size_t, Datagram>>> arp_pending_;

  FirewallConfig firewall_;
  OsProfile os_;
  std::optional<IpAddress> gateway_;

  std::map<std::uint16_t, UdpHandler> udp_handlers_;

  bool forwarding_ = false;
  bool forward_default_deny_ = true;
  std::vector<ForwardRule> forward_allow_;
  std::vector<Route> routes_;

  FrameSniffer sniffer_;
  PacketInterceptor interceptor_;
  bool compromised_ = false;
  HostStats stats_;
};

}  // namespace spire::net
