#include "net/network.hpp"

#include <stdexcept>

namespace spire::net {

Host& Network::add_host(std::string name) {
  hosts_.push_back(std::make_unique<Host>(sim_, std::move(name)));
  return *hosts_.back();
}

Switch& Network::add_switch(SwitchConfig config) {
  switches_.push_back(std::make_unique<Switch>(sim_, std::move(config)));
  return *switches_.back();
}

PortId Network::connect(Host& host, std::size_t iface, Switch& sw) {
  const PortId port = sw.add_port(
      [&host, iface](const EthernetFrame& frame) { host.handle_frame(iface, frame); });
  sw.set_port_shard(port, host.shard());
  if (host.shard() == sw.shard()) {
    // Same shard: synchronous ingress, the exact pre-shard wiring.
    host.set_transmit(iface, [&sw, port](EthernetFrame frame) {
      sw.receive(port, std::move(frame));
    });
  } else {
    // Cross-shard uplink: the switch's propagation delay is spent on
    // the wire *into* the switch, covering the shard hop, and it
    // becomes this link's lookahead contribution. (Sharded topologies
    // therefore see propagation on each leg of a switched path; the
    // single-shard wiring keeps the legacy single-leg timing.)
    const sim::Time ingress = sw.config().propagation_delay;
    sim_.note_link_latency(ingress);
    sim::Simulator& sim = sim_;
    Switch* swp = &sw;
    host.set_transmit(iface, [&sim, swp, port, ingress](EthernetFrame frame) {
      sim.send_to(swp->shard(), ingress,
                  [swp, port, f = std::move(frame)]() mutable {
                    swp->receive(port, std::move(f));
                  });
    });
  }
  if (sw.config().static_port_binding) {
    sw.bind_mac(host.mac(iface), port);
  }
  return port;
}

void Network::cable(Host& a, std::size_t iface_a, Host& b, std::size_t iface_b,
                    sim::Time latency) {
  sim::Simulator& sim = sim_;
  if (a.shard() != b.shard()) sim.note_link_latency(latency);
  // send_to degrades to the legacy same-shard schedule when the ends
  // share a shard, so single-shard topologies keep their exact event
  // sequence; split ends route through the kernel mailboxes with the
  // cable latency as lookahead.
  a.set_transmit(iface_a, [&sim, &b, iface_b, latency](EthernetFrame f) {
    sim.send_to(b.shard(), latency, [&b, iface_b, f = std::move(f)] {
      b.handle_frame(iface_b, f);
    });
  });
  b.set_transmit(iface_b, [&sim, &a, iface_a, latency](EthernetFrame f) {
    sim.send_to(a.shard(), latency, [&a, iface_a, f = std::move(f)] {
      a.handle_frame(iface_a, f);
    });
  });
}

Host& Network::host(std::string_view name) {
  for (const auto& h : hosts_) {
    if (h->name() == name) return *h;
  }
  throw std::out_of_range("no such host: " + std::string(name));
}

}  // namespace spire::net
