#include "net/network.hpp"

#include <stdexcept>

namespace spire::net {

Host& Network::add_host(std::string name) {
  hosts_.push_back(std::make_unique<Host>(sim_, std::move(name)));
  return *hosts_.back();
}

Switch& Network::add_switch(SwitchConfig config) {
  switches_.push_back(std::make_unique<Switch>(sim_, std::move(config)));
  return *switches_.back();
}

PortId Network::connect(Host& host, std::size_t iface, Switch& sw) {
  const PortId port = sw.add_port(
      [&host, iface](const EthernetFrame& frame) { host.handle_frame(iface, frame); });
  host.set_transmit(iface, [&sw, port](EthernetFrame frame) {
    sw.receive(port, std::move(frame));
  });
  if (sw.config().static_port_binding) {
    sw.bind_mac(host.mac(iface), port);
  }
  return port;
}

void Network::cable(Host& a, std::size_t iface_a, Host& b, std::size_t iface_b,
                    sim::Time latency) {
  sim::Simulator& sim = sim_;
  a.set_transmit(iface_a, [&sim, &b, iface_b, latency](EthernetFrame f) {
    sim.schedule_after(latency, [&b, iface_b, f = std::move(f)] {
      b.handle_frame(iface_b, f);
    });
  });
  b.set_transmit(iface_b, [&sim, &a, iface_a, latency](EthernetFrame f) {
    sim.schedule_after(latency, [&a, iface_a, f = std::move(f)] {
      a.handle_frame(iface_a, f);
    });
  });
}

Host& Network::host(std::string_view name) {
  for (const auto& h : hosts_) {
    if (h->name() == name) return *h;
  }
  throw std::out_of_range("no such host: " + std::string(name));
}

}  // namespace spire::net
