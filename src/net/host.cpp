#include "net/host.hpp"

#include <algorithm>

namespace spire::net {

bool FirewallConfig::permits(Direction dir, IpAddress remote,
                             std::uint16_t local_port,
                             std::uint16_t remote_port) const {
  for (const auto& rule : allow) {
    if (rule.direction != dir) continue;
    if (rule.remote_ip && *rule.remote_ip != remote) continue;
    if (rule.local_port && *rule.local_port != local_port) continue;
    if (rule.remote_port && *rule.remote_port != remote_port) continue;
    return true;
  }
  return !default_deny;
}

Host::Host(sim::Simulator& sim, std::string name)
    : sim_(sim),
      name_(std::move(name)),
      shard_(sim.current_shard()),
      log_("net.host." + name_) {}

std::size_t Host::add_interface(MacAddress mac, IpAddress ip, int prefix_len) {
  ifaces_.push_back(Interface{mac, ip, prefix_len, false, nullptr});
  return ifaces_.size() - 1;
}

MacAddress Host::mac(std::size_t iface) const { return ifaces_.at(iface).mac; }
IpAddress Host::ip(std::size_t iface) const { return ifaces_.at(iface).ip; }

void Host::set_transmit(std::size_t iface,
                        std::function<void(EthernetFrame)> tx) {
  ifaces_.at(iface).tx = std::move(tx);
}

void Host::set_promiscuous(std::size_t iface, bool on) {
  ifaces_.at(iface).promiscuous = on;
}

std::optional<MacAddress> Host::arp_lookup(IpAddress ip) const {
  const auto it = arp_table_.find(ip);
  if (it == arp_table_.end()) return std::nullopt;
  return it->second;
}

void Host::bind_udp(std::uint16_t port, UdpHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void Host::unbind_udp(std::uint16_t port) { udp_handlers_.erase(port); }

bool Host::has_binding(std::uint16_t port) const {
  return udp_handlers_.count(port) > 0;
}

bool Host::is_local_ip(IpAddress ip) const {
  return std::any_of(ifaces_.begin(), ifaces_.end(),
                     [&](const Interface& i) { return i.ip == ip; });
}

std::optional<std::size_t> Host::interface_for(IpAddress dst) const {
  for (std::size_t i = 0; i < ifaces_.size(); ++i) {
    if (dst.same_subnet(ifaces_[i].ip, ifaces_[i].prefix_len)) return i;
  }
  return std::nullopt;
}

std::optional<Host::Egress> Host::resolve_egress(IpAddress dst_ip) const {
  if (auto direct = interface_for(dst_ip)) {
    return Egress{*direct, dst_ip};
  }
  if (gateway_) {
    const auto gw_iface = interface_for(*gateway_);
    if (!gw_iface) return std::nullopt;
    return Egress{*gw_iface, *gateway_};
  }
  log_.debug("no route to ", dst_ip.str());
  return std::nullopt;
}

bool Host::send_udp(IpAddress dst_ip, std::uint16_t dst_port,
                    std::uint16_t src_port, util::Bytes payload) {
  if (!firewall_.permits(Direction::kOutbound, dst_ip, src_port, dst_port)) {
    ++stats_.dropped_firewall_out;
    return false;
  }
  const auto egress = resolve_egress(dst_ip);
  if (!egress) return false;

  Datagram dgram;
  dgram.src_ip = ifaces_[egress->iface].ip;
  dgram.dst_ip = dst_ip;
  dgram.src_port = src_port;
  dgram.dst_port = dst_port;
  dgram.payload = std::move(payload);
  ++stats_.datagrams_sent;
  transmit_datagram(egress->iface, egress->next_hop, dgram);
  return true;
}

bool Host::send_udp(IpAddress dst_ip, std::uint16_t dst_port,
                    std::uint16_t src_port,
                    std::span<const std::uint8_t> payload) {
  if (!firewall_.permits(Direction::kOutbound, dst_ip, src_port, dst_port)) {
    ++stats_.dropped_firewall_out;
    return false;
  }
  const auto egress = resolve_egress(dst_ip);
  if (!egress) return false;

  const Interface& nic = ifaces_[egress->iface];
  const auto mac_it = arp_table_.find(egress->next_hop);
  if (mac_it == arp_table_.end()) {
    // ARP not resolved: the datagram must be queued in owned form, so
    // take the ordinary path.
    return send_udp(dst_ip, dst_port, src_port,
                    util::Bytes(payload.begin(), payload.end()));
  }

  // Fast path: serialize the datagram directly around the borrowed
  // payload — one allocation, one copy — and move the frame down the
  // transmit chain.
  ++stats_.datagrams_sent;
  if (!nic.tx) return true;
  util::ByteWriter w(4 + 4 + 2 + 2 + 1 + 4 + payload.size());
  w.u32(nic.ip.value);
  w.u32(dst_ip.value);
  w.u16(src_port);
  w.u16(dst_port);
  w.u8(Datagram{}.ttl);
  w.blob(payload);
  nic.tx(EthernetFrame{nic.mac, mac_it->second, EtherType::kIpv4, w.take()});
  return true;
}

void Host::transmit_datagram(std::size_t iface, IpAddress next_hop,
                             const Datagram& dgram) {
  Interface& nic = ifaces_[iface];
  if (!nic.tx) return;

  const auto mac_it = arp_table_.find(next_hop);
  if (mac_it == arp_table_.end()) {
    if (static_arp_) {
      // Static mapping is authoritative: unknown next hop is a
      // misconfiguration, not something to resolve dynamically.
      log_.debug("static ARP has no entry for ", next_hop.str(), "; dropping");
      return;
    }
    const bool already_resolving = arp_pending_.count(next_hop) > 0;
    arp_pending_[next_hop].emplace_back(iface, dgram);
    if (!already_resolving) {
      ArpPacket req;
      req.op = ArpOp::kRequest;
      req.sender_mac = nic.mac;
      req.sender_ip = nic.ip;
      req.target_ip = next_hop;
      nic.tx(EthernetFrame{nic.mac, MacAddress::broadcast(), EtherType::kArp,
                           req.encode()});
    }
    return;
  }

  nic.tx(EthernetFrame{nic.mac, mac_it->second, EtherType::kIpv4,
                       dgram.encode()});
}

void Host::send_frame_raw(std::size_t iface, const EthernetFrame& frame) {
  Interface& nic = ifaces_.at(iface);
  if (nic.tx) nic.tx(frame);
}

void Host::enable_forwarding(bool default_deny) {
  forwarding_ = true;
  forward_default_deny_ = default_deny;
}

void Host::handle_frame(std::size_t iface, const EthernetFrame& frame) {
  ++stats_.frames_rx;
  Interface& nic = ifaces_.at(iface);

  if (sniffer_ && (nic.promiscuous || frame.dst == nic.mac ||
                   frame.dst.is_broadcast())) {
    sniffer_(iface, frame);
  }

  const bool for_us = frame.dst == nic.mac || frame.dst.is_broadcast();
  if (!for_us && !nic.promiscuous) return;

  switch (frame.ethertype) {
    case EtherType::kArp: {
      if (const auto arp = ArpPacket::decode(frame.payload)) {
        handle_arp(iface, *arp);
      }
      break;
    }
    case EtherType::kIpv4: {
      if (!for_us) break;  // promiscuous sniffing never delivers upward
      if (const auto dgram = Datagram::decode(frame.payload)) {
        handle_datagram(iface, *dgram);
      }
      break;
    }
  }
}

void Host::handle_arp(std::size_t iface, const ArpPacket& arp) {
  Interface& nic = ifaces_[iface];
  if (arp.op == ArpOp::kRequest) {
    const bool mine = arp.target_ip == nic.ip;
    const bool other_local = !mine && is_local_ip(arp.target_ip);
    if (mine || (other_local && arp_any_local_)) {
      ArpPacket reply;
      reply.op = ArpOp::kReply;
      reply.sender_mac = nic.mac;
      reply.sender_ip = arp.target_ip;
      reply.target_mac = arp.sender_mac;
      reply.target_ip = arp.sender_ip;
      if (nic.tx) {
        nic.tx(EthernetFrame{nic.mac, arp.sender_mac, EtherType::kArp,
                             reply.encode()});
      }
    }
    // Opportunistically learn the requester (standard OS behaviour;
    // also a poisoning vector, which is the point).
    if (!static_arp_) arp_table_[arp.sender_ip] = arp.sender_mac;
    return;
  }

  // ARP reply (possibly gratuitous / forged).
  if (static_arp_) {
    ++stats_.arp_replies_ignored_static;
    return;
  }
  ++stats_.arp_replies_accepted;
  arp_table_[arp.sender_ip] = arp.sender_mac;

  const auto pending = arp_pending_.find(arp.sender_ip);
  if (pending != arp_pending_.end()) {
    auto queued = std::move(pending->second);
    arp_pending_.erase(pending);
    for (auto& [out_iface, dgram] : queued) {
      transmit_datagram(out_iface, arp.sender_ip, dgram);
    }
  }
}

void Host::handle_datagram(std::size_t iface, const Datagram& dgram) {
  if (!is_local_ip(dgram.dst_ip)) {
    if (interceptor_ && interceptor_(iface, dgram)) return;
    if (forwarding_) forward_datagram(dgram);
    return;
  }

  if (!firewall_.permits(Direction::kInbound, dgram.src_ip, dgram.dst_port,
                         dgram.src_port)) {
    ++stats_.dropped_firewall_in;
    return;
  }

  const auto handler = udp_handlers_.find(dgram.dst_port);
  if (handler == udp_handlers_.end()) {
    ++stats_.dropped_no_handler;
    return;
  }
  ++stats_.datagrams_delivered;
  handler->second(dgram);
}

void Host::forward_datagram(Datagram dgram) {
  if (dgram.ttl <= 1) return;
  dgram.ttl--;

  bool allowed = !forward_default_deny_;
  for (const auto& rule : forward_allow_) {
    if (rule.src_ip && *rule.src_ip != dgram.src_ip) continue;
    if (rule.dst_ip && *rule.dst_ip != dgram.dst_ip) continue;
    if (rule.dst_port && *rule.dst_port != dgram.dst_port) continue;
    allowed = true;
    break;
  }
  if (!allowed) {
    ++stats_.dropped_forward_acl;
    return;
  }

  // Longest-prefix match over static routes, then directly attached nets.
  std::optional<Route> best;
  for (const auto& route : routes_) {
    if (!dgram.dst_ip.same_subnet(route.prefix, route.prefix_len)) continue;
    if (!best || route.prefix_len > best->prefix_len) best = route;
  }
  std::size_t iface;
  IpAddress next_hop = dgram.dst_ip;
  if (best) {
    iface = best->out_interface;
    if (best->next_hop) next_hop = *best->next_hop;
  } else if (auto direct = interface_for(dgram.dst_ip)) {
    iface = *direct;
  } else {
    return;
  }
  ++stats_.forwarded;
  transmit_datagram(iface, next_hop, dgram);
}

}  // namespace spire::net
