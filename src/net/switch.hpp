// Emulated Ethernet switch.
//
// Models the pieces of switch behaviour the paper's red-team story
// turns on: MAC learning (attackable) versus static MAC↔port bindings
// (the §III-B defense), frame flooding, port mirroring for packet
// capture, and bounded egress queues so traffic bursts can actually
// cause loss (the red team's DoS attempts).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/pcap.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace spire::net {

using PortId = std::size_t;

struct SwitchConfig {
  std::string name = "switch";
  /// Propagation delay applied to every forwarded frame.
  sim::Time propagation_delay = 50;  // 50 us
  /// Serialization rate in bytes per microsecond (125 ≈ 1 Gb/s).
  double bytes_per_us = 125.0;
  /// Max frames queued per egress port; beyond this, frames drop.
  std::size_t egress_queue_frames = 256;
  /// When true, a frame is only accepted from a port if its source MAC
  /// matches the static binding, and forwarding uses only the static
  /// table (no learning, no unknown-unicast flooding of bound MACs).
  bool static_port_binding = false;
};

/// Per-switch counters exposed to tests and benches.
struct SwitchStats {
  std::uint64_t frames_forwarded = 0;
  std::uint64_t frames_flooded = 0;
  std::uint64_t frames_dropped_queue = 0;
  std::uint64_t frames_dropped_binding = 0;
  std::uint64_t frames_dropped_chaos = 0;  ///< chaos-injected loss
};

class Switch {
 public:
  Switch(sim::Simulator& sim, SwitchConfig config);

  /// Adds a port; `deliver` is invoked (after forwarding delay) for each
  /// frame the switch emits on this port. Returns the port id.
  PortId add_port(std::function<void(const EthernetFrame&)> deliver);

  /// Statically binds a MAC to a port (defense from §III-B). Only
  /// enforced when config.static_port_binding is true.
  void bind_mac(const MacAddress& mac, PortId port);

  /// Parallel-kernel placement (DESIGN.md §8): the switch's own state —
  /// tables, taps, queue bookkeeping, chaos RNG — lives on `shard_`
  /// (defaults to the ambient shard at construction), and each port
  /// remembers the shard of its attached device so egress deliveries
  /// can be posted to the right mailbox. Wire-time only, not mid-run.
  void set_shard(sim::ShardId shard) { shard_ = shard; }
  [[nodiscard]] sim::ShardId shard() const { return shard_; }
  void set_port_shard(PortId port, sim::ShardId shard);

  /// Frame arriving from the device attached to `ingress`. Taken by
  /// value: the unicast forwarding path moves the frame into the
  /// scheduled delivery instead of copying the payload.
  void receive(PortId ingress, EthernetFrame frame);

  /// Registers an out-of-band capture tap mirroring all traffic
  /// (legacy full-copy path; the label is interned once, here).
  void add_tap(std::string network_label, PcapSink sink);

  /// Registers a line-rate capture tap: every mirrored frame is
  /// summarized straight into the tap's ring with no allocation. The
  /// tap must outlive the switch (benches own both).
  void add_capture_tap(CaptureTap* tap);

  /// Chaos injection (fault-injection harness): independently drops
  /// each forwarded frame with probability `loss` and delays survivors
  /// by an extra uniform amount in [0, max_jitter]. (0, 0) heals.
  void set_chaos(double loss, sim::Time max_jitter);

  [[nodiscard]] const SwitchStats& stats() const { return stats_; }
  [[nodiscard]] const SwitchConfig& config() const { return config_; }
  [[nodiscard]] std::size_t port_count() const { return ports_.size(); }

 private:
  struct Port {
    std::function<void(const EthernetFrame&)> deliver;
    sim::Time busy_until = 0;
    std::size_t queued = 0;
    /// Shard of the attached device. `deliver` is wired once at build
    /// time and only read afterwards, so a cross-shard delivery event
    /// may call it while the switch shard updates the scheduling fields
    /// above — distinct memory locations, no race.
    sim::ShardId shard = sim::kMainShard;
  };

  void emit(PortId port, EthernetFrame frame);

  sim::Simulator& sim_;
  SwitchConfig config_;
  sim::ShardId shard_;
  util::Logger log_;
  std::vector<Port> ports_;
  std::map<MacAddress, PortId> static_table_;
  std::map<MacAddress, PortId> learned_table_;
  struct Tap {
    NetworkId label = 0;  // interned at add_tap time
    PcapSink sink;
  };
  std::vector<Tap> taps_;
  std::vector<CaptureTap*> capture_taps_;
  double chaos_loss_ = 0;
  sim::Time chaos_jitter_ = 0;
  sim::Rng chaos_rng_{0xC7A0'5BAD'F00D'2019ULL};
  SwitchStats stats_;
};

}  // namespace spire::net
