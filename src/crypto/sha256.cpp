#include "crypto/sha256.hpp"

#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define SPIRE_SHA256_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace spire::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInit = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

#ifdef SPIRE_SHA256_X86_DISPATCH

/// One compression using the x86 SHA extensions (~6x the scalar loop).
/// Compiled for the sha/ssse3/sse4.1 ISA but only called after a runtime
/// CPUID check, so the binary still runs on CPUs without them.
__attribute__((target("sha,ssse3,sse4.1"))) void process_block_shani(
    std::uint32_t* state, const std::uint8_t* block) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack the a..h state words into the ABEF/CDGH lanes the sha256rnds2
  // instruction expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);

  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;
  __m128i msg, msg0, msg1, msg2, msg3;

  // Rounds 0-3
  msg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
  msg0 = _mm_shuffle_epi8(msg, kShuffle);
  msg = _mm_add_epi32(msg0,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[0])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 4-7
  msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16));
  msg1 = _mm_shuffle_epi8(msg1, kShuffle);
  msg = _mm_add_epi32(msg1,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 8-11
  msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32));
  msg2 = _mm_shuffle_epi8(msg2, kShuffle);
  msg = _mm_add_epi32(msg2,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[8])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 12-15
  msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48));
  msg3 = _mm_shuffle_epi8(msg3, kShuffle);
  msg = _mm_add_epi32(msg3,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[12])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 16-19
  msg = _mm_add_epi32(msg0,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[16])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 20-23
  msg = _mm_add_epi32(msg1,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[20])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 24-27
  msg = _mm_add_epi32(msg2,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[24])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 28-31
  msg = _mm_add_epi32(msg3,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[28])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 32-35
  msg = _mm_add_epi32(msg0,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[32])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 36-39
  msg = _mm_add_epi32(msg1,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[36])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 40-43
  msg = _mm_add_epi32(msg2,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[40])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 44-47
  msg = _mm_add_epi32(msg3,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[44])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg3, msg2, 4);
  msg0 = _mm_add_epi32(msg0, tmp);
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 48-51
  msg = _mm_add_epi32(msg0,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[48])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg0, msg3, 4);
  msg1 = _mm_add_epi32(msg1, tmp);
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 52-55
  msg = _mm_add_epi32(msg1,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[52])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg1, msg0, 4);
  msg2 = _mm_add_epi32(msg2, tmp);
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 56-59
  msg = _mm_add_epi32(msg2,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[56])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  tmp = _mm_alignr_epi8(msg2, msg1, 4);
  msg3 = _mm_add_epi32(msg3, tmp);
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  // Rounds 60-63
  msg = _mm_add_epi32(msg3,
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[60])));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  // Unpack ABEF/CDGH back to a..h.
  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);

  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

bool detect_shani() {
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("ssse3") &&
         __builtin_cpu_supports("sse4.1");
}

const bool kHasShaNi = detect_shani();

#endif  // SPIRE_SHA256_X86_DISPATCH

}  // namespace

Sha256::Sha256() { reset(); }

void Sha256::reset() {
  state_ = kInit;
  buffered_ = 0;
  total_bits_ = 0;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Digest Sha256::finish() {
  // Padding: 0x80, zeros, 64-bit big-endian bit length.
  std::array<std::uint8_t, 72> pad{};
  pad[0] = 0x80;
  const std::uint64_t bits = total_bits_;
  std::size_t pad_len = (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  update(std::span<const std::uint8_t>(pad.data(), pad_len));
  std::array<std::uint8_t, 8> len_bytes{};
  for (int i = 0; i < 8; ++i) {
    len_bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  update(len_bytes);

  Digest out{};
  for (std::size_t i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

void Sha256::process_block(const std::uint8_t* block) {
#ifdef SPIRE_SHA256_X86_DISPATCH
  if (kHasShaNi) {
    process_block_shani(state_.data(), block);
    return;
  }
#endif
  std::array<std::uint32_t, 64> w{};
  for (std::size_t i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (std::size_t i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  auto [a, b, c, d, e, f, g, h] = state_;
  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Digest sha256(std::span<const std::uint8_t> data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Digest sha256(std::string_view s) {
  Sha256 ctx;
  ctx.update(s);
  return ctx.finish();
}

std::uint64_t digest_prefix64(const Digest& d) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[static_cast<std::size_t>(i)];
  return v;
}

}  // namespace spire::crypto
