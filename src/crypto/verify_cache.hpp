// Memo of successfully verified message envelopes.
//
// A Prime replica verifies the same authenticated bytes repeatedly:
// its own broadcasts come back through self-delivery, PO-ARU rows
// embedded in PrePrepares were almost always already verified as
// standalone PO-ARUs, and prepared-proof / certificate envelopes are
// re-checked every time a proof is evaluated. The cache remembers
// exactly which (sender, bytes) pairs already passed HMAC verification
// so each is paid for once.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_set>

#include "crypto/sha256.hpp"

namespace spire::crypto {

/// Bounded memo of verified envelopes.
///
/// Security argument: the key is (sender identity, SHA-256 of the FULL
/// authenticated unit, signature included). A forged envelope that
/// reuses a cached signature over different bytes hashes differently,
/// and the same bytes under a different claimed sender key
/// differently, so neither can ever hit — both fall through to the
/// full HMAC check and fail there. Eviction is FIFO with a fixed
/// capacity, so the cache only ever forgets (forcing a re-verify),
/// never fabricates an acceptance. The owner must clear() on proactive
/// recovery: a rejuvenated replica starts from fresh key material and
/// pre-recovery acceptances are no longer trustworthy.
class VerifyCache {
 public:
  explicit VerifyCache(std::size_t capacity = 4096) : capacity_(capacity) {}

  [[nodiscard]] bool contains(std::string_view sender,
                              const Digest& digest) const {
    return set_.find(Key{std::string(sender), digest}) != set_.end();
  }

  void insert(std::string_view sender, const Digest& digest) {
    Key k{std::string(sender), digest};
    if (!set_.insert(k).second) return;
    order_.push_back(std::move(k));
    while (order_.size() > capacity_) {
      set_.erase(order_.front());
      order_.pop_front();
    }
  }

  void clear() {
    set_.clear();
    order_.clear();
  }

  [[nodiscard]] std::size_t size() const { return set_.size(); }

 private:
  struct Key {
    std::string sender;
    Digest digest;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // The digest is already uniform; fold the sender on top.
      auto h = static_cast<std::size_t>(digest_prefix64(k.digest));
      for (const char c : k.sender) {
        h = h * 131 + static_cast<unsigned char>(c);
      }
      return h;
    }
  };

  std::size_t capacity_;
  std::unordered_set<Key, KeyHash> set_;
  std::deque<Key> order_;
};

}  // namespace spire::crypto
