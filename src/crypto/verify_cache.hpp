// Memo of successfully verified message envelopes.
//
// A Prime replica verifies the same authenticated bytes repeatedly:
// its own broadcasts come back through self-delivery, PO-ARU rows
// embedded in PrePrepares were almost always already verified as
// standalone PO-ARUs, prepared-proof / certificate envelopes are
// re-checked every time a proof is evaluated, and every unit of a
// Merkle-signed batch shares one root signature. The cache remembers
// exactly which (sender, digest) pairs already passed HMAC
// verification so each is paid for once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "crypto/sha256.hpp"

namespace spire::crypto {

/// Bounded, allocation-free memo of verified digests.
///
/// Layout: a power-of-two flat table, set-associative with a small
/// probe window, indexed by the digest prefix. Lookups touch at most
/// kWays adjacent entries and never allocate — the old
/// unordered_set<string,...> version built a std::string per lookup,
/// which profiled at ~25% of the Prime ordering hot path.
///
/// Security argument: the digest is SHA-256 over the FULL authenticated
/// unit (signature included, sender identity embedded in the hashed
/// bytes — envelope sender field, PO-ARU replica id, or Merkle root of
/// such preimages). A forged unit that reuses a cached signature over
/// different bytes hashes differently, so it can never hit. The sender
/// identity is additionally folded in as a 64-bit FNV-1a hash as
/// defense in depth; producing a cross-sender false hit would require a
/// SHA-256 collision, not an FNV collision. Eviction (overwrite of a
/// colliding slot) only ever forgets an acceptance — forcing a
/// re-verify — never fabricates one. The owner must clear() on
/// proactive recovery: a rejuvenated replica starts from fresh key
/// material and pre-recovery acceptances are no longer trustworthy.
class VerifyCache {
 public:
  explicit VerifyCache(std::size_t capacity = 4096) {
    std::size_t cap = 16;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  [[nodiscard]] bool contains(std::string_view sender,
                              const Digest& digest) const {
    const std::uint64_t sh = sender_hash(sender);
    const std::size_t base = static_cast<std::size_t>(digest_prefix64(digest));
    for (std::size_t i = 0; i < kWays; ++i) {
      const Entry& e = slots_[(base + i) & mask_];
      if (e.used && e.sender == sh && e.digest == digest) return true;
    }
    return false;
  }

  void insert(std::string_view sender, const Digest& digest) {
    const std::uint64_t sh = sender_hash(sender);
    const std::size_t base = static_cast<std::size_t>(digest_prefix64(digest));
    std::size_t victim = base & mask_;
    for (std::size_t i = 0; i < kWays; ++i) {
      Entry& e = slots_[(base + i) & mask_];
      if (e.used && e.sender == sh && e.digest == digest) return;
      if (!e.used) {
        victim = (base + i) & mask_;
        break;
      }
    }
    Entry& e = slots_[victim];
    if (!e.used) {
      e.used = true;
      ++size_;
    }
    e.sender = sh;
    e.digest = digest;
  }

  void clear() {
    for (Entry& e : slots_) e.used = false;
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  static constexpr std::size_t kWays = 4;

  struct Entry {
    std::uint64_t sender = 0;
    Digest digest{};
    bool used = false;
  };

  [[nodiscard]] static std::uint64_t sender_hash(std::string_view sender) {
    std::uint64_t h = 14695981039346656037ULL;  // FNV-1a 64
    for (const char c : sender) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    return h;
  }

  std::vector<Entry> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace spire::crypto
