// Merkle-tree batch signing helper for the Prime ordering fast path.
//
// Real Prime amortizes signature cost by signing one Merkle root over
// all messages generated in a send tick and attaching an inclusion path
// to each outgoing unit (Amir et al., "Prime: Byzantine Replication
// Under Attack"). This helper provides the tree construction, inclusion
// paths, and the path-fold a receiver uses to recover the signed root
// from a single unit.
//
// Domain separation: leaves hash 0x00 || data and interior nodes hash
// 0x01 || left || right, so a leaf preimage can never be confused with
// a node preimage. Odd levels duplicate the last node. The classic
// duplicate-last ambiguity (a tree over [A, B, B] has the same root as
// one over [A, B]) is harmless here: both describe the same authentic
// unit contents, so no forged unit can be proven into a signed root.
//
// The signed message for a batch is 0x4D ('M') || root — a distinct
// domain from every protocol unit, so a root signature can never be
// replayed as a unit signature or vice versa.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"

namespace spire::crypto {

/// Domain tag prefixed to the root digest before signing.
inline constexpr std::uint8_t kMerkleRootDomain = 0x4D;

/// Leaf digest: H(0x00 || data).
[[nodiscard]] Digest merkle_leaf(std::span<const std::uint8_t> data);

/// Interior node digest: H(0x01 || left || right).
[[nodiscard]] Digest merkle_node(const Digest& left, const Digest& right);

/// The exact byte string signed for a batch: kMerkleRootDomain || root.
[[nodiscard]] std::array<std::uint8_t, 33> merkle_root_message(
    const Digest& root);

/// Merkle tree over precomputed leaf digests. A single-leaf tree's root
/// is the leaf itself (depth 0, empty inclusion path).
class MerkleTree {
 public:
  explicit MerkleTree(std::vector<Digest> leaves);

  [[nodiscard]] const Digest& root() const { return levels_.back().front(); }
  [[nodiscard]] std::size_t leaf_count() const { return levels_.front().size(); }

  /// Sibling digests from leaf level up to (but excluding) the root.
  [[nodiscard]] std::vector<Digest> path(std::size_t index) const;

  /// Receiver side: recompute the root implied by a leaf, its claimed
  /// index, and an inclusion path. The result is only meaningful once
  /// the root signature verifies.
  [[nodiscard]] static Digest fold(const Digest& leaf, std::size_t index,
                                   std::span<const Digest> path);

 private:
  // levels_[0] = leaves, levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
};

}  // namespace spire::crypto
