// Key management and message authentication for the reproduction.
//
// The real Spire deployment uses RSA signatures for Prime protocol
// messages and pre-shared keys for Spines link authentication and
// encryption. Here a trusted-dealer Keyring derives every key
// deterministically from a master seed, and "signatures" are
// HMAC-SHA256 authenticators under a per-sender key that all verifiers
// hold (DESIGN.md §3 documents this substitution). The attack
// framework honours the resulting rule: a compromised component can
// only authenticate messages as identities whose signing keys it
// actually holds.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace spire::crypto {

using SymmetricKey = std::array<std::uint8_t, 32>;

/// A per-sender message authenticator (signature substitute).
struct Signature {
  Digest mac{};

  bool operator==(const Signature&) const = default;

  void encode(util::ByteWriter& w) const {
    w.raw(std::span<const std::uint8_t>(mac.data(), mac.size()));
  }
  static Signature decode(util::ByteReader& r) {
    Signature s;
    const auto raw = r.raw(s.mac.size());
    std::copy(raw.begin(), raw.end(), s.mac.begin());
    return s;
  }
};

/// Derives all system keys from one master seed. In deployment terms
/// this plays the role of the offline provisioning step that installs
/// key material on each Spire component before it is fielded.
class Keyring {
 public:
  explicit Keyring(std::string_view master_seed);

  /// Per-identity signing/verification key ("replica/3", "hmi/0", ...).
  [[nodiscard]] SymmetricKey identity_key(std::string_view identity) const;

  /// Symmetric key for an overlay link, independent of direction.
  [[nodiscard]] SymmetricKey link_key(std::string_view endpoint_a,
                                      std::string_view endpoint_b) const;

  /// Arbitrary labelled key (session keys, network-wide group keys).
  [[nodiscard]] SymmetricKey derive(std::string_view label) const;

 private:
  SymmetricKey master_{};
};

/// Signs messages as one identity. The HMAC key schedule is expanded
/// once at construction, not per message.
class Signer {
 public:
  Signer(std::string identity, SymmetricKey key)
      : identity_(std::move(identity)), state_(key) {}

  [[nodiscard]] const std::string& identity() const { return identity_; }
  [[nodiscard]] Signature sign(std::span<const std::uint8_t> message) const;

 private:
  std::string identity_;
  HmacState state_;
};

/// Verifies authenticators from a set of known identities. Key
/// schedules are expanded once in add_identity(), not per verify.
class Verifier {
 public:
  void add_identity(std::string identity, SymmetricKey key);
  [[nodiscard]] bool knows(std::string_view identity) const;
  [[nodiscard]] bool verify(std::string_view identity,
                            std::span<const std::uint8_t> message,
                            const Signature& sig) const;

 private:
  std::map<std::string, HmacState, std::less<>> keys_;
};

/// Authenticated encryption for overlay links:
/// wire format = u64 nonce-counter || ciphertext || 32-byte HMAC tag.
/// The tag covers the nonce and the ciphertext (encrypt-then-MAC).
class SecureChannel {
 public:
  explicit SecureChannel(SymmetricKey key);

  /// Encrypts and authenticates. Each call consumes one nonce.
  [[nodiscard]] util::Bytes seal(std::span<const std::uint8_t> plaintext);

  /// Verifies and decrypts; nullopt on any tampering or truncation.
  [[nodiscard]] std::optional<util::Bytes> open(
      std::span<const std::uint8_t> sealed) const;

  static constexpr std::size_t kOverhead = 8 + 32;

 private:
  SymmetricKey enc_key_{};
  SymmetricKey mac_key_{};
  std::uint64_t next_nonce_ = 1;
};

}  // namespace spire::crypto
