// SHA-256 (FIPS 180-4), implemented from scratch and validated against
// the NIST test vectors in tests/crypto_test.cpp.
//
// Digests are the integrity primitive for everything above: HMAC link
// authentication in Spines, per-sender message authenticators in Prime,
// application state digests in the SCADA state-transfer protocol.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace spire::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  /// Finalizes and returns the digest. The context must not be reused
  /// afterwards without reset().
  [[nodiscard]] Digest finish();

  void reset();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// One-shot digest.
[[nodiscard]] Digest sha256(std::span<const std::uint8_t> data);
[[nodiscard]] Digest sha256(std::string_view s);

/// Truncated digest as u64 (for hash tables / fingerprints, not security).
[[nodiscard]] std::uint64_t digest_prefix64(const Digest& d);

}  // namespace spire::crypto
