#include "crypto/keyring.hpp"

#include <algorithm>

namespace spire::crypto {

namespace {

SymmetricKey digest_to_key(const Digest& d) {
  SymmetricKey k{};
  std::copy(d.begin(), d.end(), k.begin());
  return k;
}

util::Bytes key_span(std::string_view s) { return util::to_bytes(s); }

}  // namespace

Keyring::Keyring(std::string_view master_seed) {
  master_ = digest_to_key(sha256(master_seed));
}

SymmetricKey Keyring::derive(std::string_view label) const {
  const util::Bytes label_bytes = key_span(label);
  return digest_to_key(hmac_sha256(master_, label_bytes));
}

SymmetricKey Keyring::identity_key(std::string_view identity) const {
  return derive("identity:" + std::string(identity));
}

SymmetricKey Keyring::link_key(std::string_view endpoint_a,
                               std::string_view endpoint_b) const {
  std::string lo(endpoint_a);
  std::string hi(endpoint_b);
  if (hi < lo) std::swap(lo, hi);
  return derive("link:" + lo + "|" + hi);
}

Signature Signer::sign(std::span<const std::uint8_t> message) const {
  Signature s;
  s.mac = state_.mac(message);
  return s;
}

void Verifier::add_identity(std::string identity, SymmetricKey key) {
  keys_.insert_or_assign(std::move(identity), HmacState(key));
}

bool Verifier::knows(std::string_view identity) const {
  return keys_.find(identity) != keys_.end();
}

bool Verifier::verify(std::string_view identity,
                      std::span<const std::uint8_t> message,
                      const Signature& sig) const {
  const auto it = keys_.find(identity);
  if (it == keys_.end()) return false;
  const Digest expected = it->second.mac(message);
  return digest_equal(expected, sig.mac);
}

SecureChannel::SecureChannel(SymmetricKey key) {
  // Domain-separate the encryption and MAC keys from the link key.
  enc_key_ = digest_to_key(hmac_sha256(key, util::to_bytes("enc")));
  mac_key_ = digest_to_key(hmac_sha256(key, util::to_bytes("mac")));
}

util::Bytes SecureChannel::seal(std::span<const std::uint8_t> plaintext) {
  const std::uint64_t nonce_counter = next_nonce_++;
  ChaChaNonce nonce{};
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(nonce_counter >> (56 - 8 * i));
  }
  ChaChaKey ck{};
  std::copy(enc_key_.begin(), enc_key_.end(), ck.begin());
  util::Bytes ciphertext = chacha20_xor(ck, nonce, 1, plaintext);

  util::ByteWriter w;
  w.u64(nonce_counter);
  w.raw(ciphertext);
  const Digest tag = hmac_sha256(mac_key_, w.bytes());
  w.raw(std::span<const std::uint8_t>(tag.data(), tag.size()));
  return w.take();
}

std::optional<util::Bytes> SecureChannel::open(
    std::span<const std::uint8_t> sealed) const {
  if (sealed.size() < kOverhead) return std::nullopt;
  const std::size_t body_len = sealed.size() - 32;
  const Digest tag = hmac_sha256(mac_key_, sealed.subspan(0, body_len));
  Digest provided{};
  std::copy(sealed.begin() + static_cast<std::ptrdiff_t>(body_len),
            sealed.end(), provided.begin());
  if (!digest_equal(tag, provided)) return std::nullopt;

  util::ByteReader r(sealed.subspan(0, body_len));
  const std::uint64_t nonce_counter = r.u64();
  ChaChaNonce nonce{};
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(nonce_counter >> (56 - 8 * i));
  }
  ChaChaKey ck{};
  std::copy(enc_key_.begin(), enc_key_.end(), ck.begin());
  const auto ct = r.rest();
  return chacha20_xor(ck, nonce, 1, ct);
}

}  // namespace spire::crypto
