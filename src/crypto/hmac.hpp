// HMAC-SHA256 (RFC 2104), validated against RFC 4231 test vectors.
//
// Used for (a) per-hop link authentication in the Spines overlay and
// (b) per-sender message authenticators that stand in for the RSA
// signatures used by the real Prime/Spires deployment (see DESIGN.md
// §3 for why the substitution preserves the protocol behaviour).
#pragma once

#include <span>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace spire::crypto {

/// HMAC-SHA256 over `data` with `key`.
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> data);

/// Precomputed HMAC-SHA256 key schedule. Construction absorbs the
/// `key ^ ipad` and `key ^ opad` blocks into two SHA-256 midstates;
/// each mac() then copies the midstates instead of re-deriving them,
/// saving two compression rounds per authenticator — a large fraction
/// of the work for the short messages Prime exchanges.
class HmacState {
 public:
  HmacState() = default;
  explicit HmacState(std::span<const std::uint8_t> key);

  [[nodiscard]] Digest mac(std::span<const std::uint8_t> data) const;

 private:
  Sha256 inner_;  ///< midstate after key ^ ipad
  Sha256 outer_;  ///< midstate after key ^ opad
};

/// Constant-time-ish digest comparison (the simulation has no timing
/// side channels, but we keep the idiom).
[[nodiscard]] bool digest_equal(const Digest& a, const Digest& b);

}  // namespace spire::crypto
