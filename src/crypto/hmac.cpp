#include "crypto/hmac.hpp"

#include <array>

namespace spire::crypto {

HmacState::HmacState(std::span<const std::uint8_t> key) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k0{};
  if (key.size() > kBlock) {
    const Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), k0.begin());
  } else {
    std::copy(key.begin(), key.end(), k0.begin());
  }

  std::array<std::uint8_t, kBlock> ipad{};
  std::array<std::uint8_t, kBlock> opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k0[i] ^ 0x5c);
  }
  inner_.update(ipad);
  outer_.update(opad);
}

Digest HmacState::mac(std::span<const std::uint8_t> data) const {
  Sha256 inner = inner_;
  inner.update(data);
  const Digest inner_digest = inner.finish();

  Sha256 outer = outer_;
  outer.update(inner_digest);
  return outer.finish();
}

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> data) {
  return HmacState(key).mac(data);
}

bool digest_equal(const Digest& a, const Digest& b) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace spire::crypto
