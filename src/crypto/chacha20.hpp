// ChaCha20 stream cipher (RFC 8439 block function), validated against
// the RFC test vector. Provides the link encryption that Spines runs
// in intrusion-tolerant mode — the encryption that defeated the red
// team's modified-daemon attack in the paper (§IV-B).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace spire::crypto {

using ChaChaKey = std::array<std::uint8_t, 32>;
using ChaChaNonce = std::array<std::uint8_t, 12>;

/// Computes one 64-byte ChaCha20 keystream block (RFC 8439 §2.3).
[[nodiscard]] std::array<std::uint8_t, 64> chacha20_block(
    const ChaChaKey& key, std::uint32_t counter, const ChaChaNonce& nonce);

/// XORs `data` with the keystream starting at block `counter`.
/// Encryption and decryption are the same operation.
[[nodiscard]] util::Bytes chacha20_xor(const ChaChaKey& key,
                                       const ChaChaNonce& nonce,
                                       std::uint32_t counter,
                                       std::span<const std::uint8_t> data);

}  // namespace spire::crypto
