#include "crypto/merkle.hpp"

#include <stdexcept>

namespace spire::crypto {

Digest merkle_leaf(std::span<const std::uint8_t> data) {
  Sha256 h;
  const std::uint8_t tag = 0x00;
  h.update(std::span<const std::uint8_t>(&tag, 1));
  h.update(data);
  return h.finish();
}

Digest merkle_node(const Digest& left, const Digest& right) {
  Sha256 h;
  const std::uint8_t tag = 0x01;
  h.update(std::span<const std::uint8_t>(&tag, 1));
  h.update(left);
  h.update(right);
  return h.finish();
}

std::array<std::uint8_t, 33> merkle_root_message(const Digest& root) {
  std::array<std::uint8_t, 33> msg{};
  msg[0] = kMerkleRootDomain;
  std::copy(root.begin(), root.end(), msg.begin() + 1);
  return msg;
}

MerkleTree::MerkleTree(std::vector<Digest> leaves) {
  if (leaves.empty()) throw std::invalid_argument("merkle tree needs leaves");
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      const Digest& left = prev[i];
      const Digest& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(merkle_node(left, right));
    }
    levels_.push_back(std::move(next));
  }
}

std::vector<Digest> MerkleTree::path(std::size_t index) const {
  if (index >= leaf_count()) throw std::out_of_range("merkle leaf index");
  std::vector<Digest> out;
  out.reserve(levels_.size() - 1);
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = index ^ 1;
    out.push_back(sibling < nodes.size() ? nodes[sibling] : nodes[index]);
    index >>= 1;
  }
  return out;
}

Digest MerkleTree::fold(const Digest& leaf, std::size_t index,
                        std::span<const Digest> path) {
  Digest node = leaf;
  for (const Digest& sibling : path) {
    node = (index & 1) ? merkle_node(sibling, node) : merkle_node(node, sibling);
    index >>= 1;
  }
  return node;
}

}  // namespace spire::crypto
