// Modbus data model: the four standard register banks of a field
// device. The PLC's process image (breaker positions, measurements)
// lives here; the Modbus server executes requests against it.
#pragma once

#include <cstdint>
#include <vector>

#include "modbus/pdu.hpp"

namespace spire::modbus {

class DataModel {
 public:
  DataModel(std::size_t coils, std::size_t discrete_inputs,
            std::size_t holding_registers, std::size_t input_registers);

  // Direct accessors used by the PLC scan logic (bounds-checked).
  [[nodiscard]] bool coil(std::size_t addr) const { return coils_.at(addr); }
  void set_coil(std::size_t addr, bool v) { coils_.at(addr) = v; }
  [[nodiscard]] bool discrete_input(std::size_t addr) const {
    return discrete_inputs_.at(addr);
  }
  void set_discrete_input(std::size_t addr, bool v) {
    discrete_inputs_.at(addr) = v;
  }
  [[nodiscard]] std::uint16_t holding_register(std::size_t addr) const {
    return holding_.at(addr);
  }
  void set_holding_register(std::size_t addr, std::uint16_t v) {
    holding_.at(addr) = v;
  }
  [[nodiscard]] std::uint16_t input_register(std::size_t addr) const {
    return input_.at(addr);
  }
  void set_input_register(std::size_t addr, std::uint16_t v) {
    input_.at(addr) = v;
  }

  [[nodiscard]] std::size_t coil_count() const { return coils_.size(); }
  [[nodiscard]] std::size_t holding_count() const { return holding_.size(); }

  /// Executes a decoded request against the model, honouring Modbus
  /// addressing/exception semantics.
  [[nodiscard]] Response execute(const Request& request);

 private:
  std::vector<bool> coils_;
  std::vector<bool> discrete_inputs_;
  std::vector<std::uint16_t> holding_;
  std::vector<std::uint16_t> input_;
};

}  // namespace spire::modbus
