#include "modbus/pdu.hpp"

namespace spire::modbus {

namespace {

void pack_bits(util::ByteWriter& w, const std::vector<bool>& bits) {
  const std::size_t byte_count = (bits.size() + 7) / 8;
  w.u8(static_cast<std::uint8_t>(byte_count));
  for (std::size_t b = 0; b < byte_count; ++b) {
    std::uint8_t value = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      const std::size_t idx = b * 8 + i;
      if (idx < bits.size() && bits[idx]) value |= static_cast<std::uint8_t>(1u << i);
    }
    w.u8(value);
  }
}

std::optional<std::vector<bool>> unpack_bits(util::ByteReader& r,
                                             std::size_t count) {
  const std::uint8_t byte_count = r.u8();
  if (byte_count != (count + 7) / 8) return std::nullopt;
  std::vector<bool> bits(count);
  for (std::size_t b = 0; b < byte_count; ++b) {
    const std::uint8_t value = r.u8();
    for (std::size_t i = 0; i < 8; ++i) {
      const std::size_t idx = b * 8 + i;
      if (idx < count) bits[idx] = (value >> i) & 1;
    }
  }
  return bits;
}

}  // namespace

util::Bytes Adu::encode() const {
  util::ByteWriter w;
  w.u16(transaction_id);
  w.u16(0);  // protocol id: always 0 for Modbus
  w.u16(static_cast<std::uint16_t>(pdu.size() + 1));  // length incl. unit id
  w.u8(unit_id);
  w.raw(pdu);
  return w.take();
}

std::optional<Adu> Adu::decode(std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    Adu adu;
    adu.transaction_id = r.u16();
    const std::uint16_t protocol = r.u16();
    if (protocol != 0) return std::nullopt;
    const std::uint16_t length = r.u16();
    if (length < 2 || length != r.remaining()) return std::nullopt;
    adu.unit_id = r.u8();
    adu.pdu = r.raw(r.remaining());
    if (adu.pdu.empty()) return std::nullopt;
    return adu;
  } catch (const util::SerializationError&) {
    return std::nullopt;
  }
}

util::Bytes encode_request(const Request& request) {
  util::ByteWriter w;
  std::visit(
      [&w](const auto& req) {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, ReadBitsRequest> ||
                      std::is_same_v<T, ReadRegistersRequest>) {
          w.u8(static_cast<std::uint8_t>(req.fc));
          w.u16(req.start);
          w.u16(req.quantity);
        } else if constexpr (std::is_same_v<T, WriteSingleCoilRequest>) {
          w.u8(static_cast<std::uint8_t>(FunctionCode::kWriteSingleCoil));
          w.u16(req.address);
          w.u16(req.value ? 0xFF00 : 0x0000);
        } else if constexpr (std::is_same_v<T, WriteSingleRegisterRequest>) {
          w.u8(static_cast<std::uint8_t>(FunctionCode::kWriteSingleRegister));
          w.u16(req.address);
          w.u16(req.value);
        } else if constexpr (std::is_same_v<T, WriteMultipleCoilsRequest>) {
          w.u8(static_cast<std::uint8_t>(FunctionCode::kWriteMultipleCoils));
          w.u16(req.start);
          w.u16(static_cast<std::uint16_t>(req.values.size()));
          pack_bits(w, req.values);
        } else if constexpr (std::is_same_v<T, WriteMultipleRegistersRequest>) {
          w.u8(static_cast<std::uint8_t>(FunctionCode::kWriteMultipleRegisters));
          w.u16(req.start);
          w.u16(static_cast<std::uint16_t>(req.values.size()));
          w.u8(static_cast<std::uint8_t>(req.values.size() * 2));
          for (auto v : req.values) w.u16(v);
        }
      },
      request);
  return w.take();
}

std::optional<Request> decode_request(std::span<const std::uint8_t> pdu) {
  try {
    util::ByteReader r(pdu);
    const auto fc = static_cast<FunctionCode>(r.u8());
    switch (fc) {
      case FunctionCode::kReadCoils:
      case FunctionCode::kReadDiscreteInputs: {
        ReadBitsRequest req;
        req.fc = fc;
        req.start = r.u16();
        req.quantity = r.u16();
        r.expect_done();
        return req;
      }
      case FunctionCode::kReadHoldingRegisters:
      case FunctionCode::kReadInputRegisters: {
        ReadRegistersRequest req;
        req.fc = fc;
        req.start = r.u16();
        req.quantity = r.u16();
        r.expect_done();
        return req;
      }
      case FunctionCode::kWriteSingleCoil: {
        WriteSingleCoilRequest req;
        req.address = r.u16();
        const std::uint16_t v = r.u16();
        if (v != 0xFF00 && v != 0x0000) return std::nullopt;
        req.value = v == 0xFF00;
        r.expect_done();
        return req;
      }
      case FunctionCode::kWriteSingleRegister: {
        WriteSingleRegisterRequest req;
        req.address = r.u16();
        req.value = r.u16();
        r.expect_done();
        return req;
      }
      case FunctionCode::kWriteMultipleCoils: {
        WriteMultipleCoilsRequest req;
        req.start = r.u16();
        const std::uint16_t quantity = r.u16();
        auto bits = unpack_bits(r, quantity);
        if (!bits) return std::nullopt;
        req.values = std::move(*bits);
        r.expect_done();
        return req;
      }
      case FunctionCode::kWriteMultipleRegisters: {
        WriteMultipleRegistersRequest req;
        req.start = r.u16();
        const std::uint16_t quantity = r.u16();
        const std::uint8_t byte_count = r.u8();
        if (byte_count != quantity * 2) return std::nullopt;
        req.values.reserve(quantity);
        for (std::uint16_t i = 0; i < quantity; ++i) req.values.push_back(r.u16());
        r.expect_done();
        return req;
      }
    }
    return std::nullopt;
  } catch (const util::SerializationError&) {
    return std::nullopt;
  }
}

util::Bytes encode_response(const Response& response) {
  util::ByteWriter w;
  std::visit(
      [&w](const auto& resp) {
        using T = std::decay_t<decltype(resp)>;
        if constexpr (std::is_same_v<T, ReadBitsResponse>) {
          w.u8(static_cast<std::uint8_t>(resp.fc));
          pack_bits(w, resp.values);
        } else if constexpr (std::is_same_v<T, ReadRegistersResponse>) {
          w.u8(static_cast<std::uint8_t>(resp.fc));
          w.u8(static_cast<std::uint8_t>(resp.values.size() * 2));
          for (auto v : resp.values) w.u16(v);
        } else if constexpr (std::is_same_v<T, WriteSingleCoilResponse>) {
          w.u8(static_cast<std::uint8_t>(FunctionCode::kWriteSingleCoil));
          w.u16(resp.address);
          w.u16(resp.value ? 0xFF00 : 0x0000);
        } else if constexpr (std::is_same_v<T, WriteSingleRegisterResponse>) {
          w.u8(static_cast<std::uint8_t>(FunctionCode::kWriteSingleRegister));
          w.u16(resp.address);
          w.u16(resp.value);
        } else if constexpr (std::is_same_v<T, WriteMultipleResponse>) {
          w.u8(static_cast<std::uint8_t>(resp.fc));
          w.u16(resp.start);
          w.u16(resp.quantity);
        } else if constexpr (std::is_same_v<T, ExceptionResponse>) {
          w.u8(static_cast<std::uint8_t>(static_cast<std::uint8_t>(resp.fc) | 0x80));
          w.u8(static_cast<std::uint8_t>(resp.code));
        }
      },
      response);
  return w.take();
}

std::optional<Response> decode_response(std::span<const std::uint8_t> pdu) {
  try {
    util::ByteReader r(pdu);
    const std::uint8_t raw_fc = r.u8();
    if (raw_fc & 0x80) {
      ExceptionResponse resp;
      resp.fc = static_cast<FunctionCode>(raw_fc & 0x7F);
      resp.code = static_cast<ExceptionCode>(r.u8());
      r.expect_done();
      return resp;
    }
    const auto fc = static_cast<FunctionCode>(raw_fc);
    switch (fc) {
      case FunctionCode::kReadCoils:
      case FunctionCode::kReadDiscreteInputs: {
        ReadBitsResponse resp;
        resp.fc = fc;
        const std::uint8_t byte_count = r.u8();
        std::vector<bool> bits(static_cast<std::size_t>(byte_count) * 8);
        for (std::size_t b = 0; b < byte_count; ++b) {
          const std::uint8_t value = r.u8();
          for (std::size_t i = 0; i < 8; ++i) bits[b * 8 + i] = (value >> i) & 1;
        }
        resp.values = std::move(bits);
        r.expect_done();
        return resp;
      }
      case FunctionCode::kReadHoldingRegisters:
      case FunctionCode::kReadInputRegisters: {
        ReadRegistersResponse resp;
        resp.fc = fc;
        const std::uint8_t byte_count = r.u8();
        if (byte_count % 2 != 0) return std::nullopt;
        resp.values.reserve(byte_count / 2);
        for (std::size_t i = 0; i < byte_count / 2u; ++i) resp.values.push_back(r.u16());
        r.expect_done();
        return resp;
      }
      case FunctionCode::kWriteSingleCoil: {
        WriteSingleCoilResponse resp;
        resp.address = r.u16();
        const std::uint16_t v = r.u16();
        resp.value = v == 0xFF00;
        r.expect_done();
        return resp;
      }
      case FunctionCode::kWriteSingleRegister: {
        WriteSingleRegisterResponse resp;
        resp.address = r.u16();
        resp.value = r.u16();
        r.expect_done();
        return resp;
      }
      case FunctionCode::kWriteMultipleCoils:
      case FunctionCode::kWriteMultipleRegisters: {
        WriteMultipleResponse resp;
        resp.fc = fc;
        resp.start = r.u16();
        resp.quantity = r.u16();
        r.expect_done();
        return resp;
      }
    }
    return std::nullopt;
  } catch (const util::SerializationError&) {
    return std::nullopt;
  }
}

}  // namespace spire::modbus
