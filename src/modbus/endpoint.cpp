#include "modbus/endpoint.hpp"

namespace spire::modbus {

std::optional<util::Bytes> Server::handle(
    std::span<const std::uint8_t> request_bytes) {
  const auto adu = Adu::decode(request_bytes);
  if (!adu) return std::nullopt;
  const auto request = decode_request(adu->pdu);
  if (!request) {
    // Unknown function code: Modbus answers with IllegalFunction.
    Adu resp_adu;
    resp_adu.transaction_id = adu->transaction_id;
    resp_adu.unit_id = adu->unit_id;
    resp_adu.pdu = encode_response(ExceptionResponse{
        static_cast<FunctionCode>(adu->pdu.front() & 0x7F),
        ExceptionCode::kIllegalFunction});
    return resp_adu.encode();
  }
  ++served_;
  Adu resp_adu;
  resp_adu.transaction_id = adu->transaction_id;
  resp_adu.unit_id = adu->unit_id;
  resp_adu.pdu = encode_response(model_.execute(*request));
  return resp_adu.encode();
}

Client::Client(sim::Simulator& sim, std::string name, SendFn send)
    : sim_(sim), log_("modbus.client." + std::move(name)), send_(std::move(send)) {}

void Client::request(const Request& req, ResponseHandler on_response,
                     sim::Time timeout) {
  const std::uint16_t txn = next_txn_++;
  Adu adu;
  adu.transaction_id = txn;
  adu.pdu = encode_request(req);

  Pending pending;
  pending.handler = std::move(on_response);
  pending.timeout_event = sim_.schedule_after(timeout, [this, txn] {
    const auto it = pending_.find(txn);
    if (it == pending_.end()) return;
    auto handler = std::move(it->second.handler);
    pending_.erase(it);
    ++timeouts_;
    log_.debug("request ", txn, " timed out");
    handler(std::nullopt);
  });
  pending_.emplace(txn, std::move(pending));
  send_(adu.encode());
}

void Client::on_data(std::span<const std::uint8_t> data) {
  const auto adu = Adu::decode(data);
  if (!adu) return;
  const auto it = pending_.find(adu->transaction_id);
  if (it == pending_.end()) return;  // late or unsolicited
  sim_.cancel(it->second.timeout_event);
  auto handler = std::move(it->second.handler);
  pending_.erase(it);
  handler(decode_response(adu->pdu));
}

}  // namespace spire::modbus
