// Modbus/TCP protocol data units (MBAP header + PDU), per the Modbus
// Application Protocol Specification V1.1b3.
//
// This is the insecure-by-design industrial protocol the paper keeps
// off the network: in Spire it runs only across the direct cable
// between a PLC and its proxy (§II), while the commercial baseline
// speaks it straight over the operations switch — which is how the red
// team dumped and rewrote the PLC configuration (§IV-B).
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "util/bytes.hpp"

namespace spire::modbus {

/// Modbus function codes implemented by this stack.
enum class FunctionCode : std::uint8_t {
  kReadCoils = 0x01,
  kReadDiscreteInputs = 0x02,
  kReadHoldingRegisters = 0x03,
  kReadInputRegisters = 0x04,
  kWriteSingleCoil = 0x05,
  kWriteSingleRegister = 0x06,
  kWriteMultipleCoils = 0x0F,
  kWriteMultipleRegisters = 0x10,
};

enum class ExceptionCode : std::uint8_t {
  kIllegalFunction = 0x01,
  kIllegalDataAddress = 0x02,
  kIllegalDataValue = 0x03,
  kServerDeviceFailure = 0x04,
};

// ---- request PDUs ---------------------------------------------------------

struct ReadBitsRequest {  // coils (0x01) or discrete inputs (0x02)
  FunctionCode fc = FunctionCode::kReadCoils;
  std::uint16_t start = 0;
  std::uint16_t quantity = 0;
};

struct ReadRegistersRequest {  // holding (0x03) or input (0x04)
  FunctionCode fc = FunctionCode::kReadHoldingRegisters;
  std::uint16_t start = 0;
  std::uint16_t quantity = 0;
};

struct WriteSingleCoilRequest {
  std::uint16_t address = 0;
  bool value = false;  // encoded as 0xFF00 / 0x0000
};

struct WriteSingleRegisterRequest {
  std::uint16_t address = 0;
  std::uint16_t value = 0;
};

struct WriteMultipleCoilsRequest {
  std::uint16_t start = 0;
  std::vector<bool> values;
};

struct WriteMultipleRegistersRequest {
  std::uint16_t start = 0;
  std::vector<std::uint16_t> values;
};

using Request =
    std::variant<ReadBitsRequest, ReadRegistersRequest, WriteSingleCoilRequest,
                 WriteSingleRegisterRequest, WriteMultipleCoilsRequest,
                 WriteMultipleRegistersRequest>;

// ---- response PDUs --------------------------------------------------------

struct ReadBitsResponse {
  FunctionCode fc = FunctionCode::kReadCoils;
  std::vector<bool> values;
};

struct ReadRegistersResponse {
  FunctionCode fc = FunctionCode::kReadHoldingRegisters;
  std::vector<std::uint16_t> values;
};

struct WriteSingleCoilResponse {
  std::uint16_t address = 0;
  bool value = false;
};

struct WriteSingleRegisterResponse {
  std::uint16_t address = 0;
  std::uint16_t value = 0;
};

struct WriteMultipleResponse {  // 0x0F and 0x10 echo start/quantity
  FunctionCode fc = FunctionCode::kWriteMultipleCoils;
  std::uint16_t start = 0;
  std::uint16_t quantity = 0;
};

struct ExceptionResponse {
  FunctionCode fc = FunctionCode::kReadCoils;  ///< original function
  ExceptionCode code = ExceptionCode::kIllegalFunction;
};

using Response =
    std::variant<ReadBitsResponse, ReadRegistersResponse,
                 WriteSingleCoilResponse, WriteSingleRegisterResponse,
                 WriteMultipleResponse, ExceptionResponse>;

// ---- MBAP framing ---------------------------------------------------------

/// A complete Modbus/TCP application data unit.
struct Adu {
  std::uint16_t transaction_id = 0;
  std::uint8_t unit_id = 1;
  util::Bytes pdu;  ///< function code + data

  [[nodiscard]] util::Bytes encode() const;
  static std::optional<Adu> decode(std::span<const std::uint8_t> data);
};

/// PDU codecs. Decoding returns nullopt on malformed input.
[[nodiscard]] util::Bytes encode_request(const Request& request);
[[nodiscard]] std::optional<Request> decode_request(
    std::span<const std::uint8_t> pdu);
[[nodiscard]] util::Bytes encode_response(const Response& response);
[[nodiscard]] std::optional<Response> decode_response(
    std::span<const std::uint8_t> pdu);

}  // namespace spire::modbus
