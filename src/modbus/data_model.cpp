#include "modbus/data_model.hpp"

namespace spire::modbus {

DataModel::DataModel(std::size_t coils, std::size_t discrete_inputs,
                     std::size_t holding_registers, std::size_t input_registers)
    : coils_(coils, false),
      discrete_inputs_(discrete_inputs, false),
      holding_(holding_registers, 0),
      input_(input_registers, 0) {}

Response DataModel::execute(const Request& request) {
  return std::visit(
      [this](const auto& req) -> Response {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, ReadBitsRequest>) {
          const bool is_coils = req.fc == FunctionCode::kReadCoils;
          const auto& bank = is_coils ? coils_ : discrete_inputs_;
          if (req.quantity == 0 || req.quantity > 2000) {
            return ExceptionResponse{req.fc, ExceptionCode::kIllegalDataValue};
          }
          if (static_cast<std::size_t>(req.start) + req.quantity > bank.size()) {
            return ExceptionResponse{req.fc, ExceptionCode::kIllegalDataAddress};
          }
          ReadBitsResponse resp;
          resp.fc = req.fc;
          resp.values.assign(bank.begin() + req.start,
                             bank.begin() + req.start + req.quantity);
          return resp;
        } else if constexpr (std::is_same_v<T, ReadRegistersRequest>) {
          const bool is_holding = req.fc == FunctionCode::kReadHoldingRegisters;
          const auto& bank = is_holding ? holding_ : input_;
          if (req.quantity == 0 || req.quantity > 125) {
            return ExceptionResponse{req.fc, ExceptionCode::kIllegalDataValue};
          }
          if (static_cast<std::size_t>(req.start) + req.quantity > bank.size()) {
            return ExceptionResponse{req.fc, ExceptionCode::kIllegalDataAddress};
          }
          ReadRegistersResponse resp;
          resp.fc = req.fc;
          resp.values.assign(bank.begin() + req.start,
                             bank.begin() + req.start + req.quantity);
          return resp;
        } else if constexpr (std::is_same_v<T, WriteSingleCoilRequest>) {
          if (req.address >= coils_.size()) {
            return ExceptionResponse{FunctionCode::kWriteSingleCoil,
                                     ExceptionCode::kIllegalDataAddress};
          }
          coils_[req.address] = req.value;
          return WriteSingleCoilResponse{req.address, req.value};
        } else if constexpr (std::is_same_v<T, WriteSingleRegisterRequest>) {
          if (req.address >= holding_.size()) {
            return ExceptionResponse{FunctionCode::kWriteSingleRegister,
                                     ExceptionCode::kIllegalDataAddress};
          }
          holding_[req.address] = req.value;
          return WriteSingleRegisterResponse{req.address, req.value};
        } else if constexpr (std::is_same_v<T, WriteMultipleCoilsRequest>) {
          if (req.values.empty() || req.values.size() > 1968) {
            return ExceptionResponse{FunctionCode::kWriteMultipleCoils,
                                     ExceptionCode::kIllegalDataValue};
          }
          if (static_cast<std::size_t>(req.start) + req.values.size() >
              coils_.size()) {
            return ExceptionResponse{FunctionCode::kWriteMultipleCoils,
                                     ExceptionCode::kIllegalDataAddress};
          }
          for (std::size_t i = 0; i < req.values.size(); ++i) {
            coils_[req.start + i] = req.values[i];
          }
          return WriteMultipleResponse{FunctionCode::kWriteMultipleCoils,
                                       req.start,
                                       static_cast<std::uint16_t>(req.values.size())};
        } else {
          static_assert(std::is_same_v<T, WriteMultipleRegistersRequest>);
          if (req.values.empty() || req.values.size() > 123) {
            return ExceptionResponse{FunctionCode::kWriteMultipleRegisters,
                                     ExceptionCode::kIllegalDataValue};
          }
          if (static_cast<std::size_t>(req.start) + req.values.size() >
              holding_.size()) {
            return ExceptionResponse{FunctionCode::kWriteMultipleRegisters,
                                     ExceptionCode::kIllegalDataAddress};
          }
          for (std::size_t i = 0; i < req.values.size(); ++i) {
            holding_[req.start + i] = req.values[i];
          }
          return WriteMultipleResponse{
              FunctionCode::kWriteMultipleRegisters, req.start,
              static_cast<std::uint16_t>(req.values.size())};
        }
      },
      request);
}

}  // namespace spire::modbus
