// Modbus/TCP server and client endpoints.
//
// The server wraps a DataModel and turns request ADUs into response
// ADUs; the client issues requests with transaction-id matching and
// per-request timeouts. Both are transport-agnostic: callers provide a
// send function and feed received bytes in, so the same code runs over
// the emulated network (commercial baseline, proxy↔PLC cable) and in
// unit tests with a loopback.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "modbus/data_model.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace spire::modbus {

/// Standard Modbus/TCP port.
constexpr std::uint16_t kModbusPort = 502;

class Server {
 public:
  explicit Server(DataModel& model) : model_(model) {}

  /// Processes one request ADU; returns the response ADU bytes, or
  /// nullopt if the input is not a well-formed request (real servers
  /// drop such frames silently).
  [[nodiscard]] std::optional<util::Bytes> handle(
      std::span<const std::uint8_t> request_bytes);

  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

 private:
  DataModel& model_;
  std::uint64_t served_ = 0;
};

/// Asynchronous Modbus client.
class Client {
 public:
  using SendFn = std::function<void(const util::Bytes&)>;
  using ResponseHandler = std::function<void(std::optional<Response>)>;

  Client(sim::Simulator& sim, std::string name, SendFn send);

  /// Issues a request; `on_response` fires with the decoded response or
  /// nullopt on timeout.
  void request(const Request& req, ResponseHandler on_response,
               sim::Time timeout = 200 * sim::kMillisecond);

  /// Feed bytes received from the transport.
  void on_data(std::span<const std::uint8_t> data);

  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

 private:
  sim::Simulator& sim_;
  util::Logger log_;
  SendFn send_;
  std::uint16_t next_txn_ = 1;
  struct Pending {
    ResponseHandler handler;
    sim::EventId timeout_event = 0;
  };
  std::map<std::uint16_t, Pending> pending_;
  std::uint64_t timeouts_ = 0;
};

}  // namespace spire::modbus
