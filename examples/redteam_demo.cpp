// Red-team demo: a condensed, narrated version of the §IV experiment.
//
// Builds the hardened Spire deployment, plugs an attacker host into
// the operations switch, launches the red team's network attacks while
// the automatic breaker-cycling workload runs, and reports after each
// attack whether the operator's view ever diverged from the field.
// Run it and watch the attacks bounce off.
#include <cstdio>

#include "attack/attacker.hpp"
#include "mana/mana.hpp"
#include "scada/deployment.hpp"

using namespace spire;

namespace {

void banner(const char* text) { std::printf("\n--- %s ---\n", text); }

bool hmi_matches_field(scada::SpireDeployment& spire_sys) {
  const auto& hmi = spire_sys.hmi(0);
  for (const auto& device : spire_sys.config().scenario.devices) {
    const auto& plc = spire_sys.plc(device.name);
    for (std::size_t b = 0; b < device.breaker_names.size(); ++b) {
      if (hmi.display().breaker(device.name, b) != plc.breakers().closed(b)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  util::LogConfig::instance().level = util::LogLevel::kOff;
  std::printf("== Spire red-team demo (paper SIV) ==\n");

  sim::Simulator sim;
  scada::DeploymentConfig config;
  config.f = 1;
  config.k = 0;
  config.scenario = scada::ScenarioSpec::red_team();
  config.cycler_interval = 1 * sim::kSecond;
  scada::SpireDeployment spire_sys(sim, config);

  mana::Mana ids(mana::ManaConfig{.network = "operations-spire"});
  spire_sys.start();
  sim.run_until(5 * sim::kSecond);
  spire_sys.external_switch().add_tap(
      "operations-spire", [&](const net::PcapRecord& r) { ids.on_capture(r); });
  std::printf("deployment up: %u replicas, %zu PLCs behind proxies, "
              "cycling workload running\n",
              spire_sys.n(), config.scenario.devices.size());

  // Train MANA on the finalized network.
  sim.run_until(sim.now() + 30 * sim::kSecond);
  ids.flush_until(sim.now());
  ids.finish_training();
  std::printf("MANA trained on baseline capture\n");

  net::Host& rogue = spire_sys.network().add_host("redteam");
  rogue.add_interface(net::MacAddress::from_id(0xBAD),
                      net::IpAddress::make(10, 2, 0, 66), 24);
  spire_sys.network().connect(rogue, 0, spire_sys.external_switch());
  attack::Attacker attacker(sim, rogue);

  banner("attack 1: port scan of a replica host");
  const auto fw_before = spire_sys.replica_host(0).stats().dropped_firewall_in;
  attacker.port_scan(spire_sys.replica_host(0).ip(1), 8000, 8200,
                     2 * sim::kMillisecond);
  sim.run_until(sim.now() + 3 * sim::kSecond);
  std::printf("firewall dropped %llu probes; operator view consistent: %s\n",
              static_cast<unsigned long long>(
                  spire_sys.replica_host(0).stats().dropped_firewall_in -
                  fw_before),
              hmi_matches_field(spire_sys) ? "yes" : "NO");

  banner("attack 2: ARP poisoning of the HMI workstation");
  net::Host& hmi_host = spire_sys.network().host("hmi0");
  for (std::uint32_t i = 0; i < spire_sys.n(); ++i) {
    attacker.arp_poison(hmi_host.ip(0), hmi_host.mac(0),
                        spire_sys.replica_host(i).ip(1), 10);
  }
  sim.run_until(sim.now() + 3 * sim::kSecond);
  const auto binding = hmi_host.arp_lookup(spire_sys.replica_host(0).ip(1));
  std::printf("HMI's ARP binding for replica 0: %s (attacker is %s)\n",
              binding ? binding->str().c_str() : "none",
              rogue.mac(0).str().c_str());
  std::printf("static ARP held: %s\n",
              binding && *binding != rogue.mac(0) ? "yes" : "NO");

  banner("attack 3: denial-of-service burst at every replica");
  const auto version_before = spire_sys.hmi(0).displayed_version();
  for (std::uint32_t i = 0; i < spire_sys.n(); ++i) {
    attacker.dos_flood(spire_sys.replica_host(i).ip(1),
                       spire_sys.replica_host(i).mac(1), 8200, 2000,
                       2 * sim::kSecond, 1200);
  }
  sim.run_until(sim.now() + 5 * sim::kSecond);
  std::printf("HMI version advanced %llu -> %llu during the flood; "
              "operator view consistent: %s\n",
              static_cast<unsigned long long>(version_before),
              static_cast<unsigned long long>(
                  spire_sys.hmi(0).displayed_version()),
              hmi_matches_field(spire_sys) ? "yes" : "NO");

  banner("attack 4: compromise of one SCADA-master replica (excursion)");
  spire_sys.replica(1).set_behavior(prime::ReplicaBehavior::kStaleLeader);
  spire_sys.hmi(0).command_breaker("plc-phys", 0, true);
  sim.run_until(sim.now() + 5 * sim::kSecond);
  std::printf("command executed with a Byzantine replica: breaker closed "
              "at PLC: %s, shown on HMI: %s\n",
              spire_sys.plc("plc-phys").breakers().closed(0) ? "yes" : "NO",
              spire_sys.hmi(0).display().breaker("plc-phys", 0) == true
                  ? "yes"
                  : "NO");

  banner("MANA situational-awareness board");
  ids.flush_until(sim.now());
  for (const auto& alert : ids.alerts()) {
    std::printf("[%7.1fs] %-20s %s\n",
                static_cast<double>(alert.at) / sim::kSecond,
                std::string(mana::to_string(alert.kind)).c_str(),
                alert.detail().c_str());
  }

  const bool ok = hmi_matches_field(spire_sys) && !ids.alerts().empty();
  std::printf("\n%s\n", ok ? "RED-TEAM DEMO OK: attacks defeated, operator "
                             "informed"
                           : "RED-TEAM DEMO FAILED");
  return ok ? 0 : 1;
}
