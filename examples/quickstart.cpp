// Quickstart: bring up a four-replica Spire deployment (the red-team
// configuration: f=1, k=0) on the emulated network, let the system
// reach steady state, flip a breaker from the HMI, and watch the
// command round-trip: HMI -> replicated masters (Prime ordering) ->
// PLC proxy (f+1 output voting) -> Modbus -> breaker physics -> proxy
// poll -> masters -> HMI display.
#include <cstdio>

#include "scada/deployment.hpp"

using namespace spire;

int main() {
  sim::Simulator simulator;
  sim::LogClockScope log_clock(simulator);
  util::LogConfig::instance().level = util::LogLevel::kWarn;

  scada::DeploymentConfig config;
  config.f = 1;
  config.k = 0;  // 4 replicas: withstands 1 intrusion, no proactive recovery
  config.scenario = scada::ScenarioSpec::red_team();
  config.cycler_interval = 0;  // no background workload for the demo

  scada::SpireDeployment spire_system(simulator, config);
  spire_system.start();

  // Let overlays form, replicas elect, proxies start polling.
  simulator.run_until(3 * sim::kSecond);

  scada::Hmi& hmi = spire_system.hmi(0);
  std::printf("== Spire quickstart ==\n");
  std::printf("replicas: %u (f=1, k=0)\n", spire_system.n());
  std::printf("HMI displayed version after warmup: %llu\n",
              static_cast<unsigned long long>(hmi.displayed_version()));

  const auto shown_before = hmi.display().breaker("plc-phys", 0);
  std::printf("breaker B10-1 on HMI before command: %s\n",
              shown_before && *shown_before ? "CLOSED" : "OPEN");

  // Operator action: close breaker B10-1 on the physical PLC.
  const sim::Time issued_at = simulator.now();
  hmi.command_breaker("plc-phys", 0, true);
  simulator.run_until(issued_at + 2 * sim::kSecond);

  const auto shown_after = hmi.display().breaker("plc-phys", 0);
  const bool at_plc = spire_system.plc("plc-phys").breakers().closed(0);
  std::printf("breaker B10-1 at the PLC after command: %s\n",
              at_plc ? "CLOSED" : "OPEN");
  std::printf("breaker B10-1 on HMI after command:     %s\n",
              shown_after && *shown_after ? "CLOSED" : "OPEN");
  std::printf("HMI reflected the change %.1f ms after the command\n",
              static_cast<double>(hmi.last_display_change() - issued_at) /
                  sim::kMillisecond);

  const bool ok = at_plc && shown_after && *shown_after;
  std::printf("%s\n", ok ? "QUICKSTART OK" : "QUICKSTART FAILED");
  return ok ? 0 : 1;
}
