// Full Fig. 3 testbed: the complete red-team experiment environment in
// one simulation — an enterprise network (historian, business PCs)
// behind a firewall router, TWO parallel operations networks
// (commercial SCADA on one, hardened Spire on the other), and three
// independent MANA instances tapping the three networks, exactly as
// PNNL set it up. The red team then follows the paper's script:
// compromise the commercial system from the enterprise network, fail
// against Spire, move onto Spire's operations network, fail again.
#include <cstdio>

#include "attack/attacker.hpp"
#include "mana/mana.hpp"
#include "plc/plc.hpp"
#include "scada/commercial.hpp"
#include "scada/deployment.hpp"
#include "scada/historian.hpp"

using namespace spire;

namespace {
void banner(const char* text) { std::printf("\n=== %s ===\n", text); }

void print_board(const char* label, const mana::Mana& ids) {
  std::printf("%s: %zu alerts", label, ids.alerts().size());
  std::map<std::string, int> kinds;
  for (const auto& alert : ids.alerts()) {
    kinds[std::string(mana::to_string(alert.kind))]++;
  }
  for (const auto& [kind, count] : kinds) {
    std::printf("  %s x%d", kind.c_str(), count);
  }
  std::printf("\n");
}
}  // namespace

int main() {
  util::LogConfig::instance().level = util::LogLevel::kOff;
  std::printf("== Fig. 3 testbed: red-team experiment environment ==\n");

  sim::Simulator sim;

  // --- Spire operations network (left of Fig. 3) ---------------------------
  scada::DeploymentConfig spire_config;
  spire_config.f = 1;
  spire_config.k = 0;  // four replicas, as in April 2017
  spire_config.scenario = scada::ScenarioSpec::red_team();
  spire_config.cycler_interval = 1 * sim::kSecond;
  scada::SpireDeployment spire_sys(sim, spire_config);

  // --- commercial operations network (right of Fig. 3) ---------------------
  net::Network commercial_net(sim);
  net::Switch& commercial_ops = commercial_net.add_switch({.name = "comm-ops"});
  auto add_commercial = [&](const char* name, std::uint8_t last,
                            std::uint32_t mac) -> net::Host& {
    net::Host& h = commercial_net.add_host(name);
    h.add_interface(net::MacAddress::from_id(mac),
                    net::IpAddress::make(10, 20, 0, last), 24);
    commercial_net.connect(h, 0, commercial_ops);
    return h;
  };
  net::Host& cm1 = add_commercial("comm-master1", 2, 0x201);
  net::Host& cm2 = add_commercial("comm-master2", 3, 0x202);
  net::Host& chmi_host = add_commercial("comm-hmi", 4, 0x203);
  net::Host& cplc_host = add_commercial("comm-plc", 10, 0x204);
  plc::Plc commercial_plc(sim, cplc_host, "plc-phys",
                          std::vector<plc::BreakerSpec>(
                              7, {"B", false, 40 * sim::kMillisecond}),
                          sim::Rng(21));
  scada::CommercialMasterConfig mc;
  mc.devices = {{"plc-phys", cplc_host.ip(), 7}};
  mc.is_primary = true;
  mc.peer_ip = cm2.ip();
  scada::CommercialMaster cprimary(sim, cm1, mc);
  mc.is_primary = false;
  mc.peer_ip = cm1.ip();
  scada::CommercialMaster cbackup(sim, cm2, mc);
  scada::CommercialHmiConfig hc;
  hc.primary_ip = cm1.ip();
  hc.backup_ip = cm2.ip();
  scada::CommercialHmi chmi(sim, chmi_host, hc);

  // --- enterprise network + firewall router --------------------------------
  net::Network enterprise_net(sim);
  net::Switch& enterprise = enterprise_net.add_switch({.name = "enterprise"});
  net::Host& historian_host = enterprise_net.add_host("pi-server");
  historian_host.add_interface(net::MacAddress::from_id(0x301),
                               net::IpAddress::make(10, 10, 0, 5), 24);
  enterprise_net.connect(historian_host, 0, enterprise);
  scada::Historian historian;

  net::Host& firewall = enterprise_net.add_host("fw-router");
  firewall.add_interface(net::MacAddress::from_id(0x302),
                         net::IpAddress::make(10, 10, 0, 1), 24);
  firewall.add_interface(net::MacAddress::from_id(0x303),
                         net::IpAddress::make(10, 20, 0, 1), 24);
  enterprise_net.connect(firewall, 0, enterprise);
  commercial_net.connect(firewall, 1, commercial_ops);
  firewall.enable_forwarding(/*default_deny=*/true);
  // Legit pinhole: the historian polls the commercial master. The
  // forgotten one: a vendor maintenance path to the PLC.
  firewall.add_forward_allow({historian_host.ip(), cm1.ip(),
                              scada::kCommercialMasterPort});
  firewall.add_forward_allow({cm1.ip(), historian_host.ip(), std::nullopt});
  firewall.add_forward_allow({std::nullopt, cplc_host.ip(), plc::kMaintenancePort});
  firewall.add_forward_allow({cplc_host.ip(), std::nullopt, std::nullopt});
  cplc_host.set_gateway(firewall.ip(1));
  cm1.set_gateway(firewall.ip(1));
  historian_host.set_gateway(firewall.ip(0));

  // The PI server's actual job: poll the commercial master across the
  // firewall once a second and archive the topology (this is also the
  // enterprise network's baseline traffic for MANA 1).
  std::uint64_t pi_txn = 0;
  scada::TopologyState pi_last_state;
  historian_host.bind_udp(7100, [&](const net::Datagram& d) {
    const auto msg = scada::CommMsg::decode(d.payload);
    if (!msg || msg->type != scada::CommMsgType::kStateReply) return;
    try {
      const auto state = scada::TopologyState::deserialize(msg->blob);
      state.for_each([&](const std::string& device,
                         const scada::DeviceState& dev_state) {
        const auto* previous = pi_last_state.device(device);
        for (std::size_t b = 0; b < dev_state.breakers.size(); ++b) {
          const bool was = previous && b < previous->breakers.size() &&
                           previous->breakers[b];
          if (was != dev_state.breakers[b]) {
            historian.record_transition(device, b, dev_state.breakers[b],
                                        sim.now());
          }
        }
      });
      pi_last_state = state;
    } catch (const util::SerializationError&) {
    }
  });
  std::function<void()> pi_poll = [&] {
    scada::CommMsg req;
    req.type = scada::CommMsgType::kGetState;
    req.a = ++pi_txn;
    historian_host.send_udp(cm1.ip(), scada::kCommercialMasterPort, 7100,
                            req.encode());
    sim.schedule_after(1 * sim::kSecond, pi_poll);
  };

  // --- MANA 1-3 (out-of-band taps, Fig. 3) ----------------------------------
  mana::Mana mana1(mana::ManaConfig{.network = "enterprise"});
  mana::Mana mana2(mana::ManaConfig{.network = "operations-spire"});
  mana::Mana mana3(mana::ManaConfig{.network = "operations-commercial"});

  // --- bring everything up, then train the models ---------------------------
  spire_sys.start();
  cprimary.start();
  cbackup.start();
  chmi.start();
  sim.run_until(5 * sim::kSecond);

  enterprise.add_tap("enterprise",
                     [&](const net::PcapRecord& r) { mana1.on_capture(r); });
  spire_sys.external_switch().add_tap(
      "operations-spire", [&](const net::PcapRecord& r) { mana2.on_capture(r); });
  commercial_ops.add_tap("operations-commercial", [&](const net::PcapRecord& r) {
    mana3.on_capture(r);
  });
  pi_poll();  // the PI server starts collecting

  std::printf("setup week: both SCADA systems running; capturing baselines\n");
  sim.run_until(sim.now() + 30 * sim::kSecond);
  for (mana::Mana* m : {&mana1, &mana2, &mana3}) {
    m->flush_until(sim.now());
    m->finish_training();
  }
  std::printf("MANA 1-3 trained (enterprise / spire-ops / commercial-ops)\n");

  // --- stage 1: red team on the enterprise network ---------------------------
  banner("red team enters the enterprise network");
  net::Host& ent_attacker = enterprise_net.add_host("redteam-ent");
  ent_attacker.add_interface(net::MacAddress::from_id(0xBAD),
                             net::IpAddress::make(10, 10, 0, 66), 24);
  enterprise_net.connect(ent_attacker, 0, enterprise);
  ent_attacker.set_gateway(firewall.ip(0));
  attack::Attacker ent_rt(sim, ent_attacker);

  std::optional<plc::PlcConfig> dumped;
  ent_rt.plc_dump_config(cplc_host.ip(),
                         [&](std::optional<plc::PlcConfig> c) { dumped = c; });
  sim.run_until(sim.now() + 2 * sim::kSecond);
  std::printf("commercial PLC config dump through the firewall: %s\n",
              dumped ? "SUCCEEDED (password exfiltrated)" : "failed");
  if (dumped) {
    plc::PlcConfig evil = *dumped;
    evil.direct_control_enabled = true;
    ent_rt.plc_upload_config(cplc_host.ip(), dumped->maintenance_password, evil);
    sim.run_until(sim.now() + 1 * sim::kSecond);
    ent_rt.plc_direct_write(cplc_host.ip(), 2, true);
    sim.run_until(sim.now() + 1 * sim::kSecond);
    std::printf("commercial PLC under red-team control: %s\n",
                commercial_plc.config_tampered() &&
                        commercial_plc.breakers().closed(2)
                    ? "YES (breaker closed by attacker)"
                    : "no");
  }
  std::printf("visibility into Spire from the enterprise network: none "
              "(no route; the red team asked to move on-net)\n");

  // --- stage 2: red team directly on Spire's operations network --------------
  banner("red team placed on the Spire operations network");
  net::Host& ops_attacker = spire_sys.network().add_host("redteam-spire");
  ops_attacker.add_interface(net::MacAddress::from_id(0xBAE),
                             net::IpAddress::make(10, 2, 0, 66), 24);
  spire_sys.network().connect(ops_attacker, 0, spire_sys.external_switch());
  attack::Attacker spire_rt(sim, ops_attacker);

  const auto version_before = spire_sys.hmi(0).displayed_version();
  spire_rt.port_scan(spire_sys.replica_host(0).ip(1), 8000, 8300,
                     2 * sim::kMillisecond);
  for (std::uint32_t i = 0; i < spire_sys.n(); ++i) {
    spire_rt.arp_poison(spire_sys.network().host("hmi0").ip(0),
                        spire_sys.network().host("hmi0").mac(0),
                        spire_sys.replica_host(i).ip(1), 10);
    spire_rt.dos_flood(spire_sys.replica_host(i).ip(1),
                       spire_sys.replica_host(i).mac(1), 8200, 1500,
                       2 * sim::kSecond, 1000);
  }
  sim.run_until(sim.now() + 8 * sim::kSecond);
  const bool spire_fine =
      spire_sys.hmi(0).displayed_version() > version_before;
  std::printf("port scan + ARP poisoning + DoS against Spire: %s\n",
              spire_fine ? "ALL DEFEATED (HMI kept updating)" : "disruptive");

  spire_sys.hmi(0).command_breaker("plc-phys", 5, true);
  sim.run_until(sim.now() + 3 * sim::kSecond);
  std::printf("supervisory control during the attack: %s\n",
              spire_sys.plc("plc-phys").breakers().closed(5)
                  ? "working (breaker closed on command)"
                  : "BROKEN");

  // --- situational awareness -------------------------------------------------
  banner("MANA situational-awareness boards");
  for (mana::Mana* m : {&mana1, &mana2, &mana3}) m->flush_until(sim.now());
  print_board("MANA 1 (enterprise)        ", mana1);
  print_board("MANA 2 (spire operations)  ", mana2);
  print_board("MANA 3 (commercial ops)    ", mana3);
  std::printf("historian archived %llu samples from the commercial feed\n",
              static_cast<unsigned long long>(historian.total_samples()));

  const bool ok = dumped && commercial_plc.config_tampered() && spire_fine &&
                  spire_sys.plc("plc-phys").breakers().closed(5) &&
                  !mana2.alerts().empty();
  std::printf("\n%s\n", ok ? "FIG. 3 TESTBED DEMO OK: commercial fell, Spire "
                             "held, operators saw everything"
                           : "FIG. 3 TESTBED DEMO FAILED");
  return ok ? 0 : 1;
}
