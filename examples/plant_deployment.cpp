// Plant-deployment demo: the §V configuration — six diverse replicas
// (f=1, k=1), the real three-breaker topology plus sixteen emulated
// PLCs, HMIs in three plant locations, and proactive recovery
// continuously rejuvenating replicas while the plant operates.
// Finishes with the measurement-device reaction-time test.
#include <cstdio>

#include "scada/deployment.hpp"

using namespace spire;

int main() {
  util::LogConfig::instance().level = util::LogLevel::kOff;
  std::printf("== Spire power-plant deployment demo (paper SV) ==\n");

  sim::Simulator sim;
  scada::DeploymentConfig config;
  config.f = 1;
  config.k = 1;
  config.scenario = scada::ScenarioSpec::power_plant();
  config.cycler_interval = 1 * sim::kSecond;
  config.hmi_count = 3;  // control room, turbine deck, relay house
  scada::SpireDeployment plant(sim, config);
  plant.start();

  auto recovery = plant.make_recovery(
      prime::RecoveryConfig{12 * sim::kSecond, 1 * sim::kSecond});
  sim.run_until(3 * sim::kSecond);
  recovery->start();
  std::printf("6 diverse replicas running; proactive recovery cycling; "
              "17 devices (%zu breakers) under management\n",
              config.scenario.total_breakers());

  // Let the plant run for a (scaled) while.
  std::printf("\nvariants before recovery cycle:");
  for (std::uint32_t i = 0; i < plant.n(); ++i) {
    std::printf(" r%u=%04llx", i,
                static_cast<unsigned long long>(plant.replica(i).variant() &
                                                0xFFFF));
  }
  sim.run_until(sim.now() + 90 * sim::kSecond);
  std::printf("\nvariants after recovery cycle: ");
  for (std::uint32_t i = 0; i < plant.n(); ++i) {
    std::printf(" r%u=%04llx", i,
                static_cast<unsigned long long>(plant.replica(i).variant() &
                                                0xFFFF));
  }
  std::printf("\nproactive recoveries completed: %llu\n",
              static_cast<unsigned long long>(recovery->recoveries_completed()));

  // All three HMIs agree with the field.
  bool consistent = true;
  for (std::size_t j = 0; j < config.hmi_count; ++j) {
    for (const auto& device : config.scenario.devices) {
      const auto& plc = plant.plc(device.name);
      for (std::size_t b = 0; b < device.breaker_names.size(); ++b) {
        if (plant.hmi(j).display().breaker(device.name, b) !=
            plc.breakers().closed(b)) {
          consistent = false;
        }
      }
    }
  }
  std::printf("all three HMIs consistent with the field: %s\n",
              consistent ? "yes" : "NO");

  // Measurement device: flip B10-1 at the switchgear, time the HMI.
  std::printf("\nmeasurement device: flipping B10-1 at the switchgear...\n");
  sim::Time seen = 0;
  plant.hmi(0).set_display_observer(
      [&](const std::string& device, std::size_t index, bool, sim::Time at) {
        if (device == "plc-plant" && index == 0 && seen == 0) seen = at;
      });
  const bool target = !plant.plc("plc-plant").breakers().closed(0);
  const sim::Time flipped = sim.now();
  plant.flip_breaker_at_plc("plc-plant", 0, target);
  sim.run_until(sim.now() + 3 * sim::kSecond);
  if (seen > 0) {
    std::printf("HMI reflected the breaker change after %.0f ms\n",
                static_cast<double>(seen - flipped) / sim::kMillisecond);
  }

  recovery->stop();
  const bool ok = consistent && seen > 0 &&
                  recovery->recoveries_completed() >= plant.n();
  std::printf("\n%s\n", ok ? "PLANT DEPLOYMENT DEMO OK"
                           : "PLANT DEPLOYMENT DEMO FAILED");
  return ok ? 0 : 1;
}
