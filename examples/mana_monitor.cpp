// MANA monitoring demo: trains the analyzer on the live deployment's
// traffic, then streams the situational-awareness board while a
// scripted intruder works through reconnaissance, poisoning, and
// flooding — the operator's-eye view the paper argues is essential
// even when intrusion tolerance is masking the attacks (§III-C).
#include <cstdio>

#include "attack/attacker.hpp"
#include "mana/mana.hpp"
#include "scada/deployment.hpp"

using namespace spire;

int main() {
  util::LogConfig::instance().level = util::LogLevel::kOff;
  std::printf("== MANA monitor demo (paper SII / SIII-C) ==\n");

  sim::Simulator sim;
  scada::DeploymentConfig config;
  config.f = 1;
  config.k = 0;
  config.scenario = scada::ScenarioSpec::red_team();
  config.cycler_interval = 1 * sim::kSecond;
  scada::SpireDeployment spire_sys(sim, config);

  mana::ManaConfig mana_config;
  mana_config.network = "operations-spire";
  mana::Mana ids(mana_config);

  spire_sys.start();
  sim.run_until(5 * sim::kSecond);
  spire_sys.external_switch().add_tap(
      "operations-spire", [&](const net::PcapRecord& r) { ids.on_capture(r); });

  std::printf("capturing baseline traffic (out-of-band tap, passive)...\n");
  sim.run_until(sim.now() + 45 * sim::kSecond);
  ids.flush_until(sim.now());
  ids.finish_training();
  std::printf("model trained; anomaly threshold calibrated to %.2f\n",
              ids.threshold());

  // Live alert stream.
  std::size_t printed = 0;
  auto drain_alerts = [&] {
    ids.flush_until(sim.now());
    for (; printed < ids.alerts().size(); ++printed) {
      const auto& alert = ids.alerts()[printed];
      std::printf("  [%7.1fs] %-20s score=%.1f  %s\n",
                  static_cast<double>(alert.at) / sim::kSecond,
                  std::string(mana::to_string(alert.kind)).c_str(), alert.score,
                  alert.detail().c_str());
    }
  };

  std::printf("\nmonitoring... (benign window)\n");
  sim.run_until(sim.now() + 20 * sim::kSecond);
  drain_alerts();
  std::printf("  (%zu windows scored, %zu anomalous)\n", ids.windows_scored(),
              ids.windows_anomalous());

  net::Host& rogue = spire_sys.network().add_host("intruder");
  rogue.add_interface(net::MacAddress::from_id(0xBAD),
                      net::IpAddress::make(10, 2, 0, 66), 24);
  spire_sys.network().connect(rogue, 0, spire_sys.external_switch());
  attack::Attacker attacker(sim, rogue);

  std::printf("\nintruder: port sweep of the SCADA master replicas\n");
  attacker.port_scan(spire_sys.replica_host(0).ip(1), 8100, 8500,
                     2 * sim::kMillisecond);
  sim.run_until(sim.now() + 5 * sim::kSecond);
  drain_alerts();

  std::printf("\nintruder: gratuitous ARP claiming a replica's address\n");
  attacker.arp_poison(spire_sys.network().host("hmi0").ip(0),
                      spire_sys.network().host("hmi0").mac(0),
                      spire_sys.replica_host(0).ip(1), 10);
  sim.run_until(sim.now() + 5 * sim::kSecond);
  drain_alerts();

  std::printf("\nintruder: traffic flood at a replica\n");
  attacker.dos_flood(spire_sys.replica_host(0).ip(1),
                     spire_sys.replica_host(0).mac(1), 8200, 5000,
                     3 * sim::kSecond, 1200);
  sim.run_until(sim.now() + 6 * sim::kSecond);
  drain_alerts();

  std::printf("\nboard summary: %zu alerts, %zu/%zu anomalous windows\n",
              ids.alerts().size(), ids.windows_anomalous(),
              ids.windows_scored());
  const bool ok = ids.alerts().size() >= 3;
  std::printf("%s\n", ok ? "MANA MONITOR DEMO OK" : "MANA MONITOR DEMO FAILED");
  return ok ? 0 : 1;
}
