// End-to-end integration tests over the full Spire deployment: the
// emulated network, both Spines overlays, Prime replication, SCADA
// masters, proxies, PLCs, HMIs, the automatic cycler, proactive
// recovery, and the ground-truth rebuild property of §III-A.
#include <gtest/gtest.h>

#include "attack/attacker.hpp"
#include "scada/deployment.hpp"

namespace spire::scada {
namespace {

struct DeploymentFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<SpireDeployment> deployment;

  void build(std::uint32_t f, std::uint32_t k, ScenarioSpec scenario,
             sim::Time cycler_interval = 0) {
    DeploymentConfig config;
    config.f = f;
    config.k = k;
    config.scenario = std::move(scenario);
    config.cycler_interval = cycler_interval;
    deployment = std::make_unique<SpireDeployment>(sim, config);
    deployment->start();
  }

  void run_for(sim::Time t) { sim.run_until(sim.now() + t); }
};

TEST_F(DeploymentFixture, HmiCommandRoundTripsThroughEverything) {
  build(1, 0, ScenarioSpec::red_team());
  run_for(3 * sim::kSecond);

  Hmi& hmi = deployment->hmi(0);
  ASSERT_GT(hmi.displayed_version(), 0u);
  ASSERT_EQ(hmi.display().breaker("plc-phys", 1), false);

  hmi.command_breaker("plc-phys", 1, true);
  run_for(2 * sim::kSecond);

  EXPECT_TRUE(deployment->plc("plc-phys").breakers().closed(1));
  EXPECT_EQ(hmi.display().breaker("plc-phys", 1), true);
}

TEST_F(DeploymentFixture, CyclerWorkloadTracksGroundTruth) {
  build(1, 0, ScenarioSpec::red_team(), 500 * sim::kMillisecond);
  run_for(12 * sim::kSecond);

  const auto& history = deployment->cycler()->history();
  ASSERT_GT(history.size(), 10u);

  // Ground truth at the PLCs matches the last commanded state for each
  // breaker that had time to settle, and the HMI matches ground truth.
  run_for(2 * sim::kSecond);
  const Hmi& hmi = deployment->hmi(0);
  for (const auto& device : deployment->config().scenario.devices) {
    const auto& plc = deployment->plc(device.name);
    for (std::size_t b = 0; b < device.breaker_names.size(); ++b) {
      EXPECT_EQ(hmi.display().breaker(device.name, b), plc.breakers().closed(b))
          << device.name << " breaker " << b;
    }
  }
  // No replica ever left view 0: the system was healthy.
  for (std::uint32_t i = 0; i < deployment->n(); ++i) {
    EXPECT_EQ(deployment->replica(i).view(), 0u);
  }
}

TEST_F(DeploymentFixture, ToleratesOneCompromisedCrashedReplica) {
  build(1, 0, ScenarioSpec::red_team());
  run_for(3 * sim::kSecond);
  deployment->replica(2).set_behavior(prime::ReplicaBehavior::kCrashed);

  Hmi& hmi = deployment->hmi(0);
  hmi.command_breaker("plc-phys", 0, true);
  run_for(2 * sim::kSecond);
  EXPECT_TRUE(deployment->plc("plc-phys").breakers().closed(0));
  EXPECT_EQ(hmi.display().breaker("plc-phys", 0), true);
}

TEST_F(DeploymentFixture, ToleratesCompromisedLeaderDelayAttack) {
  build(1, 0, ScenarioSpec::red_team());
  run_for(3 * sim::kSecond);
  deployment->replica(0).set_behavior(prime::ReplicaBehavior::kStaleLeader);

  Hmi& hmi = deployment->hmi(0);
  hmi.command_breaker("plc-phys", 2, true);
  run_for(6 * sim::kSecond);  // view change + re-processing
  EXPECT_TRUE(deployment->plc("plc-phys").breakers().closed(2));
  EXPECT_EQ(hmi.display().breaker("plc-phys", 2), true);
  EXPECT_GE(deployment->replica(1).view(), 1u);
}

TEST_F(DeploymentFixture, StoppingOneSpinesDaemonIsHarmless) {
  // The excursion's first step (§IV-B): stop the daemons on one replica.
  build(1, 0, ScenarioSpec::red_team());
  run_for(3 * sim::kSecond);
  deployment->internal_overlay().daemon("int1").stop();
  deployment->external_overlay().daemon("ext1").stop();

  Hmi& hmi = deployment->hmi(0);
  hmi.command_breaker("plc-phys", 3, true);
  run_for(3 * sim::kSecond);
  EXPECT_TRUE(deployment->plc("plc-phys").breakers().closed(3));
  EXPECT_EQ(hmi.display().breaker("plc-phys", 3), true);
}

TEST_F(DeploymentFixture, PlantConfigurationRunsProactiveRecoveryUnderLoad) {
  build(1, 1, ScenarioSpec::power_plant(), 1 * sim::kSecond);
  auto recovery = deployment->make_recovery(
      prime::RecoveryConfig{6 * sim::kSecond, 1 * sim::kSecond});
  run_for(3 * sim::kSecond);
  recovery->start();
  run_for(45 * sim::kSecond);  // > one full cycle over 6 replicas
  recovery->stop();
  run_for(8 * sim::kSecond);

  EXPECT_GE(recovery->recoveries_completed(), 6u);
  // System stayed live throughout: the HMI version kept advancing.
  const Hmi& hmi = deployment->hmi(0);
  EXPECT_GT(hmi.displayed_version(), 100u);

  // All replicas converge to the same application state digest.
  run_for(3 * sim::kSecond);
  std::map<crypto::Digest, int> digests;
  for (std::uint32_t i = 0; i < deployment->n(); ++i) {
    if (!deployment->replica(i).running() ||
        deployment->replica(i).recovering()) {
      continue;
    }
    ++digests[deployment->master(i).state().digest()];
  }
  int max_agree = 0;
  for (const auto& [digest, count] : digests) max_agree = std::max(max_agree, count);
  EXPECT_GE(max_agree, 4);  // quorum of masters byte-identical
}

TEST_F(DeploymentFixture, GroundTruthRebuildAfterTotalStateLoss) {
  // §III-A: after an assumption breach that wipes every replica, the
  // SCADA masters rebuild state from the field devices. Generic BFT
  // cannot recover from this (see bench_state_recovery for the
  // comparison); Spire can, because the PLCs are the ground truth.
  build(1, 0, ScenarioSpec::red_team());
  run_for(3 * sim::kSecond);

  // Establish some physical state.
  deployment->hmi(0).command_breaker("plc-phys", 4, true);
  run_for(2 * sim::kSecond);
  ASSERT_TRUE(deployment->plc("plc-phys").breakers().closed(4));

  // Catastrophe: every replica crashes and loses all state.
  for (std::uint32_t i = 0; i < deployment->n(); ++i) {
    deployment->replica(i).shutdown();
  }
  run_for(1 * sim::kSecond);

  // Operators restart the system fresh (and restart the HMI session).
  for (std::uint32_t i = 0; i < deployment->n(); ++i) {
    deployment->replica(i).start();
  }
  deployment->hmi(0).reset_display();

  // Within a few poll cycles the masters relearn the live topology from
  // the PLCs and the HMI shows the true state again.
  run_for(5 * sim::kSecond);
  EXPECT_GT(deployment->hmi(0).displayed_version(), 0u);
  EXPECT_EQ(deployment->hmi(0).display().breaker("plc-phys", 4), true);

  // And the system is fully operational for new commands.
  deployment->hmi(0).command_breaker("plc-phys", 5, true);
  run_for(2 * sim::kSecond);
  EXPECT_TRUE(deployment->plc("plc-phys").breakers().closed(5));
}

TEST_F(DeploymentFixture, FTwoConfigurationToleratesTwoCompromises) {
  // Beyond the paper's deployments: n = 3f+1 = 7 with f = 2, the next
  // rung of the resilience ladder the architecture scales to.
  build(2, 0, ScenarioSpec::red_team());
  run_for(3 * sim::kSecond);
  deployment->replica(5).set_behavior(prime::ReplicaBehavior::kCrashed);
  deployment->replica(6).set_behavior(prime::ReplicaBehavior::kCrashed);

  Hmi& hmi = deployment->hmi(0);
  hmi.command_breaker("plc-phys", 0, true);
  run_for(3 * sim::kSecond);
  EXPECT_TRUE(deployment->plc("plc-phys").breakers().closed(0));
  EXPECT_EQ(hmi.display().breaker("plc-phys", 0), true);

  // A third compromise exceeds f: the proxies' f+1 voting and Prime's
  // quorums are sized for 2, so we stop here — this test documents the
  // boundary rather than crossing it.
}

TEST_F(DeploymentFixture, OutsiderOnExternalNetworkCannotInjectScada) {
  build(1, 0, ScenarioSpec::red_team());
  run_for(3 * sim::kSecond);

  // Attacker host plugged into the external switch. With hardened
  // switches its MAC is not bound to the port, so nothing it sends is
  // even forwarded; the assertion below is about end state, not path.
  net::Host& rogue = deployment->network().add_host("rogue");
  rogue.add_interface(net::MacAddress::from_id(0xEE),
                      net::IpAddress::make(10, 2, 0, 66), 24);
  deployment->network().connect(rogue, 0, deployment->external_switch());

  attack::Attacker attacker(sim, rogue);
  const auto before = deployment->hmi(0).displayed_version();
  // Blind spray at replica external daemons and the HMI session port.
  for (std::uint32_t i = 0; i < deployment->n(); ++i) {
    attacker.dos_flood(deployment->replica_host(i).ip(1),
                       deployment->replica_host(i).mac(1),
                       kExternalDaemonPort, 500, 500 * sim::kMillisecond, 400);
  }
  run_for(3 * sim::kSecond);

  // System keeps operating and accepts no forged input.
  Hmi& hmi = deployment->hmi(0);
  EXPECT_GT(hmi.displayed_version(), before);
  hmi.command_breaker("plc-phys", 6, true);
  run_for(2 * sim::kSecond);
  EXPECT_TRUE(deployment->plc("plc-phys").breakers().closed(6));
}

}  // namespace
}  // namespace spire::scada
