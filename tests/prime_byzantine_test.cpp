// Byzantine-message tests for the Prime engine: forged and conflicting
// protocol messages crafted with real keys (the attacker controls one
// replica's identity, per the threat model) must never break safety,
// and detectable misbehavior must cost the attacker the leadership.
#include <gtest/gtest.h>

#include <memory>

#include "prime/replica.hpp"
#include "prime/transport.hpp"

namespace spire::prime {
namespace {

class LogApp : public Application {
 public:
  void apply(const ClientUpdate& update, const ExecutionInfo&) override {
    log_.push_back(update.client + "#" + std::to_string(update.client_seq));
  }
  [[nodiscard]] util::Bytes snapshot() const override {
    util::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(log_.size()));
    for (const auto& e : log_) w.str(e);
    return w.take();
  }
  void restore(std::span<const std::uint8_t> blob) override {
    util::ByteReader r(blob);
    log_.clear();
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) log_.push_back(r.str());
  }
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  std::vector<std::string> log_;
};

struct ByzCluster {
  sim::Simulator sim;
  crypto::Keyring keyring{"byz-test"};
  PrimeConfig config;
  std::unique_ptr<LoopbackFabric> fabric;
  std::vector<std::unique_ptr<LogApp>> apps;
  std::vector<std::unique_ptr<Replica>> replicas;
  std::uint64_t client_seq = 0;

  void build(std::uint32_t f = 1, std::uint32_t k = 0) {
    config.f = f;
    config.k = k;
    config.client_identities = {"client/a"};
    fabric = std::make_unique<LoopbackFabric>(sim, config.n());
    sim::Rng rng(9);
    for (ReplicaId i = 0; i < config.n(); ++i) {
      apps.push_back(std::make_unique<LogApp>());
      replicas.push_back(std::make_unique<Replica>(
          sim, i, config, keyring, *apps.back(), fabric->transport_for(i),
          rng.fork()));
      Replica* r = replicas.back().get();
      fabric->attach(i, [r](const util::Bytes& b) { r->on_message(b); });
    }
    for (auto& r : replicas) r->start();
    sim.run_until(500 * sim::kMillisecond);
  }

  void submit() {
    crypto::Signer client("client/a", keyring.identity_key("client/a"));
    ClientUpdate update;
    update.client = "client/a";
    update.client_seq = ++client_seq;
    update.payload = util::to_bytes("op");
    update.sign(client);
    util::ByteWriter w;
    update.encode(w);
    const Envelope env =
        Envelope::make(MsgType::kClientUpdate, client, w.take());
    const util::Bytes bytes = env.encode();
    for (auto& r : replicas) r->on_message(bytes);
  }

  crypto::Signer replica_signer(ReplicaId id) {
    return crypto::Signer(replica_identity(id),
                          keyring.identity_key(replica_identity(id)));
  }

  void broadcast_raw(const util::Bytes& bytes) {
    for (auto& r : replicas) r->on_message(bytes);
  }

  void expect_consistent() const {
    const std::vector<std::string>* longest = &apps[0]->log();
    for (const auto& app : apps) {
      if (app->log().size() > longest->size()) longest = &app->log();
    }
    for (std::size_t i = 0; i < apps.size(); ++i) {
      const auto& log = apps[i]->log();
      for (std::size_t j = 0; j < log.size(); ++j) {
        ASSERT_EQ(log[j], (*longest)[j]) << "replica " << i << " diverges";
      }
    }
  }
};

TEST(PrimeByzantine, EquivocatingLeaderIsEvicted) {
  ByzCluster cluster;
  cluster.build();

  // The compromised leader (replica 0) sends two conflicting
  // Pre-Prepares for the same slot, properly signed. Correct replicas
  // must detect the conflict, suspect, and move to a new view — and no
  // two replicas may execute differently.
  const auto signer = cluster.replica_signer(0);
  cluster.replicas[0]->set_behavior(ReplicaBehavior::kSilentLeader);
  cluster.sim.run_until(cluster.sim.now() + 100 * sim::kMillisecond);

  auto make_pp = [&](std::uint64_t aru_marker) {
    PrePrepare pp;
    pp.leader = 0;
    pp.view = 0;
    pp.order_seq = 1;
    pp.rows.assign(cluster.config.n(), nullptr);
    auto row = std::make_shared<PoAru>();
    row->replica = 0;
    row->aru_seq = aru_marker;  // differs => different digest
    row->aru.assign(cluster.config.n(), 0);
    row->sign(signer);
    pp.rows[0] = std::move(row);
    return Envelope::make(MsgType::kPrePrepare, signer, pp.encode()).encode();
  };
  cluster.broadcast_raw(make_pp(1));
  cluster.broadcast_raw(make_pp(2));  // the equivocation

  cluster.sim.run_until(cluster.sim.now() + 5 * sim::kSecond);
  EXPECT_GE(cluster.replicas[1]->view(), 1u) << "equivocation went unpunished";

  // Liveness restored under the new leader.
  for (int i = 0; i < 5; ++i) {
    cluster.submit();
    cluster.sim.run_until(cluster.sim.now() + 100 * sim::kMillisecond);
  }
  cluster.sim.run_until(cluster.sim.now() + 3 * sim::kSecond);
  for (ReplicaId i = 1; i < cluster.config.n(); ++i) {
    EXPECT_EQ(cluster.apps[i]->log().size(), 5u) << "replica " << i;
  }
  cluster.expect_consistent();
}

TEST(PrimeByzantine, PrePrepareWithForgedRowsRejected) {
  ByzCluster cluster;
  cluster.build();
  cluster.replicas[0]->set_behavior(ReplicaBehavior::kSilentLeader);

  // Leader fabricates a matrix row claiming replica 2 acknowledged
  // thousands of PO-Requests — but signs the row itself. Verification
  // against replica 2's key must fail and the proposal must die.
  const auto leader = cluster.replica_signer(0);
  PrePrepare pp;
  pp.leader = 0;
  pp.view = 0;
  pp.order_seq = 1;
  pp.rows.assign(cluster.config.n(), nullptr);
  auto forged = std::make_shared<PoAru>();
  forged->replica = 2;
  forged->aru_seq = 99;
  forged->aru.assign(cluster.config.n(), 5000);
  forged->sign(leader);  // wrong key for identity "prime/2"
  pp.rows[2] = std::move(forged);
  cluster.broadcast_raw(
      Envelope::make(MsgType::kPrePrepare, leader, pp.encode()).encode());

  cluster.sim.run_until(cluster.sim.now() + 2 * sim::kSecond);
  for (const auto& app : cluster.apps) EXPECT_TRUE(app->log().empty());
  // The malformed proposal itself is treated as misbehavior.
  EXPECT_GE(cluster.replicas[1]->view(), 1u);
  cluster.expect_consistent();
}

TEST(PrimeByzantine, DeltaWithTamperedMatrixDigestTriggersSuspect) {
  ByzCluster cluster;
  cluster.build();
  // Take over the leader identity; its own protocol traffic stops so
  // the only Pre-Prepares in flight are the ones we inject.
  cluster.replicas[0]->set_behavior(ReplicaBehavior::kSilentLeader);
  cluster.sim.run_until(cluster.sim.now() + 100 * sim::kMillisecond);
  const auto signer = cluster.replica_signer(0);

  // A well-formed full proposal first, so followers hold the chained
  // state a delta decodes against.
  auto row = std::make_shared<PoAru>();
  row->replica = 0;
  row->aru_seq = 1000;
  row->aru.assign(cluster.config.n(), 0);
  row->sign(signer);
  PrePrepare pp1;
  pp1.leader = 0;
  pp1.view = 0;
  pp1.order_seq = 100;  // past anything proposed during warm-up
  pp1.rows.assign(cluster.config.n(), nullptr);
  pp1.rows[0] = row;
  cluster.broadcast_raw(
      Envelope::make(MsgType::kPrePrepare, signer, pp1.encode()).encode());
  cluster.sim.run_until(cluster.sim.now() + 50 * sim::kMillisecond);

  // Now a delta proposal whose leader-signed full-matrix digest is a
  // lie. Followers reconstruct the matrix from pp1, the digest check
  // fails, and — because the envelope is leader-signed — that is proof
  // of misbehavior, not noise: the leader must be suspected. Checked
  // well inside the suspect timeout so the view change is attributable
  // to the tampered digest, not to the leader's silence.
  PrePrepare pp2;
  pp2.leader = 0;
  pp2.view = 0;
  pp2.order_seq = 101;
  pp2.rows = pp1.rows;
  pp2.matrix_digest = crypto::sha256("forged matrix digest");
  cluster.broadcast_raw(
      Envelope::make(MsgType::kPrePrepare, signer, pp2.encode_delta(pp1.rows))
          .encode());

  cluster.sim.run_until(cluster.sim.now() + 700 * sim::kMillisecond);
  for (ReplicaId i = 1; i < cluster.config.n(); ++i) {
    EXPECT_GE(cluster.replicas[i]->view(), 1u)
        << "replica " << i << " did not suspect the lying leader";
  }
  cluster.expect_consistent();
}

TEST(PrimeByzantine, ForgedMerkleInclusionPathRejected) {
  ByzCluster cluster;
  cluster.build();
  const auto mallory = cluster.replica_signer(3);

  // A genuine two-unit send batch: one root signature, each wire
  // carrying its inclusion proof.
  PrepareOrCommit a;
  a.replica = 3;
  a.view = 0;
  a.order_seq = 500;
  a.preprepare_digest = crypto::sha256("slot-500");
  PrepareOrCommit b = a;
  b.order_seq = 501;
  b.preprepare_digest = crypto::sha256("slot-501");
  const util::Bytes body_a = a.encode();
  const util::Bytes body_b = b.encode();
  const std::vector<Envelope::BatchItem> items = {
      {MsgType::kPrepare, body_a}, {MsgType::kPrepare, body_b}};
  const auto wires = Envelope::seal_batch(mallory, items);
  ASSERT_EQ(wires.size(), 2u);

  // Tamper one byte of the second wire's inclusion-path digest (the
  // proof sits between the body and the trailing 32-byte MAC). The
  // folded root no longer matches what was signed, so the envelope is
  // unverifiable — but since anyone can attach a bogus proof to
  // captured bytes, it must be dropped without suspecting anyone.
  util::Bytes forged = wires[1];
  forged[forged.size() - 40] ^= 0x01;

  const auto before = cluster.replicas[1]->stats();
  cluster.replicas[1]->on_message(wires[0]);  // verifies the root signature
  cluster.replicas[1]->on_message(forged);    // folds to a wrong root: dropped
  cluster.replicas[1]->on_message(wires[1]);  // genuine sibling: root memo hit
  const auto after = cluster.replicas[1]->stats();

  EXPECT_EQ(after.dropped_bad_signature, before.dropped_bad_signature + 1);
  EXPECT_GE(after.verify_cache_hits, before.verify_cache_hits + 1);
  EXPECT_EQ(cluster.replicas[1]->view(), 0u) << "forged proof caused a suspect";
}

TEST(PrimeByzantine, ForgedNewViewRejected) {
  ByzCluster cluster;
  cluster.build();

  // Replica 3 (not the leader of view 1) forges a NewView for view 1
  // with a huge start_seq and a justification quorum it invented by
  // signing every ViewState itself.
  const auto mallory = cluster.replica_signer(3);
  NewView nv;
  nv.leader = 1;  // claims to be from the real leader of view 1
  nv.view = 1;
  nv.start_seq = 1000001;
  for (ReplicaId r = 0; r < cluster.config.n(); ++r) {
    ViewState vs;
    vs.replica = r;
    vs.view = 1;
    vs.max_prepared = 1000000;
    vs.max_committed = 1000000;
    vs.sign(mallory);  // wrong key for every identity but its own
    nv.justification.push_back(vs);
  }
  cluster.broadcast_raw(
      Envelope::make(MsgType::kNewView, mallory, nv.encode()).encode());
  cluster.sim.run_until(cluster.sim.now() + 1 * sim::kSecond);

  // Nobody moved views on the forgery (envelope sender mismatch and
  // embedded signatures both fail).
  for (const auto& replica : cluster.replicas) {
    EXPECT_EQ(replica->view(), 0u);
  }

  // And the system still executes normally.
  for (int i = 0; i < 5; ++i) {
    cluster.submit();
    cluster.sim.run_until(cluster.sim.now() + 100 * sim::kMillisecond);
  }
  cluster.sim.run_until(cluster.sim.now() + 2 * sim::kSecond);
  for (const auto& app : cluster.apps) EXPECT_EQ(app->log().size(), 5u);
}

TEST(PrimeByzantine, ForgedCheckpointCannotCorruptRecovery) {
  ByzCluster cluster;
  cluster.build(1, 1);  // n = 6 so recovery is supported

  for (int i = 0; i < 20; ++i) {
    cluster.submit();
    cluster.sim.run_until(cluster.sim.now() + 40 * sim::kMillisecond);
  }
  cluster.sim.run_until(cluster.sim.now() + 2 * sim::kSecond);

  // Replica 5 floods forged checkpoints claiming a bogus state digest
  // at a far-future sequence, trying to poison a recovering replica's
  // state selection. Only f+1 matching (seq, digest) pairs are
  // trusted, and replica 5 is alone.
  const auto mallory = cluster.replica_signer(5);
  for (int i = 0; i < 10; ++i) {
    Checkpoint cp;
    cp.replica = 5;
    cp.applied_seq = 4096;
    cp.snapshot_digest = crypto::sha256("poisoned state");
    cp.sign(mallory);
    cluster.broadcast_raw(
        Envelope::make(MsgType::kCheckpoint, mallory, cp.encode()).encode());
  }

  cluster.replicas[2]->shutdown();
  cluster.sim.run_until(cluster.sim.now() + 500 * sim::kMillisecond);
  cluster.replicas[2]->recover();
  // Mallory also answers the recovery solicitation with its bogus state.
  cluster.sim.run_until(cluster.sim.now() + 5 * sim::kSecond);

  EXPECT_FALSE(cluster.replicas[2]->recovering());
  // The recovered replica converged on the honest history, not the
  // poisoned digest.
  for (int i = 0; i < 5; ++i) {
    cluster.submit();
    cluster.sim.run_until(cluster.sim.now() + 100 * sim::kMillisecond);
  }
  cluster.sim.run_until(cluster.sim.now() + 3 * sim::kSecond);
  EXPECT_EQ(cluster.apps[2]->log().size(), 25u);
  cluster.expect_consistent();
}

TEST(PrimeByzantine, ReplayedEnvelopesAreIdempotent) {
  ByzCluster cluster;
  cluster.build();

  // Capture legitimate traffic by wiretap, then replay it heavily.
  std::vector<util::Bytes> captured;
  for (ReplicaId i = 0; i < cluster.config.n(); ++i) {
    Replica* r = cluster.replicas[i].get();
    cluster.fabric->attach(i, [r, &captured](const util::Bytes& b) {
      if (captured.size() < 500) captured.push_back(b);
      r->on_message(b);
    });
  }
  for (int i = 0; i < 10; ++i) {
    cluster.submit();
    cluster.sim.run_until(cluster.sim.now() + 60 * sim::kMillisecond);
  }
  cluster.sim.run_until(cluster.sim.now() + 2 * sim::kSecond);
  ASSERT_EQ(cluster.apps[0]->log().size(), 10u);

  // Replay everything, twice, at every replica.
  for (int round = 0; round < 2; ++round) {
    for (const auto& bytes : captured) {
      for (auto& r : cluster.replicas) r->on_message(bytes);
    }
  }
  cluster.sim.run_until(cluster.sim.now() + 3 * sim::kSecond);

  for (const auto& app : cluster.apps) {
    EXPECT_EQ(app->log().size(), 10u) << "replay caused re-execution";
  }
  cluster.expect_consistent();
}

// ---- adversary v2: scripted Byzantine behaviors (PR 9) ---------------------

TEST(PrimeByzantine, UnderThresholdDelayKeepsLeaderAndLiveness) {
  ByzCluster cluster;
  cluster.build();

  // Prime's signature performance attack, calibrated under the
  // turnaround bound (500 ms < 800 ms): the bounded-delay guarantee
  // means the damage is capped, not zero — the leader must NOT be
  // suspected, and every update must still execute everywhere.
  cluster.replicas[0]->set_byzantine(
      ByzantineConfig{.preprepare_delay = 500 * sim::kMillisecond});
  cluster.sim.run_until(cluster.sim.now() + 2 * sim::kSecond);
  for (int i = 0; i < 10; ++i) {
    cluster.submit();
    cluster.sim.run_until(cluster.sim.now() + 100 * sim::kMillisecond);
  }
  cluster.sim.run_until(cluster.sim.now() + 3 * sim::kSecond);

  EXPECT_GE(cluster.replicas[0]->stats().byz_preprepares_delayed, 1u);
  for (const auto& replica : cluster.replicas) {
    EXPECT_EQ(replica->view(), 0u) << "under-threshold delay evicted leader";
  }
  for (const auto& app : cluster.apps) EXPECT_EQ(app->log().size(), 10u);
  cluster.expect_consistent();
}

TEST(PrimeByzantine, OverThresholdDelayEvictedWithinSlo) {
  ByzCluster cluster;
  cluster.build();
  cluster.sim.run_until(1 * sim::kSecond);

  const sim::Time t0 = cluster.sim.now();
  cluster.replicas[0]->set_byzantine(
      ByzantineConfig{.preprepare_delay = 1200 * sim::kMillisecond});
  while (cluster.replicas[1]->view() == 0 &&
         cluster.sim.now() < t0 + 5 * sim::kSecond) {
    cluster.sim.run_until(cluster.sim.now() + 10 * sim::kMillisecond);
  }
  const sim::Time reaction = cluster.sim.now() - t0;
  EXPECT_GE(cluster.replicas[1]->view(), 1u) << "delay attack never detected";
  EXPECT_LE(reaction, 2500 * sim::kMillisecond) << "reaction SLO missed";

  // Zero missed updates after recovery: the new leader orders normally.
  for (int i = 0; i < 5; ++i) {
    cluster.submit();
    cluster.sim.run_until(cluster.sim.now() + 100 * sim::kMillisecond);
  }
  cluster.sim.run_until(cluster.sim.now() + 3 * sim::kSecond);
  for (ReplicaId i = 1; i < cluster.config.n(); ++i) {
    EXPECT_EQ(cluster.apps[i]->log().size(), 5u) << "replica " << i;
  }
  cluster.expect_consistent();
}

void run_equivocation_case(std::uint32_t f) {
  ByzCluster cluster;
  cluster.build(f);
  cluster.sim.run_until(1 * sim::kSecond);

  const sim::Time t0 = cluster.sim.now();
  cluster.replicas[0]->set_byzantine(ByzantineConfig{.equivocate = true});
  while (cluster.replicas[1]->view() == 0 &&
         cluster.sim.now() < t0 + 4 * sim::kSecond) {
    cluster.sim.run_until(cluster.sim.now() + 10 * sim::kMillisecond);
  }
  EXPECT_GE(cluster.replicas[1]->view(), 1u) << "equivocation undetected";
  EXPECT_LE(cluster.sim.now() - t0, 1500 * sim::kMillisecond)
      << "equivocation reaction SLO missed";
  EXPECT_GE(cluster.replicas[0]->stats().byz_equivocations_sent, 1u);
  std::uint64_t detections = 0;
  for (ReplicaId i = 1; i < cluster.config.n(); ++i) {
    detections += cluster.replicas[i]->stats().equivocation_suspects;
  }
  EXPECT_GE(detections, 1u)
      << "view change happened but not via cross-replica digest exchange";

  for (int i = 0; i < 5; ++i) {
    cluster.submit();
    cluster.sim.run_until(cluster.sim.now() + 100 * sim::kMillisecond);
  }
  cluster.sim.run_until(cluster.sim.now() + 3 * sim::kSecond);
  for (ReplicaId i = 1; i < cluster.config.n(); ++i) {
    EXPECT_EQ(cluster.apps[i]->log().size(), 5u) << "replica " << i;
  }
  cluster.expect_consistent();
}

TEST(PrimeByzantine, EquivocationDetectedAtF1) { run_equivocation_case(1); }

TEST(PrimeByzantine, EquivocationDetectedAtF2) { run_equivocation_case(2); }

TEST(PrimeByzantine, WithheldPoAruAgesIntoSuspect) {
  ByzCluster cluster;
  cluster.build();
  cluster.sim.run_until(1 * sim::kSecond);

  // The leader keeps proposing fresh matrices but silently drops
  // replica 2's rows. The victim trips its own turnaround bound; the
  // OTHER followers must independently notice the victim's broadcast
  // PO-ARUs aging un-included (2x relaxed bound) so the view change
  // reaches quorum even if the victim's votes are discounted.
  const sim::Time t0 = cluster.sim.now();
  cluster.replicas[0]->set_byzantine(ByzantineConfig{.withhold_victims = {2}});
  while (cluster.replicas[1]->view() == 0 &&
         cluster.sim.now() < t0 + 6 * sim::kSecond) {
    cluster.sim.run_until(cluster.sim.now() + 10 * sim::kMillisecond);
  }
  EXPECT_GE(cluster.replicas[1]->view(), 1u) << "withholding undetected";
  EXPECT_LE(cluster.sim.now() - t0, 3 * sim::kSecond)
      << "withheld-ARU reaction SLO missed";
  EXPECT_GE(cluster.replicas[0]->stats().byz_rows_withheld, 1u);
  const std::uint64_t aged =
      cluster.replicas[1]->stats().withheld_aru_suspects +
      cluster.replicas[3]->stats().withheld_aru_suspects;
  EXPECT_GE(aged, 1u) << "non-victims never aged the withheld rows";

  for (int i = 0; i < 5; ++i) {
    cluster.submit();
    cluster.sim.run_until(cluster.sim.now() + 100 * sim::kMillisecond);
  }
  cluster.sim.run_until(cluster.sim.now() + 3 * sim::kSecond);
  for (ReplicaId i = 1; i < cluster.config.n(); ++i) {
    EXPECT_EQ(cluster.apps[i]->log().size(), 5u) << "replica " << i;
  }
  cluster.expect_consistent();
}

TEST(PrimeByzantine, ForgedMerklePathsDroppedWithoutSuspects) {
  ByzCluster cluster;
  cluster.build();

  // Find a non-leader replica responsible for the client's preordering
  // (it emits PO-Requests, so it actually seals multi-unit batches —
  // the only wires a Merkle forger can corrupt).
  std::vector<std::uint64_t> po_before;
  for (const auto& r : cluster.replicas) {
    po_before.push_back(r->stats().po_requests_sent);
  }
  for (int i = 0; i < 3; ++i) {
    cluster.submit();
    cluster.sim.run_until(cluster.sim.now() + 60 * sim::kMillisecond);
  }
  ReplicaId forger = 0;
  for (ReplicaId i = 1; i < cluster.config.n(); ++i) {
    if (cluster.replicas[i]->stats().po_requests_sent > po_before[i]) {
      forger = i;
    }
  }
  ASSERT_NE(forger, 0u) << "no non-leader replica preorders for the client";

  // The forger corrupts the inclusion proof of every batch-signed wire
  // it sends. Receivers must drop the garbage as unauthenticated noise
  // — no suspects, no missed updates (the other responsible replica
  // and the remaining correct replicas carry the quorums). Submits are
  // timed so the PO-Request shares a flush with the 20 ms PO-ARU tick,
  // guaranteeing batch-signed (forgeable) wires.
  cluster.replicas[forger]->set_byzantine(
      ByzantineConfig{.forge_merkle_rate = 1.0});
  for (int i = 0; i < 10; ++i) {
    const sim::Time grid = 20 * sim::kMillisecond;
    const sim::Time next = ((cluster.sim.now() / grid) + 2) * grid;
    cluster.sim.run_until(next - 6 * sim::kMillisecond);
    cluster.submit();
  }
  cluster.sim.run_until(cluster.sim.now() + 3 * sim::kSecond);

  EXPECT_GE(cluster.replicas[forger]->stats().byz_merkle_paths_forged, 1u);
  std::uint64_t dropped = 0;
  for (ReplicaId i = 0; i < cluster.config.n(); ++i) {
    if (i != forger) dropped += cluster.replicas[i]->stats().dropped_bad_signature;
  }
  EXPECT_GE(dropped, 1u) << "no forged wire was ever dropped";
  for (const auto& replica : cluster.replicas) {
    EXPECT_EQ(replica->view(), 0u) << "forged proofs caused a view change";
  }
  for (const auto& app : cluster.apps) EXPECT_EQ(app->log().size(), 13u);
  cluster.expect_consistent();
}

// ---- PR 9 satellite regressions --------------------------------------------

TEST(PrimeByzantine, TurnaroundRebaselinedOnViewInstall) {
  ByzCluster cluster;
  cluster.build();
  cluster.sim.run_until(1 * sim::kSecond);

  // Crash the leader of view 0 AND the leader of view 1, then push
  // replicas 2 and 3 into view 1 with a quorum of NewLeader votes. With
  // leader 1 dead they sit in view 1 accumulating turnaround samples
  // that nobody drains.
  cluster.replicas[0]->set_behavior(ReplicaBehavior::kCrashed);
  cluster.replicas[1]->set_behavior(ReplicaBehavior::kCrashed);
  cluster.sim.run_until(cluster.sim.now() + 400 * sim::kMillisecond);
  for (ReplicaId voter = 1; voter < cluster.config.n(); ++voter) {
    NewLeader vote;
    vote.replica = voter;
    vote.proposed_view = 1;
    const util::Bytes bytes =
        Envelope::make(MsgType::kNewLeader, cluster.replica_signer(voter),
                       vote.encode())
            .encode();
    cluster.replicas[2]->on_message(bytes);
    cluster.replicas[3]->on_message(bytes);
  }
  ASSERT_EQ(cluster.replicas[2]->view(), 1u);
  ASSERT_EQ(cluster.replicas[3]->view(), 1u);

  // 500 ms into the stalled view change, the (crafted, validly signed)
  // NewView finally installs. The samples accumulated in the meantime
  // predate the new leader's tenure: aging them against it would evict
  // a leader that was never given a chance — the pre-fix behavior,
  // where the install-time clear only ran if the view number advanced.
  cluster.sim.run_until(cluster.sim.now() + 500 * sim::kMillisecond);
  const std::uint64_t applied = std::max(cluster.replicas[2]->applied_seq(),
                                         cluster.replicas[3]->applied_seq());
  NewView nv;
  nv.leader = 1;
  nv.view = 1;
  nv.start_seq = applied + 1;
  for (ReplicaId r = 1; r < cluster.config.n(); ++r) {
    ViewState vs;
    vs.replica = r;
    vs.view = 1;
    vs.max_prepared = applied;
    vs.max_committed = applied;
    vs.sign(cluster.replica_signer(r));
    nv.justification.push_back(std::move(vs));
  }
  const util::Bytes nv_bytes =
      Envelope::make(MsgType::kNewView, cluster.replica_signer(1), nv.encode())
          .encode();
  cluster.replicas[2]->on_message(nv_bytes);
  cluster.replicas[3]->on_message(nv_bytes);

  // Inside the window where only the stale samples could trip (new
  // samples are < 800 ms old, leader silence needs a full 1 s), the
  // fresh leader must not be blamed.
  cluster.sim.run_until(cluster.sim.now() + 600 * sim::kMillisecond);
  for (ReplicaId i = 2; i < cluster.config.n(); ++i) {
    EXPECT_EQ(cluster.replicas[i]->stats().turnaround_suspects, 0u)
        << "replica " << i << " blamed the fresh leader for old backlog";
    EXPECT_EQ(cluster.replicas[i]->stats().withheld_aru_suspects, 0u);
    EXPECT_EQ(cluster.replicas[i]->view(), 1u);
  }
}

TEST(PrimeByzantine, SuspectTickSurvivesStopStartWithoutDoubleChaining) {
  ByzCluster cluster;
  cluster.build();
  cluster.sim.run_until(2 * sim::kSecond);

  // Baseline cadence: one suspicion poll per suspect_timeout / 4.
  const std::uint64_t s0 = cluster.replicas[3]->stats().suspect_ticks;
  cluster.sim.run_until(cluster.sim.now() + 2 * sim::kSecond);
  const std::uint64_t per_window =
      cluster.replicas[3]->stats().suspect_ticks - s0;
  ASSERT_GE(per_window, 6u);
  ASSERT_LE(per_window, 9u);

  // No polls while stopped.
  cluster.replicas[3]->shutdown();
  const std::uint64_t down = cluster.replicas[3]->stats().suspect_ticks;
  cluster.sim.run_until(cluster.sim.now() + 1 * sim::kSecond);
  EXPECT_EQ(cluster.replicas[3]->stats().suspect_ticks, down);

  // A stop/start cycle plus a redundant double start() must leave ONE
  // timer chain; without the epoch bump in start() each extra call
  // chains another timer and the poll rate multiplies — which halves
  // the effective suspicion threshold.
  cluster.replicas[3]->start();
  cluster.replicas[3]->start();
  cluster.replicas[3]->shutdown();
  cluster.replicas[3]->start();
  const std::uint64_t s1 = cluster.replicas[3]->stats().suspect_ticks;
  cluster.sim.run_until(cluster.sim.now() + 2 * sim::kSecond);
  const std::uint64_t after = cluster.replicas[3]->stats().suspect_ticks - s1;
  EXPECT_LE(after, per_window + 2) << "suspect_tick double-chained";
  EXPECT_GE(after, per_window - 2);
}

TEST(PrimeByzantine, RowShortCircuitIsKeyedByView) {
  ByzCluster cluster;
  cluster.build();
  Replica& follower = *cluster.replicas[3];

  // A genuine signed PO-ARU from replica 2, delivered standalone, lands
  // in the follower's latest_aru_ (accepted in view 0).
  auto row = std::make_shared<PoAru>();
  row->replica = 2;
  row->aru_seq = 1000;  // far above anything the warmup produced
  row->aru.assign(cluster.config.n(), 0);
  row->sign(cluster.replica_signer(2));
  follower.on_message(
      Envelope::make(MsgType::kPoAru, cluster.replica_signer(2), row->raw)
          .encode());

  // Control: a view-0 Pre-Prepare re-shipping those exact bytes takes
  // the raw-byte-equality short circuit.
  auto make_pp = [&](std::uint64_t view, std::uint64_t seq, ReplicaId leader) {
    PrePrepare pp;
    pp.leader = leader;
    pp.view = view;
    pp.order_seq = seq;
    pp.rows.assign(cluster.config.n(), nullptr);
    pp.rows[2] = row;
    return Envelope::make(MsgType::kPrePrepare, cluster.replica_signer(leader),
                          pp.encode())
        .encode();
  };
  const auto before_v0 = follower.stats();
  follower.on_message(make_pp(0, 600, 0));
  EXPECT_EQ(follower.stats().row_verify_short_circuits,
            before_v0.row_verify_short_circuits + 1);

  // Move the follower to view 1 with a quorum of NewLeader votes.
  for (ReplicaId voter = 1; voter < cluster.config.n(); ++voter) {
    NewLeader vote;
    vote.replica = voter;
    vote.proposed_view = 1;
    follower.on_message(Envelope::make(MsgType::kNewLeader,
                                       cluster.replica_signer(voter),
                                       vote.encode())
                            .encode());
  }
  ASSERT_EQ(follower.view(), 1u);

  // The new leader replays the same stale signed row. Pre-fix this took
  // the short circuit (the cache key ignored the view); now it must go
  // through full verification again — served by the digest memo, so
  // the row still verifies and the proposal is still accepted.
  const auto before_v1 = follower.stats();
  follower.on_message(make_pp(1, 601, 1));
  EXPECT_EQ(follower.stats().row_verify_short_circuits,
            before_v1.row_verify_short_circuits)
      << "stale row replayed across views took the short circuit";
  EXPECT_GE(follower.stats().verify_cache_hits,
            before_v1.verify_cache_hits + 1)
      << "row was not re-verified via the digest memo";
  EXPECT_EQ(follower.stats().dropped_bad_signature,
            before_v1.dropped_bad_signature);
}

}  // namespace
}  // namespace spire::prime
