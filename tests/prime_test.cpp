// Prime BFT engine tests: ordering safety and liveness, duplicate
// suppression, crash tolerance, view changes under silent/stale (delay
// attack) leaders, partition catch-up, proactive recovery with
// application-level state transfer, checkpoints, and authentication.
//
// Property-style suites (TEST_P) sweep the (f, k) configurations and
// seeds the paper's deployments used: f=1,k=0 (red-team, n=4) and
// f=1,k=1 (plant, n=6), plus f=2 for margin.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "prime/recovery.hpp"
#include "prime/replica.hpp"
#include "prime/transport.hpp"

namespace spire::prime {
namespace {

/// Deterministic test application: an append-only execution log.
class TestApp : public Application {
 public:
  void apply(const ClientUpdate& update, const ExecutionInfo&) override {
    log_.push_back(update.client + "#" + std::to_string(update.client_seq));
  }

  [[nodiscard]] util::Bytes snapshot() const override {
    util::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(log_.size()));
    for (const auto& entry : log_) w.str(entry);
    return w.take();
  }

  void restore(std::span<const std::uint8_t> blob) override {
    util::ByteReader r(blob);
    log_.clear();
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) log_.push_back(r.str());
  }

  void on_state_transfer() override { ++state_transfers_; }

  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }
  [[nodiscard]] int state_transfers() const { return state_transfers_; }

 private:
  std::vector<std::string> log_;
  int state_transfers_ = 0;
};

struct Cluster {
  sim::Simulator sim;
  crypto::Keyring keyring{"prime-test"};
  std::unique_ptr<LoopbackFabric> fabric;
  std::vector<std::unique_ptr<TestApp>> apps;
  std::vector<std::unique_ptr<Replica>> replicas;
  PrimeConfig config;
  std::map<std::string, std::uint64_t> client_seqs;

  void build(std::uint32_t f, std::uint32_t k,
             std::vector<std::string> clients = {"client/a", "client/b"},
             std::uint64_t seed = 1) {
    config.f = f;
    config.k = k;
    config.client_identities = clients;
    fabric = std::make_unique<LoopbackFabric>(sim, config.n());
    sim::Rng rng(seed);
    for (ReplicaId i = 0; i < config.n(); ++i) {
      apps.push_back(std::make_unique<TestApp>());
      replicas.push_back(std::make_unique<Replica>(
          sim, i, config, keyring, *apps.back(), fabric->transport_for(i),
          rng.fork()));
      Replica* replica = replicas.back().get();
      fabric->attach(i, [replica](const util::Bytes& bytes) {
        replica->on_message(bytes);
      });
    }
    for (auto& r : replicas) r->start();
  }

  /// Submits a signed client update to every running replica.
  void submit(const std::string& client, const std::string& op) {
    ClientUpdate update;
    update.client = client;
    update.client_seq = ++client_seqs[client];
    update.payload = util::to_bytes(op);
    crypto::Signer signer(client, keyring.identity_key(client));
    update.sign(signer);
    util::ByteWriter w;
    update.encode(w);
    const Envelope env =
        Envelope::make(MsgType::kClientUpdate, signer, w.take());
    const util::Bytes bytes = env.encode();
    for (auto& r : replicas) r->on_message(bytes);
  }

  void run_for(sim::Time t) { sim.run_until(sim.now() + t); }

  /// Longest common prefix check: every replica's log must be a prefix
  /// of the longest log (total-order safety).
  void expect_logs_consistent() const {
    const std::vector<std::string>* longest = &apps[0]->log();
    for (const auto& app : apps) {
      if (app->log().size() > longest->size()) longest = &app->log();
    }
    for (std::size_t i = 0; i < apps.size(); ++i) {
      const auto& log = apps[i]->log();
      for (std::size_t j = 0; j < log.size(); ++j) {
        ASSERT_EQ(log[j], (*longest)[j])
            << "replica " << i << " diverges at index " << j;
      }
    }
  }

  [[nodiscard]] std::size_t min_executed() const {
    std::size_t m = SIZE_MAX;
    for (const auto& app : apps) m = std::min(m, app->log().size());
    return m;
  }
};

TEST(Prime, BasicOrderingAllReplicasExecuteEverything) {
  Cluster cluster;
  cluster.build(1, 0);
  cluster.run_for(500 * sim::kMillisecond);  // settle

  for (int i = 0; i < 25; ++i) {
    cluster.submit("client/a", "opA" + std::to_string(i));
    cluster.submit("client/b", "opB" + std::to_string(i));
    cluster.run_for(40 * sim::kMillisecond);
  }
  cluster.run_for(2 * sim::kSecond);

  for (const auto& app : cluster.apps) {
    EXPECT_EQ(app->log().size(), 50u);
  }
  cluster.expect_logs_consistent();
  EXPECT_EQ(cluster.replicas[0]->view(), 0u);  // no spurious view changes
}

TEST(Prime, DuplicatesAcrossOriginsExecuteOnce) {
  Cluster cluster;
  cluster.build(1, 0);
  cluster.run_for(500 * sim::kMillisecond);
  // Every submit already goes to all 4 replicas (so up to 4 origins
  // preorder it). Submit the same logical updates and verify counts.
  for (int i = 0; i < 10; ++i) cluster.submit("client/a", "op");
  cluster.run_for(2 * sim::kSecond);
  for (const auto& app : cluster.apps) {
    EXPECT_EQ(app->log().size(), 10u);
  }
  cluster.expect_logs_consistent();
}

TEST(Prime, ToleratesCrashOfOneReplica) {
  Cluster cluster;
  cluster.build(1, 0);
  cluster.run_for(500 * sim::kMillisecond);
  cluster.replicas[2]->set_behavior(ReplicaBehavior::kCrashed);

  for (int i = 0; i < 10; ++i) {
    cluster.submit("client/a", "op" + std::to_string(i));
    cluster.run_for(50 * sim::kMillisecond);
  }
  cluster.run_for(2 * sim::kSecond);

  for (ReplicaId i = 0; i < 4; ++i) {
    if (i == 2) continue;
    EXPECT_EQ(cluster.apps[i]->log().size(), 10u) << "replica " << i;
  }
  cluster.expect_logs_consistent();
}

TEST(Prime, SilentLeaderTriggersViewChangeAndLivenessResumes) {
  Cluster cluster;
  cluster.build(1, 0);
  cluster.run_for(500 * sim::kMillisecond);
  ASSERT_TRUE(cluster.replicas[0]->is_leader());
  cluster.replicas[0]->set_behavior(ReplicaBehavior::kCrashed);

  cluster.run_for(3 * sim::kSecond);  // suspect timeout + view change
  EXPECT_GE(cluster.replicas[1]->view(), 1u);

  for (int i = 0; i < 10; ++i) {
    cluster.submit("client/a", "after-vc" + std::to_string(i));
    cluster.run_for(50 * sim::kMillisecond);
  }
  cluster.run_for(3 * sim::kSecond);
  for (ReplicaId i = 1; i < 4; ++i) {
    EXPECT_EQ(cluster.apps[i]->log().size(), 10u) << "replica " << i;
  }
  cluster.expect_logs_consistent();
}

TEST(Prime, StaleMatrixLeaderIsEvictedByTurnaroundBound) {
  // The Prime delay attack: a leader that keeps proposing but with
  // matrices that never reflect fresh PO-ARUs. Liveness must recover
  // within the turnaround bound, not stall indefinitely.
  Cluster cluster;
  cluster.build(1, 0);
  cluster.run_for(500 * sim::kMillisecond);
  cluster.replicas[0]->set_behavior(ReplicaBehavior::kStaleLeader);

  for (int i = 0; i < 10; ++i) {
    cluster.submit("client/a", "op" + std::to_string(i));
    cluster.run_for(50 * sim::kMillisecond);
  }
  cluster.run_for(4 * sim::kSecond);

  EXPECT_GE(cluster.replicas[1]->view(), 1u)
      << "stale leader was never suspected";
  for (ReplicaId i = 1; i < 4; ++i) {
    EXPECT_EQ(cluster.apps[i]->log().size(), 10u) << "replica " << i;
  }
  cluster.expect_logs_consistent();
}

TEST(Prime, SilentLeaderBehaviorVariant) {
  // kSilentLeader: correct replica except it never proposes.
  Cluster cluster;
  cluster.build(1, 0);
  cluster.run_for(500 * sim::kMillisecond);
  cluster.replicas[0]->set_behavior(ReplicaBehavior::kSilentLeader);
  cluster.run_for(3 * sim::kSecond);
  EXPECT_GE(cluster.replicas[0]->view(), 1u);  // it still participates in VC

  cluster.submit("client/a", "post");
  cluster.run_for(2 * sim::kSecond);
  EXPECT_GE(cluster.min_executed(), 1u);
  cluster.expect_logs_consistent();
}

TEST(Prime, PartitionedReplicaCatchesUpAfterHeal) {
  Cluster cluster;
  cluster.build(1, 0);
  cluster.run_for(500 * sim::kMillisecond);

  cluster.fabric->isolate(3, true);
  for (int i = 0; i < 20; ++i) {
    cluster.submit("client/a", "op" + std::to_string(i));
    cluster.run_for(50 * sim::kMillisecond);
  }
  cluster.run_for(1 * sim::kSecond);
  EXPECT_EQ(cluster.apps[0]->log().size(), 20u);
  const auto behind = cluster.apps[3]->log().size();
  EXPECT_LT(behind, 20u);

  cluster.fabric->isolate(3, false);
  cluster.run_for(5 * sim::kSecond);
  EXPECT_EQ(cluster.apps[3]->log().size(), 20u);
  cluster.expect_logs_consistent();
}

TEST(Prime, ProactiveRecoveryRunsApplicationStateTransfer) {
  Cluster cluster;
  cluster.build(1, 1);  // n = 6: supports recovery with bounded delay
  cluster.run_for(500 * sim::kMillisecond);

  for (int i = 0; i < 20; ++i) {
    cluster.submit("client/a", "op" + std::to_string(i));
    cluster.run_for(40 * sim::kMillisecond);
  }
  cluster.run_for(1 * sim::kSecond);
  ASSERT_EQ(cluster.apps[2]->log().size(), 20u);

  const std::uint64_t old_variant = cluster.replicas[2]->variant();
  cluster.replicas[2]->shutdown();
  cluster.run_for(500 * sim::kMillisecond);
  cluster.replicas[2]->recover();
  cluster.run_for(3 * sim::kSecond);

  EXPECT_FALSE(cluster.replicas[2]->recovering());
  EXPECT_NE(cluster.replicas[2]->variant(), old_variant);  // new diversity
  EXPECT_EQ(cluster.apps[2]->state_transfers(), 1);        // §III-A signal
  EXPECT_EQ(cluster.replicas[2]->stats().state_transfers, 1u);

  // Recovered replica keeps executing new updates.
  for (int i = 0; i < 10; ++i) {
    cluster.submit("client/b", "post" + std::to_string(i));
    cluster.run_for(40 * sim::kMillisecond);
  }
  cluster.run_for(3 * sim::kSecond);
  EXPECT_EQ(cluster.apps[2]->log().size(), 30u);
  cluster.expect_logs_consistent();
}

TEST(Prime, RecoverySchedulerCyclesThroughAllReplicas) {
  Cluster cluster;
  cluster.build(1, 1);
  cluster.run_for(500 * sim::kMillisecond);

  std::vector<Replica*> targets;
  for (auto& r : cluster.replicas) targets.push_back(r.get());
  RecoveryConfig rc;
  rc.period = 4 * sim::kSecond;
  rc.downtime = 500 * sim::kMillisecond;
  ProactiveRecovery recovery(cluster.sim, targets, rc);
  recovery.start();

  int submitted = 0;
  for (int round = 0; round < 7 * 8; ++round) {  // > one full cycle
    cluster.submit("client/a", "op" + std::to_string(round));
    ++submitted;
    cluster.run_for(500 * sim::kMillisecond);
  }
  recovery.stop();
  cluster.run_for(8 * sim::kSecond);

  EXPECT_GE(recovery.recoveries_completed(), 6u);
  cluster.expect_logs_consistent();
  // Every live replica converged on the full history.
  for (ReplicaId i = 0; i < cluster.config.n(); ++i) {
    if (!cluster.replicas[i]->running() || cluster.replicas[i]->recovering()) {
      continue;
    }
    EXPECT_EQ(cluster.apps[i]->log().size(), static_cast<std::size_t>(submitted))
        << "replica " << i;
  }
}

TEST(Prime, ForgedClientUpdateRejected) {
  Cluster cluster;
  cluster.build(1, 0);
  cluster.run_for(500 * sim::kMillisecond);

  ClientUpdate update;
  update.client = "client/a";
  update.client_seq = 1;
  update.payload = util::to_bytes("evil");
  // Signed by an attacker key, not client/a's key.
  crypto::Signer mallory("mallory", cluster.keyring.identity_key("mallory"));
  update.client_sig = mallory.sign(update.signed_bytes());
  util::ByteWriter w;
  update.encode(w);
  Envelope env;
  env.type = MsgType::kClientUpdate;
  env.sender = "client/a";
  env.body = w.take();
  env.signature = mallory.sign(env.signed_bytes());
  for (auto& r : cluster.replicas) r->on_message(env.encode());

  cluster.run_for(2 * sim::kSecond);
  for (const auto& app : cluster.apps) EXPECT_TRUE(app->log().empty());
  EXPECT_GT(cluster.replicas[0]->stats().dropped_bad_signature, 0u);
}

// The verified-envelope cache is an accept-side memo, never a bypass: a
// tampered envelope hashes to a digest that was never cached, so it
// still reaches full verification and is dropped.
TEST(Prime, TamperedEnvelopeRejectedDespiteWarmCache) {
  Cluster cluster;
  cluster.build(1, 0);
  cluster.run_for(500 * sim::kMillisecond);
  cluster.submit("client/a", "legit");
  cluster.run_for(1 * sim::kSecond);
  // Ordinary traffic exercises the memo (PO-ARU rows, retransmitted
  // envelopes); the cache must be warm before the attack means anything.
  EXPECT_GT(cluster.replicas[0]->verify_cache_size(), 0u);

  ClientUpdate update;
  update.client = "client/a";
  update.client_seq = ++cluster.client_seqs["client/a"];
  update.payload = util::to_bytes("to-be-tampered");
  crypto::Signer signer("client/a", cluster.keyring.identity_key("client/a"));
  update.sign(signer);
  util::ByteWriter w;
  update.encode(w);
  util::Bytes bytes =
      Envelope::make(MsgType::kClientUpdate, signer, w.take()).encode();

  const auto before = cluster.replicas[0]->stats().dropped_bad_signature;
  // Flip one bit in the signed body region (the trailing 32 bytes are
  // the MAC; anything before them is covered by the signature).
  bytes[bytes.size() - 40] ^= 0x01;
  cluster.replicas[0]->on_message(bytes);
  cluster.run_for(100 * sim::kMillisecond);
  EXPECT_EQ(cluster.replicas[0]->stats().dropped_bad_signature, before + 1);
}

// Delta-matrix fallback: a follower that missed the leader's previous
// Pre-Prepare cannot reconstruct the next delta (its chain state is
// stale), so it must fetch the full matrix from a peer and rejoin the
// fast path — no view change, no state transfer.
TEST(Prime, StaleFollowerFallsBackToFullMatrixFetch) {
  Cluster cluster;
  cluster.build(1, 0);
  cluster.run_for(500 * sim::kMillisecond);
  // Quiesce the real leader so the only Pre-Prepares in flight are the
  // injected ones (the organic workload refreshes every row between
  // proposals, which degenerates deltas to full encodings).
  cluster.replicas[0]->set_behavior(ReplicaBehavior::kSilentLeader);
  cluster.run_for(100 * sim::kMillisecond);
  const crypto::Signer leader(replica_identity(0),
                              cluster.keyring.identity_key(replica_identity(0)));

  auto row = std::make_shared<PoAru>();
  row->replica = 0;
  row->aru_seq = 1000;
  row->aru.assign(cluster.config.n(), 0);
  row->sign(leader);
  PrePrepare pp1;
  pp1.leader = 0;
  pp1.view = 0;
  pp1.order_seq = 100;  // past anything proposed during warm-up
  pp1.rows.assign(cluster.config.n(), nullptr);
  pp1.rows[0] = row;
  const util::Bytes full =
      Envelope::make(MsgType::kPrePrepare, leader, pp1.encode()).encode();
  // Replica 3 never sees the full proposal.
  cluster.replicas[1]->on_message(full);
  cluster.replicas[2]->on_message(full);
  cluster.run_for(50 * sim::kMillisecond);

  // The follow-up arrives delta-encoded (row 0 unchanged) at everyone.
  PrePrepare pp2 = pp1;
  pp2.order_seq = 101;
  pp2.matrix_digest = crypto::Digest{};  // recompute for the new proposal
  const util::Bytes delta =
      Envelope::make(MsgType::kPrePrepare, leader, pp2.encode_delta(pp1.rows))
          .encode();
  for (ReplicaId i = 1; i < cluster.config.n(); ++i) {
    cluster.replicas[i]->on_message(delta);
  }
  cluster.run_for(50 * sim::kMillisecond);
  EXPECT_EQ(cluster.replicas[3]->stats().matrix_fetches_sent, 1u)
      << "stale follower never fell back to a full-matrix fetch";
  EXPECT_EQ(cluster.replicas[1]->stats().matrix_fetches_sent, 0u)
      << "chained follower fetched despite holding the previous matrix";

  // The fetched matrix repaired replica 3's chain state: the next delta
  // decodes locally, with no further fetch.
  PrePrepare pp3 = pp2;
  pp3.order_seq = 102;
  pp3.matrix_digest = crypto::Digest{};
  const util::Bytes delta2 =
      Envelope::make(MsgType::kPrePrepare, leader, pp3.encode_delta(pp2.rows))
          .encode();
  for (ReplicaId i = 1; i < cluster.config.n(); ++i) {
    cluster.replicas[i]->on_message(delta2);
  }
  cluster.run_for(50 * sim::kMillisecond);
  EXPECT_EQ(cluster.replicas[3]->stats().matrix_fetches_sent, 1u)
      << "fetch did not repair the follower's delta chain";
  for (const auto& r : cluster.replicas) EXPECT_EQ(r->view(), 0u);
  cluster.expect_logs_consistent();
}

// Proactive-recovery semantics (paper §III): a rejuvenated replica's
// pre-takedown acceptances are not trustworthy, so recover() must wipe
// the verification cache along with the rest of volatile state.
TEST(Prime, VerifyCacheClearedOnRecovery) {
  Cluster cluster;
  cluster.build(1, 1);  // n=6, the plant deployment shape
  cluster.run_for(500 * sim::kMillisecond);
  for (int i = 0; i < 5; ++i) {
    cluster.submit("client/a", "op" + std::to_string(i));
    cluster.run_for(200 * sim::kMillisecond);
  }
  Replica& victim = *cluster.replicas[2];
  EXPECT_GT(victim.verify_cache_size(), 0u);

  victim.recover();
  EXPECT_EQ(victim.verify_cache_size(), 0u);  // wiped with volatile state

  // After rejoining, the replica re-verifies from scratch and still
  // rejects forgeries — no stale acceptance survives rejuvenation.
  cluster.run_for(5 * sim::kSecond);
  EXPECT_FALSE(victim.recovering());
  const auto before = victim.stats().dropped_bad_signature;
  ClientUpdate update;
  update.client = "client/a";
  update.client_seq = ++cluster.client_seqs["client/a"];
  update.payload = util::to_bytes("evil");
  crypto::Signer mallory("mallory", cluster.keyring.identity_key("mallory"));
  update.client_sig = mallory.sign(update.signed_bytes());
  util::ByteWriter w;
  update.encode(w);
  Envelope env;
  env.type = MsgType::kClientUpdate;
  env.sender = "client/a";
  env.body = w.take();
  env.signature = mallory.sign(env.signed_bytes());
  victim.on_message(env.encode());
  cluster.run_for(100 * sim::kMillisecond);
  EXPECT_EQ(victim.stats().dropped_bad_signature, before + 1);

  // And legitimate traffic still flows end-to-end post-recovery.
  cluster.submit("client/b", "after-recovery");
  cluster.run_for(2 * sim::kSecond);
  cluster.expect_logs_consistent();
  EXPECT_GT(victim.stats().verify_cache_hits, 0u);
}

TEST(Prime, UnknownClientRejected) {
  Cluster cluster;
  cluster.build(1, 0, {"client/a"});
  cluster.run_for(500 * sim::kMillisecond);
  // client/evil has a valid key in the keyring but is not provisioned.
  ClientUpdate update;
  update.client = "client/evil";
  update.client_seq = 1;
  update.payload = util::to_bytes("x");
  crypto::Signer signer("client/evil", cluster.keyring.identity_key("client/evil"));
  update.sign(signer);
  util::ByteWriter w;
  update.encode(w);
  const Envelope env = Envelope::make(MsgType::kClientUpdate, signer, w.take());
  for (auto& r : cluster.replicas) r->on_message(env.encode());
  cluster.run_for(2 * sim::kSecond);
  for (const auto& app : cluster.apps) EXPECT_TRUE(app->log().empty());
}

TEST(Prime, CheckpointsBecomeStable) {
  Cluster cluster;
  cluster.build(1, 0);
  cluster.run_for(500 * sim::kMillisecond);
  for (int i = 0; i < 30; ++i) {
    cluster.submit("client/a", "op" + std::to_string(i));
    cluster.run_for(40 * sim::kMillisecond);
  }
  cluster.run_for(3 * sim::kSecond);
  EXPECT_GT(cluster.replicas[0]->stats().checkpoints_stable, 0u);
}

TEST(Prime, MalformedEnvelopesAreHarmless) {
  Cluster cluster;
  cluster.build(1, 0);
  cluster.run_for(500 * sim::kMillisecond);
  cluster.replicas[0]->on_message(util::to_bytes("complete garbage"));
  cluster.replicas[0]->on_message(util::Bytes{});
  cluster.replicas[0]->on_message(util::Bytes(10000, 0xFF));
  cluster.submit("client/a", "still-works");
  cluster.run_for(2 * sim::kSecond);
  EXPECT_EQ(cluster.apps[0]->log().size(), 1u);
}

TEST(PrimeMessages, EnvelopeRoundTripAndTamperDetection) {
  crypto::Keyring kr("x");
  crypto::Signer signer("prime/0", kr.identity_key("prime/0"));
  crypto::Verifier verifier;
  verifier.add_identity("prime/0", kr.identity_key("prime/0"));

  const Envelope env =
      Envelope::make(MsgType::kPoRequest, signer, util::to_bytes("body"));
  auto bytes = env.encode();
  const auto decoded = Envelope::decode(bytes);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->verify(verifier));

  bytes[bytes.size() / 2] ^= 1;
  const auto tampered = Envelope::decode(bytes);
  if (tampered) {
    EXPECT_FALSE(tampered->verify(verifier));
  }
}

TEST(PrimeMessages, PrePrepareDigestCoversMatrix) {
  PrePrepare a;
  a.leader = 0;
  a.view = 1;
  a.order_seq = 5;
  a.rows.assign(4, nullptr);
  PrePrepare b = a;
  auto row = std::make_shared<PoAru>();
  row->replica = 2;
  row->aru = {1, 2, 3, 4};
  b.rows[2] = row;
  EXPECT_NE(a.digest(), b.digest());
  const auto decoded = PrePrepare::decode(b.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->digest(), b.digest());
}

TEST(Prime, ResponsibleSetBoundsPreorderDuplication) {
  // Clients broadcast to all n replicas, but only f+k+1 of them may
  // preorder any given client's updates (DESIGN.md: bounded
  // duplication with guaranteed liveness).
  Cluster cluster;
  cluster.build(1, 1);  // n = 6, responsible set size 3
  cluster.run_for(500 * sim::kMillisecond);
  for (int i = 0; i < 10; ++i) {
    cluster.submit("client/a", "op" + std::to_string(i));
    cluster.run_for(60 * sim::kMillisecond);
  }
  cluster.run_for(2 * sim::kSecond);

  std::uint32_t preorderers = 0;
  std::uint64_t total_po_requests = 0;
  for (const auto& replica : cluster.replicas) {
    if (replica->stats().po_requests_sent > 0) ++preorderers;
    total_po_requests += replica->stats().po_requests_sent;
  }
  EXPECT_LE(preorderers, cluster.config.f + cluster.config.k + 1);
  EXPECT_GE(preorderers, 1u);
  EXPECT_GT(total_po_requests, 0u);
  for (const auto& app : cluster.apps) EXPECT_EQ(app->log().size(), 10u);
}

// ---- property sweeps ---------------------------------------------------------

struct SweepParam {
  std::uint32_t f;
  std::uint32_t k;
  std::uint64_t seed;
};

class PrimeSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PrimeSweep, SafetyAndLivenessWithCrashFaults) {
  const auto param = GetParam();
  Cluster cluster;
  cluster.build(param.f, param.k, {"client/a", "client/b"}, param.seed);
  cluster.run_for(500 * sim::kMillisecond);

  // Crash f replicas (never the whole leader chain): pick the highest
  // indices so view 0's leader survives.
  for (std::uint32_t c = 0; c < param.f; ++c) {
    cluster.replicas[cluster.config.n() - 1 - c]->set_behavior(
        ReplicaBehavior::kCrashed);
  }

  sim::Rng workload(param.seed * 7919 + 13);
  int submitted = 0;
  for (int i = 0; i < 30; ++i) {
    const std::string client = workload.chance(0.5) ? "client/a" : "client/b";
    cluster.submit(client, "op" + std::to_string(i));
    ++submitted;
    cluster.run_for(20 + workload.uniform(0, 60) * sim::kMillisecond);
  }
  cluster.run_for(3 * sim::kSecond);

  for (ReplicaId i = 0; i < cluster.config.n(); ++i) {
    if (cluster.replicas[i]->behavior() == ReplicaBehavior::kCrashed) continue;
    EXPECT_EQ(cluster.apps[i]->log().size(),
              static_cast<std::size_t>(submitted))
        << "replica " << i << " (f=" << param.f << ", k=" << param.k << ")";
  }
  cluster.expect_logs_consistent();
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, PrimeSweep,
    ::testing::Values(SweepParam{1, 0, 1}, SweepParam{1, 0, 2},
                      SweepParam{1, 1, 1}, SweepParam{1, 1, 2},
                      SweepParam{2, 0, 1}, SweepParam{1, 2, 1}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::ostringstream name;
      name << "f" << info.param.f << "k" << info.param.k << "seed"
           << info.param.seed;
      return name.str();
    });

class LeaderFaultSweep : public ::testing::TestWithParam<ReplicaBehavior> {};

TEST_P(LeaderFaultSweep, ViewChangeRestoresLiveness) {
  Cluster cluster;
  cluster.build(1, 1);  // n=6
  cluster.run_for(500 * sim::kMillisecond);
  cluster.replicas[0]->set_behavior(GetParam());

  for (int i = 0; i < 8; ++i) {
    cluster.submit("client/a", "op" + std::to_string(i));
    cluster.run_for(100 * sim::kMillisecond);
  }
  cluster.run_for(5 * sim::kSecond);

  EXPECT_GE(cluster.replicas[1]->view(), 1u);
  for (ReplicaId i = 1; i < cluster.config.n(); ++i) {
    EXPECT_EQ(cluster.apps[i]->log().size(), 8u) << "replica " << i;
  }
  cluster.expect_logs_consistent();
}

INSTANTIATE_TEST_SUITE_P(LeaderFaults, LeaderFaultSweep,
                         ::testing::Values(ReplicaBehavior::kCrashed,
                                           ReplicaBehavior::kSilentLeader,
                                           ReplicaBehavior::kStaleLeader),
                         [](const ::testing::TestParamInfo<ReplicaBehavior>& info) {
                           switch (info.param) {
                             case ReplicaBehavior::kCrashed: return "Crashed";
                             case ReplicaBehavior::kSilentLeader: return "Silent";
                             case ReplicaBehavior::kStaleLeader: return "Stale";
                             default: return "Other";
                           }
                         });

}  // namespace
}  // namespace spire::prime
