// MANA IDS tests: feature extraction, k-means, the ensemble detectors
// (one-class SVM, per-substation rules), sampling calibration, and the
// detection-quality scoreboard on synthetic captures.
#include <gtest/gtest.h>

#include <bit>

#include "mana/mana.hpp"
#include "mana/scoreboard.hpp"
#include "sim/rng.hpp"

namespace spire::mana {
namespace {

net::PcapRecord data_frame(sim::Time t, std::uint32_t src_id,
                           std::uint32_t dst_id, std::uint16_t dst_port,
                           std::size_t payload = 200) {
  net::Datagram d;
  d.src_ip = net::IpAddress{0x0A000000u + src_id};
  d.dst_ip = net::IpAddress{0x0A000000u + dst_id};
  d.src_port = 5000;
  d.dst_port = dst_port;
  d.payload.assign(payload, 0xAB);
  net::EthernetFrame frame{net::MacAddress::from_id(src_id),
                           net::MacAddress::from_id(dst_id),
                           net::EtherType::kIpv4, d.encode()};
  return net::PcapRecord{t, net::NetworkLabels::instance().intern("test"),
                         std::move(frame)};
}

net::FrameSummary data_summary(sim::Time t, std::uint32_t src_id,
                               std::uint32_t dst_id, std::uint16_t dst_port,
                               std::size_t payload = 200) {
  const auto rec = data_frame(t, src_id, dst_id, dst_port, payload);
  return net::FrameSummary::summarize(rec.time, rec.frame);
}

net::PcapRecord arp_frame(sim::Time t, std::uint32_t claimed_ip_id,
                          std::uint32_t mac_id, net::ArpOp op) {
  net::ArpPacket arp;
  arp.op = op;
  arp.sender_ip = net::IpAddress{0x0A000000u + claimed_ip_id};
  arp.sender_mac = net::MacAddress::from_id(mac_id);
  // Requests broadcast; replies are unicast, as on a real LAN.
  const net::MacAddress dst = op == net::ArpOp::kRequest
                                  ? net::MacAddress::broadcast()
                                  : net::MacAddress::from_id(1);
  net::EthernetFrame frame{net::MacAddress::from_id(mac_id), dst,
                           net::EtherType::kArp, arp.encode()};
  return net::PcapRecord{t, net::NetworkLabels::instance().intern("test"),
                         std::move(frame)};
}

/// SCADA-like baseline: two devices polled regularly plus ARP churn.
void feed_baseline(Mana& mana, sim::Time from, sim::Time until,
                   sim::Rng& rng) {
  for (sim::Time t = from; t < until; t += 50 * sim::kMillisecond) {
    mana.on_capture(data_frame(t, 1, 2, 502, 60 + rng.uniform(0, 20)));
    mana.on_capture(data_frame(t + 5 * sim::kMillisecond, 2, 1, 5000,
                               80 + rng.uniform(0, 20)));
  }
}

TEST(Features, WindowsAggregateAndReset) {
  std::vector<WindowFeatures> windows;
  FeatureExtractor extractor(1 * sim::kSecond,
                             [&](const WindowFeatures& w) { windows.push_back(w); });
  extractor.ingest(data_summary(100 * sim::kMillisecond, 1, 2, 502));
  extractor.ingest(data_summary(200 * sim::kMillisecond, 1, 2, 502));
  extractor.ingest(data_summary(1500 * sim::kMillisecond, 1, 2, 502));
  extractor.flush_until(3 * sim::kSecond);

  // Quiet networks still emit (empty) windows, so MANA can score them.
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].values[0], 2.0);  // frames in first window
  EXPECT_EQ(windows[1].values[0], 1.0);
  EXPECT_EQ(windows[2].values[0], 0.0);  // empty trailing window
  EXPECT_EQ(windows[0].values.size(), WindowFeatures::kDim);
  EXPECT_FALSE(windows[0].sampled());
  EXPECT_FALSE(windows[0].saturated);
}

TEST(Features, CountsArpAndBroadcast) {
  std::vector<WindowFeatures> windows;
  FeatureExtractor extractor(1 * sim::kSecond,
                             [&](const WindowFeatures& w) { windows.push_back(w); });
  const auto arp = [](sim::Time t, std::uint32_t ip, std::uint32_t mac,
                      net::ArpOp op) {
    const auto rec = arp_frame(t, ip, mac, op);
    return net::FrameSummary::summarize(rec.time, rec.frame);
  };
  extractor.ingest(arp(10, 1, 1, net::ArpOp::kRequest));
  extractor.ingest(arp(20, 2, 2, net::ArpOp::kReply));
  extractor.ingest(arp(30, 3, 3, net::ArpOp::kRequest));
  extractor.flush_until(2 * sim::kSecond);
  ASSERT_EQ(windows.size(), 2u);  // the ARP window + one empty window
  EXPECT_EQ(windows[0].values[4], 2.0);  // arp requests
  EXPECT_EQ(windows[0].values[5], 1.0);  // arp replies
  EXPECT_EQ(windows[0].values[6], 2.0);  // broadcasts (requests)
}

TEST(Features, SamplingWeightsKeepAdditiveFeaturesCalibrated) {
  std::vector<WindowFeatures> windows;
  FeatureExtractor extractor(1 * sim::kSecond,
                             [&](const WindowFeatures& w) { windows.push_back(w); });
  // 10 captured frames, each representing 8 mirrored frames (weight
  // folding under 1-in-8 sampling).
  for (int i = 0; i < 10; ++i) {
    auto s = data_summary(i * 10 * sim::kMillisecond, 1, 2, 502, 100);
    s.weight = 8;
    extractor.ingest(s);
  }
  extractor.flush_until(2 * sim::kSecond);
  ASSERT_GE(windows.size(), 1u);
  EXPECT_EQ(windows[0].values[0], 80.0);  // weighted frame count
  EXPECT_TRUE(windows[0].sampled());
  EXPECT_EQ(windows[0].sampled_weight, 70u);  // 80 represented − 10 captured
  EXPECT_EQ(extractor.stats().sampled_windows, 1u);
}

TEST(Features, FlatTablesSaturateExplicitly) {
  FeatureConfig config;
  config.max_src_macs = 8;
  std::vector<WindowFeatures> windows;
  FeatureExtractor extractor(1 * sim::kSecond,
                             [&](const WindowFeatures& w) { windows.push_back(w); },
                             config);
  for (std::uint32_t i = 0; i < 64; ++i) {
    extractor.ingest(data_summary(10 + i, 100 + i, 2, 502, 50));
  }
  extractor.flush_until(2 * sim::kSecond);
  ASSERT_GE(windows.size(), 1u);
  EXPECT_TRUE(windows[0].saturated);
  EXPECT_GT(extractor.stats().saturated_inserts, 0u);
  // The distinct count is an explicit lower bound, not a lie.
  EXPECT_LE(windows[0].values[7], 64.0);
  EXPECT_GT(windows[0].values[7], 0.0);
}

TEST(KMeans, SeparatesObviousClusters) {
  sim::Rng rng(5);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back({rng.normal(0, 0.1), rng.normal(0, 0.1)});
    points.push_back({rng.normal(10, 0.1), rng.normal(10, 0.1)});
  }
  const auto model = kmeans_fit(points, 2, rng);
  ASSERT_EQ(model.centroids.size(), 2u);
  const double d0 = model.nearest_distance({0, 0});
  const double d10 = model.nearest_distance({10, 10});
  EXPECT_LT(d0, 1.0);
  EXPECT_LT(d10, 1.0);
  EXPECT_GT(model.nearest_distance({5, 5}), 3.0);
}

TEST(KMeans, HandlesFewerPointsThanClusters) {
  sim::Rng rng(5);
  const std::vector<std::vector<double>> points = {{1, 1}, {2, 2}};
  const auto model = kmeans_fit(points, 8, rng);
  EXPECT_LE(model.centroids.size(), 2u);
  EXPECT_THROW(kmeans_fit({}, 2, rng), std::invalid_argument);
}

TEST(OcSvm, SeparatesInliersFromOutliers) {
  sim::Rng rng(7);
  std::vector<std::vector<double>> train;
  for (int i = 0; i < 200; ++i) {
    train.push_back({rng.normal(0, 1), rng.normal(0, 1), rng.normal(0, 1)});
  }
  OcSvm svm(3, OcSvmConfig{});
  svm.fit(train);
  EXPECT_TRUE(svm.trained());
  EXPECT_GT(svm.threshold(), 0.0);
  // In-distribution points stay inside the learned radius.
  const std::vector<double> inlier = {0.2, -0.4, 0.6};
  EXPECT_FALSE(svm.anomalous(inlier));
  // A point far outside the training cloud scores past the threshold.
  const std::vector<double> outlier = {30.0, -25.0, 40.0};
  EXPECT_TRUE(svm.anomalous(outlier));
}

TEST(Mana, QuietOnBaselineTraffic) {
  ManaConfig config;
  config.network = "ops";
  Mana mana(config);
  sim::Rng rng(1);
  feed_baseline(mana, 0, 30 * sim::kSecond, rng);
  mana.flush_until(30 * sim::kSecond);
  mana.finish_training();

  feed_baseline(mana, 30 * sim::kSecond, 60 * sim::kSecond, rng);
  mana.flush_until(60 * sim::kSecond);
  EXPECT_GT(mana.windows_scored(), 20u);
  // Near-zero false positives on in-distribution traffic.
  EXPECT_LE(mana.windows_anomalous(), mana.windows_scored() / 10);
  EXPECT_TRUE(mana.alerts().empty());
}

TEST(Mana, DetectsPortScan) {
  ManaConfig config;
  config.network = "ops";
  Mana mana(config);
  sim::Rng rng(1);
  feed_baseline(mana, 0, 30 * sim::kSecond, rng);
  mana.flush_until(30 * sim::kSecond);
  mana.finish_training();

  // Attacker sweeps 100 ports within one window.
  const sim::Time t0 = 31 * sim::kSecond;
  for (std::uint16_t p = 0; p < 100; ++p) {
    mana.on_capture(data_frame(t0 + p * 100, 66, 2, 8000 + p, 10));
  }
  feed_baseline(mana, 31 * sim::kSecond, 35 * sim::kSecond, rng);
  mana.flush_until(35 * sim::kSecond);

  const Alert* scan = nullptr;
  for (const auto& alert : mana.alerts()) {
    if (alert.kind == AlertKind::kPortScan) scan = &alert;
  }
  ASSERT_NE(scan, nullptr);
  // Rule alerts are attributed to the rules detector, and the deferred
  // detail names the scanning source.
  EXPECT_EQ(scan->detector, DetectorId::kRules);
  EXPECT_NE(scan->votes & vote_bit(DetectorId::kRules), 0);
  EXPECT_NE(scan->detail().find("10.0.0.66"), std::string::npos);
}

TEST(Mana, DetectsArpBindingChange) {
  ManaConfig config;
  config.network = "ops";
  Mana mana(config);
  sim::Rng rng(1);
  // Baseline includes legitimate ARP from host 1 (mac 1) and 2 (mac 2).
  mana.on_capture(arp_frame(100, 1, 1, net::ArpOp::kReply));
  mana.on_capture(arp_frame(200, 2, 2, net::ArpOp::kReply));
  feed_baseline(mana, 0, 30 * sim::kSecond, rng);
  mana.flush_until(30 * sim::kSecond);
  mana.finish_training();

  // Attacker (mac 66) claims host 2's IP: classic poisoning.
  mana.on_capture(arp_frame(31 * sim::kSecond, 2, 66, net::ArpOp::kReply));
  const Alert* arp = nullptr;
  for (const auto& alert : mana.alerts()) {
    if (alert.kind == AlertKind::kArpBindingChange) arp = &alert;
  }
  ASSERT_NE(arp, nullptr);
  EXPECT_NE(arp->detail().find("10.0.0.2"), std::string::npos);
  EXPECT_NE(arp->detail().find("moved from"), std::string::npos);
}

TEST(Mana, DetectsTrafficFlood) {
  ManaConfig config;
  config.network = "ops";
  Mana mana(config);
  sim::Rng rng(1);
  feed_baseline(mana, 0, 30 * sim::kSecond, rng);
  mana.flush_until(30 * sim::kSecond);
  mana.finish_training();

  const sim::Time t0 = 31 * sim::kSecond;
  for (int i = 0; i < 2000; ++i) {
    mana.on_capture(data_frame(t0 + i * 400, 66, 2, 502, 1000));
  }
  mana.flush_until(34 * sim::kSecond);

  const Alert* flood = nullptr;
  const Alert* anomaly = nullptr;
  for (const auto& alert : mana.alerts()) {
    if (alert.kind == AlertKind::kTrafficFlood) flood = &alert;
    if (alert.kind == AlertKind::kAnomalousWindow) anomaly = &alert;
  }
  ASSERT_NE(flood, nullptr);
  ASSERT_NE(anomaly, nullptr);
  // The ensemble window alert carries its vote coalition: the flood is
  // so far out of distribution that the statistical members agree with
  // the rules.
  EXPECT_EQ(anomaly->detector, DetectorId::kEnsemble);
  EXPECT_GE(std::popcount(anomaly->votes), 2);
}

TEST(Mana, DetectsFloodThroughSamplingTap) {
  // Same flood, but pushed through a small CaptureTap ring that is
  // forced deep into 1-in-N sampling: the weighted features must stay
  // calibrated enough that the flood still trips the detectors, and
  // every mirrored frame must be accounted for.
  ManaConfig config;
  config.network = "ops";
  config.tap.ring_slots = 256;
  Mana mana(config);
  sim::Rng rng(1);
  feed_baseline(mana, 0, 30 * sim::kSecond, rng);
  mana.flush_until(30 * sim::kSecond);
  mana.finish_training();

  net::CaptureTap& tap = mana.tap();
  const sim::Time t0 = 31 * sim::kSecond;
  const std::uint64_t processed_before = mana.stats().frames_processed;
  for (int burst = 0; burst < 10; ++burst) {
    // Each burst overfills the ring several times over before MANA's
    // next out-of-band poll.
    for (int i = 0; i < 1000; ++i) {
      const auto rec =
          data_frame(t0 + burst * 100 * sim::kMillisecond + i * 10, 66, 2,
                     502, 1000);
      tap.capture(rec.time, rec.frame);
    }
    mana.poll(t0 + (burst + 1) * 100 * sim::kMillisecond);
  }
  mana.poll(34 * sim::kSecond);

  const auto& stats = tap.stats();
  EXPECT_GT(stats.frames_sampled_out, 0u);  // sampling engaged
  // Accounting identity: nothing vanished silently. Drained weights are
  // exactly the frames the pipeline processed since the flood began.
  const std::uint64_t drained_weight =
      mana.stats().frames_processed - processed_before;
  EXPECT_EQ(stats.frames_mirrored,
            drained_weight + tap.queued_weight() + tap.pending_weight() +
                stats.frames_dropped);
  // Weight folding keeps the windowed frame count calibrated, so the
  // flood still trips the detectors despite heavy sampling.
  bool flood = false;
  for (const auto& alert : mana.alerts()) {
    if (alert.kind == AlertKind::kTrafficFlood) flood = true;
  }
  EXPECT_TRUE(flood);
  EXPECT_GT(mana.extractor_stats().sampled_windows, 0u);
}

TEST(Mana, DetectsNewSourceMac) {
  ManaConfig config;
  config.network = "ops";
  Mana mana(config);
  sim::Rng rng(1);
  feed_baseline(mana, 0, 30 * sim::kSecond, rng);
  mana.flush_until(30 * sim::kSecond);
  mana.finish_training();

  // A device never seen in baseline sends one ordinary frame.
  mana.on_capture(data_frame(31 * sim::kSecond, 77, 2, 502, 60));
  bool new_mac = false;
  for (const auto& alert : mana.alerts()) {
    if (alert.kind == AlertKind::kNewSourceMac) new_mac = true;
  }
  EXPECT_TRUE(new_mac);
}

TEST(Mana, TrainingRequiredBeforeScoring) {
  ManaConfig config;
  Mana mana(config);
  EXPECT_FALSE(mana.trained());
  EXPECT_THROW(mana.finish_training(), std::runtime_error);  // no windows
}

TEST(Mana, AlertsAreRateLimitedPerKind) {
  ManaConfig config;
  config.network = "ops";
  Mana mana(config);
  sim::Rng rng(1);
  // Legitimate binding for IP .1 learned during training.
  mana.on_capture(arp_frame(100, 1, 1, net::ArpOp::kReply));
  feed_baseline(mana, 0, 30 * sim::kSecond, rng);
  mana.flush_until(30 * sim::kSecond);
  mana.finish_training();

  // Two binding flips within the same window => one alert.
  mana.on_capture(arp_frame(31 * sim::kSecond, 1, 66, net::ArpOp::kReply));
  mana.on_capture(arp_frame(31 * sim::kSecond + 100, 1, 67, net::ArpOp::kReply));
  std::size_t arp_alerts = 0;
  for (const auto& alert : mana.alerts()) {
    if (alert.kind == AlertKind::kArpBindingChange) ++arp_alerts;
  }
  EXPECT_EQ(arp_alerts, 1u);
}

// ---- scoreboard -------------------------------------------------------------

Alert make_alert(sim::Time at, AlertKind kind, DetectorId detector,
                 std::uint8_t votes) {
  Alert a;
  a.at = at;
  a.network = net::NetworkLabels::instance().intern("test");
  a.kind = kind;
  a.detector = detector;
  a.votes = votes;
  return a;
}

TEST(ScoreBoard, MatchesHandComputedReference) {
  // Labeled fixture: two attacks, four alerts. Hand computation:
  //   attack A [10s, 12s] expecting port-scan:
  //     alert 1 (10.5s, port-scan, rules)        -> TP, latency 0.5s
  //     alert 2 (11s,  anomalous-window, kmeans+rules ensemble) -> FP
  //        (kind not in A's expected list, outside B)
  //   attack B [20s, 25s] expecting any kind:
  //     alert 3 (26s, traffic-flood, rules)      -> TP (within 2s grace)
  //   alert 4 (40s, port-scan, rules)            -> FP (no attack)
  // Ensemble:  TP=2 FP=2 -> precision 0.5; detected 2/2 -> recall 1.0.
  // Rules row: TP=2 FP=2 (voted on alerts 1,2,3,4) -> precision 0.5.
  // KMeans row: TP=0 FP=1 (only voted on alert 2)  -> precision 0.0,
  //   recall 0/2 = 0.
  ScoreBoard board;
  board.attack_begin("A", 10 * sim::kSecond, {AlertKind::kPortScan});
  board.attack_end("A", 12 * sim::kSecond);
  board.attack_begin("B", 20 * sim::kSecond);
  board.attack_end("B", 25 * sim::kSecond);

  const auto rules_bit = vote_bit(DetectorId::kRules);
  const auto km_bit = vote_bit(DetectorId::kKMeans);
  board.on_alert(make_alert(10 * sim::kSecond + 500 * sim::kMillisecond,
                            AlertKind::kPortScan, DetectorId::kRules,
                            rules_bit));
  board.on_alert(make_alert(11 * sim::kSecond, AlertKind::kAnomalousWindow,
                            DetectorId::kEnsemble, rules_bit | km_bit));
  board.on_alert(make_alert(26 * sim::kSecond, AlertKind::kTrafficFlood,
                            DetectorId::kRules, rules_bit));
  board.on_alert(make_alert(40 * sim::kSecond, AlertKind::kPortScan,
                            DetectorId::kRules, rules_bit));
  board.finalize(60 * sim::kSecond);

  const auto& ensemble = board.ensemble();
  EXPECT_EQ(ensemble.true_positives, 2u);
  EXPECT_EQ(ensemble.false_positives, 2u);
  EXPECT_DOUBLE_EQ(ensemble.precision(), 0.5);
  EXPECT_DOUBLE_EQ(ensemble.recall(), 1.0);
  EXPECT_NEAR(ensemble.f1(), 2 * 0.5 * 1.0 / 1.5, 1e-12);

  const auto& rules = board.score(DetectorId::kRules);
  EXPECT_EQ(rules.true_positives, 2u);
  EXPECT_EQ(rules.false_positives, 2u);
  EXPECT_DOUBLE_EQ(rules.recall(), 1.0);

  const auto& kmeans = board.score(DetectorId::kKMeans);
  EXPECT_EQ(kmeans.true_positives, 0u);
  EXPECT_EQ(kmeans.false_positives, 1u);
  EXPECT_DOUBLE_EQ(kmeans.precision(), 0.0);
  EXPECT_DOUBLE_EQ(kmeans.recall(), 0.0);

  ASSERT_EQ(board.outcomes().size(), 2u);
  const auto& a = board.outcomes()[0];
  EXPECT_TRUE(a.detected);
  EXPECT_EQ(a.latency, 500 * sim::kMillisecond);
  EXPECT_EQ(a.first_kind, AlertKind::kPortScan);
  const auto& b = board.outcomes()[1];
  EXPECT_TRUE(b.detected);
  EXPECT_EQ(b.latency, 6 * sim::kSecond);
  EXPECT_DOUBLE_EQ(board.mean_latency_us(),
                   (500'000.0 + 6'000'000.0) / 2.0);
  EXPECT_EQ(board.max_latency_us(), 6u * sim::kSecond);
}

TEST(ScoreBoard, MissedAttackCountsAgainstRecall) {
  ScoreBoard board;
  board.add_label(AttackLabel{"quiet", 5 * sim::kSecond, 6 * sim::kSecond, {}});
  board.finalize(10 * sim::kSecond);
  EXPECT_EQ(board.ensemble().attacks_missed, 1u);
  EXPECT_DOUBLE_EQ(board.ensemble().recall(), 0.0);
  // No alerts at all: precision stays vacuous (1.0), recall is the
  // number that flags the failure.
  EXPECT_DOUBLE_EQ(board.ensemble().precision(), 1.0);
  ASSERT_EQ(board.outcomes().size(), 1u);
  EXPECT_FALSE(board.outcomes()[0].detected);
}

TEST(Alert, DetailFormattingIsDeferredAndExact) {
  Alert a;
  a.kind = AlertKind::kArpBindingChange;
  a.args = {0x0A000002u, net::FrameSummary::mac_key(net::MacAddress::from_id(2)),
            net::FrameSummary::mac_key(net::MacAddress::from_id(66))};
  const std::string text = a.detail();
  EXPECT_NE(text.find("10.0.0.2"), std::string::npos);
  EXPECT_NE(text.find("moved from"), std::string::npos);

  Alert scan;
  scan.kind = AlertKind::kPortScan;
  scan.args = {0x0A000042u, 100, 15};
  EXPECT_EQ(scan.detail(),
            "10.0.0.66 probed 100 distinct ports (threshold 15)");
}

}  // namespace
}  // namespace spire::mana
